// Package jiffy is a Go implementation of Jiffy, the elastic
// far-memory system for stateful serverless analytics from EuroSys '22
// ("Jiffy: Elastic Far-Memory for Stateful Serverless Analytics",
// Khandelwal et al.).
//
// Jiffy stores intermediate data for analytics jobs in memory blocks
// spread across a pool of memory servers, allocating capacity at the
// granularity of small fixed-size blocks rather than whole-job
// reservations. Jobs organize their data in a hierarchical address
// space that mirrors their execution DAG; leases tied to that hierarchy
// manage data lifetime (renewing a task's prefix keeps its inputs and
// consumers alive); and data structures repartition themselves inside
// the storage system as blocks fill and drain.
//
// # Quick start
//
//	cluster, _ := jiffy.StartCluster(jiffy.ClusterOptions{
//		Servers:         2,
//		BlocksPerServer: 64,
//	})
//	defer cluster.Close()
//
//	ctx := context.Background()
//	c, _ := cluster.Connect(ctx)
//	defer c.Close()
//
//	c.RegisterJob(ctx, "job1")
//	c.CreatePrefix(ctx, "job1/task1", nil, core.DSKV, 1, 0)
//	kv, _ := c.OpenKV(ctx, "job1/task1")
//	kv.Put(ctx, "hello", []byte("world"))
//
// Every data-path call takes a context.Context: a context deadline
// bounds the call (taking precedence over the session RPC timeout) and
// cancellation aborts retries promptly. Connections are configured with
// functional options (WithRPCTimeout, WithRetryPolicy, WithTracing).
//
// The public surface re-exports the client library (the user-facing
// API of Table 1 in the paper) plus cluster bootstrap helpers; the
// mechanisms live under internal/.
package jiffy

import (
	"context"
	"time"

	"jiffy/internal/client"
	"jiffy/internal/core"
	"jiffy/internal/obs"
	"jiffy/internal/proto"
)

// Re-exported types: the public API mirrors the paper's user-facing
// interface (Table 1).
type (
	// Client is a connection to a Jiffy cluster.
	Client = client.Client
	// KV is a key-value store handle (§5.3).
	KV = client.KV
	// File is an append-oriented file handle (§5.1).
	File = client.File
	// Queue is a FIFO queue handle (§5.2).
	Queue = client.Queue
	// Listener delivers data-structure notifications.
	Listener = client.Listener
	// Renewer keeps leases alive for a set of prefixes.
	Renewer = client.Renewer
	// MultiError carries per-op outcomes of a batched call.
	MultiError = client.MultiError
	// KVPair is one key-value pair in a KV.MultiPut.
	KVPair = client.KVPair
	// Path is a hierarchical address prefix ("job/task/...").
	Path = core.Path
	// JobID identifies a registered job.
	JobID = core.JobID
	// DSType selects a built-in data structure.
	DSType = core.DSType
	// DagNode describes one task when building a hierarchy from an
	// execution plan (createHierarchy).
	DagNode = proto.DagNode
	// Config carries the system tunables (block size, lease duration,
	// repartition thresholds).
	Config = core.Config
	// Quota carries a tenant's resource limits (ops/sec, bytes/sec,
	// memory bytes) and its DRR scheduling weight.
	Quota = core.Quota
	// ThrottleError is the typed admission refusal carrying the
	// throttled tenant and the server's retry-after hint.
	ThrottleError = core.ThrottleError
	// NotLeaderError is the typed redirect a controller standby answers
	// with, carrying the current leader's address and generation.
	NotLeaderError = core.NotLeaderError

	// Option configures a connection (see WithRPCTimeout,
	// WithRetryPolicy, WithTracing).
	Option = client.Option
	// RetryPolicy bounds the client's refresh-and-retry loops.
	RetryPolicy = client.RetryPolicy

	// SpanExporter receives completed RPC spans when tracing is on.
	SpanExporter = obs.SpanExporter
	// SpanEvent is one completed span delivered to a SpanExporter.
	SpanEvent = obs.SpanEvent
)

// Data structure types for CreatePrefix / DagNode.
const (
	DSNone  = core.DSNone
	DSFile  = core.DSFile
	DSQueue = core.DSQueue
	DSKV    = core.DSKV
)

// Common errors returned by the API.
var (
	ErrNotFound     = core.ErrNotFound
	ErrExists       = core.ErrExists
	ErrNoCapacity   = core.ErrNoCapacity
	ErrEmpty        = core.ErrEmpty
	ErrLeaseExpired = core.ErrLeaseExpired
	ErrTimeout      = core.ErrTimeout
	ErrBlockLost    = core.ErrBlockLost
	// ErrQuotaExceeded reports a QoS admission refusal; match with
	// errors.Is and read the backpressure hint with RetryAfterOf.
	ErrQuotaExceeded = core.ErrQuotaExceeded
	// ErrNotLeader reports a control call that reached a controller
	// standby; the client re-homes on it automatically, so user code
	// sees it only after the retry budget is exhausted.
	ErrNotLeader = core.ErrNotLeader
)

// RetryAfterOf extracts the server's retry-after hint from a quota
// refusal (zero when err carries none).
func RetryAfterOf(err error) time.Duration { return core.RetryAfterOf(err) }

// DefaultConfig returns the paper's defaults: 128MB blocks, 1s leases,
// 95%/5% repartition thresholds, 1024 hash slots.
func DefaultConfig() Config { return core.DefaultConfig() }

// Connection options, re-exported from the client library.
var (
	// WithRPCTimeout sets the per-call RPC timeout (zero keeps the
	// default; negative disables the session timeout — a context
	// deadline still applies).
	WithRPCTimeout = client.WithRPCTimeout
	// WithRetryPolicy bounds the refresh-and-retry loops.
	WithRetryPolicy = client.WithRetryPolicy
	// WithTracing enables span collection on the connection, delivering
	// completed spans to the exporter (see NewRingExporter).
	WithTracing = client.WithTracing
	// WithControllers lists the controller group endpoints for Dial; the
	// client discovers the leader among them and re-homes on failover.
	WithControllers = client.WithControllers
	// WithSessionShards gives every data-plane session n connections
	// with the sequence space partitioned across them, for heavy
	// concurrent single-op load against one server.
	WithSessionShards = client.WithSessionShards
	// WithBusyPoll makes callers spin briefly before parking while
	// awaiting responses, trading CPU for small-op latency.
	WithBusyPoll = client.WithBusyPoll
)

// DefaultRetryPolicy returns the default retry budget.
func DefaultRetryPolicy() RetryPolicy { return client.DefaultRetryPolicy() }

// NewRingExporter returns a fixed-capacity in-memory span sink: the
// last n completed spans are retained and readable via Spans().
func NewRingExporter(n int) *obs.RingExporter { return obs.NewRingExporter(n) }

// Dial connects to a Jiffy controller group (connect(jiffyAddress)).
// List the group's endpoints with WithControllers; the client discovers
// which member leads and re-homes automatically when leadership moves.
// ctx bounds the dial and leader discovery only; the connection
// outlives it.
func Dial(ctx context.Context, opts ...Option) (*Client, error) {
	return client.Dial(ctx, opts...)
}

// Connect dials a single running Jiffy controller.
//
// Deprecated: use Dial with WithControllers — a single-member group
// behaves identically, and listing every member enables failover.
func Connect(ctx context.Context, controllerAddr string, opts ...Option) (*Client, error) {
	return client.Connect(ctx, controllerAddr, opts...)
}

// ConnectMulti dials a controller group given its endpoint list.
//
// Deprecated: use Dial with WithControllers.
func ConnectMulti(ctx context.Context, controllerAddrs []string, opts ...Option) (*Client, error) {
	return client.ConnectMulti(ctx, controllerAddrs, opts...)
}

// ConnectNoCtx dials a controller without a context.
//
// Deprecated: use Dial with a context and WithControllers.
func ConnectNoCtx(controllerAddr string, opts ...Option) (*Client, error) {
	return client.Connect(context.Background(), controllerAddr, opts...)
}

// ConnectMultiNoCtx dials a controller group without a context.
//
// Deprecated: use Dial with a context and WithControllers.
func ConnectMultiNoCtx(controllerAddrs []string, opts ...Option) (*Client, error) {
	return client.ConnectMulti(context.Background(), controllerAddrs, opts...)
}

// MustPath builds a Path from components, panicking on invalid input;
// convenient for literals in examples and tests.
func MustPath(components ...string) Path { return core.MustPath(components...) }

// A re-export of the lease-renewal sweet spot from the paper (§6.6).
const DefaultLeaseDuration = time.Second
