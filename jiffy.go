// Package jiffy is a Go implementation of Jiffy, the elastic
// far-memory system for stateful serverless analytics from EuroSys '22
// ("Jiffy: Elastic Far-Memory for Stateful Serverless Analytics",
// Khandelwal et al.).
//
// Jiffy stores intermediate data for analytics jobs in memory blocks
// spread across a pool of memory servers, allocating capacity at the
// granularity of small fixed-size blocks rather than whole-job
// reservations. Jobs organize their data in a hierarchical address
// space that mirrors their execution DAG; leases tied to that hierarchy
// manage data lifetime (renewing a task's prefix keeps its inputs and
// consumers alive); and data structures repartition themselves inside
// the storage system as blocks fill and drain.
//
// # Quick start
//
//	cluster, _ := jiffy.StartCluster(jiffy.ClusterOptions{
//		Servers:         2,
//		BlocksPerServer: 64,
//	})
//	defer cluster.Close()
//
//	c, _ := cluster.Connect()
//	defer c.Close()
//
//	c.RegisterJob("job1")
//	c.CreatePrefix("job1/task1", nil, core.DSKV, 1, 0)
//	kv, _ := c.OpenKV("job1/task1")
//	kv.Put("hello", []byte("world"))
//
// The public surface re-exports the client library (the user-facing
// API of Table 1 in the paper) plus cluster bootstrap helpers; the
// mechanisms live under internal/.
package jiffy

import (
	"time"

	"jiffy/internal/client"
	"jiffy/internal/core"
	"jiffy/internal/proto"
)

// Re-exported types: the public API mirrors the paper's user-facing
// interface (Table 1).
type (
	// Client is a connection to a Jiffy cluster.
	Client = client.Client
	// KV is a key-value store handle (§5.3).
	KV = client.KV
	// File is an append-oriented file handle (§5.1).
	File = client.File
	// Queue is a FIFO queue handle (§5.2).
	Queue = client.Queue
	// Listener delivers data-structure notifications.
	Listener = client.Listener
	// Renewer keeps leases alive for a set of prefixes.
	Renewer = client.Renewer
	// MultiError carries per-op outcomes of a batched call.
	MultiError = client.MultiError
	// KVPair is one key-value pair in a KV.MultiPut.
	KVPair = client.KVPair
	// Path is a hierarchical address prefix ("job/task/...").
	Path = core.Path
	// JobID identifies a registered job.
	JobID = core.JobID
	// DSType selects a built-in data structure.
	DSType = core.DSType
	// DagNode describes one task when building a hierarchy from an
	// execution plan (createHierarchy).
	DagNode = proto.DagNode
	// Config carries the system tunables (block size, lease duration,
	// repartition thresholds).
	Config = core.Config
)

// Data structure types for CreatePrefix / DagNode.
const (
	DSNone  = core.DSNone
	DSFile  = core.DSFile
	DSQueue = core.DSQueue
	DSKV    = core.DSKV
)

// Common errors returned by the API.
var (
	ErrNotFound     = core.ErrNotFound
	ErrExists       = core.ErrExists
	ErrNoCapacity   = core.ErrNoCapacity
	ErrEmpty        = core.ErrEmpty
	ErrLeaseExpired = core.ErrLeaseExpired
	ErrTimeout      = core.ErrTimeout
)

// DefaultConfig returns the paper's defaults: 128MB blocks, 1s leases,
// 95%/5% repartition thresholds, 1024 hash slots.
func DefaultConfig() Config { return core.DefaultConfig() }

// Connect dials a running Jiffy controller (connect(jiffyAddress)).
func Connect(controllerAddr string) (*Client, error) {
	return client.Connect(controllerAddr, client.Options{})
}

// ConnectMulti dials a hash-partitioned controller group (§4.2.1
// multi-controller scaling); the address order must match across all
// clients.
func ConnectMulti(controllerAddrs []string) (*Client, error) {
	return client.ConnectMulti(controllerAddrs, client.Options{})
}

// MustPath builds a Path from components, panicking on invalid input;
// convenient for literals in examples and tests.
func MustPath(components ...string) Path { return core.MustPath(components...) }

// A re-export of the lease-renewal sweet spot from the paper (§6.6).
const DefaultLeaseDuration = time.Second
