package jiffy

// Chaos suite: end-to-end fault scenarios driven by the deterministic
// injector in internal/faultinject. Every scenario fixes a seed, so a
// failure reproduces exactly (see DESIGN.md, "Fault model"); scenarios
// marked long are skipped under -short.

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"jiffy/internal/client"
	"jiffy/internal/clock"
	"jiffy/internal/controller"
	"jiffy/internal/core"
	"jiffy/internal/ds"
	"jiffy/internal/faultinject"
	"jiffy/internal/persist"
)

// chaosCluster boots a cluster whose every connection — client,
// controller and server side — runs through the injector.
func chaosCluster(t *testing.T, inj *faultinject.Injector, cfg core.Config,
	opts ClusterOptions) *Cluster {
	t.Helper()
	opts.Config = cfg
	opts.Dial = inj.Dial
	cluster, err := StartCluster(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cluster.Close() })
	return cluster
}

// TestChaosServerCrashMidRepartition kills a memory server while a
// client is filling a KV store hard enough to force repeated splits,
// under seeded wire latency. The cluster must not hang: writes to
// surviving servers keep succeeding, failures classify as connection
// errors, and every acknowledged write on a surviving server stays
// readable.
func TestChaosServerCrashMidRepartition(t *testing.T) {
	if testing.Short() {
		t.Skip("long chaos scenario")
	}
	inj := faultinject.New(101, nil)
	inj.AddRule(faultinject.Rule{
		Name: "wire-jitter", Match: "send:",
		Latency: 100 * time.Microsecond, Jitter: 200 * time.Microsecond,
	})
	cfg := core.TestConfig()
	cfg.LeaseDuration = time.Minute
	cfg.RPCTimeout = 2 * time.Second
	cluster := chaosCluster(t, inj, cfg, ClusterOptions{Servers: 3, BlocksPerServer: 16})
	c, err := client.ConnectMulti(context.Background(), cluster.ControllerAddrs,
		client.WithDial(inj.Dial), client.WithRPCTimeout(cfg.RPCTimeout),
		client.WithRetryPolicy(client.RetryPolicy{Limit: 6}))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.RegisterJob(context.Background(), "chaos")
	if _, _, err := c.CreatePrefix(context.Background(), "chaos/t", nil, DSKV, 1, 0); err != nil {
		t.Fatal(err)
	}
	kv, err := c.OpenKV(context.Background(), "chaos/t")
	if err != nil {
		t.Fatal(err)
	}

	val := strings.Repeat("x", 1024) // 1KB values against 64KB blocks: many splits
	const total, crashAt = 600, 400
	acked := make(map[string]bool)
	ackedPostCrash := 0
	for i := 0; i < total; i++ {
		if i == crashAt {
			// The server dies mid-fill: listener gone, live sessions severed.
			cluster.Servers[2].Close()
			inj.BreakConns("server-2")
		}
		key := fmt.Sprintf("key-%04d", i)
		err := kv.Put(context.Background(), key, []byte(val))
		switch {
		case err == nil:
			acked[key] = true
			if i >= crashAt {
				ackedPostCrash++
			}
		case i < crashAt:
			t.Fatalf("put %s failed before the crash: %v", key, err)
		case !errors.Is(err, core.ErrClosed) && !errors.Is(err, ErrTimeout) &&
			!errors.Is(err, ErrBlockLost):
			// ErrBlockLost: the controller evicted the dead server and
			// marked its unreplicated blocks lost — this scenario runs
			// without replication, so that's the honest answer.
			t.Fatalf("post-crash put %s failed with unclassified error: %v", key, err)
		}
	}
	if ackedPostCrash == 0 {
		t.Fatal("no write succeeded after the crash; surviving servers unusable")
	}

	// Every acked write whose block lives on a surviving server must
	// still be readable. Writes acked onto the dead server are gone —
	// this scenario runs unreplicated — and are excused by the map.
	open, err := cluster.Controller.Open("chaos/t")
	if err != nil {
		t.Fatal(err)
	}
	lostOK, read := 0, 0
	for key := range acked {
		e, ok := open.Map.BlockForSlot(ds.SlotOf(key, open.Map.NumSlots))
		if !ok {
			t.Fatalf("no block for acked key %s", key)
		}
		onDead := strings.Contains(e.Info.Server, "server-2")
		v, err := kv.Get(context.Background(), key)
		switch {
		case err == nil && string(v) == val:
			read++
		case err == nil:
			t.Fatalf("get %s returned corrupt value (%d bytes)", key, len(v))
		case onDead:
			lostOK++
		default:
			t.Fatalf("acked key %s on surviving server %s unreadable: %v",
				key, e.Info.Server, err)
		}
	}
	if read == 0 {
		t.Fatal("no acked write was readable after the crash")
	}
	t.Logf("acked=%d readable=%d lost-with-dead-server=%d post-crash-acked=%d",
		len(acked), read, lostOK, ackedPostCrash)

	// Control-plane calls still return within the deadline budget
	// (bounded by the RPC timeout, not a hang), whatever their outcome.
	start := time.Now()
	_, _, _ = c.CreatePrefix(context.Background(), "chaos/t2", nil, DSKV, 1, 0)
	if elapsed := time.Since(start); elapsed > 3*cfg.RPCTimeout {
		t.Errorf("post-crash CreatePrefix took %v; deadline not enforced", elapsed)
	}
}

// TestChaosLeaseExpiryUnderNetworkDelay is the §3.2 no-data-loss
// guarantee under an adversarial network: the client's lease renewal is
// blackholed (an unbounded network delay), the lease lapses on the
// virtual clock, and the controller reclaims the prefix. Every
// acknowledged write must survive via the flush-then-reclaim order and
// be readable after the expired prefix reloads.
func TestChaosLeaseExpiryUnderNetworkDelay(t *testing.T) {
	inj := faultinject.New(202, nil)
	vclock := clock.NewVirtual(time.Unix(0, 0))
	cfg := core.TestConfig()
	cfg.LeaseDuration = time.Minute
	cfg.RPCTimeout = 300 * time.Millisecond
	cluster := chaosCluster(t, inj, cfg, ClusterOptions{
		Servers: 1, BlocksPerServer: 16, Clock: vclock, DisableExpiry: true,
	})
	c, err := cluster.Connect(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.RegisterJob(context.Background(), "lease")
	if _, _, err := c.CreatePrefix(context.Background(), "lease/t", nil, DSKV, 1, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	kv, _ := c.OpenKV(context.Background(), "lease/t")
	const n = 40
	for i := 0; i < n; i++ {
		if err := kv.Put(context.Background(), fmt.Sprintf("k%d", i), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}

	// The renewal window arrives, but the network eats every renew: the
	// client→controller direction is partitioned, so the call dies on
	// its RPC deadline. (Had the renewal gotten through at t=8s, the
	// lease would run to t=18s and nothing below would expire.)
	vclock.Advance(8 * time.Second)
	inj.Partition("send:" + cluster.ControllerAddr)
	start := time.Now()
	if _, err := c.RenewLease(context.Background(), "lease/t"); !errors.Is(err, ErrTimeout) {
		t.Fatalf("partitioned renew = %v, want timeout", err)
	}
	if elapsed := time.Since(start); elapsed > 5*cfg.RPCTimeout {
		t.Fatalf("partitioned renew took %v; deadline not enforced", elapsed)
	}

	// The lease lapses; the expiry scan must flush before reclaiming.
	vclock.Advance(3 * time.Second)
	if got := cluster.Controller.ExpireNow(); got != 1 {
		t.Fatalf("expiry scan reclaimed %d prefixes, want 1", got)
	}
	flushed, err := cluster.Store.List("jiffy-flush/lease/t")
	if err != nil || len(flushed) == 0 {
		t.Fatalf("no flush artifacts in the persist tier: %v %v", flushed, err)
	}

	// The network heals; a fresh handle reloads the flushed prefix and
	// every acknowledged write is still there.
	inj.HealAll()
	kv2, err := c.OpenKV(context.Background(), "lease/t")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		v, err := kv2.Get(context.Background(), fmt.Sprintf("k%d", i))
		if err != nil || string(v) != fmt.Sprintf("v%d", i) {
			t.Fatalf("acked write k%d lost across lease expiry: %q, %v", i, v, err)
		}
	}
}

// TestChaosControllerFailoverUnderLoad checkpoints the controller,
// kills it while writers are mid-flight, and restores a replacement
// from the snapshot. In-flight calls against the dead controller must
// fail fast with the typed session error (not hang), and every write
// acknowledged at any point must be readable through the restored
// metadata.
func TestChaosControllerFailoverUnderLoad(t *testing.T) {
	inj := faultinject.New(303, nil)
	cfg := core.TestConfig()
	cfg.LeaseDuration = time.Hour // survive the failover window
	cfg.RPCTimeout = 2 * time.Second
	cluster := chaosCluster(t, inj, cfg, ClusterOptions{Servers: 2, BlocksPerServer: 32})
	c, err := cluster.Connect(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.RegisterJob(context.
		// Enough initial blocks that the load below never splits: the block
		// layout at checkpoint time must match the layout at restore time.
		Background(), "ha")

	if _, _, err := c.CreatePrefix(context.Background(), "ha/t", nil, DSKV, 4, 0); err != nil {
		t.Fatal(err)
	}

	const writers = 4
	var (
		mu      sync.Mutex
		acked   []string
		stop    = make(chan struct{})
		wg      sync.WaitGroup
		written [writers]int
	)
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			kv, err := c.OpenKV(context.Background(), "ha/t")
			if err != nil {
				return
			}
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				key := fmt.Sprintf("w%d-%d", g, i)
				if err := kv.Put(context.Background(), key, []byte(key)); err == nil {
					mu.Lock()
					acked = append(acked, key)
					mu.Unlock()
					written[g]++
				}
				// Pace the writers: the scenario needs calls in flight
				// across the checkpoint and the crash, not raw volume. An
				// unpaced loop fills the initial blocks and triggers
				// splits after the checkpoint, breaking the layout
				// premise above regardless of machine speed.
				time.Sleep(2 * time.Millisecond)
			}
		}(g)
	}

	// Let the load build, checkpoint under load, keep loading, crash.
	time.Sleep(50 * time.Millisecond)
	if err := c.SaveControllerState(context.Background(), "ckpt/chaos"); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	cluster.Controller.Close()
	inj.BreakConns("controller-0")

	// A control-plane call against the dead controller fails fast with
	// the typed session-close error — pending calls don't hang.
	start := time.Now()
	_, err = c.ControllerStats(context.Background())
	if err == nil {
		t.Fatal("stats against dead controller succeeded")
	}
	if !errors.Is(err, core.ErrClosed) && !errors.Is(err, ErrTimeout) {
		t.Fatalf("dead-controller call error unclassified: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 3*cfg.RPCTimeout {
		t.Fatalf("dead-controller call took %v", elapsed)
	}
	time.Sleep(30 * time.Millisecond) // a little more data-plane-only load
	close(stop)
	wg.Wait()
	mu.Lock()
	ackedAll := append([]string(nil), acked...)
	mu.Unlock()
	if len(ackedAll) == 0 {
		t.Fatal("no write was acknowledged")
	}

	// Restore a replacement from the checkpoint; the memory servers
	// never went down, so every acked write must be reachable through
	// the restored metadata.
	ctrl2, err := controller.New(controller.Options{
		Config: cfg, Persist: cluster.Store, DisableExpiry: true, Dial: inj.Dial,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ctrl2.Close()
	if err := ctrl2.RestoreState("ckpt/chaos"); err != nil {
		t.Fatal(err)
	}
	addr2, err := ctrl2.Listen("mem://chaos-failover-ctrl2")
	if err != nil {
		t.Fatal(err)
	}
	c2, err := client.Connect(context.Background(), addr2,
		client.WithDial(inj.Dial), client.WithRPCTimeout(cfg.RPCTimeout))
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	kv2, err := c2.OpenKV(context.Background(), "ha/t")
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range ackedAll {
		v, err := kv2.Get(context.Background(), key)
		if err != nil || string(v) != key {
			t.Fatalf("acked write %s lost across failover: %q, %v", key, v, err)
		}
	}
	t.Logf("verified %d acked writes across failover (per-writer %v)", len(ackedAll), written)
}

// TestChaosChainReplicaKillTailReadContinuity kills the tail of a
// two-member replica chain and verifies reads transparently fall back
// to the surviving upstream member — safe because chain propagation is
// synchronous, so the head holds every acknowledged write.
func TestChaosChainReplicaKillTailReadContinuity(t *testing.T) {
	inj := faultinject.New(404, nil)
	cfg := core.TestConfig()
	cfg.LeaseDuration = time.Minute
	cfg.ChainLength = 2
	cfg.RPCTimeout = 2 * time.Second
	cluster := chaosCluster(t, inj, cfg, ClusterOptions{Servers: 3, BlocksPerServer: 16})
	c, err := cluster.Connect(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.RegisterJob(context.Background(), "rj")
	m, _, err := c.CreatePrefix(context.Background(), "rj/t", nil, DSKV, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	chain := m.Blocks[0].Chain
	if len(chain) != 2 {
		t.Fatalf("chain = %+v", chain)
	}
	kv, _ := c.OpenKV(context.Background(), "rj/t")
	const n = 50
	for i := 0; i < n; i++ {
		if err := kv.Put(context.Background(), fmt.Sprintf("k%d", i), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}

	// Kill the tail's server: close its listener and sever every live
	// session to it (replication links and client data conns alike).
	tail := chain[len(chain)-1].Server
	for i, srv := range cluster.Servers {
		if strings.Contains(tail, fmt.Sprintf("server-%d", i)) {
			srv.Close()
		}
	}
	inj.BreakConns(tail)

	// Reads were routed to the tail; they must keep answering from the
	// upstream member without a single lost acked write.
	for i := 0; i < n; i++ {
		v, err := kv.Get(context.Background(), fmt.Sprintf("k%d", i))
		if err != nil || string(v) != fmt.Sprintf("v%d", i) {
			t.Fatalf("read continuity broken at k%d after tail kill: %q, %v", i, v, err)
		}
	}
}

// TestChaosListenerResubscribeAcrossDisconnect forces the data-plane
// session carrying a subscription to die and verifies the listener
// re-subscribes over a fresh session, resuming notification delivery.
func TestChaosListenerResubscribeAcrossDisconnect(t *testing.T) {
	inj := faultinject.New(505, nil)
	cfg := core.TestConfig()
	cfg.LeaseDuration = time.Minute
	cfg.RPCTimeout = 2 * time.Second
	cluster := chaosCluster(t, inj, cfg, ClusterOptions{Servers: 1, BlocksPerServer: 16})
	c, err := cluster.Connect(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.RegisterJob(context.Background(), "sub")
	if _, _, err := c.CreatePrefix(context.Background(), "sub/chan", nil, DSQueue, 1, 0); err != nil {
		t.Fatal(err)
	}
	consumer, _ := c.OpenQueue(context.Background(), "sub/chan")
	listener, err := consumer.Subscribe(context.Background(), core.OpEnqueue)
	if err != nil {
		t.Fatal(err)
	}
	defer listener.Close()
	producer, _ := c.OpenQueue(context.Background(), "sub/chan")

	if err := producer.Enqueue(context.Background(), []byte("before")); err != nil {
		t.Fatal(err)
	}
	if n, err := listener.Get(2 * time.Second); err != nil || string(n.Data) != "before" {
		t.Fatalf("pre-disconnect notification = %+v, %v", n, err)
	}

	// The data-plane session dies; the server dropped the subscription
	// with it. The next Get times out and resyncs, which prunes the dead
	// session and re-subscribes over a fresh one.
	if broke := inj.BreakConns("server-0"); broke == 0 {
		t.Fatal("no data-plane session to break")
	}
	if _, err := listener.Get(150 * time.Millisecond); !errors.Is(err, ErrTimeout) {
		t.Fatalf("post-disconnect Get = %v, want timeout-triggered resync", err)
	}
	if err := producer.Enqueue(context.Background(), []byte("after")); err != nil {
		t.Fatalf("post-disconnect enqueue: %v", err)
	}
	n, err := listener.Get(2 * time.Second)
	if err != nil || string(n.Data) != "after" {
		t.Fatalf("post-resubscribe notification = %+v, %v", n, err)
	}
}

// TestChaosServerDiesMidBatch kills one of two servers under a batch
// whose ops span both, under a seeded fault schedule. The batched path
// must attribute outcomes per op — every op on the dead server fails
// with a classified connection-level error, every op on the survivor
// succeeds and stays readable, and no op reports silent success — and
// the injector's schedule for the scenario's rule must be reproducible
// from the seed alone.
func TestChaosServerDiesMidBatch(t *testing.T) {
	const seed = 707
	jitter := faultinject.Rule{
		Name: "wire-jitter", Match: "send:",
		Latency: 50 * time.Microsecond, Jitter: 150 * time.Microsecond,
	}
	inj := faultinject.New(seed, nil)
	inj.AddRule(jitter)
	cfg := core.TestConfig()
	cfg.LeaseDuration = time.Minute
	cfg.RPCTimeout = time.Second
	cluster := chaosCluster(t, inj, cfg, ClusterOptions{Servers: 2, BlocksPerServer: 16})
	c, err := client.ConnectMulti(context.Background(), cluster.ControllerAddrs,
		client.WithDial(inj.Dial), client.WithRPCTimeout(cfg.RPCTimeout),
		client.WithRetryPolicy(client.RetryPolicy{Limit: 3}))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.RegisterJob(context.Background(), "midbatch")
	m, _, err := c.CreatePrefix(context.Background(), "midbatch/t", nil, DSKV, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	kv, err := c.OpenKV(context.Background(), "midbatch/t")
	if err != nil {
		t.Fatal(err)
	}

	// Build one batch spanning both servers and record, per op, whether
	// its block lives on the server about to die.
	const n = 64
	pairs := make([]KVPair, n)
	onDead := make([]bool, n)
	deadCount := 0
	for i := range pairs {
		key := fmt.Sprintf("mb-%03d", i)
		pairs[i] = KVPair{Key: key, Value: []byte("v-" + key)}
		e, ok := m.BlockForSlot(ds.SlotOf(key, m.NumSlots))
		if !ok {
			t.Fatalf("no block for key %s", key)
		}
		onDead[i] = strings.Contains(e.Info.Server, "server-1")
		if onDead[i] {
			deadCount++
		}
	}
	if deadCount == 0 || deadCount == n {
		t.Fatalf("batch does not span both servers: %d/%d ops on server-1", deadCount, n)
	}

	// The server dies with the batch about to hit it: listener gone,
	// every live session severed.
	cluster.Servers[1].Close()
	inj.BreakConns("server-1")

	err = kv.MultiPut(context.Background(), pairs)
	if err == nil {
		t.Fatal("batch spanning a dead server reported total success")
	}
	var me *MultiError
	if !errors.As(err, &me) {
		t.Fatalf("batch failure is %T (%v), want *MultiError with per-op attribution", err, err)
	}
	if len(me.Errs) != n {
		t.Fatalf("MultiError carries %d outcomes for %d ops", len(me.Errs), n)
	}
	for i, oerr := range me.Errs {
		switch {
		case onDead[i] && oerr == nil:
			t.Fatalf("op %d (%s) targeted the dead server but reported success", i, pairs[i].Key)
		case onDead[i] && !errors.Is(oerr, core.ErrClosed) && !errors.Is(oerr, ErrTimeout):
			t.Fatalf("op %d (%s) failed with unclassified error: %v", i, pairs[i].Key, oerr)
		case !onDead[i] && oerr != nil:
			t.Fatalf("op %d (%s) on the surviving server failed: %v", i, pairs[i].Key, oerr)
		}
	}

	// No silent partial success in either direction: every op the batch
	// acknowledged is readable with the written value.
	for i, p := range pairs {
		if onDead[i] {
			continue
		}
		v, gerr := kv.Get(context.Background(), p.Key)
		if gerr != nil || string(v) != string(p.Value) {
			t.Fatalf("acked op %s unreadable after mid-batch crash: %q, %v", p.Key, v, gerr)
		}
	}

	// The fault schedule is a pure function of (seed, rule, op index):
	// a fresh injector with the same seed produces the identical
	// schedule, and the schedule is non-trivial under this rule.
	sched := inj.Schedule("wire-jitter", 64)
	inj2 := faultinject.New(seed, nil)
	inj2.AddRule(jitter)
	resched := inj2.Schedule("wire-jitter", 64)
	if len(sched) != 64 || len(resched) != 64 {
		t.Fatalf("schedule lengths = %d, %d", len(sched), len(resched))
	}
	varied := false
	for k := range sched {
		if sched[k] != resched[k] {
			t.Fatalf("same seed, different decision at op %d: %+v vs %+v", k, sched[k], resched[k])
		}
		if k > 0 && sched[k].Delay != sched[0].Delay {
			varied = true
		}
	}
	if !varied {
		t.Error("jitter schedule is constant; the seeded draw did not engage")
	}
	t.Logf("batch of %d ops: %d attributed to dead server, %d acked on survivor",
		n, deadCount, n-deadCount)
}

// flakyFlushAttempts runs the lease-expiry flush against a persist tier
// failing puts with probability 0.6 under the given seed, and returns
// how many expiry scans it took until the flush went through and the
// prefix was reclaimed. Data integrity is asserted along the way.
func flakyFlushAttempts(t *testing.T, seed int64) int {
	t.Helper()
	inj := faultinject.New(seed, nil)
	inj.AddRule(faultinject.Rule{Name: "flaky-persist", Match: "persist:put", ErrProb: 0.6})
	store := inj.Store(persist.NewMemStore())
	vclock := clock.NewVirtual(time.Unix(0, 0))
	cfg := core.TestConfig()
	cfg.LeaseDuration = time.Minute
	cfg.RPCTimeout = 2 * time.Second
	cluster := chaosCluster(t, inj, cfg, ClusterOptions{
		Servers: 1, BlocksPerServer: 16, Persist: store,
		Clock: vclock, DisableExpiry: true,
	})
	c, err := cluster.Connect(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.RegisterJob(context.Background(), "flaky")
	if _, _, err := c.CreatePrefix(context.Background(), "flaky/t", nil, DSKV, 1, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	kv, _ := c.OpenKV(context.Background(), "flaky/t")
	const n = 20
	for i := 0; i < n; i++ {
		if err := kv.Put(context.Background(), fmt.Sprintf("k%d", i), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	vclock.Advance(6 * time.Second)
	attempts := 0
	for ; attempts < 50; attempts++ {
		if cluster.Controller.ExpireNow() == 1 {
			attempts++
			break
		}
		// Failed flush: the data must still be live in memory, untouched.
		if v, err := kv.Get(context.Background(), "k0"); err != nil || string(v) != "v0" {
			t.Fatalf("data lost after failed flush attempt %d: %q, %v", attempts, v, err)
		}
	}
	if attempts >= 50 {
		t.Fatal("flush never succeeded in 50 expiry scans")
	}
	// Reclaimed now — and recoverable without loss.
	kv2, err := c.OpenKV(context.Background(), "flaky/t")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		v, err := kv2.Get(context.Background(), fmt.Sprintf("k%d", i))
		if err != nil || string(v) != fmt.Sprintf("v%d", i) {
			t.Fatalf("acked write k%d lost across flaky-flush expiry: %q, %v", i, v, err)
		}
	}
	return attempts
}

// TestChaosPersistFlakyFlushDeterministic exercises expiry against a
// flaky persist tier — failed flushes must keep the data in memory and
// retry, never reclaim-then-lose — and proves the reproducibility
// contract end to end: the same seed yields the exact same number of
// attempts, a different seed is free to differ.
func TestChaosPersistFlakyFlushDeterministic(t *testing.T) {
	a := flakyFlushAttempts(t, 606)
	b := flakyFlushAttempts(t, 606)
	if a != b {
		t.Fatalf("same seed, different fault schedules: %d vs %d attempts", a, b)
	}
	if a == 1 {
		t.Error("flush never failed; the flaky rule did not engage")
	}
	t.Logf("seed 606: flush succeeded on attempt %d in both runs", a)
}
