package jiffy

import (
	"context"
	"fmt"
	"log/slog"
	"sync/atomic"

	"jiffy/internal/client"
	"jiffy/internal/clock"
	"jiffy/internal/controller"
	"jiffy/internal/core"
	"jiffy/internal/persist"
	"jiffy/internal/rpc"
	"jiffy/internal/server"
)

// ClusterOptions configures StartCluster.
type ClusterOptions struct {
	// Config supplies system tunables; zero value means TestConfig
	// (64KB blocks, fast leases) — suitable for laptops and tests. Use
	// DefaultConfig for the paper's production values.
	Config Config
	// Controllers is the number of controller group members. The first
	// leads; the rest apply its op-log stream and stand by to promote
	// on failover (§4.2 control-plane fault tolerance). Default 1.
	Controllers int
	// Servers is the number of memory servers (default 1).
	Servers int
	// BlocksPerServer is each server's capacity contribution
	// (default 64).
	BlocksPerServer int
	// ControllerShards is the number of in-process shards per
	// controller (default 1).
	ControllerShards int
	// Transport selects "mem" (in-process, default) or "tcp"
	// (127.0.0.1 loopback).
	Transport string
	// Persist is the shared external store for flushes/spills
	// (default: one in-memory store shared by all components).
	Persist persist.Store
	// Clock overrides the time source (simulations use a virtual
	// clock).
	Clock clock.Clock
	// Logger receives operational logs from all components.
	Logger *slog.Logger
	// DisableExpiry turns off the lease expiry worker.
	DisableExpiry bool
	// Dial customizes every outbound connection made by the cluster's
	// controllers and memory servers (chaos tests route these through a
	// fault injector; nil uses the plain transports).
	Dial func(addr string) (*rpc.Client, error)
}

// Cluster is an in-process Jiffy deployment: one or more controllers
// plus a set of memory servers, all speaking the real framed RPC
// protocol. It backs the examples, the test suite and the live-path
// experiments; production deployments run the same components via
// cmd/jiffy-controller and cmd/jiffy-server instead.
type Cluster struct {
	// Controllers holds the controller group; Controller and
	// ControllerAddr alias the first member, which starts as leader.
	Controllers     []*controller.Controller
	Controller      *controller.Controller
	ControllerAddrs []string
	ControllerAddr  string
	Servers         []*server.Server
	Store           persist.Store

	cfg  core.Config
	dial func(addr string) (*rpc.Client, error)
}

// clusterSeq disambiguates mem:// endpoint names across clusters in
// one process.
var clusterSeq atomic.Int64

// StartCluster boots the controller group and memory servers and wires
// them together: the first controller leads, the rest join as op-log
// standbys, and every memory server knows the whole group so it can
// re-home its heartbeats and signals after a failover.
func StartCluster(opts ClusterOptions) (*Cluster, error) {
	if opts.Config == (Config{}) {
		opts.Config = core.TestConfig()
	}
	if err := opts.Config.Validate(); err != nil {
		return nil, err
	}
	if opts.Controllers <= 0 {
		opts.Controllers = 1
	}
	if opts.Servers <= 0 {
		opts.Servers = 1
	}
	if opts.BlocksPerServer <= 0 {
		opts.BlocksPerServer = 64
	}
	if opts.Persist == nil {
		opts.Persist = persist.NewMemStore()
	}
	if opts.Logger == nil {
		opts.Logger = slog.Default()
	}
	seq := clusterSeq.Add(1)

	c := &Cluster{Store: opts.Persist, cfg: opts.Config, dial: opts.Dial}
	for i := 0; i < opts.Controllers; i++ {
		ctrl, err := controller.New(controller.Options{
			Config:        opts.Config,
			Shards:        opts.ControllerShards,
			Clock:         opts.Clock,
			Persist:       opts.Persist,
			Logger:        opts.Logger,
			DisableExpiry: opts.DisableExpiry,
			Dial:          opts.Dial,
		})
		if err != nil {
			c.Close()
			return nil, err
		}
		addr, err := ctrl.Listen(endpoint(opts.Transport,
			fmt.Sprintf("jiffy-%d-controller-%d", seq, i)))
		if err != nil {
			ctrl.Close()
			c.Close()
			return nil, err
		}
		c.Controllers = append(c.Controllers, ctrl)
		c.ControllerAddrs = append(c.ControllerAddrs, addr)
	}
	c.Controller = c.Controllers[0]
	c.ControllerAddr = c.ControllerAddrs[0]

	// Join the replicated group: standbys first (so the leader's first
	// pulse finds them listening and bootstraps them), leader last.
	if len(c.Controllers) > 1 {
		for i := 1; i < len(c.Controllers); i++ {
			c.Controllers[i].ConfigureGroup(c.ControllerAddrs, i, 0)
		}
		c.Controllers[0].ConfigureGroup(c.ControllerAddrs, 0, 0)
	}

	for i := 0; i < opts.Servers; i++ {
		srv, err := server.New(server.Options{
			Config:          opts.Config,
			ControllerAddrs: c.ControllerAddrs,
			Persist:         opts.Persist,
			Logger:          opts.Logger,
			Dial:            opts.Dial,
			Clock:           opts.Clock,
		})
		if err != nil {
			c.Close()
			return nil, err
		}
		if _, err := srv.Listen(endpoint(opts.Transport, fmt.Sprintf("jiffy-%d-server-%d", seq, i))); err != nil {
			c.Close()
			return nil, err
		}
		if err := srv.Register(opts.BlocksPerServer); err != nil {
			srv.Close()
			c.Close()
			return nil, err
		}
		c.Servers = append(c.Servers, srv)
	}
	return c, nil
}

// endpoint picks an address for the chosen transport.
func endpoint(transport, name string) string {
	if transport == "tcp" {
		return "127.0.0.1:0"
	}
	return "mem://" + name
}

// Connect opens a client against the cluster's controller group. The
// client inherits the cluster's RPC timeout and custom dialer; extra
// options are applied on top (so a test can, e.g., add WithTracing).
func (c *Cluster) Connect(ctx context.Context, opts ...client.Option) (*Client, error) {
	timeout := c.cfg.RPCTimeout
	if timeout == 0 {
		timeout = -1 // cluster configured unbounded calls; honor that
	}
	base := []client.Option{
		client.WithControllers(c.ControllerAddrs...),
		client.WithDial(c.dial),
		client.WithRPCTimeout(timeout),
	}
	return client.Dial(ctx, append(base, opts...)...)
}

// Close tears the cluster down: servers first, then the controllers.
func (c *Cluster) Close() error {
	for _, s := range c.Servers {
		s.Close()
	}
	var err error
	for _, ctrl := range c.Controllers {
		if cerr := ctrl.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	return err
}
