package jiffy_test

// Hot-path single-op vs batched micro-benchmarks. The bodies live in
// internal/bench/hotpath so cmd/jiffy-regress can run the identical
// code and emit BENCH_hotpath.json; these wrappers expose them to the
// standard `go test -bench` flow:
//
//	go test -bench 'KVPut|KVGet|FileAppend|QueueEnqueue' -benchmem

import (
	"testing"

	"jiffy/internal/bench/hotpath"
)

func hotpathBench(b *testing.B, name string) {
	b.Helper()
	for _, bench := range hotpath.Benches(false) {
		if bench.Name == name {
			bench.F(b)
			return
		}
	}
	b.Fatalf("no hotpath benchmark named %q", name)
}

func BenchmarkKVPutSingle(b *testing.B)        { hotpathBench(b, "KVPutSingle") }
func BenchmarkKVPutBatch(b *testing.B)         { hotpathBench(b, "KVPutBatch") }
func BenchmarkKVGetSingle(b *testing.B)        { hotpathBench(b, "KVGetSingle") }
func BenchmarkKVGetBatch(b *testing.B)         { hotpathBench(b, "KVGetBatch") }
func BenchmarkFileAppendSingle(b *testing.B)   { hotpathBench(b, "FileAppendSingle") }
func BenchmarkFileAppendBatch(b *testing.B)    { hotpathBench(b, "FileAppendBatch") }
func BenchmarkQueueEnqueueSingle(b *testing.B) { hotpathBench(b, "QueueEnqueueSingle") }
func BenchmarkQueueEnqueueBatch(b *testing.B)  { hotpathBench(b, "QueueEnqueueBatch") }
