// Command jiffy-soak runs the multi-tenant QoS soak harness
// (internal/soak): gold/silver/bronze tenant tiers replaying the
// synthetic trace workload against an in-process multi-server cluster,
// with seeded wire faults, a mid-run server kill + repair and a live
// drain, graded against per-tier SLOs, Jain fairness, throttle
// accounting and zero acked-write loss.
//
//	jiffy-soak                 # the seeded CI configuration (virtual clock, ~30s)
//	jiffy-soak -wall           # wall-clock burn-in at the same shape
//	jiffy-soak -scale 4        # 4x the tenants per tier
//	jiffy-soak -ticks 1200     # a longer run
//	jiffy-soak -report out.txt # also write the report artifact
//
// Exits 1 when any SLO is violated or an acknowledged write is lost.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"jiffy/internal/soak"
)

func main() {
	var (
		seed   = flag.Int64("seed", 1, "workload and fault-injection seed")
		ticks  = flag.Int("ticks", 0, "override tick count (0 = default 120)")
		wall   = flag.Bool("wall", false, "run on the wall clock instead of the virtual clock")
		scale  = flag.Int("scale", 1, "multiply every tier's tenant count")
		report = flag.String("report", "", "also write the rendered report to this file")
		noKill = flag.Bool("no-faults", false, "disable the mid-soak server kill and drain")
	)
	flag.Parse()

	cfg := soak.DefaultShortConfig()
	cfg.Seed = *seed
	cfg.Wall = *wall
	if *ticks > 0 {
		cfg.Ticks = *ticks
		// Keep the fault schedule inside the run, at the same relative
		// positions as the default (kill at 3/8, controller kill at
		// 1/2, drain at 2/3).
		cfg.KillAtTick = *ticks * 3 / 8
		cfg.CtrlKillAtTick = *ticks / 2
		cfg.DrainAtTick = *ticks * 2 / 3
	}
	if *noKill {
		cfg.KillAtTick = 0
		cfg.CtrlKillAtTick = 0
		cfg.DrainAtTick = 0
	}
	cfg = cfg.Scale(*scale)

	rep, err := soak.Run(cfg, log.Printf)
	if err != nil {
		log.Fatalf("soak: %v", err)
	}
	rendered := rep.Render()
	fmt.Print(rendered)
	if *report != "" {
		if err := os.WriteFile(*report, []byte(rendered), 0o644); err != nil {
			log.Fatalf("soak: writing report: %v", err)
		}
	}
	if !rep.Passed() {
		os.Exit(1)
	}
}
