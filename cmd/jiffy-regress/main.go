// jiffy-regress runs the hot-path micro-benchmarks (single-op vs
// batched KV/file/queue operations over the mem:// transport), writes
// the results as machine-readable JSON, and optionally compares them
// against a checked-in baseline, exiting non-zero on regression.
//
//	jiffy-regress -out BENCH_hotpath.json                 # record
//	jiffy-regress -quick -baseline BENCH_hotpath.json     # CI gate
//	jiffy-regress -quick -overhead                        # telemetry on/off A-B gate
//	jiffy-regress -quick -tail -tail-out TAIL.json        # hedged-read tail-latency gate
//
// The default comparison is hardware-neutral (batch-vs-single speedup
// ratios and allocs/op); pass -absolute to also gate on raw ops/sec
// when baseline and current ran on the same machine.
//
// Claimed optimizations are pinned with the repeatable -improve flag:
//
//	jiffy-regress -quick -baseline BENCH_hotpath.json -improve FileRead1M:1.5:0.5
//
// which requires the named benchmark to beat the baseline by >= 1.5x
// ops/sec while allocating <= 0.5x the baseline's bytes/op.
//
// Contended mode measures the single-op hot path under concurrency:
//
//	jiffy-regress -parallel 8                       # 8 goroutines, one session
//	jiffy-regress -parallel 8 -shards 4             # same, session sharded 4 ways
//
// The parallelism level is recorded in the report ("parallel"), and
// comparing reports taken at different levels is refused.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"

	"jiffy/internal/bench/ctrlscale"
	"jiffy/internal/bench/hotpath"
	"jiffy/internal/bench/regress"
	"jiffy/internal/bench/tailbench"
)

// improveFlag collects repeated -improve Name:minOpsRatio:maxBytesRatio
// claims.
type improveFlag []regress.Improvement

func (f *improveFlag) String() string {
	parts := make([]string, 0, len(*f))
	for _, imp := range *f {
		parts = append(parts, fmt.Sprintf("%s:%g:%g", imp.Name, imp.MinOpsRatio, imp.MaxBytesRatio))
	}
	return strings.Join(parts, ",")
}

func (f *improveFlag) Set(v string) error {
	parts := strings.Split(v, ":")
	if len(parts) != 3 || parts[0] == "" {
		return fmt.Errorf("want Name:minOpsRatio:maxBytesRatio, got %q", v)
	}
	minOps, err := strconv.ParseFloat(parts[1], 64)
	if err != nil {
		return fmt.Errorf("bad minOpsRatio in %q: %v", v, err)
	}
	maxBytes, err := strconv.ParseFloat(parts[2], 64)
	if err != nil {
		return fmt.Errorf("bad maxBytesRatio in %q: %v", v, err)
	}
	*f = append(*f, regress.Improvement{Name: parts[0], MinOpsRatio: minOps, MaxBytesRatio: maxBytes})
	return nil
}

func main() {
	out := flag.String("out", "BENCH_hotpath.json", "path to write the JSON report (empty = don't write)")
	baseline := flag.String("baseline", "", "baseline report to compare against (empty = record only)")
	tolerance := flag.Float64("tolerance", 0.25, "allowed fractional regression before failing")
	absolute := flag.Bool("absolute", false, "also compare raw ops/sec (same-machine baselines only)")
	quick := flag.Bool("quick", false, "smaller cluster and working set (CI smoke mode)")
	overhead := flag.Bool("overhead", false, "A/B the batched hot path with telemetry on vs off and gate the difference")
	overheadTol := flag.Float64("overhead-tolerance", 0.02, "allowed fractional telemetry overhead with -overhead")
	overheadRounds := flag.Int("overhead-rounds", 3, "interleaved A/B rounds per benchmark with -overhead")
	ctrlScale := flag.Bool("ctrl-scale", false, "measure controller metadata shard scaling (Fig. 12(b)) and gate the speedup")
	ctrlScaleMin := flag.Float64("ctrl-scale-min", 2.0, "required sharded-vs-single-lock ops/sec ratio with -ctrl-scale")
	tail := flag.Bool("tail", false, "measure hedged vs unhedged read p99 under an injected slow chain tail and gate the hedged tail")
	tailMax := flag.Float64("tail-max", 3.0, "allowed hedged p99 as a multiple of the healthy baseline with -tail")
	tailOut := flag.String("tail-out", "", "path to write the -tail report JSON (empty = don't write)")
	rounds := flag.Int("rounds", 1, "measurement rounds per benchmark; the best round is kept (use >1 on noisy machines)")
	parallel := flag.Int("parallel", 1, "contended mode: run only the single-op benchmarks, with this many goroutines sharing one session")
	shards := flag.Int("shards", 1, "session shards for the contended-mode client (WithSessionShards); only meaningful with -parallel")
	var improvements improveFlag
	flag.Var(&improvements, "improve",
		"claimed win to enforce vs the baseline, Name:minOpsRatio:maxBytesRatio (repeatable)")
	flag.Parse()

	if *ctrlScale {
		if runtime.GOMAXPROCS(0) < 4 {
			// The ratio measures lock-domain parallelism; below four
			// cores there is nothing for extra shards to run on, so the
			// gate would fail for hardware reasons. Say so instead of
			// reporting a phantom regression.
			fmt.Printf("ctrl-scale: skipped, GOMAXPROCS=%d < 4 cannot exercise shard parallelism\n",
				runtime.GOMAXPROCS(0))
			return
		}
		base, scaled, ratio, err := ctrlscale.Gate(*quick, *rounds, func(format string, args ...interface{}) {
			fmt.Printf(format, args...)
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "jiffy-regress: ctrl-scale: %v\n", err)
			os.Exit(2)
		}
		fmt.Printf("ctrl-scale: %d blocks, %d jobs, %d workers: 1 shard %.1f KOps -> %d shards %.1f KOps (%.2fx)\n",
			base.Blocks, base.Jobs, base.Workers, base.KOps, scaled.Shards, scaled.KOps, ratio)
		if ratio < *ctrlScaleMin {
			fmt.Fprintf(os.Stderr, "jiffy-regress: ctrl-scale speedup %.2fx below required %.2fx\n",
				ratio, *ctrlScaleMin)
			os.Exit(1)
		}
		return
	}

	if *tail {
		res, err := tailbench.Measure(*quick, func(format string, args ...interface{}) {
			fmt.Printf(format, args...)
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "jiffy-regress: tail: %v\n", err)
			os.Exit(2)
		}
		if *tailOut != "" {
			if err := res.WriteFile(*tailOut); err != nil {
				fmt.Fprintf(os.Stderr, "jiffy-regress: write %s: %v\n", *tailOut, err)
				os.Exit(2)
			}
			fmt.Printf("wrote %s\n", *tailOut)
		}
		// Sanity first: if the unhedged client did not feel the injected
		// delay, the injector misfired and the hedged number proves
		// nothing — refuse to report a pass from a broken measurement.
		if res.UnhedgedP99 < res.InjectedDelay {
			fmt.Fprintf(os.Stderr, "jiffy-regress: tail: unhedged p99 %v below the injected %v delay; fault injection ineffective\n",
				res.UnhedgedP99, res.InjectedDelay)
			os.Exit(2)
		}
		if res.HedgesFired == 0 {
			fmt.Fprintf(os.Stderr, "jiffy-regress: tail: no hedges fired under a %v slow tail\n", res.InjectedDelay)
			os.Exit(1)
		}
		if res.HedgedRatio > *tailMax {
			fmt.Fprintf(os.Stderr, "jiffy-regress: tail: hedged p99 %v is %.2fx the %v baseline, above the allowed %.2fx\n",
				res.HedgedP99, res.HedgedRatio, res.GateBaseline, *tailMax)
			os.Exit(1)
		}
		fmt.Printf("tail: hedged p99 %v within %.1fx of the %v baseline (unhedged %v)\n",
			res.HedgedP99, *tailMax, res.GateBaseline, res.UnhedgedP99)
		return
	}

	if *overhead {
		failed := false
		for _, r := range hotpath.MeasureOverhead(*quick, *overheadRounds, func(format string, args ...interface{}) {
			fmt.Printf(format, args...)
		}) {
			if r.Overhead() > *overheadTol {
				failed = true
				fmt.Fprintf(os.Stderr, "jiffy-regress: %s telemetry overhead %.2f%% exceeds %.2f%%\n",
					r.Name, 100*r.Overhead(), 100**overheadTol)
			}
		}
		if failed {
			os.Exit(1)
		}
		fmt.Printf("telemetry overhead within %.1f%%\n", 100**overheadTol)
		return
	}

	benches := hotpath.Benches(*quick)
	if *parallel > 1 {
		benches = hotpath.ParallelBenches(*quick, *parallel, *shards)
	}
	rep := regress.Run(benches, *quick, *rounds, func(format string, args ...interface{}) {
		fmt.Printf(format, args...)
	})
	if *parallel > 1 {
		rep.Parallel = *parallel
	}

	for fam, speedup := range rep.Speedups() {
		fmt.Printf("%-24s batch speedup %.2fx\n", fam, speedup)
	}

	if *out != "" {
		if err := rep.WriteFile(*out); err != nil {
			fmt.Fprintf(os.Stderr, "jiffy-regress: write %s: %v\n", *out, err)
			os.Exit(2)
		}
		fmt.Printf("wrote %s\n", *out)
	}

	if *baseline != "" {
		base, err := regress.ReadFile(*baseline)
		if err != nil {
			fmt.Fprintf(os.Stderr, "jiffy-regress: %v\n", err)
			os.Exit(2)
		}
		if base.Parallel != rep.Parallel {
			fmt.Fprintf(os.Stderr, "jiffy-regress: baseline parallel=%d vs current parallel=%d: reports from different contention levels are not comparable\n",
				base.Parallel, rep.Parallel)
			os.Exit(2)
		}
		regs := regress.Compare(base, rep, regress.Options{
			Tolerance: *tolerance, Absolute: *absolute, Improvements: improvements,
		})
		if len(regs) > 0 {
			fmt.Fprintf(os.Stderr, "jiffy-regress: %d regression(s) vs %s:\n", len(regs), *baseline)
			for _, r := range regs {
				fmt.Fprintf(os.Stderr, "  %s\n", r)
			}
			os.Exit(1)
		}
		fmt.Printf("no regressions vs %s (tolerance %d%%)\n", *baseline, int(*tolerance*100))
	}
}
