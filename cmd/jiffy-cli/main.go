// Command jiffy-cli pokes a running Jiffy cluster: register jobs,
// create prefixes, read and write the built-in data structures, and
// inspect controller state.
//
//	jiffy-cli -controller localhost:9090 register-job job1
//	jiffy-cli create job1/t1 kv
//	jiffy-cli put job1/t1 key value
//	jiffy-cli get job1/t1 key
//	jiffy-cli enqueue job1/q item
//	jiffy-cli dequeue job1/q
//	jiffy-cli append job1/f "some data"
//	jiffy-cli read job1/f 0 100
//	jiffy-cli renew job1/t1
//	jiffy-cli flush job1/t1 s3://bucket/ckpt
//	jiffy-cli load  job1/t1 s3://bucket/ckpt
//	jiffy-cli ls job1
//	jiffy-cli stats
//	jiffy-cli stats --watch --admin localhost:9190
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"jiffy"
	"jiffy/internal/core"
	"jiffy/internal/obs"
)

func main() {
	controller := flag.String("controller", "localhost:9090",
		"controller address, or comma-separated controller group")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		usage()
		os.Exit(2)
	}
	c, err := jiffy.Dial(context.Background(),
		jiffy.WithControllers(strings.Split(*controller, ",")...))
	if err != nil {
		fatal("connect: %v", err)
	}
	defer c.Close()
	if err := run(c, args); err != nil {
		fatal("%v", err)
	}
}

func run(c *jiffy.Client, args []string) error {
	cmd, rest := args[0], args[1:]
	switch cmd {
	case "register-job":
		need(rest, 1)
		return c.RegisterJob(context.Background(), core.JobID(rest[0]))
	case "deregister-job":
		need(rest, 1)
		return c.DeregisterJob(context.Background(), core.JobID(rest[0]))
	case "create":
		need(rest, 2)
		t, err := core.ParseDSType(rest[1])
		if err != nil {
			return err
		}
		_, lease, err := c.CreatePrefix(context.Background(), core.Path(rest[0]), nil, t, 1, 0)
		if err != nil {
			return err
		}
		fmt.Printf("created %s (%s, lease %v)\n", rest[0], t, lease)
		return nil
	case "remove":
		need(rest, 1)
		return c.RemovePrefix(context.Background(), core.Path(rest[0]))
	case "put":
		need(rest, 3)
		kv, err := c.OpenKV(context.Background(), core.Path(rest[0]))
		if err != nil {
			return err
		}
		return kv.Put(context.Background(), rest[1], []byte(rest[2]))
	case "get":
		need(rest, 2)
		kv, err := c.OpenKV(context.Background(), core.Path(rest[0]))
		if err != nil {
			return err
		}
		v, err := kv.Get(context.Background(), rest[1])
		if err != nil {
			return err
		}
		fmt.Println(string(v))
		return nil
	case "del":
		need(rest, 2)
		kv, err := c.OpenKV(context.Background(), core.Path(rest[0]))
		if err != nil {
			return err
		}
		old, err := kv.Delete(context.Background(), rest[1])
		if err != nil {
			return err
		}
		fmt.Println(string(old))
		return nil
	case "enqueue":
		need(rest, 2)
		q, err := c.OpenQueue(context.Background(), core.Path(rest[0]))
		if err != nil {
			return err
		}
		return q.Enqueue(context.Background(), []byte(rest[1]))
	case "dequeue":
		need(rest, 1)
		q, err := c.OpenQueue(context.Background(), core.Path(rest[0]))
		if err != nil {
			return err
		}
		item, err := q.Dequeue(context.Background())
		if err != nil {
			return err
		}
		fmt.Println(string(item))
		return nil
	case "append":
		need(rest, 2)
		f, err := c.OpenFile(context.Background(), core.Path(rest[0]))
		if err != nil {
			return err
		}
		off, err := f.AppendRecord(context.Background(), []byte(rest[1]))
		if err != nil {
			return err
		}
		fmt.Printf("offset %d\n", off)
		return nil
	case "read":
		need(rest, 3)
		f, err := c.OpenFile(context.Background(), core.Path(rest[0]))
		if err != nil {
			return err
		}
		off, err1 := strconv.Atoi(rest[1])
		n, err2 := strconv.Atoi(rest[2])
		if err1 != nil || err2 != nil {
			return fmt.Errorf("read wants numeric offset and length")
		}
		data, err := f.ReadAt(context.Background(), off, n)
		if err != nil {
			return err
		}
		os.Stdout.Write(data)
		fmt.Println()
		return nil
	case "renew":
		need(rest, 1)
		n, err := c.RenewLease(context.Background(), core.Path(rest[0]))
		if err != nil {
			return err
		}
		fmt.Printf("renewed %d prefixes\n", n)
		return nil
	case "flush":
		need(rest, 2)
		n, err := c.FlushPrefix(context.Background(), core.Path(rest[0]), rest[1])
		if err != nil {
			return err
		}
		fmt.Printf("flushed %d blocks\n", n)
		return nil
	case "load":
		need(rest, 2)
		return c.LoadPrefix(context.Background(), core.Path(rest[0]), rest[1])
	case "ls":
		need(rest, 1)
		prefixes, err := c.ListPrefixes(context.Background(), core.JobID(rest[0]))
		if err != nil {
			return err
		}
		for _, p := range prefixes {
			fmt.Printf("%-40s %-6s blocks=%d renewed=%s\n",
				p.Path, p.Type, p.Blocks, p.LastRenewed.Format("15:04:05.000"))
		}
		return nil
	case "save-state":
		need(rest, 1)
		return c.SaveControllerState(context.Background(), rest[0])
	case "drain":
		need(rest, 1)
		n, err := c.DrainServer(context.Background(), rest[0])
		if err != nil {
			return err
		}
		fmt.Printf("drained %s: migrated %d partition entries\n", rest[0], n)
		return nil
	case "role":
		need(rest, 0)
		role, err := c.ControllerRole(context.Background())
		if err != nil {
			return err
		}
		fmt.Printf("leader: %s\ngeneration: %d\n", role.Leader, role.Gen)
		return nil
	case "promote":
		need(rest, 1)
		gen, err := c.PromoteController(context.Background(), rest[0])
		if err != nil {
			return err
		}
		fmt.Printf("promoted %s at generation %d\n", rest[0], gen)
		return nil
	case "stats":
		return stats(c, rest)
	case "health":
		return health(c, rest)
	default:
		usage()
		return fmt.Errorf("unknown command %q", cmd)
	}
}

// stats prints controller statistics once, or — with --watch —
// refreshes periodically; --admin switches the source from the
// controller-stats RPC to an admin endpoint's Prometheus /metrics.
func stats(c *jiffy.Client, args []string) error {
	fs := flag.NewFlagSet("stats", flag.ContinueOnError)
	watch := fs.Bool("watch", false, "refresh until interrupted")
	admin := fs.String("admin", "", "read an admin endpoint's /metrics instead of the stats RPC")
	interval := fs.Duration("interval", 2*time.Second, "refresh period with --watch")
	if err := fs.Parse(args); err != nil {
		return err
	}
	for {
		var err error
		if *admin != "" {
			err = printAdminMetrics(*admin)
		} else {
			err = printControllerStats(c)
		}
		if err != nil || !*watch {
			return err
		}
		time.Sleep(*interval)
		fmt.Println()
	}
}

// health prints the cluster's gray-failure view: the controller's
// probation list, and this client's own per-server observations
// (breaker state, latency EWMA/p95) for every server it has talked to.
// --admin additionally fetches an admin endpoint's /healthz?detail=1.
func health(c *jiffy.Client, args []string) error {
	fs := flag.NewFlagSet("health", flag.ContinueOnError)
	admin := fs.String("admin", "", "also fetch this admin endpoint's /healthz?detail=1")
	if err := fs.Parse(args); err != nil {
		return err
	}
	s, err := c.ControllerStats(context.Background())
	if err != nil {
		return err
	}
	fmt.Printf("servers:  %d\n", s.Servers)
	if len(s.DegradedServers) == 0 {
		fmt.Println("degraded: none")
	} else {
		fmt.Printf("degraded: %s\n", strings.Join(s.DegradedServers, ", "))
	}
	if hs := c.ServerHealth(); len(hs) > 0 {
		fmt.Println("client-observed server health:")
		for _, h := range hs {
			fmt.Printf("  %-36s breaker=%-9s strikes=%d samples=%d ewma=%v p95=%v probation=%v\n",
				h.Server, h.State, h.Strikes, h.Samples, h.EWMA, h.P95, h.Probation)
		}
	}
	if *admin != "" {
		addr := *admin
		if !strings.Contains(addr, "://") {
			addr = "http://" + addr
		}
		resp, err := http.Get(addr + "/healthz?detail=1")
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			return err
		}
		fmt.Printf("admin %s: %s", *admin, body)
	}
	return nil
}

func printControllerStats(c *jiffy.Client) error {
	s, err := c.ControllerStats(context.Background())
	if err != nil {
		return err
	}
	fmt.Printf("servers:          %d\n", s.Servers)
	fmt.Printf("blocks total:     %d\n", s.TotalBlocks)
	fmt.Printf("blocks free:      %d\n", s.FreeBlocks)
	fmt.Printf("blocks allocated: %d\n", s.AllocatedBlocks)
	fmt.Printf("jobs:             %d\n", s.Jobs)
	fmt.Printf("prefixes:         %d\n", s.Prefixes)
	fmt.Printf("metadata bytes:   %d\n", s.MetadataBytes)
	return nil
}

func printAdminMetrics(addr string) error {
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	resp, err := http.Get(addr + "/metrics")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	vals := obs.ParsePrometheus(body)
	for _, k := range obs.SortedKeys(vals) {
		fmt.Printf("%-60s %g\n", k, vals[k])
	}
	return nil
}

func need(args []string, n int) {
	if len(args) != n {
		usage()
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: jiffy-cli [-controller addr] <command> [args...]

commands:
  register-job <job>            deregister-job <job>
  create <path> <file|queue|kv> remove <path>
  put <path> <key> <value>      get <path> <key>        del <path> <key>
  enqueue <path> <item>         dequeue <path>
  append <path> <data>          read <path> <off> <len>
  renew <path>                  flush <path> <dest>     load <path> <src>
  ls <job>                      stats [--watch] [--admin addr]
  health [--admin addr]
  save-state <key>              drain <server-addr>
  role                          promote <controller-addr>`)
}

func fatal(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "jiffy-cli: "+format+"\n", args...)
	os.Exit(1)
}
