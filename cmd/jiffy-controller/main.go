// Command jiffy-controller runs the Jiffy control plane: hierarchical
// address management, the block allocator, the metadata manager and the
// lease manager, served over the framed RPC protocol (§4.2.1).
//
//	jiffy-controller -listen :9090 -block-size 134217728 -lease 1s \
//	    -shards 8 -persist-dir /var/lib/jiffy
//
// Replicated deployments run one process per group member, each given
// the full member list and its own index; the first member leads and
// the rest stand by on its op-log stream:
//
//	jiffy-controller -listen :9090 -peers ctrl0:9090,ctrl1:9090,ctrl2:9090 -self 0
//	jiffy-controller -listen :9090 -peers ctrl0:9090,ctrl1:9090,ctrl2:9090 -self 1
//
// Memory servers register by pointing jiffy-server at the group;
// clients connect with jiffy.Dial(ctx, jiffy.WithControllers(...)).
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"jiffy/internal/controller"
	"jiffy/internal/core"
	"jiffy/internal/obs"
	"jiffy/internal/persist"
)

func main() {
	var (
		listen     = flag.String("listen", ":9090", "address to serve control RPCs on")
		blockSize  = flag.Int("block-size", core.DefaultBlockSize, "memory block size in bytes")
		lease      = flag.Duration("lease", core.DefaultLeaseDuration, "default lease duration")
		scan       = flag.Duration("lease-scan", core.DefaultLeaseScanPeriod, "expiry worker scan period")
		high       = flag.Float64("high-threshold", core.DefaultHighThreshold, "block usage fraction triggering scale-up")
		low        = flag.Float64("low-threshold", core.DefaultLowThreshold, "block usage fraction triggering scale-down")
		slots      = flag.Int("hash-slots", core.DefaultNumHashSlots, "KV hash-slot space (power of two)")
		shards     = flag.Int("shards", runtime.GOMAXPROCS(0), "control-plane shards (jobs hash across them)")
		persistDir = flag.String("persist-dir", "", "directory for the persistent tier (default: in-memory)")
		restore    = flag.String("restore", "", "restore controller metadata from this checkpoint key at startup")
		admin      = flag.String("admin", "", "serve /metrics, /healthz, /spans and pprof on this address (e.g. :9190)")
		peers      = flag.String("peers", "", "comma-separated controller group member addresses (identical order on every member)")
		self       = flag.Int("self", 0, "this member's index in -peers")
		verbose    = flag.Bool("v", false, "debug logging")
	)
	flag.Parse()

	level := slog.LevelInfo
	if *verbose {
		level = slog.LevelDebug
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level}))

	cfg := core.DefaultConfig()
	cfg.BlockSize = *blockSize
	cfg.LeaseDuration = *lease
	cfg.LeaseScanPeriod = *scan
	cfg.HighThreshold = *high
	cfg.LowThreshold = *low
	cfg.NumHashSlots = *slots

	var store persist.Store = persist.NewMemStore()
	if *persistDir != "" {
		var err error
		store, err = persist.NewDirStore(*persistDir)
		if err != nil {
			fatal("open persist dir: %v", err)
		}
	}

	ctrl, err := controller.New(controller.Options{
		Config:  cfg,
		Shards:  *shards,
		Persist: store,
		Logger:  logger,
	})
	if err != nil {
		fatal("start controller: %v", err)
	}
	if *restore != "" {
		if err := ctrl.RestoreState(*restore); err != nil {
			fatal("restore state: %v", err)
		}
		logger.Info("restored controller state", "key", *restore)
	}
	addr, err := ctrl.Listen(*listen)
	if err != nil {
		fatal("listen: %v", err)
	}
	if *peers != "" {
		group := strings.Split(*peers, ",")
		if *self < 0 || *self >= len(group) {
			fatal("-self %d out of range for %d peers", *self, len(group))
		}
		// Member 0 starts as leader; a standby that outlives it promotes
		// itself via the suspicion-window failover check.
		ctrl.ConfigureGroup(group, *self, 0)
	}
	if *admin != "" {
		adminSrv, err := obs.ServeAdmin(*admin, obs.AdminOptions{
			Registry: ctrl.Obs(),
			Spans:    ctrl.Spans(),
			// /healthz?detail=1 — the gray-failure view: which servers are
			// on probation, and the membership epoch they have NOT moved.
			HealthDetail: func() any {
				return struct {
					MembershipEpoch uint64   `json:"membership_epoch"`
					DegradedServers []string `json:"degraded_servers"`
				}{ctrl.MembershipEpoch(), ctrl.ProbationList()}
			},
		})
		if err != nil {
			fatal("admin endpoint: %v", err)
		}
		defer adminSrv.Close()
		logger.Info("admin endpoint up", "addr", adminSrv.Addr)
	}
	logger.Info("jiffy controller up",
		"addr", addr,
		"block_size", cfg.BlockSize,
		"lease", cfg.LeaseDuration,
		"shards", *shards,
	)

	stopCh := make(chan os.Signal, 1)
	signal.Notify(stopCh, os.Interrupt, syscall.SIGTERM)

	// Periodic stats logging.
	ticker := time.NewTicker(30 * time.Second)
	defer ticker.Stop()
	for {
		select {
		case <-stopCh:
			logger.Info("shutting down")
			ctrl.Close()
			return
		case <-ticker.C:
			s := ctrl.Stats()
			logger.Info("stats",
				"servers", s.Servers,
				"blocks_total", s.TotalBlocks,
				"blocks_free", s.FreeBlocks,
				"jobs", s.Jobs,
				"prefixes", s.Prefixes,
				"metadata_bytes", s.MetadataBytes,
			)
		}
	}
}

func fatal(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "jiffy-controller: "+format+"\n", args...)
	os.Exit(1)
}
