// Command jiffy-bench regenerates the tables and figures of the Jiffy
// paper's evaluation (EuroSys '22, §6). Each subcommand runs one
// experiment and prints the corresponding rows/series:
//
//	jiffy-bench fig1    # Snowflake-like workload analysis
//	jiffy-bench fig9    # job slowdown + utilization vs capacity
//	jiffy-bench fig10   # latency/throughput across six systems
//	jiffy-bench fig11a  # allocated vs used per data structure
//	jiffy-bench fig11b  # repartitioning latency + impact
//	jiffy-bench fig12a  # controller throughput vs latency
//	jiffy-bench fig12b  # controller multi-shard scaling
//	jiffy-bench fig13a  # streaming word-count vs ElastiCache
//	jiffy-bench fig13b  # ExCamera state exchange vs rendezvous server
//	jiffy-bench fig14a|fig14b|fig14c  # sensitivity sweeps
//	jiffy-bench overhead              # §6.4 metadata overhead
//	jiffy-bench all                   # everything
//
// Flags: -quick shrinks workloads for smoke tests; -seed fixes
// workload generation.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"jiffy/internal/bench"
)

var figures = map[string]func(io.Writer, bench.Options) error{
	"fig1":               bench.Fig1,
	"fig9":               bench.Fig9,
	"fig10":              bench.Fig10,
	"fig11a":             bench.Fig11a,
	"fig11b":             bench.Fig11b,
	"fig12a":             bench.Fig12a,
	"fig12b":             bench.Fig12b,
	"fig13a":             bench.Fig13a,
	"fig13b":             bench.Fig13b,
	"fig14a":             bench.Fig14a,
	"fig14b":             bench.Fig14b,
	"fig14c":             bench.Fig14c,
	"overhead":           bench.Overhead,
	"ablation-leases":    bench.AblationLeases,
	"ablation-proactive": bench.AblationProactive,
	"ablation-cuckoo":    bench.AblationCuckoo,
}

func main() {
	quick := flag.Bool("quick", false, "shrink workloads for a fast smoke run")
	seed := flag.Int64("seed", 42, "workload generation seed")
	flag.Usage = usage
	flag.Parse()
	if flag.NArg() != 1 {
		usage()
		os.Exit(2)
	}
	opts := bench.Options{Quick: *quick, Seed: *seed}
	name := flag.Arg(0)

	names := []string{flag.Arg(0)}
	if name == "all" {
		names = names[:0]
		for n := range figures {
			names = append(names, n)
		}
		sort.Strings(names)
	}
	for _, n := range names {
		fn, ok := figures[n]
		if !ok {
			fmt.Fprintf(os.Stderr, "jiffy-bench: unknown experiment %q\n", n)
			usage()
			os.Exit(2)
		}
		fmt.Printf("### %s ###\n", n)
		start := time.Now()
		if err := fn(os.Stdout, opts); err != nil {
			fmt.Fprintf(os.Stderr, "jiffy-bench: %s: %v\n", n, err)
			os.Exit(1)
		}
		fmt.Printf("### %s done in %v ###\n\n", n, time.Since(start).Round(time.Millisecond))
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, "usage: jiffy-bench [-quick] [-seed N] <experiment>\n\nexperiments:\n")
	names := make([]string, 0, len(figures))
	for n := range figures {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(os.Stderr, "  %s\n", n)
	}
	fmt.Fprintf(os.Stderr, "  all\n")
}
