// Command jiffy-server runs a Jiffy memory server: it hosts fixed-size
// memory blocks, serves data-structure operations, pushes notifications
// to subscribers, executes controller-shipped repartitioning and
// participates in chain replication (§4.2.2).
//
//	jiffy-server -listen :9091 -controller ctrl-host:9090 \
//	    -capacity-gb 32 -advertise 10.0.0.5:9091
//
// The server carves its capacity into blocks of the configured size and
// registers them with the controller's free list.
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"jiffy/internal/core"
	"jiffy/internal/obs"
	"jiffy/internal/persist"
	"jiffy/internal/server"
)

func main() {
	var (
		listen     = flag.String("listen", ":9091", "address to serve data RPCs on")
		advertise  = flag.String("advertise", "", "address clients should use (default: the listen address)")
		controller = flag.String("controller", "localhost:9090",
			"controller address, or comma-separated controller group")
		capacityGB = flag.Float64("capacity-gb", 4, "memory contributed to the pool, in GiB")
		blockSize  = flag.Int("block-size", core.DefaultBlockSize, "block size (must match the controller)")
		high       = flag.Float64("high-threshold", core.DefaultHighThreshold, "scale-up usage fraction")
		low        = flag.Float64("low-threshold", core.DefaultLowThreshold, "scale-down usage fraction")
		persistDir = flag.String("persist-dir", "", "directory for the persistent tier (default: in-memory)")
		admin      = flag.String("admin", "", "serve /metrics, /healthz, /spans and pprof on this address (e.g. :9191)")
		watermark  = flag.Int64("memory-watermark-bytes", 0, "resident-memory budget; cold blocks demote to the persist tier above it (0 disables)")
		tierIdle   = flag.Duration("tier-idle-after", 0, "demote blocks untouched this long, regardless of pressure (0 disables)")
		tierCool   = flag.Duration("tier-cooldown", core.DefaultTierCooldown, "never demote a block within this window of its creation or last rehydration")
		tierScan   = flag.Duration("tier-scan-period", core.DefaultTierScanPeriod, "demotion scan interval")
		verbose    = flag.Bool("v", false, "debug logging")
	)
	flag.Parse()

	level := slog.LevelInfo
	if *verbose {
		level = slog.LevelDebug
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level}))

	cfg := core.DefaultConfig()
	cfg.BlockSize = *blockSize
	cfg.HighThreshold = *high
	cfg.LowThreshold = *low
	cfg.MemoryWatermarkBytes = *watermark
	cfg.TierIdleAfter = *tierIdle
	cfg.TierCooldown = *tierCool
	cfg.TierScanPeriod = *tierScan

	var store persist.Store = persist.NewMemStore()
	if *persistDir != "" {
		var err error
		store, err = persist.NewDirStore(*persistDir)
		if err != nil {
			fatal("open persist dir: %v", err)
		}
	}

	srv, err := server.New(server.Options{
		Config:          cfg,
		ControllerAddrs: strings.Split(*controller, ","),
		Persist:         store,
		Logger:          logger,
	})
	if err != nil {
		fatal("start server: %v", err)
	}
	bound, err := srv.Listen(*listen)
	if err != nil {
		fatal("listen: %v", err)
	}
	if *advertise != "" {
		// Re-listen is not needed; registration just advertises the
		// externally reachable address.
		bound = *advertise
	} else if host, port, err := net.SplitHostPort(bound); err == nil && (host == "::" || host == "0.0.0.0" || host == "") {
		// A wildcard listen address is not dialable; keep the port but
		// warn the operator to set -advertise in multi-host setups.
		logger.Warn("listening on a wildcard address; set -advertise for multi-host deployments",
			"port", port)
	}

	if *admin != "" {
		adminSrv, err := obs.ServeAdmin(*admin, obs.AdminOptions{
			Registry: srv.Obs(),
			Spans:    srv.Spans(),
		})
		if err != nil {
			fatal("admin endpoint: %v", err)
		}
		defer adminSrv.Close()
		logger.Info("admin endpoint up", "addr", adminSrv.Addr)
	}

	numBlocks := int(*capacityGB * float64(core.GB) / float64(cfg.BlockSize))
	if numBlocks < 1 {
		fatal("capacity %.2fGiB is smaller than one %d-byte block", *capacityGB, cfg.BlockSize)
	}
	// Registration retries while the controller comes up.
	for attempt := 0; ; attempt++ {
		if err := srv.Register(numBlocks); err == nil {
			break
		} else if attempt > 60 {
			fatal("register with controller %s: %v", *controller, err)
		} else {
			logger.Info("controller not ready; retrying", "err", err)
			time.Sleep(time.Second)
		}
	}
	logger.Info("jiffy memory server up",
		"addr", bound,
		"controller", *controller,
		"blocks", numBlocks,
		"block_size", cfg.BlockSize,
	)

	stopCh := make(chan os.Signal, 1)
	signal.Notify(stopCh, os.Interrupt, syscall.SIGTERM)
	ticker := time.NewTicker(30 * time.Second)
	defer ticker.Stop()
	for {
		select {
		case <-stopCh:
			logger.Info("shutting down")
			srv.Close()
			return
		case <-ticker.C:
			blocks, used, ops := srv.Store().Stats()
			logger.Info("stats", "blocks", blocks, "used_bytes", used, "ops", ops)
		}
	}
}

func fatal(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "jiffy-server: "+format+"\n", args...)
	os.Exit(1)
}
