package jiffy

import (
	"context"
	"fmt"
	"testing"
	"time"

	"jiffy/internal/client"
	"jiffy/internal/core"
	"jiffy/internal/server"
)

// Tiering latency benchmarks (EXPERIMENTS.md): the cost of demoting a
// block to the persist tier and of the first access that rehydrates
// it, as a function of the block's payload size. TierIdleAfter is one
// nanosecond and the cooldown zero, so every TierTickNow demotes every
// resident block — each iteration alternates one demotion with one
// rehydrating read. The default in-memory persist store is used, so
// the numbers isolate the snapshot/encode/restore path; an object
// store adds its own round trip on top.

func benchTierSetup(b *testing.B, payload int) (*client.KV, *server.Server) {
	b.Helper()
	cfg := core.TestConfig()
	cfg.TierIdleAfter = time.Nanosecond
	cfg.TierCooldown = 0
	cfg.TierScanPeriod = 0
	cluster, err := StartCluster(ClusterOptions{Config: cfg, Servers: 1, BlocksPerServer: 16})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { cluster.Close() })
	c, err := cluster.Connect(context.Background())
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { c.Close() })
	ctx := context.Background()
	if err := c.RegisterJob(ctx, "bench"); err != nil {
		b.Fatal(err)
	}
	if _, _, err := c.CreatePrefix(ctx, "bench/t", nil, DSKV, 1, 0); err != nil {
		b.Fatal(err)
	}
	kv, err := c.OpenKV(ctx, "bench/t")
	if err != nil {
		b.Fatal(err)
	}
	val := make([]byte, 4096)
	for i := 0; i < payload/len(val); i++ {
		if err := kv.Put(ctx, fmt.Sprintf("k%03d", i), val); err != nil {
			b.Fatal(err)
		}
	}
	return kv, cluster.Servers[0]
}

func BenchmarkTierDemote(b *testing.B) {
	for _, payload := range []int{4 << 10, 16 << 10, 48 << 10} {
		b.Run(fmt.Sprintf("payload=%dKB", payload>>10), func(b *testing.B) {
			kv, srv := benchTierSetup(b, payload)
			ctx := context.Background()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if n, err := srv.TierTickNow(); err != nil || n == 0 {
					b.Fatalf("tick %d demoted %d blocks: %v", i, n, err)
				}
				b.StopTimer()
				if _, err := kv.Get(ctx, "k000"); err != nil { // rehydrate off the clock
					b.Fatal(err)
				}
				b.StartTimer()
			}
			b.SetBytes(int64(payload))
		})
	}
}

func BenchmarkTierRehydrateGet(b *testing.B) {
	for _, payload := range []int{4 << 10, 16 << 10, 48 << 10} {
		b.Run(fmt.Sprintf("payload=%dKB", payload>>10), func(b *testing.B) {
			kv, srv := benchTierSetup(b, payload)
			ctx := context.Background()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				if n, err := srv.TierTickNow(); err != nil || n == 0 { // demote off the clock
					b.Fatalf("tick %d demoted %d blocks: %v", i, n, err)
				}
				b.StartTimer()
				if _, err := kv.Get(ctx, "k000"); err != nil {
					b.Fatal(err)
				}
			}
			b.SetBytes(int64(payload))
		})
	}
}

// BenchmarkTierWarmGet is the baseline the rehydrating read is
// compared against: the same Get with the block resident.
func BenchmarkTierWarmGet(b *testing.B) {
	kv, _ := benchTierSetup(b, 48<<10)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := kv.Get(ctx, "k000"); err != nil {
			b.Fatal(err)
		}
	}
}
