package jiffy

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"jiffy/internal/core"
)

// testCluster boots a small cluster with leases long enough that
// nothing expires unless a test wants it to.
func testCluster(t *testing.T, servers, blocksPerServer int) (*Cluster, *Client) {
	t.Helper()
	cfg := core.TestConfig()
	cfg.LeaseDuration = time.Minute
	cluster, err := StartCluster(ClusterOptions{
		Config:          cfg,
		Servers:         servers,
		BlocksPerServer: blocksPerServer,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cluster.Close() })
	c, err := cluster.Connect(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return cluster, c
}

func TestKVEndToEnd(t *testing.T) {
	_, c := testCluster(t, 2, 32)
	if err := c.RegisterJob(context.Background(), "job1"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.CreatePrefix(context.Background(), "job1/t1", nil, DSKV, 1, 0); err != nil {
		t.Fatal(err)
	}
	kv, err := c.OpenKV(context.Background(), "job1/t1")
	if err != nil {
		t.Fatal(err)
	}
	if err := kv.Put(context.Background(), "greeting", []byte("hello")); err != nil {
		t.Fatal(err)
	}
	v, err := kv.Get(context.Background(), "greeting")
	if err != nil || string(v) != "hello" {
		t.Fatalf("Get = %q, %v", v, err)
	}
	ok, err := kv.Exists(context.Background(), "greeting")
	if err != nil || !ok {
		t.Errorf("Exists = %v, %v", ok, err)
	}
	old, err := kv.Update(context.Background(), "greeting", []byte("bonjour"))
	if err != nil || string(old) != "hello" {
		t.Errorf("Update = %q, %v", old, err)
	}
	del, err := kv.Delete(context.Background(), "greeting")
	if err != nil || string(del) != "bonjour" {
		t.Errorf("Delete = %q, %v", del, err)
	}
	if _, err := kv.Get(context.Background(), "greeting"); !errors.Is(err, ErrNotFound) {
		t.Errorf("Get after delete = %v", err)
	}
}

// TestKVElasticSplit fills the store far beyond one block so splits
// must happen, then verifies every pair survives — the §3.3 elastic
// scaling path end to end.
func TestKVElasticSplit(t *testing.T) {
	cluster, c := testCluster(t, 2, 64)
	if err := c.RegisterJob(context.Background(), "job1"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.CreatePrefix(context.Background(), "job1/t1", nil, DSKV, 1, 0); err != nil {
		t.Fatal(err)
	}
	kv, err := c.OpenKV(context.Background(), "job1/t1")
	if err != nil {
		t.Fatal(err)
	}
	// 64KB blocks; write ~600KB so the store must split repeatedly.
	val := bytes.Repeat([]byte("x"), 1024)
	const n = 600
	for i := 0; i < n; i++ {
		if err := kv.Put(context.Background(), fmt.Sprintf("key-%04d", i), val); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	for i := 0; i < n; i++ {
		v, err := kv.Get(context.Background(), fmt.Sprintf("key-%04d", i))
		if err != nil || !bytes.Equal(v, val) {
			t.Fatalf("get %d: len=%d err=%v", i, len(v), err)
		}
	}
	stats, err := c.ControllerStats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if stats.AllocatedBlocks < 8 {
		t.Errorf("allocated blocks = %d; expected the store to have split many times",
			stats.AllocatedBlocks)
	}
	_ = cluster
}

func TestKVConcurrentClientsAcrossSplits(t *testing.T) {
	_, c := testCluster(t, 2, 64)
	c.RegisterJob(context.Background(), "job1")
	if _, _, err := c.CreatePrefix(context.Background(), "job1/t1", nil, DSKV, 1, 0); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errCh := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			kv, err := c.OpenKV(context.Background(), "job1/t1")
			if err != nil {
				errCh <- err
				return
			}
			val := bytes.Repeat([]byte{byte(g)}, 512)
			for i := 0; i < 100; i++ {
				key := fmt.Sprintf("g%d-k%d", g, i)
				if err := kv.Put(context.Background(), key, val); err != nil {
					errCh <- fmt.Errorf("put %s: %w", key, err)
					return
				}
				got, err := kv.Get(context.Background(), key)
				if err != nil || !bytes.Equal(got, val) {
					errCh <- fmt.Errorf("get %s: %v", key, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
}

func TestFileMultiChunk(t *testing.T) {
	_, c := testCluster(t, 2, 32)
	c.RegisterJob(context.Background(), "job1")
	if _, _, err := c.CreatePrefix(context.Background(), "job1/shuffle", nil, DSFile, 1, 0); err != nil {
		t.Fatal(err)
	}
	f, err := c.OpenFile(context.Background(), "job1/shuffle")
	if err != nil {
		t.Fatal(err)
	}
	// Write 300KB across 64KB chunks — requires ~5 blocks.
	payload := make([]byte, 300*1024)
	for i := range payload {
		payload[i] = byte(i % 251)
	}
	if _, err := f.Append(context.Background(), payload); err != nil {
		t.Fatal(err)
	}
	got, err := f.ReadAt(context.Background(), 0, len(payload))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("read back %d bytes, mismatch (want %d)", len(got), len(payload))
	}
	// Seek + sequential read.
	f.Seek(100 * 1024)
	part, err := f.Read(context.Background(), 1000)
	if err != nil || !bytes.Equal(part, payload[100*1024:100*1024+1000]) {
		t.Errorf("seek read mismatch: %d bytes, %v", len(part), err)
	}
	// Reading past EOF yields short data.
	tail, err := f.ReadAt(context.Background(), len(payload)-10, 100)
	if err != nil || len(tail) != 10 {
		t.Errorf("tail read = %d bytes, %v", len(tail), err)
	}
}

func TestQueueAcrossSegments(t *testing.T) {
	_, c := testCluster(t, 2, 64)
	c.RegisterJob(context.Background(), "job1")
	if _, _, err := c.CreatePrefix(context.Background(), "job1/chan", nil, DSQueue, 1, 0); err != nil {
		t.Fatal(err)
	}
	q, err := c.OpenQueue(context.Background(), "job1/chan")
	if err != nil {
		t.Fatal(err)
	}
	// Each item 1KB; 64KB segments; 300 items spans ~5 segments.
	const n = 300
	for i := 0; i < n; i++ {
		item := append([]byte(fmt.Sprintf("item-%04d-", i)), bytes.Repeat([]byte("q"), 1000)...)
		if err := q.Enqueue(context.Background(), item); err != nil {
			t.Fatalf("enqueue %d: %v", i, err)
		}
	}
	for i := 0; i < n; i++ {
		item, err := q.Dequeue(context.Background())
		if err != nil {
			t.Fatalf("dequeue %d: %v", i, err)
		}
		want := fmt.Sprintf("item-%04d-", i)
		if string(item[:len(want)]) != want {
			t.Fatalf("dequeue %d = %q...", i, item[:len(want)])
		}
	}
	if _, err := q.Dequeue(context.Background()); !errors.Is(err, ErrEmpty) {
		t.Errorf("dequeue on empty = %v", err)
	}
}

func TestQueueInterleavedProducerConsumer(t *testing.T) {
	_, c := testCluster(t, 1, 64)
	c.RegisterJob(context.Background(), "job1")
	if _, _, err := c.CreatePrefix(context.Background(), "job1/chan", nil, DSQueue, 1, 0); err != nil {
		t.Fatal(err)
	}
	prod, _ := c.OpenQueue(context.Background(), "job1/chan")
	cons, _ := c.OpenQueue(context.Background(), "job1/chan")
	done := make(chan struct{})
	const n = 500
	go func() {
		defer close(done)
		for i := 0; i < n; i++ {
			if err := prod.Enqueue(context.Background(), []byte(fmt.Sprintf("%d", i))); err != nil {
				t.Errorf("enqueue: %v", err)
				return
			}
		}
	}()
	got := 0
	deadline := time.Now().Add(10 * time.Second)
	for got < n && time.Now().Before(deadline) {
		item, err := cons.Dequeue(context.Background())
		if errors.Is(err, ErrEmpty) {
			time.Sleep(time.Millisecond)
			continue
		}
		if err != nil {
			t.Fatalf("dequeue: %v", err)
		}
		if string(item) != fmt.Sprintf("%d", got) {
			t.Fatalf("out of order: got %q want %d", item, got)
		}
		got++
	}
	<-done
	if got != n {
		t.Errorf("consumed %d of %d", got, n)
	}
}

func TestNotifications(t *testing.T) {
	_, c := testCluster(t, 1, 32)
	c.RegisterJob(context.Background(), "job1")
	if _, _, err := c.CreatePrefix(context.Background(), "job1/chan", nil, DSQueue, 1, 0); err != nil {
		t.Fatal(err)
	}
	consumer, _ := c.OpenQueue(context.Background(), "job1/chan")
	listener, err := consumer.Subscribe(context.Background(), core.OpEnqueue)
	if err != nil {
		t.Fatal(err)
	}
	defer listener.Close()

	producer, _ := c.OpenQueue(context.Background(), "job1/chan")
	if err := producer.Enqueue(context.Background(), []byte("ping")); err != nil {
		t.Fatal(err)
	}
	n, err := listener.Get(2 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if n.Op != core.OpEnqueue || string(n.Data) != "ping" {
		t.Errorf("notification = %+v", n)
	}
}

func TestHierarchyAndRenewal(t *testing.T) {
	_, c := testCluster(t, 1, 32)
	c.RegisterJob(context.Background(), "dagjob")
	err := c.CreateHierarchy(context.Background(), "dagjob", []DagNode{
		{Name: "T1", Type: DSFile},
		{Name: "T2", Type: DSFile},
		{Name: "T5", Parents: []string{"T1", "T2"}, Type: DSKV},
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Multi-path resolution through either parent.
	if _, err := c.OpenKV(context.Background(), "dagjob/T1/T5"); err != nil {
		t.Errorf("open via T1: %v", err)
	}
	if _, err := c.OpenKV(context.Background(), "dagjob/T2/T5"); err != nil {
		t.Errorf("open via T2: %v", err)
	}
	renewed, err := c.RenewLease(context.Background(), "dagjob/T1/T5")
	if err != nil {
		t.Fatal(err)
	}
	if renewed != 3 { // T5 + parents T1, T2
		t.Errorf("renewed = %d, want 3", renewed)
	}
	if d, err := c.LeaseDuration(context.Background(), "dagjob/T1/T5"); err != nil || d != time.Minute {
		t.Errorf("lease duration = %v, %v", d, err)
	}
	prefixes, err := c.ListPrefixes(context.Background(), "dagjob")
	if err != nil || len(prefixes) != 4 { // root + 3 tasks
		t.Errorf("prefixes = %d, %v", len(prefixes), err)
	}
}

// TestLeaseExpiryFlushesAndReloads exercises the full §3.2 lifecycle:
// write data, let the lease lapse, verify memory was reclaimed and the
// data flushed, then open the prefix again and read the data back.
func TestLeaseExpiryFlushesAndReloads(t *testing.T) {
	cfg := core.TestConfig() // 200ms leases, 20ms scans
	cluster, err := StartCluster(ClusterOptions{
		Config: cfg, Servers: 1, BlocksPerServer: 32,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	c, _ := cluster.Connect(context.Background())
	defer c.Close()

	c.RegisterJob(context.Background(), "job1")
	if _, _, err := c.CreatePrefix(context.Background(), "job1/t1", nil, DSKV, 1, 0); err != nil {
		t.Fatal(err)
	}
	kv, _ := c.OpenKV(context.Background(), "job1/t1")
	if err := kv.Put(context.Background(), "persisted", []byte("across expiry")); err != nil {
		t.Fatal(err)
	}

	// Wait for the lease to lapse and the expiry worker to reclaim.
	deadline := time.Now().Add(5 * time.Second)
	for cluster.Controller.ExpiryCount() == 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if cluster.Controller.ExpiryCount() == 0 {
		t.Fatal("lease never expired")
	}
	stats, _ := c.ControllerStats(context.Background())
	if stats.AllocatedBlocks != 0 {
		t.Errorf("blocks still allocated after expiry: %d", stats.AllocatedBlocks)
	}

	// Opening the prefix again transparently reloads from the
	// persistent tier.
	kv2, err := c.OpenKV(context.Background(), "job1/t1")
	if err != nil {
		t.Fatal(err)
	}
	v, err := kv2.Get(context.Background(), "persisted")
	if err != nil || string(v) != "across expiry" {
		t.Fatalf("after reload: %q, %v", v, err)
	}
}

// TestRenewalPreventsExpiry verifies that a Renewer keeps short-leased
// data alive.
func TestRenewalPreventsExpiry(t *testing.T) {
	cfg := core.TestConfig()
	cluster, err := StartCluster(ClusterOptions{
		Config: cfg, Servers: 1, BlocksPerServer: 32,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	c, _ := cluster.Connect(context.Background())
	defer c.Close()

	c.RegisterJob(context.Background(), "job1")
	if _, _, err := c.CreatePrefix(context.Background(), "job1/t1", nil, DSKV, 1, 0); err != nil {
		t.Fatal(err)
	}
	renewer := c.StartRenewer(50*time.Millisecond, "job1/t1")
	defer renewer.Stop()
	kv, _ := c.OpenKV(context.Background(), "job1/t1")
	kv.Put(context.Background(), "k", []byte("v"))

	time.Sleep(600 * time.Millisecond) // 3 lease durations
	if got := cluster.Controller.ExpiryCount(); got != 0 {
		t.Errorf("prefix expired %d times despite renewal", got)
	}
	if v, err := kv.Get(context.Background(), "k"); err != nil || string(v) != "v" {
		t.Errorf("data lost: %q, %v", v, err)
	}
}

func TestExplicitFlushLoad(t *testing.T) {
	_, c := testCluster(t, 1, 32)
	c.RegisterJob(context.Background(), "job1")
	if _, _, err := c.CreatePrefix(context.Background(), "job1/t1", nil, DSKV, 1, 0); err != nil {
		t.Fatal(err)
	}
	kv, _ := c.OpenKV(context.Background(), "job1/t1")
	kv.Put(context.Background(), "checkpoint", []byte("me"))
	n, err := c.FlushPrefix(context.Background(), "job1/t1", "s3://bucket/ckpt1")
	if err != nil || n != 1 {
		t.Fatalf("flush = %d, %v", n, err)
	}
	// Mutate after the checkpoint, then load the checkpoint back.
	kv.Put(context.Background(), "checkpoint", []byte("overwritten"))
	kv.Put(context.Background(), "extra", []byte("new"))
	if err := c.LoadPrefix(context.Background(), "job1/t1", "s3://bucket/ckpt1"); err != nil {
		t.Fatal(err)
	}
	kv2, _ := c.OpenKV(context.Background(), "job1/t1")
	v, err := kv2.Get(context.Background(), "checkpoint")
	if err != nil || string(v) != "me" {
		t.Errorf("after load: %q, %v", v, err)
	}
	if _, err := kv2.Get(context.Background(), "extra"); !errors.Is(err, ErrNotFound) {
		t.Errorf("post-checkpoint key survived load: %v", err)
	}
}

func TestDeregisterJobFreesEverything(t *testing.T) {
	_, c := testCluster(t, 1, 32)
	c.RegisterJob(context.Background(), "job1")
	c.CreatePrefix(context.Background(), "job1/t1", nil, DSKV, 2, 0)
	c.CreatePrefix(context.Background(), "job1/t2", nil, DSFile, 2, 0)
	stats, _ := c.ControllerStats(context.Background())
	if stats.AllocatedBlocks != 4 {
		t.Fatalf("allocated = %d, want 4", stats.AllocatedBlocks)
	}
	if err := c.DeregisterJob(context.Background(), "job1"); err != nil {
		t.Fatal(err)
	}
	stats, _ = c.ControllerStats(context.Background())
	if stats.AllocatedBlocks != 0 || stats.Jobs != 0 {
		t.Errorf("after deregister: %d blocks, %d jobs", stats.AllocatedBlocks, stats.Jobs)
	}
	// Operations on the dead job fail.
	if _, err := c.OpenKV(context.Background(), "job1/t1"); !errors.Is(err, ErrNotFound) {
		t.Errorf("open on dead job = %v", err)
	}
}

func TestJobIsolation(t *testing.T) {
	_, c := testCluster(t, 1, 32)
	c.RegisterJob(context.Background(), "jobA")
	c.RegisterJob(context.Background(), "jobB")
	c.CreatePrefix(context.Background(), "jobA/t", nil, DSKV, 1, 0)
	c.CreatePrefix(context.Background(), "jobB/t", nil, DSKV, 1, 0)
	kvA, _ := c.OpenKV(context.Background(), "jobA/t")
	kvB, _ := c.OpenKV(context.Background(), "jobB/t")
	kvA.Put(context.Background(), "k", []byte("A"))
	kvB.Put(context.Background(), "k", []byte("B"))
	a, _ := kvA.Get(context.Background(), "k")
	b, _ := kvB.Get(context.Background(), "k")
	if string(a) != "A" || string(b) != "B" {
		t.Errorf("cross-job contamination: %q, %q", a, b)
	}
	// Dropping jobA leaves jobB intact.
	c.DeregisterJob(context.Background(), "jobA")
	if v, err := kvB.Get(context.Background(), "k"); err != nil || string(v) != "B" {
		t.Errorf("jobB affected by jobA teardown: %q, %v", v, err)
	}
}

func TestRegisterDuplicateJob(t *testing.T) {
	_, c := testCluster(t, 1, 8)
	if err := c.RegisterJob(context.Background(), "dup"); err != nil {
		t.Fatal(err)
	}
	if err := c.RegisterJob(context.Background(), "dup"); !errors.Is(err, ErrExists) {
		t.Errorf("duplicate register = %v", err)
	}
}

func TestNoCapacity(t *testing.T) {
	_, c := testCluster(t, 1, 2)
	c.RegisterJob(context.Background(), "hungry")
	if _, _, err := c.CreatePrefix(context.Background(), "hungry/t", nil, DSKV, 5, 0); !errors.Is(err, ErrNoCapacity) {
		t.Errorf("over-allocation = %v", err)
	}
	// The failed create must not leave a half-built prefix behind.
	if _, _, err := c.CreatePrefix(context.Background(), "hungry/t", nil, DSKV, 1, 0); err != nil {
		t.Errorf("retry after failure = %v", err)
	}
}

func TestTCPTransportCluster(t *testing.T) {
	cfg := core.TestConfig()
	cfg.LeaseDuration = time.Minute
	cluster, err := StartCluster(ClusterOptions{
		Config: cfg, Servers: 1, BlocksPerServer: 16, Transport: "tcp",
	})
	if err != nil {
		t.Skipf("tcp unavailable: %v", err)
	}
	defer cluster.Close()
	c, err := cluster.Connect(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.RegisterJob(context.Background(), "tcpjob")
	if _, _, err := c.CreatePrefix(context.Background(), "tcpjob/t", nil, DSKV, 1, 0); err != nil {
		t.Fatal(err)
	}
	kv, _ := c.OpenKV(context.Background(), "tcpjob/t")
	if err := kv.Put(context.Background(), "over", []byte("tcp")); err != nil {
		t.Fatal(err)
	}
	v, err := kv.Get(context.Background(), "over")
	if err != nil || string(v) != "tcp" {
		t.Errorf("Get = %q, %v", v, err)
	}
}

// TestMetadataOverhead checks the §6.4 claim: ~64B per task plus 8B
// per block of controller metadata.
func TestMetadataOverhead(t *testing.T) {
	_, c := testCluster(t, 1, 32)
	c.RegisterJob(context.Background(), "job1")
	c.CreatePrefix(context.Background(), "job1/t1", nil, DSKV, 4, 0)
	stats, _ := c.ControllerStats(context.Background())
	want := 2*64 + 4*8 // root + t1 tasks, 4 blocks
	if stats.MetadataBytes != want {
		t.Errorf("metadata bytes = %d, want %d", stats.MetadataBytes, want)
	}
}
