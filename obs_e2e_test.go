package jiffy

// End-to-end observability suite: span propagation across both
// transports, exact client/server metric invariants on a fault-free
// cluster, and the admin HTTP endpoint scraped live while the chaos
// injector jitters the wire. Server-side spans and per-method stats
// are recorded after the response frame is written (see
// internal/rpc.ServerConn.dispatch), so every server-side assertion
// polls with a deadline instead of asserting right after a client
// call returns.

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"context"

	"jiffy/internal/client"
	"jiffy/internal/core"
	"jiffy/internal/faultinject"
	"jiffy/internal/obs"
)

// scrapeRegistry renders a registry to Prometheus text and parses it
// back into name{labels} -> value.
func scrapeRegistry(r *obs.Registry) map[string]float64 {
	var buf bytes.Buffer
	r.WritePrometheus(&buf)
	return obs.ParsePrometheus(buf.Bytes())
}

// scrapeAdmin fetches and parses an admin endpoint's /metrics.
func scrapeAdmin(t *testing.T, addr string) map[string]float64 {
	t.Helper()
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read /metrics: %v", err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", resp.StatusCode)
	}
	return obs.ParsePrometheus(body)
}

// pollUntil retries cond every few milliseconds until it returns no
// error or the deadline passes; the last error becomes the failure.
func pollUntil(t *testing.T, d time.Duration, cond func() error) {
	t.Helper()
	deadline := time.Now().Add(d)
	for {
		err := cond()
		if err == nil {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("condition not reached within %v: %v", d, err)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestSpanPropagationMemAndTCP checks the acceptance criterion that
// trace/span IDs propagate client -> server over both transports: the
// client records an rpc:DataOp span, and the server records a
// srv:DataOp span in the same trace whose parent is the client span
// and whose span ID is freshly minted.
func TestSpanPropagationMemAndTCP(t *testing.T) {
	for _, transport := range []string{"mem", "tcp"} {
		t.Run(transport, func(t *testing.T) {
			cfg := core.TestConfig()
			cfg.LeaseDuration = time.Minute
			cluster, err := StartCluster(ClusterOptions{
				Config: cfg, Transport: transport, Servers: 2, BlocksPerServer: 8,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer cluster.Close()

			ctx := context.Background()
			exp := obs.NewRingExporter(64)
			c, err := cluster.Connect(ctx, client.WithTracing(exp))
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			if err := c.RegisterJob(ctx, "spanjob"); err != nil {
				t.Fatal(err)
			}
			if _, _, err := c.CreatePrefix(ctx, "spanjob/kv", nil, DSKV, 1, 0); err != nil {
				t.Fatal(err)
			}
			kv, err := c.OpenKV(ctx, "spanjob/kv")
			if err != nil {
				t.Fatal(err)
			}
			if err := kv.Put(ctx, "k", []byte("v")); err != nil {
				t.Fatal(err)
			}

			// The client records its span before Put returns.
			var cs obs.SpanEvent
			for _, ev := range exp.Snapshot() {
				if ev.Name == "rpc:DataOp" {
					cs = ev
				}
			}
			if cs.TraceID == 0 || cs.SpanID == 0 {
				t.Fatalf("client rpc:DataOp span missing or zero-ID; ring = %+v", exp.Snapshot())
			}

			// The server records its span after writing the response.
			pollUntil(t, 5*time.Second, func() error {
				for _, srv := range cluster.Servers {
					for _, ev := range srv.Spans().Snapshot() {
						if ev.Name != "srv:DataOp" || ev.TraceID != cs.TraceID {
							continue
						}
						if ev.ParentID != cs.SpanID {
							t.Fatalf("server span parent = %x, want client span %x", ev.ParentID, cs.SpanID)
						}
						if ev.SpanID == 0 || ev.SpanID == cs.SpanID {
							t.Fatalf("server span ID %x must be fresh (client %x)", ev.SpanID, cs.SpanID)
						}
						return nil
					}
				}
				return fmt.Errorf("no srv:DataOp span in trace %x yet", cs.TraceID)
			})
		})
	}
}

// TestObservabilityInvariants runs a fault-free workload against a
// single-block KV and checks the metric arithmetic exactly: requests
// counted once per call on both sides, histogram counts matching
// request counts, zero retries/errors/redirects, batch sizes recorded,
// and per-server block gauges consistent with created/deleted
// counters.
func TestObservabilityInvariants(t *testing.T) {
	cfg := core.TestConfig()
	cfg.LeaseDuration = time.Minute
	cluster, err := StartCluster(ClusterOptions{
		Config: cfg, Servers: 2, BlocksPerServer: 16, DisableExpiry: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()

	ctx := context.Background()
	c, err := cluster.Connect(ctx)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.RegisterJob(ctx, "obsjob"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.CreatePrefix(ctx, "obsjob/kv", nil, DSKV, 1, 0); err != nil {
		t.Fatal(err)
	}
	kv, err := c.OpenKV(ctx, "obsjob/kv")
	if err != nil {
		t.Fatal(err)
	}

	const n = 100
	for i := 0; i < n; i++ {
		if err := kv.Put(ctx, fmt.Sprintf("k-%03d", i), []byte("value")); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		if _, err := kv.Get(ctx, fmt.Sprintf("k-%03d", i)); err != nil {
			t.Fatal(err)
		}
	}
	pairs := make([]client.KVPair, 64)
	for i := range pairs {
		pairs[i] = client.KVPair{Key: fmt.Sprintf("b-%03d", i), Value: []byte("batched")}
	}
	if err := kv.MultiPut(ctx, pairs); err != nil {
		t.Fatal(err)
	}

	// Client-side stats are recorded before each call returns, so
	// they can be asserted exactly and immediately.
	cm := scrapeRegistry(c.Obs())
	dataOp := `{role="client",method="DataOp"}`
	wantExact := map[string]float64{
		"jiffy_rpc_requests_total" + dataOp:                            2 * n,
		"jiffy_rpc_errors_total" + dataOp:                              0,
		"jiffy_rpc_in_flight" + dataOp:                                 0,
		"jiffy_rpc_latency_usec_count" + dataOp:                        2 * n,
		`jiffy_rpc_requests_total{role="client",method="DataOpBatch"}`: 1,
		`jiffy_rpc_retries_total{role="client"}`:                       0,
		`jiffy_rpc_redirects_total{role="client"}`:                     0,
		"jiffy_client_batch_ops_count":                                 1,
		"jiffy_client_batch_ops_sum":                                   64,
		"jiffy_client_stale_regroups_total":                            0,
	}
	for k, want := range wantExact {
		got, ok := cm[k]
		if !ok {
			t.Errorf("client metric %s missing", k)
		} else if got != want {
			t.Errorf("client metric %s = %g, want %g", k, got, want)
		}
	}
	if cm["jiffy_rpc_bytes_out_total"+dataOp] <= 0 {
		t.Errorf("client DataOp bytes_out = %g, want > 0", cm["jiffy_rpc_bytes_out_total"+dataOp])
	}

	// Server-side stats land after the response frame; poll until the
	// cluster-wide sums match what the client sent.
	pollUntil(t, 5*time.Second, func() error {
		var dataOps, batchOps, latCount float64
		for _, srv := range cluster.Servers {
			sm := scrapeRegistry(srv.Obs())
			dataOps += sm[`jiffy_rpc_requests_total{role="server",method="DataOp"}`]
			batchOps += sm[`jiffy_rpc_requests_total{role="server",method="DataOpBatch"}`]
			latCount += sm[`jiffy_rpc_latency_usec_count{role="server",method="DataOp"}`]
		}
		if dataOps != 2*n || batchOps != 1 || latCount != 2*n {
			return fmt.Errorf("server sums: DataOp=%g (want %d), DataOpBatch=%g (want 1), latency count=%g",
				dataOps, 2*n, batchOps, latCount)
		}
		return nil
	})

	// Block accounting: each server's live-block gauge must equal its
	// created-minus-deleted counters, and the cluster-wide live total
	// must match the controller's allocation view.
	pollUntil(t, 5*time.Second, func() error {
		var live float64
		for i, srv := range cluster.Servers {
			sm := scrapeRegistry(srv.Obs())
			created := sm["jiffy_store_blocks_created_total"]
			deleted := sm["jiffy_store_blocks_deleted_total"]
			blocks := sm["jiffy_store_blocks"]
			if created-deleted != blocks {
				return fmt.Errorf("server %d: created %g - deleted %g != blocks %g", i, created, deleted, blocks)
			}
			live += blocks
		}
		km := scrapeRegistry(cluster.Controller.Obs())
		allocated := km["jiffy_ctrl_blocks_total"] - km["jiffy_ctrl_blocks_free"]
		if allocated != live {
			return fmt.Errorf("controller allocated %g != live store blocks %g", allocated, live)
		}
		return nil
	})
}

// TestAdminMetricsDuringChaos boots a two-server cluster under seeded
// wire jitter, serves real admin endpoints for the controller and both
// servers, and checks that the scraped counters move correctly through
// a workload that forces repartitioning, a lease renewal, and a lease
// expiry — the ISSUE acceptance scenario, driven over HTTP exactly as
// an operator would see it.
func TestAdminMetricsDuringChaos(t *testing.T) {
	inj := faultinject.New(202, nil)
	inj.AddRule(faultinject.Rule{
		Name: "wire-jitter", Match: "send:",
		Latency: 50 * time.Microsecond, Jitter: 100 * time.Microsecond,
	})
	cfg := core.TestConfig()
	cfg.LeaseDuration = time.Minute // only the explicit short-lease prefix expires
	cfg.RPCTimeout = 5 * time.Second
	cluster := chaosCluster(t, inj, cfg, ClusterOptions{Servers: 2, BlocksPerServer: 16})

	ctrlAdmin, err := obs.ServeAdmin("127.0.0.1:0", obs.AdminOptions{
		Registry: cluster.Controller.Obs(), Spans: cluster.Controller.Spans(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ctrlAdmin.Close()
	var srvAdmins []*obs.AdminServer
	for _, srv := range cluster.Servers {
		a, err := obs.ServeAdmin("127.0.0.1:0", obs.AdminOptions{
			Registry: srv.Obs(), Spans: srv.Spans(),
		})
		if err != nil {
			t.Fatal(err)
		}
		defer a.Close()
		srvAdmins = append(srvAdmins, a)
	}

	before := scrapeAdmin(t, ctrlAdmin.Addr)

	ctx := context.Background()
	exp := obs.NewRingExporter(256)
	c, err := client.ConnectMulti(ctx, cluster.ControllerAddrs,
		client.WithDial(inj.Dial), client.WithRPCTimeout(cfg.RPCTimeout),
		client.WithRetryPolicy(client.RetryPolicy{Limit: 6}),
		client.WithTracing(exp))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.RegisterJob(ctx, "adminjob"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.CreatePrefix(ctx, "adminjob/kv", nil, DSKV, 1, 0); err != nil {
		t.Fatal(err)
	}
	// A second prefix with a deliberately short lease that is never
	// renewed: the expiry worker must reclaim it.
	if _, _, err := c.CreatePrefix(ctx, "adminjob/expire", nil, DSKV, 1, 250*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	kv, err := c.OpenKV(ctx, "adminjob/kv")
	if err != nil {
		t.Fatal(err)
	}

	// 1KB values against 64KB blocks: 200 writes overflow the initial
	// block and force scale-ups under jitter.
	val := []byte(strings.Repeat("x", 1024))
	for i := 0; i < 200; i++ {
		if err := kv.Put(ctx, fmt.Sprintf("key-%04d", i), val); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.RenewLease(ctx, "adminjob/kv"); err != nil {
		t.Fatal(err)
	}
	pollUntil(t, 10*time.Second, func() error {
		if cluster.Controller.ExpiryCount() == 0 {
			return fmt.Errorf("adminjob/expire not expired yet")
		}
		return nil
	})

	// Controller counters, over HTTP: control ops moved, the splits
	// registered as scale-ups, the renewal and the expiry are counted,
	// and the expiry total agrees with the controller's own view.
	pollUntil(t, 5*time.Second, func() error {
		after := scrapeAdmin(t, ctrlAdmin.Addr)
		if after["jiffy_ctrl_control_ops_total"] <= before["jiffy_ctrl_control_ops_total"] {
			return fmt.Errorf("control ops did not advance (%g -> %g)",
				before["jiffy_ctrl_control_ops_total"], after["jiffy_ctrl_control_ops_total"])
		}
		if after["jiffy_ctrl_scale_ups_total"] < 1 {
			return fmt.Errorf("scale ups = %g, want >= 1", after["jiffy_ctrl_scale_ups_total"])
		}
		if after["jiffy_ctrl_lease_renewals_total"] < 1 {
			return fmt.Errorf("lease renewals = %g, want >= 1", after["jiffy_ctrl_lease_renewals_total"])
		}
		if want := float64(cluster.Controller.ExpiryCount()); after["jiffy_ctrl_lease_expiries_total"] != want {
			return fmt.Errorf("lease expiries = %g, want %g", after["jiffy_ctrl_lease_expiries_total"], want)
		}
		if after[`jiffy_ctrl_job_blocks{job="adminjob"}`] < 1 {
			return fmt.Errorf("job blocks gauge = %g, want >= 1", after[`jiffy_ctrl_job_blocks{job="adminjob"}`])
		}
		return nil
	})

	// Cross-endpoint block accounting after the reclaim settles: the
	// controller's allocated count must equal the live blocks reported
	// by the server admin endpoints, each consistent with its own
	// created/deleted counters.
	pollUntil(t, 10*time.Second, func() error {
		km := scrapeAdmin(t, ctrlAdmin.Addr)
		var live, created float64
		for i, a := range srvAdmins {
			sm := scrapeAdmin(t, a.Addr)
			if d := sm["jiffy_store_blocks_created_total"] - sm["jiffy_store_blocks_deleted_total"]; d != sm["jiffy_store_blocks"] {
				return fmt.Errorf("server %d: created-deleted %g != blocks %g", i, d, sm["jiffy_store_blocks"])
			}
			live += sm["jiffy_store_blocks"]
			created += sm["jiffy_store_blocks_created_total"]
		}
		if created < 3 {
			return fmt.Errorf("blocks created = %g, want >= 3 (initial + expire + splits)", created)
		}
		allocated := km["jiffy_ctrl_blocks_total"] - km["jiffy_ctrl_blocks_free"]
		if allocated != live {
			return fmt.Errorf("controller allocated %g != live store blocks %g", allocated, live)
		}
		return nil
	})

	// /healthz and /spans over HTTP. The traced client's IDs rode the
	// wire, so the controller's span ring is non-empty.
	resp, err := http.Get("http://" + ctrlAdmin.Addr + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || string(body) != "ok\n" {
		t.Fatalf("/healthz = %d %q, want 200 \"ok\\n\"", resp.StatusCode, body)
	}
	pollUntil(t, 5*time.Second, func() error {
		resp, err := http.Get("http://" + ctrlAdmin.Addr + "/spans")
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		var dump struct {
			Total int64           `json:"total"`
			Spans []obs.SpanEvent `json:"spans"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&dump); err != nil {
			return fmt.Errorf("decode /spans: %v", err)
		}
		if dump.Total < 1 || len(dump.Spans) < 1 {
			return fmt.Errorf("/spans total=%d len=%d, want >= 1", dump.Total, len(dump.Spans))
		}
		for _, ev := range dump.Spans {
			if ev.TraceID == 0 || ev.SpanID == 0 || !strings.HasPrefix(ev.Name, "srv:") {
				return fmt.Errorf("malformed controller span %+v", ev)
			}
		}
		return nil
	})
}

// TestAdminMetricsControllerGroup scrapes the replicated control
// plane's metrics over real admin endpoints: exactly one member
// exports jiffy_ctrl_leader=1, the replication-lag gauge reads zero
// after every acked mutation (acks are withheld until live standbys
// ack the op-log), and a leader kill plus standby promotion flips the
// leader gauge, bumps jiffy_ctrl_failovers_total, and registers as a
// jiffy_client_rehomes_total increment on the client that re-homed.
func TestAdminMetricsControllerGroup(t *testing.T) {
	cfg := core.TestConfig()
	cfg.LeaseDuration = time.Minute
	cluster, err := StartCluster(ClusterOptions{
		Config: cfg, Controllers: 3, Servers: 2, BlocksPerServer: 16,
		DisableExpiry: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	admins := make([]*obs.AdminServer, len(cluster.Controllers))
	for i, ctrl := range cluster.Controllers {
		a, err := obs.ServeAdmin("127.0.0.1:0", obs.AdminOptions{
			Registry: ctrl.Obs(), Spans: ctrl.Spans(),
		})
		if err != nil {
			t.Fatal(err)
		}
		defer a.Close()
		admins[i] = a
	}

	// Exactly the first member leads; nobody has failed over yet.
	for i, a := range admins {
		m := scrapeAdmin(t, a.Addr)
		wantLeader := 0.0
		if i == 0 {
			wantLeader = 1
		}
		if m["jiffy_ctrl_leader"] != wantLeader {
			t.Fatalf("member %d jiffy_ctrl_leader = %g, want %g", i, m["jiffy_ctrl_leader"], wantLeader)
		}
		if m["jiffy_ctrl_failovers_total"] != 0 {
			t.Fatalf("member %d failovers = %g before any failover", i, m["jiffy_ctrl_failovers_total"])
		}
	}

	ctx := context.Background()
	c, err := cluster.Connect(ctx)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.RegisterJob(ctx, "grp"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.CreatePrefix(ctx, "grp/kv", nil, DSKV, 1, 0); err != nil {
		t.Fatal(err)
	}
	kv, err := c.OpenKV(ctx, "grp/kv")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if err := kv.Put(ctx, fmt.Sprintf("k%d", i), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}

	// Every mutation above was acked, so every live standby has acked
	// the ops that produced it: the leader's lag gauge must read zero.
	m := scrapeAdmin(t, admins[0].Addr)
	if m["jiffy_ctrl_replication_lag_ops"] != 0 {
		t.Fatalf("replication lag = %g after acked ops, want 0", m["jiffy_ctrl_replication_lag_ops"])
	}
	cm := scrapeRegistry(c.Obs())
	if cm["jiffy_client_rehomes_total"] != 0 {
		t.Fatalf("client rehomes = %g under a stable leader", cm["jiffy_client_rehomes_total"])
	}

	// Kill the leader, promote the first standby, and touch the control
	// plane through the same client so it re-homes.
	cluster.Controllers[0].Close()
	if gen := cluster.Controllers[1].PromoteNow(); gen != 2 {
		t.Fatalf("promotion gen = %d, want 2", gen)
	}
	stats, err := c.ControllerStats(ctx)
	if err != nil || stats.Jobs != 1 {
		t.Fatalf("post-failover stats = %+v, %v", stats, err)
	}

	m1 := scrapeAdmin(t, admins[1].Addr)
	if m1["jiffy_ctrl_leader"] != 1 {
		t.Errorf("new leader jiffy_ctrl_leader = %g, want 1", m1["jiffy_ctrl_leader"])
	}
	if m1["jiffy_ctrl_failovers_total"] != 1 {
		t.Errorf("new leader failovers = %g, want 1", m1["jiffy_ctrl_failovers_total"])
	}
	m2 := scrapeAdmin(t, admins[2].Addr)
	if m2["jiffy_ctrl_leader"] != 0 {
		t.Errorf("remaining standby jiffy_ctrl_leader = %g, want 0", m2["jiffy_ctrl_leader"])
	}
	cm = scrapeRegistry(c.Obs())
	if cm["jiffy_client_rehomes_total"] < 1 {
		t.Errorf("client rehomes = %g after a leader kill, want >= 1", cm["jiffy_client_rehomes_total"])
	}
}

// TestAdminMetricsAfterServerFailure scrapes the self-healing counters
// over a real admin endpoint through a server failure: a death bumps
// jiffy_ctrl_server_failures_total and the membership-epoch gauge,
// every affected partition entry counts toward
// jiffy_ctrl_chain_repairs_total, and unreplicated blocks split by
// fate — flushed ones are rebuilt from the persist tier while
// unflushed ones land in jiffy_ctrl_blocks_lost_total and fail fast at
// the client.
func TestAdminMetricsAfterServerFailure(t *testing.T) {
	cfg := core.TestConfig()
	cfg.LeaseDuration = time.Minute
	cluster, err := StartCluster(ClusterOptions{
		Config: cfg, Servers: 2, BlocksPerServer: 16, DisableExpiry: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	ctrlAdmin, err := obs.ServeAdmin("127.0.0.1:0", obs.AdminOptions{
		Registry: cluster.Controller.Obs(), Spans: cluster.Controller.Spans(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ctrlAdmin.Close()

	before := scrapeAdmin(t, ctrlAdmin.Addr)
	for _, name := range []string{
		"jiffy_ctrl_server_failures_total",
		"jiffy_ctrl_chain_repairs_total",
		"jiffy_ctrl_blocks_lost_total",
	} {
		if before[name] != 0 {
			t.Fatalf("%s = %g before any failure", name, before[name])
		}
	}
	if before["jiffy_ctrl_membership_epoch"] < 2 {
		t.Fatalf("membership epoch = %g after two registrations",
			before["jiffy_ctrl_membership_epoch"])
	}

	ctx := context.Background()
	c, err := cluster.Connect(ctx)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.RegisterJob(ctx, "m"); err != nil {
		t.Fatal(err)
	}
	// Four single-replica prefixes across two servers: whichever server
	// dies hosts at least two of them.
	paths := []core.Path{"m/a", "m/b", "m/c", "m/d"}
	for _, p := range paths {
		if _, _, err := c.CreatePrefix(ctx, p, nil, DSKV, 1, 0); err != nil {
			t.Fatal(err)
		}
		kv, err := c.OpenKV(ctx, p)
		if err != nil {
			t.Fatal(err)
		}
		if err := kv.Put(ctx, "k", []byte("v-"+string(p))); err != nil {
			t.Fatal(err)
		}
	}
	hosts := make(map[core.Path]string)
	count := make(map[string]int)
	for _, p := range paths {
		open, err := cluster.Controller.Open(p)
		if err != nil {
			t.Fatal(err)
		}
		hosts[p] = open.Map.Blocks[0].Info.Server
		count[hosts[p]]++
	}
	victim := ""
	for addr, n := range count {
		if victim == "" || n > count[victim] {
			victim = addr
		}
	}
	var onVictim, flushed []core.Path
	for _, p := range paths {
		if hosts[p] == victim {
			onVictim = append(onVictim, p)
		}
	}
	if len(onVictim) < 2 {
		t.Fatalf("victim %s hosts only %v; need a flushed and an unflushed prefix", victim, onVictim)
	}
	// Flush exactly one hosted prefix; its block must be recovered from
	// the persist tier, while its unflushed neighbors are lost.
	flushed = onVictim[:1]
	if _, err := c.FlushPrefix(ctx, flushed[0], "ckpt/obs-recovery"); err != nil {
		t.Fatal(err)
	}

	for i, srv := range cluster.Servers {
		if strings.Contains(victim, fmt.Sprintf("server-%d", i)) {
			srv.Close()
		}
	}
	if !cluster.Controller.FailServer(victim) {
		t.Fatal("FailServer reported the victim already dead")
	}

	after := scrapeAdmin(t, ctrlAdmin.Addr)
	if got := after["jiffy_ctrl_server_failures_total"]; got != 1 {
		t.Errorf("server failures = %g, want 1", got)
	}
	if got, want := after["jiffy_ctrl_chain_repairs_total"], float64(len(onVictim)); got != want {
		t.Errorf("chain repairs = %g, want %g (every entry on the victim)", got, want)
	}
	if got, want := after["jiffy_ctrl_blocks_lost_total"], float64(len(onVictim)-1); got != want {
		t.Errorf("blocks lost = %g, want %g (all on-victim entries minus the flushed one)", got, want)
	}
	if got, want := after["jiffy_ctrl_membership_epoch"], before["jiffy_ctrl_membership_epoch"]+1; got != want {
		t.Errorf("membership epoch = %g, want %g", got, want)
	}

	// The metric split matches observable client behavior: the flushed
	// prefix reads back its data, the lost ones fail fast.
	kv, err := c.OpenKV(ctx, flushed[0])
	if err != nil {
		t.Fatal(err)
	}
	if v, err := kv.Get(ctx, "k"); err != nil || string(v) != "v-"+string(flushed[0]) {
		t.Fatalf("flushed prefix %s unreadable after recovery: %q, %v", flushed[0], v, err)
	}
	for _, p := range onVictim[1:] {
		kv, err := c.OpenKV(ctx, p)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := kv.Get(ctx, "k"); !errors.Is(err, ErrBlockLost) {
			t.Fatalf("lost prefix %s Get = %v, want ErrBlockLost", p, err)
		}
	}
}
