package jiffy

// Recovery chaos suite: end-to-end proofs of the self-healing pipeline
// (failure detection → chain repair → block recovery) under seeded
// faults and a virtual clock. Detection is driven deterministically:
// live servers beat via HeartbeatNow, the clock advances past the
// suspicion window, and one CheckLivenessNow scan declares the victim
// dead and repairs every chain synchronously — no wall-clock sleeps,
// no flaky timers, race-clean under -race.

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"jiffy/internal/client"
	"jiffy/internal/clock"
	"jiffy/internal/core"
	"jiffy/internal/faultinject"
	"jiffy/internal/obs"
)

// recoveryConfig is the shared shape of the repair scenarios: 3-member
// chains with heartbeat-based detection enabled but paced on a virtual
// clock (DisableExpiry keeps the controller's background detector off,
// so the test owns every detection step).
func recoveryConfig() core.Config {
	cfg := core.TestConfig()
	cfg.LeaseDuration = time.Minute
	cfg.RPCTimeout = 2 * time.Second
	cfg.ChainLength = 3
	cfg.HeartbeatInterval = time.Second
	cfg.SuspicionWindow = 5 * time.Second
	return cfg
}

// killServer closes the cluster server backing addr and severs every
// live session to it. Returns the index of the killed server.
func killServer(t *testing.T, cluster *Cluster, inj *faultinject.Injector, addr string) int {
	t.Helper()
	for i, srv := range cluster.Servers {
		if strings.Contains(addr, fmt.Sprintf("server-%d", i)) {
			srv.Close()
			inj.BreakConns(addr)
			return i
		}
	}
	t.Fatalf("no cluster server matches %s", addr)
	return -1
}

// detectAndRepair drives one deterministic detection round: the clock
// jumps past the suspicion window, every surviving server beats, and a
// single liveness scan declares the victim dead — repairing every
// affected chain synchronously before returning.
func detectAndRepair(t *testing.T, cluster *Cluster, vclock *clock.Virtual,
	cfg core.Config, deadIdx int, deadAddr string) {
	t.Helper()
	vclock.Advance(cfg.SuspicionWindow + cfg.HeartbeatInterval)
	for i, srv := range cluster.Servers {
		if i == deadIdx {
			continue
		}
		if err := srv.HeartbeatNow(); err != nil {
			t.Fatalf("heartbeat from surviving server %d: %v", i, err)
		}
	}
	newlyDead := cluster.Controller.CheckLivenessNow()
	if len(newlyDead) != 1 || newlyDead[0] != deadAddr {
		t.Fatalf("liveness scan declared %v dead, want exactly [%s]", newlyDead, deadAddr)
	}
	if !cluster.Controller.ServerDead(deadAddr) {
		t.Fatal("killed server not marked dead after the scan")
	}
}

// assertChainHealthy asserts every partition entry of path is repaired
// to a full-width chain with no member on deadAddr and none lost.
func assertChainHealthy(t *testing.T, cluster *Cluster, path core.Path,
	width int, deadAddr string) {
	t.Helper()
	open, err := cluster.Controller.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range open.Map.Blocks {
		if e.Lost {
			t.Fatalf("chunk %d marked lost despite surviving replicas", e.Chunk)
		}
		reps := e.Replicas()
		if len(reps) != width {
			t.Fatalf("chunk %d repaired to width %d, want %d: %+v",
				e.Chunk, len(reps), width, reps)
		}
		for _, info := range reps {
			if info.Server == deadAddr {
				t.Fatalf("chunk %d still references the dead server: %+v", e.Chunk, reps)
			}
		}
	}
}

// TestChaosChainRepairAfterHeadKill kills the HEAD of a 3-member
// replica chain in the middle of a write stream. Writes in the
// detection window fail with classified connection errors; one
// deterministic detection round splices the dead head out, promotes
// the next survivor and resyncs a replacement from the tail-most
// survivor's snapshot; the stream then resumes against the repaired
// chain with zero acknowledged writes lost, and later placements never
// select the dead server again.
func TestChaosChainRepairAfterHeadKill(t *testing.T) {
	inj := faultinject.New(808, nil)
	vclock := clock.NewVirtual(time.Unix(0, 0))
	cfg := recoveryConfig()
	cluster := chaosCluster(t, inj, cfg, ClusterOptions{
		Servers: 4, BlocksPerServer: 16, Clock: vclock, DisableExpiry: true,
	})
	c, err := cluster.Connect(context.Background(),
		client.WithRetryPolicy(client.RetryPolicy{Limit: 6}))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.RegisterJob(context.Background(), "repair")
	m, _, err := c.CreatePrefix(context.Background(), "repair/t", nil, DSKV, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	chain := m.Blocks[0].Chain
	if len(chain) != 3 {
		t.Fatalf("chain = %+v, want 3 members", chain)
	}
	headAddr := chain[0].Server
	epochBefore := cluster.Controller.MembershipEpoch()
	kv, err := c.OpenKV(context.Background(), "repair/t")
	if err != nil {
		t.Fatal(err)
	}

	// One continuous write stream; the head dies at killAt, detection
	// runs at repairAt, and every write outside the outage window must
	// be acknowledged.
	const total, killAt, repairAt = 200, 100, 110
	headIdx := -1
	acked := make(map[string]string)
	for i := 0; i < total; i++ {
		if i == killAt {
			headIdx = killServer(t, cluster, inj, headAddr)
		}
		if i == repairAt {
			detectAndRepair(t, cluster, vclock, cfg, headIdx, headAddr)
		}
		key, val := fmt.Sprintf("k%04d", i), fmt.Sprintf("v%04d", i)
		err := kv.Put(context.Background(), key, []byte(val))
		switch {
		case err == nil:
			acked[key] = val
		case i < killAt || i >= repairAt:
			t.Fatalf("put %s outside the outage window failed: %v", key, err)
		case !errors.Is(err, core.ErrClosed) && !errors.Is(err, ErrTimeout):
			t.Fatalf("outage-window put %s failed with unclassified error: %v", key, err)
		}
	}
	if len(acked) < total-(repairAt-killAt) {
		t.Fatalf("only %d/%d writes acknowledged", len(acked), total)
	}

	// The chain is back at full width with the dead head spliced out.
	assertChainHealthy(t, cluster, "repair/t", 3, headAddr)
	if epoch := cluster.Controller.MembershipEpoch(); epoch <= epochBefore {
		t.Errorf("membership epoch %d did not advance past %d", epoch, epochBefore)
	}

	// Zero acknowledged writes lost: every acked key reads back with
	// the value that was acknowledged.
	for key, val := range acked {
		v, err := kv.Get(context.Background(), key)
		if err != nil || string(v) != val {
			t.Fatalf("acked write %s lost after head repair: %q, %v", key, v, err)
		}
	}

	// Subsequent placements never touch the dead server: a fresh
	// 4-chunk prefix (12 replica placements) lands only on survivors.
	m2, _, err := c.CreatePrefix(context.Background(), "repair/t2", nil, DSKV, 4, 0)
	if err != nil {
		t.Fatalf("post-repair create: %v", err)
	}
	for _, e := range m2.Blocks {
		for _, info := range e.Replicas() {
			if info.Server == headAddr {
				t.Fatalf("post-repair placement selected the dead server: %+v", e)
			}
		}
	}
	if stats := cluster.Controller.Stats(); stats.Servers != 3 {
		t.Errorf("dead server still in the allocator pool: %+v", stats)
	}
	t.Logf("acked=%d epoch %d→%d", len(acked), epochBefore,
		cluster.Controller.MembershipEpoch())
}

// TestChaosChainRepairAfterTailKillMidRead kills the TAIL of a
// 3-member chain in the middle of a read scan. Reads must keep
// answering throughout — first by falling back to the surviving
// upstream members, then, after one deterministic detection round
// replaces the tail, against the repaired full-width chain — with
// every acknowledged write intact and new writes replicating at full
// width again.
func TestChaosChainRepairAfterTailKillMidRead(t *testing.T) {
	inj := faultinject.New(909, nil)
	vclock := clock.NewVirtual(time.Unix(0, 0))
	cfg := recoveryConfig()
	cluster := chaosCluster(t, inj, cfg, ClusterOptions{
		Servers: 4, BlocksPerServer: 16, Clock: vclock, DisableExpiry: true,
	})
	c, err := cluster.Connect(context.Background(),
		client.WithRetryPolicy(client.RetryPolicy{Limit: 6}))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.RegisterJob(context.Background(), "tails")
	m, _, err := c.CreatePrefix(context.Background(), "tails/t", nil, DSKV, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	chain := m.Blocks[0].Chain
	if len(chain) != 3 {
		t.Fatalf("chain = %+v, want 3 members", chain)
	}
	tailAddr := chain[len(chain)-1].Server
	kv, err := c.OpenKV(context.Background(), "tails/t")
	if err != nil {
		t.Fatal(err)
	}
	const n = 80
	for i := 0; i < n; i++ {
		if err := kv.Put(context.Background(), fmt.Sprintf("k%d", i),
			[]byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}

	// One continuous read scan; the tail dies halfway through. Reads
	// were routed to the tail and must fall back to the surviving
	// upstream members without a single miss — synchronous chain
	// propagation means every member holds every acknowledged write.
	tailIdx := -1
	for i := 0; i < n; i++ {
		if i == n/2 {
			tailIdx = killServer(t, cluster, inj, tailAddr)
		}
		v, err := kv.Get(context.Background(), fmt.Sprintf("k%d", i))
		if err != nil || string(v) != fmt.Sprintf("v%d", i) {
			t.Fatalf("read continuity broken at k%d after tail kill: %q, %v", i, v, err)
		}
	}

	// One detection round replaces the tail and resyncs it from the
	// surviving tail-most member's snapshot.
	detectAndRepair(t, cluster, vclock, cfg, tailIdx, tailAddr)
	assertChainHealthy(t, cluster, "tails/t", 3, tailAddr)

	// The full dataset reads back through the repaired chain, and new
	// writes replicate at full width again.
	for i := 0; i < n; i++ {
		v, err := kv.Get(context.Background(), fmt.Sprintf("k%d", i))
		if err != nil || string(v) != fmt.Sprintf("v%d", i) {
			t.Fatalf("acked write k%d lost after tail repair: %q, %v", i, v, err)
		}
	}
	for i := n; i < n+20; i++ {
		if err := kv.Put(context.Background(), fmt.Sprintf("k%d", i),
			[]byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatalf("post-repair put %d: %v", i, err)
		}
		v, err := kv.Get(context.Background(), fmt.Sprintf("k%d", i))
		if err != nil || string(v) != fmt.Sprintf("v%d", i) {
			t.Fatalf("post-repair read %d: %q, %v", i, v, err)
		}
	}
}

// drainWithConcurrentWrites runs kv puts on a goroutine for the whole
// duration of a DrainServer call and returns the migrated-entry count
// plus every write acknowledged while the drain ran. A write racing
// the drain may fail (the fence rejects it, the client's bounded
// retries exhaust before the repaired map is published) — that is the
// contract — but an ACKED write must never be lost, which is exactly
// the window the fence-before-snapshot ordering exists to close.
func drainWithConcurrentWrites(t *testing.T, c *Client, kv *client.KV,
	victim, keyPrefix string) (int, map[string]string) {
	t.Helper()
	acked := make(map[string]string)
	stop := make(chan struct{})
	done := make(chan struct{})
	var mu sync.Mutex
	go func() {
		defer close(done)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			key := fmt.Sprintf("%s%04d", keyPrefix, i)
			val := fmt.Sprintf("dv%04d", i)
			if err := kv.Put(context.Background(), key, []byte(val)); err == nil {
				mu.Lock()
				acked[key] = val
				mu.Unlock()
			}
		}
	}()
	migrated, err := c.DrainServer(context.Background(), victim)
	close(stop)
	<-done
	if err != nil {
		t.Fatalf("drain: %v", err)
	}
	return migrated, acked
}

// TestChaosDrainServerUnderLoad drains a healthy server through the
// client API while a write stream is live against it: every partition
// entry migrates off the drained server by snapshot, and no write
// acknowledged before OR DURING the drain is lost. The during-drain
// half is the load-bearing one — the splice fences the old chain
// (survivors switch generation, drained members are sealed) before
// the migration snapshot, so a write racing the drain either lands in
// the snapshot or is never acknowledged.
func TestChaosDrainServerUnderLoad(t *testing.T) {
	inj := faultinject.New(111, nil)
	vclock := clock.NewVirtual(time.Unix(0, 0))
	cfg := recoveryConfig()
	cluster := chaosCluster(t, inj, cfg, ClusterOptions{
		Servers: 4, BlocksPerServer: 16, Clock: vclock, DisableExpiry: true,
	})
	c, err := cluster.Connect(context.Background(),
		client.WithRetryPolicy(client.RetryPolicy{Limit: 6}))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.RegisterJob(context.Background(), "drain")
	m, _, err := c.CreatePrefix(context.Background(), "drain/t", nil, DSKV, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	chain := m.Blocks[0].Chain
	if len(chain) != 3 {
		t.Fatalf("chain = %+v, want 3 members", chain)
	}
	victim := chain[1].Server // drain a mid-chain member
	kv, err := c.OpenKV(context.Background(), "drain/t")
	if err != nil {
		t.Fatal(err)
	}
	const n = 60
	acked := make(map[string]string)
	for i := 0; i < n; i++ {
		key, val := fmt.Sprintf("k%d", i), fmt.Sprintf("v%d", i)
		if err := kv.Put(context.Background(), key, []byte(val)); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
		acked[key] = val
	}

	migrated, during := drainWithConcurrentWrites(t, c, kv, victim, "d")
	if migrated == 0 {
		t.Fatal("drain migrated no partition entries despite hosted replicas")
	}
	for k, v := range during {
		acked[k] = v
	}
	assertChainHealthy(t, cluster, "drain/t", 3, victim)
	if !cluster.Controller.ServerDead(victim) {
		t.Error("drained server still counted a live member")
	}
	// Zero acknowledged writes lost — including every write acked
	// while the drain was in flight.
	for key, val := range acked {
		v, err := kv.Get(context.Background(), key)
		if err != nil || string(v) != val {
			t.Fatalf("acked write %s lost across drain: %q, %v", key, v, err)
		}
	}
	// The repaired chain accepts new writes at full width.
	for i := 0; i < 20; i++ {
		key := fmt.Sprintf("post%d", i)
		if err := kv.Put(context.Background(), key, []byte(key)); err != nil {
			t.Fatalf("post-drain put %s: %v", key, err)
		}
	}
	// Draining the same server twice is a typed error, not a repeat.
	if _, err := c.DrainServer(context.Background(), victim); !errors.Is(err, ErrNotFound) {
		t.Fatalf("second drain = %v, want ErrNotFound", err)
	}
	t.Logf("drained %s: %d entries migrated, %d writes acked mid-drain",
		victim, migrated, len(during))
}

// TestChaosDrainUnreplicatedUnderLoad drains the server hosting an
// UNREPLICATED block while a write stream is live. With no survivors,
// the migration has no fenced old chain to lean on: the sole replica
// itself must be sealed before the snapshot, so a write racing the
// drain is either captured by the snapshot or refused its ack — the
// seal is double-checked after the local apply. Every acknowledged
// write must read back through the migrated block.
func TestChaosDrainUnreplicatedUnderLoad(t *testing.T) {
	inj := faultinject.New(222, nil)
	vclock := clock.NewVirtual(time.Unix(0, 0))
	cfg := recoveryConfig()
	cfg.ChainLength = 1
	cluster := chaosCluster(t, inj, cfg, ClusterOptions{
		Servers: 3, BlocksPerServer: 16, Clock: vclock, DisableExpiry: true,
	})
	c, err := cluster.Connect(context.Background(),
		client.WithRetryPolicy(client.RetryPolicy{Limit: 6}))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.RegisterJob(context.Background(), "solo")
	m, _, err := c.CreatePrefix(context.Background(), "solo/t", nil, DSKV, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Blocks[0].Replicas()) != 1 {
		t.Fatalf("replicas = %+v, want an unreplicated block", m.Blocks[0].Replicas())
	}
	victim := m.Blocks[0].Info.Server
	kv, err := c.OpenKV(context.Background(), "solo/t")
	if err != nil {
		t.Fatal(err)
	}
	const n = 40
	acked := make(map[string]string)
	for i := 0; i < n; i++ {
		key, val := fmt.Sprintf("k%d", i), fmt.Sprintf("v%d", i)
		if err := kv.Put(context.Background(), key, []byte(val)); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
		acked[key] = val
	}

	migrated, during := drainWithConcurrentWrites(t, c, kv, victim, "d")
	if migrated == 0 {
		t.Fatal("drain migrated no partition entries despite hosting the sole replica")
	}
	for k, v := range during {
		acked[k] = v
	}
	assertChainHealthy(t, cluster, "solo/t", 1, victim)
	if !cluster.Controller.ServerDead(victim) {
		t.Error("drained server still counted a live member")
	}
	for key, val := range acked {
		v, err := kv.Get(context.Background(), key)
		if err != nil || string(v) != val {
			t.Fatalf("acked write %s lost across sole-replica drain: %q, %v", key, v, err)
		}
	}
	for i := 0; i < 10; i++ {
		key := fmt.Sprintf("post%d", i)
		if err := kv.Put(context.Background(), key, []byte(key)); err != nil {
			t.Fatalf("post-drain put %s: %v", key, err)
		}
	}
	t.Logf("sole-replica drain of %s: %d entries migrated, %d writes acked mid-drain",
		victim, migrated, len(during))
}

// scrapeObs renders an obs registry and parses it back into a metric
// map, the same round trip an external scraper would perform.
func scrapeObs(r *obs.Registry) map[string]float64 {
	var buf bytes.Buffer
	r.WritePrometheus(&buf)
	return obs.ParsePrometheus(buf.Bytes())
}

// TestChaosTieringOverflowAndRecovery drives the cold-block tiering
// subsystem through its full lifecycle under a live write stream:
//
//  1. Overflow: a client fills servers well past the per-server memory
//     watermark. Every write is acknowledged — the overflow is absorbed
//     by demoting cold blocks to the persist tier, never by rejecting
//     writes — and once cooldowns lapse each server's resident bytes
//     drop back under the watermark.
//  2. Scale-to-zero: the workload goes idle; after the idle window
//     every block demotes and resident bytes hit exactly zero on every
//     server, with the tier metrics agreeing with a direct store scan.
//  3. Transparent rehydration: reads against demoted prefixes return
//     every value correctly — clients see latency, never an error.
//  4. Crash recovery: with all blocks re-demoted, one server is killed.
//     One deterministic detection round repairs its chains from the
//     persist-tier objects, and the full dataset — including every
//     block that lived on the dead server — reads back intact.
//
// Paced entirely on a virtual clock with TierScanPeriod=0: the test
// owns every demotion scan via TierTickNow, so it is deterministic and
// race-clean under -race.
func TestChaosTieringOverflowAndRecovery(t *testing.T) {
	inj := faultinject.New(303, nil)
	vclock := clock.NewVirtual(time.Unix(0, 0))
	cfg := recoveryConfig()
	cfg.ChainLength = 1
	cfg.MemoryWatermarkBytes = 96 * 1024 // 1.5 blocks' worth per server
	cfg.TierCooldown = 2 * time.Second
	cfg.TierIdleAfter = 4 * time.Second
	cfg.TierScanPeriod = 0 // scans are driven manually via TierTickNow
	cluster := chaosCluster(t, inj, cfg, ClusterOptions{
		Servers: 3, BlocksPerServer: 16, Clock: vclock, DisableExpiry: true,
	})
	c, err := cluster.Connect(context.Background(),
		client.WithRetryPolicy(client.RetryPolicy{Limit: 6}))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.RegisterJob(context.Background(), "tiering")

	tickAll := func(skip int) {
		t.Helper()
		for i, srv := range cluster.Servers {
			if i == skip {
				continue
			}
			if _, err := srv.TierTickNow(); err != nil {
				t.Fatalf("tier scan on server %d: %v", i, err)
			}
		}
	}

	// Phase 1 — overflow under a live write stream. 16 single-chunk
	// prefixes at ~33KB each is ~176KB/server against a 96KB watermark;
	// every put must be acknowledged.
	const prefixes, keysPer = 16, 32
	val := make([]byte, 1024)
	for i := range val {
		val[i] = byte(i)
	}
	kvs := make([]*client.KV, prefixes)
	for p := 0; p < prefixes; p++ {
		path := core.Path(fmt.Sprintf("tiering/p%02d", p))
		if _, _, err := c.CreatePrefix(context.Background(), path, nil, DSKV, 1, 0); err != nil {
			t.Fatalf("create %s: %v", path, err)
		}
		kv, err := c.OpenKV(context.Background(), path)
		if err != nil {
			t.Fatalf("open %s: %v", path, err)
		}
		kvs[p] = kv
		for k := 0; k < keysPer; k++ {
			if err := kv.Put(context.Background(), fmt.Sprintf("k%03d", k), val); err != nil {
				t.Fatalf("overflow write rejected (prefix %d key %d): %v", p, k, err)
			}
		}
		// Interleave demotion scans with the fill, as the worker would.
		vclock.Advance(300 * time.Millisecond)
		tickAll(-1)
	}

	// Once cooldowns lapse, pressure demotion pulls every server back
	// under its watermark.
	vclock.Advance(cfg.TierCooldown + time.Second)
	tickAll(-1)
	tiered := 0
	for i, srv := range cluster.Servers {
		if rb := srv.Store().ResidentBytes(); rb > cfg.MemoryWatermarkBytes {
			t.Fatalf("server %d resident bytes %d exceed watermark %d after scan",
				i, rb, cfg.MemoryWatermarkBytes)
		}
		tiered += srv.Store().TieredBlocks()
	}
	if tiered == 0 {
		t.Fatal("overflow absorbed no demotions despite exceeding every watermark")
	}

	// A hot subset keeps writing while scans run: hot blocks rehydrate
	// transparently on write and cold blocks absorb the pressure.
	for round := 0; round < 6; round++ {
		vclock.Advance(500 * time.Millisecond)
		tickAll(-1)
		for p := 0; p < 4; p++ {
			key := fmt.Sprintf("hot%d", round)
			if err := kvs[p].Put(context.Background(), key, val); err != nil {
				t.Fatalf("hot write rejected (prefix %d round %d): %v", p, round, err)
			}
		}
	}

	// Phase 2 — scale-to-zero: the workload goes idle, and after the
	// idle window every block demotes on every server.
	vclock.Advance(cfg.TierIdleAfter + cfg.TierCooldown + time.Second)
	tickAll(-1)
	totalTiered := 0
	for i, srv := range cluster.Servers {
		if rb := srv.Store().ResidentBytes(); rb != 0 {
			t.Fatalf("server %d resident bytes = %d after idle window, want 0", i, rb)
		}
		n := srv.Store().TieredBlocks()
		totalTiered += n
		m := scrapeObs(srv.Obs())
		if got := m["jiffy_blocks_tiered"]; got != float64(n) {
			t.Errorf("server %d jiffy_blocks_tiered = %v, store scan says %d", i, got, n)
		}
		if got := m["jiffy_store_resident_bytes"]; got != 0 {
			t.Errorf("server %d jiffy_store_resident_bytes = %v, want 0", i, got)
		}
		if m["jiffy_tier_demotions_total"] == 0 {
			t.Errorf("server %d reports zero demotions despite tiered blocks", i)
		}
	}
	if cm := scrapeObs(cluster.Controller.Obs()); cm["jiffy_ctrl_blocks_tiered"] != float64(totalTiered) {
		t.Errorf("controller tracks %v tiered blocks, servers hold %d",
			cm["jiffy_ctrl_blocks_tiered"], totalTiered)
	}

	// Phase 3 — transparent rehydration: reads against fully demoted
	// prefixes return every value, no client-visible errors.
	for _, p := range []int{4, 5} {
		for k := 0; k < keysPer; k++ {
			v, err := kvs[p].Get(context.Background(), fmt.Sprintf("k%03d", k))
			if err != nil || !bytes.Equal(v, val) {
				t.Fatalf("rehydrating read failed (prefix %d key %d): %d bytes, %v",
					p, k, len(v), err)
			}
		}
	}

	// Re-demote everything, then kill the server hosting one of the
	// tiered prefixes.
	vclock.Advance(cfg.TierIdleAfter + cfg.TierCooldown + time.Second)
	tickAll(-1)
	open, err := cluster.Controller.Open(core.Path("tiering/p06"))
	if err != nil {
		t.Fatal(err)
	}
	victim := open.Map.Blocks[0].Info.Server
	deadIdx := killServer(t, cluster, inj, victim)
	detectAndRepair(t, cluster, vclock, cfg, deadIdx, victim)

	// Phase 4 — every key of every prefix reads back: blocks on
	// survivors rehydrate in place, blocks on the dead server were
	// recovered from their persist-tier objects.
	for p := 0; p < prefixes; p++ {
		assertChainHealthy(t, cluster, core.Path(fmt.Sprintf("tiering/p%02d", p)), 1, victim)
		for k := 0; k < keysPer; k++ {
			v, err := kvs[p].Get(context.Background(), fmt.Sprintf("k%03d", k))
			if err != nil || !bytes.Equal(v, val) {
				t.Fatalf("acked write lost across tiered recovery (prefix %d key %d): %d bytes, %v",
					p, k, len(v), err)
			}
		}
		for r := 0; r < 6 && p < 4; r++ {
			v, err := kvs[p].Get(context.Background(), fmt.Sprintf("hot%d", r))
			if err != nil || !bytes.Equal(v, val) {
				t.Fatalf("hot write lost across tiered recovery (prefix %d round %d): %v", p, r, err)
			}
		}
	}
	cm := scrapeObs(cluster.Controller.Obs())
	if cm["jiffy_ctrl_tier_recoveries_total"] == 0 {
		t.Error("repair recovered no blocks from the persist tier")
	}
	if cm["jiffy_ctrl_blocks_tiered"] != 0 {
		t.Errorf("controller still tracks %v tiered blocks after full read-back",
			cm["jiffy_ctrl_blocks_tiered"])
	}
	t.Logf("tiered=%d at idle, ctrl recoveries=%v", totalTiered,
		cm["jiffy_ctrl_tier_recoveries_total"])
}
