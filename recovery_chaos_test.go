package jiffy

// Recovery chaos suite: end-to-end proofs of the self-healing pipeline
// (failure detection → chain repair → block recovery) under seeded
// faults and a virtual clock. Detection is driven deterministically:
// live servers beat via HeartbeatNow, the clock advances past the
// suspicion window, and one CheckLivenessNow scan declares the victim
// dead and repairs every chain synchronously — no wall-clock sleeps,
// no flaky timers, race-clean under -race.

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"jiffy/internal/client"
	"jiffy/internal/clock"
	"jiffy/internal/core"
	"jiffy/internal/faultinject"
)

// recoveryConfig is the shared shape of the repair scenarios: 3-member
// chains with heartbeat-based detection enabled but paced on a virtual
// clock (DisableExpiry keeps the controller's background detector off,
// so the test owns every detection step).
func recoveryConfig() core.Config {
	cfg := core.TestConfig()
	cfg.LeaseDuration = time.Minute
	cfg.RPCTimeout = 2 * time.Second
	cfg.ChainLength = 3
	cfg.HeartbeatInterval = time.Second
	cfg.SuspicionWindow = 5 * time.Second
	return cfg
}

// killServer closes the cluster server backing addr and severs every
// live session to it. Returns the index of the killed server.
func killServer(t *testing.T, cluster *Cluster, inj *faultinject.Injector, addr string) int {
	t.Helper()
	for i, srv := range cluster.Servers {
		if strings.Contains(addr, fmt.Sprintf("server-%d", i)) {
			srv.Close()
			inj.BreakConns(addr)
			return i
		}
	}
	t.Fatalf("no cluster server matches %s", addr)
	return -1
}

// detectAndRepair drives one deterministic detection round: the clock
// jumps past the suspicion window, every surviving server beats, and a
// single liveness scan declares the victim dead — repairing every
// affected chain synchronously before returning.
func detectAndRepair(t *testing.T, cluster *Cluster, vclock *clock.Virtual,
	cfg core.Config, deadIdx int, deadAddr string) {
	t.Helper()
	vclock.Advance(cfg.SuspicionWindow + cfg.HeartbeatInterval)
	for i, srv := range cluster.Servers {
		if i == deadIdx {
			continue
		}
		if err := srv.HeartbeatNow(); err != nil {
			t.Fatalf("heartbeat from surviving server %d: %v", i, err)
		}
	}
	newlyDead := cluster.Controller.CheckLivenessNow()
	if len(newlyDead) != 1 || newlyDead[0] != deadAddr {
		t.Fatalf("liveness scan declared %v dead, want exactly [%s]", newlyDead, deadAddr)
	}
	if !cluster.Controller.ServerDead(deadAddr) {
		t.Fatal("killed server not marked dead after the scan")
	}
}

// assertChainHealthy asserts every partition entry of path is repaired
// to a full-width chain with no member on deadAddr and none lost.
func assertChainHealthy(t *testing.T, cluster *Cluster, path core.Path,
	width int, deadAddr string) {
	t.Helper()
	open, err := cluster.Controller.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range open.Map.Blocks {
		if e.Lost {
			t.Fatalf("chunk %d marked lost despite surviving replicas", e.Chunk)
		}
		reps := e.Replicas()
		if len(reps) != width {
			t.Fatalf("chunk %d repaired to width %d, want %d: %+v",
				e.Chunk, len(reps), width, reps)
		}
		for _, info := range reps {
			if info.Server == deadAddr {
				t.Fatalf("chunk %d still references the dead server: %+v", e.Chunk, reps)
			}
		}
	}
}

// TestChaosChainRepairAfterHeadKill kills the HEAD of a 3-member
// replica chain in the middle of a write stream. Writes in the
// detection window fail with classified connection errors; one
// deterministic detection round splices the dead head out, promotes
// the next survivor and resyncs a replacement from the tail-most
// survivor's snapshot; the stream then resumes against the repaired
// chain with zero acknowledged writes lost, and later placements never
// select the dead server again.
func TestChaosChainRepairAfterHeadKill(t *testing.T) {
	inj := faultinject.New(808, nil)
	vclock := clock.NewVirtual(time.Unix(0, 0))
	cfg := recoveryConfig()
	cluster := chaosCluster(t, inj, cfg, ClusterOptions{
		Servers: 4, BlocksPerServer: 16, Clock: vclock, DisableExpiry: true,
	})
	c, err := cluster.Connect(context.Background(),
		client.WithRetryPolicy(client.RetryPolicy{Limit: 6}))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.RegisterJob(context.Background(), "repair")
	m, _, err := c.CreatePrefix(context.Background(), "repair/t", nil, DSKV, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	chain := m.Blocks[0].Chain
	if len(chain) != 3 {
		t.Fatalf("chain = %+v, want 3 members", chain)
	}
	headAddr := chain[0].Server
	epochBefore := cluster.Controller.MembershipEpoch()
	kv, err := c.OpenKV(context.Background(), "repair/t")
	if err != nil {
		t.Fatal(err)
	}

	// One continuous write stream; the head dies at killAt, detection
	// runs at repairAt, and every write outside the outage window must
	// be acknowledged.
	const total, killAt, repairAt = 200, 100, 110
	headIdx := -1
	acked := make(map[string]string)
	for i := 0; i < total; i++ {
		if i == killAt {
			headIdx = killServer(t, cluster, inj, headAddr)
		}
		if i == repairAt {
			detectAndRepair(t, cluster, vclock, cfg, headIdx, headAddr)
		}
		key, val := fmt.Sprintf("k%04d", i), fmt.Sprintf("v%04d", i)
		err := kv.Put(context.Background(), key, []byte(val))
		switch {
		case err == nil:
			acked[key] = val
		case i < killAt || i >= repairAt:
			t.Fatalf("put %s outside the outage window failed: %v", key, err)
		case !errors.Is(err, core.ErrClosed) && !errors.Is(err, ErrTimeout):
			t.Fatalf("outage-window put %s failed with unclassified error: %v", key, err)
		}
	}
	if len(acked) < total-(repairAt-killAt) {
		t.Fatalf("only %d/%d writes acknowledged", len(acked), total)
	}

	// The chain is back at full width with the dead head spliced out.
	assertChainHealthy(t, cluster, "repair/t", 3, headAddr)
	if epoch := cluster.Controller.MembershipEpoch(); epoch <= epochBefore {
		t.Errorf("membership epoch %d did not advance past %d", epoch, epochBefore)
	}

	// Zero acknowledged writes lost: every acked key reads back with
	// the value that was acknowledged.
	for key, val := range acked {
		v, err := kv.Get(context.Background(), key)
		if err != nil || string(v) != val {
			t.Fatalf("acked write %s lost after head repair: %q, %v", key, v, err)
		}
	}

	// Subsequent placements never touch the dead server: a fresh
	// 4-chunk prefix (12 replica placements) lands only on survivors.
	m2, _, err := c.CreatePrefix(context.Background(), "repair/t2", nil, DSKV, 4, 0)
	if err != nil {
		t.Fatalf("post-repair create: %v", err)
	}
	for _, e := range m2.Blocks {
		for _, info := range e.Replicas() {
			if info.Server == headAddr {
				t.Fatalf("post-repair placement selected the dead server: %+v", e)
			}
		}
	}
	if stats := cluster.Controller.Stats(); stats.Servers != 3 {
		t.Errorf("dead server still in the allocator pool: %+v", stats)
	}
	t.Logf("acked=%d epoch %d→%d", len(acked), epochBefore,
		cluster.Controller.MembershipEpoch())
}

// TestChaosChainRepairAfterTailKillMidRead kills the TAIL of a
// 3-member chain in the middle of a read scan. Reads must keep
// answering throughout — first by falling back to the surviving
// upstream members, then, after one deterministic detection round
// replaces the tail, against the repaired full-width chain — with
// every acknowledged write intact and new writes replicating at full
// width again.
func TestChaosChainRepairAfterTailKillMidRead(t *testing.T) {
	inj := faultinject.New(909, nil)
	vclock := clock.NewVirtual(time.Unix(0, 0))
	cfg := recoveryConfig()
	cluster := chaosCluster(t, inj, cfg, ClusterOptions{
		Servers: 4, BlocksPerServer: 16, Clock: vclock, DisableExpiry: true,
	})
	c, err := cluster.Connect(context.Background(),
		client.WithRetryPolicy(client.RetryPolicy{Limit: 6}))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.RegisterJob(context.Background(), "tails")
	m, _, err := c.CreatePrefix(context.Background(), "tails/t", nil, DSKV, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	chain := m.Blocks[0].Chain
	if len(chain) != 3 {
		t.Fatalf("chain = %+v, want 3 members", chain)
	}
	tailAddr := chain[len(chain)-1].Server
	kv, err := c.OpenKV(context.Background(), "tails/t")
	if err != nil {
		t.Fatal(err)
	}
	const n = 80
	for i := 0; i < n; i++ {
		if err := kv.Put(context.Background(), fmt.Sprintf("k%d", i),
			[]byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}

	// One continuous read scan; the tail dies halfway through. Reads
	// were routed to the tail and must fall back to the surviving
	// upstream members without a single miss — synchronous chain
	// propagation means every member holds every acknowledged write.
	tailIdx := -1
	for i := 0; i < n; i++ {
		if i == n/2 {
			tailIdx = killServer(t, cluster, inj, tailAddr)
		}
		v, err := kv.Get(context.Background(), fmt.Sprintf("k%d", i))
		if err != nil || string(v) != fmt.Sprintf("v%d", i) {
			t.Fatalf("read continuity broken at k%d after tail kill: %q, %v", i, v, err)
		}
	}

	// One detection round replaces the tail and resyncs it from the
	// surviving tail-most member's snapshot.
	detectAndRepair(t, cluster, vclock, cfg, tailIdx, tailAddr)
	assertChainHealthy(t, cluster, "tails/t", 3, tailAddr)

	// The full dataset reads back through the repaired chain, and new
	// writes replicate at full width again.
	for i := 0; i < n; i++ {
		v, err := kv.Get(context.Background(), fmt.Sprintf("k%d", i))
		if err != nil || string(v) != fmt.Sprintf("v%d", i) {
			t.Fatalf("acked write k%d lost after tail repair: %q, %v", i, v, err)
		}
	}
	for i := n; i < n+20; i++ {
		if err := kv.Put(context.Background(), fmt.Sprintf("k%d", i),
			[]byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatalf("post-repair put %d: %v", i, err)
		}
		v, err := kv.Get(context.Background(), fmt.Sprintf("k%d", i))
		if err != nil || string(v) != fmt.Sprintf("v%d", i) {
			t.Fatalf("post-repair read %d: %q, %v", i, v, err)
		}
	}
}

// drainWithConcurrentWrites runs kv puts on a goroutine for the whole
// duration of a DrainServer call and returns the migrated-entry count
// plus every write acknowledged while the drain ran. A write racing
// the drain may fail (the fence rejects it, the client's bounded
// retries exhaust before the repaired map is published) — that is the
// contract — but an ACKED write must never be lost, which is exactly
// the window the fence-before-snapshot ordering exists to close.
func drainWithConcurrentWrites(t *testing.T, c *Client, kv *client.KV,
	victim, keyPrefix string) (int, map[string]string) {
	t.Helper()
	acked := make(map[string]string)
	stop := make(chan struct{})
	done := make(chan struct{})
	var mu sync.Mutex
	go func() {
		defer close(done)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			key := fmt.Sprintf("%s%04d", keyPrefix, i)
			val := fmt.Sprintf("dv%04d", i)
			if err := kv.Put(context.Background(), key, []byte(val)); err == nil {
				mu.Lock()
				acked[key] = val
				mu.Unlock()
			}
		}
	}()
	migrated, err := c.DrainServer(context.Background(), victim)
	close(stop)
	<-done
	if err != nil {
		t.Fatalf("drain: %v", err)
	}
	return migrated, acked
}

// TestChaosDrainServerUnderLoad drains a healthy server through the
// client API while a write stream is live against it: every partition
// entry migrates off the drained server by snapshot, and no write
// acknowledged before OR DURING the drain is lost. The during-drain
// half is the load-bearing one — the splice fences the old chain
// (survivors switch generation, drained members are sealed) before
// the migration snapshot, so a write racing the drain either lands in
// the snapshot or is never acknowledged.
func TestChaosDrainServerUnderLoad(t *testing.T) {
	inj := faultinject.New(111, nil)
	vclock := clock.NewVirtual(time.Unix(0, 0))
	cfg := recoveryConfig()
	cluster := chaosCluster(t, inj, cfg, ClusterOptions{
		Servers: 4, BlocksPerServer: 16, Clock: vclock, DisableExpiry: true,
	})
	c, err := cluster.Connect(context.Background(),
		client.WithRetryPolicy(client.RetryPolicy{Limit: 6}))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.RegisterJob(context.Background(), "drain")
	m, _, err := c.CreatePrefix(context.Background(), "drain/t", nil, DSKV, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	chain := m.Blocks[0].Chain
	if len(chain) != 3 {
		t.Fatalf("chain = %+v, want 3 members", chain)
	}
	victim := chain[1].Server // drain a mid-chain member
	kv, err := c.OpenKV(context.Background(), "drain/t")
	if err != nil {
		t.Fatal(err)
	}
	const n = 60
	acked := make(map[string]string)
	for i := 0; i < n; i++ {
		key, val := fmt.Sprintf("k%d", i), fmt.Sprintf("v%d", i)
		if err := kv.Put(context.Background(), key, []byte(val)); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
		acked[key] = val
	}

	migrated, during := drainWithConcurrentWrites(t, c, kv, victim, "d")
	if migrated == 0 {
		t.Fatal("drain migrated no partition entries despite hosted replicas")
	}
	for k, v := range during {
		acked[k] = v
	}
	assertChainHealthy(t, cluster, "drain/t", 3, victim)
	if !cluster.Controller.ServerDead(victim) {
		t.Error("drained server still counted a live member")
	}
	// Zero acknowledged writes lost — including every write acked
	// while the drain was in flight.
	for key, val := range acked {
		v, err := kv.Get(context.Background(), key)
		if err != nil || string(v) != val {
			t.Fatalf("acked write %s lost across drain: %q, %v", key, v, err)
		}
	}
	// The repaired chain accepts new writes at full width.
	for i := 0; i < 20; i++ {
		key := fmt.Sprintf("post%d", i)
		if err := kv.Put(context.Background(), key, []byte(key)); err != nil {
			t.Fatalf("post-drain put %s: %v", key, err)
		}
	}
	// Draining the same server twice is a typed error, not a repeat.
	if _, err := c.DrainServer(context.Background(), victim); !errors.Is(err, ErrNotFound) {
		t.Fatalf("second drain = %v, want ErrNotFound", err)
	}
	t.Logf("drained %s: %d entries migrated, %d writes acked mid-drain",
		victim, migrated, len(during))
}

// TestChaosDrainUnreplicatedUnderLoad drains the server hosting an
// UNREPLICATED block while a write stream is live. With no survivors,
// the migration has no fenced old chain to lean on: the sole replica
// itself must be sealed before the snapshot, so a write racing the
// drain is either captured by the snapshot or refused its ack — the
// seal is double-checked after the local apply. Every acknowledged
// write must read back through the migrated block.
func TestChaosDrainUnreplicatedUnderLoad(t *testing.T) {
	inj := faultinject.New(222, nil)
	vclock := clock.NewVirtual(time.Unix(0, 0))
	cfg := recoveryConfig()
	cfg.ChainLength = 1
	cluster := chaosCluster(t, inj, cfg, ClusterOptions{
		Servers: 3, BlocksPerServer: 16, Clock: vclock, DisableExpiry: true,
	})
	c, err := cluster.Connect(context.Background(),
		client.WithRetryPolicy(client.RetryPolicy{Limit: 6}))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.RegisterJob(context.Background(), "solo")
	m, _, err := c.CreatePrefix(context.Background(), "solo/t", nil, DSKV, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Blocks[0].Replicas()) != 1 {
		t.Fatalf("replicas = %+v, want an unreplicated block", m.Blocks[0].Replicas())
	}
	victim := m.Blocks[0].Info.Server
	kv, err := c.OpenKV(context.Background(), "solo/t")
	if err != nil {
		t.Fatal(err)
	}
	const n = 40
	acked := make(map[string]string)
	for i := 0; i < n; i++ {
		key, val := fmt.Sprintf("k%d", i), fmt.Sprintf("v%d", i)
		if err := kv.Put(context.Background(), key, []byte(val)); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
		acked[key] = val
	}

	migrated, during := drainWithConcurrentWrites(t, c, kv, victim, "d")
	if migrated == 0 {
		t.Fatal("drain migrated no partition entries despite hosting the sole replica")
	}
	for k, v := range during {
		acked[k] = v
	}
	assertChainHealthy(t, cluster, "solo/t", 1, victim)
	if !cluster.Controller.ServerDead(victim) {
		t.Error("drained server still counted a live member")
	}
	for key, val := range acked {
		v, err := kv.Get(context.Background(), key)
		if err != nil || string(v) != val {
			t.Fatalf("acked write %s lost across sole-replica drain: %q, %v", key, v, err)
		}
	}
	for i := 0; i < 10; i++ {
		key := fmt.Sprintf("post%d", i)
		if err := kv.Put(context.Background(), key, []byte(key)); err != nil {
			t.Fatalf("post-drain put %s: %v", key, err)
		}
	}
	t.Logf("sole-replica drain of %s: %d entries migrated, %d writes acked mid-drain",
		victim, migrated, len(during))
}
