package jiffy_test

// One benchmark per table/figure of the paper's evaluation (§6), each
// wrapping the corresponding generator in internal/bench. Run them all
// with:
//
//	go test -bench=. -benchmem
//
// or regenerate a figure's full output with cmd/jiffy-bench. Benchmarks
// run the Quick configurations so the whole suite finishes in minutes;
// EXPERIMENTS.md records full-scale results.

import (
	"context"
	"fmt"
	"io"
	"testing"
	"time"

	"jiffy"
	"jiffy/internal/bench"
	"jiffy/internal/core"
)

// runFig executes one figure generator b.N times, discarding output.
func runFig(b *testing.B, fn func(io.Writer, bench.Options) error) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		if err := fn(io.Discard, bench.Options{Quick: true}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig1SnowflakeTrace regenerates Fig. 1: the Snowflake-like
// workload's per-tenant intermediate data over time and the waste of
// peak provisioning.
func BenchmarkFig1SnowflakeTrace(b *testing.B) { runFig(b, bench.Fig1) }

// BenchmarkFig9aJobSlowdown and BenchmarkFig9bUtilization regenerate
// Fig. 9: job slowdown and resource utilization vs. capacity for
// ElastiCache, Pocket and Jiffy (one simulation produces both panels).
func BenchmarkFig9aJobSlowdown(b *testing.B) { runFig(b, bench.Fig9) }

// BenchmarkFig9bUtilization is the same sweep as Fig. 9(a); both
// panels come from one replay (see internal/bench.Fig9).
func BenchmarkFig9bUtilization(b *testing.B) { runFig(b, bench.Fig9) }

// BenchmarkFig10aLatency / BenchmarkFig10bThroughput regenerate
// Fig. 10: six-system latency and MB/s vs. object size, with Jiffy
// measured live.
func BenchmarkFig10aLatency(b *testing.B) { runFig(b, bench.Fig10) }

// BenchmarkFig10bThroughput shares Fig10's measurement (latency and
// MB/s come from the same samples).
func BenchmarkFig10bThroughput(b *testing.B) { runFig(b, bench.Fig10) }

// BenchmarkFig11aLifetime regenerates Fig. 11(a): allocated vs. used
// memory over time per data structure under lease-based reclamation.
func BenchmarkFig11aLifetime(b *testing.B) { runFig(b, bench.Fig11a) }

// BenchmarkFig11bRepartition regenerates Fig. 11(b): repartitioning
// latency CDFs and the impact of repartitioning on foreground gets.
func BenchmarkFig11bRepartition(b *testing.B) { runFig(b, bench.Fig11b) }

// BenchmarkFig12aController regenerates Fig. 12(a): controller
// throughput vs. latency on one shard.
func BenchmarkFig12aController(b *testing.B) { runFig(b, bench.Fig12a) }

// BenchmarkFig12bControllerScaling regenerates Fig. 12(b): controller
// throughput scaling with shard count.
func BenchmarkFig12bControllerScaling(b *testing.B) { runFig(b, bench.Fig12b) }

// BenchmarkFig13aStreamingWordCount regenerates Fig. 13(a): streaming
// word-count batch latency, Jiffy vs. an over-provisioned
// ElastiCache model.
func BenchmarkFig13aStreamingWordCount(b *testing.B) { runFig(b, bench.Fig13a) }

// BenchmarkFig13bExCamera regenerates Fig. 13(b): ExCamera task
// latency with rendezvous-server polling vs. Jiffy queue notifications.
func BenchmarkFig13bExCamera(b *testing.B) { runFig(b, bench.Fig13b) }

// BenchmarkFig14aBlockSize, ...LeaseDuration and ...Threshold
// regenerate Fig. 14's sensitivity sweeps.
func BenchmarkFig14aBlockSize(b *testing.B) { runFig(b, bench.Fig14a) }

// BenchmarkFig14bLeaseDuration sweeps lease durations (Fig. 14(b)).
func BenchmarkFig14bLeaseDuration(b *testing.B) { runFig(b, bench.Fig14b) }

// BenchmarkFig14cThreshold sweeps repartition thresholds (Fig. 14(c)).
func BenchmarkFig14cThreshold(b *testing.B) { runFig(b, bench.Fig14c) }

// BenchmarkMetadataOverhead regenerates the §6.4 storage-overhead
// numbers.
func BenchmarkMetadataOverhead(b *testing.B) { runFig(b, bench.Overhead) }

// --- end-to-end data-path micro-benchmarks --------------------------------
//
// These complement the figure reproductions with standard Go benches of
// the live data path (akin to the §6.2 single-client measurements).

func benchCluster(b *testing.B) *jiffy.Client {
	b.Helper()
	cfg := core.TestConfig()
	cfg.BlockSize = core.MB
	cfg.LeaseDuration = time.Hour
	cluster, err := jiffy.StartCluster(jiffy.ClusterOptions{
		Config: cfg, Servers: 2, BlocksPerServer: 128,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { cluster.Close() })
	c, err := cluster.Connect(context.Background())
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { c.Close() })
	return c
}

// BenchmarkKVPut measures end-to-end KV writes through the full RPC
// stack.
func BenchmarkKVPut(b *testing.B) {
	c := benchCluster(b)
	c.RegisterJob(context.Background(), "bench")
	c.CreatePrefix(context.Background(), "bench/kv", nil, jiffy.DSKV, 4, 0)
	kv, err := c.OpenKV(context.Background(), "bench/kv")
	if err != nil {
		b.Fatal(err)
	}
	val := make([]byte, 128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := kv.Put(context.Background(), fmt.Sprintf("key-%d", i%4096), val); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkKVGet measures end-to-end KV reads.
func BenchmarkKVGet(b *testing.B) {
	c := benchCluster(b)
	c.RegisterJob(context.Background(), "bench")
	c.CreatePrefix(context.Background(), "bench/kv", nil, jiffy.DSKV, 4, 0)
	kv, _ := c.OpenKV(context.Background(), "bench/kv")
	val := make([]byte, 128)
	for i := 0; i < 1024; i++ {
		kv.Put(context.Background(), fmt.Sprintf("key-%d", i), val)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := kv.Get(context.Background(), fmt.Sprintf("key-%d", i%1024)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQueueEnqueueDequeue measures queue round trips.
func BenchmarkQueueEnqueueDequeue(b *testing.B) {
	c := benchCluster(b)
	c.RegisterJob(context.Background(), "bench")
	c.CreatePrefix(context.Background(), "bench/q", nil, jiffy.DSQueue, 1, 0)
	q, _ := c.OpenQueue(context.Background(), "bench/q")
	item := make([]byte, 128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := q.Enqueue(context.Background(), item); err != nil {
			b.Fatal(err)
		}
		if _, err := q.Dequeue(context.Background()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFileAppendRecord measures concurrent-safe record appends.
func BenchmarkFileAppendRecord(b *testing.B) {
	c := benchCluster(b)
	c.RegisterJob(context.Background(), "bench")
	c.CreatePrefix(context.Background(), "bench/f", nil, jiffy.DSFile, 1, 0)
	f, _ := c.OpenFile(context.Background(), "bench/f")
	rec := make([]byte, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.AppendRecord(context.Background(), rec); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLeaseRenewal measures the dominant control-plane op.
func BenchmarkLeaseRenewal(b *testing.B) {
	c := benchCluster(b)
	c.RegisterJob(context.Background(), "bench")
	c.CreatePrefix(context.Background(), "bench/kv", nil, jiffy.DSKV, 1, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.RenewLease(context.Background(), "bench/kv"); err != nil {
			b.Fatal(err)
		}
	}
}
