package jiffy

// End-to-end behavior tests for the batched multi-op API: value
// round-trips, per-op error attribution, chunk/segment boundaries
// crossed mid-batch, and a batch racing a repartition.

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"testing"

	"jiffy/internal/core"
)

func batchKV(t *testing.T, c *Client, prefix core.Path, blocks int) *KV {
	t.Helper()
	if _, _, err := c.CreatePrefix(context.Background(), prefix, nil, DSKV, blocks, 0); err != nil {
		t.Fatal(err)
	}
	kv, err := c.OpenKV(context.Background(), prefix)
	if err != nil {
		t.Fatal(err)
	}
	return kv
}

func TestMultiPutMultiGetRoundTrip(t *testing.T) {
	_, c := testCluster(t, 2, 32)
	c.RegisterJob(context.Background(), "batch")
	kv := batchKV(t, c, "batch/t", 4)

	const n = 100
	pairs := make([]KVPair, n)
	keys := make([]string, n)
	for i := range pairs {
		keys[i] = fmt.Sprintf("key-%03d", i)
		pairs[i] = KVPair{Key: keys[i], Value: []byte(fmt.Sprintf("val-%03d", i))}
	}
	if err := kv.MultiPut(context.Background(), pairs); err != nil {
		t.Fatalf("MultiPut: %v", err)
	}
	vals, err := kv.MultiGet(context.Background(), keys)
	if err != nil {
		t.Fatalf("MultiGet: %v", err)
	}
	if len(vals) != n {
		t.Fatalf("MultiGet returned %d values for %d keys", len(vals), n)
	}
	for i, v := range vals {
		if string(v) != fmt.Sprintf("val-%03d", i) {
			t.Fatalf("vals[%d] = %q", i, v)
		}
	}
	// Batched writes are real writes: the single-op path sees them.
	if v, err := kv.Get(context.Background(), keys[n-1]); err != nil || string(v) != fmt.Sprintf("val-%03d", n-1) {
		t.Fatalf("single Get after MultiPut = %q, %v", v, err)
	}
}

func TestMultiGetMissingKeysAttributed(t *testing.T) {
	_, c := testCluster(t, 2, 32)
	c.RegisterJob(context.Background(), "batch")
	kv := batchKV(t, c, "batch/miss", 4)

	const n = 40
	var pairs []KVPair
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%03d", i)
		if i%2 == 0 {
			pairs = append(pairs, KVPair{Key: keys[i], Value: []byte("present")})
		}
	}
	if err := kv.MultiPut(context.Background(), pairs); err != nil {
		t.Fatal(err)
	}
	vals, err := kv.MultiGet(context.Background(), keys)
	if err == nil {
		t.Fatal("MultiGet with missing keys reported total success")
	}
	if !errors.Is(err, ErrNotFound) {
		t.Fatalf("aggregate error does not unwrap to ErrNotFound: %v", err)
	}
	var me *MultiError
	if !errors.As(err, &me) || len(me.Errs) != n {
		t.Fatalf("error = %T with %d outcomes, want *MultiError with %d", err, len(me.Errs), n)
	}
	for i := range keys {
		present := i%2 == 0
		switch {
		case present && (me.Errs[i] != nil || string(vals[i]) != "present"):
			t.Fatalf("present key %d: val=%q err=%v", i, vals[i], me.Errs[i])
		case !present && !errors.Is(me.Errs[i], ErrNotFound):
			t.Fatalf("missing key %d attributed %v, want ErrNotFound", i, me.Errs[i])
		case !present && vals[i] != nil:
			t.Fatalf("missing key %d has value %q", i, vals[i])
		}
	}
}

func TestBatchEmptyAndSingle(t *testing.T) {
	_, c := testCluster(t, 1, 16)
	c.RegisterJob(context.Background(), "batch")
	kv := batchKV(t, c, "batch/edge", 1)

	if err := kv.MultiPut(context.Background(), nil); err != nil {
		t.Errorf("empty MultiPut = %v", err)
	}
	if vals, err := kv.MultiGet(context.Background(), nil); err != nil || len(vals) != 0 {
		t.Errorf("empty MultiGet = %v, %v", vals, err)
	}
	if err := kv.MultiPut(context.Background(), []KVPair{{Key: "only", Value: []byte("one")}}); err != nil {
		t.Fatal(err)
	}
	vals, err := kv.MultiGet(context.Background(), []string{"only"})
	if err != nil || len(vals) != 1 || string(vals[0]) != "one" {
		t.Fatalf("single-op batch = %q, %v", vals, err)
	}
}

// TestAppendBatchAcrossChunkBoundary appends far more than one chunk in
// batches: the tail must fill mid-batch, the unplaced suffix scale up
// and land on the new tail, and every returned offset read back the
// record that was appended there.
func TestAppendBatchAcrossChunkBoundary(t *testing.T) {
	_, c := testCluster(t, 2, 32)
	c.RegisterJob(context.Background(), "batch")
	if _, _, err := c.CreatePrefix(context.Background(), "batch/f", nil, DSFile, 1, 0); err != nil {
		t.Fatal(err)
	}
	f, err := c.OpenFile(context.Background(), "batch/f")
	if err != nil {
		t.Fatal(err)
	}

	// 1KB records against 64KB chunks: 150 records span >2 chunks.
	const n = 150
	records := make([][]byte, n)
	for i := range records {
		records[i] = bytes.Repeat([]byte{byte(i)}, 1024)
	}
	var offs []int
	for lo := 0; lo < n; lo += 50 {
		batch, err := f.AppendBatch(context.Background(), records[lo:lo+50])
		if err != nil {
			t.Fatalf("AppendBatch[%d:]: %v", lo, err)
		}
		offs = append(offs, batch...)
	}

	chunks, err := f.Chunks(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if chunks < 3 {
		t.Fatalf("file has %d chunks; the batch never crossed a boundary", chunks)
	}
	seen := make(map[int]bool)
	for i, off := range offs {
		if seen[off] {
			t.Fatalf("records %d shares offset %d with an earlier record", i, off)
		}
		seen[off] = true
		got, err := f.ReadAt(context.Background(), off, len(records[i]))
		if err != nil || !bytes.Equal(got, records[i]) {
			t.Fatalf("record %d at offset %d: len=%d err=%v", i, off, len(got), err)
		}
	}
}

// TestEnqueueBatchFIFOAcrossSegments enqueues enough that the tail
// segment seals mid-batch (redirect path) and verifies strict FIFO
// order across the segment boundary on dequeue.
func TestEnqueueBatchFIFOAcrossSegments(t *testing.T) {
	_, c := testCluster(t, 2, 32)
	c.RegisterJob(context.Background(), "batch")
	if _, _, err := c.CreatePrefix(context.Background(), "batch/q", nil, DSQueue, 1, 0); err != nil {
		t.Fatal(err)
	}
	q, err := c.OpenQueue(context.Background(), "batch/q")
	if err != nil {
		t.Fatal(err)
	}

	// 1KB items against 64KB segments: 150 items cross segments.
	const n = 150
	items := make([][]byte, n)
	for i := range items {
		items[i] = append(bytes.Repeat([]byte{byte(i)}, 1023), byte(i))
	}
	for lo := 0; lo < n; lo += 50 {
		if err := q.EnqueueBatch(context.Background(), items[lo:lo+50]); err != nil {
			t.Fatalf("EnqueueBatch[%d:]: %v", lo, err)
		}
	}
	for i := 0; i < n; i++ {
		got, err := q.Dequeue(context.Background())
		if err != nil {
			t.Fatalf("dequeue %d: %v", i, err)
		}
		if !bytes.Equal(got, items[i]) {
			t.Fatalf("dequeue %d out of order: got tag %d, want %d", i, got[0], i)
		}
	}
}

// TestBatchSpanningRepartitionInFlight is the stale-map scenario: a
// handle caches the partition map, the structure repartitions underneath
// it (driven through a second handle), and then a batch through the
// stale handle spans blocks that moved. The per-op ErrStaleEpoch
// responses must drive a refresh-and-regroup, not surface to the
// caller, and every op must land under the new map.
func TestBatchSpanningRepartitionInFlight(t *testing.T) {
	_, c := testCluster(t, 2, 64)
	c.RegisterJob(context.Background(), "batch")
	staleKV := batchKV(t, c, "batch/repart", 1) // caches the 1-block map

	// Drive repeated splits through an independent handle: the stale
	// handle's cached map now points most slots at the wrong block.
	writerKV, err := c.OpenKV(context.Background(), "batch/repart")
	if err != nil {
		t.Fatal(err)
	}
	filler := bytes.Repeat([]byte("x"), 1024)
	for i := 0; i < 400; i++ {
		if err := writerKV.Put(context.Background(), fmt.Sprintf("fill-%04d", i), filler); err != nil {
			t.Fatalf("fill put %d: %v", i, err)
		}
	}
	stats, err := c.ControllerStats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if stats.AllocatedBlocks < 4 {
		t.Fatalf("allocated blocks = %d; the store never repartitioned", stats.AllocatedBlocks)
	}

	// A batch through the stale handle: its ops hit moved blocks, the
	// servers answer ErrStaleEpoch per op, and the batch engine must
	// split the batch and retry against the refreshed map.
	const n = 80
	pairs := make([]KVPair, n)
	keys := make([]string, n)
	for i := range pairs {
		keys[i] = fmt.Sprintf("batch-%03d", i)
		pairs[i] = KVPair{Key: keys[i], Value: []byte(fmt.Sprintf("bv-%03d", i))}
	}
	if err := staleKV.MultiPut(context.Background(), pairs); err != nil {
		t.Fatalf("MultiPut through stale handle: %v", err)
	}
	vals, err := staleKV.MultiGet(context.Background(), keys)
	if err != nil {
		t.Fatalf("MultiGet through refreshed handle: %v", err)
	}
	for i, v := range vals {
		if string(v) != fmt.Sprintf("bv-%03d", i) {
			t.Fatalf("vals[%d] = %q after repartition", i, v)
		}
	}
	// The fill data survived the batch traffic too.
	if v, err := writerKV.Get(context.Background(), "fill-0000"); err != nil || !bytes.Equal(v, filler) {
		t.Fatalf("fill key after batch: len=%d err=%v", len(v), err)
	}
}
