// Quickstart: boot an in-process Jiffy cluster and exercise the three
// built-in data structures — the KV store, the append-oriented file and
// the FIFO queue — plus leases and explicit flush/load.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"jiffy"
	"jiffy/internal/core"
)

func main() {
	// A cluster is one controller plus memory servers; in-process here,
	// but the identical components run standalone via cmd/jiffy-controller
	// and cmd/jiffy-server for real deployments.
	cluster, err := jiffy.StartCluster(jiffy.ClusterOptions{
		Servers:         2,
		BlocksPerServer: 64,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	c, err := cluster.Connect(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()

	// Jobs own hierarchical address spaces; prefixes under a job hold
	// data structures whose memory is allocated block by block as data
	// arrives — no capacity declaration anywhere.
	if err := c.RegisterJob(context.Background(), "quickstart"); err != nil {
		log.Fatal(err)
	}
	defer c.DeregisterJob(context.Background(

	// Keep the whole job alive with one renewal loop: renewing the
	// root propagates to every descendant prefix.
	), "quickstart")

	renewer := c.StartRenewer(100*time.Millisecond, "quickstart")
	defer renewer.Stop()

	// --- KV store -----------------------------------------------------
	if _, _, err := c.CreatePrefix(context.Background(), "quickstart/state", nil, jiffy.DSKV, 1, 0); err != nil {
		log.Fatal(err)
	}
	kv, err := c.OpenKV(context.Background(), "quickstart/state")
	if err != nil {
		log.Fatal(err)
	}
	if err := kv.Put(context.Background(), "greeting", []byte("hello, far memory")); err != nil {
		log.Fatal(err)
	}
	v, err := kv.Get(context.Background(), "greeting")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("kv: greeting = %q\n", v)

	// --- File ----------------------------------------------------------
	if _, _, err := c.CreatePrefix(context.Background(), "quickstart/logfile", nil, jiffy.DSFile, 1, 0); err != nil {
		log.Fatal(err)
	}
	f, err := c.OpenFile(context.Background(), "quickstart/logfile")
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := f.Append(context.Background(), []byte(fmt.Sprintf("line %d\n", i))); err != nil {
			log.Fatal(err)
		}
	}
	data, err := f.ReadAt(context.Background(), 0, 1024)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("file contents:\n%s", data)

	// --- Queue with notifications ---------------------------------------
	if _, _, err := c.CreatePrefix(context.Background(), "quickstart/work", nil, jiffy.DSQueue, 1, 0); err != nil {
		log.Fatal(err)
	}
	q, err := c.OpenQueue(context.Background(), "quickstart/work")
	if err != nil {
		log.Fatal(err)
	}
	listener, err := q.Subscribe(context.Background(), core.OpEnqueue)
	if err != nil {
		log.Fatal(err)
	}
	defer listener.Close()
	if err := q.Enqueue(context.Background(), []byte("task-1")); err != nil {
		log.Fatal(err)
	}
	if n, err := listener.Get(time.Second); err == nil {
		fmt.Printf("queue: notified of %s %q\n", n.Op, n.Data)
	}
	item, err := q.Dequeue(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("queue: dequeued %q\n", item)

	// --- Checkpoint & restore -------------------------------------------
	if _, err := c.FlushPrefix(context.Background(), "quickstart/state", "ckpt/state-v1"); err != nil {
		log.Fatal(err)
	}
	kv.Put(context.Background(), "greeting", []byte("overwritten"))
	if err := c.LoadPrefix(context.Background(), "quickstart/state", "ckpt/state-v1"); err != nil {
		log.Fatal(err)
	}
	kv, _ = c.OpenKV(context.Background(), "quickstart/state")
	v, _ = kv.Get(context.Background(), "greeting")
	fmt.Printf("kv after checkpoint restore: greeting = %q\n", v)

	stats, _ := c.ControllerStats(context.Background())
	fmt.Printf("cluster: %d/%d blocks allocated, %d bytes of controller metadata\n",
		stats.AllocatedBlocks, stats.TotalBlocks, stats.MetadataBytes)
}
