// Custom-counter: defining a NEW data structure on Jiffy (the "Custom
// data structures" row of the paper's Table 2). A distributed counter
// set is implemented as a ds.Partition — the same internal block API
// the built-ins use — registered under a custom type code, and then
// provisioned, scaled, leased, checkpointed and accessed through the
// ordinary Jiffy machinery with zero changes to the system.
//
//	go run ./examples/custom-counter
package main

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"log"
	"sync"

	"jiffy"
	"jiffy/internal/core"
	"jiffy/internal/ds"
)

// dsCounter is this structure's type code (>= ds.CustomBase).
const dsCounter = ds.CustomBase + 10

// counters is the per-block partition: a set of named int64 counters.
// OpUpdate(name, delta) adds atomically; OpGet(name) reads.
type counters struct {
	mu    sync.Mutex
	m     map[string]int64
	bytes int
	cap   int
}

func newCounters(capacity, _ int) ds.Partition {
	return &counters{m: make(map[string]int64), cap: capacity}
}

func (p *counters) Type() core.DSType { return dsCounter }
func (p *counters) Capacity() int     { return p.cap }

func (p *counters) Bytes() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.bytes
}

func (p *counters) Apply(op core.OpType, args [][]byte) ([][]byte, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	switch op {
	case core.OpUpdate:
		name := string(args[0])
		if _, ok := p.m[name]; !ok {
			if p.bytes+len(name)+8 > p.cap {
				return nil, core.ErrBlockFull
			}
			p.bytes += len(name) + 8
		}
		p.m[name] += int64(binary.BigEndian.Uint64(args[1]))
		out := make([]byte, 8)
		binary.BigEndian.PutUint64(out, uint64(p.m[name]))
		return [][]byte{out}, nil
	case core.OpGet:
		v, ok := p.m[string(args[0])]
		if !ok {
			return nil, core.ErrNotFound
		}
		out := make([]byte, 8)
		binary.BigEndian.PutUint64(out, uint64(v))
		return [][]byte{out}, nil
	default:
		return nil, core.ErrWrongType
	}
}

func (p *counters) Snapshot() ([]byte, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(p.m)
	return buf.Bytes(), err
}

func (p *counters) Restore(snapshot []byte) error {
	m := make(map[string]int64)
	if err := gob.NewDecoder(bytes.NewReader(snapshot)).Decode(&m); err != nil {
		return err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.m = m
	p.bytes = 0
	for name := range m {
		p.bytes += len(name) + 8
	}
	return nil
}

func main() {
	// Registration must happen in every process hosting blocks (here:
	// just this one, which embeds the whole cluster).
	if err := ds.Register(dsCounter, "counters", newCounters); err != nil {
		log.Fatal(err)
	}

	cluster, err := jiffy.StartCluster(jiffy.ClusterOptions{
		Servers: 2, BlocksPerServer: 32,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()
	c, err := cluster.Connect(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()

	c.RegisterJob(context.Background(), "metrics")
	defer c.DeregisterJob(context.Background(), "metrics")
	if _, _, err := c.CreatePrefix(context.Background(), "metrics/hits", nil, dsCounter, 1, 0); err != nil {
		log.Fatal(err)
	}
	h, err := c.OpenCustom(context.Background(), "metrics/hits", dsCounter)
	if err != nil {
		log.Fatal(err)
	}

	// Many "serverless tasks" bump shared counters concurrently.
	one := make([]byte, 8)
	binary.BigEndian.PutUint64(one, 1)
	var wg sync.WaitGroup
	for task := 0; task < 8; task++ {
		wg.Add(1)
		go func(task int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				name := fmt.Sprintf("endpoint-%d", i%4)
				if _, err := h.Exec(context.Background(), 0, core.OpUpdate, []byte(name), one); err != nil {
					log.Printf("task %d: %v", task, err)
					return
				}
			}
		}(task)
	}
	wg.Wait()

	// Checkpoint the counters like any other prefix.
	if _, err := c.FlushPrefix(context.Background(), "metrics/hits", "ckpt/hits"); err != nil {
		log.Fatal(err)
	}

	for i := 0; i < 4; i++ {
		name := fmt.Sprintf("endpoint-%d", i)
		res, err := h.Exec(context.Background(), 0, core.OpGet, []byte(name))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: %d hits\n", name, binary.BigEndian.Uint64(res[0]))
	}
	fmt.Println("custom structure checkpointed to ckpt/hits")
}
