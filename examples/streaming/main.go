// Streaming: the Fig. 13(a) workload — a streaming word-count where
// partition tasks split incoming sentences and route words over Jiffy
// queues to count tasks that maintain running counts in a Jiffy KV
// store (Dataflow + Piccolo models combined, §6.5 of the paper).
//
//	go run ./examples/streaming
package main

import (
	"context"
	"fmt"
	"hash/fnv"
	"log"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"

	"jiffy"
	"jiffy/internal/core"
	"jiffy/internal/dataflow"
)

const (
	partitionTasks = 4
	countTasks     = 4
)

var sentences = []string{
	"stream processing keeps state between events",
	"events arrive as an unbounded stream",
	"the state lives in far memory not in the tasks",
	"tasks come and go but the stream flows on",
	"far memory decouples state from compute",
	"the stream never ends and neither does the state",
}

func main() {
	cluster, err := jiffy.StartCluster(jiffy.ClusterOptions{
		Servers:         2,
		BlocksPerServer: 64,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()
	c, err := cluster.Connect(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()

	// The running counts live in a Jiffy KV store owned by a separate
	// job, so they outlive the dataflow graph below.
	if err := c.RegisterJob(context.Background(), "counts"); err != nil {
		log.Fatal(err)
	}
	defer c.DeregisterJob(context.Background(), "counts")
	if _, _, err := c.CreatePrefix(context.Background(), "counts/table", nil, jiffy.DSKV, 1, 0); err != nil {
		log.Fatal(err)
	}
	countsRenewer := c.StartRenewer(jiffy.DefaultLeaseDuration/4, "counts")
	defer countsRenewer.Stop()

	var processed atomic.Int64

	// The graph: source → partition (replicated) → per-count-task
	// channels → count tasks writing to the KV table.
	vertices := []dataflow.Vertex{
		{
			Name:    "source",
			Outputs: []string{"sentences"},
			Fn: func(ctx context.Context, in []*dataflow.Reader, out []*dataflow.Writer) error {
				for round := 0; round < 20; round++ {
					for _, s := range sentences {
						if err := out[0].Write([]byte(s)); err != nil {
							return err
						}
					}
				}
				return nil
			},
		},
		{
			Name:     "partition",
			Inputs:   []string{"sentences"},
			Outputs:  channelNames(),
			Replicas: partitionTasks,
			Fn: func(ctx context.Context, in []*dataflow.Reader, out []*dataflow.Writer) error {
				for {
					item, ok, err := in[0].Read(ctx)
					if err != nil || !ok {
						return err
					}
					for _, w := range strings.Fields(string(item)) {
						if err := out[route(w)].Write([]byte(w)); err != nil {
							return err
						}
					}
				}
			},
		},
	}
	for i := 0; i < countTasks; i++ {
		i := i
		vertices = append(vertices, dataflow.Vertex{
			Name:   fmt.Sprintf("count-%d", i),
			Inputs: []string{fmt.Sprintf("words-%d", i)},
			Fn: func(ctx context.Context, in []*dataflow.Reader, out []*dataflow.Writer) error {
				kv, err := c.OpenKV(ctx, "counts/table")
				if err != nil {
					return err
				}
				local := map[string]int{}
				for {
					item, ok, err := in[0].Read(ctx)
					if err != nil || !ok {
						return err
					}
					w := string(item)
					local[w]++
					if err := kv.Put(ctx, w, []byte(strconv.Itoa(local[w]))); err != nil {
						return err
					}
					processed.Add(1)
				}
			},
		})
	}

	if err := dataflow.Run(context.Background(), c, dataflow.Graph{
		JobID:    "stream-wc",
		Vertices: vertices,
	}); err != nil {
		log.Fatal(err)
	}

	// Read the final counts back from far memory.
	kv, err := c.OpenKV(context.Background(), "counts/table")
	if err != nil {
		log.Fatal(err)
	}
	words := map[string]bool{}
	for _, s := range sentences {
		for _, w := range strings.Fields(s) {
			words[w] = true
		}
	}
	type wc struct {
		word  string
		count int
	}
	var result []wc
	for w := range words {
		if v, err := kv.Get(context.Background(), w); err == nil {
			n, _ := strconv.Atoi(string(v))
			result = append(result, wc{w, n})
		}
	}
	sort.Slice(result, func(i, j int) bool {
		if result[i].count != result[j].count {
			return result[i].count > result[j].count
		}
		return result[i].word < result[j].word
	})
	fmt.Printf("processed %d words through %d partition + %d count tasks\n",
		processed.Load(), partitionTasks, countTasks)
	fmt.Println("top streaming counts:")
	for i := 0; i < 8 && i < len(result); i++ {
		fmt.Printf("  %-10s %d\n", result[i].word, result[i].count)
	}
}

func channelNames() []string {
	names := make([]string, countTasks)
	for i := range names {
		names[i] = fmt.Sprintf("words-%d", i)
	}
	return names
}

func route(word string) int {
	h := fnv.New32a()
	h.Write([]byte(word))
	return int(h.Sum32()) % countTasks
}

var _ = core.OpEnqueue // notifications are used inside dataflow.Reader
