// Wordcount: the canonical MapReduce job running on Jiffy shuffle files
// (§5.1 of the paper). Map tasks split text and emit (word, 1) pairs
// into per-reducer shuffle files — concurrently, via atomic record
// appends — and reduce tasks group and count them.
//
//	go run ./examples/wordcount
package main

import (
	"context"
	"fmt"
	"log"
	"sort"
	"strconv"
	"strings"

	"jiffy"
	"jiffy/internal/mr"
)

// splits is the input corpus, one split per map task.
var splits = []string{
	`the best way to predict the future is to invent it`,
	`simplicity is prerequisite for reliability`,
	`the cheapest fastest and most reliable components are those that are not there`,
	`a distributed system is one in which the failure of a computer you did not
	 even know existed can render your own computer unusable`,
	`the network is reliable the network is secure the network is homogeneous`,
}

func main() {
	cluster, err := jiffy.StartCluster(jiffy.ClusterOptions{
		Servers:         2,
		BlocksPerServer: 64,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()
	c, err := cluster.Connect(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()

	res, err := mr.Run(context.Background(), c, mr.Config{
		JobID:    "wordcount",
		Inputs:   splits,
		Reducers: 4,
		Map: func(split string, emit func(k, v string)) error {
			for _, w := range strings.Fields(split) {
				emit(strings.ToLower(strings.Trim(w, ".,!?")), "1")
			}
			return nil
		},
		Reduce: func(key string, values []string) (string, error) {
			return strconv.Itoa(len(values)), nil
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	// Print the most frequent words.
	type wc struct {
		word  string
		count int
	}
	var counts []wc
	for w, n := range res.Output {
		c, _ := strconv.Atoi(n)
		counts = append(counts, wc{w, c})
	}
	sort.Slice(counts, func(i, j int) bool {
		if counts[i].count != counts[j].count {
			return counts[i].count > counts[j].count
		}
		return counts[i].word < counts[j].word
	})
	fmt.Printf("%d map tasks, %d reduce tasks, %d distinct words\n",
		res.MapTasks, res.ReduceTasks, len(counts))
	fmt.Println("top words:")
	for i := 0; i < 10 && i < len(counts); i++ {
		fmt.Printf("  %-12s %d\n", counts[i].word, counts[i].count)
	}
}
