// PageRank with the Piccolo model (§5.3 of the paper): kernel
// functions partition the graph's vertices, share rank state through a
// Jiffy KV table, and resolve concurrent rank contributions with a
// summing accumulator. The control loop runs barrier-separated
// iterations and checkpoints the table — exactly Piccolo's structure,
// with Jiffy as the shared state substrate.
//
//	go run ./examples/piccolo-pagerank
package main

import (
	"context"
	"fmt"
	"log"
	"sort"
	"strconv"

	"jiffy"
	"jiffy/internal/piccolo"
)

// graph is a small directed web graph: page → outlinks.
var graph = map[string][]string{
	"home":     {"docs", "blog", "about"},
	"docs":     {"home", "api"},
	"blog":     {"home", "docs"},
	"about":    {"home"},
	"api":      {"docs"},
	"download": {"home", "docs"},
}

const (
	iterations = 10
	damping    = 0.85
	kernels    = 3
)

func main() {
	cluster, err := jiffy.StartCluster(jiffy.ClusterOptions{
		Servers:         2,
		BlocksPerServer: 64,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()
	c, err := cluster.Connect(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()

	pages := make([]string, 0, len(graph))
	for p := range graph {
		pages = append(pages, p)
	}
	sort.Strings(pages)

	sumFloats := func(current, update []byte) []byte {
		cur := 0.0
		if current != nil {
			cur, _ = strconv.ParseFloat(string(current), 64)
		}
		u, _ := strconv.ParseFloat(string(update), 64)
		return []byte(strconv.FormatFloat(cur+u, 'g', 17, 64))
	}

	rt, err := piccolo.New(c, piccolo.Config{
		JobID: "pagerank",
		Tables: []piccolo.TableSpec{
			{Name: "ranks"},
			{Name: "next", Accumulator: sumFloats},
		},
		Instances:  kernels,
		Iterations: 1, // the control loop below drives iterations
		Kernel: func(ctx context.Context, k *piccolo.KernelCtx) error {
			ranks, _ := k.Table("ranks")
			next, _ := k.Table("next")
			// Each kernel owns a partition of the pages.
			for i := k.Instance; i < len(pages); i += k.Instances {
				page := pages[i]
				rv, err := ranks.Get(page)
				if err != nil {
					return err
				}
				rank, _ := strconv.ParseFloat(string(rv), 64)
				links := graph[page]
				if len(links) == 0 {
					continue
				}
				share := rank / float64(len(links))
				for _, dst := range links {
					if err := next.Accumulate(dst,
						[]byte(strconv.FormatFloat(share, 'g', 17, 64))); err != nil {
						return err
					}
				}
			}
			return nil
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer rt.Close()

	// Initialize ranks uniformly.
	ranks, _ := rt.Table("ranks")
	for _, p := range pages {
		if err := ranks.Put(p, []byte(strconv.FormatFloat(1.0/float64(len(pages)), 'g', 17, 64))); err != nil {
			log.Fatal(err)
		}
	}

	// Control loop: run kernels, fold "next" into "ranks", repeat.
	next, _ := rt.Table("next")
	for iter := 0; iter < iterations; iter++ {
		if err := rt.Run(context.Background()); err != nil {
			log.Fatal(err)
		}
		base := (1 - damping) / float64(len(pages))
		for _, p := range pages {
			contrib := 0.0
			if v, err := next.Get(p); err == nil {
				contrib, _ = strconv.ParseFloat(string(v), 64)
			}
			rank := base + damping*contrib
			if err := ranks.Put(p, []byte(strconv.FormatFloat(rank, 'g', 17, 64))); err != nil {
				log.Fatal(err)
			}
			next.Put(p, []byte("0")) // reset the accumulator table
		}
		// Checkpoint every few iterations, like Piccolo.
		if iter%4 == 3 {
			if err := rt.Checkpoint("ranks", fmt.Sprintf("ckpt/pagerank-%d", iter)); err != nil {
				log.Fatal(err)
			}
		}
	}

	type pr struct {
		page string
		rank float64
	}
	var result []pr
	total := 0.0
	for _, p := range pages {
		v, err := ranks.Get(p)
		if err != nil {
			log.Fatal(err)
		}
		r, _ := strconv.ParseFloat(string(v), 64)
		result = append(result, pr{p, r})
		total += r
	}
	sort.Slice(result, func(i, j int) bool { return result[i].rank > result[j].rank })
	fmt.Printf("pagerank after %d iterations (%d kernels, mass %.3f):\n",
		iterations, kernels, total)
	for _, r := range result {
		fmt.Printf("  %-10s %.4f\n", r.page, r.rank)
	}
}
