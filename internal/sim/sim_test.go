package sim

import (
	"testing"
	"time"

	"jiffy/internal/baseline"
	"jiffy/internal/trace"
)

// benchTrace builds a scaled-down Fig. 9 workload: many tenants with
// bursty, IO-dominated multi-stage jobs (see Fig9TraceConfig).
func benchTrace() *trace.Trace {
	cfg := Fig9TraceConfig()
	cfg.Tenants = 20
	cfg.JobsPerTenant = 10
	return trace.Generate(cfg, 42)
}

func TestIdealJobTime(t *testing.T) {
	j := &trace.Job{Stages: []trace.Stage{
		{Duration: time.Second, Bytes: 1 << 30}, // 1GB at 8GB/s = 125ms
		{Duration: time.Second, Bytes: 1 << 30},
	}}
	ideal := IdealJobTime(j)
	// 2s compute + write(1GB)+write(1GB)+read(1GB) at DRAM speed.
	if ideal <= 2*time.Second || ideal > 3*time.Second {
		t.Errorf("ideal = %v", ideal)
	}
}

func TestPeakDemand(t *testing.T) {
	j := &trace.Job{Stages: []trace.Stage{
		{Bytes: 100}, {Bytes: 500}, {Bytes: 50},
	}}
	// Alive peak: stage1 output (500) + stage0 input (100) = 600.
	if got := PeakDemand(j); got != 600 {
		t.Errorf("peak = %d, want 600", got)
	}
}

func TestRunCompletesAllJobs(t *testing.T) {
	tr := benchTrace()
	peak := PeakCapacity(tr, 5*time.Second)
	p := baseline.NewJiffyPolicy(peak, 128<<20, 0.95, time.Second)
	st := Run(tr, p, peak, time.Second)
	if st.Jobs != len(tr.Jobs) {
		t.Errorf("completed %d of %d jobs", st.Jobs, len(tr.Jobs))
	}
	if st.AvgSlowdown < 0.99 {
		t.Errorf("slowdown below 1: %v", st.AvgSlowdown)
	}
}

func TestFullCapacityNoSlowdown(t *testing.T) {
	tr := benchTrace()
	peak := PeakCapacity(tr, 5*time.Second)
	// At 2x aggregate peak Jiffy barely slows down; Pocket can still
	// slow down a little (concurrent per-job peak reservations can
	// exceed the aggregate-alive peak), matching the paper's
	// observation that Pocket trails Jiffy even at 100% capacity.
	jf := Run(tr, baseline.NewJiffyPolicy(4*peak, 128<<20, 0.95, time.Second), 4*peak, time.Second)
	if jf.AvgSlowdown > 1.2 {
		t.Errorf("Jiffy slowdown at 4x peak = %v", jf.AvgSlowdown)
	}
	if jf.SpillFracS3 > 0 {
		t.Errorf("Jiffy spilled to S3 at 4x peak")
	}
	pk := Run(tr, baseline.NewPocketPolicy(4*peak), 4*peak, time.Second)
	if pk.AvgSlowdown < jf.AvgSlowdown-0.05 {
		t.Errorf("Pocket (%v) should not beat Jiffy (%v)", pk.AvgSlowdown, jf.AvgSlowdown)
	}
}

// TestFig9Shape is the qualitative reproduction check for Fig. 9: at
// constrained capacity, ElastiCache degrades most (S3 spill), Pocket
// is intermediate (SSD spill), Jiffy least; and Jiffy's utilization
// exceeds the others'.
func TestFig9Shape(t *testing.T) {
	tr := benchTrace()
	peak := PeakCapacity(tr, 5*time.Second)
	capacity := peak / 5 // 20% of peak
	blockSize := int64(128 << 20)

	ec := Run(tr, baseline.NewElastiCachePolicy(capacity, tr.Tenants), capacity, time.Second)
	pk := Run(tr, baseline.NewPocketPolicy(capacity), capacity, time.Second)
	jf := Run(tr, baseline.NewJiffyPolicy(capacity, blockSize, 0.95, time.Second), capacity, time.Second)

	t.Logf("slowdown: EC=%.2f Pocket=%.2f Jiffy=%.2f", ec.AvgSlowdown, pk.AvgSlowdown, jf.AvgSlowdown)
	t.Logf("util:     EC=%.1f%% Pocket=%.1f%% Jiffy=%.1f%%",
		ec.AvgUtilization, pk.AvgUtilization, jf.AvgUtilization)

	if !(jf.AvgSlowdown < pk.AvgSlowdown && pk.AvgSlowdown < ec.AvgSlowdown) {
		t.Errorf("slowdown ordering violated: jiffy=%.2f pocket=%.2f ec=%.2f",
			jf.AvgSlowdown, pk.AvgSlowdown, ec.AvgSlowdown)
	}
	// The paper's "3x better resource utilization" claim: Jiffy's DRAM
	// holds several times more useful data than Pocket's.
	if jf.AvgUtilization < 2*pk.AvgUtilization {
		t.Errorf("Jiffy utilization should dominate Pocket's: jiffy=%.1f pocket=%.1f",
			jf.AvgUtilization, pk.AvgUtilization)
	}
}

// TestLeaseDurationSensitivity reproduces the Fig. 14(b) trend: longer
// leases hold blocks longer, raising occupancy for the same usage.
func TestLeaseDurationSensitivity(t *testing.T) {
	tr := benchTrace()
	peak := PeakCapacity(tr, 5*time.Second)
	blockSize := int64(128 << 20)
	prev := -1.0
	for _, lease := range []time.Duration{time.Second, 16 * time.Second, 64 * time.Second} {
		st := Run(tr, baseline.NewJiffyPolicy(4*peak, blockSize, 0.95, lease), 4*peak, time.Second)
		t.Logf("lease=%v occupancy=%.2f%%", lease, st.AvgOccupancy)
		if st.AvgOccupancy < prev {
			t.Errorf("occupancy decreased with longer lease: %v → %.2f < %.2f",
				lease, st.AvgOccupancy, prev)
		}
		prev = st.AvgOccupancy
	}
}

// TestBlockSizeSensitivity reproduces the Fig. 14(a) trend: larger
// blocks waste more via rounding.
func TestBlockSizeSensitivity(t *testing.T) {
	tr := benchTrace()
	peak := PeakCapacity(tr, 5*time.Second)
	prev := -1.0
	for _, bs := range []int64{8 << 20, 64 << 20, 512 << 20} {
		st := Run(tr, baseline.NewJiffyPolicy(8*peak, bs, 0.95, time.Second), 8*peak, time.Second)
		t.Logf("block=%dMB occupancy=%.2f%%", bs>>20, st.AvgOccupancy)
		if st.AvgOccupancy < prev {
			t.Errorf("occupancy decreased with bigger blocks: %d → %.2f < %.2f",
				bs, st.AvgOccupancy, prev)
		}
		prev = st.AvgOccupancy
	}
}

func TestSeriesRecorded(t *testing.T) {
	tr := benchTrace()
	peak := PeakCapacity(tr, 5*time.Second)
	st := Run(tr, baseline.NewJiffyPolicy(peak, 8<<20, 0.95, time.Second), peak, time.Second)
	if len(st.UsedSeries.Points) == 0 || len(st.OccupiedSeries.Points) == 0 {
		t.Fatal("series not recorded")
	}
	// Occupied >= used at every sample (block rounding).
	for i := range st.UsedSeries.Points {
		if st.OccupiedSeries.Points[i].V < st.UsedSeries.Points[i].V {
			t.Fatalf("occupied < used at sample %d", i)
		}
	}
}
