// Package sim replays synthetic Snowflake-like traces (internal/trace)
// against capacity-allocation policies (internal/baseline) in virtual
// time, producing the paper's constrained-capacity results:
//
//   - Fig. 9(a): average job slowdown vs. memory capacity (% of peak)
//   - Fig. 9(b): average resource utilization vs. capacity
//   - Fig. 14:   sensitivity of allocated-vs-used storage to block
//     size, lease duration and repartition threshold (via
//     baseline.JiffyPolicy parameters)
//
// The simulator advances jobs stage by stage. When a stage starts, the
// policy places its output data on a medium (DRAM / SSD / S3); the
// stage's duration is its compute time plus the IO time of writing its
// output and reading its input at the media's modeled bandwidths. A
// policy that spills more data to slow media therefore stretches jobs —
// exactly the §6.1 mechanism ("reads and writes executed on slower
// storage").
package sim

import (
	"sort"
	"time"

	"jiffy/internal/baseline"
	"jiffy/internal/metrics"
	"jiffy/internal/trace"
)

// Stats summarizes one replay.
type Stats struct {
	Policy string
	// Capacity is the DRAM pool size in bytes.
	Capacity int64
	// AvgSlowdown is mean(jobTime / idealJobTime) across completed
	// jobs.
	AvgSlowdown float64
	// P95Slowdown is the 95th-percentile job slowdown.
	P95Slowdown float64
	// AvgUtilization is mean over time of UsedBytes/Capacity (in %).
	AvgUtilization float64
	// AvgOccupancy is mean over time of OccupiedBytes/Capacity (in %).
	AvgOccupancy float64
	// SpillFracSSD / SpillFracS3 are the byte fractions placed on
	// slower media.
	SpillFracSSD, SpillFracS3 float64
	// Jobs is the number of completed jobs.
	Jobs int
	// UsedSeries / OccupiedSeries sample DRAM usage over virtual time
	// (for the Fig. 11(a)/14 storage plots).
	UsedSeries, OccupiedSeries *metrics.Series

	spillTotal, spillSSD, spillS3 int64
}

// jobState tracks one in-flight job.
type jobState struct {
	job        *trace.Job
	stage      int           // current stage index
	remaining  time.Duration // time left in the current stage
	started    time.Duration // virtual start
	stageSplit []baseline.Split
	// readLeft is the time until the current stage finishes reading
	// its input, after which the input data is released — consumers
	// free intermediate data as soon as they have read it, not when
	// they finish computing.
	readLeft time.Duration
	// inputReleased marks whether the current stage's input was freed.
	inputReleased bool
}

// idealStageTime is the stage duration with all data in DRAM.
func idealStageTime(j *trace.Job, s int) time.Duration {
	d := j.Stages[s].Duration
	d += splitIOTime(baseline.Split{DRAM: j.Stages[s].Bytes})
	if s > 0 {
		d += splitIOTime(baseline.Split{DRAM: j.Stages[s-1].Bytes})
	}
	return d
}

// IdealJobTime is the job's duration with unlimited DRAM — the
// denominator of slowdown.
func IdealJobTime(j *trace.Job) time.Duration {
	var d time.Duration
	for s := range j.Stages {
		d += idealStageTime(j, s)
	}
	return d
}

// splitIOTime models reading or writing a stage's data given its
// placement across media.
func splitIOTime(s baseline.Split) time.Duration {
	t := float64(s.DRAM)/baseline.MediumDRAM.Bandwidth() +
		float64(s.SSD)/baseline.MediumSSD.Bandwidth() +
		float64(s.S3)/baseline.MediumS3.Bandwidth()
	return time.Duration(t * float64(time.Second))
}

// PeakDemand is what a job would declare to a reservation-based system:
// its maximum concurrently alive intermediate data (a stage's output
// plus its still-alive input).
func PeakDemand(j *trace.Job) int64 {
	var peak int64
	for s := range j.Stages {
		cur := j.Stages[s].Bytes
		if s > 0 {
			cur += j.Stages[s-1].Bytes
		}
		if cur > peak {
			peak = cur
		}
	}
	return peak
}

// PeakCapacity computes the workload's peak aggregate alive bytes —
// the 100% reference point for the Fig. 9 capacity sweep.
func PeakCapacity(tr *trace.Trace, step time.Duration) int64 {
	return int64(tr.TotalSeries(step).Max())
}

// Run replays the trace against a policy.
func Run(tr *trace.Trace, policy baseline.Policy, capacity int64, step time.Duration) Stats {
	if step <= 0 {
		step = time.Second
	}
	st := Stats{
		Policy:         policy.Name(),
		Capacity:       capacity,
		UsedSeries:     &metrics.Series{Name: policy.Name() + "/used"},
		OccupiedSeries: &metrics.Series{Name: policy.Name() + "/occupied"},
	}
	// Jobs sorted by arrival (trace generation emits per-tenant order;
	// merge-sort by arrival).
	pending := make([]*trace.Job, 0, len(tr.Jobs))
	for i := range tr.Jobs {
		pending = append(pending, &tr.Jobs[i])
	}
	sortJobs(pending)

	var active []*jobState
	slowdowns := metrics.NewHistogram()
	var utilSum, occSum float64
	var samples int
	epoch := time.Unix(0, 0)

	now := time.Duration(0)
	nextJob := 0
	// Run until every job has completed (the window bounds arrivals,
	// not completions).
	for nextJob < len(pending) || len(active) > 0 {
		// Admit arrivals.
		for nextJob < len(pending) && pending[nextJob].Arrival <= now {
			j := pending[nextJob]
			nextJob++
			policy.JobArrive(j.ID, j.Tenant, PeakDemand(j))
			js := &jobState{job: j, started: now, stageSplit: make([]baseline.Split, len(j.Stages))}
			js.beginStage(policy, &st)
			active = append(active, js)
		}
		// Advance active jobs by one step.
		kept := active[:0]
		for _, js := range active {
			if js.advance(policy, step, &st) {
				// Job finished: release its final stage and its
				// reservation.
				policy.Release(js.job.ID, len(js.job.Stages)-1)
				policy.JobDone(js.job.ID)
				ideal := IdealJobTime(js.job)
				actual := now + step - js.started
				if ideal > 0 {
					slowdowns.Record(time.Duration(float64(actual) / float64(ideal) * float64(time.Second)))
				}
				st.Jobs++
			} else {
				kept = append(kept, js)
			}
		}
		active = kept

		now += step
		policy.Tick(now)

		// Sample utilization.
		if capacity > 0 {
			used := float64(policy.UsedBytes()) / float64(capacity) * 100
			occ := float64(policy.OccupiedBytes()) / float64(capacity) * 100
			utilSum += used
			occSum += occ
			samples++
			st.UsedSeries.Add(epoch.Add(now), float64(policy.UsedBytes()))
			st.OccupiedSeries.Add(epoch.Add(now), float64(policy.OccupiedBytes()))
		}
	}

	if samples > 0 {
		st.AvgUtilization = utilSum / float64(samples)
		st.AvgOccupancy = occSum / float64(samples)
	}
	// Histogram stores slowdown×1s as a duration.
	st.AvgSlowdown = float64(slowdowns.Mean()) / float64(time.Second)
	st.P95Slowdown = float64(slowdowns.Percentile(95)) / float64(time.Second)
	finalizeSpill(&st)
	return st
}

// beginStage places the new stage's output and computes its duration.
func (js *jobState) beginStage(policy baseline.Policy, st *Stats) {
	s := js.stage
	j := js.job
	split := policy.Place(j.ID, j.Tenant, s, j.Stages[s].Bytes)
	js.stageSplit[s] = split
	recordSpill(st, split)

	d := j.Stages[s].Duration
	d += splitIOTime(split)
	js.inputReleased = s == 0
	js.readLeft = 0
	if s > 0 {
		readTime := splitIOTime(js.stageSplit[s-1])
		d += readTime
		js.readLeft = readTime
	}
	js.remaining = d
}

// advance progresses the job by dt; returns true when the job
// completed.
func (js *jobState) advance(policy baseline.Policy, dt time.Duration, st *Stats) bool {
	for dt > 0 {
		// Release the input as soon as the read phase completes.
		if !js.inputReleased {
			if js.readLeft > dt {
				js.readLeft -= dt
			} else {
				js.readLeft = 0
				js.inputReleased = true
				policy.Release(js.job.ID, js.stage-1)
			}
		}
		if js.remaining > dt {
			js.remaining -= dt
			return false
		}
		dt -= js.remaining
		js.remaining = 0
		// Stage finished; a not-yet-released input goes now.
		if !js.inputReleased && js.stage > 0 {
			policy.Release(js.job.ID, js.stage-1)
			js.inputReleased = true
		}
		js.stage++
		if js.stage >= len(js.job.Stages) {
			return true
		}
		js.beginStage(policy, st)
	}
	return false
}

func recordSpill(st *Stats, s baseline.Split) {
	st.spillTotal += s.Total()
	st.spillSSD += s.SSD
	st.spillS3 += s.S3
}

func finalizeSpill(st *Stats) {
	if st.spillTotal == 0 {
		return
	}
	st.SpillFracSSD = float64(st.spillSSD) / float64(st.spillTotal)
	st.SpillFracS3 = float64(st.spillS3) / float64(st.spillTotal)
}

// sortJobs orders jobs by arrival time.
func sortJobs(jobs []*trace.Job) {
	sort.Slice(jobs, func(i, j int) bool { return jobs[i].Arrival < jobs[j].Arrival })
}

// Fig9TraceConfig is the scaled-down Snowflake-like workload used to
// regenerate Fig. 9: many tenants submitting bursty, IO-dominated,
// multi-stage jobs. The paper replays ~50,000 jobs from 100 tenants
// over 5 hours; this configuration preserves the load shape (heavy
// tails, deep DAGs, intermediate data ≫ compute) at laptop scale.
func Fig9TraceConfig() trace.Config {
	cfg := trace.DefaultConfig()
	cfg.Tenants = 100
	cfg.Window = 10 * time.Minute
	cfg.JobsPerTenant = 20
	cfg.MeanStageBytes = 2 * 1024 * 1024 * 1024
	cfg.MeanStageDuration = 10 * time.Second
	cfg.MinStages = 4
	cfg.MaxStages = 12
	return cfg
}
