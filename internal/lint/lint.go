// Package lint holds small source-analysis checks enforced in CI.
//
// The context-first check guards the client API redesign: every
// exported method on an exported receiver type in the scanned packages
// must take a context.Context as its first parameter, unless it is a
// known local/lifecycle method (allowlisted), a deprecated
// compatibility shim, or a *NoCtx view type. New public surface that
// forgets the context fails CI rather than review.
package lint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// DefaultAllow lists the existing context-free public surface, keyed
// "Type.Method" (or a bare function name). These are local or
// lifecycle operations that perform no RPC — everything else must be
// context-first.
func DefaultAllow() map[string]bool {
	return map[string]bool{
		// Lifecycle and purely local accessors.
		"Client.Close":        true,
		"Client.NoCtx":        true,
		"Client.Obs":          true,
		"Client.StartRenewer": true,
		// Purely local read of the in-memory health tracker.
		"Client.ServerHealth": true,
		"KV.Path":             true,
		"KV.NoCtx":            true,
		"File.Path":           true,
		"File.Seek":           true,
		"File.NoCtx":          true,
		"Queue.Path":          true,
		"Queue.NoCtx":         true,
		"Custom.Path":         true,
		"Custom.NoCtx":        true,
		// The listener's public contract is timeout-based (Table 1
		// listener.get(timeout)); contexts are threaded internally.
		"Listener.Get":      true,
		"Listener.TryGet":   true,
		"Listener.Resync":   true,
		"Listener.Close":    true,
		"Renewer.Add":       true,
		"Renewer.Remove":    true,
		"Renewer.Stop":      true,
		"MultiError.Error":  true,
		"MultiError.Unwrap": true,
		"Cluster.Close":     true,
	}
}

// Violation is one flagged declaration or call site.
type Violation struct {
	Pos  token.Position
	Name string // "Type.Method" or function name
	Msg  string // violation text; empty means the context-first message
}

func (v Violation) String() string {
	if v.Msg != "" {
		return fmt.Sprintf("%s: %s %s", v.Pos, v.Name, v.Msg)
	}
	return fmt.Sprintf("%s: %s must take context.Context as its first parameter", v.Pos, v.Name)
}

// CtxFirst scans the non-test Go files of one directory and reports
// exported methods on exported receiver types — plus package-level
// Connect* functions — whose first parameter is not a context.Context.
func CtxFirst(dir string, allow map[string]bool) ([]Violation, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	var violations []Violation
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || !fn.Name.IsExported() || deprecated(fn) {
				continue
			}
			label, check := subject(fn)
			if !check || allow[label] {
				continue
			}
			if !firstParamIsCtx(fn.Type) {
				violations = append(violations, Violation{
					Pos:  fset.Position(fn.Pos()),
					Name: label,
				})
			}
		}
	}
	sort.Slice(violations, func(i, j int) bool {
		a, b := violations[i].Pos, violations[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		return a.Line < b.Line
	})
	return violations, nil
}

// subject names the declaration and decides whether the check applies:
// exported methods on exported receivers (excluding *NoCtx views), and
// package-level Connect* constructors.
func subject(fn *ast.FuncDecl) (label string, check bool) {
	if fn.Recv == nil || len(fn.Recv.List) == 0 {
		if strings.HasPrefix(fn.Name.Name, "Connect") || fn.Name.Name == "Dial" {
			return fn.Name.Name, true
		}
		return fn.Name.Name, false
	}
	recv := receiverType(fn.Recv.List[0].Type)
	if recv == "" || !ast.IsExported(recv) || strings.HasSuffix(recv, "NoCtx") {
		return "", false
	}
	return recv + "." + fn.Name.Name, true
}

func receiverType(expr ast.Expr) string {
	switch t := expr.(type) {
	case *ast.StarExpr:
		return receiverType(t.X)
	case *ast.Ident:
		return t.Name
	case *ast.IndexExpr: // generic receiver
		return receiverType(t.X)
	}
	return ""
}

func firstParamIsCtx(ft *ast.FuncType) bool {
	if ft.Params == nil || len(ft.Params.List) == 0 {
		return false
	}
	sel, ok := ft.Params.List[0].Type.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	pkg, ok := sel.X.(*ast.Ident)
	return ok && pkg.Name == "context" && sel.Sel.Name == "Context"
}

func deprecated(fn *ast.FuncDecl) bool {
	return fn.Doc != nil && strings.Contains(fn.Doc.Text(), "Deprecated:")
}

// deprecatedConnectors names the single-address client constructors
// kept only as compatibility shims; new code dials the controller
// group with Dial + WithControllers.
var deprecatedConnectors = map[string]bool{
	"Connect":           true,
	"ConnectMulti":      true,
	"ConnectNoCtx":      true,
	"ConnectMultiNoCtx": true,
}

// DeprecatedConnectCalls scans the non-test Go files of one directory
// for call sites of the deprecated client constructors
// (client.Connect, jiffy.ConnectMulti, ...). Calls inside functions
// that are themselves marked Deprecated are exempt — the shims forward
// to each other; everything else must migrate to Dial.
func DeprecatedConnectCalls(dir string) ([]Violation, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	var violations []Violation
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || deprecated(fn) {
				continue
			}
			ast.Inspect(fn, func(node ast.Node) bool {
				call, ok := node.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok || !deprecatedConnectors[sel.Sel.Name] {
					return true
				}
				pkg, ok := sel.X.(*ast.Ident)
				// Only package-qualified calls: x.Connect on a receiver
				// variable (e.g. cluster.Connect) is a different method.
				if !ok || (pkg.Name != "client" && pkg.Name != "jiffy") {
					return true
				}
				violations = append(violations, Violation{
					Pos:  fset.Position(call.Pos()),
					Name: pkg.Name + "." + sel.Sel.Name,
					Msg:  "is deprecated; dial the controller group with Dial + WithControllers",
				})
				return true
			})
		}
	}
	sort.Slice(violations, func(i, j int) bool {
		a, b := violations[i].Pos, violations[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		return a.Line < b.Line
	})
	return violations, nil
}
