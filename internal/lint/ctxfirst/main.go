// Command ctxfirst enforces the context-first public API rule over the
// given source directories (see internal/lint). CI runs it against the
// client package and the repo root; a non-empty report fails the build.
//
//	go run ./internal/lint/ctxfirst internal/client .
package main

import (
	"fmt"
	"os"

	"jiffy/internal/lint"
)

func main() {
	dirs := os.Args[1:]
	if len(dirs) == 0 {
		dirs = []string{"."}
	}
	allow := lint.DefaultAllow()
	failed := false
	for _, dir := range dirs {
		violations, err := lint.CtxFirst(dir, allow)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ctxfirst: %s: %v\n", dir, err)
			os.Exit(2)
		}
		for _, v := range violations {
			failed = true
			fmt.Fprintln(os.Stderr, v)
		}
	}
	if failed {
		os.Exit(1)
	}
}
