// Command ctxfirst enforces the client API rules over the given source
// directories (see internal/lint): every public method takes a leading
// context.Context, and nothing outside the compatibility shims calls
// the deprecated single-address constructors (Connect, ConnectMulti) —
// new code dials the controller group with Dial + WithControllers. CI
// runs it against the client package, the repo root, the commands and
// the examples; a non-empty report fails the build.
//
//	go run ./internal/lint/ctxfirst internal/client . cmd/jiffy-cli
package main

import (
	"fmt"
	"os"

	"jiffy/internal/lint"
)

func main() {
	dirs := os.Args[1:]
	if len(dirs) == 0 {
		dirs = []string{"."}
	}
	allow := lint.DefaultAllow()
	failed := false
	for _, dir := range dirs {
		violations, err := lint.CtxFirst(dir, allow)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ctxfirst: %s: %v\n", dir, err)
			os.Exit(2)
		}
		deprecatedCalls, err := lint.DeprecatedConnectCalls(dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ctxfirst: %s: %v\n", dir, err)
			os.Exit(2)
		}
		for _, v := range append(violations, deprecatedCalls...) {
			failed = true
			fmt.Fprintln(os.Stderr, v)
		}
	}
	if failed {
		os.Exit(1)
	}
}
