package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRepoIsCtxFirst runs the checker against the real client package
// and the repo root: the public surface must stay context-first.
func TestRepoIsCtxFirst(t *testing.T) {
	for _, dir := range []string{"../client", "../.."} {
		violations, err := CtxFirst(dir, DefaultAllow())
		if err != nil {
			t.Fatalf("%s: %v", dir, err)
		}
		for _, v := range violations {
			t.Errorf("%s", v)
		}
	}
}

// TestRepoAvoidsDeprecatedConnect runs the deprecated-constructor
// check against every package that dials clients: new code must use
// Dial + WithControllers, not the single-address shims.
func TestRepoAvoidsDeprecatedConnect(t *testing.T) {
	dirs := []string{"../client", "../..", "../soak", "../bench"}
	for _, pat := range []string{"../../cmd/*", "../../examples/*"} {
		matches, err := filepath.Glob(pat)
		if err != nil {
			t.Fatal(err)
		}
		dirs = append(dirs, matches...)
	}
	for _, dir := range dirs {
		if fi, err := os.Stat(dir); err != nil || !fi.IsDir() {
			continue
		}
		violations, err := DeprecatedConnectCalls(dir)
		if err != nil {
			t.Fatalf("%s: %v", dir, err)
		}
		for _, v := range violations {
			t.Errorf("%s", v)
		}
	}
}

// TestDeprecatedConnectCallsCatches feeds the checker synthetic
// source: package-qualified calls to the shims are flagged, calls
// inside Deprecated functions and method calls on variables are not.
func TestDeprecatedConnectCallsCatches(t *testing.T) {
	dir := t.TempDir()
	src := `package fake

import (
	"context"

	"jiffy/internal/client"
)

func bad(ctx context.Context) {
	client.Connect(ctx, "addr")                     // violation
	client.ConnectMulti(ctx, []string{"a"})        // violation
	c, _ := client.Dial(ctx)                       // fine
	_ = c
}

// Deprecated: shim.
func shim(ctx context.Context) {
	client.Connect(ctx, "addr") // exempt: inside a deprecated shim
}

type clusterT struct{}

func (clusterT) Connect(ctx context.Context) error { return nil }

func alsoFine(ctx context.Context, cluster clusterT) {
	cluster.Connect(ctx) // method on a variable, not the package shim
}
`
	if err := os.WriteFile(filepath.Join(dir, "fake.go"), []byte(src), 0644); err != nil {
		t.Fatal(err)
	}
	violations, err := DeprecatedConnectCalls(dir)
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, v := range violations {
		got = append(got, v.Name)
	}
	want := []string{"client.Connect", "client.ConnectMulti"}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Errorf("violations = %v, want %v", got, want)
	}
}

// TestCtxFirstCatchesViolations feeds the checker synthetic source
// covering each rule: missing ctx flagged; allowlisted, deprecated,
// NoCtx-view, and unexported declarations skipped; Connect* functions
// checked even without a receiver.
func TestCtxFirstCatchesViolations(t *testing.T) {
	dir := t.TempDir()
	src := `package fake

import "context"

type Client struct{}

func (c *Client) Fetch(key string) error { return nil } // violation
func (c *Client) Store(ctx context.Context, key string) error { return nil }
func (c *Client) Close() error { return nil } // allowlisted below
func (c *Client) helper(key string) error { return nil }

// Deprecated: use Fetch with a context.
func (c *Client) FetchOld(key string) error { return nil }

type ClientNoCtx struct{}

func (v ClientNoCtx) Fetch(key string) error { return nil }

type internalThing struct{}

func (i internalThing) Do(key string) error { return nil }

func Connect(addr string) (*Client, error) { return nil, nil } // violation
func ConnectMulti(ctx context.Context, addrs []string) (*Client, error) { return nil, nil }
func Helper(x int) int { return x }
`
	if err := os.WriteFile(filepath.Join(dir, "fake.go"), []byte(src), 0644); err != nil {
		t.Fatal(err)
	}
	violations, err := CtxFirst(dir, map[string]bool{"Client.Close": true})
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, v := range violations {
		got = append(got, v.Name)
	}
	want := []string{"Client.Fetch", "Connect"}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Errorf("violations = %v, want %v", got, want)
	}
}
