package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRepoIsCtxFirst runs the checker against the real client package
// and the repo root: the public surface must stay context-first.
func TestRepoIsCtxFirst(t *testing.T) {
	for _, dir := range []string{"../client", "../.."} {
		violations, err := CtxFirst(dir, DefaultAllow())
		if err != nil {
			t.Fatalf("%s: %v", dir, err)
		}
		for _, v := range violations {
			t.Errorf("%s", v)
		}
	}
}

// TestCtxFirstCatchesViolations feeds the checker synthetic source
// covering each rule: missing ctx flagged; allowlisted, deprecated,
// NoCtx-view, and unexported declarations skipped; Connect* functions
// checked even without a receiver.
func TestCtxFirstCatchesViolations(t *testing.T) {
	dir := t.TempDir()
	src := `package fake

import "context"

type Client struct{}

func (c *Client) Fetch(key string) error { return nil } // violation
func (c *Client) Store(ctx context.Context, key string) error { return nil }
func (c *Client) Close() error { return nil } // allowlisted below
func (c *Client) helper(key string) error { return nil }

// Deprecated: use Fetch with a context.
func (c *Client) FetchOld(key string) error { return nil }

type ClientNoCtx struct{}

func (v ClientNoCtx) Fetch(key string) error { return nil }

type internalThing struct{}

func (i internalThing) Do(key string) error { return nil }

func Connect(addr string) (*Client, error) { return nil, nil } // violation
func ConnectMulti(ctx context.Context, addrs []string) (*Client, error) { return nil, nil }
func Helper(x int) int { return x }
`
	if err := os.WriteFile(filepath.Join(dir, "fake.go"), []byte(src), 0644); err != nil {
		t.Fatal(err)
	}
	violations, err := CtxFirst(dir, map[string]bool{"Client.Close": true})
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, v := range violations {
		got = append(got, v.Name)
	}
	want := []string{"Client.Fetch", "Connect"}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Errorf("violations = %v, want %v", got, want)
	}
}
