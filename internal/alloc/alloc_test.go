package alloc

import (
	"errors"
	"testing"
	"testing/quick"

	"jiffy/internal/core"
)

func TestRegisterAndAllocate(t *testing.T) {
	a := New()
	first, err := a.RegisterServer("s1", 10)
	if err != nil {
		t.Fatal(err)
	}
	if first != 1 {
		t.Errorf("first ID = %v", first)
	}
	blocks, err := a.Allocate(3)
	if err != nil || len(blocks) != 3 {
		t.Fatalf("Allocate = %v, %v", blocks, err)
	}
	for _, b := range blocks {
		if b.Server != "s1" {
			t.Errorf("block on %q", b.Server)
		}
	}
	total, free, servers := a.Stats()
	if total != 10 || free != 7 || servers != 1 {
		t.Errorf("stats = %d/%d/%d", total, free, servers)
	}
}

func TestAllocateInsufficient(t *testing.T) {
	a := New()
	a.RegisterServer("s1", 2)
	if _, err := a.Allocate(3); !errors.Is(err, core.ErrNoCapacity) {
		t.Errorf("err = %v, want ErrNoCapacity", err)
	}
	// Failed allocation must not consume blocks.
	_, free, _ := a.Stats()
	if free != 2 {
		t.Errorf("free after failed alloc = %d", free)
	}
}

func TestAllocateZero(t *testing.T) {
	a := New()
	blocks, err := a.Allocate(0)
	if err != nil || blocks != nil {
		t.Errorf("Allocate(0) = %v, %v", blocks, err)
	}
}

func TestLoadBalancing(t *testing.T) {
	a := New()
	a.RegisterServer("s1", 10)
	a.RegisterServer("s2", 10)
	counts := map[string]int{}
	for i := 0; i < 10; i++ {
		blocks, err := a.Allocate(1)
		if err != nil {
			t.Fatal(err)
		}
		counts[blocks[0].Server]++
	}
	if counts["s1"] != 5 || counts["s2"] != 5 {
		t.Errorf("allocation imbalance: %v", counts)
	}
}

func TestFreeReturnsBlocks(t *testing.T) {
	a := New()
	a.RegisterServer("s1", 5)
	blocks, _ := a.Allocate(5)
	if _, err := a.Allocate(1); err == nil {
		t.Fatal("pool should be empty")
	}
	a.Free(blocks[:2])
	got, err := a.Allocate(2)
	if err != nil || len(got) != 2 {
		t.Fatalf("Allocate after free = %v, %v", got, err)
	}
}

func TestFreeToRemovedServerDropped(t *testing.T) {
	a := New()
	a.RegisterServer("s1", 5)
	blocks, _ := a.Allocate(2)
	a.RemoveServer("s1")
	a.Free(blocks)
	total, free, servers := a.Stats()
	if total != 0 || free != 0 || servers != 0 {
		t.Errorf("stats after remove = %d/%d/%d", total, free, servers)
	}
}

func TestReRegisterReplaces(t *testing.T) {
	a := New()
	a.RegisterServer("s1", 5)
	a.Allocate(2)
	first, err := a.RegisterServer("s1", 8)
	if err != nil {
		t.Fatal(err)
	}
	if first != 6 { // IDs 1-5 used by first registration
		t.Errorf("first = %v", first)
	}
	total, free, _ := a.Stats()
	if total != 8 || free != 8 {
		t.Errorf("stats after re-register = %d/%d", total, free)
	}
}

func TestRegisterInvalid(t *testing.T) {
	a := New()
	if _, err := a.RegisterServer("s1", 0); err == nil {
		t.Error("zero-block registration accepted")
	}
}

func TestServers(t *testing.T) {
	a := New()
	a.RegisterServer("s2", 1)
	a.RegisterServer("s1", 1)
	got := a.Servers()
	if len(got) != 2 || got[0] != "s1" || got[1] != "s2" {
		t.Errorf("Servers = %v", got)
	}
}

// TestNoDoubleAllocation: across any alternation of allocs and frees,
// no block ID is ever held by two owners.
func TestNoDoubleAllocation(t *testing.T) {
	f := func(ops []uint8) bool {
		a := New()
		a.RegisterServer("s1", 16)
		a.RegisterServer("s2", 16)
		held := map[core.BlockID]core.BlockInfo{}
		var heldList []core.BlockInfo
		for _, op := range ops {
			if op%2 == 0 {
				n := int(op%3) + 1
				blocks, err := a.Allocate(n)
				if err != nil {
					continue
				}
				for _, b := range blocks {
					if _, dup := held[b.ID]; dup {
						return false
					}
					held[b.ID] = b
					heldList = append(heldList, b)
				}
			} else if len(heldList) > 0 {
				b := heldList[len(heldList)-1]
				heldList = heldList[:len(heldList)-1]
				delete(held, b.ID)
				a.Free([]core.BlockInfo{b})
			}
		}
		_, free, _ := a.Stats()
		return free == 32-len(held)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
