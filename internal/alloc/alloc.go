// Package alloc implements the controller's block allocator and free
// list (§4.2.1): the system-wide record of which fixed-size blocks are
// unassigned, with their physical server locations. Allocation picks
// blocks from the least-loaded servers, mirroring the controller's
// global load view in Pocket/Jiffy.
package alloc

import (
	"fmt"
	"sort"
	"sync"

	"jiffy/internal/core"
)

// Allocator tracks free blocks across the memory-server pool.
type Allocator struct {
	mu sync.Mutex
	// free maps server address → free block IDs on that server.
	free map[string][]core.BlockID
	// totalPerServer remembers each server's contribution.
	totalPerServer map[string]int
	// suspended marks servers on gray-failure probation: their free
	// blocks stay in the pool (the server is alive and its data intact)
	// but Allocate avoids them unless the healthy servers alone cannot
	// satisfy the request.
	suspended   map[string]bool
	nextID      core.BlockID
	totalBlocks int
	freeBlocks  int
}

// New creates an empty allocator.
func New() *Allocator {
	return &Allocator{
		free:           make(map[string][]core.BlockID),
		totalPerServer: make(map[string]int),
		suspended:      make(map[string]bool),
		nextID:         1,
	}
}

// RegisterServer adds a memory server contributing n blocks, returning
// the first block ID of its contiguous ID range. Re-registration (same
// address) replaces the old entry — the server restarted and its old
// blocks are gone.
func (a *Allocator) RegisterServer(addr string, n int) (core.BlockID, error) {
	if n <= 0 {
		return 0, fmt.Errorf("alloc: server %q must contribute at least one block", addr)
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if old, exists := a.totalPerServer[addr]; exists {
		a.totalBlocks -= old
		a.freeBlocks -= len(a.free[addr])
		delete(a.free, addr)
	}
	first := a.nextID
	ids := make([]core.BlockID, n)
	for i := range ids {
		ids[i] = a.nextID
		a.nextID++
	}
	a.free[addr] = ids
	a.totalPerServer[addr] = n
	a.totalBlocks += n
	a.freeBlocks += n
	return first, nil
}

// RemoveServer drops a server's free blocks from the pool. Blocks
// already allocated from it remain referenced by their prefixes until
// reclaimed through the normal paths.
func (a *Allocator) RemoveServer(addr string) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if _, exists := a.totalPerServer[addr]; !exists {
		return
	}
	a.freeBlocks -= len(a.free[addr])
	a.totalBlocks -= a.totalPerServer[addr]
	delete(a.free, addr)
	delete(a.totalPerServer, addr)
	delete(a.suspended, addr)
}

// Suspend places addr on probation: Allocate skips it while any
// healthy server can cover the request. Unknown addresses are recorded
// too, so a suspension that races a registration still sticks.
func (a *Allocator) Suspend(addr string) {
	a.mu.Lock()
	a.suspended[addr] = true
	a.mu.Unlock()
}

// Resume lifts addr's probation.
func (a *Allocator) Resume(addr string) {
	a.mu.Lock()
	delete(a.suspended, addr)
	a.mu.Unlock()
}

// Suspended returns the probated server addresses, sorted.
func (a *Allocator) Suspended() []string {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]string, 0, len(a.suspended))
	for addr := range a.suspended {
		out = append(out, addr)
	}
	sort.Strings(out)
	return out
}

// Allocate removes n blocks from the free list, preferring the servers
// with the most free capacity (global load balancing). Servers on
// probation (Suspend) are excluded while the healthy pool alone can
// cover the request; when it cannot, the probated servers are used as
// a fallback — a slow server beats ErrNoCapacity. Returns
// ErrNoCapacity without allocating anything when fewer than n blocks
// are free in total.
func (a *Allocator) Allocate(n int) ([]core.BlockInfo, error) {
	if n <= 0 {
		return nil, nil
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.freeBlocks < n {
		return nil, fmt.Errorf("alloc: want %d blocks, %d free: %w",
			n, a.freeBlocks, core.ErrNoCapacity)
	}
	healthyFree := a.freeBlocks
	for addr := range a.suspended {
		healthyFree -= len(a.free[addr])
	}
	skipSuspended := healthyFree >= n
	out := make([]core.BlockInfo, 0, n)
	for len(out) < n {
		addr := a.mostFreeLocked(skipSuspended)
		ids := a.free[addr]
		id := ids[len(ids)-1]
		a.free[addr] = ids[:len(ids)-1]
		out = append(out, core.BlockInfo{ID: id, Server: addr})
		a.freeBlocks--
	}
	return out, nil
}

// mostFreeLocked picks the server with the most free blocks,
// tie-breaking by address for determinism. With skipSuspended set,
// probated servers are not considered (the caller guarantees the
// healthy pool is sufficient).
func (a *Allocator) mostFreeLocked(skipSuspended bool) string {
	best, bestN := "", -1
	addrs := make([]string, 0, len(a.free))
	for addr := range a.free {
		addrs = append(addrs, addr)
	}
	sort.Strings(addrs)
	for _, addr := range addrs {
		if skipSuspended && a.suspended[addr] {
			continue
		}
		if n := len(a.free[addr]); n > bestN {
			best, bestN = addr, n
		}
	}
	return best
}

// Free returns blocks to the pool. Blocks from servers that have since
// been removed are dropped.
func (a *Allocator) Free(blocks []core.BlockInfo) {
	a.mu.Lock()
	defer a.mu.Unlock()
	for _, b := range blocks {
		if _, exists := a.totalPerServer[b.Server]; !exists {
			continue
		}
		a.free[b.Server] = append(a.free[b.Server], b.ID)
		a.freeBlocks++
	}
}

// Stats reports pool counters.
func (a *Allocator) Stats() (total, free, servers int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.totalBlocks, a.freeBlocks, len(a.totalPerServer)
}

// ServerState is one server's allocator state for checkpointing.
type ServerState struct {
	Addr  string
	Total int
	Free  []core.BlockID
}

// Snapshot captures the allocator's full state (sorted by address for
// determinism) plus the next block ID to assign.
func (a *Allocator) Snapshot() ([]ServerState, core.BlockID) {
	a.mu.Lock()
	defer a.mu.Unlock()
	addrs := make([]string, 0, len(a.totalPerServer))
	for addr := range a.totalPerServer {
		addrs = append(addrs, addr)
	}
	sort.Strings(addrs)
	out := make([]ServerState, 0, len(addrs))
	for _, addr := range addrs {
		out = append(out, ServerState{
			Addr:  addr,
			Total: a.totalPerServer[addr],
			Free:  append([]core.BlockID(nil), a.free[addr]...),
		})
	}
	return out, a.nextID
}

// Restore replaces the allocator's state from a checkpoint.
func (a *Allocator) Restore(servers []ServerState, nextID core.BlockID) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.free = make(map[string][]core.BlockID, len(servers))
	a.totalPerServer = make(map[string]int, len(servers))
	a.totalBlocks = 0
	a.freeBlocks = 0
	for _, s := range servers {
		a.free[s.Addr] = append([]core.BlockID(nil), s.Free...)
		a.totalPerServer[s.Addr] = s.Total
		a.totalBlocks += s.Total
		a.freeBlocks += len(s.Free)
	}
	if nextID > a.nextID {
		a.nextID = nextID
	}
}

// Servers returns the registered server addresses, sorted.
func (a *Allocator) Servers() []string {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]string, 0, len(a.totalPerServer))
	for addr := range a.totalPerServer {
		out = append(out, addr)
	}
	sort.Strings(out)
	return out
}
