// Package metrics provides the measurement primitives used by the
// experiment harness: latency histograms with percentile queries, CDF
// extraction (Figs. 11b, 13a of the paper), time series of
// allocated/used capacity (Figs. 1, 11a, 14), and throughput counters.
//
// All types are safe for concurrent use unless noted otherwise.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"time"
)

// Histogram records duration samples and answers percentile queries.
// Samples are kept exactly (the experiments here record at most a few
// million points), which keeps percentiles precise for CDF plots.
type Histogram struct {
	mu      sync.Mutex
	samples []time.Duration
	sorted  bool
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram { return &Histogram{} }

// Record adds one sample.
func (h *Histogram) Record(d time.Duration) {
	h.mu.Lock()
	h.samples = append(h.samples, d)
	h.sorted = false
	h.mu.Unlock()
}

// Count returns the number of samples.
func (h *Histogram) Count() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.samples)
}

func (h *Histogram) sortLocked() {
	if !h.sorted {
		sort.Slice(h.samples, func(i, j int) bool { return h.samples[i] < h.samples[j] })
		h.sorted = true
	}
}

// Percentile returns the p-th percentile (0 <= p <= 100) using
// nearest-rank interpolation. Returns 0 for an empty histogram.
func (h *Histogram) Percentile(p float64) time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.samples) == 0 {
		return 0
	}
	h.sortLocked()
	if p <= 0 {
		return h.samples[0]
	}
	if p >= 100 {
		return h.samples[len(h.samples)-1]
	}
	rank := p / 100 * float64(len(h.samples)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return h.samples[lo]
	}
	frac := rank - float64(lo)
	return h.samples[lo] + time.Duration(frac*float64(h.samples[hi]-h.samples[lo]))
}

// Mean returns the arithmetic mean of the samples.
func (h *Histogram) Mean() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.samples) == 0 {
		return 0
	}
	var sum time.Duration
	for _, s := range h.samples {
		sum += s
	}
	return sum / time.Duration(len(h.samples))
}

// Min returns the smallest sample (0 when empty).
func (h *Histogram) Min() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.samples) == 0 {
		return 0
	}
	h.sortLocked()
	return h.samples[0]
}

// Max returns the largest sample (0 when empty).
func (h *Histogram) Max() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.samples) == 0 {
		return 0
	}
	h.sortLocked()
	return h.samples[len(h.samples)-1]
}

// CDF returns (value, cumulative-fraction) pairs at n evenly spaced
// quantiles, suitable for plotting the paper's CDF figures.
func (h *Histogram) CDF(n int) []CDFPoint {
	if n < 2 {
		n = 2
	}
	pts := make([]CDFPoint, 0, n)
	for i := 0; i < n; i++ {
		frac := float64(i) / float64(n-1)
		pts = append(pts, CDFPoint{
			Value:    h.Percentile(frac * 100),
			Fraction: frac,
		})
	}
	return pts
}

// CDFPoint is one point on a latency CDF.
type CDFPoint struct {
	Value    time.Duration
	Fraction float64
}

// Summary formats count/mean/p50/p99/max on one line.
func (h *Histogram) Summary() string {
	return fmt.Sprintf("n=%d mean=%v p50=%v p95=%v p99=%v max=%v",
		h.Count(), h.Mean(), h.Percentile(50), h.Percentile(95),
		h.Percentile(99), h.Max())
}

// Series is a time series of float64 samples, used for the
// allocated-vs-used capacity plots. Not safe for concurrent use; the
// simulator appends from a single goroutine.
type Series struct {
	Name   string
	Points []SeriesPoint
}

// SeriesPoint is one (time, value) sample.
type SeriesPoint struct {
	T time.Time
	V float64
}

// Add appends a sample.
func (s *Series) Add(t time.Time, v float64) {
	s.Points = append(s.Points, SeriesPoint{T: t, V: v})
}

// Max returns the maximum value in the series (0 when empty).
func (s *Series) Max() float64 {
	m := 0.0
	for _, p := range s.Points {
		if p.V > m {
			m = p.V
		}
	}
	return m
}

// Mean returns the arithmetic mean of the values (0 when empty).
func (s *Series) Mean() float64 {
	if len(s.Points) == 0 {
		return 0
	}
	sum := 0.0
	for _, p := range s.Points {
		sum += p.V
	}
	return sum / float64(len(s.Points))
}

// Integral returns the time integral of the series (value × seconds),
// treating the series as a step function held constant between samples.
func (s *Series) Integral() float64 {
	if len(s.Points) < 2 {
		return 0
	}
	total := 0.0
	for i := 1; i < len(s.Points); i++ {
		dt := s.Points[i].T.Sub(s.Points[i-1].T).Seconds()
		total += s.Points[i-1].V * dt
	}
	return total
}

// Normalize returns a copy of the series with every value divided by
// denom. A zero denom yields an all-zero copy.
func (s *Series) Normalize(denom float64) *Series {
	out := &Series{Name: s.Name}
	for _, p := range s.Points {
		v := 0.0
		if denom != 0 {
			v = p.V / denom
		}
		out.Add(p.T, v)
	}
	return out
}

// Downsample returns a copy with at most n points, picked evenly.
func (s *Series) Downsample(n int) *Series {
	if n <= 0 || len(s.Points) <= n {
		cp := &Series{Name: s.Name, Points: append([]SeriesPoint(nil), s.Points...)}
		return cp
	}
	out := &Series{Name: s.Name}
	step := float64(len(s.Points)-1) / float64(n-1)
	for i := 0; i < n; i++ {
		out.Points = append(out.Points, s.Points[int(float64(i)*step)])
	}
	return out
}

// Counter is a monotonically increasing operation counter with a
// throughput helper.
type Counter struct {
	mu    sync.Mutex
	n     int64
	start time.Time
	clock func() time.Time
}

// NewCounter returns a counter that timestamps with now.
func NewCounter(now func() time.Time) *Counter {
	if now == nil {
		now = time.Now
	}
	return &Counter{start: now(), clock: now}
}

// Add increments the counter by delta.
func (c *Counter) Add(delta int64) {
	c.mu.Lock()
	c.n += delta
	c.mu.Unlock()
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

// Rate returns operations per second since the counter was created.
func (c *Counter) Rate() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	elapsed := c.clock().Sub(c.start).Seconds()
	if elapsed <= 0 {
		return 0
	}
	return float64(c.n) / elapsed
}

// Table accumulates labelled rows for experiment output; every figure
// reproduction prints one Table whose rows mirror the paper's series.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		case time.Duration:
			row[i] = v.String()
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "## %s\n", t.Title)
	}
	for i, c := range t.Columns {
		fmt.Fprintf(&b, "%-*s  ", widths[i], c)
	}
	b.WriteByte('\n')
	for i := range t.Columns {
		b.WriteString(strings.Repeat("-", widths[i]))
		b.WriteString("  ")
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		for i, cell := range row {
			w := 0
			if i < len(widths) {
				w = widths[i]
			}
			fmt.Fprintf(&b, "%-*s  ", w, cell)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
