package metrics

import (
	"strings"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram()
	if h.Count() != 0 || h.Mean() != 0 || h.Percentile(50) != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Error("empty histogram should report zeros")
	}
}

func TestHistogramPercentiles(t *testing.T) {
	h := NewHistogram()
	for i := 1; i <= 100; i++ {
		h.Record(time.Duration(i) * time.Millisecond)
	}
	if got := h.Percentile(0); got != time.Millisecond {
		t.Errorf("p0 = %v", got)
	}
	if got := h.Percentile(100); got != 100*time.Millisecond {
		t.Errorf("p100 = %v", got)
	}
	p50 := h.Percentile(50)
	if p50 < 50*time.Millisecond || p50 > 51*time.Millisecond {
		t.Errorf("p50 = %v", p50)
	}
	if got := h.Mean(); got != 50500*time.Microsecond {
		t.Errorf("mean = %v", got)
	}
	if h.Min() != time.Millisecond || h.Max() != 100*time.Millisecond {
		t.Errorf("min/max = %v/%v", h.Min(), h.Max())
	}
}

func TestHistogramPercentileMonotonic(t *testing.T) {
	// Property: percentiles are monotonically non-decreasing in p.
	f := func(raw []int16) bool {
		h := NewHistogram()
		for _, r := range raw {
			d := time.Duration(r)
			if d < 0 {
				d = -d
			}
			h.Record(d)
		}
		prev := time.Duration(-1)
		for p := 0.0; p <= 100; p += 7.3 {
			v := h.Percentile(p)
			if v < prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHistogramCDF(t *testing.T) {
	h := NewHistogram()
	for i := 1; i <= 1000; i++ {
		h.Record(time.Duration(i) * time.Microsecond)
	}
	cdf := h.CDF(11)
	if len(cdf) != 11 {
		t.Fatalf("CDF points = %d", len(cdf))
	}
	if cdf[0].Fraction != 0 || cdf[10].Fraction != 1 {
		t.Errorf("CDF fractions endpoints = %v, %v", cdf[0].Fraction, cdf[10].Fraction)
	}
	for i := 1; i < len(cdf); i++ {
		if cdf[i].Value < cdf[i-1].Value {
			t.Errorf("CDF not monotonic at %d", i)
		}
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Record(time.Duration(i))
			}
		}()
	}
	wg.Wait()
	if h.Count() != 8000 {
		t.Errorf("count = %d, want 8000", h.Count())
	}
}

func TestHistogramSummary(t *testing.T) {
	h := NewHistogram()
	h.Record(time.Millisecond)
	s := h.Summary()
	if !strings.Contains(s, "n=1") {
		t.Errorf("summary = %q", s)
	}
}

func TestSeries(t *testing.T) {
	s := &Series{Name: "used"}
	t0 := time.Unix(0, 0)
	s.Add(t0, 10)
	s.Add(t0.Add(time.Second), 20)
	s.Add(t0.Add(2*time.Second), 30)
	if s.Max() != 30 {
		t.Errorf("max = %v", s.Max())
	}
	if s.Mean() != 20 {
		t.Errorf("mean = %v", s.Mean())
	}
	// Step integral: 10*1 + 20*1 = 30.
	if got := s.Integral(); got != 30 {
		t.Errorf("integral = %v", got)
	}
}

func TestSeriesNormalize(t *testing.T) {
	s := &Series{}
	s.Add(time.Unix(0, 0), 50)
	n := s.Normalize(100)
	if n.Points[0].V != 0.5 {
		t.Errorf("normalized = %v", n.Points[0].V)
	}
	z := s.Normalize(0)
	if z.Points[0].V != 0 {
		t.Errorf("zero-denominator normalize = %v", z.Points[0].V)
	}
}

func TestSeriesDownsample(t *testing.T) {
	s := &Series{}
	for i := 0; i < 100; i++ {
		s.Add(time.Unix(int64(i), 0), float64(i))
	}
	d := s.Downsample(10)
	if len(d.Points) != 10 {
		t.Fatalf("downsampled to %d points", len(d.Points))
	}
	if d.Points[0].V != 0 || d.Points[9].V != 99 {
		t.Errorf("endpoints = %v, %v", d.Points[0].V, d.Points[9].V)
	}
	// Downsampling to more points than exist returns a copy.
	all := s.Downsample(1000)
	if len(all.Points) != 100 {
		t.Errorf("oversized downsample = %d points", len(all.Points))
	}
}

func TestSeriesEmpty(t *testing.T) {
	s := &Series{}
	if s.Max() != 0 || s.Mean() != 0 || s.Integral() != 0 {
		t.Error("empty series should report zeros")
	}
}

func TestCounter(t *testing.T) {
	now := time.Unix(0, 0)
	c := NewCounter(func() time.Time { return now })
	c.Add(10)
	c.Add(5)
	if c.Value() != 15 {
		t.Errorf("value = %d", c.Value())
	}
	now = now.Add(3 * time.Second)
	if got := c.Rate(); got != 5 {
		t.Errorf("rate = %v, want 5", got)
	}
}

func TestCounterZeroElapsed(t *testing.T) {
	c := NewCounter(func() time.Time { return time.Unix(0, 0) })
	c.Add(5)
	if c.Rate() != 0 {
		t.Error("rate with zero elapsed time should be 0")
	}
}

func TestTable(t *testing.T) {
	tb := NewTable("Fig. 9(a)", "capacity", "slowdown")
	tb.AddRow("100%", 1.0)
	tb.AddRow("20%", 2.5)
	out := tb.String()
	if !strings.Contains(out, "Fig. 9(a)") || !strings.Contains(out, "2.500") {
		t.Errorf("table output:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Errorf("table has %d lines:\n%s", len(lines), out)
	}
}
