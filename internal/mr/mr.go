// Package mr implements the Map-Reduce programming model on Jiffy
// (§5.1 of the paper): map and reduce functions run as lightweight
// tasks (goroutines standing in for serverless functions), intermediate
// key-value pairs flow through Jiffy shuffle files — one per reduce
// partition, written concurrently by every map task via atomic record
// appends — and a master process launches tasks, tracks progress,
// retries failures and renews leases.
package mr

import (
	"context"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
	"time"

	"jiffy/internal/client"
	"jiffy/internal/core"
)

// KeyValue is one intermediate or output pair.
type KeyValue struct {
	Key, Value string
}

// MapFunc processes one input split, emitting intermediate pairs.
type MapFunc func(split string, emit func(key, value string)) error

// ReduceFunc merges all values observed for one key.
type ReduceFunc func(key string, values []string) (string, error)

// Config describes a MapReduce job.
type Config struct {
	// JobID names the job's address hierarchy (must be unique).
	JobID core.JobID
	// Inputs are the input splits, one map task each.
	Inputs []string
	// Reducers is the number of reduce partitions (and shuffle files).
	Reducers int
	// Map and Reduce are the user functions.
	Map    MapFunc
	Reduce ReduceFunc
	// MaxTaskRetries bounds re-execution of a failed task (default 2).
	MaxTaskRetries int
	// LeaseRenewInterval paces the master's lease renewals (default:
	// 250ms).
	LeaseRenewInterval time.Duration
}

// Result carries the job output.
type Result struct {
	// Output holds the reduced pairs.
	Output map[string]string
	// MapTasks / ReduceTasks count executed tasks including retries.
	MapTasks, ReduceTasks int
}

// Run executes a MapReduce job against a Jiffy cluster. The master
// (this function) registers the job, builds the hierarchy — a "map"
// stage node with one shuffle-file child per reduce partition — runs
// the phases, and deregisters the job.
func Run(ctx context.Context, c *client.Client, cfg Config) (*Result, error) {
	if cfg.JobID == "" || len(cfg.Inputs) == 0 || cfg.Reducers <= 0 ||
		cfg.Map == nil || cfg.Reduce == nil {
		return nil, fmt.Errorf("mr: incomplete job config")
	}
	if cfg.MaxTaskRetries <= 0 {
		cfg.MaxTaskRetries = 2
	}
	if cfg.LeaseRenewInterval <= 0 {
		cfg.LeaseRenewInterval = 250 * time.Millisecond
	}

	if err := c.RegisterJob(ctx, cfg.JobID); err != nil {
		return nil, fmt.Errorf("mr: register: %w", err)
	}
	defer c.DeregisterJob(ctx, cfg.JobID)

	// Hierarchy: jobID/map/shuffle-<r> — shuffle files are children of
	// the map stage, so renewing the map prefix keeps every shuffle
	// file alive (§3.2 propagation).
	root := core.Path(string(cfg.JobID))
	mapPrefix := root.MustChild("map")
	if _, _, err := c.CreatePrefix(ctx, mapPrefix, nil, core.DSNone, 0, 0); err != nil {
		return nil, fmt.Errorf("mr: create map prefix: %w", err)
	}
	shufflePaths := make([]core.Path, cfg.Reducers)
	for r := 0; r < cfg.Reducers; r++ {
		shufflePaths[r] = mapPrefix.MustChild(fmt.Sprintf("shuffle-%d", r))
		if _, _, err := c.CreatePrefix(ctx, shufflePaths[r], nil, core.DSFile, 1, 0); err != nil {
			return nil, fmt.Errorf("mr: create shuffle %d: %w", r, err)
		}
	}

	// The master renews the map prefix for the duration of the job.
	renewer := c.StartRenewer(cfg.LeaseRenewInterval, mapPrefix)
	defer renewer.Stop()

	res := &Result{Output: make(map[string]string)}

	// --- Map phase ---------------------------------------------------
	shuffles := make([]*client.File, cfg.Reducers)
	for r := range shuffles {
		f, err := c.OpenFile(ctx, shufflePaths[r])
		if err != nil {
			return nil, err
		}
		shuffles[r] = f
	}
	var mu sync.Mutex
	var firstErr error
	var wg sync.WaitGroup
	var mapTasks sync.Map
	for i, split := range cfg.Inputs {
		wg.Add(1)
		go func(i int, split string) {
			defer wg.Done()
			var err error
			for attempt := 0; attempt <= cfg.MaxTaskRetries; attempt++ {
				if err = runMapTask(ctx, cfg, shuffles, split); err == nil {
					mapTasks.Store(fmt.Sprintf("%d-%d", i, attempt), true)
					return
				}
			}
			mu.Lock()
			if firstErr == nil {
				firstErr = fmt.Errorf("mr: map task %d: %w", i, err)
			}
			mu.Unlock()
		}(i, split)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	mapTasks.Range(func(_, _ interface{}) bool { res.MapTasks++; return true })

	// --- Reduce phase -------------------------------------------------
	outputs := make([]map[string]string, cfg.Reducers)
	for r := 0; r < cfg.Reducers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			var out map[string]string
			var err error
			for attempt := 0; attempt <= cfg.MaxTaskRetries; attempt++ {
				if out, err = runReduceTask(ctx, cfg, c, shufflePaths[r]); err == nil {
					outputs[r] = out
					return
				}
			}
			mu.Lock()
			if firstErr == nil {
				firstErr = fmt.Errorf("mr: reduce task %d: %w", r, err)
			}
			mu.Unlock()
		}(r)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	res.ReduceTasks = cfg.Reducers
	for _, out := range outputs {
		for k, v := range out {
			res.Output[k] = v
		}
	}
	return res, nil
}

// partitionOf routes a key to its reduce partition.
func partitionOf(key string, reducers int) int {
	h := fnv.New32a()
	h.Write([]byte(key))
	return int(h.Sum32()) % reducers
}

// runMapTask executes one map task: apply Map to the split, buffer
// pairs per partition, and append the records to the shuffle files.
func runMapTask(ctx context.Context, cfg Config, shuffles []*client.File, split string) error {
	buffers := make([][]KeyValue, cfg.Reducers)
	emit := func(key, value string) {
		r := partitionOf(key, cfg.Reducers)
		buffers[r] = append(buffers[r], KeyValue{Key: key, Value: value})
	}
	if err := cfg.Map(split, emit); err != nil {
		return err
	}
	for r, pairs := range buffers {
		if err := ctx.Err(); err != nil {
			return err
		}
		for _, kv := range pairs {
			if _, err := shuffles[r].AppendRecord(ctx, encodeRecord(kv)); err != nil {
				return err
			}
		}
	}
	return nil
}

// runReduceTask reads one shuffle file, groups pairs by key and applies
// Reduce.
func runReduceTask(ctx context.Context, cfg Config, c *client.Client,
	path core.Path) (map[string]string, error) {

	f, err := c.OpenFile(ctx, path)
	if err != nil {
		return nil, err
	}
	pairs, err := ReadAllRecords(f)
	if err != nil {
		return nil, err
	}
	grouped := make(map[string][]string)
	for _, kv := range pairs {
		grouped[kv.Key] = append(grouped[kv.Key], kv.Value)
	}
	keys := make([]string, 0, len(grouped))
	for k := range grouped {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make(map[string]string, len(keys))
	for _, k := range keys {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		v, err := cfg.Reduce(k, grouped[k])
		if err != nil {
			return nil, err
		}
		out[k] = v
	}
	return out, nil
}

// encodeRecord frames one pair: u32 total length, u32 key length, key,
// value. The leading length can never be zero, so a zero word marks
// end-of-chunk (file chunks are zero-filled past the written region).
func encodeRecord(kv KeyValue) []byte {
	total := 4 + len(kv.Key) + len(kv.Value)
	buf := make([]byte, 4+total)
	binary.BigEndian.PutUint32(buf[0:4], uint32(total))
	binary.BigEndian.PutUint32(buf[4:8], uint32(len(kv.Key)))
	copy(buf[8:], kv.Key)
	copy(buf[8+len(kv.Key):], kv.Value)
	return buf
}

// decodeRecords parses the records in one chunk's bytes, stopping at a
// zero length word or the end of written data.
func decodeRecords(data []byte) ([]KeyValue, error) {
	var out []KeyValue
	off := 0
	for off+4 <= len(data) {
		total := int(binary.BigEndian.Uint32(data[off : off+4]))
		if total == 0 {
			break // trailing gap in this chunk
		}
		off += 4
		if off+total > len(data) || total < 4 {
			return nil, fmt.Errorf("mr: corrupt shuffle record at %d", off-4)
		}
		klen := int(binary.BigEndian.Uint32(data[off : off+4]))
		if 4+klen > total {
			return nil, fmt.Errorf("mr: corrupt key length at %d", off)
		}
		key := string(data[off+4 : off+4+klen])
		val := string(data[off+4+klen : off+total])
		out = append(out, KeyValue{Key: key, Value: val})
		off += total
	}
	return out, nil
}

// ReadAllRecords scans a shuffle file chunk by chunk; records never
// straddle chunks, so per-chunk parsing is complete.
func ReadAllRecords(f *client.File) ([]KeyValue, error) {
	n, err := f.Chunks(context.Background())
	if err != nil {
		return nil, err
	}
	var all []KeyValue
	for ci := 0; ci < n; ci++ {
		data, err := f.ReadChunk(context.Background(), ci)
		if err != nil {
			return nil, err
		}
		recs, err := decodeRecords(data)
		if err != nil {
			return nil, err
		}
		all = append(all, recs...)
	}
	return all, nil
}
