package mr

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"strconv"
	"strings"
	"testing"
	"time"

	"jiffy"
	"jiffy/internal/client"
	"jiffy/internal/core"
)

func testClient(t *testing.T) *client.Client {
	t.Helper()
	cfg := core.TestConfig()
	cfg.LeaseDuration = time.Minute
	cluster, err := jiffy.StartCluster(jiffy.ClusterOptions{
		Config: cfg, Servers: 2, BlocksPerServer: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cluster.Close() })
	c, err := cluster.Connect(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func wordCountMap(split string, emit func(k, v string)) error {
	for _, w := range strings.Fields(split) {
		emit(strings.ToLower(strings.Trim(w, ".,!?")), "1")
	}
	return nil
}

func wordCountReduce(key string, values []string) (string, error) {
	return strconv.Itoa(len(values)), nil
}

func TestWordCount(t *testing.T) {
	c := testClient(t)
	res, err := Run(context.Background(), c, Config{
		JobID: "wc",
		Inputs: []string{
			"the quick brown fox",
			"the lazy dog",
			"the fox jumps over the dog",
		},
		Reducers: 3,
		Map:      wordCountMap,
		Reduce:   wordCountReduce,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]string{
		"the": "4", "fox": "2", "dog": "2", "quick": "1",
		"brown": "1", "lazy": "1", "jumps": "1", "over": "1",
	}
	if len(res.Output) != len(want) {
		t.Fatalf("output = %v", res.Output)
	}
	for k, v := range want {
		if res.Output[k] != v {
			t.Errorf("count[%q] = %q, want %q", k, res.Output[k], v)
		}
	}
	if res.MapTasks != 3 || res.ReduceTasks != 3 {
		t.Errorf("tasks = %d/%d", res.MapTasks, res.ReduceTasks)
	}
	// The job deregistered: its blocks are back in the pool.
	stats, _ := c.ControllerStats(context.Background())
	if stats.AllocatedBlocks != 0 {
		t.Errorf("blocks leaked: %d", stats.AllocatedBlocks)
	}
}

// TestLargeShuffle pushes enough intermediate data through the shuffle
// files that they must grow across multiple chunks.
func TestLargeShuffle(t *testing.T) {
	c := testClient(t)
	// 8 splits × 2000 words with padded values → several hundred KB of
	// shuffle data against 64KB chunks.
	inputs := make([]string, 8)
	for i := range inputs {
		var sb strings.Builder
		for w := 0; w < 2000; w++ {
			fmt.Fprintf(&sb, "word%03d ", w%100)
		}
		inputs[i] = sb.String()
	}
	pad := strings.Repeat("x", 30)
	res, err := Run(context.Background(), c, Config{
		JobID:    "bigshuffle",
		Inputs:   inputs,
		Reducers: 4,
		Map: func(split string, emit func(k, v string)) error {
			for _, w := range strings.Fields(split) {
				emit(w, pad)
			}
			return nil
		},
		Reduce: wordCountReduce,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Output) != 100 {
		t.Fatalf("distinct keys = %d, want 100", len(res.Output))
	}
	for k, v := range res.Output {
		if v != "160" { // 8 splits × 20 occurrences of each word
			t.Errorf("count[%q] = %s, want 160", k, v)
		}
	}
}

func TestMapErrorPropagates(t *testing.T) {
	c := testClient(t)
	boom := errors.New("map exploded")
	_, err := Run(context.Background(), c, Config{
		JobID:    "failjob",
		Inputs:   []string{"a"},
		Reducers: 1,
		Map: func(string, func(k, v string)) error {
			return boom
		},
		Reduce:         wordCountReduce,
		MaxTaskRetries: 1,
	})
	if err == nil || !strings.Contains(err.Error(), "map exploded") {
		t.Errorf("err = %v", err)
	}
	// Failed jobs still release their resources.
	stats, _ := c.ControllerStats(context.Background())
	if stats.AllocatedBlocks != 0 {
		t.Errorf("blocks leaked after failure: %d", stats.AllocatedBlocks)
	}
}

func TestMapRetrySucceeds(t *testing.T) {
	c := testClient(t)
	attempts := 0
	res, err := Run(context.Background(), c, Config{
		JobID:    "flaky",
		Inputs:   []string{"hello world"},
		Reducers: 1,
		Map: func(split string, emit func(k, v string)) error {
			attempts++
			if attempts == 1 {
				return errors.New("transient")
			}
			return wordCountMap(split, emit)
		},
		Reduce:         wordCountReduce,
		MaxTaskRetries: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Output["hello"] != "1" {
		t.Errorf("output = %v", res.Output)
	}
}

func TestInvalidConfig(t *testing.T) {
	c := testClient(t)
	cases := []Config{
		{},
		{JobID: "x", Reducers: 1, Map: wordCountMap, Reduce: wordCountReduce},           // no inputs
		{JobID: "x", Inputs: []string{"a"}, Map: wordCountMap, Reduce: wordCountReduce}, // no reducers
		{JobID: "x", Inputs: []string{"a"}, Reducers: 1, Reduce: wordCountReduce},       // no map
		{JobID: "x", Inputs: []string{"a"}, Reducers: 1, Map: wordCountMap},             // no reduce
	}
	for i, cfg := range cases {
		if _, err := Run(context.Background(), c, cfg); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestRecordCodec(t *testing.T) {
	pairs := []KeyValue{
		{Key: "a", Value: "1"},
		{Key: "longer-key", Value: strings.Repeat("v", 500)},
		{Key: "empty-value", Value: ""},
	}
	var buf bytes.Buffer
	for _, kv := range pairs {
		buf.Write(encodeRecord(kv))
	}
	// Simulate the zero-filled chunk tail.
	buf.Write(make([]byte, 64))
	got, err := decodeRecords(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(pairs) {
		t.Fatalf("decoded %d records, want %d", len(got), len(pairs))
	}
	for i := range pairs {
		if got[i] != pairs[i] {
			t.Errorf("record %d = %+v, want %+v", i, got[i], pairs[i])
		}
	}
}

func TestRecordCodecCorrupt(t *testing.T) {
	rec := encodeRecord(KeyValue{Key: "k", Value: "v"})
	if _, err := decodeRecords(rec[:len(rec)-1]); err == nil {
		t.Error("truncated record accepted")
	}
}

func TestPartitionStable(t *testing.T) {
	for _, key := range []string{"a", "b", "word42"} {
		p1 := partitionOf(key, 7)
		p2 := partitionOf(key, 7)
		if p1 != p2 || p1 < 0 || p1 >= 7 {
			t.Errorf("partitionOf(%q) unstable or out of range: %d/%d", key, p1, p2)
		}
	}
}
