package trace

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadCSV feeds arbitrary bytes into the trace importer: it must
// parse a trace or fail cleanly — never panic, never index past a
// short row, never accept out-of-range fields. When a parse succeeds,
// the structural invariants every trace consumer relies on must hold
// (contiguous sorted stage indices, tenants within range, window
// covering every job), and the trace must survive a WriteCSV→ReadCSV
// round trip unchanged — soak runs export and re-import traces, so a
// lossy round trip would silently change the replayed workload.
func FuzzReadCSV(f *testing.F) {
	header := "job_id,tenant,arrival_ms,stage,tasks,duration_ms,bytes\n"
	f.Add([]byte(header))
	f.Add([]byte(header + "j1,0,0,0,4,1000,4096\n"))
	f.Add([]byte(header + "j1,0,0,1,4,1000,4096\nj1,0,0,0,2,500,1024\n"))
	f.Add([]byte(header + "j1,-1,0,0,4,1000,4096\n"))
	f.Add([]byte(header + "j1,0,0,0,4,1000\n"))
	f.Add([]byte(header + "j1,0,0,0,4,1000,not-a-number\n"))
	f.Add([]byte("tenant,job_id\nj1,0\n"))
	f.Add([]byte(`job_id,tenant,arrival_ms,stage,tasks,duration_ms,bytes` + "\n" +
		`"quoted,id",3,250,0,10,2000,1048576` + "\n"))
	// A generated trace: the golden well-formed input.
	var buf bytes.Buffer
	cfg := smallConfig()
	cfg.JobsPerTenant = 4
	if err := Generate(cfg, 11).WriteCSV(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())

	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := ReadCSV(bytes.NewReader(data))
		if err != nil {
			return
		}
		for _, j := range tr.Jobs {
			if j.Tenant < 0 || j.Tenant >= tr.Tenants {
				t.Fatalf("job %q tenant %d outside [0,%d)", j.ID, j.Tenant, tr.Tenants)
			}
			if end := j.Arrival + j.Duration(); end > tr.Window {
				t.Fatalf("job %q ends at %v, past window %v", j.ID, end, tr.Window)
			}
			for i, s := range j.Stages {
				if s.Index != i {
					t.Fatalf("job %q stage %d has index %d", j.ID, i, s.Index)
				}
				if s.Tasks <= 0 || s.Duration <= 0 || s.Bytes < 0 {
					t.Fatalf("job %q stage %d out of range: %+v", j.ID, i, s)
				}
			}
		}
		// Round trip: re-export and re-import must agree on the jobs.
		// (Tenants may legitimately shrink: the importer infers the count
		// from the max tenant seen, so it is already canonical here.)
		var out strings.Builder
		if err := tr.WriteCSV(&out); err != nil {
			t.Fatalf("WriteCSV of parsed trace: %v", err)
		}
		tr2, err := ReadCSV(strings.NewReader(out.String()))
		if err != nil {
			t.Fatalf("re-import of exported trace: %v", err)
		}
		if len(tr2.Jobs) != len(tr.Jobs) || tr2.Tenants != tr.Tenants {
			t.Fatalf("round trip changed shape: %d/%d jobs, %d/%d tenants",
				len(tr2.Jobs), len(tr.Jobs), tr2.Tenants, tr.Tenants)
		}
		for i := range tr.Jobs {
			a, b := &tr.Jobs[i], &tr2.Jobs[i]
			if a.ID != b.ID || a.Tenant != b.Tenant || a.Arrival.Milliseconds() != b.Arrival.Milliseconds() ||
				len(a.Stages) != len(b.Stages) || a.TotalBytes() != b.TotalBytes() {
				t.Fatalf("round trip changed job %d: %+v vs %+v", i, a, b)
			}
		}
	})
}
