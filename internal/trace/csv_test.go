package trace

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestCSVRoundTrip(t *testing.T) {
	cfg := smallConfig()
	orig := Generate(cfg, 11)
	var buf bytes.Buffer
	if err := orig.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Jobs) != len(orig.Jobs) || back.Tenants != orig.Tenants {
		t.Fatalf("jobs=%d/%d tenants=%d/%d",
			len(back.Jobs), len(orig.Jobs), back.Tenants, orig.Tenants)
	}
	for i := range orig.Jobs {
		o, b := orig.Jobs[i], back.Jobs[i]
		if o.ID != b.ID || o.Tenant != b.Tenant || len(o.Stages) != len(b.Stages) {
			t.Fatalf("job %d metadata differs", i)
		}
		// Millisecond truncation is the only allowed loss.
		if o.Arrival.Truncate(time.Millisecond) != b.Arrival {
			t.Fatalf("job %d arrival %v vs %v", i, o.Arrival, b.Arrival)
		}
		for s := range o.Stages {
			if o.Stages[s].Bytes != b.Stages[s].Bytes ||
				o.Stages[s].Tasks != b.Stages[s].Tasks {
				t.Fatalf("job %d stage %d differs", i, s)
			}
		}
	}
}

func TestReadCSVValidation(t *testing.T) {
	cases := []struct {
		name, csv string
	}{
		{"bad header", "nope,columns\n"},
		{"wrong column", "job_id,tenant,arrival_ms,stage,tasks,duration_ms,size\n"},
		{"non-numeric", "job_id,tenant,arrival_ms,stage,tasks,duration_ms,bytes\nj,x,0,0,1,10,5\n"},
		{"negative bytes", "job_id,tenant,arrival_ms,stage,tasks,duration_ms,bytes\nj,0,0,0,1,10,-5\n"},
		{"zero tasks", "job_id,tenant,arrival_ms,stage,tasks,duration_ms,bytes\nj,0,0,0,0,10,5\n"},
		{"gap in stages", "job_id,tenant,arrival_ms,stage,tasks,duration_ms,bytes\nj,0,0,0,1,10,5\nj,0,0,2,1,10,5\n"},
	}
	for _, c := range cases {
		if _, err := ReadCSV(strings.NewReader(c.csv)); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestReadCSVWindowInference(t *testing.T) {
	csv := "job_id,tenant,arrival_ms,stage,tasks,duration_ms,bytes\n" +
		"j1,0,1000,0,2,500,1024\n" +
		"j1,0,1000,1,2,500,2048\n" +
		"j2,1,5000,0,1,1000,512\n"
	tr, err := ReadCSV(strings.NewReader(csv))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Tenants != 2 || len(tr.Jobs) != 2 {
		t.Fatalf("tenants=%d jobs=%d", tr.Tenants, len(tr.Jobs))
	}
	// Window = last job end = 5000ms + 1000ms.
	if tr.Window != 6*time.Second {
		t.Errorf("window = %v", tr.Window)
	}
	if tr.Jobs[0].TotalBytes() != 3072 {
		t.Errorf("job1 bytes = %d", tr.Jobs[0].TotalBytes())
	}
}
