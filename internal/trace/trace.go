// Package trace synthesizes Snowflake-like analytics workloads. The
// paper's evaluation replays the public Snowflake dataset [Vuppalapati
// et al., NSDI '20]; that trace is not redistributable, so this package
// generates workloads matching its published statistics instead:
//
//   - multi-stage jobs (1–10 stages, tens of tasks per stage) arriving
//     per tenant as a Poisson process;
//   - per-stage intermediate data drawn from a heavy-tailed lognormal,
//     spanning multiple orders of magnitude within one job (the paper
//     cites TPC-DS stages ranging 0.8MB → 66GB);
//   - peak-to-average intermediate data ratios of 10–100× per tenant
//     over minutes (Fig. 1), which is what makes job-level provisioning
//     waste capacity.
//
// The generator is deterministic for a given seed.
package trace

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"jiffy/internal/metrics"
)

// Stage is one stage of a job: Tasks parallel tasks running for
// Duration, producing Bytes of intermediate data consumed by the next
// stage.
type Stage struct {
	Index    int
	Tasks    int
	Duration time.Duration
	Bytes    int64
}

// Job is one analytics job.
type Job struct {
	ID      string
	Tenant  int
	Arrival time.Duration // offset from trace start
	Stages  []Stage
}

// TotalBytes sums intermediate data across stages.
func (j *Job) TotalBytes() int64 {
	var n int64
	for _, s := range j.Stages {
		n += s.Bytes
	}
	return n
}

// Duration sums stage durations.
func (j *Job) Duration() time.Duration {
	var d time.Duration
	for _, s := range j.Stages {
		d += s.Duration
	}
	return d
}

// StageStart returns the stage's start offset within the job.
func (j *Job) StageStart(i int) time.Duration {
	var d time.Duration
	for s := 0; s < i; s++ {
		d += j.Stages[s].Duration
	}
	return d
}

// Trace is a complete workload.
type Trace struct {
	Tenants int
	Window  time.Duration
	Jobs    []Job
}

// Config parameterizes generation.
type Config struct {
	// Tenants is the number of independent tenants.
	Tenants int
	// Window is the trace duration.
	Window time.Duration
	// JobsPerTenant is the expected job count per tenant over the
	// window.
	JobsPerTenant int
	// MeanStageBytes is the lognormal median of per-stage intermediate
	// data.
	MeanStageBytes float64
	// MaxStageBytes truncates the lognormal tail (0 = 64×median). The
	// Snowflake aggregate is heavy-tailed but no single query dwarfs
	// the whole cluster; the cap keeps small synthetic traces from
	// being dominated by one degenerate mega-job.
	MaxStageBytes int64
	// SigmaLog is the lognormal sigma (in natural-log space); ~2.0
	// yields the multi-order-of-magnitude spread the paper reports.
	SigmaLog float64
	// MinStages/MaxStages bound job depth.
	MinStages, MaxStages int
	// MinTasks/MaxTasks bound per-stage task counts.
	MinTasks, MaxTasks int
	// MeanStageDuration is the mean per-stage compute duration.
	MeanStageDuration time.Duration
}

// DefaultConfig produces a laptop-scale workload with the paper's
// statistical shape.
func DefaultConfig() Config {
	return Config{
		Tenants:           4,
		Window:            time.Hour,
		JobsPerTenant:     120,
		MeanStageBytes:    4 * 1024 * 1024,
		SigmaLog:          2.0,
		MinStages:         1,
		MaxStages:         8,
		MinTasks:          2,
		MaxTasks:          40,
		MeanStageDuration: 20 * time.Second,
	}
}

// Generate builds a deterministic trace for the seed. Each tenant
// draws from its own RNG stream seeded from (seed, tenant), so a
// tenant's jobs depend only on the seed and its own index: adding
// tenants or changing one tenant's parameters never perturbs another
// tenant's stream, and replayers can regenerate a single tenant's
// workload independently.
func Generate(cfg Config, seed int64) *Trace {
	t := &Trace{Tenants: cfg.Tenants, Window: cfg.Window}
	for tenant := 0; tenant < cfg.Tenants; tenant++ {
		rng := rand.New(rand.NewSource(tenantSeed(seed, tenant)))
		// Poisson arrivals: exponential inter-arrival times.
		rate := float64(cfg.JobsPerTenant) / cfg.Window.Seconds()
		at := time.Duration(0)
		jobIdx := 0
		for {
			gap := time.Duration(rng.ExpFloat64() / rate * float64(time.Second))
			at += gap
			if at >= cfg.Window {
				break
			}
			t.Jobs = append(t.Jobs, genJob(cfg, rng, tenant, jobIdx, at))
			jobIdx++
		}
	}
	return t
}

// tenantSeed derives an independent stream seed from the trace seed
// and a tenant index (SplitMix64 finalizer: distinct inputs map to
// well-separated seeds even when the trace seeds themselves are small
// consecutive integers).
func tenantSeed(seed int64, tenant int) int64 {
	z := uint64(seed) + 0x9e3779b97f4a7c15*uint64(tenant+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

func genJob(cfg Config, rng *rand.Rand, tenant, idx int, at time.Duration) Job {
	nStages := cfg.MinStages + rng.Intn(cfg.MaxStages-cfg.MinStages+1)
	job := Job{
		ID:      fmt.Sprintf("tenant%d-job%d", tenant, idx),
		Tenant:  tenant,
		Arrival: at,
	}
	// A job's stages are correlated in size (a big job is big
	// throughout) with per-stage variation on top; this mirrors the
	// TPC-DS observation that stage sizes within one query still span
	// orders of magnitude.
	jobScale := math.Exp(rng.NormFloat64() * cfg.SigmaLog)
	maxBytes := cfg.MaxStageBytes
	if maxBytes <= 0 {
		maxBytes = int64(64 * cfg.MeanStageBytes)
	}
	for s := 0; s < nStages; s++ {
		stageScale := math.Exp(rng.NormFloat64() * cfg.SigmaLog * 0.75)
		b := int64(cfg.MeanStageBytes * jobScale * stageScale)
		if b < 1024 {
			b = 1024
		}
		if b > maxBytes {
			b = maxBytes
		}
		dur := time.Duration((0.5 + rng.Float64()) * float64(cfg.MeanStageDuration))
		job.Stages = append(job.Stages, Stage{
			Index:    s,
			Tasks:    cfg.MinTasks + rng.Intn(cfg.MaxTasks-cfg.MinTasks+1),
			Duration: dur,
			Bytes:    b,
		})
	}
	return job
}

// AliveBytes reports the intermediate data alive for tenant at offset
// t: stage s data exists from the start of stage s until the end of
// stage s+1 (written while s runs, consumed by s+1, then reclaimed).
// The final stage's data lives until the job ends.
func (tr *Trace) AliveBytes(tenant int, t time.Duration) int64 {
	var total int64
	for i := range tr.Jobs {
		j := &tr.Jobs[i]
		if j.Tenant != tenant || t < j.Arrival || t >= j.Arrival+j.Duration() {
			continue
		}
		rel := t - j.Arrival
		for s := range j.Stages {
			start := j.StageStart(s)
			end := j.StageStart(s) + j.Stages[s].Duration
			if s+1 < len(j.Stages) {
				end = j.StageStart(s+1) + j.Stages[s+1].Duration
			}
			if rel >= start && rel < end {
				total += j.Stages[s].Bytes
			}
		}
	}
	return total
}

// Series samples AliveBytes for a tenant at the given step, producing
// the Fig. 1(a) time series.
func (tr *Trace) Series(tenant int, step time.Duration) *metrics.Series {
	s := &metrics.Series{Name: fmt.Sprintf("tenant%d", tenant)}
	epoch := time.Unix(0, 0)
	for t := time.Duration(0); t <= tr.Window; t += step {
		s.Add(epoch.Add(t), float64(tr.AliveBytes(tenant, t)))
	}
	return s
}

// TotalSeries samples aggregate alive bytes across all tenants.
func (tr *Trace) TotalSeries(step time.Duration) *metrics.Series {
	s := &metrics.Series{Name: "total"}
	epoch := time.Unix(0, 0)
	for t := time.Duration(0); t <= tr.Window; t += step {
		var sum int64
		for tenant := 0; tenant < tr.Tenants; tenant++ {
			sum += tr.AliveBytes(tenant, t)
		}
		s.Add(epoch.Add(t), float64(sum))
	}
	return s
}

// PeakToAverage computes the per-tenant peak/mean ratio of alive
// intermediate data — the Fig. 1 headline statistic.
func (tr *Trace) PeakToAverage(tenant int, step time.Duration) float64 {
	s := tr.Series(tenant, step)
	mean := s.Mean()
	if mean == 0 {
		return 0
	}
	return s.Max() / mean
}

// TenantJobs returns the jobs of one tenant in arrival order.
func (tr *Trace) TenantJobs(tenant int) []Job {
	var out []Job
	for _, j := range tr.Jobs {
		if j.Tenant == tenant {
			out = append(out, j)
		}
	}
	return out
}

// ZipfKeys returns a deterministic Zipf-distributed key sampler over
// the given keyspace size — the §6.3 KV-store access pattern ("the
// inserted keys were sampled from a Zipf distribution").
func ZipfKeys(seed int64, skew float64, keyspace uint64) func() string {
	rng := rand.New(rand.NewSource(seed))
	if skew <= 1 {
		skew = 1.01
	}
	z := rand.NewZipf(rng, skew, 1, keyspace-1)
	return func() string { return fmt.Sprintf("key-%d", z.Uint64()) }
}
