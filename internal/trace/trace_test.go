package trace

import (
	"testing"
	"time"
)

func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.Window = 10 * time.Minute
	cfg.JobsPerTenant = 40
	return cfg
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(smallConfig(), 42)
	b := Generate(smallConfig(), 42)
	if len(a.Jobs) != len(b.Jobs) {
		t.Fatalf("job counts differ: %d vs %d", len(a.Jobs), len(b.Jobs))
	}
	for i := range a.Jobs {
		if a.Jobs[i].ID != b.Jobs[i].ID || a.Jobs[i].TotalBytes() != b.Jobs[i].TotalBytes() {
			t.Fatalf("job %d differs", i)
		}
	}
	c := Generate(smallConfig(), 43)
	if len(c.Jobs) == len(a.Jobs) && len(a.Jobs) > 0 &&
		c.Jobs[0].TotalBytes() == a.Jobs[0].TotalBytes() {
		t.Error("different seeds produced identical traces")
	}
}

// TestGenerateTenantStreamsIndependent checks that each tenant draws
// from its own seeded stream: growing the tenant count must not
// perturb the jobs of the tenants that were already there. (With a
// single shared RNG, tenant k's jobs depended on how many draws
// tenants 0..k-1 happened to consume.)
func TestGenerateTenantStreamsIndependent(t *testing.T) {
	small := smallConfig()
	small.Tenants = 2
	big := smallConfig()
	big.Tenants = 6
	a := Generate(small, 42)
	b := Generate(big, 42)
	for tenant := 0; tenant < small.Tenants; tenant++ {
		ja, jb := a.TenantJobs(tenant), b.TenantJobs(tenant)
		if len(ja) != len(jb) {
			t.Fatalf("tenant %d: %d jobs with 2 tenants, %d with 6", tenant, len(ja), len(jb))
		}
		for i := range ja {
			if ja[i].ID != jb[i].ID || ja[i].Arrival != jb[i].Arrival ||
				ja[i].TotalBytes() != jb[i].TotalBytes() {
				t.Fatalf("tenant %d job %d differs across tenant counts", tenant, i)
			}
		}
	}
	// And distinct tenants must not mirror each other's stream.
	j0, j1 := b.TenantJobs(0), b.TenantJobs(1)
	if len(j0) == len(j1) && len(j0) > 0 && j0[0].Arrival == j1[0].Arrival &&
		j0[0].TotalBytes() == j1[0].TotalBytes() {
		t.Error("tenants 0 and 1 generated identical streams")
	}
}

func TestJobShape(t *testing.T) {
	cfg := smallConfig()
	tr := Generate(cfg, 1)
	if len(tr.Jobs) == 0 {
		t.Fatal("no jobs generated")
	}
	for _, j := range tr.Jobs {
		if j.Tenant < 0 || j.Tenant >= cfg.Tenants {
			t.Fatalf("job %s tenant %d out of range", j.ID, j.Tenant)
		}
		if j.Arrival < 0 || j.Arrival >= cfg.Window {
			t.Fatalf("job %s arrival %v out of window", j.ID, j.Arrival)
		}
		if len(j.Stages) < cfg.MinStages || len(j.Stages) > cfg.MaxStages {
			t.Fatalf("job %s has %d stages", j.ID, len(j.Stages))
		}
		for _, s := range j.Stages {
			if s.Tasks < cfg.MinTasks || s.Tasks > cfg.MaxTasks {
				t.Fatalf("stage task count %d out of range", s.Tasks)
			}
			if s.Bytes < 1024 {
				t.Fatalf("stage bytes %d below floor", s.Bytes)
			}
			if s.Duration <= 0 {
				t.Fatalf("non-positive stage duration")
			}
		}
	}
}

func TestStageStart(t *testing.T) {
	j := Job{Stages: []Stage{
		{Duration: time.Second},
		{Duration: 2 * time.Second},
		{Duration: 3 * time.Second},
	}}
	if j.StageStart(0) != 0 || j.StageStart(1) != time.Second || j.StageStart(2) != 3*time.Second {
		t.Errorf("stage starts = %v, %v, %v", j.StageStart(0), j.StageStart(1), j.StageStart(2))
	}
	if j.Duration() != 6*time.Second {
		t.Errorf("duration = %v", j.Duration())
	}
}

// TestPeakToAverage checks the Fig. 1 reproduction target: tenants see
// peak/average ratios well above what uniform provisioning assumes.
func TestPeakToAverage(t *testing.T) {
	tr := Generate(DefaultConfig(), 7)
	highRatio := 0
	for tenant := 0; tenant < tr.Tenants; tenant++ {
		ratio := tr.PeakToAverage(tenant, 30*time.Second)
		if ratio > 5 {
			highRatio++
		}
		t.Logf("tenant %d peak/avg = %.1f", tenant, ratio)
	}
	if highRatio == 0 {
		t.Error("no tenant shows bursty (>5x peak/avg) intermediate data; generator lost the paper's shape")
	}
}

func TestAliveBytesWindow(t *testing.T) {
	// One job, two stages: stage0 data lives through stage1's end;
	// stage1 data lives from stage1 start to job end.
	tr := &Trace{
		Tenants: 1,
		Window:  time.Minute,
		Jobs: []Job{{
			ID: "j", Tenant: 0, Arrival: 10 * time.Second,
			Stages: []Stage{
				{Index: 0, Duration: 10 * time.Second, Bytes: 100},
				{Index: 1, Duration: 10 * time.Second, Bytes: 7},
			},
		}},
	}
	cases := []struct {
		at   time.Duration
		want int64
	}{
		{5 * time.Second, 0},    // before arrival
		{15 * time.Second, 100}, // stage0 running
		{25 * time.Second, 107}, // stage1 running; stage0 data still alive
		{30 * time.Second, 0},   // job done
		{45 * time.Second, 0},   // long after
	}
	for _, c := range cases {
		if got := tr.AliveBytes(0, c.at); got != c.want {
			t.Errorf("AliveBytes(%v) = %d, want %d", c.at, got, c.want)
		}
	}
}

func TestSeriesAndTotal(t *testing.T) {
	tr := Generate(smallConfig(), 5)
	s := tr.Series(0, 30*time.Second)
	if len(s.Points) == 0 {
		t.Fatal("empty series")
	}
	total := tr.TotalSeries(30 * time.Second)
	// The total at each sample is the sum of the tenants.
	for i := range total.Points {
		var sum float64
		for tenant := 0; tenant < tr.Tenants; tenant++ {
			ts := tr.Series(tenant, 30*time.Second)
			sum += ts.Points[i].V
		}
		if total.Points[i].V != sum {
			t.Fatalf("total[%d] = %v, want %v", i, total.Points[i].V, sum)
		}
	}
}

func TestTenantJobs(t *testing.T) {
	tr := Generate(smallConfig(), 5)
	count := 0
	for tenant := 0; tenant < tr.Tenants; tenant++ {
		jobs := tr.TenantJobs(tenant)
		count += len(jobs)
		for i := 1; i < len(jobs); i++ {
			if jobs[i].Arrival < jobs[i-1].Arrival {
				t.Fatal("jobs out of arrival order")
			}
		}
	}
	if count != len(tr.Jobs) {
		t.Errorf("tenant jobs sum to %d, trace has %d", count, len(tr.Jobs))
	}
}

func TestZipfKeysSkewed(t *testing.T) {
	next := ZipfKeys(1, 1.2, 1000)
	counts := map[string]int{}
	for i := 0; i < 10000; i++ {
		counts[next()]++
	}
	// Zipf: the most popular key should dominate.
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if max < 1000 {
		t.Errorf("hottest key only %d/10000 hits; not Zipf-skewed", max)
	}
	// Deterministic for same seed.
	a, b := ZipfKeys(9, 1.2, 100), ZipfKeys(9, 1.2, 100)
	for i := 0; i < 100; i++ {
		if a() != b() {
			t.Fatal("ZipfKeys not deterministic")
		}
	}
}
