package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"
	"time"
)

// CSV import/export. Users with access to a real production trace (the
// Snowflake dataset the paper replays, or their own) can convert it to
// this schema and feed it to every trace-driven experiment in place of
// the synthetic generator; conversely, generated traces export for
// inspection or external tooling.
//
// Schema, one row per stage:
//
//	job_id,tenant,arrival_ms,stage,tasks,duration_ms,bytes

// csvHeader is the expected first row.
var csvHeader = []string{"job_id", "tenant", "arrival_ms", "stage", "tasks", "duration_ms", "bytes"}

// WriteCSV serializes the trace.
func (tr *Trace) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return err
	}
	for _, j := range tr.Jobs {
		for _, s := range j.Stages {
			row := []string{
				j.ID,
				strconv.Itoa(j.Tenant),
				strconv.FormatInt(j.Arrival.Milliseconds(), 10),
				strconv.Itoa(s.Index),
				strconv.Itoa(s.Tasks),
				strconv.FormatInt(s.Duration.Milliseconds(), 10),
				strconv.FormatInt(s.Bytes, 10),
			}
			if err := cw.Write(row); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a trace. Stages of a job may appear in any order;
// they are sorted by stage index. The window is inferred as the last
// arrival plus one stage duration.
func ReadCSV(r io.Reader) (*Trace, error) {
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("trace: read csv header: %w", err)
	}
	if len(header) != len(csvHeader) {
		return nil, fmt.Errorf("trace: csv header has %d columns, want %d", len(header), len(csvHeader))
	}
	for i, col := range csvHeader {
		if header[i] != col {
			return nil, fmt.Errorf("trace: csv column %d is %q, want %q", i, header[i], col)
		}
	}

	jobs := make(map[string]*Job)
	var order []string
	maxTenant := 0
	for line := 2; ; line++ {
		row, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("trace: csv line %d: %w", line, err)
		}
		tenant, err1 := strconv.Atoi(row[1])
		arrivalMS, err2 := strconv.ParseInt(row[2], 10, 64)
		stage, err3 := strconv.Atoi(row[3])
		tasks, err4 := strconv.Atoi(row[4])
		durMS, err5 := strconv.ParseInt(row[5], 10, 64)
		bytes, err6 := strconv.ParseInt(row[6], 10, 64)
		for _, e := range []error{err1, err2, err3, err4, err5, err6} {
			if e != nil {
				return nil, fmt.Errorf("trace: csv line %d: %w", line, e)
			}
		}
		if bytes < 0 || tasks <= 0 || durMS <= 0 || tenant < 0 || stage < 0 {
			return nil, fmt.Errorf("trace: csv line %d: out-of-range field", line)
		}
		j, ok := jobs[row[0]]
		if !ok {
			j = &Job{
				ID:      row[0],
				Tenant:  tenant,
				Arrival: time.Duration(arrivalMS) * time.Millisecond,
			}
			jobs[row[0]] = j
			order = append(order, row[0])
		}
		j.Stages = append(j.Stages, Stage{
			Index:    stage,
			Tasks:    tasks,
			Duration: time.Duration(durMS) * time.Millisecond,
			Bytes:    bytes,
		})
		if tenant > maxTenant {
			maxTenant = tenant
		}
	}
	tr := &Trace{Tenants: maxTenant + 1}
	for _, id := range order {
		j := jobs[id]
		sort.Slice(j.Stages, func(a, b int) bool { return j.Stages[a].Index < j.Stages[b].Index })
		for i, s := range j.Stages {
			if s.Index != i {
				return nil, fmt.Errorf("trace: job %q has non-contiguous stage indices", id)
			}
		}
		tr.Jobs = append(tr.Jobs, *j)
		if end := j.Arrival + j.Duration(); end > tr.Window {
			tr.Window = end
		}
	}
	return tr, nil
}
