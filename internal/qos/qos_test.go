package qos

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"jiffy/internal/clock"
	"jiffy/internal/core"
)

func vclock() *clock.Virtual {
	return clock.NewVirtual(time.Unix(0, 0))
}

// admit is a test helper that runs Admit and immediately releases.
func admit(t *testing.T, g *Gate, tenant string, ops, bytes int64) error {
	t.Helper()
	release, err := g.Admit(context.Background(), tenant, ops, bytes)
	if release != nil {
		release()
	}
	return err
}

func TestInactiveGateIsFree(t *testing.T) {
	g := NewGate(Options{Clock: vclock()})
	if g.Active() {
		t.Fatal("gate with no quotas and no cap reports active")
	}
	release, err := g.Admit(context.Background(), "t", 1, 1<<30)
	if err != nil || release != nil {
		t.Fatalf("inactive gate: release non-nil=%v err=%v, want nil,nil", release != nil, err)
	}
	if n := len(g.Stats()); n != 0 {
		t.Fatalf("inactive gate recorded %d tenants", n)
	}
}

func TestGateDeactivatesWhenLastQuotaCleared(t *testing.T) {
	g := NewGate(Options{Clock: vclock()})
	g.SetQuota("a", core.Quota{OpsPerSec: 10})
	if !g.Active() {
		t.Fatal("gate inactive after SetQuota")
	}
	g.SetQuota("a", core.Quota{})
	if g.Active() {
		t.Fatal("gate still active after last quota cleared")
	}
}

// TestNoAdmissionAboveRate is the core token-bucket property: over a
// long virtual window a tenant can never be admitted for more than
// rate × time + burst operations, no matter how hard it hammers.
func TestNoAdmissionAboveRate(t *testing.T) {
	clk := vclock()
	g := NewGate(Options{Clock: clk})
	const rate = 100.0
	g.SetQuota("t", core.Quota{OpsPerSec: rate})

	admitted, throttled := 0, 0
	const seconds = 10
	for s := 0; s < seconds; s++ {
		// 50 attempts per 10ms tick: 5000/sec offered against 100/sec.
		for tick := 0; tick < 100; tick++ {
			for i := 0; i < 50; i++ {
				if err := admit(t, g, "t", 1, 0); err != nil {
					if !errors.Is(err, core.ErrQuotaExceeded) {
						t.Fatalf("unexpected error type: %v", err)
					}
					throttled++
				} else {
					admitted++
				}
			}
			clk.Advance(10 * time.Millisecond)
		}
	}
	// Budget: burst (one second of rate) + rate × window.
	budget := int(rate*seconds + rate)
	if admitted > budget {
		t.Fatalf("admitted %d ops, budget %d", admitted, budget)
	}
	if throttled == 0 {
		t.Fatal("a 50x-over-quota tenant was never throttled")
	}
	// And the refusals must all be accounted for in the stats.
	st := g.Stats()
	if len(st) != 1 || st[0].Admitted != int64(admitted) || st[0].Throttled != int64(throttled) {
		t.Fatalf("stats %+v do not match admitted=%d throttled=%d", st, admitted, throttled)
	}
}

// TestFullAdmissionBelowRate is the dual property: a tenant offering
// less than its rate is never refused.
func TestFullAdmissionBelowRate(t *testing.T) {
	clk := vclock()
	g := NewGate(Options{Clock: clk})
	g.SetQuota("t", core.Quota{OpsPerSec: 100})
	for i := 0; i < 1000; i++ {
		// 50/sec offered against 100/sec allowed.
		if err := admit(t, g, "t", 1, 0); err != nil {
			t.Fatalf("op %d refused below rate: %v", i, err)
		}
		clk.Advance(20 * time.Millisecond)
	}
}

func TestBytesPerSecEnforced(t *testing.T) {
	clk := vclock()
	g := NewGate(Options{Clock: clk})
	g.SetQuota("t", core.Quota{BytesPerSec: 1 << 20}) // 1 MiB/s
	var admitted int64
	for i := 0; i < 100; i++ {
		if err := admit(t, g, "t", 1, 256<<10); err == nil {
			admitted += 256 << 10
		}
		clk.Advance(10 * time.Millisecond)
	}
	// ~1s elapsed: burst (1MiB) + 1s of rate (1MiB) is the ceiling.
	if admitted > 2<<20 {
		t.Fatalf("admitted %d bytes in ~1s against 1MiB/s", admitted)
	}
	if admitted == 0 {
		t.Fatal("nothing admitted at all")
	}
}

func TestThrottleCarriesRetryAfter(t *testing.T) {
	clk := vclock()
	g := NewGate(Options{Clock: clk})
	g.SetQuota("t", core.Quota{OpsPerSec: 10})
	// Drain the burst.
	for {
		if err := admit(t, g, "t", 1, 0); err != nil {
			var te *core.ThrottleError
			if !errors.As(err, &te) {
				t.Fatalf("refusal is %T, want *core.ThrottleError", err)
			}
			if te.Tenant != "t" {
				t.Fatalf("throttle names tenant %q", te.Tenant)
			}
			if te.RetryAfter <= 0 || te.RetryAfter > time.Second {
				t.Fatalf("retry-after %v outside (0, 1s] for a 1-op deficit at 10/s", te.RetryAfter)
			}
			if got := core.RetryAfterOf(err); got != te.RetryAfter {
				t.Fatalf("RetryAfterOf = %v, want %v", got, te.RetryAfter)
			}
			return
		}
	}
}

func TestUnquotedTenantUnlimitedWithoutCap(t *testing.T) {
	clk := vclock()
	g := NewGate(Options{Clock: clk})
	g.SetQuota("limited", core.Quota{OpsPerSec: 1})
	for i := 0; i < 10000; i++ {
		if err := admit(t, g, "free", 1, 1<<20); err != nil {
			t.Fatalf("unquoted tenant refused: %v", err)
		}
	}
}

// TestDRRNoStarvationUnderSaturation: with the concurrency bound
// saturated by a greedy tenant, a modest tenant's queued ops still get
// served — the DRR ring guarantees every backlogged tenant a turn.
func TestDRRNoStarvationUnderSaturation(t *testing.T) {
	g := NewGate(Options{Clock: vclock(), Concurrency: 2, MaxWait: time.Second})
	ctx := context.Background()

	// Fill both slots and keep them busy.
	rel1, err := g.Admit(ctx, "greedy", 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	rel2, err := g.Admit(ctx, "greedy", 1, 0)
	if err != nil {
		t.Fatal(err)
	}

	// Park a deep greedy backlog and one modest op behind the full gate.
	var wg sync.WaitGroup
	var modestServed atomic.Bool
	greedyDone := make(chan struct{}, 64)
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rel, err := g.Admit(ctx, "greedy", 1, 0)
			if err == nil {
				greedyDone <- struct{}{}
				rel()
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		rel, err := g.Admit(ctx, "modest", 1, 0)
		if err == nil {
			modestServed.Store(true)
			rel()
		}
	}()

	// Let the waiters park, then free the slots; dispatch cascades as
	// each granted op releases.
	time.Sleep(50 * time.Millisecond)
	rel1()
	rel2()
	wg.Wait()

	if !modestServed.Load() {
		t.Fatal("modest tenant starved behind greedy backlog")
	}
}

// TestDRRWeightedShares: two saturating tenants with 3:1 weights should
// be granted roughly 3:1 service.
func TestDRRWeightedShares(t *testing.T) {
	g := NewGate(Options{Clock: vclock(), Concurrency: 1, MaxWait: 5 * time.Second})
	g.SetQuota("heavy", core.Quota{Weight: 3})
	g.SetQuota("light", core.Quota{Weight: 1})
	ctx := context.Background()

	hold, err := g.Admit(ctx, "seed", 1, 0)
	if err != nil {
		t.Fatal(err)
	}

	const perTenant = 40
	var wg sync.WaitGroup
	for _, tenant := range []string{"heavy", "light"} {
		for i := 0; i < perTenant; i++ {
			wg.Add(1)
			go func(name string) {
				defer wg.Done()
				rel, err := g.Admit(ctx, name, 1, 0)
				if err == nil {
					rel()
				}
			}(tenant)
		}
	}
	time.Sleep(50 * time.Millisecond) // let all waiters park
	hold()
	wg.Wait()

	var heavy, light int64
	for _, st := range g.Stats() {
		switch st.Tenant {
		case "heavy":
			heavy = st.Admitted
		case "light":
			light = st.Admitted
		}
	}
	if heavy != perTenant || light != perTenant {
		t.Fatalf("with a generous MaxWait all ops should be served: heavy=%d light=%d", heavy, light)
	}
}

// TestQueueTimeoutRefundsBucket: an op that times out in the queue must
// refund its bucket charge — otherwise a saturated server would also
// burn the tenant's rate budget for work that never ran.
func TestQueueTimeoutRefundsBucket(t *testing.T) {
	clk := vclock()
	g := NewGate(Options{Clock: clk, Concurrency: 1, MaxWait: 10 * time.Millisecond})
	g.SetQuota("t", core.Quota{OpsPerSec: 10})
	ctx := context.Background()

	hold, err := g.Admit(ctx, "t", 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Burst is 10 tokens; one is held. The next 9 queue and time out,
	// refunding their charges.
	for i := 0; i < 9; i++ {
		_, err := g.Admit(ctx, "t", 1, 0)
		if err == nil {
			t.Fatal("second op admitted past a held concurrency slot of 1")
		}
		if !errors.Is(err, core.ErrQuotaExceeded) {
			t.Fatalf("queue timeout surfaced as %v", err)
		}
	}
	hold()
	// All 9 charges were refunded: 9 tokens remain, so 9 ops admit
	// without any clock advance.
	for i := 0; i < 9; i++ {
		if err := admit(t, g, "t", 1, 0); err != nil {
			t.Fatalf("op %d refused after refunds: %v", i, err)
		}
	}
}

func TestQueueCancellation(t *testing.T) {
	g := NewGate(Options{Clock: vclock(), Concurrency: 1, MaxWait: time.Minute})
	hold, err := g.Admit(context.Background(), "t", 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer hold()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := g.Admit(ctx, "t", 1, 0)
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("canceled waiter returned %v", err)
		}
	case <-time.After(time.Second):
		t.Fatal("canceled waiter never returned")
	}
}

func TestReleaseIdempotent(t *testing.T) {
	g := NewGate(Options{Clock: vclock(), Concurrency: 1})
	rel, err := g.Admit(context.Background(), "t", 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	rel()
	rel() // double release must not free a second slot
	rel2, err := g.Admit(context.Background(), "t", 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer rel2()
	// With cap 1 and one slot held, a fresh waiter must queue (and time
	// out), not sail through on a double-freed slot.
	if _, err := g.Admit(context.Background(), "t", 1, 0); err == nil {
		t.Fatal("double release freed a phantom concurrency slot")
	}
}

func TestOversizedOpEventuallyGranted(t *testing.T) {
	g := NewGate(Options{Clock: vclock(), Concurrency: 1, MaxWait: 5 * time.Second})
	hold, err := g.Admit(context.Background(), "t", 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		// Cost = 1 + 10MiB/4KiB = 2561, far past maxDeficit (128).
		rel, err := g.Admit(context.Background(), "t", 1, 10<<20)
		if err == nil {
			rel()
		}
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	hold()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("oversized op refused: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("oversized op starved in the queue")
	}
}
