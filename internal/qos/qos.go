// Package qos implements server-side multi-tenant admission control:
// per-tenant token buckets enforcing the rate dimensions of core.Quota
// (ops/sec, bytes/sec) plus deficit-round-robin (DRR) scheduling of a
// bounded server concurrency across tenants. The hierarchy (§3 of the
// paper) promises per-tenant isolation; this package is the mechanism
// that makes one tenant's burst unable to starve the others on the
// data-plane hot path.
//
// Admission is two-staged. First the tenant's own token buckets are
// charged: a tenant over its registered rate is refused immediately
// with a *core.ThrottleError carrying a retry-after estimate. Second,
// when the gate is configured with a concurrency bound and all slots
// are busy, the op parks in its tenant's FIFO queue; queues are served
// in DRR order (each round a tenant's deficit grows by quantum ×
// weight and ops are granted while the deficit covers their cost), so
// a backlogged tenant cannot monopolize the server. An op that waits
// longer than the configured bound is refused — with its bucket charge
// refunded — rather than silently parked forever.
//
// Refills are computed against an injected clock so deterministic
// virtual-clock soaks exercise the same code as production; queue
// waits are bounded in wall time, because nothing advances a virtual
// clock while workers block.
//
// A gate with no registered quotas and no concurrency bound is
// inactive and its Admit path is a single atomic load — existing
// single-tenant deployments pay nothing.
package qos

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"jiffy/internal/clock"
	"jiffy/internal/core"
)

// costUnit is the byte span that costs one DRR unit on top of the
// per-op unit, so large transfers consume proportionally more of a
// tenant's turn.
const costUnit = 4096

// quantum is the base deficit added per DRR round for weight 1.
const quantum = 16

// Options configures a Gate.
type Options struct {
	// Clock drives token-bucket refill (defaults to the wall clock).
	Clock clock.Clock
	// Concurrency bounds simultaneously admitted ops; 0 disables
	// capacity scheduling (buckets only).
	Concurrency int
	// MaxWait bounds the queue wait before an op is throttled; 0 means
	// core.DefaultQoSMaxWait.
	MaxWait time.Duration
}

// Gate is one memory server's admission controller.
type Gate struct {
	clk     clock.Clock
	cap     int
	maxWait time.Duration

	// active is false until a quota is registered (or a concurrency
	// bound is configured); the inactive fast path is one atomic load.
	active atomic.Bool

	mu       sync.Mutex
	tenants  map[string]*tenantState
	ring     []*tenantState // tenants with queued waiters, DRR order
	ringIdx  int
	inflight int
}

// tenantState is the per-tenant admission state.
type tenantState struct {
	name    string
	quota   core.Quota
	hasQ    bool
	ops     bucket
	bytes   bucket
	deficit int64
	waiters []*waiter
	inRing  bool

	// Stats, guarded by the gate mutex.
	admitted      int64
	throttled     int64
	admittedBytes int64
}

type waiter struct {
	cost    int64
	ops     int64
	bytes   int64
	granted chan struct{}
	done    bool // granted or canceled; guarded by the gate mutex
}

// bucket is a token bucket refilled against the gate clock. rate <= 0
// means unlimited.
type bucket struct {
	rate   float64
	burst  float64
	tokens float64
	last   time.Time
}

func (b *bucket) refill(now time.Time) {
	if b.rate <= 0 {
		return
	}
	if b.last.IsZero() {
		b.tokens = b.burst
		b.last = now
		return
	}
	if dt := now.Sub(b.last); dt > 0 {
		b.tokens += b.rate * dt.Seconds()
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
		b.last = now
	}
}

// wait estimates how long until n tokens accumulate.
func (b *bucket) wait(n float64) time.Duration {
	if b.rate <= 0 || b.tokens >= n {
		return 0
	}
	return time.Duration((n - b.tokens) / b.rate * float64(time.Second))
}

// NewGate builds a gate. A zero Options gate is inactive until the
// first SetQuota.
func NewGate(opts Options) *Gate {
	if opts.Clock == nil {
		opts.Clock = clock.Real{}
	}
	if opts.MaxWait <= 0 {
		opts.MaxWait = core.DefaultQoSMaxWait
	}
	g := &Gate{
		clk:     opts.Clock,
		cap:     opts.Concurrency,
		maxWait: opts.MaxWait,
		tenants: make(map[string]*tenantState),
	}
	if g.cap > 0 {
		g.active.Store(true)
	}
	return g
}

// SetQuota installs (or replaces) a tenant's quota. A zero quota
// removes rate enforcement for the tenant but keeps its stats; the
// gate deactivates again when no quota remains and no concurrency
// bound is configured, restoring the single-atomic-load fast path.
func (g *Gate) SetQuota(tenant string, q core.Quota) {
	g.mu.Lock()
	ts := g.tenantLocked(tenant)
	ts.quota = q
	ts.hasQ = !q.IsZero()
	ts.ops = bucket{rate: q.OpsPerSec, burst: burstFor(q.OpsPerSec, 1)}
	ts.bytes = bucket{rate: q.BytesPerSec, burst: burstFor(q.BytesPerSec, costUnit)}
	active := g.cap > 0
	if !active {
		for _, t := range g.tenants {
			if t.hasQ {
				active = true
				break
			}
		}
	}
	g.active.Store(active)
	g.mu.Unlock()
}

// burstFor sizes a bucket at one second of rate, floored at min so a
// single op always fits.
func burstFor(rate, min float64) float64 {
	if rate <= 0 {
		return 0
	}
	if rate < min {
		return min
	}
	return rate
}

// Quota returns the tenant's registered quota (zero when none).
func (g *Gate) Quota(tenant string) core.Quota {
	g.mu.Lock()
	defer g.mu.Unlock()
	if ts, ok := g.tenants[tenant]; ok {
		return ts.quota
	}
	return core.Quota{}
}

func (g *Gate) tenantLocked(name string) *tenantState {
	ts, ok := g.tenants[name]
	if !ok {
		ts = &tenantState{name: name}
		g.tenants[name] = ts
	}
	return ts
}

// Admit charges admission for ops operations totalling bytes ingress
// bytes on behalf of tenant. On success it returns a release func the
// caller MUST call once the work completes (it frees the concurrency
// slot and dispatches queued waiters). On refusal it returns a
// *core.ThrottleError. ctx cancellation while queued returns ctx.Err.
func (g *Gate) Admit(ctx context.Context, tenant string, ops, bytes int64) (func(), error) {
	if !g.active.Load() {
		return nil, nil
	}
	if ops <= 0 {
		ops = 1
	}

	g.mu.Lock()
	ts := g.tenantLocked(tenant)
	now := g.clk.Now()
	if ts.hasQ {
		ts.ops.refill(now)
		ts.bytes.refill(now)
		opsNeed, bytesNeed := float64(ops), float64(bytes)
		if (ts.ops.rate > 0 && ts.ops.tokens < opsNeed) ||
			(ts.bytes.rate > 0 && ts.bytes.tokens < bytesNeed) {
			ts.throttled += ops
			ra := ts.ops.wait(opsNeed)
			if bw := ts.bytes.wait(bytesNeed); bw > ra {
				ra = bw
			}
			g.mu.Unlock()
			return nil, &core.ThrottleError{Tenant: tenant, RetryAfter: ra}
		}
		if ts.ops.rate > 0 {
			ts.ops.tokens -= opsNeed
		}
		if ts.bytes.rate > 0 {
			ts.bytes.tokens -= bytesNeed
		}
	}

	if g.cap <= 0 {
		ts.admitted += ops
		ts.admittedBytes += bytes
		g.mu.Unlock()
		return func() {}, nil
	}

	cost := ops + bytes/costUnit
	if g.inflight < g.cap && len(g.ring) == 0 {
		g.inflight++
		ts.admitted += ops
		ts.admittedBytes += bytes
		g.mu.Unlock()
		return g.releaseFunc(), nil
	}

	// Saturated: park in the tenant's FIFO queue and wait for a DRR
	// grant, a wall-clock timeout, or caller cancellation.
	w := &waiter{cost: cost, ops: ops, bytes: bytes, granted: make(chan struct{})}
	ts.waiters = append(ts.waiters, w)
	if !ts.inRing {
		ts.inRing = true
		g.ring = append(g.ring, ts)
	}
	g.mu.Unlock()

	timer := time.NewTimer(g.maxWait)
	defer timer.Stop()
	select {
	case <-w.granted:
		return g.releaseFunc(), nil
	case <-timer.C:
	case <-ctx.Done():
	}

	g.mu.Lock()
	if w.done {
		// The grant raced the timeout/cancel and won: the slot is ours.
		g.mu.Unlock()
		return g.releaseFunc(), nil
	}
	w.done = true // dispatch will skip and drop this waiter
	// Refund the bucket charge: the op never ran.
	if ts.hasQ {
		if ts.ops.rate > 0 {
			ts.ops.tokens += float64(ops)
			if ts.ops.tokens > ts.ops.burst {
				ts.ops.tokens = ts.ops.burst
			}
		}
		if ts.bytes.rate > 0 {
			ts.bytes.tokens += float64(bytes)
			if ts.bytes.tokens > ts.bytes.burst {
				ts.bytes.tokens = ts.bytes.burst
			}
		}
	}
	ts.throttled += ops
	g.mu.Unlock()

	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return nil, &core.ThrottleError{Tenant: tenant, RetryAfter: g.maxWait}
}

// releaseFunc frees one concurrency slot exactly once and hands it to
// the next DRR grantee.
func (g *Gate) releaseFunc() func() {
	var once sync.Once
	return func() {
		once.Do(func() {
			g.mu.Lock()
			g.inflight--
			g.dispatchLocked()
			g.mu.Unlock()
		})
	}
}

// dispatchLocked grants queued waiters while capacity is free, in DRR
// order: each tenant visit tops its deficit up by quantum × weight and
// grants from its FIFO while the deficit covers the head's cost.
func (g *Gate) dispatchLocked() {
	for g.inflight < g.cap && len(g.ring) > 0 {
		if g.ringIdx >= len(g.ring) {
			g.ringIdx = 0
		}
		ts := g.ring[g.ringIdx]
		ts.deficit += int64(quantum * weightOf(ts.quota))
		for len(ts.waiters) > 0 && g.inflight < g.cap {
			w := ts.waiters[0]
			if w.done { // timed out or canceled; drop
				ts.waiters = ts.waiters[1:]
				continue
			}
			if w.cost > ts.deficit && ts.deficit < maxDeficit(ts) {
				break
			}
			// An op costlier than the deficit cap is granted once the
			// cap is reached (at zeroed deficit) instead of spinning.
			ts.waiters = ts.waiters[1:]
			ts.deficit -= w.cost
			if ts.deficit < 0 {
				ts.deficit = 0
			}
			w.done = true
			g.inflight++
			ts.admitted += w.ops
			ts.admittedBytes += w.bytes
			close(w.granted)
		}
		if len(ts.waiters) == 0 {
			// Empty queue leaves the ring and forfeits its deficit.
			ts.deficit = 0
			ts.inRing = false
			g.ring = append(g.ring[:g.ringIdx], g.ring[g.ringIdx+1:]...)
			continue
		}
		if g.inflight >= g.cap {
			return
		}
		g.ringIdx++
	}
}

// maxDeficit bounds accumulated deficit at several rounds' worth so an
// idle tenant cannot bank an unbounded burst allowance.
func maxDeficit(ts *tenantState) int64 {
	return int64(8 * quantum * weightOf(ts.quota))
}

func weightOf(q core.Quota) int {
	if q.Weight <= 0 {
		return 1
	}
	return q.Weight
}

// TenantStats is a snapshot of one tenant's admission counters.
type TenantStats struct {
	Tenant        string
	Admitted      int64
	Throttled     int64
	AdmittedBytes int64
	HasQuota      bool
}

// Stats snapshots every tenant the gate has seen, in map order.
func (g *Gate) Stats() []TenantStats {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]TenantStats, 0, len(g.tenants))
	for _, ts := range g.tenants {
		out = append(out, TenantStats{
			Tenant:        ts.name,
			Admitted:      ts.admitted,
			Throttled:     ts.throttled,
			AdmittedBytes: ts.admittedBytes,
			HasQuota:      ts.hasQ,
		})
	}
	return out
}

// Active reports whether admission control is engaged.
func (g *Gate) Active() bool { return g.active.Load() }
