// Package soak is the trace-driven multi-tenant soak harness: it
// replays the synthetic Snowflake-shaped workload (internal/trace) as
// many concurrent tenants in gold/silver/bronze QoS tiers against a
// real multi-server cluster, layers seeded wire faults plus a
// mid-soak server kill/repair and a live drain on top, and grades the
// run against per-tier SLOs (throughput, p99 latency), cross-tenant
// fairness (Jain's index), typed-throttle accounting, and zero
// acknowledged-write loss.
//
// Two modes share all of this code:
//
//   - short mode (CI): a seeded, virtual-clock run — token-bucket
//     refill and failure detection advance on the virtual clock, so
//     the admission schedule is deterministic and the whole soak
//     finishes in seconds under -race;
//   - wall mode (cmd/jiffy-soak -wall): the same engine against the
//     real clock with thousands of tenants, for hours-long burn-in.
package soak

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"jiffy"
	"jiffy/internal/blockstore"
	"jiffy/internal/client"
	"jiffy/internal/clock"
	"jiffy/internal/core"
	"jiffy/internal/faultinject"
	"jiffy/internal/proto"
	"jiffy/internal/trace"
)

// SLO is one tier's service-level objectives, asserted per tier over
// the well-behaved tenants (declared bursters are graded separately).
type SLO struct {
	// MinThroughput is the minimum achieved/entitled ops ratio, where a
	// tenant's entitlement each tick is its offered load capped by its
	// rate quota.
	MinThroughput float64
	// MaxP99 bounds the wall-clock p99 latency of successful ops.
	MaxP99 time.Duration
	// MinFairness bounds Jain's fairness index over the tenants'
	// satisfaction ratios.
	MinFairness float64
}

// TierSpec describes one QoS tier of tenants.
type TierSpec struct {
	Name    string
	Tenants int
	// Quota is registered per tenant with the controller (ops/sec and
	// bytes/sec reach the servers' admission gates; Weight sets the DRR
	// share).
	Quota core.Quota
	// BaseOpsPerTick is the tier's per-tenant offered load at trace
	// scale 1; the tenant's trace modulates it tick by tick.
	BaseOpsPerTick int
	// ValueBytes sizes each written value.
	ValueBytes int
	// BurstTenants marks the first N tenants of the tier as bursters,
	// offering BurstFactor× their trace-driven load — deliberately far
	// past quota to prove isolation.
	BurstTenants int
	BurstFactor  int
	SLO          SLO
}

// Config parameterizes a soak run.
type Config struct {
	Seed         int64
	Ticks        int
	TickDuration time.Duration
	Tiers        []TierSpec

	Servers         int
	Controllers     int
	BlocksPerServer int
	ChainLength     int
	// QoSConcurrency is each server's admitted-op concurrency bound
	// (engages the DRR scheduler); 0 leaves capacity scheduling off.
	QoSConcurrency int
	// Workers is the client-side op executor pool size.
	Workers int

	// KillAtTick kills one memory server at the start of that tick and
	// runs one deterministic detect-and-repair round at its end
	// (<= 0 disables).
	KillAtTick int
	// DrainAtTick starts a live DrainServer of a second server at that
	// tick, concurrent with the offered load (<= 0 disables).
	DrainAtTick int
	// CtrlKillAtTick kills the lead controller at the start of that
	// tick and promotes the first standby before the tick's load is
	// offered. Unlike the server kill there is NO tolerance window: the
	// handoff must be invisible — every op during and after it either
	// succeeds within the normal retry budget or counts as an
	// unexpected error. Requires Controllers >= 2 (<= 0 disables).
	CtrlKillAtTick int

	// SlowServerAtTick turns one memory server gray at the start of that
	// tick: the injector delays every byte toward it while the harness
	// files a Degraded failure report, which the controller verifies by
	// probe and answers with probation — not death. (The server-side
	// fail-slow detector is exercised by the real-clock chaos suite;
	// under the soak's virtual clock a forward round trip measures as
	// zero.) Gray failure opens NO fault window: every op through the
	// slow window must still succeed, and the membership epoch must not
	// move — alive-but-slow never splices chains. At SlowHealAtTick the
	// rule is removed and recovery probes must lift the probation.
	// (<= 0 disables; requires SlowHealAtTick > SlowServerAtTick.)
	SlowServerAtTick int
	SlowHealAtTick   int

	// IdleTenants provisions a scale-to-zero cohort: tenants whose
	// dataset is written before the first tick and then never touched
	// during the load loop. With TierIdleAfter set, their blocks must
	// demote to the persist tier mid-run — the cohort's resident bytes
	// reach exactly zero — and rehydrate transparently when the harness
	// re-reads the cohort after the last tick, with zero client-visible
	// errors (<= 0 disables the cohort).
	IdleTenants int
	// TierIdleAfter enables idle-driven demotion on the cluster when
	// IdleTenants > 0. Demotion scans are driven by the harness once
	// per tick (TierScanPeriod stays 0), so the schedule is
	// deterministic under the virtual clock.
	TierIdleAfter time.Duration
	// IdleCheckAtTick is when the harness asserts the idle cohort's
	// resident bytes have reached zero (<= 0 disables the mid-run
	// check).
	IdleCheckAtTick int

	// Wall switches to the real clock: tick pacing and failure
	// detection happen in wall time.
	Wall bool
}

// DefaultShortConfig is the seeded CI soak: 48 tenants in three tiers
// (one bronze burster at 10× quota), four servers with 2-chains behind
// a three-member replicated controller group, a kill+repair, a leader
// kill + standby promotion, and a live drain mid-run, ~12s of virtual
// time.
func DefaultShortConfig() Config {
	return Config{
		Seed:             1,
		Ticks:            120,
		TickDuration:     100 * time.Millisecond,
		Servers:          4,
		Controllers:      3,
		BlocksPerServer:  256,
		ChainLength:      2,
		QoSConcurrency:   16,
		Workers:          16,
		SlowServerAtTick: 20,
		SlowHealAtTick:   35,
		KillAtTick:       45,
		CtrlKillAtTick:   60,
		DrainAtTick:      80,
		IdleTenants:      6,
		TierIdleAfter:    2 * time.Second,
		IdleCheckAtTick:  70,
		Tiers: []TierSpec{
			{
				Name: "gold", Tenants: 6, BaseOpsPerTick: 24, ValueBytes: 64,
				Quota: core.Quota{OpsPerSec: 600, BytesPerSec: 600 * 4096, Weight: 8},
				SLO:   SLO{MinThroughput: 0.85, MaxP99: 250 * time.Millisecond, MinFairness: 0.90},
			},
			{
				Name: "silver", Tenants: 12, BaseOpsPerTick: 10, ValueBytes: 64,
				Quota: core.Quota{OpsPerSec: 250, BytesPerSec: 250 * 4096, Weight: 4},
				SLO:   SLO{MinThroughput: 0.75, MaxP99: 350 * time.Millisecond, MinFairness: 0.85},
			},
			{
				Name: "bronze", Tenants: 30, BaseOpsPerTick: 4, ValueBytes: 64,
				BurstTenants: 1, BurstFactor: 10,
				Quota: core.Quota{OpsPerSec: 80, BytesPerSec: 80 * 4096, Weight: 1},
				SLO:   SLO{MinThroughput: 0.60, MaxP99: 500 * time.Millisecond, MinFairness: 0.80},
			},
		},
	}
}

// Scale multiplies every tier's tenant count (wall-mode fleets).
func (c Config) Scale(factor int) Config {
	if factor <= 1 {
		return c
	}
	tiers := make([]TierSpec, len(c.Tiers))
	copy(tiers, c.Tiers)
	for i := range tiers {
		tiers[i].Tenants *= factor
		tiers[i].BurstTenants *= factor
	}
	c.Tiers = tiers
	return c
}

// tenantRun is one tenant's live state.
type tenantRun struct {
	name  string
	tier  int
	burst bool
	kv    *client.KV
	tr    *trace.Trace
	mean  float64 // mean alive-bytes over the soak window

	mu        sync.Mutex
	acked     map[string]string
	ackedKeys []string
	offered   int64
	entitled  int64
	achieved  int64
	throttled int64
	tolerated int64 // conn-classified failures inside fault windows
	lat       []time.Duration
}

type engine struct {
	cfg     Config
	cluster *jiffy.Cluster
	vclock  *clock.Virtual
	inj     *faultinject.Injector
	c       *jiffy.Client
	tenants []*tenantRun
	idle    []*tenantRun // scale-to-zero cohort; offers no tick load
	logf    func(string, ...any)

	idleReaccessErrs int

	killedAddr     string
	killedIdx      int
	slowAddr       string
	slowEpoch      uint64
	ctrlKilledAddr string
	failoverGen    uint64
	drainAddr      string
	drainActive    atomic.Bool
	drainDone      chan error
	drained        int

	violations []string
	unexpected atomic.Int64
	firstErr   atomic.Value // string
}

// Run executes one soak and grades it. logf receives progress lines
// (pass t.Logf or log.Printf); nil discards them.
func Run(cfg Config, logf func(string, ...any)) (*Report, error) {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	if cfg.Ticks <= 0 || cfg.TickDuration <= 0 || len(cfg.Tiers) == 0 {
		return nil, fmt.Errorf("soak: config needs ticks, tick duration and tiers")
	}
	if cfg.SlowServerAtTick > 0 && cfg.SlowHealAtTick <= cfg.SlowServerAtTick {
		return nil, fmt.Errorf("soak: SlowServerAtTick needs SlowHealAtTick after it")
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 8
	}
	e := &engine{cfg: cfg, logf: logf, drainDone: make(chan error, 1)}
	if err := e.boot(); err != nil {
		return nil, err
	}
	defer e.cluster.Close()
	defer e.c.Close()

	if err := e.provisionTenants(); err != nil {
		return nil, err
	}
	if err := e.provisionIdleTenants(); err != nil {
		return nil, err
	}
	e.runTicks()
	e.finishDrain()
	e.liftQuotas()
	e.reaccessIdleCohort()
	lost := e.verifyAcked()
	rep := e.report(lost)
	e.checkMetrics(rep)
	rep.Violations = e.violations
	return rep, nil
}

// boot builds the faulted cluster and the shared client.
func (e *engine) boot() error {
	cfg := e.cfg
	e.inj = faultinject.New(cfg.Seed, nil)
	// PR 1 fault layer: seeded wire jitter on every send for the whole
	// soak — the QoS and repair paths must hold up on a lossy-ish wire,
	// not just a perfect in-process one.
	e.inj.AddRule(faultinject.Rule{
		Name: "wire-jitter", Match: "send:",
		Latency: 20 * time.Microsecond, Jitter: 80 * time.Microsecond,
	})

	ccfg := core.TestConfig()
	ccfg.LeaseDuration = time.Hour // leases are not under test here
	ccfg.RPCTimeout = 2 * time.Second
	ccfg.ChainLength = cfg.ChainLength
	ccfg.HeartbeatInterval = time.Second
	ccfg.SuspicionWindow = 5 * time.Second
	ccfg.QoSConcurrency = cfg.QoSConcurrency
	if cfg.IdleTenants > 0 && cfg.TierIdleAfter > 0 {
		ccfg.TierIdleAfter = cfg.TierIdleAfter
		ccfg.TierCooldown = cfg.TierIdleAfter / 2
		ccfg.TierScanPeriod = 0 // scans are harness-driven, once per tick
	}

	opts := jiffy.ClusterOptions{
		Config:          ccfg,
		Controllers:     cfg.Controllers,
		Servers:         cfg.Servers,
		BlocksPerServer: cfg.BlocksPerServer,
		DisableExpiry:   true,
		Dial:            e.inj.Dial,
	}
	if !cfg.Wall {
		e.vclock = clock.NewVirtual(time.Unix(0, 0))
		opts.Clock = e.vclock
	}
	cluster, err := jiffy.StartCluster(opts)
	if err != nil {
		return err
	}
	e.cluster = cluster
	// Throttles must surface fast: one honored retry-after wait, then
	// the typed error reaches the harness.
	c, err := cluster.Connect(context.Background(), client.WithRetryPolicy(client.RetryPolicy{
		Limit: 6, MaxBackoff: 2 * time.Millisecond,
		ThrottleLimit: 1, MaxThrottleWait: 2 * time.Millisecond,
	}))
	if err != nil {
		cluster.Close()
		return err
	}
	e.c = c
	return nil
}

// provisionTenants registers every tenant: a job, a rate quota on its
// root, one KV prefix, and a per-tenant trace stream driving its
// offered load.
func (e *engine) provisionTenants() error {
	ctx := context.Background()
	window := time.Duration(e.cfg.Ticks) * e.cfg.TickDuration
	tcfg := trace.Config{
		Tenants:           1,
		Window:            window,
		JobsPerTenant:     8,
		MeanStageBytes:    256 * 1024,
		SigmaLog:          1.2,
		MinStages:         1,
		MaxStages:         4,
		MinTasks:          1,
		MaxTasks:          8,
		MeanStageDuration: window / 10,
	}
	idx := 0
	for ti, tier := range e.cfg.Tiers {
		for k := 0; k < tier.Tenants; k++ {
			name := fmt.Sprintf("%s-%03d", tier.Name, k)
			if err := e.c.RegisterJob(ctx, core.JobID(name)); err != nil {
				return fmt.Errorf("soak: register %s: %w", name, err)
			}
			if err := e.c.SetQuota(ctx, core.Path(name), tier.Quota); err != nil {
				return fmt.Errorf("soak: quota %s: %w", name, err)
			}
			path := core.Path(name + "/kv")
			if _, _, err := e.c.CreatePrefix(ctx, path, nil, core.DSKV, 1, 0); err != nil {
				return fmt.Errorf("soak: create %s: %w", path, err)
			}
			kv, err := e.c.OpenKV(ctx, path)
			if err != nil {
				return fmt.Errorf("soak: open %s: %w", path, err)
			}
			tn := &tenantRun{
				name:  name,
				tier:  ti,
				burst: k < tier.BurstTenants,
				kv:    kv,
				tr:    trace.Generate(tcfg, e.cfg.Seed+int64(idx)*1000003),
				acked: make(map[string]string),
			}
			// Mean alive-bytes normalizes the trace into a load scale.
			var sum float64
			for t := 0; t < e.cfg.Ticks; t++ {
				sum += float64(tn.tr.AliveBytes(0, time.Duration(t)*e.cfg.TickDuration))
			}
			tn.mean = sum / float64(e.cfg.Ticks)
			e.tenants = append(e.tenants, tn)
			idx++
		}
	}
	e.logf("soak: provisioned %d tenants across %d tiers", len(e.tenants), len(e.cfg.Tiers))
	return nil
}

// provisionIdleTenants writes the scale-to-zero cohort's dataset up
// front. These tenants offer no load during the ticks, so their blocks
// go cold and must demote once TierIdleAfter lapses.
func (e *engine) provisionIdleTenants() error {
	ctx := context.Background()
	for k := 0; k < e.cfg.IdleTenants; k++ {
		name := fmt.Sprintf("idle-%03d", k)
		if err := e.c.RegisterJob(ctx, core.JobID(name)); err != nil {
			return fmt.Errorf("soak: register %s: %w", name, err)
		}
		path := core.Path(name + "/kv")
		if _, _, err := e.c.CreatePrefix(ctx, path, nil, core.DSKV, 1, 0); err != nil {
			return fmt.Errorf("soak: create %s: %w", path, err)
		}
		kv, err := e.c.OpenKV(ctx, path)
		if err != nil {
			return fmt.Errorf("soak: open %s: %w", path, err)
		}
		tn := &tenantRun{name: name, kv: kv, acked: make(map[string]string)}
		for i := 0; i < 48; i++ {
			key := fmt.Sprintf("cold-%04d", i)
			val := fmt.Sprintf("%s-%04d-", name, i) + strings.Repeat("z", 192)
			if err := kv.Put(ctx, key, []byte(val)); err != nil {
				return fmt.Errorf("soak: seed %s/%s: %w", name, key, err)
			}
			tn.acked[key] = val
		}
		e.idle = append(e.idle, tn)
	}
	if len(e.idle) > 0 {
		e.logf("soak: provisioned %d idle (scale-to-zero) tenants", len(e.idle))
	}
	return nil
}

// tierTick drives one demotion scan on every live server, standing in
// for the periodic tier worker (TierScanPeriod is 0 in soaks so the
// demotion schedule is deterministic).
func (e *engine) tierTick() {
	if e.cfg.IdleTenants <= 0 || e.cfg.TierIdleAfter <= 0 {
		return
	}
	for i, srv := range e.cluster.Servers {
		if e.killedAddr != "" && i == e.killedIdx {
			continue
		}
		if _, err := srv.TierTickNow(); err != nil {
			e.violations = append(e.violations, fmt.Sprintf("tier scan on server %d: %v", i, err))
		}
	}
}

// checkIdleCohort asserts scale-to-zero mid-run: every idle-cohort
// block on a live server is demoted to the persist tier, so the
// cohort's resident bytes are exactly zero.
func (e *engine) checkIdleCohort(tick int) {
	blocks, tiered := 0, 0
	resident := int64(0)
	for i, srv := range e.cluster.Servers {
		if e.killedAddr != "" && i == e.killedIdx {
			continue
		}
		for _, b := range srv.Store().List() {
			if !strings.HasPrefix(string(b.Path), "idle-") {
				continue
			}
			blocks++
			if b.TierState() == blockstore.TierTiered {
				tiered++
			} else {
				resident += int64(b.Partition.Bytes())
			}
		}
	}
	switch {
	case blocks == 0:
		e.violations = append(e.violations, "idle cohort hosts no blocks on live servers")
	case tiered != blocks || resident != 0:
		e.violations = append(e.violations, fmt.Sprintf(
			"idle cohort not at zero resident bytes at tick %d: %d bytes resident, %d/%d blocks tiered",
			tick, resident, tiered, blocks))
	default:
		e.logf("soak: idle cohort at zero resident bytes (tick %d, %d blocks tiered)", tick, tiered)
	}
}

// reaccessIdleCohort re-reads the scale-to-zero cohort after the last
// tick: every key must come back correct with zero client-visible
// errors — demotion is allowed to cost latency, never correctness.
func (e *engine) reaccessIdleCohort() {
	if len(e.idle) == 0 {
		return
	}
	errs := 0
	for _, tn := range e.idle {
		for key, want := range tn.acked {
			got, err := tn.kv.Get(context.Background(), key)
			if err != nil || string(got) != want {
				errs++
				if errs <= 5 {
					e.logf("soak: idle re-access %s/%s failed: %v", tn.name, key, err)
				}
			}
		}
	}
	e.idleReaccessErrs = errs
	if errs > 0 {
		e.violations = append(e.violations, fmt.Sprintf(
			"idle cohort re-access: %d client-visible errors", errs))
	} else {
		e.logf("soak: idle cohort re-accessed with zero errors")
	}
}

// loadScale maps the tenant's alive intermediate data at a tick to an
// offered-load multiplier in [0.5, 2.5] — the Fig. 1 burstiness shape,
// tamed so entitlements stay assertable.
func (tn *tenantRun) loadScale(at time.Duration) float64 {
	if tn.mean <= 0 {
		return 1
	}
	s := 0.5 + float64(tn.tr.AliveBytes(0, at))/(2*tn.mean)
	if s > 2.5 {
		s = 2.5
	}
	return s
}

// runTicks drives the main load loop.
func (e *engine) runTicks() {
	jobs := make(chan func(), e.cfg.Workers*4)
	var workers sync.WaitGroup
	for w := 0; w < e.cfg.Workers; w++ {
		workers.Add(1)
		go func() {
			defer workers.Done()
			for fn := range jobs {
				fn()
			}
		}()
	}

	tickSec := e.cfg.TickDuration.Seconds()
	for tick := 0; tick < e.cfg.Ticks; tick++ {
		if e.cfg.SlowServerAtTick > 0 && tick == e.cfg.SlowServerAtTick {
			e.slowServer(tick)
		}
		if e.cfg.SlowServerAtTick > 0 && tick == e.cfg.SlowHealAtTick {
			e.healSlowServer(tick)
		}
		if e.cfg.KillAtTick > 0 && tick == e.cfg.KillAtTick {
			e.kill()
		}
		if e.cfg.CtrlKillAtTick > 0 && tick == e.cfg.CtrlKillAtTick {
			e.killController(tick)
		}
		if e.cfg.DrainAtTick > 0 && tick == e.cfg.DrainAtTick {
			e.startDrain()
		}

		at := time.Duration(tick) * e.cfg.TickDuration
		var tickWG sync.WaitGroup
		for _, tn := range e.tenants {
			tier := &e.cfg.Tiers[tn.tier]
			offered := int(float64(tier.BaseOpsPerTick) * tn.loadScale(at))
			if offered < 1 {
				offered = 1
			}
			if tn.burst && tier.BurstFactor > 1 {
				offered *= tier.BurstFactor
			}
			entitled := offered
			if tier.Quota.OpsPerSec > 0 {
				if lim := int(tier.Quota.OpsPerSec * tickSec); lim < entitled {
					entitled = lim
				}
			}
			tn.mu.Lock()
			tn.offered += int64(offered)
			tn.entitled += int64(entitled)
			tn.mu.Unlock()
			for i := 0; i < offered; i++ {
				tn, tick, i := tn, tick, i
				tickWG.Add(1)
				jobs <- func() {
					defer tickWG.Done()
					e.doOp(tn, tick, i)
				}
			}
		}
		tickWG.Wait()

		if e.cfg.KillAtTick > 0 && tick == e.cfg.KillAtTick {
			e.repair()
		}
		e.advance(e.cfg.TickDuration)
		e.tierTick()
		if e.cfg.IdleCheckAtTick > 0 && tick+1 == e.cfg.IdleCheckAtTick {
			e.checkIdleCohort(tick + 1)
		}
		if (tick+1)%20 == 0 {
			e.logf("soak: tick %d/%d", tick+1, e.cfg.Ticks)
		}
	}
	close(jobs)
	workers.Wait()
}

// doOp runs one tenant op (3:1 put:get mix) and classifies the result.
func (e *engine) doOp(tn *tenantRun, tick, i int) {
	ctx := context.Background()
	tier := &e.cfg.Tiers[tn.tier]
	get := (tick*31+i)%4 == 3

	var err error
	var key, val string
	if get {
		tn.mu.Lock()
		if n := len(tn.ackedKeys); n > 0 {
			key = tn.ackedKeys[(tick*131+i*7)%n]
		}
		tn.mu.Unlock()
	}
	start := time.Now()
	if get && key != "" {
		_, err = tn.kv.Get(ctx, key)
	} else {
		key = fmt.Sprintf("%s-%04d-%05d", tn.name, tick, i)
		val = fmt.Sprintf("v%04d-%05d", tick, i)
		pad := tier.ValueBytes - len(val)
		if pad > 0 {
			val += string(make([]byte, pad))
		}
		err = tn.kv.Put(ctx, key, []byte(val))
		get = false
	}
	elapsed := time.Since(start)

	tn.mu.Lock()
	defer tn.mu.Unlock()
	switch {
	case err == nil:
		tn.achieved++
		tn.lat = append(tn.lat, elapsed)
		if !get {
			tn.acked[key] = val
			tn.ackedKeys = append(tn.ackedKeys, key)
		}
	case errors.Is(err, core.ErrQuotaExceeded):
		// The typed throttle: counted, never treated as a failure.
		tn.throttled++
	case e.faultWindow(tick):
		// A failure inside a declared fault window (kill or live drain):
		// severed sessions surface as closed pipes, resets or timeouts
		// depending on where the op was in flight. The op was never
		// acknowledged, which is exactly the contract — only acked writes
		// must survive.
		tn.tolerated++
	default:
		e.unexpected.Add(1)
		e.firstErr.CompareAndSwap(nil, fmt.Sprintf("tenant %s tick %d: %v", tn.name, tick, err))
	}
}

// faultWindow reports whether conn-level failures are expected at this
// tick: during the kill tick and its two successors (clients re-learn
// maps lazily), or while a drain is in flight.
func (e *engine) faultWindow(tick int) bool {
	if e.cfg.KillAtTick > 0 && tick >= e.cfg.KillAtTick && tick <= e.cfg.KillAtTick+2 {
		return true
	}
	return e.drainActive.Load()
}

// kill closes one memory server and severs its sessions; repair() runs
// at the end of the same tick.
func (e *engine) kill() {
	e.killedIdx = len(e.cluster.Servers) - 1
	victim := e.cluster.Servers[e.killedIdx]
	e.killedAddr = victim.Addr()
	victim.Close()
	e.inj.BreakConns(e.killedAddr)
	e.logf("soak: killed server %s at tick %d", e.killedAddr, e.cfg.KillAtTick)
}

// repair drives one deterministic detection round: clock past the
// suspicion window, survivors beat, one liveness scan declares the
// victim dead and repairs every chain synchronously.
func (e *engine) repair() {
	e.advance(5*time.Second + time.Second) // SuspicionWindow + HeartbeatInterval (see boot)
	for i, srv := range e.cluster.Servers {
		if i == e.killedIdx {
			continue
		}
		if err := srv.HeartbeatNow(); err != nil {
			e.violations = append(e.violations, fmt.Sprintf("heartbeat from survivor %d failed: %v", i, err))
		}
	}
	// The periodic liveness worker (also driven by the advanced clock)
	// may have raced us to the declaration; what matters is that some
	// scan declared the victim dead and repaired its chains.
	found := false
	for _, ctrl := range e.cluster.Controllers {
		ctrl.CheckLivenessNow()
		if ctrl.ServerDead(e.killedAddr) {
			found = true
		}
	}
	if !found {
		e.violations = append(e.violations, fmt.Sprintf("no controller declared %s dead", e.killedAddr))
	}
	e.logf("soak: repaired after killing %s", e.killedAddr)
}

// killController closes the lead controller mid-soak, severs its
// sessions, and promotes the first standby under a fenced generation —
// the control-plane failover, driven under full offered load. The
// promotion completes before this tick's ops are offered, and no fault
// window opens: servers and the shared client must re-home within
// their normal retry budgets with zero client-visible errors. The
// client's very next control call proves the re-home worked.
func (e *engine) killController(tick int) {
	if len(e.cluster.Controllers) < 2 {
		e.violations = append(e.violations,
			"controller kill configured but the group has no standby")
		return
	}
	leader := e.cluster.Controllers[0]
	e.ctrlKilledAddr = e.cluster.ControllerAddrs[0]
	leader.Close()
	e.inj.BreakConns(strings.TrimPrefix(e.ctrlKilledAddr, "mem://"))

	standby := e.cluster.Controllers[1]
	e.failoverGen = standby.PromoteNow()
	if e.failoverGen < 2 {
		e.violations = append(e.violations, fmt.Sprintf(
			"standby promotion returned generation %d, want >= 2", e.failoverGen))
	}
	role, err := e.c.ControllerRole(context.Background())
	switch {
	case err != nil:
		e.violations = append(e.violations, fmt.Sprintf(
			"client did not re-home across the controller handoff: %v", err))
	case !role.IsLeader || role.Leader != e.cluster.ControllerAddrs[1]:
		e.violations = append(e.violations, fmt.Sprintf(
			"post-handoff role = %+v, want leader %s", role, e.cluster.ControllerAddrs[1]))
	}
	e.logf("soak: killed controller %s at tick %d; standby promoted at gen %d",
		e.ctrlKilledAddr, tick, e.failoverGen)
}

// slowServer opens the gray-failure phase: the first memory server (a
// chain member of many tenant blocks, and never the kill or drain
// victim of the default schedule) gets persistent injected latency on
// every byte toward it, and a Degraded report places it on controller
// probation. Unlike kill and drain this opens no fault window — an
// alive-but-slow server must cost latency, never errors or acks.
func (e *engine) slowServer(tick int) {
	e.slowAddr = e.cluster.Servers[0].Addr()
	e.inj.AddRule(faultinject.Rule{
		Name: "gray-slow", Match: "send:" + e.slowAddr,
		Latency: 500 * time.Microsecond,
	})
	ctrl := e.cluster.Controllers[0]
	if err := ctrl.ReportFailure(proto.ReportFailureReq{
		Reporter: "soak-harness", Server: e.slowAddr, Degraded: true,
	}); err != nil {
		e.violations = append(e.violations, fmt.Sprintf("degraded report for %s: %v", e.slowAddr, err))
		return
	}
	switch {
	case ctrl.ServerDead(e.slowAddr):
		e.violations = append(e.violations, fmt.Sprintf(
			"fail-slow server %s was declared dead", e.slowAddr))
	case !ctrl.ServerProbated(e.slowAddr):
		e.violations = append(e.violations, fmt.Sprintf(
			"degraded report did not probate %s", e.slowAddr))
	}
	e.slowEpoch = ctrl.MembershipEpoch()
	e.logf("soak: server %s turned gray at tick %d (probated, epoch %d)",
		e.slowAddr, tick, e.slowEpoch)
}

// healSlowServer closes the gray phase: the probation must have held
// through the slow window without touching the membership epoch, and
// once the injector rule is removed, consecutive clean recovery probes
// must lift it.
func (e *engine) healSlowServer(tick int) {
	if e.slowAddr == "" {
		return
	}
	ctrl := e.cluster.Controllers[0]
	if got := ctrl.MembershipEpoch(); got != e.slowEpoch {
		e.violations = append(e.violations, fmt.Sprintf(
			"gray window moved the membership epoch: %d -> %d", e.slowEpoch, got))
	}
	if !ctrl.ServerProbated(e.slowAddr) {
		e.violations = append(e.violations, fmt.Sprintf(
			"probation of %s did not hold through the slow window", e.slowAddr))
	}
	e.inj.RemoveRule("gray-slow")
	for i := 0; i < core.DefaultProbationRecoveryProbes; i++ {
		ctrl.ProbeProbationNow()
	}
	if ctrl.ServerProbated(e.slowAddr) {
		e.violations = append(e.violations, fmt.Sprintf(
			"probation of %s not lifted after heal", e.slowAddr))
	} else {
		e.logf("soak: healed %s at tick %d; probation lifted", e.slowAddr, tick)
	}
}

// startDrain begins a live migration of a second server under load.
func (e *engine) startDrain() {
	idx := len(e.cluster.Servers) - 2
	if idx < 0 || (e.cfg.KillAtTick > 0 && idx == e.killedIdx) {
		return
	}
	e.drainAddr = e.cluster.Servers[idx].Addr()
	e.drainActive.Store(true)
	e.logf("soak: draining %s at tick %d", e.drainAddr, e.cfg.DrainAtTick)
	go func() {
		n, err := e.c.DrainServer(context.Background(), e.drainAddr)
		e.drained = n
		e.drainActive.Store(false)
		e.drainDone <- err
	}()
}

// finishDrain waits for an in-flight drain to settle.
func (e *engine) finishDrain() {
	if e.drainAddr == "" {
		return
	}
	select {
	case err := <-e.drainDone:
		if err != nil {
			e.violations = append(e.violations, fmt.Sprintf("drain of %s failed: %v", e.drainAddr, err))
		} else {
			e.logf("soak: drain of %s migrated %d entries", e.drainAddr, e.drained)
		}
	case <-time.After(30 * time.Second):
		e.violations = append(e.violations, fmt.Sprintf("drain of %s did not finish", e.drainAddr))
	}
}

// liftQuotas clears every tenant's rate quota so the read-back
// verification isn't throttled: the virtual clock is frozen after the
// last tick, so token buckets would never refill. Gate throttle
// counters persist across the clear, so the metrics cross-check still
// sees the soak's totals.
func (e *engine) liftQuotas() {
	ctx := context.Background()
	for _, tn := range e.tenants {
		if err := e.c.SetQuota(ctx, core.Path(tn.name), core.Quota{}); err != nil {
			e.violations = append(e.violations, fmt.Sprintf("lifting quota for %s: %v", tn.name, err))
		}
	}
}

// verifyAcked reads back every acknowledged write; returns the number
// lost. This is the zero-acked-write-loss gate: a kill, a repair and a
// drain all happened mid-soak, and none of them may lose an ack.
func (e *engine) verifyAcked() int {
	var lost atomic.Int64
	var total int
	jobs := make(chan func(), e.cfg.Workers*4)
	var wg sync.WaitGroup
	for w := 0; w < e.cfg.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for fn := range jobs {
				fn()
			}
		}()
	}
	for _, tn := range e.tenants {
		tn := tn
		total += len(tn.acked)
		for key, want := range tn.acked {
			key, want := key, want
			jobs <- func() {
				got, err := tn.kv.Get(context.Background(), key)
				if err != nil || string(got) != want {
					if lost.Add(1) <= 5 {
						e.logf("soak: LOST acked write %s/%s: %v", tn.name, key, err)
					}
				}
			}
		}
	}
	close(jobs)
	wg.Wait()
	e.logf("soak: verified %d acked writes, %d lost", total, lost.Load())
	return int(lost.Load())
}

// advance moves time forward: virtually in short mode, really in wall
// mode.
func (e *engine) advance(d time.Duration) {
	if e.vclock != nil {
		e.vclock.Advance(d)
		return
	}
	time.Sleep(d)
}
