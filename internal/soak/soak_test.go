package soak_test

import (
	"os"
	"testing"

	"jiffy/internal/soak"
)

// TestShortSoak is the CI soak: the default seeded virtual-clock
// configuration — 48 tenants in three QoS tiers with one bronze
// burster at 10× quota, seeded wire jitter throughout, a server kill
// plus deterministic repair at tick 45 and a live drain at tick 80 —
// graded against per-tier throughput/p99/fairness SLOs, throttle
// accounting (typed errors + Prometheus counters), and zero
// acked-write loss.
//
// Set SOAK_REPORT=<path> to also write the rendered report (CI uploads
// it as the run artifact).
func TestShortSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak skipped with -short")
	}
	rep, err := soak.Run(soak.DefaultShortConfig(), t.Logf)
	if err != nil {
		t.Fatalf("soak failed to run: %v", err)
	}
	rendered := rep.Render()
	t.Log("\n" + rendered)
	if path := os.Getenv("SOAK_REPORT"); path != "" {
		if werr := os.WriteFile(path, []byte(rendered), 0o644); werr != nil {
			t.Errorf("writing report artifact: %v", werr)
		}
	}
	if !rep.Passed() {
		t.Fatalf("soak failed: %d violations, %d lost writes", len(rep.Violations), rep.LostWrites)
	}

	// The burst scenario must actually have engaged admission control.
	if rep.ServerThrottled == 0 {
		t.Fatal("no server-side throttles: the bronze burster never hit the gate")
	}
	for _, tier := range rep.Tiers {
		if tier.Name == "bronze" && tier.BursterThrottled == 0 {
			t.Fatal("bronze burster saw no typed throttles at the client")
		}
	}
}

// TestJainIndex pins the fairness metric itself (exported via the
// report) against hand-computed values.
func TestJainIndex(t *testing.T) {
	cases := []struct {
		xs   []float64
		want float64
	}{
		{[]float64{1, 1, 1, 1}, 1.0},
		{[]float64{1, 0, 0, 0}, 0.25},
		{[]float64{1, 0.5}, 0.9},
	}
	for _, c := range cases {
		if got := soak.Jain(c.xs); !approx(got, c.want) {
			t.Errorf("Jain(%v) = %v, want %v", c.xs, got, c.want)
		}
	}
}

func approx(a, b float64) bool {
	d := a - b
	return d < 1e-9 && d > -1e-9
}
