package soak

import (
	"bytes"
	"fmt"
	"sort"
	"strings"
	"time"

	"jiffy/internal/obs"
)

// TierReport aggregates one tier's outcome. Offered/Entitled/Achieved
// and the latency percentiles cover the well-behaved tenants; the
// declared bursters are reported separately so their deliberate
// overload doesn't pollute the tier's SLO arithmetic.
type TierReport struct {
	Name    string
	Tenants int

	Offered   int64
	Entitled  int64
	Achieved  int64
	Throttled int64
	Tolerated int64

	// AchievedRatio is achieved/entitled over well-behaved tenants.
	AchievedRatio float64
	// Fairness is Jain's index over the well-behaved tenants'
	// satisfaction ratios (achieved/entitled, capped at 1).
	Fairness float64
	P50, P99 time.Duration

	// Burster columns: the declared over-quota tenants.
	BursterOffered   int64
	BursterAchieved  int64
	BursterThrottled int64
}

// Report is one soak run's graded outcome.
type Report struct {
	Seed  int64
	Ticks int
	Tiers []TierReport

	// TotalAcked is the number of acknowledged writes read back at the
	// end; LostWrites of them were missing or wrong.
	TotalAcked int64
	LostWrites int

	// ServerThrottled sums jiffy_tenant_throttled_total across every
	// server's admission gate; ClientThrottled is what clients saw as
	// typed ErrQuotaExceeded. Server-side is >= client-side because the
	// retry policy absorbs one throttle round before surfacing it.
	ServerThrottled int64
	ClientThrottled int64

	// Tiering columns (soaks with a scale-to-zero cohort): fleet-wide
	// demotion/promotion counters scraped from the servers' metric
	// registries, and the idle cohort's re-access outcome.
	IdleTenants        int
	IdleReaccessErrors int
	TierDemotions      int64
	TierPromotions     int64
	TierRehydrateBytes int64

	// ControllerFailovers is the promoted standby's scraped
	// jiffy_ctrl_failovers_total after a mid-soak leader kill
	// (CtrlKillAtTick > 0; zero otherwise).
	ControllerFailovers int64

	Violations []string
}

// Passed reports whether the soak met every SLO with zero acked-write
// loss.
func (r *Report) Passed() bool {
	return len(r.Violations) == 0 && r.LostWrites == 0
}

// Jain computes Jain's fairness index (Σx)²/(n·Σx²); 1.0 is perfectly
// fair, 1/n is maximally unfair.
func Jain(xs []float64) float64 {
	if len(xs) == 0 {
		return 1
	}
	var sum, sq float64
	for _, x := range xs {
		sum += x
		sq += x * x
	}
	if sq == 0 {
		return 1
	}
	return sum * sum / (float64(len(xs)) * sq)
}

func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)-1))
	return sorted[i]
}

// report folds the per-tenant counters into per-tier aggregates and
// grades them against the tier SLOs.
func (e *engine) report(lost int) *Report {
	rep := &Report{Seed: e.cfg.Seed, Ticks: e.cfg.Ticks, LostWrites: lost}
	for ti, tier := range e.cfg.Tiers {
		tr := TierReport{Name: tier.Name, Tenants: tier.Tenants}
		var ratios []float64
		var lats []time.Duration
		for _, tn := range e.tenants {
			if tn.tier != ti {
				continue
			}
			tn.mu.Lock()
			rep.TotalAcked += int64(len(tn.acked))
			rep.ClientThrottled += tn.throttled
			if tn.burst {
				tr.BursterOffered += tn.offered
				tr.BursterAchieved += tn.achieved
				tr.BursterThrottled += tn.throttled
				tn.mu.Unlock()
				continue
			}
			tr.Offered += tn.offered
			tr.Entitled += tn.entitled
			tr.Achieved += tn.achieved
			tr.Throttled += tn.throttled
			tr.Tolerated += tn.tolerated
			if tn.entitled > 0 {
				x := float64(tn.achieved) / float64(tn.entitled)
				if x > 1 {
					x = 1
				}
				ratios = append(ratios, x)
			}
			lats = append(lats, tn.lat...)
			tn.mu.Unlock()
		}
		if tr.Entitled > 0 {
			tr.AchievedRatio = float64(tr.Achieved) / float64(tr.Entitled)
		}
		tr.Fairness = Jain(ratios)
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		tr.P50 = percentile(lats, 0.50)
		tr.P99 = percentile(lats, 0.99)

		slo := tier.SLO
		if slo.MinThroughput > 0 && tr.AchievedRatio < slo.MinThroughput {
			e.violations = append(e.violations, fmt.Sprintf(
				"tier %s: achieved/entitled %.3f < SLO %.2f", tier.Name, tr.AchievedRatio, slo.MinThroughput))
		}
		if slo.MaxP99 > 0 && len(lats) > 0 && tr.P99 > slo.MaxP99 {
			e.violations = append(e.violations, fmt.Sprintf(
				"tier %s: p99 %v > SLO %v", tier.Name, tr.P99, slo.MaxP99))
		}
		if slo.MinFairness > 0 && tr.Fairness < slo.MinFairness {
			e.violations = append(e.violations, fmt.Sprintf(
				"tier %s: Jain fairness %.3f < SLO %.2f", tier.Name, tr.Fairness, slo.MinFairness))
		}
		// A declared burster offers many multiples of its quota; QoS is
		// only demonstrably on if the admission gate pushed back, and the
		// pushback must have been the typed throttle (anything else landed
		// in unexpected-error accounting).
		if tier.BurstTenants > 0 && tr.BursterThrottled == 0 {
			e.violations = append(e.violations, fmt.Sprintf(
				"tier %s: burster offered %d ops but was never throttled", tier.Name, tr.BursterOffered))
		}
		rep.Tiers = append(rep.Tiers, tr)
	}
	if n := e.unexpected.Load(); n > 0 {
		first, _ := e.firstErr.Load().(string)
		e.violations = append(e.violations, fmt.Sprintf(
			"%d ops failed outside declared fault windows (first: %s)", n, first))
	}
	if lost > 0 {
		e.violations = append(e.violations, fmt.Sprintf(
			"%d of %d acked writes lost after kill/repair/drain", lost, rep.TotalAcked))
	}
	return rep
}

// checkMetrics cross-checks the observability plane against the gates:
// every server's jiffy_tenant_throttled_total must equal its gate's
// counter, and the fleet-wide server-side throttle count must be at
// least what clients observed — a throttle is never silently dropped.
func (e *engine) checkMetrics(rep *Report) {
	for i, srv := range e.cluster.Servers {
		stats := srv.Gate().Stats()
		var buf bytes.Buffer
		srv.Obs().WritePrometheus(&buf)
		metrics := obs.ParsePrometheus(buf.Bytes())
		for _, ts := range stats {
			rep.ServerThrottled += ts.Throttled
			if ts.Throttled == 0 {
				continue
			}
			key := fmt.Sprintf("jiffy_tenant_throttled_total{tenant=%q}", ts.Tenant)
			if got := metrics[key]; int64(got) != ts.Throttled {
				e.violations = append(e.violations, fmt.Sprintf(
					"server %d: metric %s = %v, gate counter = %d", i, key, got, ts.Throttled))
			}
		}
	}
	if rep.ServerThrottled < rep.ClientThrottled {
		e.violations = append(e.violations, fmt.Sprintf(
			"server-side throttles %d < client-observed %d: throttles dropped",
			rep.ServerThrottled, rep.ClientThrottled))
	}
	if rep.ClientThrottled > 0 && rep.ServerThrottled == 0 {
		e.violations = append(e.violations,
			"clients saw throttles but no server gate counted any")
	}

	// Control-plane failover accounting: after a mid-soak leader kill
	// the promoted standby must export the takeover — exactly one
	// failover, and the leader gauge flipped to 1 — while the zero
	// unexpected-error gate above already proved the handoff was
	// invisible to clients.
	if e.ctrlKilledAddr != "" && len(e.cluster.Controllers) > 1 {
		var buf bytes.Buffer
		e.cluster.Controllers[1].Obs().WritePrometheus(&buf)
		m := obs.ParsePrometheus(buf.Bytes())
		rep.ControllerFailovers = int64(m["jiffy_ctrl_failovers_total"])
		if m["jiffy_ctrl_leader"] != 1 {
			e.violations = append(e.violations,
				"promoted standby does not export jiffy_ctrl_leader=1")
		}
		if rep.ControllerFailovers != 1 {
			e.violations = append(e.violations, fmt.Sprintf(
				"promoted standby exports %d failovers, want 1", rep.ControllerFailovers))
		}
	}

	// Tier metrics must agree with ground truth: each server's tiered
	// gauge matches a direct store scan, and the idle cohort's journey
	// (demote mid-run, rehydrate on re-access) shows up in the fleet
	// counters.
	rep.IdleTenants = e.cfg.IdleTenants
	rep.IdleReaccessErrors = e.idleReaccessErrs
	if e.cfg.IdleTenants > 0 {
		for i, srv := range e.cluster.Servers {
			var buf bytes.Buffer
			srv.Obs().WritePrometheus(&buf)
			m := obs.ParsePrometheus(buf.Bytes())
			rep.TierDemotions += int64(m["jiffy_tier_demotions_total"])
			rep.TierPromotions += int64(m["jiffy_tier_promotions_total"])
			rep.TierRehydrateBytes += int64(m["jiffy_tier_rehydrate_bytes_total"])
			if got, want := m["jiffy_blocks_tiered"], float64(srv.Store().TieredBlocks()); got != want {
				e.violations = append(e.violations, fmt.Sprintf(
					"server %d: jiffy_blocks_tiered = %v, store scan says %v", i, got, want))
			}
		}
		if rep.TierDemotions == 0 {
			e.violations = append(e.violations,
				"idle cohort configured but no block was ever demoted")
		}
		if rep.TierPromotions == 0 || rep.TierRehydrateBytes == 0 {
			e.violations = append(e.violations,
				"idle cohort re-access drove no rehydrations")
		}
	}
}

// Render formats the report as the human-readable soak artifact.
func (r *Report) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "jiffy soak report (seed %d, %d ticks)\n", r.Seed, r.Ticks)
	fmt.Fprintf(&b, "%-8s %7s %9s %9s %9s %9s %7s %9s %9s %9s\n",
		"tier", "tenants", "offered", "entitled", "achieved", "throttled", "ratio", "fairness", "p50", "p99")
	for _, t := range r.Tiers {
		fmt.Fprintf(&b, "%-8s %7d %9d %9d %9d %9d %7.3f %9.3f %9s %9s\n",
			t.Name, t.Tenants, t.Offered, t.Entitled, t.Achieved, t.Throttled,
			t.AchievedRatio, t.Fairness,
			t.P50.Round(time.Microsecond), t.P99.Round(time.Microsecond))
		if t.BursterOffered > 0 {
			fmt.Fprintf(&b, "%-8s %7s %9d %9s %9d %9d   (deliberately over quota)\n",
				"  burst", "", t.BursterOffered, "-", t.BursterAchieved, t.BursterThrottled)
		}
	}
	fmt.Fprintf(&b, "acked writes: %d verified, %d lost\n", r.TotalAcked, r.LostWrites)
	fmt.Fprintf(&b, "throttles: %d server-side, %d client-observed (typed ErrQuotaExceeded)\n",
		r.ServerThrottled, r.ClientThrottled)
	if r.IdleTenants > 0 {
		fmt.Fprintf(&b, "tiering: %d demotions, %d promotions, %d bytes rehydrated; idle cohort %d tenants, %d re-access errors\n",
			r.TierDemotions, r.TierPromotions, r.TierRehydrateBytes,
			r.IdleTenants, r.IdleReaccessErrors)
	}
	if r.ControllerFailovers > 0 {
		fmt.Fprintf(&b, "control plane: %d leader failover(s) mid-soak, handoff invisible to clients\n",
			r.ControllerFailovers)
	}
	if len(r.Violations) == 0 {
		b.WriteString("PASS: all tier SLOs met, zero acked-write loss\n")
	} else {
		fmt.Fprintf(&b, "FAIL: %d violations\n", len(r.Violations))
		for _, v := range r.Violations {
			fmt.Fprintf(&b, "  - %s\n", v)
		}
	}
	return b.String()
}
