// Package persist provides the persistent-storage tier that Jiffy
// flushes intermediate data to on lease expiry, spills to when memory
// capacity is exhausted, and loads from via loadAddrPrefix (§3.2,
// §4.2.2). The paper uses S3; since this reproduction runs without AWS,
// the package offers an in-memory object store, a local-directory
// store, and a latency/bandwidth-model wrapper that makes any store
// behave like a remote service (S3-like or SSD-like service times) —
// preserving the performance asymmetry between far-memory and the
// persistent tier that Figs. 9 and 10 depend on.
package persist

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"jiffy/internal/clock"
	"jiffy/internal/core"
)

// Store is the external persistent-object interface (S3-shaped).
type Store interface {
	// Put stores data under key, overwriting any previous object.
	Put(key string, data []byte) error
	// Get returns the object stored under key.
	Get(key string) ([]byte, error)
	// Delete removes the object; deleting a missing key is not an error.
	Delete(key string) error
	// List returns the keys with the given prefix, sorted.
	List(prefix string) ([]string, error)
}

// MemStore is an in-memory Store; the default persistent tier for
// tests and in-process experiments.
type MemStore struct {
	mu      sync.RWMutex
	objects map[string][]byte
}

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore {
	return &MemStore{objects: make(map[string][]byte)}
}

// Put implements Store.
func (s *MemStore) Put(key string, data []byte) error {
	cp := append([]byte(nil), data...)
	s.mu.Lock()
	s.objects[key] = cp
	s.mu.Unlock()
	return nil
}

// Get implements Store.
func (s *MemStore) Get(key string) ([]byte, error) {
	s.mu.RLock()
	data, ok := s.objects[key]
	s.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("persist: object %q: %w", key, core.ErrNotFound)
	}
	return append([]byte(nil), data...), nil
}

// Delete implements Store.
func (s *MemStore) Delete(key string) error {
	s.mu.Lock()
	delete(s.objects, key)
	s.mu.Unlock()
	return nil
}

// List implements Store.
func (s *MemStore) List(prefix string) ([]string, error) {
	s.mu.RLock()
	keys := make([]string, 0)
	for k := range s.objects {
		if strings.HasPrefix(k, prefix) {
			keys = append(keys, k)
		}
	}
	s.mu.RUnlock()
	sort.Strings(keys)
	return keys, nil
}

// Len returns the number of stored objects.
func (s *MemStore) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.objects)
}

// Bytes returns the total stored payload size.
func (s *MemStore) Bytes() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n := 0
	for _, v := range s.objects {
		n += len(v)
	}
	return n
}

// DirStore persists objects as files under a root directory; object
// keys map to file paths with path separators escaped.
type DirStore struct {
	root string
}

// NewDirStore creates (if needed) and wraps the directory at root.
func NewDirStore(root string) (*DirStore, error) {
	if err := os.MkdirAll(root, 0o755); err != nil {
		return nil, fmt.Errorf("persist: create root: %w", err)
	}
	return &DirStore{root: root}, nil
}

// escape flattens an object key into one file name.
func escape(key string) string {
	r := strings.NewReplacer("%", "%25", "/", "%2F")
	return r.Replace(key)
}

func unescape(name string) string {
	r := strings.NewReplacer("%2F", "/", "%25", "%")
	return r.Replace(name)
}

// Put implements Store.
func (s *DirStore) Put(key string, data []byte) error {
	path := filepath.Join(s.root, escape(key))
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// Get implements Store.
func (s *DirStore) Get(key string) ([]byte, error) {
	data, err := os.ReadFile(filepath.Join(s.root, escape(key)))
	if os.IsNotExist(err) {
		return nil, fmt.Errorf("persist: object %q: %w", key, core.ErrNotFound)
	}
	return data, err
}

// Delete implements Store.
func (s *DirStore) Delete(key string) error {
	err := os.Remove(filepath.Join(s.root, escape(key)))
	if os.IsNotExist(err) {
		return nil
	}
	return err
}

// List implements Store.
func (s *DirStore) List(prefix string) ([]string, error) {
	entries, err := os.ReadDir(s.root)
	if err != nil {
		return nil, err
	}
	keys := make([]string, 0)
	for _, e := range entries {
		if e.IsDir() || strings.HasSuffix(e.Name(), ".tmp") {
			continue
		}
		k := unescape(e.Name())
		if strings.HasPrefix(k, prefix) {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	return keys, nil
}

// LatencyModel describes the service time of a storage medium:
// a fixed per-operation latency plus a size-proportional transfer time.
type LatencyModel struct {
	// PutLatency / GetLatency are the fixed per-op costs.
	PutLatency, GetLatency time.Duration
	// BandwidthBps is the transfer rate in bytes/second; zero means
	// infinite (no size-dependent term).
	BandwidthBps float64
	// MaxObjectSize, if positive, rejects larger objects with
	// ErrTooLarge (DynamoDB's 128KB item cap in Fig. 10).
	MaxObjectSize int
}

// ServiceTime computes the modeled duration of an op on size bytes.
func (m LatencyModel) ServiceTime(fixed time.Duration, size int) time.Duration {
	d := fixed
	if m.BandwidthBps > 0 {
		d += time.Duration(float64(size) / m.BandwidthBps * float64(time.Second))
	}
	return d
}

// Canonical media models used by the experiment harness. The constants
// reflect the orders of magnitude in Fig. 10: in-memory stores are
// sub-millisecond, SSD is ~10× slower, S3 is ~100× slower with
// tens-of-ms base latency.
var (
	// S3Model approximates S3 object operations.
	S3Model = LatencyModel{
		PutLatency:   30 * time.Millisecond,
		GetLatency:   15 * time.Millisecond,
		BandwidthBps: 80 * core.MB,
	}
	// SSDModel approximates a local NVMe/SSD tier (Pocket's spill tier).
	SSDModel = LatencyModel{
		PutLatency:   400 * time.Microsecond,
		GetLatency:   250 * time.Microsecond,
		BandwidthBps: 500 * core.MB,
	}
	// DRAMModel approximates remote-DRAM access over the datacenter
	// network (the far-memory medium itself).
	DRAMModel = LatencyModel{
		PutLatency:   150 * time.Microsecond,
		GetLatency:   120 * time.Microsecond,
		BandwidthBps: 1.2 * core.GB,
	}
)

// ModeledStore wraps a Store, sleeping (on the supplied clock) for the
// modeled service time of each operation.
type ModeledStore struct {
	inner Store
	model LatencyModel
	clk   clock.Clock
}

// NewModeledStore wraps inner with the latency model, using clk for
// sleeps (a virtual clock makes modeled delays free in simulations).
func NewModeledStore(inner Store, model LatencyModel, clk clock.Clock) *ModeledStore {
	if clk == nil {
		clk = clock.Real{}
	}
	return &ModeledStore{inner: inner, model: model, clk: clk}
}

// Put implements Store with modeled latency.
func (s *ModeledStore) Put(key string, data []byte) error {
	if s.model.MaxObjectSize > 0 && len(data) > s.model.MaxObjectSize {
		return fmt.Errorf("persist: %d bytes exceeds %d: %w",
			len(data), s.model.MaxObjectSize, core.ErrTooLarge)
	}
	s.clk.Sleep(s.model.ServiceTime(s.model.PutLatency, len(data)))
	return s.inner.Put(key, data)
}

// Get implements Store with modeled latency.
func (s *ModeledStore) Get(key string) ([]byte, error) {
	data, err := s.inner.Get(key)
	if err != nil {
		return nil, err
	}
	s.clk.Sleep(s.model.ServiceTime(s.model.GetLatency, len(data)))
	return data, nil
}

// Delete implements Store with the fixed put-side latency.
func (s *ModeledStore) Delete(key string) error {
	s.clk.Sleep(s.model.PutLatency)
	return s.inner.Delete(key)
}

// List implements Store with the fixed get-side latency.
func (s *ModeledStore) List(prefix string) ([]string, error) {
	s.clk.Sleep(s.model.GetLatency)
	return s.inner.List(prefix)
}
