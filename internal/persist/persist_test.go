package persist

import (
	"errors"
	"testing"
	"time"

	"jiffy/internal/clock"
	"jiffy/internal/core"
)

// storeSuite runs the Store contract against any implementation.
func storeSuite(t *testing.T, s Store) {
	t.Helper()
	// Missing key.
	if _, err := s.Get("nope"); !errors.Is(err, core.ErrNotFound) {
		t.Errorf("Get missing = %v, want ErrNotFound", err)
	}
	// Put / Get round trip.
	if err := s.Put("a/b/1", []byte("one")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("a/b/2", []byte("two")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("a/c/3", []byte("three")); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get("a/b/1")
	if err != nil || string(got) != "one" {
		t.Errorf("Get = %q, %v", got, err)
	}
	// Overwrite.
	if err := s.Put("a/b/1", []byte("uno")); err != nil {
		t.Fatal(err)
	}
	got, _ = s.Get("a/b/1")
	if string(got) != "uno" {
		t.Errorf("after overwrite = %q", got)
	}
	// List by prefix, sorted.
	keys, err := s.List("a/b/")
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 2 || keys[0] != "a/b/1" || keys[1] != "a/b/2" {
		t.Errorf("List = %v", keys)
	}
	all, _ := s.List("")
	if len(all) != 3 {
		t.Errorf("List all = %v", all)
	}
	// Delete (idempotent).
	if err := s.Delete("a/b/1"); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete("a/b/1"); err != nil {
		t.Errorf("double delete = %v", err)
	}
	if _, err := s.Get("a/b/1"); !errors.Is(err, core.ErrNotFound) {
		t.Errorf("Get deleted = %v", err)
	}
}

func TestMemStoreContract(t *testing.T) { storeSuite(t, NewMemStore()) }

func TestDirStoreContract(t *testing.T) {
	s, err := NewDirStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	storeSuite(t, s)
}

func TestMemStoreIsolation(t *testing.T) {
	s := NewMemStore()
	data := []byte("mutable")
	s.Put("k", data)
	data[0] = 'X'
	got, _ := s.Get("k")
	if string(got) != "mutable" {
		t.Error("store aliases caller's buffer")
	}
	got[0] = 'Y'
	again, _ := s.Get("k")
	if string(again) != "mutable" {
		t.Error("store returns aliased buffer")
	}
}

func TestMemStoreStats(t *testing.T) {
	s := NewMemStore()
	s.Put("a", []byte("12345"))
	s.Put("b", []byte("123"))
	if s.Len() != 2 || s.Bytes() != 8 {
		t.Errorf("len=%d bytes=%d", s.Len(), s.Bytes())
	}
}

func TestDirStoreKeyEscaping(t *testing.T) {
	s, err := NewDirStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := "job1/T4/T6/block%7"
	if err := s.Put(key, []byte("data")); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get(key)
	if err != nil || string(got) != "data" {
		t.Errorf("Get = %q, %v", got, err)
	}
	keys, _ := s.List("job1/")
	if len(keys) != 1 || keys[0] != key {
		t.Errorf("List = %v", keys)
	}
}

func TestLatencyModelServiceTime(t *testing.T) {
	m := LatencyModel{PutLatency: 10 * time.Millisecond, BandwidthBps: 1000}
	// 500 bytes at 1000 B/s = 500ms transfer.
	got := m.ServiceTime(m.PutLatency, 500)
	want := 10*time.Millisecond + 500*time.Millisecond
	if got != want {
		t.Errorf("ServiceTime = %v, want %v", got, want)
	}
	// Zero bandwidth = fixed only.
	m2 := LatencyModel{GetLatency: time.Millisecond}
	if m2.ServiceTime(m2.GetLatency, 1<<30) != time.Millisecond {
		t.Error("zero bandwidth should ignore size")
	}
}

func TestModeledStoreVirtualClock(t *testing.T) {
	vc := clock.NewVirtual(time.Unix(0, 0))
	inner := NewMemStore()
	s := NewModeledStore(inner, LatencyModel{
		PutLatency: time.Second, GetLatency: time.Second,
	}, vc)

	done := make(chan error, 1)
	go func() { done <- s.Put("k", []byte("v")) }()
	// The put is blocked on the virtual clock until we advance it.
	select {
	case <-done:
		t.Fatal("put returned before clock advance")
	case <-time.After(10 * time.Millisecond):
	}
	vc.Advance(2 * time.Second)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if _, err := inner.Get("k"); err != nil {
		t.Errorf("object not stored: %v", err)
	}
}

func TestModeledStoreMaxObjectSize(t *testing.T) {
	s := NewModeledStore(NewMemStore(), LatencyModel{MaxObjectSize: 10}, clock.Real{})
	if err := s.Put("big", make([]byte, 11)); !errors.Is(err, core.ErrTooLarge) {
		t.Errorf("oversized put = %v, want ErrTooLarge", err)
	}
	if err := s.Put("ok", make([]byte, 10)); err != nil {
		t.Errorf("at-limit put = %v", err)
	}
}

func TestModeledStorePassThrough(t *testing.T) {
	inner := NewMemStore()
	s := NewModeledStore(inner, LatencyModel{}, clock.Real{})
	storeSuite(t, s)
}

func TestCanonicalModelsOrdering(t *testing.T) {
	// The figures depend on DRAM < SSD < S3 service times.
	size := 1 * core.MB
	dram := DRAMModel.ServiceTime(DRAMModel.GetLatency, size)
	ssd := SSDModel.ServiceTime(SSDModel.GetLatency, size)
	s3 := S3Model.ServiceTime(S3Model.GetLatency, size)
	if !(dram < ssd && ssd < s3) {
		t.Errorf("media ordering violated: dram=%v ssd=%v s3=%v", dram, ssd, s3)
	}
}
