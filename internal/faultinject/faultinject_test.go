package faultinject

import (
	"errors"
	"net"
	"testing"
	"time"

	"jiffy/internal/clock"
	"jiffy/internal/persist"
)

// TestScheduleDeterminism is the reproducibility contract: the same
// seed and rule set produce the identical fault schedule, and a
// different seed produces a different one.
func TestScheduleDeterminism(t *testing.T) {
	mk := func(seed int64) []Decision {
		inj := New(seed, nil)
		inj.AddRule(Rule{
			Name: "flaky", Match: "send:", DropProb: 0.3, ResetProb: 0.05,
			Latency: time.Millisecond, Jitter: time.Millisecond,
		})
		return inj.Schedule("flaky", 256)
	}
	a, b := mk(42), mk(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at op %d: %+v vs %+v", i, a[i], b[i])
		}
	}
	c := mk(43)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Error("different seeds produced identical schedules")
	}
	// The schedule has roughly the configured drop rate.
	drops := 0
	for _, d := range a {
		if d.Drop {
			drops++
		}
	}
	if drops < len(a)/5 || drops > len(a)/2 {
		t.Errorf("drop rate %d/%d far from configured 0.3", drops, len(a))
	}
}

// TestDecideMatchesSchedule: live decisions consume the same schedule
// that Schedule reports, independent of other rules' traffic.
func TestDecideMatchesSchedule(t *testing.T) {
	inj := New(7, nil)
	inj.AddRule(Rule{Name: "r1", Match: "send:a", DropProb: 0.5})
	inj.AddRule(Rule{Name: "r2", Match: "send:b", DropProb: 0.5})
	want := inj.Schedule("r1", 64)
	for i := 0; i < 64; i++ {
		// Interleave unrelated traffic; r1's schedule must not shift.
		inj.decide("send:b", 0)
		got := inj.decide("send:a", 0)
		if got.Drop != want[i].Drop {
			t.Fatalf("op %d: live drop=%v, schedule drop=%v", i, got.Drop, want[i].Drop)
		}
	}
}

// TestConnDropAndPartition exercises the wrapper over a real pipe.
func TestConnDropAndPartition(t *testing.T) {
	inj := New(1, nil)
	client, server := net.Pipe()
	wrapped := inj.WrapConn("peer", client)
	defer server.Close()

	read := func() chan []byte {
		ch := make(chan []byte, 1)
		go func() {
			buf := make([]byte, 16)
			n, err := server.Read(buf)
			if err != nil {
				close(ch)
				return
			}
			ch <- buf[:n]
		}()
		return ch
	}

	// No rules: bytes flow.
	ch := read()
	if _, err := wrapped.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	if got := <-ch; string(got) != "hello" {
		t.Fatalf("passthrough read %q", got)
	}

	// Partitioned: the write "succeeds" but the peer never sees it.
	inj.Partition("send:peer")
	if n, err := wrapped.Write([]byte("lost")); err != nil || n != 4 {
		t.Fatalf("partitioned write = %d, %v", n, err)
	}
	ch = read()
	select {
	case got, ok := <-ch:
		if ok {
			t.Fatalf("partitioned message arrived: %q", got)
		}
	case <-time.After(50 * time.Millisecond):
		// Expected: nothing arrives.
	}

	// Healed: flow resumes (the pending read above is still waiting).
	inj.Heal("send:peer")
	if _, err := wrapped.Write([]byte("back")); err != nil {
		t.Fatal(err)
	}
	if got := <-ch; string(got) != "back" {
		t.Fatalf("post-heal read %q", got)
	}
}

// TestConnReset: a reset rule closes the transport and errors the write.
func TestConnReset(t *testing.T) {
	inj := New(1, nil)
	inj.AddRule(Rule{Name: "kill", Match: "send:victim", ResetProb: 1})
	client, server := net.Pipe()
	defer server.Close()
	wrapped := inj.WrapConn("victim", client)
	if _, err := wrapped.Write([]byte("x")); !errors.Is(err, ErrInjected) {
		t.Fatalf("reset write err = %v", err)
	}
	// The underlying conn is closed.
	if _, err := client.Write([]byte("y")); err == nil {
		t.Error("underlying conn still open after reset")
	}
}

// TestBreakConns severs live wrapped connections by endpoint match.
func TestBreakConns(t *testing.T) {
	inj := New(1, nil)
	c1, s1 := net.Pipe()
	c2, s2 := net.Pipe()
	defer s1.Close()
	defer s2.Close()
	w1 := inj.WrapConn("mem://srv-1", c1)
	w2 := inj.WrapConn("mem://srv-2", c2)
	if n := inj.BreakConns("srv-1"); n != 1 {
		t.Fatalf("broke %d conns, want 1", n)
	}
	if _, err := w1.Write([]byte("x")); err == nil {
		t.Error("broken conn still writable")
	}
	go s2.Read(make([]byte, 1)) // net.Pipe writes rendezvous with a reader
	if _, err := w2.Write([]byte("x")); err != nil {
		t.Errorf("unmatched conn was severed: %v", err)
	}
}

// TestStoreInjection: persist faults fire deterministically and wrap
// ErrInjected; disabling the injector restores the inner store.
func TestStoreInjection(t *testing.T) {
	inj := New(99, nil)
	inj.AddRule(Rule{Name: "s3down", Match: "persist:put", ErrProb: 1})
	st := inj.Store(persist.NewMemStore())
	if err := st.Put("k", []byte("v")); !errors.Is(err, ErrInjected) {
		t.Fatalf("put err = %v", err)
	}
	inj.SetEnabled(false)
	if err := st.Put("k", []byte("v")); err != nil {
		t.Fatalf("put with injection disabled: %v", err)
	}
	if got, err := st.Get("k"); err != nil || string(got) != "v" {
		t.Fatalf("get = %q, %v", got, err)
	}
}

// TestBandwidthThrottle: a bandwidth rule charges delay proportional to
// the operation's byte count, measured on the virtual clock.
func TestBandwidthThrottle(t *testing.T) {
	vc := clock.NewVirtual(time.Unix(0, 0))
	inj := New(5, vc)
	// 1 MB/s: a 256KB write must cost 250ms of injected delay.
	inj.AddRule(Rule{Name: "nic", Match: "send:slow", BandwidthBps: 1 << 20})
	d := inj.decide("send:slow", 256<<10)
	if want := 250 * time.Millisecond; d.Delay != want {
		t.Fatalf("256KB at 1MB/s delayed %v, want %v", d.Delay, want)
	}
	// Zero bytes cost nothing.
	if d := inj.decide("send:slow", 0); d.Delay != 0 {
		t.Fatalf("zero-byte op delayed %v", d.Delay)
	}
}

// TestBrownoutRamp: a RampOver rule scales its delay linearly from zero
// at install time to full strength, on the injector's clock.
func TestBrownoutRamp(t *testing.T) {
	vc := clock.NewVirtual(time.Unix(0, 0))
	inj := New(5, vc)
	inj.AddRule(Rule{
		Name: "brownout", Match: "send:fading",
		Latency: 100 * time.Millisecond, RampOver: 10 * time.Second,
	})
	if d := inj.decide("send:fading", 0); d.Delay != 0 {
		t.Fatalf("at install time delay = %v, want 0", d.Delay)
	}
	vc.Advance(5 * time.Second) // halfway through the ramp
	if d := inj.decide("send:fading", 0); d.Delay != 50*time.Millisecond {
		t.Fatalf("at ramp midpoint delay = %v, want 50ms", d.Delay)
	}
	vc.Advance(10 * time.Second) // past the ramp: full strength
	if d := inj.decide("send:fading", 0); d.Delay != 100*time.Millisecond {
		t.Fatalf("past ramp delay = %v, want 100ms", d.Delay)
	}
	// The ramp also scales bandwidth charges.
	inj.AddRule(Rule{
		Name: "bw-brownout", Match: "recv:fading",
		BandwidthBps: 1 << 20, RampOver: 10 * time.Second,
	})
	vc.Advance(5 * time.Second)
	if d := inj.decide("recv:fading", 256<<10); d.Delay != 125*time.Millisecond {
		t.Fatalf("ramped bandwidth delay = %v, want 125ms", d.Delay)
	}
}

// TestPartitionOneWay: a directed partition blackholes only the tagged
// owner's sends toward the target; other owners and the reverse
// direction still flow.
func TestPartitionOneWay(t *testing.T) {
	inj := New(1, nil)
	mkPair := func(owner, endpoint string) (net.Conn, net.Conn) {
		c, s := net.Pipe()
		t.Cleanup(func() { s.Close() })
		return inj.WrapConnAs(owner, endpoint, c), s
	}
	ab, abPeer := mkPair("mem://a", "mem://b") // a → b
	cb, cbPeer := mkPair("mem://c", "mem://b") // c → b
	ba, baPeer := mkPair("mem://b", "mem://a") // b → a

	inj.PartitionOneWay("mem://a", "mem://b")

	read := func(peer net.Conn) chan []byte {
		ch := make(chan []byte, 1)
		go func() {
			buf := make([]byte, 16)
			n, err := peer.Read(buf)
			if err != nil {
				close(ch)
				return
			}
			ch <- buf[:n]
		}()
		return ch
	}

	// a → b is blackholed: write succeeds, nothing arrives.
	ch := read(abPeer)
	if n, err := ab.Write([]byte("lost")); err != nil || n != 4 {
		t.Fatalf("partitioned write = %d, %v", n, err)
	}
	select {
	case got, ok := <-ch:
		if ok {
			t.Fatalf("a→b message crossed the directed partition: %q", got)
		}
	case <-time.After(50 * time.Millisecond):
	}

	// c → b and b → a still flow.
	ch2 := read(cbPeer)
	if _, err := cb.Write([]byte("ok")); err != nil {
		t.Fatal(err)
	}
	if got := <-ch2; string(got) != "ok" {
		t.Fatalf("c→b read %q", got)
	}
	ch3 := read(baPeer)
	if _, err := ba.Write([]byte("rev")); err != nil {
		t.Fatal(err)
	}
	if got := <-ch3; string(got) != "rev" {
		t.Fatalf("b→a read %q", got)
	}

	// Healing restores a → b (the pending read above is still waiting).
	inj.HealOneWay("mem://a", "mem://b")
	if _, err := ab.Write([]byte("back")); err != nil {
		t.Fatal(err)
	}
	if got := <-ch; string(got) != "back" {
		t.Fatalf("post-heal a→b read %q", got)
	}
}

// TestBreakConnsRuleVisibility is the regression test for the
// rule-mutation/redial race: a rule added before BreakConns must shape
// the very first operation on the redialed connection. Seeded so the
// drop schedule is reproducible.
func TestBreakConnsRuleVisibility(t *testing.T) {
	inj := New(42, nil)
	c1, s1 := net.Pipe()
	defer s1.Close()
	w1 := inj.WrapConn("mem://victim", c1)

	// Install the new fault plan FIRST, then break: per the ordering
	// contract, no post-redial op may miss the rule.
	inj.AddRule(Rule{Name: "always-drop", Match: "send:mem://victim", DropProb: 1})
	if n := inj.BreakConns("victim"); n != 1 {
		t.Fatalf("broke %d conns, want 1", n)
	}
	// The underlying transport is severed (checked directly: the drop
	// rule would mask the close by swallowing w1's writes "successfully").
	if _, err := c1.Write([]byte("x")); err == nil {
		t.Fatal("broken conn's transport still writable")
	}
	_ = w1

	// Simulate the pool's redial and verify the rule applies to op #1.
	c2, s2 := net.Pipe()
	defer s2.Close()
	w2 := inj.WrapConn("mem://victim", c2)
	got := make(chan struct{}, 1)
	go func() {
		buf := make([]byte, 4)
		if n, _ := s2.Read(buf); n > 0 {
			got <- struct{}{}
		}
	}()
	if n, err := w2.Write([]byte("drop")); err != nil || n != 4 {
		t.Fatalf("post-redial write = %d, %v", n, err)
	}
	select {
	case <-got:
		t.Fatal("first op on redialed conn escaped the pre-break rule")
	case <-time.After(50 * time.Millisecond):
	}
}

// TestLatencyOnVirtualClock: injected delays sleep on the supplied
// clock, so a virtual clock makes them free and steerable.
func TestLatencyOnVirtualClock(t *testing.T) {
	vc := clock.NewVirtual(time.Unix(0, 0))
	inj := New(5, vc)
	inj.AddRule(Rule{Name: "wan", Match: "persist:get", Latency: time.Hour})
	st := inj.Store(persist.NewMemStore())
	st.Put("k", []byte("v")) // no rule on put: immediate

	done := make(chan error, 1)
	go func() {
		_, err := st.Get("k")
		done <- err
	}()
	select {
	case <-done:
		t.Fatal("get returned before the virtual clock advanced")
	case <-time.After(20 * time.Millisecond):
	}
	// Wait for the Get goroutine to park its timer, then advance.
	for vc.PendingTimers() == 0 {
		time.Sleep(time.Millisecond)
	}
	vc.Advance(time.Hour)
	if err := <-done; err != nil {
		t.Fatalf("get after advance: %v", err)
	}
}
