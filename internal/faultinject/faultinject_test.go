package faultinject

import (
	"errors"
	"net"
	"testing"
	"time"

	"jiffy/internal/clock"
	"jiffy/internal/persist"
)

// TestScheduleDeterminism is the reproducibility contract: the same
// seed and rule set produce the identical fault schedule, and a
// different seed produces a different one.
func TestScheduleDeterminism(t *testing.T) {
	mk := func(seed int64) []Decision {
		inj := New(seed, nil)
		inj.AddRule(Rule{
			Name: "flaky", Match: "send:", DropProb: 0.3, ResetProb: 0.05,
			Latency: time.Millisecond, Jitter: time.Millisecond,
		})
		return inj.Schedule("flaky", 256)
	}
	a, b := mk(42), mk(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at op %d: %+v vs %+v", i, a[i], b[i])
		}
	}
	c := mk(43)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Error("different seeds produced identical schedules")
	}
	// The schedule has roughly the configured drop rate.
	drops := 0
	for _, d := range a {
		if d.Drop {
			drops++
		}
	}
	if drops < len(a)/5 || drops > len(a)/2 {
		t.Errorf("drop rate %d/%d far from configured 0.3", drops, len(a))
	}
}

// TestDecideMatchesSchedule: live decisions consume the same schedule
// that Schedule reports, independent of other rules' traffic.
func TestDecideMatchesSchedule(t *testing.T) {
	inj := New(7, nil)
	inj.AddRule(Rule{Name: "r1", Match: "send:a", DropProb: 0.5})
	inj.AddRule(Rule{Name: "r2", Match: "send:b", DropProb: 0.5})
	want := inj.Schedule("r1", 64)
	for i := 0; i < 64; i++ {
		// Interleave unrelated traffic; r1's schedule must not shift.
		inj.decide("send:b")
		got := inj.decide("send:a")
		if got.Drop != want[i].Drop {
			t.Fatalf("op %d: live drop=%v, schedule drop=%v", i, got.Drop, want[i].Drop)
		}
	}
}

// TestConnDropAndPartition exercises the wrapper over a real pipe.
func TestConnDropAndPartition(t *testing.T) {
	inj := New(1, nil)
	client, server := net.Pipe()
	wrapped := inj.WrapConn("peer", client)
	defer server.Close()

	read := func() chan []byte {
		ch := make(chan []byte, 1)
		go func() {
			buf := make([]byte, 16)
			n, err := server.Read(buf)
			if err != nil {
				close(ch)
				return
			}
			ch <- buf[:n]
		}()
		return ch
	}

	// No rules: bytes flow.
	ch := read()
	if _, err := wrapped.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	if got := <-ch; string(got) != "hello" {
		t.Fatalf("passthrough read %q", got)
	}

	// Partitioned: the write "succeeds" but the peer never sees it.
	inj.Partition("send:peer")
	if n, err := wrapped.Write([]byte("lost")); err != nil || n != 4 {
		t.Fatalf("partitioned write = %d, %v", n, err)
	}
	ch = read()
	select {
	case got, ok := <-ch:
		if ok {
			t.Fatalf("partitioned message arrived: %q", got)
		}
	case <-time.After(50 * time.Millisecond):
		// Expected: nothing arrives.
	}

	// Healed: flow resumes (the pending read above is still waiting).
	inj.Heal("send:peer")
	if _, err := wrapped.Write([]byte("back")); err != nil {
		t.Fatal(err)
	}
	if got := <-ch; string(got) != "back" {
		t.Fatalf("post-heal read %q", got)
	}
}

// TestConnReset: a reset rule closes the transport and errors the write.
func TestConnReset(t *testing.T) {
	inj := New(1, nil)
	inj.AddRule(Rule{Name: "kill", Match: "send:victim", ResetProb: 1})
	client, server := net.Pipe()
	defer server.Close()
	wrapped := inj.WrapConn("victim", client)
	if _, err := wrapped.Write([]byte("x")); !errors.Is(err, ErrInjected) {
		t.Fatalf("reset write err = %v", err)
	}
	// The underlying conn is closed.
	if _, err := client.Write([]byte("y")); err == nil {
		t.Error("underlying conn still open after reset")
	}
}

// TestBreakConns severs live wrapped connections by endpoint match.
func TestBreakConns(t *testing.T) {
	inj := New(1, nil)
	c1, s1 := net.Pipe()
	c2, s2 := net.Pipe()
	defer s1.Close()
	defer s2.Close()
	w1 := inj.WrapConn("mem://srv-1", c1)
	w2 := inj.WrapConn("mem://srv-2", c2)
	if n := inj.BreakConns("srv-1"); n != 1 {
		t.Fatalf("broke %d conns, want 1", n)
	}
	if _, err := w1.Write([]byte("x")); err == nil {
		t.Error("broken conn still writable")
	}
	go s2.Read(make([]byte, 1)) // net.Pipe writes rendezvous with a reader
	if _, err := w2.Write([]byte("x")); err != nil {
		t.Errorf("unmatched conn was severed: %v", err)
	}
}

// TestStoreInjection: persist faults fire deterministically and wrap
// ErrInjected; disabling the injector restores the inner store.
func TestStoreInjection(t *testing.T) {
	inj := New(99, nil)
	inj.AddRule(Rule{Name: "s3down", Match: "persist:put", ErrProb: 1})
	st := inj.Store(persist.NewMemStore())
	if err := st.Put("k", []byte("v")); !errors.Is(err, ErrInjected) {
		t.Fatalf("put err = %v", err)
	}
	inj.SetEnabled(false)
	if err := st.Put("k", []byte("v")); err != nil {
		t.Fatalf("put with injection disabled: %v", err)
	}
	if got, err := st.Get("k"); err != nil || string(got) != "v" {
		t.Fatalf("get = %q, %v", got, err)
	}
}

// TestLatencyOnVirtualClock: injected delays sleep on the supplied
// clock, so a virtual clock makes them free and steerable.
func TestLatencyOnVirtualClock(t *testing.T) {
	vc := clock.NewVirtual(time.Unix(0, 0))
	inj := New(5, vc)
	inj.AddRule(Rule{Name: "wan", Match: "persist:get", Latency: time.Hour})
	st := inj.Store(persist.NewMemStore())
	st.Put("k", []byte("v")) // no rule on put: immediate

	done := make(chan error, 1)
	go func() {
		_, err := st.Get("k")
		done <- err
	}()
	select {
	case <-done:
		t.Fatal("get returned before the virtual clock advanced")
	case <-time.After(20 * time.Millisecond):
	}
	// Wait for the Get goroutine to park its timer, then advance.
	for vc.PendingTimers() == 0 {
		time.Sleep(time.Millisecond)
	}
	vc.Advance(time.Hour)
	if err := <-done; err != nil {
		t.Fatalf("get after advance: %v", err)
	}
}
