package faultinject

import (
	"net"

	"jiffy/internal/rpc"
	"jiffy/internal/wire"
)

// Conn is a net.Conn carrying fault injection on both directions. It
// wraps either transport under internal/wire — TCP sockets and the
// in-process mem:// pipes both arrive here as plain net.Conn.
//
// Send-side faults act at Write granularity: the framed protocol
// flushes one frame per Write for frames under the 64KB buffer, so a
// swallowed Write is a cleanly dropped message. A drop that lands on a
// partial large frame corrupts the stream instead, which surfaces as a
// connection error — also a legitimate fault, just a louder one.
type Conn struct {
	net.Conn
	inj       *Injector
	endpoint  string
	owner     string
	sendLabel string
	recvLabel string
}

// WrapConn wraps nc with fault injection; endpoint names the remote
// (typically the dialed address) and appears in the point labels
// "send:<endpoint>" / "recv:<endpoint>" rules match against. The conn
// carries no owner tag, so it never matches a PartitionOneWay with a
// non-empty from.
func (i *Injector) WrapConn(endpoint string, nc net.Conn) net.Conn {
	return i.WrapConnAs("", endpoint, nc)
}

// WrapConnAs is WrapConn with an owner tag identifying the dialing
// party (a server or client address), making the conn subject to
// directed partitions installed with PartitionOneWay(owner, ...).
func (i *Injector) WrapConnAs(owner, endpoint string, nc net.Conn) net.Conn {
	c := &Conn{
		Conn:      nc,
		inj:       i,
		endpoint:  endpoint,
		owner:     owner,
		sendLabel: "send:" + endpoint,
		recvLabel: "recv:" + endpoint,
	}
	i.mu.Lock()
	i.conns[c] = struct{}{}
	i.mu.Unlock()
	return c
}

// Write implements net.Conn with send-side faults: injected latency,
// bandwidth throttling, one-way partitions and probabilistic drops (the
// bytes are swallowed and success reported — the peer simply never
// hears the message), and connection resets.
func (c *Conn) Write(p []byte) (int, error) {
	d := c.inj.decide(c.sendLabel, len(p))
	c.inj.sleep(d.Delay)
	if d.Reset {
		c.Close()
		return 0, injectedErr("reset", c.endpoint)
	}
	if d.Drop || c.inj.blocked(c.sendLabel, c.owner) {
		return len(p), nil
	}
	return c.Conn.Write(p)
}

// Read implements net.Conn with receive-side faults: injected latency,
// bandwidth throttling and resets. Drops are send-side only —
// discarding bytes out of a live stream would desynchronize the framing
// rather than model a lost message.
func (c *Conn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	if err != nil {
		return n, err
	}
	d := c.inj.decide(c.recvLabel, n)
	c.inj.sleep(d.Delay)
	if d.Reset {
		c.Close()
		return 0, injectedErr("reset", c.endpoint)
	}
	return n, nil
}

// Close removes the conn from the injector's registry and closes the
// underlying transport.
func (c *Conn) Close() error {
	c.inj.mu.Lock()
	delete(c.inj.conns, c)
	c.inj.mu.Unlock()
	return c.Conn.Close()
}

// DialNet dials addr through the wire transports (TCP or mem://) and
// wraps the result — a drop-in replacement for wire.Dial.
func (i *Injector) DialNet(addr string) (net.Conn, error) {
	return i.DialNetAs("", addr)
}

// DialNetAs is DialNet with an owner tag (see WrapConnAs).
func (i *Injector) DialNetAs(owner, addr string) (net.Conn, error) {
	nc, err := wire.Dial(addr)
	if err != nil {
		return nil, err
	}
	return i.WrapConnAs(owner, addr, nc), nil
}

// Dial is an rpc-level dial function routing every connection through
// the injector; plug it into client.Options.Dial, controller/server
// Options.Dial, or jiffy.ClusterOptions.Dial to subject a whole
// deployment to the fault plan.
func (i *Injector) Dial(addr string) (*rpc.Client, error) {
	nc, err := i.DialNet(addr)
	if err != nil {
		return nil, err
	}
	return rpc.NewClient(wire.NewConn(nc)), nil
}

// DialAs returns an rpc-level dial function whose connections carry the
// given owner tag, so directed partitions installed with
// PartitionOneWay(owner, ...) apply to them.
func (i *Injector) DialAs(owner string) func(string) (*rpc.Client, error) {
	return func(addr string) (*rpc.Client, error) {
		nc, err := i.DialNetAs(owner, addr)
		if err != nil {
			return nil, err
		}
		return rpc.NewClient(wire.NewConn(nc)), nil
	}
}

// WrapListener injects faults on the accept side: every inbound conn
// is wrapped under the listener's own endpoint label.
func (i *Injector) WrapListener(lis net.Listener) net.Listener {
	return &listener{Listener: lis, inj: i}
}

type listener struct {
	net.Listener
	inj *Injector
}

// Accept implements net.Listener.
func (l *listener) Accept() (net.Conn, error) {
	nc, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return l.inj.WrapConn(l.Listener.Addr().String(), nc), nil
}
