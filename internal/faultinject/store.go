package faultinject

import (
	"jiffy/internal/persist"
)

// Store wraps a persist.Store with injected latency and errors, for
// chaos-testing flush/load/spill paths (lease-expiry flushes must
// survive a flaky persistent tier without losing data). Rules match
// the labels "persist:put", "persist:get", "persist:delete",
// "persist:list"; injected failures wrap ErrInjected.
type Store struct {
	inner persist.Store
	inj   *Injector
}

// Store wraps inner with this injector's fault plan.
func (i *Injector) Store(inner persist.Store) *Store {
	return &Store{inner: inner, inj: i}
}

// apply resolves faults for one persist op moving n payload bytes
// (bandwidth rules charge for them); Drop and Err both mean the
// operation fails (there is no silent drop for storage).
func (s *Store) apply(label string, n int) error {
	d := s.inj.decide(label, n)
	s.inj.sleep(d.Delay)
	if d.Err || d.Drop || d.Reset {
		return injectedErr("persist fault", label)
	}
	return nil
}

// Put implements persist.Store.
func (s *Store) Put(key string, data []byte) error {
	if err := s.apply("persist:put", len(data)); err != nil {
		return err
	}
	return s.inner.Put(key, data)
}

// Get implements persist.Store.
func (s *Store) Get(key string) ([]byte, error) {
	if err := s.apply("persist:get", 0); err != nil {
		return nil, err
	}
	return s.inner.Get(key)
}

// Delete implements persist.Store.
func (s *Store) Delete(key string) error {
	if err := s.apply("persist:delete", 0); err != nil {
		return err
	}
	return s.inner.Delete(key)
}

// List implements persist.Store.
func (s *Store) List(prefix string) ([]string, error) {
	if err := s.apply("persist:list", 0); err != nil {
		return nil, err
	}
	return s.inner.List(prefix)
}
