// Package faultinject is a deterministic, seed-driven fault layer for
// chaos-testing the live RPC stack and the persistent tier. It wraps
// the transports under internal/wire (both TCP and the in-process
// mem:// pipes speak net.Conn, so one wrapper covers both) and the
// persist.Store interface, injecting:
//
//   - latency and jitter (slept on a clock.Clock, so a virtual clock
//     makes injected delays free and steerable in simulations)
//   - persistent fail-slow degradation: fixed per-endpoint latency,
//     bandwidth throttling (delay proportional to bytes moved), and
//     ramped "brownout" schedules that fade the degradation in over a
//     configured window instead of switching it on at full strength
//   - message drops (a swallowed Write: the peer never sees the frame)
//   - connection resets (the conn is closed mid-operation)
//   - one-way partitions (every send toward a matching endpoint is
//     blackholed until healed; the reverse direction still flows),
//     including asymmetric owner-scoped partitions (PartitionOneWay:
//     A's sends to B vanish while C→B and B→A still flow)
//   - persist-tier errors (Put/Get/Delete/List fail with ErrInjected)
//
// Reproducibility contract: every probabilistic decision is a pure
// function of (seed, rule name, per-rule operation index) — not of
// goroutine interleaving or a shared RNG stream — so a fixed seed
// fixes the entire fault schedule. Schedule exposes that schedule for
// inspection; the chaos suite asserts same-seed runs agree. Brownout
// ramps and bandwidth delays depend additionally on the injector's
// clock and the operation's byte count; under a virtual clock both are
// deterministic too.
//
// Memory-ordering contract (rule visibility vs redial): every rule,
// partition, and connection-registry mutation and every fault decision
// serializes on one injector mutex. A rule added (or removed) before
// BreakConns returns is therefore visible to the first operation of
// any connection dialed afterwards — including the automatic redial a
// connection pool performs when the break fails its pooled session.
// To retire a fault plan atomically with the connections it shaped,
// mutate the rules first, then call BreakConns; the break severs the
// old conns while holding the mutex, so no operation can observe the
// old connection set with the new rule set or vice versa.
package faultinject

import (
	"errors"
	"fmt"
	"hash/fnv"
	"strings"
	"sync"
	"time"

	"jiffy/internal/clock"
)

// ErrInjected marks every error produced by the fault layer, so tests
// can distinguish injected faults from organic ones.
var ErrInjected = errors.New("faultinject: injected fault")

// Rule describes one fault source. Match is a substring tested against
// the operation's point label; labels are "send:<addr>" and
// "recv:<addr>" for connection traffic and "persist:put", "persist:get",
// "persist:delete", "persist:list" for the storage tier (so
// Match: "send:" hits all outbound traffic, Match: "persist:" the whole
// storage tier, Match: "mem://jiffy-1-server-0" one endpoint).
type Rule struct {
	// Name identifies the rule; it salts the decision hash, so two
	// rules with identical probabilities fire on different schedules.
	Name string
	// Match is the substring selecting the operations this rule applies to.
	Match string
	// DropProb is the probability a matched send is swallowed whole.
	DropProb float64
	// ResetProb is the probability the connection is closed instead of
	// carrying the message.
	ResetProb float64
	// ErrProb is the probability a matched persist operation fails.
	ErrProb float64
	// Latency is a fixed delay added to every matched operation — the
	// persistent fail-slow primitive.
	Latency time.Duration
	// Jitter adds a deterministic pseudo-uniform [0, Jitter) extra delay.
	Jitter time.Duration
	// BandwidthBps, when positive, throttles matched traffic to this
	// many bytes per second: each operation sleeps for the time its
	// byte count would take at that rate. Models a saturated NIC or a
	// degraded disk rather than pure added latency.
	BandwidthBps int64
	// RampOver, when positive, turns the rule into a brownout: its
	// Latency/Jitter/bandwidth delays scale linearly from zero at
	// install time to full strength once RampOver has elapsed on the
	// injector's clock. Probabilistic outcomes (drop/reset/err) are not
	// ramped — they follow the seeded schedule from the start.
	RampOver time.Duration
}

// Decision is the resolved outcome of one rule application; Schedule
// returns these for reproducibility checks.
type Decision struct {
	Drop  bool
	Reset bool
	Err   bool
	Delay time.Duration
}

// rule pairs the immutable description with its operation counter and
// install time (the brownout ramp origin). The counter is guarded by
// the injector mutex so the (rule, index) sequence is itself a
// serialized schedule.
type rule struct {
	Rule
	hash      uint64
	n         uint64
	installed time.Time
}

// oneWay is a directed owner-scoped partition: sends from owner
// (substring match) toward endpoints matching to are blackholed.
type oneWay struct {
	from string
	to   string
}

// Injector owns the rule set, the partition lists, and the registry of
// live wrapped connections. Safe for concurrent use: all state changes
// and fault decisions serialize on one mutex (see the package-level
// memory-ordering contract).
type Injector struct {
	seed uint64
	clk  clock.Clock

	mu         sync.Mutex
	rules      []*rule
	partitions []string
	oneWays    []oneWay
	conns      map[*Conn]struct{}
	disabled   bool
}

// New creates an injector; clk drives injected latency (nil = wall
// clock). The same seed with the same rule set reproduces the same
// fault schedule.
func New(seed int64, clk clock.Clock) *Injector {
	if clk == nil {
		clk = clock.Real{}
	}
	return &Injector{
		seed:  uint64(seed),
		clk:   clk,
		conns: make(map[*Conn]struct{}),
	}
}

// AddRule installs a fault rule; its operation counter starts at zero
// and its brownout ramp (if any) starts now. The rule is visible to
// every operation that begins after AddRule returns, including
// operations on connections dialed later (see the memory-ordering
// contract in the package comment).
func (i *Injector) AddRule(r Rule) {
	h := fnv.New64a()
	h.Write([]byte(r.Name))
	now := i.clk.Now()
	i.mu.Lock()
	i.rules = append(i.rules, &rule{Rule: r, hash: h.Sum64(), installed: now})
	i.mu.Unlock()
}

// RemoveRule deletes the named rule. No operation beginning after
// RemoveRule returns observes the rule.
func (i *Injector) RemoveRule(name string) {
	i.mu.Lock()
	defer i.mu.Unlock()
	kept := i.rules[:0]
	for _, r := range i.rules {
		if r.Name != name {
			kept = append(kept, r)
		}
	}
	i.rules = kept
}

// Partition blackholes every send whose label contains match — a
// one-way partition: A→B messages vanish while B→A still flows. The
// senders are not told; their calls time out via the RPC deadline.
func (i *Injector) Partition(match string) {
	i.mu.Lock()
	i.partitions = append(i.partitions, match)
	i.mu.Unlock()
}

// PartitionOneWay blackholes sends from connections owned by from
// toward endpoints matching to — an asymmetric partition: A cannot
// reach B while every other path, including B→A, still flows. Owners
// are the tags given to DialAs/WrapConnAs; a conn dialed without an
// owner tag never matches a non-empty from. An empty from matches
// every owner (degenerating to Partition(to)).
func (i *Injector) PartitionOneWay(from, to string) {
	i.mu.Lock()
	i.oneWays = append(i.oneWays, oneWay{from: from, to: to})
	i.mu.Unlock()
}

// HealOneWay removes a directed partition previously installed with
// PartitionOneWay.
func (i *Injector) HealOneWay(from, to string) {
	i.mu.Lock()
	defer i.mu.Unlock()
	kept := i.oneWays[:0]
	for _, p := range i.oneWays {
		if p.from != from || p.to != to {
			kept = append(kept, p)
		}
	}
	i.oneWays = kept
}

// Heal removes a partition previously installed with Partition.
func (i *Injector) Heal(match string) {
	i.mu.Lock()
	defer i.mu.Unlock()
	kept := i.partitions[:0]
	for _, p := range i.partitions {
		if p != match {
			kept = append(kept, p)
		}
	}
	i.partitions = kept
}

// HealAll removes every partition, symmetric and directed.
func (i *Injector) HealAll() {
	i.mu.Lock()
	i.partitions = nil
	i.oneWays = nil
	i.mu.Unlock()
}

// SetEnabled pauses (false) or resumes (true) all injection — rules,
// partitions and counters stay intact, so a pause does not perturb the
// schedule of faults that do fire.
func (i *Injector) SetEnabled(v bool) {
	i.mu.Lock()
	i.disabled = !v
	i.mu.Unlock()
}

// BreakConns force-closes every live wrapped connection whose endpoint
// contains match, and returns how many it severed — a crash/disconnect
// primitive: in-flight calls over those sessions fail fast with a
// session error. The victims are unregistered and their transports
// closed while the injector mutex is held, so the break is atomic with
// respect to rule evaluation: an operation either ran on the old conn
// under the pre-break rule set, or runs on a post-break redial seeing
// every rule mutation made before BreakConns was called.
func (i *Injector) BreakConns(match string) int {
	i.mu.Lock()
	var victims []*Conn
	for c := range i.conns {
		if match == "" || contains(c.endpoint, match) {
			victims = append(victims, c)
			delete(i.conns, c)
		}
	}
	for _, c := range victims {
		// Close the transport directly: victims are already
		// unregistered, and Conn.Close would re-take the mutex.
		c.Conn.Close()
	}
	i.mu.Unlock()
	return len(victims)
}

// blocked reports whether a send from owner toward label is currently
// partitioned (symmetric or directed).
func (i *Injector) blocked(label, owner string) bool {
	i.mu.Lock()
	defer i.mu.Unlock()
	if i.disabled {
		return false
	}
	for _, p := range i.partitions {
		if contains(label, p) {
			return true
		}
	}
	for _, p := range i.oneWays {
		if contains(label, p.to) && (p.from == "" || contains(owner, p.from)) {
			return true
		}
	}
	return false
}

// decide resolves the combined outcome of every rule matching label for
// an operation moving n bytes, consuming one schedule slot per matching
// rule. Delays add; any matched drop/reset/err applies. Latency/jitter
// and bandwidth delays are scaled by each rule's brownout ramp factor.
func (i *Injector) decide(label string, n int) Decision {
	i.mu.Lock()
	if i.disabled {
		i.mu.Unlock()
		return Decision{}
	}
	var d Decision
	var now time.Time
	haveNow := false
	for _, r := range i.rules {
		if !contains(label, r.Match) {
			continue
		}
		k := r.n
		r.n++
		step := decisionAt(i.seed, r, k)
		d.Drop = d.Drop || step.Drop
		d.Reset = d.Reset || step.Reset
		d.Err = d.Err || step.Err
		delay := step.Delay
		if r.BandwidthBps > 0 && n > 0 {
			delay += time.Duration(int64(n) * int64(time.Second) / r.BandwidthBps)
		}
		if r.RampOver > 0 && delay > 0 {
			if !haveNow {
				now = i.clk.Now()
				haveNow = true
			}
			elapsed := now.Sub(r.installed)
			if elapsed <= 0 {
				delay = 0
			} else if elapsed < r.RampOver {
				delay = time.Duration(float64(delay) * (float64(elapsed) / float64(r.RampOver)))
			}
		}
		d.Delay += delay
	}
	i.mu.Unlock()
	return d
}

// Schedule returns the decisions the named rule will make for its
// operation indices [0, n), without consuming the counter — the
// reproducibility contract made inspectable. Delays are the rule's
// full-strength values: brownout ramping and bandwidth charges apply
// on top at decide time.
func (i *Injector) Schedule(name string, n int) []Decision {
	i.mu.Lock()
	var target *rule
	for _, r := range i.rules {
		if r.Name == name {
			target = r
			break
		}
	}
	i.mu.Unlock()
	if target == nil {
		return nil
	}
	out := make([]Decision, n)
	for k := 0; k < n; k++ {
		out[k] = decisionAt(i.seed, target, uint64(k))
	}
	return out
}

// decisionAt computes rule r's decision for its k-th operation. Each
// probabilistic draw hashes (seed, rule, k, salt) through SplitMix64 —
// no shared RNG stream, so concurrency cannot reorder the schedule.
func decisionAt(seed uint64, r *rule, k uint64) Decision {
	var d Decision
	d.Drop = r.DropProb > 0 && unit(seed, r.hash, k, 1) < r.DropProb
	d.Reset = r.ResetProb > 0 && unit(seed, r.hash, k, 2) < r.ResetProb
	d.Err = r.ErrProb > 0 && unit(seed, r.hash, k, 3) < r.ErrProb
	d.Delay = r.Latency
	if r.Jitter > 0 {
		d.Delay += time.Duration(unit(seed, r.hash, k, 4) * float64(r.Jitter))
	}
	return d
}

// unit maps (seed, rule, op index, salt) to a uniform float in [0, 1).
func unit(seed, ruleHash, k, salt uint64) float64 {
	h := splitmix64(seed ^ ruleHash ^ splitmix64(k*8+salt))
	return float64(h>>11) / float64(1<<53)
}

// splitmix64 is the SplitMix64 finalizer: a high-quality 64-bit mixer
// whose output is a pure function of its input.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// contains matches an operation label against a rule/partition pattern.
func contains(s, sub string) bool { return strings.Contains(s, sub) }

// sleep applies an injected delay on the injector's clock.
func (i *Injector) sleep(d time.Duration) {
	if d > 0 {
		i.clk.Sleep(d)
	}
}

// injectedErr builds a typed injected-fault error.
func injectedErr(what, where string) error {
	return fmt.Errorf("faultinject: %s %s: %w", what, where, ErrInjected)
}
