package obs

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// AdminOptions configures the per-process admin endpoint.
type AdminOptions struct {
	// Registry backs /metrics (required for that route).
	Registry *Registry
	// Spans backs the /spans recent-trace dump (optional).
	Spans *RingExporter
	// Health, if set, is consulted by /healthz; a non-nil error turns
	// the response into 503. Nil means always healthy.
	Health func() error
	// HealthDetail, if set, backs /healthz?detail=1: its return value is
	// JSON-encoded into the response (alongside the ok/error status), so
	// operators can see gray-failure state — degraded servers, membership
	// epoch — not just liveness.
	HealthDetail func() any
}

// NewAdminMux builds the admin handler: Prometheus text-format
// /metrics, /healthz, a /spans recent-trace dump, and /debug/pprof/*.
func NewAdminMux(opts AdminOptions) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if opts.Registry != nil {
			opts.Registry.WritePrometheus(w)
		}
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		var herr error
		if opts.Health != nil {
			herr = opts.Health()
		}
		if r.URL.Query().Get("detail") != "" && opts.HealthDetail != nil {
			w.Header().Set("Content-Type", "application/json")
			status := "ok"
			if herr != nil {
				status = herr.Error()
				w.WriteHeader(http.StatusServiceUnavailable)
			}
			json.NewEncoder(w).Encode(struct {
				Status string `json:"status"`
				Detail any    `json:"detail"`
			}{Status: status, Detail: opts.HealthDetail()})
			return
		}
		if herr != nil {
			http.Error(w, herr.Error(), http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("/spans", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		var spans []SpanEvent
		var total int64
		if opts.Spans != nil {
			spans = opts.Spans.Snapshot()
			total = opts.Spans.Total()
		}
		json.NewEncoder(w).Encode(struct {
			Total int64       `json:"total"`
			Spans []SpanEvent `json:"spans"`
		}{Total: total, Spans: spans})
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// AdminServer is a running admin endpoint.
type AdminServer struct {
	// Addr is the bound listen address (resolves ":0").
	Addr string
	srv  *http.Server
	lis  net.Listener
}

// ServeAdmin binds addr (e.g. ":9090" or "127.0.0.1:0") and serves the
// admin mux in a background goroutine.
func ServeAdmin(addr string, opts AdminOptions) (*AdminServer, error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: NewAdminMux(opts), ReadHeaderTimeout: 5 * time.Second}
	a := &AdminServer{Addr: lis.Addr().String(), srv: srv, lis: lis}
	go srv.Serve(lis)
	return a, nil
}

// Close shuts the endpoint down.
func (a *AdminServer) Close() error { return a.srv.Close() }
