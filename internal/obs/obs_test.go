package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGauge(t *testing.T) {
	var c Counter
	var g Gauge
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
				g.Inc()
				g.Dec()
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Fatalf("counter = %d, want 8000", c.Value())
	}
	if g.Value() != 0 {
		t.Fatalf("gauge = %d, want 0", g.Value())
	}
}

func TestHistogramBuckets(t *testing.T) {
	var h Histogram
	// Each value must land in the bucket whose bound is the smallest
	// power of two >= value.
	cases := []struct {
		v      int64
		bucket int
	}{
		{0, 0}, {-5, 0}, {1, 0}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {8, 3}, {9, 4},
		{1 << 20, 20}, {1<<40 + 1, histBuckets - 1},
	}
	for _, tc := range cases {
		before := h.counts[tc.bucket].Load()
		h.Observe(tc.v)
		if got := h.counts[tc.bucket].Load(); got != before+1 {
			t.Errorf("Observe(%d): bucket %d count %d, want %d", tc.v, tc.bucket, got, before+1)
		}
	}
	if h.Count() != int64(len(cases)) {
		t.Fatalf("count = %d, want %d", h.Count(), len(cases))
	}
}

func TestHistogramBoundsInvariant(t *testing.T) {
	// Cross-check the index computation against the rendered le bounds:
	// v must be <= the bound of its bucket, and > the previous bound.
	var h Histogram
	for v := int64(1); v < 1<<20; v = v*3 + 1 {
		h = Histogram{}
		h.Observe(v)
		for i := 0; i < histBuckets; i++ {
			if h.counts[i].Load() == 0 {
				continue
			}
			if b := bucketBound(i); b >= 0 && v > b {
				t.Fatalf("value %d landed in bucket le=%d", v, b)
			}
			if i > 0 {
				if prev := bucketBound(i - 1); v <= prev {
					t.Fatalf("value %d should fit earlier bucket le=%d", v, prev)
				}
			}
		}
	}
}

func TestRegistryPrometheusRoundTrip(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("jiffy_test_total", "A test counter.")
	g := r.Gauge("jiffy_test_gauge", "A test gauge.")
	r.GaugeFunc("jiffy_test_func", "A computed gauge.", func() int64 { return 7 })
	h := r.Histogram("jiffy_test_hist", "A test histogram.")
	c.Add(41)
	c.Inc()
	g.Set(-3)
	h.Observe(5)
	h.Observe(100)

	var buf bytes.Buffer
	r.WritePrometheus(&buf)
	m := ParsePrometheus(buf.Bytes())
	if m["jiffy_test_total"] != 42 {
		t.Errorf("counter = %v, want 42", m["jiffy_test_total"])
	}
	if m["jiffy_test_gauge"] != -3 {
		t.Errorf("gauge = %v, want -3", m["jiffy_test_gauge"])
	}
	if m["jiffy_test_func"] != 7 {
		t.Errorf("gauge func = %v, want 7", m["jiffy_test_func"])
	}
	if m["jiffy_test_hist_count"] != 2 {
		t.Errorf("hist count = %v, want 2", m["jiffy_test_hist_count"])
	}
	if m["jiffy_test_hist_sum"] != 105 {
		t.Errorf("hist sum = %v, want 105", m["jiffy_test_hist_sum"])
	}
	if m[`jiffy_test_hist_bucket{le="+Inf"}`] != 2 {
		t.Errorf("+Inf bucket = %v, want 2", m[`jiffy_test_hist_bucket{le="+Inf"}`])
	}
	// Cumulative: the le=8 bucket holds the 5 but not the 100.
	if m[`jiffy_test_hist_bucket{le="8"}`] != 1 {
		t.Errorf(`le="8" bucket = %v, want 1`, m[`jiffy_test_hist_bucket{le="8"}`])
	}
}

func TestRPCMetricsRender(t *testing.T) {
	m := NewRPCMetrics("client")
	s := m.Method(0x0101)
	s.Requests.Add(3)
	s.BytesOut.Add(300)
	s.Latency.ObserveDuration(5 * time.Millisecond)
	if m.Method(0x0101) != s {
		t.Fatal("Method not stable")
	}
	if m.Method(0x0001) == s {
		t.Fatal("controller/server methods alias")
	}
	r := NewRegistry()
	m.Register(r, func(method uint16) string {
		if method == 0x0101 {
			return "DataOp"
		}
		return ""
	})
	var buf bytes.Buffer
	r.WritePrometheus(&buf)
	parsed := ParsePrometheus(buf.Bytes())
	key := `jiffy_rpc_requests_total{role="client",method="DataOp"}`
	if parsed[key] != 3 {
		t.Fatalf("%s = %v, want 3 (output:\n%s)", key, parsed[key], buf.String())
	}
	if parsed[`jiffy_rpc_latency_usec_count{role="client",method="DataOp"}`] != 1 {
		t.Fatal("latency histogram missing")
	}
	// Untouched methods must not be rendered.
	if strings.Contains(buf.String(), "0x0002") {
		t.Fatal("inactive method slot rendered")
	}
}

func TestSpanContextPropagation(t *testing.T) {
	ctx := context.Background()
	if _, ok := SpanFromContext(ctx); ok {
		t.Fatal("background ctx should carry no span")
	}
	sc := SpanContext{TraceID: NewID(), SpanID: NewID()}
	ctx = ContextWithSpan(ctx, sc)
	got, ok := SpanFromContext(ctx)
	if !ok || got != sc {
		t.Fatalf("got %+v ok=%v, want %+v", got, ok, sc)
	}
}

func TestNewIDUnique(t *testing.T) {
	seen := make(map[uint64]bool)
	for i := 0; i < 10000; i++ {
		id := NewID()
		if id == 0 || seen[id] {
			t.Fatalf("duplicate or zero id %x at %d", id, i)
		}
		seen[id] = true
	}
}

func TestTracerParentChild(t *testing.T) {
	ring := NewRingExporter(16)
	tr := NewTracer(ring, nil)
	ctx, root := tr.Begin(context.Background(), "root", "")
	_, child := tr.Begin(ctx, "child", "srv1")
	child.End(errors.New("boom"))
	root.End(nil)

	spans := ring.Snapshot()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	c, r := spans[0], spans[1]
	if c.TraceID != r.TraceID {
		t.Fatal("child not in root's trace")
	}
	if c.ParentID != r.SpanID {
		t.Fatal("child's parent is not root")
	}
	if c.Err != "boom" || r.Err != "" {
		t.Fatalf("err fields wrong: %q %q", c.Err, r.Err)
	}
	var nilTracer *Tracer
	nctx, sp := nilTracer.Begin(context.Background(), "x", "")
	sp.End(nil) // must not panic
	if _, ok := SpanFromContext(nctx); ok {
		t.Fatal("nil tracer must not install a span")
	}
}

func TestRingExporterEviction(t *testing.T) {
	ring := NewRingExporter(3)
	for i := 1; i <= 5; i++ {
		ring.ExportSpan(SpanEvent{SpanID: uint64(i)})
	}
	spans := ring.Snapshot()
	if len(spans) != 3 {
		t.Fatalf("len = %d, want 3", len(spans))
	}
	for i, want := range []uint64{3, 4, 5} {
		if spans[i].SpanID != want {
			t.Fatalf("spans[%d] = %d, want %d (oldest first)", i, spans[i].SpanID, want)
		}
	}
	if ring.Total() != 5 {
		t.Fatalf("total = %d, want 5", ring.Total())
	}
}

func TestAdminEndpoint(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("jiffy_admin_test_total", "Admin test counter.")
	c.Add(9)
	ring := NewRingExporter(8)
	ring.ExportSpan(SpanEvent{TraceID: 1, SpanID: 2, Name: "op"})
	healthy := true
	srv, err := ServeAdmin("127.0.0.1:0", AdminOptions{
		Registry: reg,
		Spans:    ring,
		Health: func() error {
			if !healthy {
				return errors.New("degraded")
			}
			return nil
		},
		HealthDetail: func() any {
			return struct {
				Degraded []string `json:"degraded_servers"`
			}{Degraded: []string{"mem://s1"}}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) (int, []byte) {
		resp, err := http.Get(fmt.Sprintf("http://%s%s", srv.Addr, path))
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		return resp.StatusCode, buf.Bytes()
	}

	code, body := get("/metrics")
	if code != 200 {
		t.Fatalf("/metrics status %d", code)
	}
	if m := ParsePrometheus(body); m["jiffy_admin_test_total"] != 9 {
		t.Fatalf("metrics body missing counter:\n%s", body)
	}

	code, body = get("/healthz")
	if code != 200 || !strings.Contains(string(body), "ok") {
		t.Fatalf("/healthz = %d %q", code, body)
	}
	code, body = get("/healthz?detail=1")
	if code != 200 {
		t.Fatalf("/healthz?detail=1 status %d", code)
	}
	var detail struct {
		Status string `json:"status"`
		Detail struct {
			Degraded []string `json:"degraded_servers"`
		} `json:"detail"`
	}
	if err := json.Unmarshal(body, &detail); err != nil {
		t.Fatalf("/healthz?detail=1 not JSON: %v (%q)", err, body)
	}
	if detail.Status != "ok" || len(detail.Detail.Degraded) != 1 || detail.Detail.Degraded[0] != "mem://s1" {
		t.Fatalf("healthz detail wrong: %+v", detail)
	}
	healthy = false
	if code, _ = get("/healthz"); code != http.StatusServiceUnavailable {
		t.Fatalf("unhealthy /healthz status %d, want 503", code)
	}
	if code, body = get("/healthz?detail=1"); code != http.StatusServiceUnavailable ||
		!strings.Contains(string(body), "degraded") {
		t.Fatalf("unhealthy detail = %d %q, want 503 with status", code, body)
	}

	code, body = get("/spans")
	if code != 200 {
		t.Fatalf("/spans status %d", code)
	}
	var dump struct {
		Total int64       `json:"total"`
		Spans []SpanEvent `json:"spans"`
	}
	if err := json.Unmarshal(body, &dump); err != nil {
		t.Fatalf("/spans not JSON: %v", err)
	}
	if dump.Total != 1 || len(dump.Spans) != 1 || dump.Spans[0].Name != "op" {
		t.Fatalf("spans dump wrong: %+v", dump)
	}

	if code, _ = get("/debug/pprof/cmdline"); code != 200 {
		t.Fatalf("/debug/pprof/cmdline status %d", code)
	}
}

func TestParsePrometheusLabels(t *testing.T) {
	in := "# HELP x y\nx{a=\"b c\",d=\"e\"} 12\nplain 3\nbad\n"
	m := ParsePrometheus([]byte(in))
	if m[`x{a="b c",d="e"}`] != 12 || m["plain"] != 3 {
		t.Fatalf("parse wrong: %v", m)
	}
}

func BenchmarkCounterInc(b *testing.B) {
	var c Counter
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}

func BenchmarkHistogramObserve(b *testing.B) {
	var h Histogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i & 0xffff))
	}
}

func BenchmarkMethodStatsHotPath(b *testing.B) {
	// The full per-call instrumentation sequence the rpc client runs.
	m := NewRPCMetrics("client")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := m.Method(0x0101)
		s.Requests.Inc()
		s.BytesOut.Add(128)
		s.InFlight.Inc()
		s.Latency.Observe(12)
		s.InFlight.Dec()
	}
}
