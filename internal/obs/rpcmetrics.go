package obs

import (
	"fmt"
	"io"
)

// methodGroups/methodSlots shape the per-method stats table. Jiffy's
// method identifiers are grouped by high byte (0x00xx controller plane,
// 0x01xx data plane) with small low-byte offsets, so a fixed
// [2][64] array indexed by (method>>8, method&0x3f) gives lock-free
// per-method slots without a map lookup on the hot path.
const (
	methodGroups = 2
	methodSlots  = 64
)

// MethodStats holds the per-method RPC instrumentation: request and
// error counts, bytes in/out, calls in flight, and a latency histogram
// in microseconds.
type MethodStats struct {
	Requests Counter
	Errors   Counter
	BytesIn  Counter
	BytesOut Counter
	InFlight Gauge
	Latency  Histogram
}

// RPCMetrics is one side's view of the RPC plane — role is "client"
// for outbound calls and "server" for inbound dispatch. Retries and
// Redirects are client-side only (retry loops and ErrRedirect
// follows); they stay zero on servers.
type RPCMetrics struct {
	Role      string
	Retries   Counter
	Redirects Counter

	methods [methodGroups][methodSlots]MethodStats
}

// NewRPCMetrics creates a stats table for the given role.
func NewRPCMetrics(role string) *RPCMetrics { return &RPCMetrics{Role: role} }

// Method returns the stats slot for a method identifier. Never nil;
// identifiers outside the known groups alias into the table rather
// than allocating.
func (m *RPCMetrics) Method(method uint16) *MethodStats {
	return &m.methods[(method>>8)%methodGroups][method%methodSlots]
}

// Register attaches the table to a registry. nameOf maps method
// identifiers to human-readable names (proto.MethodName); slots with
// no traffic are skipped at scrape time so the exposition stays small.
func (m *RPCMetrics) Register(r *Registry, nameOf func(uint16) string) {
	r.RegisterCollector(func(w io.Writer) { m.write(w, nameOf) })
}

func (m *RPCMetrics) write(w io.Writer, nameOf func(uint16) string) {
	WriteHeader(w, "jiffy_rpc_requests_total", "RPC requests by method.", "counter")
	m.eachActive(nameOf, func(labels string, s *MethodStats) {
		WriteSample(w, "jiffy_rpc_requests_total", labels, s.Requests.Value())
	})
	WriteHeader(w, "jiffy_rpc_errors_total", "RPC errors by method.", "counter")
	m.eachActive(nameOf, func(labels string, s *MethodStats) {
		WriteSample(w, "jiffy_rpc_errors_total", labels, s.Errors.Value())
	})
	WriteHeader(w, "jiffy_rpc_bytes_in_total", "RPC payload bytes received by method.", "counter")
	m.eachActive(nameOf, func(labels string, s *MethodStats) {
		WriteSample(w, "jiffy_rpc_bytes_in_total", labels, s.BytesIn.Value())
	})
	WriteHeader(w, "jiffy_rpc_bytes_out_total", "RPC payload bytes sent by method.", "counter")
	m.eachActive(nameOf, func(labels string, s *MethodStats) {
		WriteSample(w, "jiffy_rpc_bytes_out_total", labels, s.BytesOut.Value())
	})
	WriteHeader(w, "jiffy_rpc_in_flight", "RPC calls currently in flight by method.", "gauge")
	m.eachActive(nameOf, func(labels string, s *MethodStats) {
		WriteSample(w, "jiffy_rpc_in_flight", labels, s.InFlight.Value())
	})
	WriteHeader(w, "jiffy_rpc_latency_usec", "RPC latency in microseconds by method.", "histogram")
	m.eachActive(nameOf, func(labels string, s *MethodStats) {
		WriteHistogram(w, "jiffy_rpc_latency_usec", labels, &s.Latency)
	})
	WriteHeader(w, "jiffy_rpc_retries_total", "Client-side RPC retries.", "counter")
	WriteSample(w, "jiffy_rpc_retries_total", fmt.Sprintf("{role=%q}", m.Role), m.Retries.Value())
	WriteHeader(w, "jiffy_rpc_redirects_total", "Client-side redirect follows.", "counter")
	WriteSample(w, "jiffy_rpc_redirects_total", fmt.Sprintf("{role=%q}", m.Role), m.Redirects.Value())
}

// eachActive visits every method slot that has seen traffic, in table
// order, with its preformatted label block.
func (m *RPCMetrics) eachActive(nameOf func(uint16) string, fn func(labels string, s *MethodStats)) {
	for g := 0; g < methodGroups; g++ {
		for i := 0; i < methodSlots; i++ {
			s := &m.methods[g][i]
			if s.Requests.Value() == 0 && s.Latency.Count() == 0 && s.InFlight.Value() == 0 {
				continue
			}
			method := uint16(g)<<8 | uint16(i)
			name := fmt.Sprintf("0x%04x", method)
			if nameOf != nil {
				if n := nameOf(method); n != "" {
					name = n
				}
			}
			fn(fmt.Sprintf("{role=%q,method=%q}", m.Role, name), s)
		}
	}
}
