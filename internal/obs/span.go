package obs

import (
	"context"
	"log/slog"
	"os"
	"sync"
	"sync/atomic"
	"time"
)

// SpanContext identifies one span within one trace. It is the unit
// propagated across the wire in the trace-extension frame (see
// internal/wire): 8-byte trace ID, 8-byte span ID.
type SpanContext struct {
	TraceID uint64
	SpanID  uint64
}

// Valid reports whether the context carries a live trace.
func (s SpanContext) Valid() bool { return s.TraceID != 0 }

type spanCtxKey struct{}

// ContextWithSpan returns ctx carrying sc. Data-path calls made with
// the returned context propagate sc to the peer.
func ContextWithSpan(ctx context.Context, sc SpanContext) context.Context {
	return context.WithValue(ctx, spanCtxKey{}, sc)
}

// SpanFromContext extracts the propagated span context, if any.
func SpanFromContext(ctx context.Context) (SpanContext, bool) {
	sc, ok := ctx.Value(spanCtxKey{}).(SpanContext)
	return sc, ok
}

// idState seeds the lock-free ID generator: a splitmix64 walk over an
// atomic counter, seeded once per process from the clock and pid so
// concurrent processes don't collide.
var idState atomic.Uint64

func init() {
	idState.Store(uint64(time.Now().UnixNano()) ^ uint64(os.Getpid())<<32)
}

// NewID returns a non-zero pseudo-random 64-bit identifier for traces
// and spans. One atomic add, no locks, no allocation.
func NewID() uint64 {
	for {
		x := idState.Add(0x9e3779b97f4a7c15)
		x ^= x >> 30
		x *= 0xbf58476d1ce4e5b9
		x ^= x >> 27
		x *= 0x94d049bb133111eb
		x ^= x >> 31
		if x != 0 {
			return x
		}
	}
}

// SpanEvent is one completed span: a lifecycle record of a named
// operation within a trace. Events are fixed-size (no attribute maps)
// so recording stays allocation-light.
type SpanEvent struct {
	TraceID  uint64        `json:"trace_id"`
	SpanID   uint64        `json:"span_id"`
	ParentID uint64        `json:"parent_id,omitempty"`
	Name     string        `json:"name"`
	Peer     string        `json:"peer,omitempty"`
	Start    time.Time     `json:"start"`
	Duration time.Duration `json:"duration_ns"`
	Err      string        `json:"err,omitempty"`
}

// SpanExporter receives completed spans. Exporters must be safe for
// concurrent use and must not block.
type SpanExporter interface {
	ExportSpan(SpanEvent)
}

// RingExporter keeps the most recent spans in a fixed ring buffer —
// the default exporter behind the admin endpoint's /spans dump.
type RingExporter struct {
	mu    sync.Mutex
	buf   []SpanEvent
	next  int
	total int64
}

// NewRingExporter creates a ring holding up to n spans (min 1).
func NewRingExporter(n int) *RingExporter {
	if n < 1 {
		n = 1
	}
	return &RingExporter{buf: make([]SpanEvent, 0, n)}
}

// ExportSpan records e, evicting the oldest span once full.
func (r *RingExporter) ExportSpan(e SpanEvent) {
	r.mu.Lock()
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, e)
	} else {
		r.buf[r.next] = e
		r.next = (r.next + 1) % cap(r.buf)
	}
	r.total++
	r.mu.Unlock()
}

// Total returns the number of spans ever exported (including evicted).
func (r *RingExporter) Total() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Snapshot returns the buffered spans, oldest first.
func (r *RingExporter) Snapshot() []SpanEvent {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]SpanEvent, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}

// Tracer creates spans and hands completed ones to an exporter,
// optionally logging each as a structured lifecycle event. A nil
// *Tracer is inert: Begin returns a no-op span, so call sites need no
// nil checks.
type Tracer struct {
	exp SpanExporter
	log *slog.Logger
}

// NewTracer builds a tracer around exp (required) and logger
// (optional; spans are logged at debug level when set).
func NewTracer(exp SpanExporter, logger *slog.Logger) *Tracer {
	return &Tracer{exp: exp, log: logger}
}

// Span is one in-progress operation. Value type: creating and ending a
// span performs no heap allocation beyond the exporter's record.
type Span struct {
	t      *Tracer
	sc     SpanContext
	parent uint64
	name   string
	peer   string
	start  time.Time
}

// Context returns the span's propagation context.
func (s Span) Context() SpanContext { return s.sc }

// Begin starts a span named name. If ctx already carries a span the
// new one becomes its child within the same trace; otherwise a new
// root trace starts. The returned context carries the new span for
// downstream propagation.
func (t *Tracer) Begin(ctx context.Context, name, peer string) (context.Context, Span) {
	if t == nil {
		return ctx, Span{}
	}
	parent, _ := SpanFromContext(ctx)
	sc := SpanContext{TraceID: parent.TraceID, SpanID: NewID()}
	if sc.TraceID == 0 {
		sc.TraceID = NewID()
	}
	sp := Span{t: t, sc: sc, parent: parent.SpanID, name: name, peer: peer, start: time.Now()}
	return ContextWithSpan(ctx, sc), sp
}

// End completes the span, exporting (and optionally logging) its
// lifecycle event. No-op on a zero Span.
func (s Span) End(err error) {
	if s.t == nil {
		return
	}
	e := SpanEvent{
		TraceID:  s.sc.TraceID,
		SpanID:   s.sc.SpanID,
		ParentID: s.parent,
		Name:     s.name,
		Peer:     s.peer,
		Start:    s.start,
		Duration: time.Since(s.start),
	}
	if err != nil {
		e.Err = err.Error()
	}
	if s.t.exp != nil {
		s.t.exp.ExportSpan(e)
	}
	if s.t.log != nil {
		s.t.log.Debug("span",
			"trace", e.TraceID, "span", e.SpanID, "parent", e.ParentID,
			"name", e.Name, "peer", e.Peer, "dur", e.Duration, "err", e.Err)
	}
}

// Record exports a pre-built event directly (server-side dispatch uses
// this to avoid threading a Span value through the handler stack).
func (t *Tracer) Record(e SpanEvent) {
	if t == nil {
		return
	}
	if t.exp != nil {
		t.exp.ExportSpan(e)
	}
	if t.log != nil {
		t.log.Debug("span",
			"trace", e.TraceID, "span", e.SpanID, "parent", e.ParentID,
			"name", e.Name, "peer", e.Peer, "dur", e.Duration, "err", e.Err)
	}
}
