// Package obs is the live observability layer: lock-light runtime
// telemetry for a running cluster, as opposed to internal/metrics and
// internal/trace, which serve the offline experiment harness with
// exact-sample recording. Everything here is built for the hot path —
// atomic counters and gauges, fixed-bucket histograms with no
// per-sample allocation — plus span-style trace propagation and an
// admin HTTP endpoint exposing Prometheus text-format metrics.
package obs

import (
	"bufio"
	"fmt"
	"io"
	"math/bits"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// enabled is the process-wide telemetry switch. It exists so the
// benchmark harness can measure the overhead of the always-on
// instrumentation (see internal/bench/hotpath's *NoObs variants);
// production code never turns it off.
var enabled atomic.Bool

func init() { enabled.Store(true) }

// SetEnabled flips the process-wide telemetry switch and reports the
// previous value. Benchmark-only; not intended for production use.
func SetEnabled(on bool) bool { return enabled.Swap(on) }

// On reports whether telemetry is enabled. Hot paths check it once per
// operation; a single atomic load.
func On() bool { return enabled.Load() }

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an atomic instantaneous value.
type Gauge struct{ v atomic.Int64 }

// Set stores n.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Add adds n (may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// histBuckets is the number of histogram buckets. Bucket i counts
// observations v with v <= 2^i (power-of-two bounds); the final bucket
// is the +Inf overflow. 2^26 µs ≈ 67s comfortably covers RPC latency,
// and 2^26 covers any batch size.
const histBuckets = 28

// Histogram is a fixed-bucket histogram with power-of-two bounds and
// no per-sample allocation: one atomic add per observation (plus the
// sum and count), unlike the harness's exact-sample metrics.Histogram.
// Values are unitless; latency callers observe microseconds (see
// ObserveDuration), size callers observe counts or bytes.
type Histogram struct {
	counts [histBuckets]atomic.Int64
	count  atomic.Int64
	sum    atomic.Int64
}

// Observe records one sample. Values <= 0 land in the first bucket.
func (h *Histogram) Observe(v int64) {
	idx := 0
	if v > 0 {
		idx = bits.Len64(uint64(v - 1))
		if idx >= histBuckets {
			idx = histBuckets - 1
		}
	}
	h.counts[idx].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// ObserveDuration records a latency sample in microseconds.
func (h *Histogram) ObserveDuration(d time.Duration) {
	h.Observe(int64(d / time.Microsecond))
}

// Count returns the total number of samples.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// bucketBound returns the inclusive upper bound of bucket i, or -1 for
// the +Inf bucket.
func bucketBound(i int) int64 {
	if i >= histBuckets-1 {
		return -1
	}
	return int64(1) << uint(i)
}

// Registry is a set of named metrics rendered together in Prometheus
// text exposition format. Components own a Registry each; the admin
// endpoint serves it at /metrics.
type Registry struct {
	mu         sync.Mutex
	collectors []func(w io.Writer)
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// RegisterCollector adds a raw collector invoked at scrape time.
// Collectors must emit complete Prometheus text-format lines.
func (r *Registry) RegisterCollector(fn func(w io.Writer)) {
	r.mu.Lock()
	r.collectors = append(r.collectors, fn)
	r.mu.Unlock()
}

// Counter creates, registers and returns a named counter.
func (r *Registry) Counter(name, help string) *Counter {
	c := &Counter{}
	r.RegisterCollector(func(w io.Writer) {
		WriteHeader(w, name, help, "counter")
		WriteSample(w, name, "", c.Value())
	})
	return c
}

// Gauge creates, registers and returns a named gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	g := &Gauge{}
	r.RegisterCollector(func(w io.Writer) {
		WriteHeader(w, name, help, "gauge")
		WriteSample(w, name, "", g.Value())
	})
	return g
}

// GaugeFunc registers a gauge whose value is computed at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() int64) {
	r.RegisterCollector(func(w io.Writer) {
		WriteHeader(w, name, help, "gauge")
		WriteSample(w, name, "", fn())
	})
}

// Histogram creates, registers and returns a named histogram.
func (r *Registry) Histogram(name, help string) *Histogram {
	h := &Histogram{}
	r.RegisterCollector(func(w io.Writer) {
		WriteHeader(w, name, help, "histogram")
		WriteHistogram(w, name, "", h)
	})
	return h
}

// WritePrometheus renders every registered metric in text exposition
// format.
func (r *Registry) WritePrometheus(w io.Writer) {
	r.mu.Lock()
	collectors := make([]func(w io.Writer), len(r.collectors))
	copy(collectors, r.collectors)
	r.mu.Unlock()
	bw := bufio.NewWriter(w)
	for _, fn := range collectors {
		fn(bw)
	}
	bw.Flush()
}

// WriteHeader emits the # HELP / # TYPE preamble for a metric.
func WriteHeader(w io.Writer, name, help, typ string) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

// WriteSample emits one sample line. labels is either empty or a
// preformatted `{k="v",...}` block.
func WriteSample(w io.Writer, name, labels string, v int64) {
	fmt.Fprintf(w, "%s%s %d\n", name, labels, v)
}

// WriteHistogram emits the cumulative _bucket/_sum/_count series for h.
// labels is either empty or a preformatted `{k="v",...}` block whose
// keys must not include "le".
func WriteHistogram(w io.Writer, name, labels string, h *Histogram) {
	inner := ""
	if labels != "" {
		inner = labels[1:len(labels)-1] + ","
	}
	var cum int64
	for i := 0; i < histBuckets; i++ {
		cum += h.counts[i].Load()
		le := "+Inf"
		if b := bucketBound(i); b >= 0 {
			le = strconv.FormatInt(b, 10)
		}
		fmt.Fprintf(w, "%s_bucket{%sle=%q} %d\n", name, inner, le, cum)
	}
	fmt.Fprintf(w, "%s_sum%s %d\n", name, labels, h.Sum())
	fmt.Fprintf(w, "%s_count%s %d\n", name, labels, h.Count())
}

// ParsePrometheus parses text exposition format into a map from
// `name{labels}` (exactly as rendered) to value. Helper for tests and
// the CLI watch mode; histogram buckets appear as individual entries.
func ParsePrometheus(data []byte) map[string]float64 {
	out := make(map[string]float64)
	start := 0
	for i := 0; i <= len(data); i++ {
		if i != len(data) && data[i] != '\n' {
			continue
		}
		line := string(data[start:i])
		start = i + 1
		if line == "" || line[0] == '#' {
			continue
		}
		sp := -1
		depth := 0
		for j := 0; j < len(line); j++ {
			switch line[j] {
			case '{':
				depth++
			case '}':
				depth--
			case ' ':
				if depth == 0 {
					sp = j
				}
			}
			if sp >= 0 {
				break
			}
		}
		if sp < 0 {
			continue
		}
		v, err := strconv.ParseFloat(line[sp+1:], 64)
		if err != nil {
			continue
		}
		out[line[:sp]] = v
	}
	return out
}

// SortedKeys returns the keys of a parsed metric map in stable order.
func SortedKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
