package server

import (
	"sync"

	"jiffy/internal/core"
	"jiffy/internal/proto"
	"jiffy/internal/rpc"
)

// subRegistry implements the data plane's subscription map (§4.2.2):
// data-structure operations → client handles that want notifications.
type subRegistry struct {
	mu     sync.Mutex
	nextID uint64
	subs   map[uint64]*subscription
	// byBlock indexes subscriptions for fast notify on the data path.
	byBlock map[core.BlockID]map[uint64]*subscription
}

type subscription struct {
	id     uint64
	conn   *rpc.ServerConn
	ops    map[core.OpType]bool
	blocks []core.BlockID
}

func (r *subRegistry) init() {
	r.subs = make(map[uint64]*subscription)
	r.byBlock = make(map[core.BlockID]map[uint64]*subscription)
}

// add registers a subscription and returns its ID.
func (r *subRegistry) add(conn *rpc.ServerConn, blocks []core.BlockID, ops []core.OpType) uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.nextID++
	sub := &subscription{
		id:     r.nextID,
		conn:   conn,
		ops:    make(map[core.OpType]bool, len(ops)),
		blocks: blocks,
	}
	for _, op := range ops {
		sub.ops[op] = true
	}
	for _, b := range blocks {
		m := r.byBlock[b]
		if m == nil {
			m = make(map[uint64]*subscription)
			r.byBlock[b] = m
		}
		m[sub.id] = sub
	}
	r.subs[sub.id] = sub
	return sub.id
}

// count reports the number of live subscriptions (telemetry).
func (r *subRegistry) count() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return int64(len(r.subs))
}

// remove drops one subscription.
func (r *subRegistry) remove(id uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	sub, ok := r.subs[id]
	if !ok {
		return
	}
	delete(r.subs, id)
	for _, b := range sub.blocks {
		delete(r.byBlock[b], id)
		if len(r.byBlock[b]) == 0 {
			delete(r.byBlock, b)
		}
	}
}

// dropConn removes every subscription held by a disconnected client.
func (r *subRegistry) dropConn(conn *rpc.ServerConn) {
	r.mu.Lock()
	var ids []uint64
	for id, sub := range r.subs {
		if sub.conn == conn {
			ids = append(ids, id)
		}
	}
	r.mu.Unlock()
	for _, id := range ids {
		r.remove(id)
	}
}

// targets returns the (subID, conn) pairs subscribed to op on block.
func (r *subRegistry) targets(block core.BlockID, op core.OpType) []*subscription {
	r.mu.Lock()
	defer r.mu.Unlock()
	m := r.byBlock[block]
	if len(m) == 0 {
		return nil
	}
	out := make([]*subscription, 0, len(m))
	for _, sub := range m {
		if sub.ops[op] {
			out = append(out, sub)
		}
	}
	return out
}

// notify pushes a notification to every matching subscriber. Called on
// the data path after a successful operation; pushes are best-effort.
func (s *Server) notify(block core.BlockID, op core.OpType, data []byte) {
	targets := s.subs.targets(block, op)
	if len(targets) == 0 {
		return
	}
	payload, err := rpc.Marshal(proto.Notification{Block: block, Op: op, Data: data})
	if err != nil {
		return
	}
	for _, sub := range targets {
		if err := sub.conn.Push(sub.id, payload); err != nil {
			s.log.Debug("server: notification push failed", "sub", sub.id, "err", err)
		}
	}
}
