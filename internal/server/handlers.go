package server

import (
	"context"
	"errors"
	"fmt"

	"jiffy/internal/blockstore"
	"jiffy/internal/core"
	"jiffy/internal/ds"
	"jiffy/internal/proto"
	"jiffy/internal/rpc"
	"jiffy/internal/wire"
)

// handle is the memory server's RPC dispatch. Data-plane ops build
// their responses as scatter-gather views into block memory (see
// handleDataOp); the control-plane methods reply with freshly
// gob-encoded bodies.
func (s *Server) handle(ctx context.Context, conn *rpc.ServerConn, method uint16, payload []byte) (rpc.Response, error) {
	switch method {
	case proto.MethodDataOp:
		return s.handleDataOp(ctx, payload)
	case proto.MethodDataOpBatch:
		b, err := s.handleDataOpBatch(ctx, payload)
		return rpc.BytesResponse(b), err
	default:
		b, err := s.handleControl(ctx, conn, method, payload)
		return rpc.BytesResponse(b), err
	}
}

// handleControl serves the control-plane methods.
func (s *Server) handleControl(ctx context.Context, conn *rpc.ServerConn, method uint16, payload []byte) ([]byte, error) {
	switch method {
	case proto.MethodCreateBlock:
		var req proto.CreateBlockReq
		if err := rpc.Unmarshal(payload, &req); err != nil {
			return nil, err
		}
		if err := s.createBlock(req); err != nil {
			return nil, err
		}
		return rpc.Marshal(proto.CreateBlockResp{})

	case proto.MethodDeleteBlock:
		var req proto.DeleteBlockReq
		if err := rpc.Unmarshal(payload, &req); err != nil {
			return nil, err
		}
		// Take the tier object with the block: a deleted block's demoted
		// contents must never be resurrected (block IDs are recycled).
		if b, err := s.store.Get(req.Block); err == nil {
			b.TierMu.Lock()
			if b.TierKey != "" {
				if derr := s.persist.Delete(b.TierKey); derr != nil {
					s.log.Debug("server: tier object delete failed", "key", b.TierKey, "err", derr)
				}
				b.TierKey = ""
			}
			b.TierMu.Unlock()
		}
		if err := s.store.Delete(req.Block); err != nil {
			return nil, err
		}
		return rpc.Marshal(proto.DeleteBlockResp{})

	case proto.MethodSetNext:
		var req proto.SetNextReq
		if err := rpc.Unmarshal(payload, &req); err != nil {
			return nil, err
		}
		// Sealing is a sequenced mutation: on replicated queues it
		// flows down the chain in order with the enqueues it follows.
		if _, err := s.applyMutation(ctx, req.Block, core.OpQueueSetNext,
			[][]byte{ds.RedirectPayload(req.Next)}); err != nil {
			return nil, err
		}
		return rpc.Marshal(proto.SetNextResp{})

	case proto.MethodMoveSlots:
		var req proto.MoveSlotsReq
		if err := rpc.Unmarshal(payload, &req); err != nil {
			return nil, err
		}
		moved, err := s.moveSlots(ctx, req)
		if err != nil {
			return nil, err
		}
		return rpc.Marshal(proto.MoveSlotsResp{Moved: moved})

	case proto.MethodExportSlots:
		var req proto.ExportSlotsReq
		if err := rpc.Unmarshal(payload, &req); err != nil {
			return nil, err
		}
		entries, err := s.exportSlots(req)
		if err != nil {
			return nil, err
		}
		return rpc.Marshal(proto.ExportSlotsResp{Entries: entries})

	case proto.MethodImportEntries:
		var req proto.ImportEntriesReq
		if err := rpc.Unmarshal(payload, &req); err != nil {
			return nil, err
		}
		if err := s.importEntries(req); err != nil {
			return nil, err
		}
		return rpc.Marshal(proto.ImportEntriesResp{})

	case proto.MethodSetOwnedSlots:
		var req proto.SetOwnedSlotsReq
		if err := rpc.Unmarshal(payload, &req); err != nil {
			return nil, err
		}
		b, err := s.resolve(req.Block)
		if err != nil {
			return nil, err
		}
		defer b.EndOp()
		kv, ok := b.Partition.(*ds.KV)
		if !ok {
			return nil, fmt.Errorf("server: block %v is not a kv shard: %w",
				req.Block, core.ErrWrongType)
		}
		kv.SetOwned(req.Ranges)
		return rpc.Marshal(proto.SetOwnedSlotsResp{})

	case proto.MethodFlushBlock:
		var req proto.FlushBlockReq
		if err := rpc.Unmarshal(payload, &req); err != nil {
			return nil, err
		}
		b, err := s.store.Get(req.Block)
		if err != nil {
			return nil, err
		}
		// Tiered fast path: a demoted block's snapshot already sits in
		// the persist tier — copy it under the flush key instead of
		// rehydrating. This is what lets an idle tenant's lease expire
		// without pulling all its cold blocks back into memory.
		if done, n, ferr := s.flushTiered(b, req.Key); done {
			if ferr != nil {
				return nil, ferr
			}
			return rpc.Marshal(proto.FlushBlockResp{Bytes: n})
		}
		if err := s.resolveBlock(b); err != nil {
			return nil, err
		}
		defer b.EndOp()
		snap, err := b.Partition.Snapshot()
		if err != nil {
			return nil, err
		}
		if err := s.persist.Put(req.Key, snap); err != nil {
			return nil, err
		}
		return rpc.Marshal(proto.FlushBlockResp{Bytes: len(snap)})

	case proto.MethodLoadBlock:
		var req proto.LoadBlockReq
		if err := rpc.Unmarshal(payload, &req); err != nil {
			return nil, err
		}
		b, err := s.resolve(req.Block)
		if err != nil {
			return nil, err
		}
		defer b.EndOp()
		snap, err := s.persist.Get(req.Key)
		if err != nil {
			return nil, err
		}
		if err := b.Partition.Restore(snap); err != nil {
			return nil, err
		}
		return rpc.Marshal(proto.LoadBlockResp{})

	case proto.MethodSubscribe:
		var req proto.SubscribeReq
		if err := rpc.Unmarshal(payload, &req); err != nil {
			return nil, err
		}
		id := s.subs.add(conn, req.Blocks, req.Ops)
		return rpc.Marshal(proto.SubscribeResp{SubID: id})

	case proto.MethodUnsubscribe:
		var req proto.UnsubscribeReq
		if err := rpc.Unmarshal(payload, &req); err != nil {
			return nil, err
		}
		s.subs.remove(req.SubID)
		return rpc.Marshal(proto.UnsubscribeResp{})

	case proto.MethodServerStats:
		blocks, used, _ := s.store.Stats()
		return rpc.Marshal(proto.ServerStatsResp{
			Blocks:    blocks,
			UsedBytes: used,
			Capacity:  blocks * s.cfg.BlockSize,
			Ops:       s.ops.Load(),
		})

	case proto.MethodSnapshotBlock:
		var req proto.SnapshotBlockReq
		if err := rpc.Unmarshal(payload, &req); err != nil {
			return nil, err
		}
		b, err := s.resolve(req.Block)
		if err != nil {
			return nil, err
		}
		defer b.EndOp()
		snap, err := b.Partition.Snapshot()
		if err != nil {
			return nil, err
		}
		return rpc.Marshal(proto.SnapshotBlockResp{Snapshot: snap})

	case proto.MethodRestoreBlock:
		var req proto.RestoreBlockReq
		if err := rpc.Unmarshal(payload, &req); err != nil {
			return nil, err
		}
		b, err := s.resolve(req.Block)
		if err != nil {
			return nil, err
		}
		defer b.EndOp()
		if err := b.Partition.Restore(req.Snapshot); err != nil {
			return nil, err
		}
		return rpc.Marshal(proto.RestoreBlockResp{})

	case proto.MethodReplicate:
		var req proto.ReplicateReq
		if err := rpc.Unmarshal(payload, &req); err != nil {
			return nil, err
		}
		if err := s.applyReplicated(ctx, req); err != nil {
			return nil, err
		}
		return rpc.Marshal(proto.ReplicateResp{})

	case proto.MethodSetTenantQuota:
		var req proto.SetTenantQuotaReq
		if err := rpc.Unmarshal(payload, &req); err != nil {
			return nil, err
		}
		s.gate.SetQuota(req.Tenant, req.Quota)
		return rpc.Marshal(proto.SetTenantQuotaResp{})

	case proto.MethodUpdateChain:
		var req proto.UpdateChainReq
		if err := rpc.Unmarshal(payload, &req); err != nil {
			return nil, err
		}
		b, err := s.store.Get(req.Block)
		if err != nil {
			return nil, err
		}
		if req.Seal {
			b.Seal()
		} else {
			b.SetChain(req.Chain, req.Gen)
		}
		return rpc.Marshal(proto.UpdateChainResp{})

	default:
		return nil, fmt.Errorf("server: unknown method %#x: %w", method, core.ErrNotFound)
	}
}

// handleInline is the read-pump fast path for small single data-plane
// ops (see rpc.SetInlineHandler): decode, pin, apply, respond — no
// per-request goroutine, no frame copy, with the request payload still
// in connection-owned storage. Anything that might block the pump —
// an active admission gate, tier rehydration, chain replication at the
// head — punts to the regular goroutine dispatch path with
// rpc.ErrDispatchAsync, so QoS, tiering, and replication behavior are
// byte-for-byte those of handleDataOp. Results never alias the request
// payload (partitions copy on insert; returned previous values are
// removed from, or views into, block memory), so responding from
// reused request storage is safe.
func (s *Server) handleInline(ctx context.Context, conn *rpc.ServerConn, method uint16, payload []byte) (rpc.Response, error) {
	if s.gate.Active() {
		// Admission decisions (token debits, throttle errors, queue
		// stats) belong on the fully instrumented path.
		return rpc.Response{}, rpc.ErrDispatchAsync
	}
	op, blockID, args, err := ds.DecodeRequest(payload)
	if err != nil {
		return rpc.Response{}, err
	}
	b, err := s.store.Get(blockID)
	if err != nil {
		return rpc.Response{}, err
	}
	if op.IsMutation() && len(b.Chain()) > 1 {
		// Chain-head sequencing forwards synchronously to the successor;
		// replica applies wait on sequence order. Neither belongs on the
		// read pump.
		return rpc.Response{}, rpc.ErrDispatchAsync
	}
	if !b.BeginOp() {
		// Demoted or demoting: resolving means persist-tier IO.
		return rpc.Response{}, rpc.ErrDispatchAsync
	}
	b.Touch(s.store.HeatNow())
	s.ops.Add(1)
	unpin := true
	defer func() {
		if unpin {
			b.EndOp()
		}
	}()

	var res [][]byte
	var release func()
	if op.IsMutation() {
		res, err = s.applyMutationOn(ctx, b, op, args, true)
	} else if v, handled, verr := ds.ApplyView(b.Partition, op, args); handled {
		// The view path bypasses Store.ApplyOn; keep the op counter
		// accurate (same accounting as handleDataOp).
		s.store.CountOps(1)
		res, release, err = v.Vals, v.Release, verr
	} else {
		res, err = s.store.ApplyOn(b, op, args, true)
	}
	if err != nil {
		if p := ds.RedirectPayloadOf(err); p != nil {
			return rpc.BytesResponse(p), core.ErrRedirect
		}
		return rpc.Response{}, err
	}
	var notifyData []byte
	if len(args) > 0 {
		notifyData = args[0]
	}
	// notify marshals synchronously (copying notifyData) and pushes over
	// buffered writers, so it is safe both on the read pump and with
	// data aliasing reused request storage.
	s.notify(blockID, op, notifyData)
	head, vec := ds.AppendValsVec(wire.GetBuf(), res)
	if release != nil {
		// A leased view aliases block memory until the wire layer fires
		// Release; keep the residency pin until then (it fires during
		// the synchronous response write on this path).
		unpin = false
		lease := release
		release = func() {
			lease()
			b.EndOp()
		}
	}
	return rpc.Response{Payload: head, Vec: vec, Release: release}, nil
}

// handleDataOp executes one data-plane operation: apply locally,
// propagate down the replication chain for mutations, then notify
// subscribers.
//
// Non-mutating ops are tried on the zero-copy view path first: the
// result slices alias block memory and travel to the socket without a
// server-side copy, with Response.Release carrying any read lease the
// partition holds (fired by the wire layer once the frame's bytes are
// consumed). Mutations and ops without a view form fall back to Apply,
// whose results are owned by the response outright — dequeued items and
// deleted/updated previous values are removed from the partition when
// they are returned, so vectoring them is ownership transfer, not
// aliasing.
func (s *Server) handleDataOp(ctx context.Context, payload []byte) (rpc.Response, error) {
	op, blockID, args, err := ds.DecodeRequest(payload)
	if err != nil {
		return rpc.Response{}, err
	}
	s.ops.Add(1)

	// resolve pins the block resident (rehydrating it from the persist
	// tier first if it was demoted); the pin is released when the
	// response no longer references block memory — at return for owned
	// results, at frame-release time for zero-copy views.
	b, err := s.resolve(blockID)
	if err != nil {
		return rpc.Response{}, err
	}
	unpin := true
	defer func() {
		if unpin {
			b.EndOp()
		}
	}()

	// Admission control keys on the tenant (the path's job component).
	// Chain-internal traffic (MethodReplicate) is exempt: it was already
	// admitted at the head, and re-charging it would double-bill
	// replicated tenants.
	admitted, aerr := s.gate.Admit(ctx, b.Tenant, 1, argBytes(args))
	if aerr != nil {
		var te *core.ThrottleError
		if errors.As(aerr, &te) {
			// The throttle rides the response payload like redirects do,
			// so the client recovers the retry-after hint (see ErrOf).
			return rpc.BytesResponse([]byte(te.Error())), te
		}
		return rpc.Response{}, aerr
	}
	if admitted != nil {
		defer admitted()
	}

	var res [][]byte
	var release func()
	if op.IsMutation() {
		res, err = s.applyMutationOn(ctx, b, op, args, true)
	} else if v, handled, verr := ds.ApplyView(b.Partition, op, args); handled {
		// The view path bypasses Store.ApplyOn; keep the op counter
		// accurate. On error no lease is held (ViewReader contract).
		s.store.CountOps(1)
		res, release, err = v.Vals, v.Release, verr
	} else {
		res, err = s.store.ApplyOn(b, op, args, true)
	}
	if err != nil {
		// Redirect errors carry the successor block in their payload.
		if p := ds.RedirectPayloadOf(err); p != nil {
			return rpc.BytesResponse(p), core.ErrRedirect
		}
		return rpc.Response{}, err
	}
	var notifyData []byte
	if len(args) > 0 {
		notifyData = args[0]
	}
	s.notify(blockID, op, notifyData)
	head, vec := ds.AppendValsVec(wire.GetBuf(), res)
	if release != nil {
		// A leased view aliases block memory until the wire layer fires
		// Release; keep the residency pin until then so a demotion
		// cannot release the memory under the in-flight frame.
		unpin = false
		lease := release
		release = func() {
			lease()
			b.EndOp()
		}
	}
	return rpc.Response{Payload: head, Vec: vec, Release: release}, nil
}

// handleDataOpBatch executes many data-plane ops from one request
// frame. All destination blocks are resolved under a single blockstore
// lock acquisition, ops apply in request order with per-op error
// attribution (one op's failure never aborts its neighbours), and
// repartition-threshold checks run once per mutated block after the
// whole batch lands. The per-op results travel back in one response
// frame, encoded into a pooled buffer.
func (s *Server) handleDataOpBatch(ctx context.Context, payload []byte) ([]byte, error) {
	ops, err := ds.DecodeBatchRequest(payload)
	if err != nil {
		return nil, err
	}
	s.ops.Add(int64(len(ops)))

	ids := make([]core.BlockID, 0, len(ops))
	seen := make(map[core.BlockID]struct{}, len(ops))
	for _, o := range ops {
		if _, dup := seen[o.Block]; !dup {
			seen[o.Block] = struct{}{}
			ids = append(ids, o.Block)
		}
	}
	blocks := s.store.GetMany(ids)

	// Pin every destination block resident for the whole batch,
	// rehydrating demoted ones. A block whose rehydration fails is
	// dropped from the map and its ops get the failure attributed
	// per-op, like any other per-block error. Batch results are copied
	// into the response buffer, so all pins release at return.
	var rehydrateErrs map[core.BlockID]error
	for id, b := range blocks {
		if err := s.resolveBlock(b); err != nil {
			if rehydrateErrs == nil {
				rehydrateErrs = make(map[core.BlockID]error)
			}
			rehydrateErrs[id] = err
			delete(blocks, id)
		}
	}
	defer func() {
		for _, b := range blocks {
			b.EndOp()
		}
	}()

	// Admission is charged once per distinct tenant in the batch (ops
	// and bytes summed), so a batch waits in the DRR queue at most once.
	// A throttled tenant's ops all fail with the per-tenant error;
	// neighbours from other tenants proceed.
	var throttledTenants map[string]error
	if s.gate.Active() {
		type tenantDemand struct{ ops, bytes int64 }
		demand := make(map[string]*tenantDemand)
		for _, o := range ops {
			b, ok := blocks[o.Block]
			if !ok {
				continue
			}
			t := b.Tenant
			d := demand[t]
			if d == nil {
				d = &tenantDemand{}
				demand[t] = d
			}
			d.ops++
			for _, a := range o.Args {
				d.bytes += int64(len(a))
			}
		}
		for t, d := range demand {
			release, aerr := s.gate.Admit(ctx, t, d.ops, d.bytes)
			if aerr != nil {
				if throttledTenants == nil {
					throttledTenants = make(map[string]error)
				}
				throttledTenants[t] = aerr
				continue
			}
			if release != nil {
				defer release()
			}
		}
	}

	results := make([]ds.BatchResult, len(ops))
	mutated := make(map[core.BlockID]*blockstore.Block, len(blocks))
	for i, o := range ops {
		b, ok := blocks[o.Block]
		if !ok {
			if rerr := rehydrateErrs[o.Block]; rerr != nil {
				results[i] = ds.ErrResult(rerr)
				continue
			}
			results[i] = ds.ErrResult(fmt.Errorf("blockstore: block %v unknown: %w",
				o.Block, core.ErrStaleEpoch))
			continue
		}
		if throttledTenants != nil {
			if terr := throttledTenants[b.Tenant]; terr != nil {
				results[i] = ds.ErrResult(terr)
				continue
			}
		}
		var res [][]byte
		var oerr error
		if o.Op.IsMutation() {
			res, oerr = s.applyMutationOn(ctx, b, o.Op, o.Args, false)
			if oerr == nil {
				mutated[o.Block] = b
			}
		} else {
			res, oerr = s.store.ApplyOn(b, o.Op, o.Args, false)
		}
		if oerr != nil {
			results[i] = ds.ErrResult(oerr)
			continue
		}
		var notifyData []byte
		if len(o.Args) > 0 {
			notifyData = o.Args[0]
		}
		s.notify(o.Block, o.Op, notifyData)
		results[i] = ds.OKResult(res)
	}
	for _, b := range mutated {
		s.store.CheckThresholds(b)
	}
	return ds.AppendBatchResults(wire.GetBuf(), results), nil
}

// argBytes sums the request argument bytes of one op — the ingress
// byte measure charged against a tenant's BytesPerSec bucket.
func argBytes(args [][]byte) int64 {
	var n int64
	for _, a := range args {
		n += int64(len(a))
	}
	return n
}

// applyMutation applies a mutating op, sequencing and propagating it
// down the replication chain when the block is a replicated head.
func (s *Server) applyMutation(ctx context.Context, blockID core.BlockID, op core.OpType, args [][]byte) ([][]byte, error) {
	b, gerr := s.resolve(blockID)
	if gerr != nil {
		return nil, gerr
	}
	defer b.EndOp()
	return s.applyMutationOn(ctx, b, op, args, true)
}

// applyMutationOn applies a mutating op against a resolved block.
// checkNow is threaded to the blockstore's threshold evaluation (false
// on the batch path, which checks once per block afterwards).
func (s *Server) applyMutationOn(ctx context.Context, b *blockstore.Block, op core.OpType, args [][]byte, checkNow bool) ([][]byte, error) {
	if chain := b.Chain(); len(chain) > 1 && chain.Head().ID == b.ID {
		// Replicated mutation at the chain head: apply under the
		// block's sequence lock so the propagation stream's order
		// matches local order, then forward synchronously. The chain
		// used for forwarding is re-read under that lock together with
		// the stamped generation, so a repair splice landing between
		// the check above and the sequence assignment can never pair a
		// new generation with the old layout (which would let mid-chain
		// survivors apply a mutation the spliced-in replacement misses,
		// wedging the sequence stream on the hole).
		res, locked, seq, gen, err := b.NextReplSeq(func() ([][]byte, error) {
			return s.store.ApplyOn(b, op, args, checkNow)
		})
		if err != nil {
			return nil, err
		}
		if rerr := s.propagate(ctx, b, locked, seq, gen, op, args); rerr != nil {
			return nil, rerr
		}
		return res, nil
	}
	if b.Sealed() {
		return nil, fmt.Errorf("server: block %v sealed for migration: %w",
			b.ID, core.ErrStaleEpoch)
	}
	res, err := s.store.ApplyOn(b, op, args, checkNow)
	if err == nil && b.Sealed() {
		// The seal landed while the mutation was applying: the
		// migration snapshot may not include it, so it must not be
		// acknowledged. The client retries against the migrated block.
		return nil, fmt.Errorf("server: block %v sealed for migration: %w",
			b.ID, core.ErrStaleEpoch)
	}
	return res, err
}

// createBlock installs a partition per the controller's instruction.
func (s *Server) createBlock(req proto.CreateBlockReq) error {
	var part ds.Partition
	switch req.Type {
	case core.DSFile:
		part = ds.NewFile(req.Capacity)
	case core.DSQueue:
		part = ds.NewQueue(req.Capacity)
	case core.DSKV:
		part = ds.NewKV(req.Capacity, req.NumSlots, req.Slots)
	default:
		p, err := ds.NewCustom(req.Type, req.Capacity, req.NumSlots)
		if err != nil {
			return fmt.Errorf("server: create block of type %v: %w", req.Type, core.ErrWrongType)
		}
		part = p
	}
	b := &blockstore.Block{
		ID:        req.Block,
		Path:      req.Path,
		Tenant:    string(req.Path.Job()),
		Partition: part,
		Chunk:     req.Chunk,
		NumSlots:  req.NumSlots,
	}
	// Creation counts as a promotion: the cooldown window protects the
	// fresh block from immediate demotion, and the access stamp keeps
	// it out of the idle scan until it has actually gone idle.
	now := s.clk.Now().UnixNano()
	b.Touch(now)
	b.SetPromotedAt(now)
	b.SetChain(req.Chain, 0)
	return s.store.Create(b)
}

// moveSlots is the donor side of KV repartitioning (Fig. 8 step 4):
// export the pairs in the moving ranges and deliver them to the target
// block — possibly on another server, possibly on this one.
func (s *Server) moveSlots(ctx context.Context, req proto.MoveSlotsReq) (int, error) {
	b, err := s.resolve(req.Block)
	if err != nil {
		return 0, err
	}
	defer b.EndOp()
	kv, ok := b.Partition.(*ds.KV)
	if !ok {
		return 0, fmt.Errorf("server: block %v is not a kv shard: %w",
			req.Block, core.ErrWrongType)
	}
	entries := kv.ExportSlots(req.Ranges)
	imp := proto.ImportEntriesReq{Block: req.Target.ID, Ranges: req.Ranges, Entries: entries}
	if req.Target.Server == s.addr {
		if err := s.importEntries(imp); err != nil {
			return 0, err
		}
	} else {
		peer, err := s.peers.Get(req.Target.Server)
		if err != nil {
			return 0, err
		}
		var resp proto.ImportEntriesResp
		if err := peer.CallGobCtx(ctx, proto.MethodImportEntries, imp, &resp); err != nil {
			return 0, err
		}
	}
	return len(entries), nil
}

// exportSlots removes and returns the pairs in the moving ranges from
// one replica, disowning the ranges. The controller calls this on every
// chain member (tail first) during repartitioning, so no member is ever
// brought back in sync by a snapshot restore while live.
func (s *Server) exportSlots(req proto.ExportSlotsReq) ([]ds.KVEntry, error) {
	b, err := s.resolve(req.Block)
	if err != nil {
		return nil, err
	}
	defer b.EndOp()
	kv, ok := b.Partition.(*ds.KV)
	if !ok {
		return nil, fmt.Errorf("server: block %v is not a kv shard: %w",
			req.Block, core.ErrWrongType)
	}
	return kv.ExportSlots(req.Ranges), nil
}

// importEntries is the recipient side of a slot move.
func (s *Server) importEntries(req proto.ImportEntriesReq) error {
	b, err := s.resolve(req.Block)
	if err != nil {
		return err
	}
	defer b.EndOp()
	kv, ok := b.Partition.(*ds.KV)
	if !ok {
		return fmt.Errorf("server: block %v is not a kv shard: %w",
			req.Block, core.ErrWrongType)
	}
	kv.ImportEntries(req.Ranges, req.Entries)
	return nil
}
