// Package server implements the Jiffy memory server (data plane,
// §4.2.2): it hosts fixed-size blocks in a blockstore, serves
// data-structure operations over the framed RPC protocol, pushes
// notifications to subscribers, signals the controller when blocks
// cross the repartitioning thresholds, executes controller-shipped
// repartitioning (slot moves), participates in chain replication, and
// flushes/loads blocks to/from the persistent tier.
package server

import (
	"errors"
	"fmt"
	"io"
	"log/slog"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"jiffy/internal/blockstore"
	"jiffy/internal/clock"
	"jiffy/internal/core"
	"jiffy/internal/obs"
	"jiffy/internal/persist"
	"jiffy/internal/proto"
	"jiffy/internal/qos"
	"jiffy/internal/rpc"
	"jiffy/internal/wire"
)

// Options configures a memory server.
type Options struct {
	// Config supplies block size and thresholds.
	Config core.Config
	// ControllerAddrs lists the controller group members. The server
	// registers and heartbeats with whichever member currently leads,
	// re-homing automatically on NotLeader redirects or connection
	// failures. Empty (together with ControllerAddr) disables signaling
	// (unit tests drive scaling manually).
	ControllerAddrs []string
	// ControllerAddr is the single-controller form of ControllerAddrs.
	//
	// Deprecated: set ControllerAddrs. Kept as a shim for existing
	// callers; ignored when ControllerAddrs is non-empty.
	ControllerAddr string
	// NumBlocks is the capacity contribution announced at registration.
	NumBlocks int
	// Persist is the store used for block flush/load (defaults to an
	// in-memory store; production points at the shared external tier).
	Persist persist.Store
	// Logger receives operational logs.
	Logger *slog.Logger
	// Dial customizes outbound connections (controller, peer servers).
	Dial func(addr string) (*rpc.Client, error)
	// Clock paces the heartbeat loop (defaults to the wall clock; chaos
	// tests drive a virtual one and beat manually via HeartbeatNow).
	Clock clock.Clock
}

// Server is one memory server.
type Server struct {
	cfg     core.Config
	log     *slog.Logger
	persist persist.Store
	clk     clock.Clock

	store  *blockstore.Store
	rpcSrv *rpc.Server
	peers  *rpc.Pool
	gate   *qos.Gate

	addr      string
	ctrlAddrs []string
	// ctrlLeader indexes ctrlAddrs at the member last observed leading;
	// callCtrl starts there and re-homes on redirects.
	ctrlLeader atomic.Int32
	// numBlocks is the registered capacity, kept for re-registration
	// when the controller reports it no longer knows this server.
	numBlocks atomic.Int64

	signals chan signal
	reports chan proto.ReportFailureReq
	stop    chan struct{}
	wg      sync.WaitGroup

	// slowMu guards the per-successor stall streak counters behind
	// fail-slow detection (SlowHopThreshold); see noteForwardLatency.
	slowMu      sync.Mutex
	slowStreaks map[string]int

	subs subRegistry

	ops atomic.Int64

	// telemetry: per-method inbound RPC stats, store gauges, and a
	// bounded ring of recent server-side spans, served via Obs()/Spans().
	reg    *obs.Registry
	rpcm   *obs.RPCMetrics
	tracer *obs.Tracer
	spans  *obs.RingExporter

	// tiering counters (see tiering.go)
	tierDemotions      *obs.Counter
	tierPromotions     *obs.Counter
	tierRehydrateBytes *obs.Counter
}

type signal struct {
	path  core.Path
	block core.BlockID
	over  bool
}

// New creates a memory server; call Listen then Register.
func New(opts Options) (*Server, error) {
	if err := opts.Config.Validate(); err != nil {
		return nil, err
	}
	if opts.Logger == nil {
		opts.Logger = slog.Default()
	}
	if opts.Persist == nil {
		opts.Persist = persist.NewMemStore()
	}
	if opts.Clock == nil {
		opts.Clock = clock.Real{}
	}
	ctrlAddrs := opts.ControllerAddrs
	if len(ctrlAddrs) == 0 && opts.ControllerAddr != "" {
		ctrlAddrs = []string{opts.ControllerAddr}
	}
	s := &Server{
		cfg:       opts.Config,
		log:       opts.Logger,
		persist:   opts.Persist,
		clk:       opts.Clock,
		peers:     rpc.NewPool(rpc.WithTimeout(opts.Dial, opts.Config.RPCTimeout)),
		ctrlAddrs: ctrlAddrs,
		signals:   make(chan signal, 1024),
		reports:   make(chan proto.ReportFailureReq, 64),
		stop:      make(chan struct{}),
	}
	s.store = blockstore.NewStore(opts.Config.HighThreshold, opts.Config.LowThreshold, s.onSignal)
	s.gate = qos.NewGate(qos.Options{
		Clock:       opts.Clock,
		Concurrency: opts.Config.QoSConcurrency,
		MaxWait:     opts.Config.QoSMaxWait,
	})
	s.subs.init()
	s.reg = obs.NewRegistry()
	s.rpcm = obs.NewRPCMetrics("server")
	s.rpcm.Register(s.reg, proto.MethodName)
	s.spans = obs.NewRingExporter(512)
	s.tracer = obs.NewTracer(s.spans, opts.Logger)
	s.store.Instrument(s.reg)
	s.store.SetHeatNow(s.clk.Now().UnixNano())
	s.tierDemotions = s.reg.Counter("jiffy_tier_demotions_total",
		"blocks demoted to the persist tier")
	s.tierPromotions = s.reg.Counter("jiffy_tier_promotions_total",
		"blocks rehydrated from the persist tier")
	s.tierRehydrateBytes = s.reg.Counter("jiffy_tier_rehydrate_bytes_total",
		"snapshot bytes restored by rehydrations")
	s.reg.GaugeFunc("jiffy_blocks_tiered", "blocks currently demoted to the persist tier",
		func() int64 { return int64(s.store.TieredBlocks()) })
	s.reg.GaugeFunc("jiffy_store_resident_bytes", "payload bytes resident in memory (tiered blocks excluded)",
		s.store.ResidentBytes)
	s.reg.GaugeFunc("jiffy_server_subscriptions", "live notification subscriptions",
		func() int64 { return s.subs.count() })
	s.reg.RegisterCollector(func(w io.Writer) {
		stats := s.gate.Stats()
		if len(stats) == 0 {
			return
		}
		sort.Slice(stats, func(i, j int) bool { return stats[i].Tenant < stats[j].Tenant })
		families := []struct {
			name, help string
			v          func(qos.TenantStats) int64
		}{
			{"jiffy_tenant_admitted_total", "data-plane ops admitted per tenant",
				func(st qos.TenantStats) int64 { return st.Admitted }},
			{"jiffy_tenant_throttled_total", "data-plane ops refused by admission control per tenant",
				func(st qos.TenantStats) int64 { return st.Throttled }},
			{"jiffy_tenant_bytes_total", "ingress bytes admitted per tenant",
				func(st qos.TenantStats) int64 { return st.AdmittedBytes }},
		}
		for _, f := range families {
			obs.WriteHeader(w, f.name, f.help, "counter")
			for _, st := range stats {
				obs.WriteSample(w, f.name, fmt.Sprintf("{tenant=%q}", st.Tenant), f.v(st))
			}
		}
	})
	s.rpcSrv = rpc.NewServer(s.handle, opts.Logger)
	// Small single data-plane ops run directly on the connection read
	// pump; handleInline punts anything that might block back to the
	// goroutine path.
	s.rpcSrv.SetInlineHandler(s.handleInline, func(method uint16, payloadLen int) bool {
		return method == proto.MethodDataOp && payloadLen <= wire.InlineFrameThreshold
	})
	s.rpcSrv.SetObserver(s.rpcm, s.tracer)
	s.rpcSrv.OnDisconnect = func(conn *rpc.ServerConn) { s.subs.dropConn(conn) }
	s.wg.Add(1)
	go s.signalWorker()
	s.wg.Add(1)
	go s.reportWorker()
	if opts.Config.HeartbeatInterval > 0 && len(ctrlAddrs) > 0 {
		s.wg.Add(1)
		go s.heartbeatWorker()
	}
	// The tiering worker follows the heartbeat idiom: TierScanPeriod=0
	// disables the background loop and tests step scans deterministically
	// via TierTickNow.
	if s.tieringConfigured() && opts.Config.TierScanPeriod > 0 {
		s.wg.Add(1)
		go s.tierWorker()
	}
	return s, nil
}

// Listen binds the data-plane endpoint and returns the bound address.
func (s *Server) Listen(addr string) (string, error) {
	bound, err := s.rpcSrv.Listen(addr)
	if err != nil {
		return "", err
	}
	s.addr = bound
	return bound, nil
}

// Addr returns the bound data-plane address.
func (s *Server) Addr() string { return s.addr }

// ctrlIndexOf maps a leader-hint address to its slot in ctrlAddrs, or
// -1 when the hint is empty or names a member outside the configured
// group (callCtrl then falls back to round-robin probing).
func (s *Server) ctrlIndexOf(addr string) int {
	if addr == "" {
		return -1
	}
	for i, a := range s.ctrlAddrs {
		if a == addr {
			return i
		}
	}
	return -1
}

// callCtrl issues one control-plane call against the controller group,
// starting at the member last observed leading. A NotLeader redirect
// re-homes onto the hinted leader (or probes round-robin when the hint
// is unusable); a connection failure drops the pooled session and
// probes the next member. There is no sleep between probes — every
// caller here is a background worker with its own retry cadence, so a
// failed pass just surfaces the last error to that cadence.
func (s *Server) callCtrl(method uint16, req, resp any) error {
	n := len(s.ctrlAddrs)
	if n == 0 {
		return fmt.Errorf("server: no controller address configured")
	}
	idx := int(s.ctrlLeader.Load()) % n
	var lastErr error
	// One pass over the group plus slack for a hint follow.
	for attempt := 0; attempt <= n+1; attempt++ {
		addr := s.ctrlAddrs[idx]
		ctrl, err := s.peers.Get(addr)
		if err == nil {
			err = ctrl.CallGob(method, req, resp)
		}
		if err == nil {
			s.ctrlLeader.Store(int32(idx))
			return nil
		}
		lastErr = err
		switch {
		case errors.Is(err, core.ErrNotLeader):
			// A standby answered: invalidate its pooled session so a
			// later leadership change is not served from a stale conn.
			s.peers.Drop(addr)
			if hint, _ := core.LeaderHintOf(err); hint != addr {
				if j := s.ctrlIndexOf(hint); j >= 0 {
					idx = j
					continue
				}
			}
			idx = (idx + 1) % n
		case errors.Is(err, core.ErrClosed) || errors.Is(err, core.ErrTimeout):
			s.peers.Drop(addr)
			idx = (idx + 1) % n
		default:
			// An operation-level answer from the leader; not a routing
			// problem, so surface it.
			return err
		}
	}
	return lastErr
}

// Register announces this server's capacity to the controller.
func (s *Server) Register(numBlocks int) error {
	s.numBlocks.Store(int64(numBlocks))
	var resp proto.RegisterServerResp
	return s.callCtrl(proto.MethodRegisterServer,
		proto.RegisterServerReq{Addr: s.addr, NumBlocks: numBlocks}, &resp)
}

// heartbeatWorker paces periodic liveness beats to the controller.
func (s *Server) heartbeatWorker() {
	defer s.wg.Done()
	for {
		select {
		case <-s.stop:
			return
		case <-s.clk.After(s.cfg.HeartbeatInterval):
			if err := s.HeartbeatNow(); err != nil {
				s.log.Debug("server: heartbeat failed", "err", err)
			}
		}
	}
}

// HeartbeatNow sends one liveness beat synchronously. If the
// controller no longer knows this server (it was declared dead, or the
// controller restarted), the server re-registers its capacity — the
// controller assigns a fresh block range; any blocks it hosted under
// the old registration have already been repaired away or marked lost.
// Deterministic tests call this directly instead of advancing the
// heartbeat clock.
func (s *Server) HeartbeatNow() error {
	if len(s.ctrlAddrs) == 0 || s.addr == "" {
		return nil
	}
	var resp proto.HeartbeatResp
	err := s.callCtrl(proto.MethodHeartbeat, proto.HeartbeatReq{Addr: s.addr}, &resp)
	if errors.Is(err, core.ErrNotFound) {
		if n := s.numBlocks.Load(); n > 0 {
			s.log.Info("server: controller lost track of us; re-registering",
				"addr", s.addr, "blocks", n)
			return s.Register(int(n))
		}
	}
	return err
}

// reportFailedHop enqueues write-path evidence that a chain hop's
// server is unreachable; a full queue drops the report (the failure
// detector will catch the death via missed heartbeats anyway).
func (s *Server) reportFailedHop(hop core.BlockInfo) {
	if len(s.ctrlAddrs) == 0 {
		return
	}
	select {
	case s.reports <- proto.ReportFailureReq{Reporter: s.addr, Server: hop.Server, Block: hop.ID}:
	default:
	}
}

// noteForwardLatency feeds one successful replication forward's round
// trip into fail-slow detection: a successor that stalls past
// SlowHopThreshold on SlowHopStreak consecutive forwards is reported to
// the controller as Degraded evidence — reachable, applying, but
// persistently slow (a gray failure heartbeats will never catch,
// because the server still beats on time). A single fast forward
// clears the streak, so transient hiccups never escalate.
func (s *Server) noteForwardLatency(hop core.BlockInfo, d time.Duration) {
	threshold := s.cfg.SlowHopThreshold
	if threshold <= 0 || len(s.ctrlAddrs) == 0 {
		return
	}
	streakLimit := s.cfg.SlowHopStreak
	if streakLimit <= 0 {
		streakLimit = core.DefaultSlowHopStreak
	}
	s.slowMu.Lock()
	if d <= threshold {
		if s.slowStreaks[hop.Server] != 0 {
			delete(s.slowStreaks, hop.Server)
		}
		s.slowMu.Unlock()
		return
	}
	if s.slowStreaks == nil {
		s.slowStreaks = make(map[string]int)
	}
	s.slowStreaks[hop.Server]++
	fire := s.slowStreaks[hop.Server] >= streakLimit
	if fire {
		delete(s.slowStreaks, hop.Server) // re-arm: re-report only after a fresh streak
	}
	s.slowMu.Unlock()
	if !fire {
		return
	}
	s.log.Warn("server: chain successor persistently slow; reporting degraded",
		"successor", hop.Server, "latency", d, "threshold", threshold)
	select {
	case s.reports <- proto.ReportFailureReq{
		Reporter: s.addr, Server: hop.Server, Block: hop.ID, Degraded: true,
	}:
	default:
	}
}

// reportWorker forwards failed-hop reports to the controller
// asynchronously, so the write path never waits on the control plane.
func (s *Server) reportWorker() {
	defer s.wg.Done()
	for {
		select {
		case <-s.stop:
			return
		case rep := <-s.reports:
			var resp proto.ReportFailureResp
			if err := s.callCtrl(proto.MethodReportFailure, rep, &resp); err != nil {
				s.log.Debug("server: failure report rejected", "server", rep.Server, "err", err)
			}
		}
	}
}

// Close stops the server.
func (s *Server) Close() error {
	select {
	case <-s.stop:
	default:
		close(s.stop)
	}
	s.wg.Wait()
	s.rpcSrv.Close()
	s.peers.Close()
	return nil
}

// onSignal enqueues a threshold crossing for the signal worker; a full
// queue drops the signal (it will re-fire after ResetSignal or on the
// client-triggered fallback path).
func (s *Server) onSignal(path core.Path, block core.BlockID, over bool) {
	select {
	case s.signals <- signal{path: path, block: block, over: over}:
	default:
		s.log.Debug("server: signal queue full; dropping", "block", block)
	}
}

// signalWorker forwards threshold crossings to the controller (Fig. 8
// step 1) asynchronously, so data-path operations never wait on the
// control plane.
func (s *Server) signalWorker() {
	defer s.wg.Done()
	for {
		select {
		case <-s.stop:
			return
		case sig := <-s.signals:
			s.deliverSignal(sig)
		}
	}
}

func (s *Server) deliverSignal(sig signal) {
	if len(s.ctrlAddrs) == 0 {
		return
	}
	var err error
	if sig.over {
		var resp proto.ScaleUpResp
		err = s.callCtrl(proto.MethodScaleUp,
			proto.ScaleUpReq{Path: sig.path, Block: sig.block}, &resp)
	} else {
		var resp proto.ScaleDownResp
		err = s.callCtrl(proto.MethodScaleDown,
			proto.ScaleDownReq{Path: sig.path, Block: sig.block}, &resp)
	}
	if err != nil {
		s.log.Debug("server: scale signal failed", "block", sig.block, "err", err)
	}
	// Re-arm threshold detection for the block (it may have been
	// deleted by a scale-down; ResetSignal tolerates that).
	s.store.ResetSignal(sig.block)
}

// Store exposes the blockstore for tests and the experiment harness.
func (s *Server) Store() *blockstore.Store { return s.store }

// Gate exposes the admission controller for tests and the soak harness.
func (s *Server) Gate() *qos.Gate { return s.gate }

// Obs exposes the server's metric registry for the admin endpoint.
func (s *Server) Obs() *obs.Registry { return s.reg }

// Spans exposes the bounded ring of recent server-side RPC spans.
func (s *Server) Spans() *obs.RingExporter { return s.spans }
