package server

import (
	"fmt"
	"runtime"
	"time"

	"jiffy/internal/blockstore"
	"jiffy/internal/core"
	"jiffy/internal/ds"
	"jiffy/internal/proto"
	"jiffy/internal/tier"
)

// This file implements the server half of cold-block tiering: the
// demotion worker that evicts cold blocks to the persist tier when the
// server crosses its memory watermark (or the block goes idle), and
// the transparent rehydrate-on-access path. Policy lives in
// internal/tier; this file owns the mechanics and their ordering
// guarantees:
//
//   - Demotion: flip the block to Demoting (new ops bounce at
//     BeginOp), wait for in-flight ops to drain, snapshot, write the
//     tier object, report the demotion to the controller, and only
//     then release the memory. Because the report lands before the
//     memory goes away, the controller's recorded tier key always
//     covers every acknowledged write — a tiered block survives its
//     whole chain dying.
//   - Rehydration: restore the partition from the tier object and
//     report the promotion to the controller before the block starts
//     serving again, so no write can be acknowledged while the
//     controller still believes a stale tier object is authoritative.
//
// Both transitions serialize on the block's TierMu; the data path
// never takes that lock — it pins residency with two atomic ops
// (BeginOp/EndOp) and stamps heat with one more.

// tieringConfigured reports whether any demotion trigger is enabled.
func (s *Server) tieringConfigured() bool {
	return s.cfg.MemoryWatermarkBytes > 0 || s.cfg.TierIdleAfter > 0
}

// tierWorker paces periodic demotion scans.
func (s *Server) tierWorker() {
	defer s.wg.Done()
	for {
		select {
		case <-s.stop:
			return
		case <-s.clk.After(s.cfg.TierScanPeriod):
			if _, err := s.TierTickNow(); err != nil {
				s.log.Debug("server: tier scan failed", "err", err)
			}
		}
	}
}

// TierTickNow runs one demotion scan synchronously: refresh the heat
// clock, evaluate the policy over resident blocks, and demote the
// planned victims. It returns the number of blocks demoted and the
// first demotion error (later victims are still attempted).
// Deterministic tests call this directly with TierScanPeriod=0, the
// same idiom as HeartbeatNow.
func (s *Server) TierTickNow() (int, error) {
	now := s.clk.Now()
	s.store.SetHeatNow(now.UnixNano())
	policy := tier.Policy{
		WatermarkBytes: s.cfg.MemoryWatermarkBytes,
		Cooldown:       s.cfg.TierCooldown,
		IdleAfter:      s.cfg.TierIdleAfter,
	}
	blocks := s.store.List()
	byID := make(map[core.BlockID]*blockstore.Block, len(blocks))
	cands := make([]tier.Candidate, 0, len(blocks))
	for _, b := range blocks {
		if b.TierState() != blockstore.TierMemory {
			continue
		}
		byID[b.ID] = b
		cands = append(cands, tier.Candidate{
			ID:         b.ID,
			Bytes:      int64(b.Partition.Bytes()),
			LastAccess: time.Unix(0, b.LastAccess()),
			PromotedAt: time.Unix(0, b.PromotedAt()),
			Pinned:     b.Sealed(),
		})
	}
	demoted := 0
	var firstErr error
	for _, id := range policy.Plan(now, cands) {
		ok, err := s.demoteBlock(byID[id])
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		if ok {
			demoted++
		}
	}
	return demoted, firstErr
}

// tierKeyFor names the persist-tier object for one demotion of b. The
// generation suffix makes keys unique across demote/rehydrate cycles,
// so a slow delete of the old object can never clobber a new one.
func (s *Server) tierKeyFor(b *blockstore.Block, gen uint64) string {
	return fmt.Sprintf("jiffy-tier/%s/%d/%d", s.addr, uint64(b.ID), gen)
}

// demoteBlock evicts one block to the persist tier. Returns false when
// the block was skipped (no longer resident, or sealed). See the file
// comment for the ordering argument.
func (s *Server) demoteBlock(b *blockstore.Block) (bool, error) {
	b.TierMu.Lock()
	defer b.TierMu.Unlock()
	if b.TierState() != blockstore.TierMemory || b.Sealed() {
		return false, nil
	}
	// Fence new ops, then wait out the ones already pinned. Ops are
	// normally short, so this drains in microseconds — but a pinned
	// replica op can legitimately park in ApplyInOrder waiting for an
	// earlier sequence number whose carrier is itself stuck behind this
	// demotion, so the wait must be bounded: give up, unfence, and let
	// the next scan retry once the stream has drained.
	b.SetTierState(blockstore.TierDemoting)
	const drainSpins = 100_000
	for i := 0; b.Inflight() != 0; i++ {
		if i >= drainSpins {
			b.SetTierState(blockstore.TierMemory)
			return false, nil
		}
		runtime.Gosched()
	}
	revert := func() { b.SetTierState(blockstore.TierMemory) }

	snap, err := b.Partition.Snapshot()
	if err != nil {
		revert()
		return false, fmt.Errorf("server: demote %v: snapshot: %w", b.ID, err)
	}
	gen := b.TierGen + 1
	key := s.tierKeyFor(b, gen)
	obj := tier.Object{
		Block:    b.ID,
		Gen:      gen,
		Type:     b.Partition.Type(),
		Capacity: b.Partition.Capacity(),
		NumSlots: b.NumSlots,
		Chunk:    b.Chunk,
		Snapshot: snap,
	}
	if err := s.persist.Put(key, tier.Encode(obj)); err != nil {
		revert()
		return false, fmt.Errorf("server: demote %v: persist: %w", b.ID, err)
	}
	// The controller must record the tier key before the memory copy
	// disappears: once this report lands, the block is recoverable from
	// the persist tier even if this whole server dies.
	if err := s.reportTier(b.ID, b.Path, key, gen, true); err != nil {
		_ = s.persist.Delete(key)
		revert()
		return false, fmt.Errorf("server: demote %v: report: %w", b.ID, err)
	}
	oldKey := b.TierKey
	b.TierGen = gen
	b.TierKey = key
	// Release the memory by restoring an empty partition of the same
	// shape. The real contents now live (only) in the tier object.
	if empty := emptySnapshot(b); empty != nil {
		if err := b.Partition.Restore(empty); err != nil {
			// The tier object is valid and recorded; serving resumes
			// from memory. Next scan retries the demotion.
			revert()
			return false, fmt.Errorf("server: demote %v: release: %w", b.ID, err)
		}
	}
	b.SetTierState(blockstore.TierTiered)
	if oldKey != "" {
		_ = s.persist.Delete(oldKey) // superseded by the new generation
	}
	s.tierDemotions.Inc()
	return true, nil
}

// emptySnapshot builds a zero-entry snapshot matching b's partition
// shape, used to release a demoted block's memory. Nil means the
// shape could not be rebuilt (custom types); the demotion then keeps
// the memory copy and is effectively a no-op, which is safe.
func emptySnapshot(b *blockstore.Block) []byte {
	p, err := ds.New(b.Partition.Type(), b.Partition.Capacity(), b.NumSlots)
	if err != nil {
		return nil
	}
	snap, err := p.Snapshot()
	if err != nil {
		return nil
	}
	return snap
}

// rehydrateBlock restores a tiered block from the persist tier. Called
// from the resolve loop when an op finds the block not resident; by
// the time it returns nil the block is serving from memory again and
// the controller has cleared its tier record. Idempotent: concurrent
// callers serialize on TierMu and the losers find the block already
// resident.
func (s *Server) rehydrateBlock(b *blockstore.Block) error {
	b.TierMu.Lock()
	defer b.TierMu.Unlock()
	if b.TierState() == blockstore.TierMemory {
		return nil
	}
	data, err := s.persist.Get(b.TierKey)
	if err != nil {
		return fmt.Errorf("server: rehydrate %v: persist get %q: %w", b.ID, b.TierKey, err)
	}
	obj, err := tier.Decode(data)
	if err != nil {
		return fmt.Errorf("server: rehydrate %v: %w", b.ID, err)
	}
	if obj.Block != b.ID || obj.Gen != b.TierGen {
		return fmt.Errorf("server: rehydrate %v: tier object mismatch (block %v gen %d, want gen %d)",
			b.ID, obj.Block, obj.Gen, b.TierGen)
	}
	if err := b.Partition.Restore(obj.Snapshot); err != nil {
		return fmt.Errorf("server: rehydrate %v: restore: %w", b.ID, err)
	}
	// The controller must forget the tier key before the block serves
	// again: otherwise a later chain repair could resurrect the stale
	// tier object over writes acknowledged after this rehydration. A
	// failed report fails the op; the client retries and sees latency,
	// not data loss.
	if err := s.reportTier(b.ID, b.Path, b.TierKey, b.TierGen, false); err != nil {
		return fmt.Errorf("server: rehydrate %v: report: %w", b.ID, err)
	}
	_ = s.persist.Delete(b.TierKey) // best-effort GC; key is generation-unique
	b.TierKey = ""
	now := s.clk.Now().UnixNano()
	b.SetPromotedAt(now)
	b.Touch(now)
	b.SetTierState(blockstore.TierMemory)
	s.tierPromotions.Inc()
	s.tierRehydrateBytes.Add(int64(len(obj.Snapshot)))
	return nil
}

// flushTiered handles a FlushBlock request against a block that is
// currently demoted: the flush snapshot is copied straight from the
// tier object to the requested key, without rehydrating. This is what
// makes scale-to-zero stick — an idle tenant's lease-expiry flush must
// not pull every cold block back into memory. Returns handled=false
// when the block is resident (caller takes the normal snapshot path).
func (s *Server) flushTiered(b *blockstore.Block, key string) (handled bool, bytes int, err error) {
	b.TierMu.Lock()
	defer b.TierMu.Unlock()
	if b.TierState() != blockstore.TierTiered {
		return false, 0, nil
	}
	data, err := s.persist.Get(b.TierKey)
	if err != nil {
		return true, 0, fmt.Errorf("server: flush tiered %v: persist get %q: %w", b.ID, b.TierKey, err)
	}
	obj, err := tier.Decode(data)
	if err != nil {
		return true, 0, fmt.Errorf("server: flush tiered %v: %w", b.ID, err)
	}
	if obj.Block != b.ID || obj.Gen != b.TierGen {
		return true, 0, fmt.Errorf("server: flush tiered %v: tier object mismatch (block %v gen %d, want gen %d)",
			b.ID, obj.Block, obj.Gen, b.TierGen)
	}
	if err := s.persist.Put(key, obj.Snapshot); err != nil {
		return true, 0, fmt.Errorf("server: flush tiered %v: persist put %q: %w", b.ID, key, err)
	}
	return true, len(obj.Snapshot), nil
}

// reportTier synchronously records a tier transition with the
// controller. With no controller configured (unit tests) the local
// transition proceeds unrecorded.
func (s *Server) reportTier(id core.BlockID, path core.Path, key string, gen uint64, demoted bool) error {
	if len(s.ctrlAddrs) == 0 {
		return nil
	}
	var resp proto.ReportTierResp
	return s.callCtrl(proto.MethodReportTier, proto.ReportTierReq{
		Server:  s.addr,
		Block:   id,
		Path:    path,
		Key:     key,
		Gen:     gen,
		Demoted: demoted,
	}, &resp)
}

// resolveBlock pins b resident for one operation, rehydrating it first
// if it has been demoted. On success the caller owns one residency pin
// and must release it with b.EndOp() when the op completes.
func (s *Server) resolveBlock(b *blockstore.Block) error {
	for {
		if b.BeginOp() {
			b.Touch(s.store.HeatNow())
			return nil
		}
		if err := s.rehydrateBlock(b); err != nil {
			return err
		}
	}
}

// resolve looks up a block and pins it resident (see resolveBlock).
func (s *Server) resolve(id core.BlockID) (*blockstore.Block, error) {
	b, err := s.store.Get(id)
	if err != nil {
		return nil, err
	}
	if err := s.resolveBlock(b); err != nil {
		return nil, err
	}
	return b, nil
}
