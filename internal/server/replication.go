package server

import (
	"context"
	"fmt"

	"jiffy/internal/blockstore"
	"jiffy/internal/core"
	"jiffy/internal/proto"
)

// Chain replication (§4.2.2): Jiffy supports chain replication at
// block granularity for applications that need intermediate-data fault
// tolerance. Writes enter at the chain head; the head applies each
// mutation under a per-block sequence lock (so the propagation
// stream's sequence order equals its local apply order) and forwards
// it synchronously to its successor, which applies mutations strictly
// in sequence order and forwards onwards. By the time the head
// acknowledges a write, every replica holds it. Reads are served at
// the tail — the classic chain-replication consistency argument: the
// tail only ever holds fully propagated writes. The controller
// provisions chains, spreads members across servers, and resynchronizes
// replicas by snapshot after KV slot moves (which bypass this path).

// propagate forwards a sequenced mutation from the chain head to its
// first successor.
func (s *Server) propagate(ctx context.Context, b *blockstore.Block, seq uint64, op core.OpType, args [][]byte) error {
	pos := chainPos(b.Chain, b.ID)
	if pos < 0 || pos+1 >= len(b.Chain) {
		return nil // sole replica or tail: nothing to forward
	}
	return s.forward(ctx, b.Chain[pos+1], seq, op, args, b.Chain)
}

// applyReplicated applies a forwarded mutation in sequence order and
// continues the chain.
func (s *Server) applyReplicated(ctx context.Context, req proto.ReplicateReq) error {
	b, err := s.store.Get(req.Block)
	if err != nil {
		return err
	}
	if _, err := b.ApplyInOrder(req.Seq, func() ([][]byte, error) {
		return s.store.Apply(req.Block, req.Op, req.Args)
	}); err != nil {
		return fmt.Errorf("server: replica apply: %w", err)
	}
	pos := chainPos(req.Chain, req.Block)
	if pos < 0 || pos+1 >= len(req.Chain) {
		return nil
	}
	return s.forward(ctx, req.Chain[pos+1], req.Seq, req.Op, req.Args, req.Chain)
}

// forward ships a mutation to the next chain hop.
func (s *Server) forward(ctx context.Context, next core.BlockInfo, seq uint64, op core.OpType, args [][]byte,
	chain core.ReplicaChain) error {
	peer, err := s.peers.Get(next.Server)
	if err != nil {
		return fmt.Errorf("server: chain hop %v unreachable: %w", next, err)
	}
	var resp proto.ReplicateResp
	return peer.CallGobCtx(ctx, proto.MethodReplicate, proto.ReplicateReq{
		Block: next.ID,
		Op:    op,
		Args:  args,
		Chain: chain,
		Seq:   seq,
	}, &resp)
}

// chainPos locates id inside chain (-1 when absent).
func chainPos(chain core.ReplicaChain, id core.BlockID) int {
	for i, b := range chain {
		if b.ID == id {
			return i
		}
	}
	return -1
}
