package server

import (
	"context"
	"errors"
	"fmt"

	"jiffy/internal/blockstore"
	"jiffy/internal/core"
	"jiffy/internal/proto"
)

// Chain replication (§4.2.2): Jiffy supports chain replication at
// block granularity for applications that need intermediate-data fault
// tolerance. Writes enter at the chain head; the head applies each
// mutation under a per-block sequence lock (so the propagation
// stream's sequence order equals its local apply order) and forwards
// it synchronously to its successor, which applies mutations strictly
// in sequence order and forwards onwards. By the time the head
// acknowledges a write, every replica holds it. Reads are served at
// the tail — the classic chain-replication consistency argument: the
// tail only ever holds fully propagated writes. The controller
// provisions chains, spreads members across servers, resynchronizes
// replicas by snapshot after KV slot moves (which bypass this path),
// and splices dead members out of chains (see internal/controller's
// repair planner); each splice starts a new chain generation so
// mutations from the old configuration fail fast instead of deadlocking
// the sequence stream.

// ChainHopError reports a transport-level failure reaching the next
// chain hop: the hop's server is unreachable or the connection died
// mid-call. It is write-path evidence that the server may be dead, so
// the head reports it to the controller's failure detector.
type ChainHopError struct {
	Hop core.BlockInfo
	Err error
}

func (e *ChainHopError) Error() string {
	return fmt.Sprintf("server: chain hop %v unreachable: %v", e.Hop, e.Err)
}

func (e *ChainHopError) Unwrap() error { return e.Err }

// ReplicaApplyError reports that a reachable replica failed to apply a
// forwarded mutation — an operation-level failure (stale generation,
// unknown block, partition error), not evidence that the hop is dead.
type ReplicaApplyError struct {
	Block core.BlockID
	Err   error
}

func (e *ReplicaApplyError) Error() string {
	return fmt.Sprintf("server: replica %v apply failed: %v", e.Block, e.Err)
}

func (e *ReplicaApplyError) Unwrap() error { return e.Err }

// propagate forwards a sequenced mutation from the chain head to its
// first successor. chain is the head's chain snapshot taken when the
// sequence number was assigned, so a concurrent repair splice cannot
// mix configurations within one mutation.
func (s *Server) propagate(ctx context.Context, b *blockstore.Block, chain core.ReplicaChain,
	seq, gen uint64, op core.OpType, args [][]byte) error {
	pos := chainPos(chain, b.ID)
	if pos < 0 || pos+1 >= len(chain) {
		return nil // sole replica or tail: nothing to forward
	}
	return s.forward(ctx, chain[pos+1], seq, gen, op, args, chain)
}

// applyReplicated applies a forwarded mutation in sequence order and
// continues the chain.
func (s *Server) applyReplicated(ctx context.Context, req proto.ReplicateReq) error {
	b, err := s.resolve(req.Block)
	if err != nil {
		return err
	}
	defer b.EndOp()
	if _, err := b.ApplyInOrder(req.Seq, req.Gen, func() ([][]byte, error) {
		return s.store.ApplyOn(b, req.Op, req.Args, true)
	}); err != nil {
		return fmt.Errorf("server: replica apply: %w", err)
	}
	pos := chainPos(req.Chain, req.Block)
	if pos < 0 || pos+1 >= len(req.Chain) {
		return nil
	}
	return s.forward(ctx, req.Chain[pos+1], req.Seq, req.Gen, req.Op, req.Args, req.Chain)
}

// forward ships a mutation to the next chain hop, classifying failures:
// transport-level failures become ChainHopError (and are reported to
// the controller as death evidence), everything else becomes
// ReplicaApplyError.
func (s *Server) forward(ctx context.Context, next core.BlockInfo, seq, gen uint64, op core.OpType, args [][]byte,
	chain core.ReplicaChain) error {
	peer, err := s.peers.Get(next.Server)
	if err != nil {
		s.reportFailedHop(next)
		return &ChainHopError{Hop: next, Err: err}
	}
	var resp proto.ReplicateResp
	start := s.clk.Now()
	err = peer.CallGobCtx(ctx, proto.MethodReplicate, proto.ReplicateReq{
		Block: next.ID,
		Op:    op,
		Args:  args,
		Chain: chain,
		Seq:   seq,
		Gen:   gen,
	}, &resp)
	if err == nil {
		// The successor applies in sequence order before replying, so the
		// forward round trip is a direct proxy for its ApplyInOrder stall:
		// a persistently slow hop is gray-failure evidence.
		s.noteForwardLatency(next, s.clk.Now().Sub(start))
		return nil
	}
	if errors.Is(err, core.ErrClosed) || errors.Is(err, core.ErrTimeout) {
		// The session died mid-call: evict it so the next attempt
		// re-dials, and surface the hop as possibly dead.
		s.peers.Drop(next.Server)
		s.reportFailedHop(next)
		return &ChainHopError{Hop: next, Err: err}
	}
	return &ReplicaApplyError{Block: next.ID, Err: err}
}

// chainPos locates id inside chain (-1 when absent).
func chainPos(chain core.ReplicaChain, id core.BlockID) int {
	for i, b := range chain {
		if b.ID == id {
			return i
		}
	}
	return -1
}
