package server_test

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"jiffy/internal/core"
	"jiffy/internal/ds"
	"jiffy/internal/persist"
	"jiffy/internal/proto"
	"jiffy/internal/rpc"
	"jiffy/internal/server"
)

var srvSeq int

// newServer boots one standalone memory server (no controller) plus a
// client connection to it.
func newServer(t *testing.T) (*server.Server, *rpc.Client, *persist.MemStore) {
	t.Helper()
	srvSeq++
	store := persist.NewMemStore()
	cfg := core.TestConfig()
	s, err := server.New(server.Options{Config: cfg, Persist: store})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := s.Listen(fmt.Sprintf("mem://standalone-srv-%d", srvSeq))
	if err != nil {
		t.Fatal(err)
	}
	c, err := rpc.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close(); s.Close() })
	return s, c, store
}

func createBlock(t *testing.T, c *rpc.Client, id core.BlockID, typ core.DSType,
	slots []ds.SlotRange, chunk int, chain core.ReplicaChain) {
	t.Helper()
	var resp proto.CreateBlockResp
	err := c.CallGob(proto.MethodCreateBlock, proto.CreateBlockReq{
		Block: id, Path: "j/t", Type: typ,
		Capacity: 64 * core.KB, NumSlots: 64, Slots: slots, Chunk: chunk, Chain: chain,
	}, &resp)
	if err != nil {
		t.Fatal(err)
	}
}

func dataOp(c *rpc.Client, id core.BlockID, op core.OpType, args ...[]byte) ([][]byte, error) {
	payload, err := c.Call(proto.MethodDataOp, ds.EncodeRequest(op, id, args))
	if err != nil {
		return nil, err
	}
	return ds.DecodeVals(payload)
}

func TestDataOpLifecycle(t *testing.T) {
	_, c, _ := newServer(t)
	createBlock(t, c, 1, core.DSKV, []ds.SlotRange{{Lo: 0, Hi: 63}}, 0, nil)
	if _, err := dataOp(c, 1, core.OpPut, []byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	res, err := dataOp(c, 1, core.OpGet, []byte("k"))
	if err != nil || string(res[0]) != "v" {
		t.Errorf("get = %v, %v", res, err)
	}
	// Delete the block; further ops report stale metadata.
	var dresp proto.DeleteBlockResp
	if err := c.CallGob(proto.MethodDeleteBlock, proto.DeleteBlockReq{Block: 1}, &dresp); err != nil {
		t.Fatal(err)
	}
	if _, err := dataOp(c, 1, core.OpGet, []byte("k")); !errors.Is(err, core.ErrStaleEpoch) {
		t.Errorf("op on deleted block = %v", err)
	}
}

func TestQueueRedirectOverRPC(t *testing.T) {
	_, c, _ := newServer(t)
	createBlock(t, c, 1, core.DSQueue, nil, 0, nil)
	createBlock(t, c, 2, core.DSQueue, nil, 1, nil)
	var resp proto.SetNextResp
	err := c.CallGob(proto.MethodSetNext, proto.SetNextReq{
		Block: 1, Next: core.BlockInfo{ID: 2, Server: "elsewhere"},
	}, &resp)
	if err != nil {
		t.Fatal(err)
	}
	// The sealed segment redirects enqueues, carrying the successor.
	payload, err := c.Call(proto.MethodDataOp, ds.EncodeRequest(core.OpEnqueue, 1, [][]byte{[]byte("x")}))
	if !errors.Is(err, core.ErrRedirect) {
		t.Fatalf("err = %v", err)
	}
	next, perr := ds.ParseRedirect(payload)
	if perr != nil || next.ID != 2 || next.Server != "elsewhere" {
		t.Errorf("redirect = %+v, %v", next, perr)
	}
}

func TestMoveSlotsLocal(t *testing.T) {
	s, c, _ := newServer(t)
	createBlock(t, c, 1, core.DSKV, []ds.SlotRange{{Lo: 0, Hi: 63}}, 0, nil)
	createBlock(t, c, 2, core.DSKV, nil, 0, nil)
	// Populate through the RPC path.
	for i := 0; i < 50; i++ {
		if _, err := dataOp(c, 1, core.OpPut, []byte(fmt.Sprintf("k%d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	var mresp proto.MoveSlotsResp
	err := c.CallGob(proto.MethodMoveSlots, proto.MoveSlotsReq{
		Block:  1,
		Ranges: []ds.SlotRange{{Lo: 32, Hi: 63}},
		Target: core.BlockInfo{ID: 2, Server: s.Addr()},
	}, &mresp)
	if err != nil {
		t.Fatal(err)
	}
	if mresp.Moved == 0 {
		t.Fatal("nothing moved")
	}
	// Every key is now reachable from exactly one block.
	found := 0
	for i := 0; i < 50; i++ {
		key := []byte(fmt.Sprintf("k%d", i))
		_, err1 := dataOp(c, 1, core.OpGet, key)
		_, err2 := dataOp(c, 2, core.OpGet, key)
		if (err1 == nil) == (err2 == nil) {
			t.Errorf("key %s reachable from both or neither: %v / %v", key, err1, err2)
		}
		if err1 == nil || err2 == nil {
			found++
		}
	}
	if found != 50 {
		t.Errorf("found %d of 50 keys", found)
	}
}

func TestMoveSlotsRemote(t *testing.T) {
	_, c1, _ := newServer(t)
	s2, c2, _ := newServer(t)
	createBlock(t, c1, 1, core.DSKV, []ds.SlotRange{{Lo: 0, Hi: 63}}, 0, nil)
	createBlock(t, c2, 2, core.DSKV, nil, 0, nil)
	for i := 0; i < 30; i++ {
		if _, err := dataOp(c1, 1, core.OpPut, []byte(fmt.Sprintf("k%d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	var mresp proto.MoveSlotsResp
	err := c1.CallGob(proto.MethodMoveSlots, proto.MoveSlotsReq{
		Block:  1,
		Ranges: []ds.SlotRange{{Lo: 0, Hi: 63}},
		Target: core.BlockInfo{ID: 2, Server: s2.Addr()},
	}, &mresp)
	if err != nil {
		t.Fatal(err)
	}
	if mresp.Moved != 30 {
		t.Errorf("moved = %d, want 30", mresp.Moved)
	}
	for i := 0; i < 30; i++ {
		if _, err := dataOp(c2, 2, core.OpGet, []byte(fmt.Sprintf("k%d", i))); err != nil {
			t.Errorf("k%d missing on target: %v", i, err)
		}
	}
}

func TestFlushLoadBlock(t *testing.T) {
	_, c, store := newServer(t)
	createBlock(t, c, 1, core.DSKV, []ds.SlotRange{{Lo: 0, Hi: 63}}, 0, nil)
	dataOp(c, 1, core.OpPut, []byte("persist-me"), []byte("v1"))
	var fresp proto.FlushBlockResp
	if err := c.CallGob(proto.MethodFlushBlock, proto.FlushBlockReq{Block: 1, Key: "snap/1"}, &fresp); err != nil {
		t.Fatal(err)
	}
	if fresp.Bytes == 0 {
		t.Error("empty snapshot")
	}
	if _, err := store.Get("snap/1"); err != nil {
		t.Errorf("snapshot not in store: %v", err)
	}
	// Clobber and restore.
	dataOp(c, 1, core.OpPut, []byte("persist-me"), []byte("dirty"))
	var lresp proto.LoadBlockResp
	if err := c.CallGob(proto.MethodLoadBlock, proto.LoadBlockReq{Block: 1, Key: "snap/1"}, &lresp); err != nil {
		t.Fatal(err)
	}
	res, err := dataOp(c, 1, core.OpGet, []byte("persist-me"))
	if err != nil || string(res[0]) != "v1" {
		t.Errorf("restored = %v, %v", res, err)
	}
}

func TestChainReplication(t *testing.T) {
	s1, c1, _ := newServer(t)
	s2, c2, _ := newServer(t)
	s3, c3, _ := newServer(t)
	chain := core.ReplicaChain{
		{ID: 1, Server: s1.Addr()},
		{ID: 2, Server: s2.Addr()},
		{ID: 3, Server: s3.Addr()},
	}
	createBlock(t, c1, 1, core.DSKV, []ds.SlotRange{{Lo: 0, Hi: 63}}, 0, chain)
	createBlock(t, c2, 2, core.DSKV, []ds.SlotRange{{Lo: 0, Hi: 63}}, 0, chain)
	createBlock(t, c3, 3, core.DSKV, []ds.SlotRange{{Lo: 0, Hi: 63}}, 0, chain)

	// Write at the head; the mutation propagates down the chain before
	// the head acknowledges.
	if _, err := dataOp(c1, 1, core.OpPut, []byte("replicated"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	// Read at the tail (chain-replication reads) and the middle.
	res, err := dataOp(c3, 3, core.OpGet, []byte("replicated"))
	if err != nil || string(res[0]) != "v" {
		t.Errorf("tail read = %v, %v", res, err)
	}
	res, err = dataOp(c2, 2, core.OpGet, []byte("replicated"))
	if err != nil || string(res[0]) != "v" {
		t.Errorf("middle read = %v, %v", res, err)
	}
	// Deletes propagate too.
	if _, err := dataOp(c1, 1, core.OpDelete, []byte("replicated")); err != nil {
		t.Fatal(err)
	}
	if _, err := dataOp(c3, 3, core.OpGet, []byte("replicated")); !errors.Is(err, core.ErrNotFound) {
		t.Errorf("tail read after delete = %v", err)
	}
}

func TestSubscriptionDelivery(t *testing.T) {
	_, c, _ := newServer(t)
	createBlock(t, c, 1, core.DSQueue, nil, 0, nil)
	notifs := make(chan proto.Notification, 16)
	c.OnPush(func(subID uint64, payload []byte) {
		var n proto.Notification
		if rpc.Unmarshal(payload, &n) == nil {
			notifs <- n
		}
	})
	var sresp proto.SubscribeResp
	err := c.CallGob(proto.MethodSubscribe, proto.SubscribeReq{
		Blocks: []core.BlockID{1}, Ops: []core.OpType{core.OpEnqueue},
	}, &sresp)
	if err != nil {
		t.Fatal(err)
	}
	dataOp(c, 1, core.OpEnqueue, []byte("notify-me"))
	select {
	case n := <-notifs:
		if n.Op != core.OpEnqueue || string(n.Data) != "notify-me" {
			t.Errorf("notification = %+v", n)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no notification")
	}
	// Dequeues are not subscribed: no notification.
	dataOp(c, 1, core.OpDequeue)
	select {
	case n := <-notifs:
		t.Errorf("unexpected notification %+v", n)
	case <-time.After(50 * time.Millisecond):
	}
	// Unsubscribe stops delivery.
	var uresp proto.UnsubscribeResp
	c.CallGob(proto.MethodUnsubscribe, proto.UnsubscribeReq{SubID: sresp.SubID}, &uresp)
	dataOp(c, 1, core.OpEnqueue, []byte("after-unsub"))
	select {
	case n := <-notifs:
		t.Errorf("notification after unsubscribe: %+v", n)
	case <-time.After(50 * time.Millisecond):
	}
}

func TestServerStats(t *testing.T) {
	_, c, _ := newServer(t)
	createBlock(t, c, 1, core.DSKV, []ds.SlotRange{{Lo: 0, Hi: 63}}, 0, nil)
	dataOp(c, 1, core.OpPut, []byte("k"), []byte("0123456789"))
	var stats proto.ServerStatsResp
	if err := c.CallGob(proto.MethodServerStats, proto.ServerStatsReq{}, &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Blocks != 1 || stats.UsedBytes != 11 || stats.Ops < 1 {
		t.Errorf("stats = %+v", stats)
	}
}

func TestCreateBlockValidation(t *testing.T) {
	_, c, _ := newServer(t)
	var resp proto.CreateBlockResp
	err := c.CallGob(proto.MethodCreateBlock, proto.CreateBlockReq{
		Block: 1, Type: core.DSNone, Capacity: 1024,
	}, &resp)
	if !errors.Is(err, core.ErrWrongType) {
		t.Errorf("DSNone block accepted: %v", err)
	}
	// Duplicate creation rejected.
	createBlock(t, c, 2, core.DSFile, nil, 0, nil)
	err = c.CallGob(proto.MethodCreateBlock, proto.CreateBlockReq{
		Block: 2, Type: core.DSFile, Capacity: 1024,
	}, &resp)
	if !errors.Is(err, core.ErrExists) {
		t.Errorf("duplicate block accepted: %v", err)
	}
}

func TestUnknownMethod(t *testing.T) {
	_, c, _ := newServer(t)
	if _, err := c.Call(0x7777, nil); err == nil {
		t.Error("unknown method accepted")
	}
}
