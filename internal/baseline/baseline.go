// Package baseline provides the comparison systems used by the paper's
// evaluation:
//
//   - For Fig. 10 (latency/throughput across six systems), modeled
//     object stores whose service times follow the published
//     measurements: S3 (tens of ms), DynamoDB (several ms, 128KB item
//     cap), Apache Crail / ElastiCache / Pocket (sub-ms in-memory).
//     Jiffy itself runs live; these stores make the comparison axes
//     reproducible without AWS credentials.
//
//   - For Fig. 9 (job slowdown and utilization under constrained
//     capacity), the allocation policies of ElastiCache (static
//     provisioning, overflow to S3) and Pocket (per-job peak
//     reservation, overflow to SSD), re-implemented exactly as the
//     paper describes and driven by internal/sim.
package baseline

import (
	"fmt"
	"time"

	"jiffy/internal/clock"
	"jiffy/internal/core"
	"jiffy/internal/persist"
)

// ObjectStore is the minimal get/put surface all six systems share in
// the Fig. 10 benchmark.
type ObjectStore interface {
	Name() string
	Put(key string, val []byte) error
	Get(key string) ([]byte, error)
}

// modeled wraps an in-memory map with a latency model.
type modeled struct {
	name  string
	inner *persist.ModeledStore
}

func (m *modeled) Name() string { return m.name }

func (m *modeled) Put(key string, val []byte) error { return m.inner.Put(key, val) }

func (m *modeled) Get(key string) ([]byte, error) { return m.inner.Get(key) }

// newModeled builds a named modeled store on the real clock.
func newModeled(name string, model persist.LatencyModel) ObjectStore {
	return &modeled{
		name:  name,
		inner: persist.NewModeledStore(persist.NewMemStore(), model, clock.Real{}),
	}
}

// Service-time models for the Fig. 10 systems. Fixed latencies follow
// the figure's small-object readings; bandwidths its large-object
// slopes.
var (
	// NewS3 models Amazon S3: tens-of-ms base latency, moderate
	// bandwidth.
	NewS3 = func() ObjectStore {
		return newModeled("S3", persist.LatencyModel{
			PutLatency:   30 * time.Millisecond,
			GetLatency:   15 * time.Millisecond,
			BandwidthBps: 80 * core.MB,
		})
	}
	// NewDynamoDB models DynamoDB: several-ms latency and the 128KB
	// object cap the paper notes.
	NewDynamoDB = func() ObjectStore {
		return newModeled("DynamoDB", persist.LatencyModel{
			PutLatency:    8 * time.Millisecond,
			GetLatency:    5 * time.Millisecond,
			BandwidthBps:  60 * core.MB,
			MaxObjectSize: 128 * core.KB,
		})
	}
	// NewCrail models Apache Crail: a fast RDMA-oriented in-memory
	// store.
	NewCrail = func() ObjectStore {
		return newModeled("ApacheCrail", persist.LatencyModel{
			PutLatency:   350 * time.Microsecond,
			GetLatency:   300 * time.Microsecond,
			BandwidthBps: 1.0 * core.GB,
		})
	}
	// NewElastiCache models a Redis-style in-memory cache.
	NewElastiCache = func() ObjectStore {
		return newModeled("ElastiCache", persist.LatencyModel{
			PutLatency:   450 * time.Microsecond,
			GetLatency:   400 * time.Microsecond,
			BandwidthBps: 900 * core.MB,
		})
	}
	// NewPocket models Pocket's DRAM tier.
	NewPocket = func() ObjectStore {
		return newModeled("Pocket", persist.LatencyModel{
			PutLatency:   400 * time.Microsecond,
			GetLatency:   350 * time.Microsecond,
			BandwidthBps: 1.0 * core.GB,
		})
	}
)

// FuncStore adapts get/put closures (the live Jiffy KV handle) to
// ObjectStore.
type FuncStore struct {
	StoreName string
	PutFunc   func(key string, val []byte) error
	GetFunc   func(key string) ([]byte, error)
}

// Name implements ObjectStore.
func (f *FuncStore) Name() string { return f.StoreName }

// Put implements ObjectStore.
func (f *FuncStore) Put(key string, val []byte) error { return f.PutFunc(key, val) }

// Get implements ObjectStore.
func (f *FuncStore) Get(key string) ([]byte, error) { return f.GetFunc(key) }

// --- Fig. 9 allocation policies ------------------------------------------

// Medium is where a stage's intermediate data lives.
type Medium int

// Media, fastest to slowest.
const (
	MediumDRAM Medium = iota
	MediumSSD
	MediumS3
)

// String names the medium.
func (m Medium) String() string {
	switch m {
	case MediumDRAM:
		return "dram"
	case MediumSSD:
		return "ssd"
	case MediumS3:
		return "s3"
	default:
		return fmt.Sprintf("medium(%d)", int(m))
	}
}

// Bandwidth returns the medium's modeled sequential bandwidth in
// bytes/second, used to compute stage IO penalties.
func (m Medium) Bandwidth() float64 {
	switch m {
	case MediumDRAM:
		return 8 * core.GB
	case MediumSSD:
		return 400 * core.MB
	default:
		return 40 * core.MB
	}
}

// Split records how a stage's bytes were distributed across media. A
// stage can straddle media: the part that fits in DRAM stays fast, the
// overflow lands on the policy's spill tier.
type Split struct {
	DRAM, SSD, S3 int64
}

// Total sums the split.
func (s Split) Total() int64 { return s.DRAM + s.SSD + s.S3 }

// Policy is a capacity-allocation strategy evaluated by internal/sim.
// Implementations are single-threaded (the simulator is sequential).
type Policy interface {
	Name() string
	// JobArrive is called when a job registers; policies that reserve
	// (Pocket) claim capacity here. peakBytes is the job's maximum
	// concurrently alive intermediate data — what a job would declare.
	JobArrive(jobID string, tenant int, peakBytes int64)
	// JobDone releases job-level state.
	JobDone(jobID string)
	// Place distributes `bytes` of stage output across media and
	// records the allocation.
	Place(jobID string, tenant int, stage int, bytes int64) Split
	// Release is called when the data is consumed (its consumer stage
	// finished).
	Release(jobID string, stage int)
	// Tick advances policy-internal time (lease expirations).
	Tick(now time.Duration)
	// UsedBytes is the intermediate data currently in DRAM.
	UsedBytes() int64
	// OccupiedBytes is the DRAM currently unavailable to others (used
	// + reserved-but-idle + block-rounding waste).
	OccupiedBytes() int64
}

// --- ElastiCache policy -------------------------------------------------

// ElastiCachePolicy models an ElastiCache-style shared in-memory cache
// used for intermediate data: a single provisioned pool with no
// storage tiers — data that does not fit must go to S3 (§6.1:
// "Since Elasticache does not support multiple storage tiers, if
// available capacity is insufficient, jobs must write their data to
// external stores like S3"). It performs no reservations and no
// fine-grained reclamation beyond delete-on-consumption; its penalty
// under constrained capacity is the 100× S3 overflow cost.
type ElastiCachePolicy struct {
	capacity int64
	used     int64
	placed   map[string]placement
}

type placement struct {
	tenant int
	split  Split
}

// NewElastiCachePolicy creates the policy over a provisioned pool of
// capacity bytes shared by all tenants.
func NewElastiCachePolicy(capacity int64, _ int) *ElastiCachePolicy {
	return &ElastiCachePolicy{
		capacity: capacity,
		placed:   make(map[string]placement),
	}
}

// Name implements Policy.
func (p *ElastiCachePolicy) Name() string { return "ElastiCache" }

// JobArrive implements Policy (no per-job state).
func (p *ElastiCachePolicy) JobArrive(string, int, int64) {}

// JobDone implements Policy.
func (p *ElastiCachePolicy) JobDone(string) {}

// Place implements Policy: what fits in the pool goes to DRAM; the
// overflow goes to S3 (no intermediate tier).
func (p *ElastiCachePolicy) Place(jobID string, tenant, stage int, bytes int64) Split {
	key := stageKey(jobID, stage)
	free := p.capacity - p.used
	if free < 0 {
		free = 0
	}
	dram := bytes
	if dram > free {
		dram = free
	}
	sp := Split{DRAM: dram, S3: bytes - dram}
	p.used += dram
	p.placed[key] = placement{tenant: tenant, split: sp}
	return sp
}

// Release implements Policy.
func (p *ElastiCachePolicy) Release(jobID string, stage int) {
	key := stageKey(jobID, stage)
	pl, ok := p.placed[key]
	if !ok {
		return
	}
	delete(p.placed, key)
	p.used -= pl.split.DRAM
}

// Tick implements Policy.
func (p *ElastiCachePolicy) Tick(time.Duration) {}

// UsedBytes implements Policy.
func (p *ElastiCachePolicy) UsedBytes() int64 { return p.used }

// OccupiedBytes implements Policy: the whole provisioned cluster is
// paid for and unavailable to anything else.
func (p *ElastiCachePolicy) OccupiedBytes() int64 { return p.capacity }

func stageKey(jobID string, stage int) string {
	return fmt.Sprintf("%s#%d", jobID, stage)
}

// --- Pocket policy --------------------------------------------------------

// PocketPolicy models Pocket's job-level allocation: at registration a
// job reserves DRAM equal to its declared (peak) demand for its whole
// lifetime; data beyond the job's DRAM reservation spills to SSD. When
// the pool cannot cover a new job's peak, the job gets whatever DRAM
// remains (possibly none) and the rest of its data runs on SSD.
type PocketPolicy struct {
	capacity int64
	reserved int64

	jobs   map[string]*pocketJob
	placed map[string]placement
	used   int64
}

type pocketJob struct {
	reservation int64
	inUse       int64
}

// NewPocketPolicy creates the policy over a DRAM pool of capacity
// bytes.
func NewPocketPolicy(capacity int64) *PocketPolicy {
	return &PocketPolicy{
		capacity: capacity,
		jobs:     make(map[string]*pocketJob),
		placed:   make(map[string]placement),
	}
}

// Name implements Policy.
func (p *PocketPolicy) Name() string { return "Pocket" }

// JobArrive implements Policy: reserve the declared peak (or what's
// left of the pool).
func (p *PocketPolicy) JobArrive(jobID string, _ int, peakBytes int64) {
	grant := peakBytes
	if free := p.capacity - p.reserved; grant > free {
		grant = free
	}
	if grant < 0 {
		grant = 0
	}
	p.reserved += grant
	p.jobs[jobID] = &pocketJob{reservation: grant}
}

// JobDone implements Policy: release the reservation.
func (p *PocketPolicy) JobDone(jobID string) {
	j, ok := p.jobs[jobID]
	if !ok {
		return
	}
	p.reserved -= j.reservation
	delete(p.jobs, jobID)
}

// Place implements Policy: what fits in the job's reservation goes to
// DRAM; the overflow goes to the SSD tier.
func (p *PocketPolicy) Place(jobID string, tenant, stage int, bytes int64) Split {
	key := stageKey(jobID, stage)
	j := p.jobs[jobID]
	var free int64
	if j != nil {
		free = j.reservation - j.inUse
	}
	if free < 0 {
		free = 0
	}
	dram := bytes
	if dram > free {
		dram = free
	}
	sp := Split{DRAM: dram, SSD: bytes - dram}
	if j != nil {
		j.inUse += dram
	}
	p.used += dram
	p.placed[key] = placement{tenant: tenant, split: sp}
	return sp
}

// Release implements Policy.
func (p *PocketPolicy) Release(jobID string, stage int) {
	key := stageKey(jobID, stage)
	pl, ok := p.placed[key]
	if !ok {
		return
	}
	delete(p.placed, key)
	if j := p.jobs[jobID]; j != nil {
		j.inUse -= pl.split.DRAM
	}
	p.used -= pl.split.DRAM
}

// Tick implements Policy.
func (p *PocketPolicy) Tick(time.Duration) {}

// UsedBytes implements Policy.
func (p *PocketPolicy) UsedBytes() int64 { return p.used }

// OccupiedBytes implements Policy: reservations are unavailable to
// other jobs whether used or not.
func (p *PocketPolicy) OccupiedBytes() int64 { return p.reserved }

// --- Jiffy policy ----------------------------------------------------------

// JiffyPolicy models Jiffy's block-granularity sharing: stage data
// claims ceil(bytes / (threshold·blockSize)) blocks from the shared
// pool at write time and returns them one lease duration after the
// data is consumed (the lease stops being renewed when the consumer
// finishes). Overflow spills to SSD.
type JiffyPolicy struct {
	capacity  int64
	blockSize int64
	threshold float64
	lease     time.Duration

	allocated int64 // block-rounded DRAM occupied (until lease expiry)
	used      int64 // live intermediate data in DRAM (until consumed)

	placed   map[string]*jiffyPlacement
	pending  []pendingFree
	lastTick time.Duration
}

type jiffyPlacement struct {
	split     Split
	allocated int64
}

type pendingFree struct {
	at time.Duration
	p  *jiffyPlacement
}

// NewJiffyPolicy creates the policy. threshold is the high
// repartitioning threshold (0.95 default): lower thresholds allocate
// blocks earlier, inflating occupancy (Fig. 14c).
func NewJiffyPolicy(capacity, blockSize int64, threshold float64, lease time.Duration) *JiffyPolicy {
	if threshold <= 0 || threshold > 1 {
		threshold = core.DefaultHighThreshold
	}
	return &JiffyPolicy{
		capacity:  capacity,
		blockSize: blockSize,
		threshold: threshold,
		lease:     lease,
		placed:    make(map[string]*jiffyPlacement),
	}
}

// Name implements Policy.
func (p *JiffyPolicy) Name() string { return "Jiffy" }

// JobArrive implements Policy: Jiffy needs no declared demand.
func (p *JiffyPolicy) JobArrive(string, int, int64) {}

// JobDone implements Policy.
func (p *JiffyPolicy) JobDone(string) {}

// Place implements Policy: claim as many whole blocks as the pool has
// free; data beyond them spills to the SSD tier. This mirrors the real
// system, where allocation happens block by block as data is written,
// so a large stage can be partially in memory.
func (p *JiffyPolicy) Place(jobID string, tenant, stage int, bytes int64) Split {
	key := stageKey(jobID, stage)
	usable := int64(float64(p.blockSize) * p.threshold)
	if usable <= 0 {
		usable = 1
	}
	wantBlocks := (bytes + usable - 1) / usable
	if wantBlocks < 1 {
		wantBlocks = 1
	}
	freeBlocks := (p.capacity - p.allocated) / p.blockSize
	if freeBlocks < 0 {
		freeBlocks = 0
	}
	gotBlocks := wantBlocks
	if gotBlocks > freeBlocks {
		gotBlocks = freeBlocks
	}
	dram := gotBlocks * usable
	if dram > bytes {
		dram = bytes
	}
	pl := &jiffyPlacement{
		split:     Split{DRAM: dram, SSD: bytes - dram},
		allocated: gotBlocks * p.blockSize,
	}
	p.allocated += pl.allocated
	p.used += dram
	p.placed[key] = pl
	return pl.split
}

// Release implements Policy: the data has been consumed — it stops
// counting as live immediately — but its blocks return to the pool
// only one lease duration later, when the no-longer-renewed lease
// expires (enqueued for Tick). The gap between the two is the lease
// tax that Fig. 14(b) measures.
func (p *JiffyPolicy) Release(jobID string, stage int) {
	key := stageKey(jobID, stage)
	pl, ok := p.placed[key]
	if !ok {
		return
	}
	delete(p.placed, key)
	p.used -= pl.split.DRAM
	p.pending = append(p.pending, pendingFree{at: p.lastTick + p.lease, p: pl})
}

// Tick implements Policy: expire lapsed leases.
func (p *JiffyPolicy) Tick(now time.Duration) {
	p.lastTick = now
	kept := p.pending[:0]
	for _, pf := range p.pending {
		if pf.at <= now {
			p.allocated -= pf.p.allocated
		} else {
			kept = append(kept, pf)
		}
	}
	p.pending = kept
}

// UsedBytes implements Policy.
func (p *JiffyPolicy) UsedBytes() int64 { return p.used }

// OccupiedBytes implements Policy: block-rounded occupancy.
func (p *JiffyPolicy) OccupiedBytes() int64 { return p.allocated }
