package baseline

import (
	"errors"
	"testing"
	"time"

	"jiffy/internal/core"
)

func TestModeledStoresRoundTrip(t *testing.T) {
	for _, mk := range []func() ObjectStore{NewS3, NewDynamoDB, NewCrail, NewElastiCache, NewPocket} {
		s := mk()
		if err := s.Put("k", []byte("v")); err != nil {
			t.Fatalf("%s put: %v", s.Name(), err)
		}
		v, err := s.Get("k")
		if err != nil || string(v) != "v" {
			t.Fatalf("%s get = %q, %v", s.Name(), v, err)
		}
	}
}

func TestDynamoDBObjectCap(t *testing.T) {
	s := NewDynamoDB()
	if err := s.Put("big", make([]byte, 200*core.KB)); !errors.Is(err, core.ErrTooLarge) {
		t.Errorf("oversized put = %v", err)
	}
}

func TestLatencyOrdering(t *testing.T) {
	// The in-memory stores must be much faster than S3/DynamoDB for
	// small objects — the Fig. 10 separation.
	timePut := func(s ObjectStore) time.Duration {
		start := time.Now()
		s.Put("k", make([]byte, 128))
		return time.Since(start)
	}
	s3 := timePut(NewS3())
	ddb := timePut(NewDynamoDB())
	ec := timePut(NewElastiCache())
	if !(ec < ddb && ddb < s3) {
		t.Errorf("latency ordering violated: ec=%v ddb=%v s3=%v", ec, ddb, s3)
	}
}

func TestFuncStore(t *testing.T) {
	m := map[string][]byte{}
	fs := &FuncStore{
		StoreName: "Jiffy",
		PutFunc:   func(k string, v []byte) error { m[k] = v; return nil },
		GetFunc:   func(k string) ([]byte, error) { return m[k], nil },
	}
	fs.Put("a", []byte("b"))
	v, _ := fs.Get("a")
	if fs.Name() != "Jiffy" || string(v) != "b" {
		t.Errorf("FuncStore misbehaves: %q", v)
	}
}

func TestMediumBandwidthOrdering(t *testing.T) {
	if !(MediumDRAM.Bandwidth() > MediumSSD.Bandwidth() &&
		MediumSSD.Bandwidth() > MediumS3.Bandwidth()) {
		t.Error("media bandwidth ordering violated")
	}
}

func TestElastiCachePolicySharedPool(t *testing.T) {
	p := NewElastiCachePolicy(1000, 2)
	if sp := p.Place("j1", 0, 0, 400); sp.DRAM != 400 || sp.S3 != 0 {
		t.Errorf("within pool = %+v", sp)
	}
	// Pool shared across tenants; overflow goes to S3 (no SSD tier).
	if sp := p.Place("j2", 1, 0, 800); sp.DRAM != 600 || sp.S3 != 200 || sp.SSD != 0 {
		t.Errorf("overflow = %+v", sp)
	}
	if p.UsedBytes() != 1000 {
		t.Errorf("used = %d", p.UsedBytes())
	}
	// Static provisioning occupies everything.
	if p.OccupiedBytes() != 1000 {
		t.Errorf("occupied = %d", p.OccupiedBytes())
	}
	p.Release("j1", 0)
	if p.UsedBytes() != 600 {
		t.Errorf("used after release = %d", p.UsedBytes())
	}
	// Double release is a no-op.
	p.Release("j1", 0)
	if p.UsedBytes() != 600 {
		t.Errorf("used after double release = %d", p.UsedBytes())
	}
}

func TestPocketPolicyReservation(t *testing.T) {
	p := NewPocketPolicy(1000)
	p.JobArrive("j1", 0, 600)
	if p.OccupiedBytes() != 600 {
		t.Errorf("reserved = %d", p.OccupiedBytes())
	}
	// Within reservation → DRAM.
	if sp := p.Place("j1", 0, 0, 500); sp.DRAM != 500 {
		t.Errorf("within reservation = %+v", sp)
	}
	// Beyond reservation → SSD even though the pool has free space.
	if sp := p.Place("j1", 0, 1, 200); sp.DRAM != 100 || sp.SSD != 100 {
		t.Errorf("beyond reservation = %+v", sp)
	}
	// Second job gets only the remainder of the pool.
	p.JobArrive("j2", 0, 600)
	if p.OccupiedBytes() != 1000 {
		t.Errorf("pool reserved = %d, want full", p.OccupiedBytes())
	}
	if sp := p.Place("j2", 0, 0, 500); sp.DRAM != 400 || sp.SSD != 100 {
		t.Errorf("j2 truncated reservation = %+v", sp)
	}
	// Job completion releases the reservation.
	p.Release("j1", 0)
	p.JobDone("j1")
	if p.OccupiedBytes() != 400 {
		t.Errorf("after j1 done occupied = %d", p.OccupiedBytes())
	}
}

func TestJiffyPolicyBlockRoundingAndLease(t *testing.T) {
	p := NewJiffyPolicy(10_000, 1000, 1.0, 5*time.Second)
	if sp := p.Place("j1", 0, 0, 1500); sp.DRAM != 1500 || sp.SSD != 0 {
		t.Fatalf("place = %+v", sp)
	}
	// 1500 bytes at threshold 1.0 → 2 blocks of 1000.
	if p.OccupiedBytes() != 2000 || p.UsedBytes() != 1500 {
		t.Errorf("occupied=%d used=%d", p.OccupiedBytes(), p.UsedBytes())
	}
	// Release: the data stops being live immediately, but the blocks
	// stay occupied until the lease lapses.
	p.Release("j1", 0)
	if p.UsedBytes() != 0 {
		t.Errorf("consumed data still counted live: %d", p.UsedBytes())
	}
	p.Tick(time.Second)
	if p.OccupiedBytes() != 2000 {
		t.Errorf("blocks freed before lease expiry")
	}
	p.Tick(10 * time.Second)
	if p.OccupiedBytes() != 0 {
		t.Errorf("blocks not freed after lease expiry: occ=%d", p.OccupiedBytes())
	}
}

func TestJiffyPolicyThresholdInflatesOccupancy(t *testing.T) {
	tight := NewJiffyPolicy(1_000_000, 1000, 1.0, 0)
	loose := NewJiffyPolicy(1_000_000, 1000, 0.5, 0)
	tight.Place("j", 0, 0, 10_000)
	loose.Place("j", 0, 0, 10_000)
	if loose.OccupiedBytes() <= tight.OccupiedBytes() {
		t.Errorf("lower threshold should allocate more blocks: %d vs %d",
			loose.OccupiedBytes(), tight.OccupiedBytes())
	}
}

func TestJiffyPolicySpillsWhenFull(t *testing.T) {
	p := NewJiffyPolicy(1000, 1000, 1.0, 0)
	if sp := p.Place("j", 0, 0, 900); sp.DRAM != 900 {
		t.Fatalf("first place = %+v", sp)
	}
	if sp := p.Place("j", 0, 1, 900); sp.SSD != 900 || sp.DRAM != 0 {
		t.Errorf("overflow place = %+v, want all SSD", sp)
	}
}
