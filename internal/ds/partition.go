// Package ds implements Jiffy's built-in data structures (§5 and
// Table 2 of the paper) as per-block partition engines, plus the
// partition-map metadata shared by the controller and clients, and the
// compact binary codec for data-plane requests.
//
// Each block hosts exactly one Partition. The partition defines how the
// block's bytes are organized (file chunk, queue segment, or KV
// hash-slot shard), which operations apply, and how its contents are
// exported/imported during repartitioning, flushes and replication.
package ds

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"

	"jiffy/internal/core"
)

// Partition is the per-block data-structure engine: the realization of
// the paper's internal block API (writeOp/readOp/deleteOp, Fig. 6).
// Implementations are safe for concurrent use.
type Partition interface {
	// Type identifies the data structure.
	Type() core.DSType
	// Apply executes one operation; args and results are op-specific
	// byte-slice vectors (see the op documentation in internal/core).
	Apply(op core.OpType, args [][]byte) ([][]byte, error)
	// Bytes reports the current payload usage, driving the high/low
	// repartition thresholds.
	Bytes() int
	// Capacity reports the block's fixed byte capacity.
	Capacity() int
	// Snapshot serializes the partition state for flushes to the
	// persistent tier, chain replication catch-up and block transfer.
	Snapshot() ([]byte, error)
	// Restore replaces the partition state from a snapshot.
	Restore(snapshot []byte) error
}

// New constructs a partition of the given type.
//   - DSFile:  a file chunk of the given capacity
//   - DSQueue: a queue segment of the given capacity
//   - DSKV:    a KV shard owning slots [0, numSlots) until told otherwise
func New(t core.DSType, capacity, numSlots int) (Partition, error) {
	switch t {
	case core.DSFile:
		return NewFile(capacity), nil
	case core.DSQueue:
		return NewQueue(capacity), nil
	case core.DSKV:
		return NewKV(capacity, numSlots, []SlotRange{{Lo: 0, Hi: numSlots - 1}}), nil
	default:
		if IsCustom(t) {
			return NewCustom(t, capacity, numSlots)
		}
		return nil, fmt.Errorf("ds: cannot build partition: %w (%v)", core.ErrWrongType, t)
	}
}

// SlotRange is an inclusive range of KV hash slots.
type SlotRange struct {
	Lo, Hi int
}

// Contains reports whether slot falls inside the range.
func (r SlotRange) Contains(slot int) bool { return slot >= r.Lo && slot <= r.Hi }

// Count returns the number of slots in the range.
func (r SlotRange) Count() int { return r.Hi - r.Lo + 1 }

// SlotOf maps a key to its hash slot. Every component (client,
// controller, server) must agree on this function; it is the KV
// store's request-routing hash (§5.3).
func SlotOf(key string, numSlots int) int {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime
	}
	// numSlots is a power of two (validated by core.Config).
	return int(h & uint64(numSlots-1))
}

// PartitionMap is the client-visible layout of one data structure: the
// list of blocks and, per block, its role (file chunk index, queue
// position, or KV slot ranges). The controller owns the authoritative
// copy; clients cache it and refresh when the Epoch advances.
type PartitionMap struct {
	Type  core.DSType
	Epoch core.Epoch
	// NumSlots is the KV hash-slot space size (0 for other types).
	NumSlots int
	// ChunkSize is the file chunk capacity per block (0 for others).
	ChunkSize int
	// MaxBlocks bounds the structure (0 = unbounded); when the bound
	// is reached, writers get ErrBlockFull instead of elastic growth —
	// the maxQueueLength semantics of §5.2. Clients use it to fail
	// fast instead of retrying a scale-up that cannot happen.
	MaxBlocks int
	Blocks    []PartitionEntry
}

// AtMaxBlocks reports whether the structure has reached its bound.
func (m *PartitionMap) AtMaxBlocks() bool {
	return m.MaxBlocks > 0 && len(m.Blocks) >= m.MaxBlocks
}

// Clone deep-copies the map, including every entry's slot ranges. The
// controller hands clones across its lock boundary so responses can be
// serialized while the authoritative map keeps mutating.
func (m *PartitionMap) Clone() PartitionMap {
	out := *m
	out.Blocks = make([]PartitionEntry, len(m.Blocks))
	for i, e := range m.Blocks {
		out.Blocks[i] = e
		out.Blocks[i].Slots = append([]SlotRange(nil), e.Slots...)
		out.Blocks[i].Chain = append(core.ReplicaChain(nil), e.Chain...)
	}
	return out
}

// PartitionEntry describes one block's role within a data structure.
type PartitionEntry struct {
	Info core.BlockInfo
	// Chunk is the file chunk index or the queue segment sequence
	// number.
	Chunk int
	// Slots are the KV hash-slot ranges owned by the block.
	Slots []SlotRange
	// Chain is the block's replication chain when the structure is
	// replicated; Info is always the chain head. Empty = unreplicated.
	Chain core.ReplicaChain
	// Lost marks a block whose only replica died with no flushed copy
	// to recover from; clients fail operations on it with ErrBlockLost.
	Lost bool
}

// WriteTarget returns the block that accepts mutations: the chain head.
func (e PartitionEntry) WriteTarget() core.BlockInfo { return e.Info }

// ReadTarget returns the block that serves reads: the chain tail under
// chain replication (the classic consistency point — the tail holds
// only fully propagated writes), or the sole replica otherwise.
func (e PartitionEntry) ReadTarget() core.BlockInfo {
	if len(e.Chain) > 1 {
		return e.Chain.Tail()
	}
	return e.Info
}

// Replicas returns every physical block backing the entry.
func (e PartitionEntry) Replicas() []core.BlockInfo {
	if len(e.Chain) > 0 {
		return append([]core.BlockInfo(nil), e.Chain...)
	}
	return []core.BlockInfo{e.Info}
}

// BlockForSlot returns the entry owning the given KV slot.
func (m *PartitionMap) BlockForSlot(slot int) (PartitionEntry, bool) {
	for _, e := range m.Blocks {
		for _, r := range e.Slots {
			if r.Contains(slot) {
				return e, true
			}
		}
	}
	return PartitionEntry{}, false
}

// BlockForChunk returns the entry for file chunk index c.
func (m *PartitionMap) BlockForChunk(c int) (PartitionEntry, bool) {
	for _, e := range m.Blocks {
		if e.Chunk == c {
			return e, true
		}
	}
	return PartitionEntry{}, false
}

// Head returns the queue's head entry (lowest sequence number).
func (m *PartitionMap) Head() (PartitionEntry, bool) { return m.extremum(true) }

// Tail returns the queue's tail entry (highest sequence number).
func (m *PartitionMap) Tail() (PartitionEntry, bool) { return m.extremum(false) }

func (m *PartitionMap) extremum(min bool) (PartitionEntry, bool) {
	if len(m.Blocks) == 0 {
		return PartitionEntry{}, false
	}
	best := m.Blocks[0]
	for _, e := range m.Blocks[1:] {
		if (min && e.Chunk < best.Chunk) || (!min && e.Chunk > best.Chunk) {
			best = e
		}
	}
	return best, true
}

// --- Data-plane request codec -------------------------------------------
//
// Data ops are the hot path, so they use a hand-rolled binary layout
// rather than gob:
//
//	u8   op
//	u64  block id
//	u16  number of args
//	per arg: u32 length + bytes

// AppendRequest appends a data-plane operation's encoding to dst. The
// hot path encodes into pooled buffers (wire.GetBuf) via this form;
// EncodeRequest wraps it for callers that want a fresh buffer.
func AppendRequest(dst []byte, op core.OpType, block core.BlockID, args [][]byte) []byte {
	dst = append(dst, byte(op))
	dst = binary.BigEndian.AppendUint64(dst, uint64(block))
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(args)))
	for _, a := range args {
		dst = binary.BigEndian.AppendUint32(dst, uint32(len(a)))
		dst = append(dst, a...)
	}
	return dst
}

// EncodeRequest serializes a data-plane operation.
func EncodeRequest(op core.OpType, block core.BlockID, args [][]byte) []byte {
	n := 1 + 8 + 2
	for _, a := range args {
		n += 4 + len(a)
	}
	return AppendRequest(make([]byte, 0, n), op, block, args)
}

// decodeRequestPrefix parses one operation from the front of data and
// returns the remainder — the shared scanner under DecodeRequest and
// DecodeBatchRequest. Args alias data.
func decodeRequestPrefix(data []byte) (op core.OpType, block core.BlockID, args [][]byte, rest []byte, err error) {
	if len(data) < 11 {
		return 0, 0, nil, nil, fmt.Errorf("ds: request too short (%d bytes)", len(data))
	}
	op = core.OpType(data[0])
	block = core.BlockID(binary.BigEndian.Uint64(data[1:9]))
	nargs := int(binary.BigEndian.Uint16(data[9:11]))
	off := 11
	args = make([][]byte, 0, nargs)
	for i := 0; i < nargs; i++ {
		if off+4 > len(data) {
			return 0, 0, nil, nil, fmt.Errorf("ds: truncated arg header")
		}
		l := int(binary.BigEndian.Uint32(data[off : off+4]))
		off += 4
		if l < 0 || off+l > len(data) {
			return 0, 0, nil, nil, fmt.Errorf("ds: truncated arg body")
		}
		args = append(args, data[off:off+l])
		off += l
	}
	return op, block, args, data[off:], nil
}

// DecodeRequest parses a data-plane operation.
func DecodeRequest(data []byte) (op core.OpType, block core.BlockID, args [][]byte, err error) {
	op, block, args, _, err = decodeRequestPrefix(data)
	return op, block, args, err
}

// AppendVals appends a result vector's encoding to dst (same layout as
// request args); the server's batch path encodes into pooled buffers
// via this form.
func AppendVals(dst []byte, vals [][]byte) []byte {
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(vals)))
	for _, v := range vals {
		dst = binary.BigEndian.AppendUint32(dst, uint32(len(v)))
		dst = append(dst, v...)
	}
	return dst
}

// EncodeVals serializes a result vector.
func EncodeVals(vals [][]byte) []byte {
	n := 2
	for _, v := range vals {
		n += 4 + len(v)
	}
	return AppendVals(make([]byte, 0, n), vals)
}

// DecodeVals parses a result vector.
func DecodeVals(data []byte) ([][]byte, error) {
	if len(data) < 2 {
		return nil, fmt.Errorf("ds: result too short")
	}
	n := int(binary.BigEndian.Uint16(data[0:2]))
	off := 2
	vals := make([][]byte, 0, n)
	for i := 0; i < n; i++ {
		if off+4 > len(data) {
			return nil, fmt.Errorf("ds: truncated val header")
		}
		l := int(binary.BigEndian.Uint32(data[off : off+4]))
		off += 4
		if off+l > len(data) {
			return nil, fmt.Errorf("ds: truncated val body")
		}
		vals = append(vals, data[off:off+l])
		off += l
	}
	return vals, nil
}

// U64 encodes an integer argument.
func U64(v uint64) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], v)
	return b[:]
}

// ParseU64 decodes an integer argument.
func ParseU64(b []byte) (uint64, error) {
	if len(b) != 8 {
		return 0, fmt.Errorf("ds: expected 8-byte integer, got %d bytes", len(b))
	}
	return binary.BigEndian.Uint64(b), nil
}

// gobEncode is the shared snapshot serializer.
func gobEncode(v interface{}) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, fmt.Errorf("ds: snapshot encode: %w", err)
	}
	return buf.Bytes(), nil
}

// gobDecode is the shared snapshot deserializer.
func gobDecode(data []byte, v interface{}) error {
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(v); err != nil {
		return fmt.Errorf("ds: snapshot decode: %w", err)
	}
	return nil
}
