package ds

import (
	"encoding/binary"
	"fmt"

	"jiffy/internal/core"
)

// Batch codec: the wire form of MethodDataOpBatch. A batch groups many
// data-plane operations destined for one server into a single request
// frame; the server executes them in order and replies with one result
// per op in a single response frame. Layouts (big endian):
//
//	request:  u16 nops, then per op the single-op request layout
//	          (u8 op, u64 block, u16 nargs, per arg u32 len + bytes)
//	response: u16 nresults, then per result u8 code + u32 len + blob
//
// A result's blob is the EncodeVals-encoded value vector on CodeOK, the
// redirect payload on CodeRedirect, and the error message on CodeOther.
// Ops fail independently: one op's error never aborts its neighbours,
// so the client always gets per-op attribution.

// BatchOp is one operation inside a batch request.
type BatchOp struct {
	Op    core.OpType
	Block core.BlockID
	Args  [][]byte
}

// BatchResult is one operation's outcome inside a batch response.
type BatchResult struct {
	Code core.ErrorCode
	Blob []byte
}

// OKResult wraps a successful op's value vector.
func OKResult(vals [][]byte) BatchResult {
	return BatchResult{Code: core.CodeOK, Blob: EncodeVals(vals)}
}

// ErrResult converts an op error into its wire form, preserving the
// sentinel code, the redirect payload, and unclassified messages —
// exactly what the single-op response frame would have carried.
func ErrResult(err error) BatchResult {
	r := BatchResult{Code: core.CodeOf(err)}
	if p := RedirectPayloadOf(err); p != nil {
		r.Blob = p
	} else if r.Code == core.CodeOther || r.Code == core.CodeQuotaExceeded {
		// Quota refusals keep their message too: ErrOf parses the
		// retry-after hint back out of it on the client side.
		r.Blob = []byte(err.Error())
	}
	return r
}

// Err maps a non-OK result back to the error the single-op path would
// have returned; OK results yield nil.
func (r BatchResult) Err() error {
	if r.Code == core.CodeOK {
		return nil
	}
	return core.ErrOf(r.Code, string(r.Blob))
}

// Vals decodes a successful result's value vector.
func (r BatchResult) Vals() ([][]byte, error) {
	if err := r.Err(); err != nil {
		return nil, err
	}
	return DecodeVals(r.Blob)
}

// AppendBatchRequest appends the batch request encoding to dst (which
// may be a pooled buffer).
func AppendBatchRequest(dst []byte, ops []BatchOp) []byte {
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(ops)))
	for _, o := range ops {
		dst = AppendRequest(dst, o.Op, o.Block, o.Args)
	}
	return dst
}

// EncodeBatchRequest serializes a batch request into a fresh buffer.
func EncodeBatchRequest(ops []BatchOp) []byte {
	return AppendBatchRequest(nil, ops)
}

// DecodeBatchRequest parses a batch request. Op args alias data.
func DecodeBatchRequest(data []byte) ([]BatchOp, error) {
	if len(data) < 2 {
		return nil, fmt.Errorf("ds: batch request too short (%d bytes)", len(data))
	}
	nops := int(binary.BigEndian.Uint16(data[0:2]))
	data = data[2:]
	ops := make([]BatchOp, 0, nops)
	for i := 0; i < nops; i++ {
		op, block, args, rest, err := decodeRequestPrefix(data)
		if err != nil {
			return nil, fmt.Errorf("ds: batch op %d: %w", i, err)
		}
		ops = append(ops, BatchOp{Op: op, Block: block, Args: args})
		data = rest
	}
	if len(data) != 0 {
		return nil, fmt.Errorf("ds: batch request has %d trailing bytes", len(data))
	}
	return ops, nil
}

// AppendBatchResults appends the batch response encoding to dst (which
// may be a pooled buffer).
func AppendBatchResults(dst []byte, results []BatchResult) []byte {
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(results)))
	for _, r := range results {
		dst = append(dst, byte(r.Code))
		dst = binary.BigEndian.AppendUint32(dst, uint32(len(r.Blob)))
		dst = append(dst, r.Blob...)
	}
	return dst
}

// EncodeBatchResults serializes a batch response into a fresh buffer.
func EncodeBatchResults(results []BatchResult) []byte {
	return AppendBatchResults(nil, results)
}

// DecodeBatchResults parses a batch response. Blobs alias data.
func DecodeBatchResults(data []byte) ([]BatchResult, error) {
	if len(data) < 2 {
		return nil, fmt.Errorf("ds: batch response too short (%d bytes)", len(data))
	}
	n := int(binary.BigEndian.Uint16(data[0:2]))
	off := 2
	results := make([]BatchResult, 0, n)
	for i := 0; i < n; i++ {
		if off+5 > len(data) {
			return nil, fmt.Errorf("ds: batch result %d: truncated header", i)
		}
		code := core.ErrorCode(data[off])
		l := int(binary.BigEndian.Uint32(data[off+1 : off+5]))
		off += 5
		if off+l > len(data) {
			return nil, fmt.Errorf("ds: batch result %d: truncated blob", i)
		}
		r := BatchResult{Code: code}
		if l > 0 {
			r.Blob = data[off : off+l]
		}
		off += l
		results = append(results, r)
	}
	if off != len(data) {
		return nil, fmt.Errorf("ds: batch response has %d trailing bytes", len(data)-off)
	}
	return results, nil
}
