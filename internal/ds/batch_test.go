package ds

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"jiffy/internal/core"
)

func TestBatchRequestRoundTrip(t *testing.T) {
	in := []BatchOp{
		{Op: core.OpPut, Block: 7, Args: [][]byte{[]byte("k1"), []byte("v1")}},
		{Op: core.OpGet, Block: 9, Args: [][]byte{[]byte("k2")}},
		{Op: core.OpEnqueue, Block: 1 << 40, Args: [][]byte{bytes.Repeat([]byte{0xee}, 300)}},
		{Op: core.OpExists, Block: 0, Args: nil},
	}
	out, err := DecodeBatchRequest(EncodeBatchRequest(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("decoded %d ops, want %d", len(out), len(in))
	}
	for i := range in {
		if out[i].Op != in[i].Op || out[i].Block != in[i].Block {
			t.Fatalf("op %d: got %+v, want %+v", i, out[i], in[i])
		}
		if len(out[i].Args) != len(in[i].Args) {
			t.Fatalf("op %d: %d args, want %d", i, len(out[i].Args), len(in[i].Args))
		}
		for j := range in[i].Args {
			if !bytes.Equal(out[i].Args[j], in[i].Args[j]) {
				t.Fatalf("op %d arg %d mismatch", i, j)
			}
		}
	}
}

func TestBatchRequestEmpty(t *testing.T) {
	out, err := DecodeBatchRequest(EncodeBatchRequest(nil))
	if err != nil || len(out) != 0 {
		t.Fatalf("empty batch = %v, %v", out, err)
	}
}

func TestBatchRequestMalformed(t *testing.T) {
	good := EncodeBatchRequest([]BatchOp{
		{Op: core.OpPut, Block: 1, Args: [][]byte{[]byte("k"), []byte("v")}},
	})
	cases := []struct {
		name string
		data []byte
	}{
		{"empty input", nil},
		{"one byte", []byte{0}},
		{"count beyond payload", []byte{0xff, 0xff}},
		{"truncated op", good[:len(good)-3]},
		{"trailing bytes", append(append([]byte{}, good...), 0xaa)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := DecodeBatchRequest(tc.data); err == nil {
				t.Fatalf("malformed request decoded cleanly")
			}
		})
	}
}

func TestBatchResultsRoundTrip(t *testing.T) {
	in := []BatchResult{
		OKResult([][]byte{[]byte("value")}),
		OKResult(nil),
		{Code: core.CodeNotFound},
		{Code: core.CodeOther, Blob: []byte("custom failure")},
	}
	out, err := DecodeBatchResults(EncodeBatchResults(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("decoded %d results, want %d", len(out), len(in))
	}
	for i := range in {
		if out[i].Code != in[i].Code || !bytes.Equal(out[i].Blob, in[i].Blob) {
			t.Fatalf("result %d: got %+v, want %+v", i, out[i], in[i])
		}
	}
	vals, err := out[0].Vals()
	if err != nil || len(vals) != 1 || string(vals[0]) != "value" {
		t.Fatalf("Vals = %q, %v", vals, err)
	}
	if !errors.Is(out[2].Err(), core.ErrNotFound) {
		t.Fatalf("result 2 Err = %v, want ErrNotFound", out[2].Err())
	}
	if got := out[3].Err(); got == nil || got.Error() != "custom failure" {
		t.Fatalf("result 3 Err = %v", got)
	}
}

func TestBatchResultsMalformed(t *testing.T) {
	good := EncodeBatchResults([]BatchResult{OKResult([][]byte{[]byte("v")})})
	cases := []struct {
		name string
		data []byte
	}{
		{"empty input", nil},
		{"count beyond payload", []byte{0x00, 0x03, byte(core.CodeOK)}},
		{"truncated blob", good[:len(good)-1]},
		{"trailing bytes", append(append([]byte{}, good...), 0xbb)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := DecodeBatchResults(tc.data); err == nil {
				t.Fatalf("malformed response decoded cleanly")
			}
		})
	}
}

// TestErrResultRoundTrip checks that every error class survives the
// result encoding the way the single-op response path carries it:
// sentinels by code, redirects with their payload, everything else by
// message.
func TestErrResultRoundTrip(t *testing.T) {
	t.Run("sentinel", func(t *testing.T) {
		r := ErrResult(fmt.Errorf("wrapping: %w", core.ErrBlockFull))
		if !errors.Is(r.Err(), core.ErrBlockFull) {
			t.Fatalf("Err = %v, want ErrBlockFull", r.Err())
		}
	})
	t.Run("redirect carries successor", func(t *testing.T) {
		next := core.BlockInfo{ID: 42, Server: "mem://server-1"}
		r := ErrResult(&redirectError{payload: RedirectPayload(next)})
		if !errors.Is(r.Err(), core.ErrRedirect) {
			t.Fatalf("Err = %v, want ErrRedirect", r.Err())
		}
		got, err := ParseRedirect(r.Blob)
		if err != nil || got != next {
			t.Fatalf("redirect payload = %+v, %v; want %+v", got, err, next)
		}
	})
	t.Run("unclassified keeps message", func(t *testing.T) {
		r := ErrResult(errors.New("disk on fire"))
		if r.Code != core.CodeOther || r.Err().Error() != "disk on fire" {
			t.Fatalf("unclassified = %+v, Err=%v", r, r.Err())
		}
	})
	t.Run("survives the wire", func(t *testing.T) {
		in := []BatchResult{
			ErrResult(core.ErrStaleEpoch),
			ErrResult(&redirectError{payload: RedirectPayload(core.BlockInfo{ID: 7, Server: "s"})}),
		}
		out, err := DecodeBatchResults(EncodeBatchResults(in))
		if err != nil {
			t.Fatal(err)
		}
		if !errors.Is(out[0].Err(), core.ErrStaleEpoch) || !errors.Is(out[1].Err(), core.ErrRedirect) {
			t.Fatalf("decoded errors = %v, %v", out[0].Err(), out[1].Err())
		}
	})
}
