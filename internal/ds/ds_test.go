package ds

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"jiffy/internal/core"
)

// --- codec ----------------------------------------------------------------

func TestRequestCodecRoundTrip(t *testing.T) {
	f := func(op uint8, block uint64, args [][]byte) bool {
		data := EncodeRequest(core.OpType(op), core.BlockID(block), args)
		gotOp, gotBlock, gotArgs, err := DecodeRequest(data)
		if err != nil {
			return false
		}
		if gotOp != core.OpType(op) || gotBlock != core.BlockID(block) {
			return false
		}
		if len(gotArgs) != len(args) {
			return false
		}
		for i := range args {
			if !bytes.Equal(gotArgs[i], args[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestValsCodecRoundTrip(t *testing.T) {
	f := func(vals [][]byte) bool {
		got, err := DecodeVals(EncodeVals(vals))
		if err != nil || len(got) != len(vals) {
			return false
		}
		for i := range vals {
			if !bytes.Equal(got[i], vals[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDecodeRequestTruncated(t *testing.T) {
	full := EncodeRequest(core.OpPut, 7, [][]byte{[]byte("key"), []byte("value")})
	for cut := 0; cut < len(full); cut++ {
		if _, _, _, err := DecodeRequest(full[:cut]); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
}

func TestU64RoundTrip(t *testing.T) {
	for _, v := range []uint64{0, 1, 1 << 40, ^uint64(0)} {
		got, err := ParseU64(U64(v))
		if err != nil || got != v {
			t.Errorf("U64(%d) round trip = %d, %v", v, got, err)
		}
	}
	if _, err := ParseU64([]byte{1, 2}); err == nil {
		t.Error("short integer accepted")
	}
}

// --- file -------------------------------------------------------------------

func TestFileWriteRead(t *testing.T) {
	f := NewFile(1024)
	if f.Type() != core.DSFile || f.Capacity() != 1024 {
		t.Fatal("metadata wrong")
	}
	n, err := f.WriteAt(0, []byte("hello"))
	if err != nil || n != 5 {
		t.Fatalf("WriteAt = %d, %v", n, err)
	}
	got, err := f.ReadAt(0, 5)
	if err != nil || string(got) != "hello" {
		t.Errorf("ReadAt = %q, %v", got, err)
	}
	if f.Bytes() != 5 {
		t.Errorf("Bytes = %d", f.Bytes())
	}
}

func TestFileSparseWrite(t *testing.T) {
	f := NewFile(1024)
	f.WriteAt(100, []byte("tail"))
	if f.Bytes() != 104 {
		t.Errorf("high-water mark = %d, want 104", f.Bytes())
	}
	got, _ := f.ReadAt(0, 10)
	if len(got) != 10 || !bytes.Equal(got, make([]byte, 10)) {
		t.Errorf("hole read = %v", got)
	}
}

func TestFileReadBeyondEOF(t *testing.T) {
	f := NewFile(100)
	f.WriteAt(0, []byte("abc"))
	got, err := f.ReadAt(3, 10)
	if err != nil || len(got) != 0 {
		t.Errorf("read at EOF = %v, %v", got, err)
	}
	got, err = f.ReadAt(2, 10) // short read
	if err != nil || string(got) != "c" {
		t.Errorf("short read = %q, %v", got, err)
	}
}

func TestFileCapacityEnforced(t *testing.T) {
	f := NewFile(10)
	if _, err := f.WriteAt(5, []byte("123456")); !errors.Is(err, core.ErrBlockFull) {
		t.Errorf("over-capacity write = %v", err)
	}
	if _, err := f.WriteAt(-1, []byte("x")); err == nil {
		t.Error("negative offset accepted")
	}
}

func TestFileApply(t *testing.T) {
	f := NewFile(100)
	res, err := f.Apply(core.OpFileWrite, [][]byte{U64(0), []byte("data")})
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := ParseU64(res[0]); n != 4 {
		t.Errorf("written = %d", n)
	}
	res, err = f.Apply(core.OpFileRead, [][]byte{U64(0), U64(4)})
	if err != nil || string(res[0]) != "data" {
		t.Errorf("read = %q, %v", res[0], err)
	}
	if _, err := f.Apply(core.OpPut, [][]byte{nil, nil}); !errors.Is(err, core.ErrWrongType) {
		t.Errorf("kv op on file = %v", err)
	}
	if _, err := f.Apply(core.OpFileWrite, nil); err == nil {
		t.Error("missing args accepted")
	}
}

func TestFileSnapshotRestore(t *testing.T) {
	f := NewFile(100)
	f.WriteAt(0, []byte("persistent"))
	snap, err := f.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	g := NewFile(0)
	if err := g.Restore(snap); err != nil {
		t.Fatal(err)
	}
	got, _ := g.ReadAt(0, 10)
	if string(got) != "persistent" || g.Capacity() != 100 {
		t.Errorf("restored = %q cap=%d", got, g.Capacity())
	}
}

// --- queue -------------------------------------------------------------------

func TestQueueFIFO(t *testing.T) {
	q := NewQueue(1024)
	for i := 0; i < 10; i++ {
		if err := q.Enqueue([]byte(fmt.Sprintf("item-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if q.Len() != 10 {
		t.Errorf("len = %d", q.Len())
	}
	for i := 0; i < 10; i++ {
		item, err := q.Dequeue()
		if err != nil || string(item) != fmt.Sprintf("item-%d", i) {
			t.Fatalf("dequeue %d = %q, %v", i, item, err)
		}
	}
	if _, err := q.Dequeue(); !errors.Is(err, core.ErrEmpty) {
		t.Errorf("empty dequeue = %v", err)
	}
	if q.Bytes() != 0 {
		t.Errorf("bytes after drain = %d", q.Bytes())
	}
}

func TestQueueCapacity(t *testing.T) {
	q := NewQueue(10)
	if err := q.Enqueue(make([]byte, 11)); !errors.Is(err, core.ErrTooLarge) {
		t.Errorf("oversized item = %v", err)
	}
	q.Enqueue(make([]byte, 6))
	if err := q.Enqueue(make([]byte, 6)); !errors.Is(err, core.ErrBlockFull) {
		t.Errorf("over-capacity enqueue = %v", err)
	}
	// Dequeue frees space.
	q.Dequeue()
	if err := q.Enqueue(make([]byte, 6)); err != nil {
		t.Errorf("enqueue after dequeue = %v", err)
	}
}

func TestQueueRedirect(t *testing.T) {
	q := NewQueue(10)
	q.Enqueue([]byte("last"))
	next := core.BlockInfo{ID: 42, Server: "srv-2"}
	q.SetNext(next)
	// Sealed segment redirects enqueues.
	err := q.Enqueue([]byte("x"))
	if !errors.Is(err, core.ErrRedirect) {
		t.Fatalf("enqueue on sealed = %v", err)
	}
	got, perr := ParseRedirect(RedirectPayloadOf(err))
	if perr != nil || got != next {
		t.Errorf("redirect target = %v, %v", got, perr)
	}
	// Pending items still dequeue locally, then redirect.
	if item, err := q.Dequeue(); err != nil || string(item) != "last" {
		t.Fatalf("dequeue = %q, %v", item, err)
	}
	if !q.Drained() {
		t.Error("sealed+empty should be drained")
	}
	err = q.Dequeue2()
	if !errors.Is(err, core.ErrRedirect) {
		t.Errorf("drained dequeue = %v", err)
	}
}

// Dequeue2 is a helper to get just the error.
func (q *Queue) Dequeue2() error { _, err := q.Dequeue(); return err }

func TestQueueApply(t *testing.T) {
	q := NewQueue(100)
	if _, err := q.Apply(core.OpEnqueue, [][]byte{[]byte("a")}); err != nil {
		t.Fatal(err)
	}
	res, err := q.Apply(core.OpDequeue, nil)
	if err != nil || string(res[0]) != "a" {
		t.Errorf("dequeue = %v, %v", res, err)
	}
	if _, err := q.Apply(core.OpGet, [][]byte{[]byte("k")}); !errors.Is(err, core.ErrWrongType) {
		t.Errorf("kv op on queue = %v", err)
	}
}

func TestQueueSnapshotRestore(t *testing.T) {
	q := NewQueue(1000)
	q.Enqueue([]byte("one"))
	q.Enqueue([]byte("two"))
	q.Dequeue() // consume "one"; snapshot holds only pending items
	q.SetNext(core.BlockInfo{ID: 9, Server: "s"})
	snap, err := q.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	r := NewQueue(0)
	if err := r.Restore(snap); err != nil {
		t.Fatal(err)
	}
	item, err := r.Dequeue()
	if err != nil || string(item) != "two" {
		t.Errorf("restored dequeue = %q, %v", item, err)
	}
	next, ok := r.Next()
	if !ok || next.ID != 9 {
		t.Errorf("restored next = %v, %v", next, ok)
	}
}

func TestQueueFIFOProperty(t *testing.T) {
	f := func(items [][]byte) bool {
		q := NewQueue(1 << 30)
		for _, it := range items {
			if err := q.Enqueue(it); err != nil {
				return false
			}
		}
		for _, want := range items {
			got, err := q.Dequeue()
			if err != nil || !bytes.Equal(got, want) {
				return false
			}
		}
		_, err := q.Dequeue()
		return errors.Is(err, core.ErrEmpty)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// --- kv ---------------------------------------------------------------------

func fullKV(capacity int) *KV {
	return NewKV(capacity, 64, []SlotRange{{Lo: 0, Hi: 63}})
}

func TestKVPutGetDelete(t *testing.T) {
	kv := fullKV(core.MB)
	if err := kv.Put("k1", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	v, err := kv.Get("k1")
	if err != nil || string(v) != "v1" {
		t.Errorf("Get = %q, %v", v, err)
	}
	old, err := kv.Delete("k1")
	if err != nil || string(old) != "v1" {
		t.Errorf("Delete = %q, %v", old, err)
	}
	if _, err := kv.Get("k1"); !errors.Is(err, core.ErrNotFound) {
		t.Errorf("Get deleted = %v", err)
	}
	if _, err := kv.Delete("k1"); !errors.Is(err, core.ErrNotFound) {
		t.Errorf("Delete missing = %v", err)
	}
}

func TestKVUpdate(t *testing.T) {
	kv := fullKV(core.MB)
	if _, err := kv.Update("k", []byte("v")); !errors.Is(err, core.ErrNotFound) {
		t.Errorf("update missing = %v", err)
	}
	kv.Put("k", []byte("v1"))
	old, err := kv.Update("k", []byte("v2"))
	if err != nil || string(old) != "v1" {
		t.Errorf("update = %q, %v", old, err)
	}
	v, _ := kv.Get("k")
	if string(v) != "v2" {
		t.Errorf("after update = %q", v)
	}
}

func TestKVOwnership(t *testing.T) {
	// Shard owning no slots rejects everything with ErrStaleEpoch.
	kv := NewKV(core.MB, 64, nil)
	if err := kv.Put("k", []byte("v")); !errors.Is(err, core.ErrStaleEpoch) {
		t.Errorf("put on disowned = %v", err)
	}
	if _, err := kv.Get("k"); !errors.Is(err, core.ErrStaleEpoch) {
		t.Errorf("get on disowned = %v", err)
	}
}

func TestKVCapacity(t *testing.T) {
	kv := fullKV(100)
	if err := kv.Put("k", make([]byte, 200)); !errors.Is(err, core.ErrTooLarge) {
		t.Errorf("oversized = %v", err)
	}
	kv.Put("a", make([]byte, 60))
	if err := kv.Put("b", make([]byte, 60)); !errors.Is(err, core.ErrBlockFull) {
		t.Errorf("over capacity = %v", err)
	}
	// Overwriting an existing key is allowed even at capacity.
	if err := kv.Put("a", make([]byte, 50)); err != nil {
		t.Errorf("overwrite at capacity = %v", err)
	}
}

func TestKVApply(t *testing.T) {
	kv := fullKV(core.MB)
	if _, err := kv.Apply(core.OpPut, [][]byte{[]byte("k"), []byte("v")}); err != nil {
		t.Fatal(err)
	}
	res, err := kv.Apply(core.OpGet, [][]byte{[]byte("k")})
	if err != nil || string(res[0]) != "v" {
		t.Errorf("get = %v, %v", res, err)
	}
	if _, err := kv.Apply(core.OpExists, [][]byte{[]byte("k")}); err != nil {
		t.Errorf("exists = %v", err)
	}
	if _, err := kv.Apply(core.OpExists, [][]byte{[]byte("zz")}); !errors.Is(err, core.ErrNotFound) {
		t.Errorf("exists missing = %v", err)
	}
	if _, err := kv.Apply(core.OpEnqueue, [][]byte{[]byte("x")}); !errors.Is(err, core.ErrWrongType) {
		t.Errorf("queue op on kv = %v", err)
	}
}

func TestKVSplitUpper(t *testing.T) {
	kv := fullKV(core.MB)
	upper, ok := kv.SplitUpper()
	if !ok {
		t.Fatal("split of 64 slots should succeed")
	}
	count := 0
	for _, r := range upper {
		count += r.Count()
	}
	if count != 32 {
		t.Errorf("upper half = %d slots, want 32", count)
	}
	// A single-slot shard cannot split.
	tiny := NewKV(core.MB, 64, []SlotRange{{Lo: 5, Hi: 5}})
	if _, ok := tiny.SplitUpper(); ok {
		t.Error("single-slot shard split should fail")
	}
}

func TestKVExportImport(t *testing.T) {
	donor := fullKV(core.MB)
	const n = 500
	for i := 0; i < n; i++ {
		donor.Put(fmt.Sprintf("key-%d", i), []byte(fmt.Sprintf("val-%d", i)))
	}
	upper, _ := donor.SplitUpper()
	moved := donor.ExportSlots(upper)
	if len(moved) == 0 || len(moved) == n {
		t.Fatalf("moved %d of %d entries; expected a proper subset", len(moved), n)
	}
	recipient := NewKV(core.MB, 64, nil)
	recipient.ImportEntries(upper, moved)

	// Every key is now reachable from exactly one shard.
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("key-%d", i)
		want := fmt.Sprintf("val-%d", i)
		dv, derr := donor.Get(key)
		rv, rerr := recipient.Get(key)
		switch {
		case derr == nil && rerr != nil:
			if string(dv) != want {
				t.Errorf("%s from donor = %q", key, dv)
			}
		case derr != nil && rerr == nil:
			if string(rv) != want {
				t.Errorf("%s from recipient = %q", key, rv)
			}
		default:
			t.Errorf("%s reachable from %v shards (donor err %v, recipient err %v)",
				key, map[bool]int{true: 2, false: 0}[derr == nil && rerr == nil], derr, rerr)
		}
	}
	// Donor disowned the moved slots.
	for _, e := range moved {
		if err := donor.Put(e.Key, []byte("x")); !errors.Is(err, core.ErrStaleEpoch) {
			t.Errorf("donor accepted write to moved key %q: %v", e.Key, err)
		}
	}
}

// TestKVSplitPreservesData is the repartition-invariant property test:
// after any sequence of splits, the union of shards contains exactly
// the original pairs.
func TestKVSplitPreservesData(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		shards := []*KV{fullKV(core.MB)}
		want := map[string]string{}
		for i := 0; i < 300; i++ {
			k := fmt.Sprintf("key-%d", rng.Intn(1000))
			v := fmt.Sprintf("val-%d", rng.Int())
			// Route to owning shard.
			for _, s := range shards {
				if err := s.Put(k, []byte(v)); err == nil {
					want[k] = v
					break
				} else if !errors.Is(err, core.ErrStaleEpoch) {
					return false
				}
			}
			// Occasionally split a random shard.
			if i%50 == 49 {
				donor := shards[rng.Intn(len(shards))]
				if upper, ok := donor.SplitUpper(); ok {
					entries := donor.ExportSlots(upper)
					fresh := NewKV(core.MB, 64, nil)
					fresh.ImportEntries(upper, entries)
					shards = append(shards, fresh)
				}
			}
		}
		// Every expected pair is reachable from exactly one shard.
		for k, v := range want {
			found := 0
			for _, s := range shards {
				if got, err := s.Get(k); err == nil {
					if string(got) != v {
						return false
					}
					found++
				}
			}
			if found != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestKVSnapshotRestore(t *testing.T) {
	kv := NewKV(1000, 64, []SlotRange{{Lo: 0, Hi: 31}})
	for i := 0; i < 20; i++ {
		kv.Put(fmt.Sprintf("k%d", i), []byte("v")) // some will fail ownership
	}
	snap, err := kv.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	r := NewKV(0, 0, nil)
	if err := r.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if r.Len() != kv.Len() || r.Capacity() != 1000 {
		t.Errorf("restored len=%d cap=%d, want len=%d cap=1000", r.Len(), r.Capacity(), kv.Len())
	}
	owned := r.Owned()
	if len(owned) != 1 || owned[0] != (SlotRange{Lo: 0, Hi: 31}) {
		t.Errorf("restored owned = %v", owned)
	}
}

// --- slot range algebra -------------------------------------------------------

func TestSubtractRanges(t *testing.T) {
	owned := []SlotRange{{Lo: 0, Hi: 63}}
	out := subtractRanges(owned, []SlotRange{{Lo: 32, Hi: 63}})
	if len(out) != 1 || out[0] != (SlotRange{Lo: 0, Hi: 31}) {
		t.Errorf("subtract upper = %v", out)
	}
	out = subtractRanges(owned, []SlotRange{{Lo: 10, Hi: 20}})
	if len(out) != 2 || out[0] != (SlotRange{Lo: 0, Hi: 9}) || out[1] != (SlotRange{Lo: 21, Hi: 63}) {
		t.Errorf("subtract middle = %v", out)
	}
	out = subtractRanges(owned, []SlotRange{{Lo: 0, Hi: 63}})
	if len(out) != 0 {
		t.Errorf("subtract all = %v", out)
	}
}

func TestAddRangesCoalesces(t *testing.T) {
	out := addRanges([]SlotRange{{Lo: 0, Hi: 31}}, []SlotRange{{Lo: 32, Hi: 63}})
	if len(out) != 1 || out[0] != (SlotRange{Lo: 0, Hi: 63}) {
		t.Errorf("adjacent ranges not coalesced: %v", out)
	}
	out = addRanges([]SlotRange{{Lo: 0, Hi: 10}}, []SlotRange{{Lo: 20, Hi: 30}})
	if len(out) != 2 {
		t.Errorf("disjoint ranges merged: %v", out)
	}
}

func TestRangeAlgebraProperty(t *testing.T) {
	// Property: subtract-then-add restores coverage of every slot.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		lo := rng.Intn(32)
		hi := lo + rng.Intn(32)
		owned := []SlotRange{{Lo: 0, Hi: 63}}
		sub := []SlotRange{{Lo: lo, Hi: hi}}
		reduced := subtractRanges(owned, sub)
		restored := addRanges(reduced, sub)
		for s := 0; s <= 63; s++ {
			inReduced := false
			for _, r := range reduced {
				if r.Contains(s) {
					inReduced = true
				}
			}
			wantReduced := s < lo || s > hi
			if inReduced != wantReduced {
				return false
			}
			inRestored := false
			for _, r := range restored {
				if r.Contains(s) {
					inRestored = true
				}
			}
			if !inRestored {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestSlotOfStableAndBounded(t *testing.T) {
	for i := 0; i < 1000; i++ {
		key := fmt.Sprintf("key-%d", i)
		s1 := SlotOf(key, 64)
		s2 := SlotOf(key, 64)
		if s1 != s2 {
			t.Fatalf("SlotOf unstable for %q", key)
		}
		if s1 < 0 || s1 >= 64 {
			t.Fatalf("SlotOf(%q) = %d out of range", key, s1)
		}
	}
}

// --- partition map -----------------------------------------------------------

func TestPartitionMapRouting(t *testing.T) {
	m := &PartitionMap{
		Type:     core.DSKV,
		NumSlots: 64,
		Blocks: []PartitionEntry{
			{Info: core.BlockInfo{ID: 1, Server: "a"}, Slots: []SlotRange{{Lo: 0, Hi: 31}}},
			{Info: core.BlockInfo{ID: 2, Server: "b"}, Slots: []SlotRange{{Lo: 32, Hi: 63}}},
		},
	}
	e, ok := m.BlockForSlot(5)
	if !ok || e.Info.ID != 1 {
		t.Errorf("slot 5 → %v, %v", e, ok)
	}
	e, ok = m.BlockForSlot(40)
	if !ok || e.Info.ID != 2 {
		t.Errorf("slot 40 → %v, %v", e, ok)
	}
	if _, ok := m.BlockForSlot(64); ok {
		t.Error("out-of-range slot routed")
	}
}

func TestPartitionMapChunksAndQueueEnds(t *testing.T) {
	m := &PartitionMap{
		Type: core.DSQueue,
		Blocks: []PartitionEntry{
			{Info: core.BlockInfo{ID: 10, Server: "a"}, Chunk: 2},
			{Info: core.BlockInfo{ID: 11, Server: "b"}, Chunk: 0},
			{Info: core.BlockInfo{ID: 12, Server: "c"}, Chunk: 1},
		},
	}
	head, ok := m.Head()
	if !ok || head.Info.ID != 11 {
		t.Errorf("head = %v", head)
	}
	tail, ok := m.Tail()
	if !ok || tail.Info.ID != 10 {
		t.Errorf("tail = %v", tail)
	}
	c, ok := m.BlockForChunk(1)
	if !ok || c.Info.ID != 12 {
		t.Errorf("chunk 1 = %v", c)
	}
	if _, ok := m.BlockForChunk(9); ok {
		t.Error("missing chunk found")
	}
	empty := &PartitionMap{}
	if _, ok := empty.Head(); ok {
		t.Error("empty map has a head")
	}
}

func TestNewPartition(t *testing.T) {
	for _, typ := range []core.DSType{core.DSFile, core.DSQueue, core.DSKV} {
		p, err := New(typ, 1024, 64)
		if err != nil || p.Type() != typ {
			t.Errorf("New(%v) = %v, %v", typ, p, err)
		}
	}
	if _, err := New(core.DSNone, 1024, 64); err == nil {
		t.Error("DSNone partition created")
	}
}
