package ds

import (
	"fmt"
	"sync"

	"jiffy/internal/core"
)

// File is the partition engine for one chunk of a Jiffy file (§5.1).
// A Jiffy file is a sequence of blocks, each owning a fixed-size chunk
// of the file's byte range; the controller maps chunk index → block and
// the client routes by offset. Within a block, offsets are
// chunk-relative. Files are append-oriented but support writes at
// arbitrary in-capacity offsets (needed when concurrent map tasks write
// disjoint regions of a shuffle file) and seek reads.
type File struct {
	mu   sync.RWMutex
	data []byte
	size int // high-water mark of written bytes
	cap  int
}

// NewFile creates an empty file chunk of the given capacity.
func NewFile(capacity int) *File {
	return &File{cap: capacity}
}

// Type implements Partition.
func (f *File) Type() core.DSType { return core.DSFile }

// Capacity implements Partition.
func (f *File) Capacity() int {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return f.cap
}

// Bytes implements Partition: the written high-water mark.
func (f *File) Bytes() int {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return f.size
}

// Apply implements Partition.
//
//	OpFileWrite: args[0]=chunk-relative offset (u64), args[1]=data
//	             → [bytesWritten u64]
//	OpFileRead:  args[0]=offset (u64), args[1]=length (u64)
//	             → [data] (short or empty at end of written region)
func (f *File) Apply(op core.OpType, args [][]byte) ([][]byte, error) {
	switch op {
	case core.OpFileWrite:
		if len(args) != 2 {
			return nil, fmt.Errorf("ds: file write wants 2 args, got %d", len(args))
		}
		off, err := ParseU64(args[0])
		if err != nil {
			return nil, err
		}
		n, err := f.WriteAt(int(off), args[1])
		if err != nil {
			return nil, err
		}
		return [][]byte{U64(uint64(n))}, nil
	case core.OpFileRead:
		if len(args) != 2 {
			return nil, fmt.Errorf("ds: file read wants 2 args, got %d", len(args))
		}
		off, err := ParseU64(args[0])
		if err != nil {
			return nil, err
		}
		length, err := ParseU64(args[1])
		if err != nil {
			return nil, err
		}
		data, err := f.ReadAt(int(off), int(length))
		if err != nil {
			return nil, err
		}
		return [][]byte{data}, nil
	case core.OpFileAppend:
		if len(args) != 1 {
			return nil, fmt.Errorf("ds: file append wants 1 arg, got %d", len(args))
		}
		off, err := f.Append(args[0])
		if err != nil {
			return nil, err
		}
		return [][]byte{U64(uint64(off))}, nil
	case core.OpUsage:
		return [][]byte{U64(uint64(f.Bytes()))}, nil
	default:
		return nil, fmt.Errorf("ds: file: %w (%v)", core.ErrWrongType, op)
	}
}

// Append atomically writes data at the chunk's current high-water mark
// and returns the chunk-relative offset it landed at. Appends that do
// not fit entirely are rejected with ErrBlockFull (the record moves
// whole to the next chunk), which is what lets many concurrent map
// tasks interleave records in one shuffle file safely (§5.1).
func (f *File) Append(data []byte) (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if len(data) > f.cap {
		return 0, fmt.Errorf("ds: record of %d bytes exceeds chunk capacity %d: %w",
			len(data), f.cap, core.ErrTooLarge)
	}
	off := f.size
	if off+len(data) > f.cap {
		return 0, fmt.Errorf("ds: append of %d bytes at %d exceeds chunk capacity %d: %w",
			len(data), off, f.cap, core.ErrBlockFull)
	}
	f.grow(off + len(data))
	copy(f.data[off:], data)
	f.size = off + len(data)
	return off, nil
}

// WriteAt stores data at the chunk-relative offset. A write that would
// cross the chunk capacity is rejected with ErrBlockFull — clients
// split writes at chunk boundaries, so this only fires on misuse.
func (f *File) WriteAt(off int, data []byte) (int, error) {
	if off < 0 {
		return 0, fmt.Errorf("ds: negative offset %d", off)
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if off+len(data) > f.cap {
		return 0, fmt.Errorf("ds: write [%d,%d) exceeds chunk capacity %d: %w",
			off, off+len(data), f.cap, core.ErrBlockFull)
	}
	f.grow(off + len(data))
	copy(f.data[off:], data)
	if off+len(data) > f.size {
		f.size = off + len(data)
	}
	return len(data), nil
}

// grow extends the backing buffer to at least need bytes, doubling
// capacity (bounded by the chunk capacity) so sequences of small
// appends stay amortized O(1). Caller holds the lock; need <= f.cap.
func (f *File) grow(need int) {
	if need <= len(f.data) {
		return
	}
	if need <= cap(f.data) {
		f.data = f.data[:need]
		return
	}
	newCap := 2 * cap(f.data)
	if newCap < need {
		newCap = need
	}
	if newCap < 4096 {
		newCap = 4096
	}
	if newCap > f.cap {
		newCap = f.cap
	}
	grown := make([]byte, need, newCap)
	copy(grown, f.data)
	f.data = grown
}

// ReadAt returns up to length bytes starting at the chunk-relative
// offset, truncated at the written high-water mark. Reading at or past
// the mark yields an empty slice (end of written data).
func (f *File) ReadAt(off, length int) ([]byte, error) {
	if off < 0 || length < 0 {
		return nil, fmt.Errorf("ds: negative offset/length")
	}
	f.mu.RLock()
	defer f.mu.RUnlock()
	if off >= f.size {
		return nil, nil
	}
	end := off + length
	if end > f.size {
		end = f.size
	}
	out := make([]byte, end-off)
	copy(out, f.data[off:end])
	return out, nil
}

// ApplyView implements ViewReader for OpFileRead. Unlike KV values and
// queue items, file bytes ARE mutated in place (WriteAt over written
// regions), so the view is leased: it returns with the chunk's read
// lock held and Release drops it, which blocks writers — but not other
// readers or Snapshot — for exactly as long as the response is being
// handed to the transport.
func (f *File) ApplyView(op core.OpType, args [][]byte) (View, bool, error) {
	if op != core.OpFileRead {
		return View{}, false, nil
	}
	if len(args) != 2 {
		return View{}, true, fmt.Errorf("ds: file read wants 2 args, got %d", len(args))
	}
	off, err := ParseU64(args[0])
	if err != nil {
		return View{}, true, err
	}
	length, err := ParseU64(args[1])
	if err != nil {
		return View{}, true, err
	}
	o, l := int(off), int(length)
	if o < 0 || l < 0 {
		return View{}, true, fmt.Errorf("ds: negative offset/length")
	}
	f.mu.RLock()
	if o >= f.size {
		f.mu.RUnlock()
		return View{Vals: [][]byte{nil}}, true, nil
	}
	end := o + l
	if end > f.size || end < o {
		end = f.size
	}
	return View{
		Vals:    [][]byte{f.data[o:end]},
		Release: f.mu.RUnlock,
	}, true, nil
}

// fileSnapshot is the serialized form of a file chunk.
type fileSnapshot struct {
	Data []byte
	Size int
	Cap  int
}

// Snapshot implements Partition.
func (f *File) Snapshot() ([]byte, error) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return gobEncode(fileSnapshot{
		Data: f.data[:f.size],
		Size: f.size,
		Cap:  f.cap,
	})
}

// Restore implements Partition.
func (f *File) Restore(snapshot []byte) error {
	var s fileSnapshot
	if err := gobDecode(snapshot, &s); err != nil {
		return err
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.data = append([]byte(nil), s.Data...)
	f.size = s.Size
	f.cap = s.Cap
	return nil
}
