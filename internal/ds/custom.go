package ds

import (
	"fmt"
	"sync"

	"jiffy/internal/core"
)

// Custom data structures (Table 2 of the paper: built-ins plus "Custom
// data structures"). Applications define new structures by
// implementing Partition — the same internal block API the built-ins
// use (getBlock routing stays with the client; writeOp/readOp/deleteOp
// semantics are the partition's Apply) — and registering a constructor
// under a type code. Every process in the deployment (servers, and any
// client embedding the library) must register the same code, exactly
// like the paper's C++ processes all linking the data structure's
// operator implementations.
//
// Custom structures receive file-like elasticity from the controller:
// blocks are chunk-indexed and scale-up appends a fresh block (no
// data movement) — sufficient for log-, set- and sketch-shaped
// structures. Structures needing KV-style rebalancing should build on
// the KV type instead.

// CustomBase is the first type code available to custom structures;
// codes below it are reserved for built-ins.
const CustomBase core.DSType = 64

// Constructor builds a partition instance for one block.
type Constructor func(capacity, numSlots int) Partition

var customReg = struct {
	sync.RWMutex
	byType map[core.DSType]registration
	byName map[string]core.DSType
}{
	byType: make(map[core.DSType]registration),
	byName: make(map[string]core.DSType),
}

type registration struct {
	name string
	ctor Constructor
}

// Register installs a custom data structure under the given type code
// (>= CustomBase) and name. Registration is global to the process and
// must happen before any block of that type is created; duplicate
// codes or names are rejected.
func Register(t core.DSType, name string, ctor Constructor) error {
	if t < CustomBase {
		return fmt.Errorf("ds: custom type code %d collides with built-ins (use >= %d)",
			t, CustomBase)
	}
	if name == "" || ctor == nil {
		return fmt.Errorf("ds: custom registration needs a name and a constructor")
	}
	customReg.Lock()
	defer customReg.Unlock()
	if _, dup := customReg.byType[t]; dup {
		return fmt.Errorf("ds: custom type %d: %w", t, core.ErrExists)
	}
	if _, dup := customReg.byName[name]; dup {
		return fmt.Errorf("ds: custom type %q: %w", name, core.ErrExists)
	}
	customReg.byType[t] = registration{name: name, ctor: ctor}
	customReg.byName[name] = t
	return nil
}

// IsCustom reports whether t is a registered custom type.
func IsCustom(t core.DSType) bool {
	customReg.RLock()
	defer customReg.RUnlock()
	_, ok := customReg.byType[t]
	return ok
}

// NewCustom instantiates a registered custom partition.
func NewCustom(t core.DSType, capacity, numSlots int) (Partition, error) {
	customReg.RLock()
	reg, ok := customReg.byType[t]
	customReg.RUnlock()
	if !ok {
		return nil, fmt.Errorf("ds: custom type %d not registered: %w", t, core.ErrWrongType)
	}
	return reg.ctor(capacity, numSlots), nil
}

// CustomTypeByName resolves a registered custom type code by name.
func CustomTypeByName(name string) (core.DSType, bool) {
	customReg.RLock()
	defer customReg.RUnlock()
	t, ok := customReg.byName[name]
	return t, ok
}

// CustomName returns a registered custom type's name.
func CustomName(t core.DSType) (string, bool) {
	customReg.RLock()
	defer customReg.RUnlock()
	reg, ok := customReg.byType[t]
	return reg.name, ok
}
