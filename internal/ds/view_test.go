package ds

import (
	"bytes"
	"testing"
	"time"

	"jiffy/internal/core"
)

// TestFileViewAliasesChunk proves the read view is genuinely zero-copy:
// the returned slice points into the chunk's backing array, and the
// lease blocks an in-place writer until Release fires.
func TestFileViewAliasesChunk(t *testing.T) {
	f := NewFile(core.MB)
	payload := bytes.Repeat([]byte("jiffy!"), 1024)
	if _, err := f.WriteAt(64, payload); err != nil {
		t.Fatal(err)
	}

	v, handled, err := f.ApplyView(core.OpFileRead,
		[][]byte{U64(64), U64(uint64(len(payload)))})
	if err != nil || !handled {
		t.Fatalf("ApplyView: handled=%v err=%v", handled, err)
	}
	if len(v.Vals) != 1 || !bytes.Equal(v.Vals[0], payload) {
		t.Fatalf("view returned wrong bytes")
	}
	if &v.Vals[0][0] != &f.data[64] {
		t.Fatalf("view copied the chunk bytes instead of aliasing them")
	}

	// The lease must hold writers off the chunk until released.
	wrote := make(chan struct{})
	go func() {
		f.WriteAt(64, []byte("overwrite"))
		close(wrote)
	}()
	select {
	case <-wrote:
		t.Fatal("WriteAt proceeded while a read lease was held")
	case <-time.After(20 * time.Millisecond):
	}
	v.Release()
	select {
	case <-wrote:
	case <-time.After(2 * time.Second):
		t.Fatal("WriteAt still blocked after the lease was released")
	}
}

// TestFileViewBounds exercises the hostile-offset edges: past the
// high-water mark (empty value, no lease) and length overflowing the
// mark (truncated, still aliased).
func TestFileViewBounds(t *testing.T) {
	f := NewFile(core.MB)
	if _, err := f.WriteAt(0, []byte("0123456789")); err != nil {
		t.Fatal(err)
	}

	v, handled, err := f.ApplyView(core.OpFileRead, [][]byte{U64(100), U64(4)})
	if err != nil || !handled {
		t.Fatalf("past-end read: handled=%v err=%v", handled, err)
	}
	if len(v.Vals) != 1 || len(v.Vals[0]) != 0 || v.Release != nil {
		t.Fatalf("past-end read: want empty value with no lease, got %d vals release=%v",
			len(v.Vals), v.Release != nil)
	}

	v, _, err = f.ApplyView(core.OpFileRead, [][]byte{U64(6), U64(1 << 40)})
	if err != nil {
		t.Fatal(err)
	}
	if string(v.Vals[0]) != "6789" {
		t.Fatalf("truncated read = %q, want %q", v.Vals[0], "6789")
	}
	v.Release()
}

// TestFileReadViewAllocs is the allocation gate for the server-side
// read path: serving a pooled-size File read as a view (ApplyView +
// AppendValsVec into a reused head buffer) must not allocate a copy of
// the data. The bound covers only fixed-size bookkeeping — the View's
// value slice and the scatter-gather vector — so a payload-sized copy
// (64KiB here) would trip it regardless of payload length.
func TestFileReadViewAllocs(t *testing.T) {
	f := NewFile(core.MB)
	payload := make([]byte, 64*core.KB)
	if _, err := f.WriteAt(0, payload); err != nil {
		t.Fatal(err)
	}
	args := [][]byte{U64(0), U64(uint64(len(payload)))}
	head := make([]byte, 0, 64)

	allocs := testing.AllocsPerRun(200, func() {
		v, handled, err := f.ApplyView(core.OpFileRead, args)
		if !handled || err != nil {
			t.Fatalf("ApplyView: handled=%v err=%v", handled, err)
		}
		_, vec := AppendValsVec(head, v.Vals)
		if len(vec) != 1 || len(vec[0]) != len(payload) {
			t.Fatalf("unexpected vector shape")
		}
		v.Release()
	})
	// One alloc for the View's Vals slice, one for the Release method
	// value, one for the vector; a data copy would add at least one
	// more.
	if allocs > 3 {
		t.Fatalf("view read path allocates %.1f objects/op, want <= 3", allocs)
	}
}

// TestAppendValsVecLayout checks the vectored encoding byte-for-byte
// against the contiguous encoder for assorted value shapes, including
// the empty vector and empty values.
func TestAppendValsVecLayout(t *testing.T) {
	cases := [][][]byte{
		nil,
		{[]byte("x")},
		{nil},
		{[]byte("abc"), nil, bytes.Repeat([]byte("y"), 5000)},
		{U64(1), U64(2), U64(3)},
	}
	for _, vals := range cases {
		payload, vec := AppendValsVec(nil, vals)
		var flat []byte
		flat = append(flat, payload...)
		for _, seg := range vec {
			flat = append(flat, seg...)
		}
		want := EncodeVals(vals)
		if !bytes.Equal(flat, want) {
			t.Fatalf("vals %d: vectored %x != contiguous %x", len(vals), flat, want)
		}
		got, err := DecodeVals(flat)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(vals) {
			t.Fatalf("round trip lost values: %d != %d", len(got), len(vals))
		}
	}
}

// TestAppendRequestVecLayout checks the vectored request encoding
// against the contiguous encoder and that args ride as aliases.
func TestAppendRequestVecLayout(t *testing.T) {
	big := bytes.Repeat([]byte("z"), 9000)
	cases := [][][]byte{
		nil,
		{[]byte("k")},
		{U64(77), big},
	}
	for _, args := range cases {
		vec, buf := AppendRequestVec(nil, core.OpFileWrite, 42, args)
		var flat []byte
		for _, seg := range vec {
			flat = append(flat, seg...)
		}
		want := AppendRequest(nil, core.OpFileWrite, 42, args)
		if !bytes.Equal(flat, want) {
			t.Fatalf("args %d: vectored %d bytes != contiguous %d bytes",
				len(args), len(flat), len(want))
		}
		op, block, gotArgs, err := DecodeRequest(flat)
		if err != nil {
			t.Fatal(err)
		}
		if op != core.OpFileWrite || block != 42 || len(gotArgs) != len(args) {
			t.Fatalf("round trip mismatch: op=%v block=%v args=%d", op, block, len(gotArgs))
		}
		if len(args) > 0 && &vec[1][0] != &args[0][0] {
			t.Fatal("request vector copied its first arg")
		}
		_ = buf
	}
}
