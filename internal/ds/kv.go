package ds

import (
	"fmt"
	"sort"
	"sync"

	"jiffy/internal/core"
	"jiffy/internal/cuckoo"
)

// KV is the partition engine for one shard of a Jiffy KV store (§5.3).
// The store hashes keys into a fixed slot space; each block owns one or
// more contiguous slot ranges (a slot lives entirely in one block), and
// stores its key-value pairs in a cuckoo hash table. Repartitioning
// reassigns half of an overloaded block's slots to a new block and
// moves the corresponding pairs (hash-based repartitioning, Table 2).
type KV struct {
	table    *cuckoo.Table
	numSlots int
	cap      int

	mu    sync.RWMutex
	owned []SlotRange
}

// NewKV creates a KV shard with the given byte capacity, total slot
// count and initially owned slot ranges.
func NewKV(capacity, numSlots int, owned []SlotRange) *KV {
	return &KV{
		table:    cuckoo.New(256),
		numSlots: numSlots,
		cap:      capacity,
		owned:    append([]SlotRange(nil), owned...),
	}
}

// Type implements Partition.
func (k *KV) Type() core.DSType { return core.DSKV }

// Capacity implements Partition.
func (k *KV) Capacity() int {
	k.mu.RLock()
	defer k.mu.RUnlock()
	return k.cap
}

// slots returns the slot-space size under the lock (Restore may change
// it when a snapshot with a different configuration is loaded).
func (k *KV) slots() int {
	k.mu.RLock()
	defer k.mu.RUnlock()
	return k.numSlots
}

// Bytes implements Partition.
func (k *KV) Bytes() int { return k.table.Bytes() }

// Len returns the number of stored pairs.
func (k *KV) Len() int { return k.table.Len() }

// Owned returns a copy of the owned slot ranges.
func (k *KV) Owned() []SlotRange {
	k.mu.RLock()
	defer k.mu.RUnlock()
	return append([]SlotRange(nil), k.owned...)
}

// SetOwned replaces the owned ranges (controller-driven during
// repartitioning commits).
func (k *KV) SetOwned(ranges []SlotRange) {
	k.mu.Lock()
	k.owned = append([]SlotRange(nil), ranges...)
	k.mu.Unlock()
}

// owns reports whether the shard currently owns the slot.
func (k *KV) owns(slot int) bool {
	k.mu.RLock()
	defer k.mu.RUnlock()
	for _, r := range k.owned {
		if r.Contains(slot) {
			return true
		}
	}
	return false
}

// checkOwned validates routing: a key whose slot this shard does not
// own means the client's partition map is stale.
func (k *KV) checkOwned(key string) error {
	slot := SlotOf(key, k.slots())
	if !k.owns(slot) {
		return fmt.Errorf("ds: slot %d not owned by this block: %w",
			slot, core.ErrStaleEpoch)
	}
	return nil
}

// Apply implements Partition.
//
//	OpPut:    [key, value] → []
//	OpGet:    [key]        → [value]
//	OpDelete: [key]        → [old value]
//	OpExists: [key]        → [] or ErrNotFound
//	OpUpdate: [key, value] → [old value]; ErrNotFound if absent
func (k *KV) Apply(op core.OpType, args [][]byte) ([][]byte, error) {
	switch op {
	case core.OpPut:
		if len(args) != 2 {
			return nil, fmt.Errorf("ds: put wants 2 args, got %d", len(args))
		}
		return nil, k.Put(string(args[0]), args[1])
	case core.OpGet:
		if len(args) != 1 {
			return nil, fmt.Errorf("ds: get wants 1 arg, got %d", len(args))
		}
		v, err := k.Get(string(args[0]))
		if err != nil {
			return nil, err
		}
		return [][]byte{v}, nil
	case core.OpDelete:
		if len(args) != 1 {
			return nil, fmt.Errorf("ds: delete wants 1 arg, got %d", len(args))
		}
		old, err := k.Delete(string(args[0]))
		if err != nil {
			return nil, err
		}
		return [][]byte{old}, nil
	case core.OpExists:
		if len(args) != 1 {
			return nil, fmt.Errorf("ds: exists wants 1 arg, got %d", len(args))
		}
		if err := k.checkOwned(string(args[0])); err != nil {
			return nil, err
		}
		if _, ok := k.table.Get(string(args[0])); !ok {
			return nil, core.ErrNotFound
		}
		return nil, nil
	case core.OpUpdate:
		if len(args) != 2 {
			return nil, fmt.Errorf("ds: update wants 2 args, got %d", len(args))
		}
		old, err := k.Update(string(args[0]), args[1])
		if err != nil {
			return nil, err
		}
		return [][]byte{old}, nil
	case core.OpUsage:
		return [][]byte{U64(uint64(k.Bytes()))}, nil
	default:
		return nil, fmt.Errorf("ds: kv: %w (%v)", core.ErrWrongType, op)
	}
}

// ApplyView implements ViewReader for OpGet: the returned value aliases
// the stored bytes with no lease needed — Put and Update copy values in
// and never mutate stored bytes, and repartitioning moves slice headers,
// not bytes (immutable-values regime, see view.go).
func (k *KV) ApplyView(op core.OpType, args [][]byte) (View, bool, error) {
	if op != core.OpGet {
		return View{}, false, nil
	}
	if len(args) != 1 {
		return View{}, true, fmt.Errorf("ds: get wants 1 arg, got %d", len(args))
	}
	v, err := k.Get(string(args[0]))
	if err != nil {
		return View{}, true, err
	}
	return View{Vals: [][]byte{v}}, true, nil
}

// Put inserts or overwrites a pair. Writes that would push the shard
// beyond its capacity are rejected with ErrBlockFull; the proactive
// high-threshold split normally prevents ever reaching this.
func (k *KV) Put(key string, value []byte) error {
	if err := k.checkOwned(key); err != nil {
		return err
	}
	capacity := k.Capacity()
	if len(key)+len(value) > capacity {
		return fmt.Errorf("ds: pair of %d bytes exceeds block capacity %d: %w",
			len(key)+len(value), capacity, core.ErrTooLarge)
	}
	if k.table.Bytes()+len(key)+len(value) > capacity {
		if _, exists := k.table.Get(key); !exists {
			return core.ErrBlockFull
		}
	}
	k.table.Put(key, append([]byte(nil), value...))
	return nil
}

// Get returns the value for key.
func (k *KV) Get(key string) ([]byte, error) {
	if err := k.checkOwned(key); err != nil {
		return nil, err
	}
	v, ok := k.table.Get(key)
	if !ok {
		return nil, fmt.Errorf("ds: key %q: %w", key, core.ErrNotFound)
	}
	return v, nil
}

// Delete removes key, returning the old value.
func (k *KV) Delete(key string) ([]byte, error) {
	if err := k.checkOwned(key); err != nil {
		return nil, err
	}
	old, ok := k.table.Delete(key)
	if !ok {
		return nil, fmt.Errorf("ds: key %q: %w", key, core.ErrNotFound)
	}
	return old, nil
}

// Update overwrites an existing key, returning the previous value.
func (k *KV) Update(key string, value []byte) ([]byte, error) {
	if err := k.checkOwned(key); err != nil {
		return nil, err
	}
	if _, ok := k.table.Get(key); !ok {
		return nil, fmt.Errorf("ds: key %q: %w", key, core.ErrNotFound)
	}
	prev, _ := k.table.Put(key, append([]byte(nil), value...))
	return prev, nil
}

// KVEntry is one exported key-value pair.
type KVEntry struct {
	Key   string
	Value []byte
}

// ExportSlots atomically removes and returns every pair whose slot
// falls inside ranges, and disowns those ranges. This is the donor half
// of a split: after it returns, requests for moved keys fail with
// ErrStaleEpoch, prompting clients to refresh their partition map.
func (k *KV) ExportSlots(ranges []SlotRange) []KVEntry {
	k.mu.Lock()
	// Disown first so concurrent writers can no longer add to the
	// moving slots.
	k.owned = subtractRanges(k.owned, ranges)
	k.mu.Unlock()

	numSlots := k.slots()
	var out []KVEntry
	var doomed []string
	k.table.Range(func(key string, val []byte) bool {
		slot := SlotOf(key, numSlots)
		for _, r := range ranges {
			if r.Contains(slot) {
				out = append(out, KVEntry{Key: key, Value: val})
				doomed = append(doomed, key)
				break
			}
		}
		return true
	})
	for _, key := range doomed {
		k.table.Delete(key)
	}
	return out
}

// ImportEntries installs pairs and takes ownership of ranges: the
// recipient half of a split (or merge).
func (k *KV) ImportEntries(ranges []SlotRange, entries []KVEntry) {
	k.mu.Lock()
	k.owned = addRanges(k.owned, ranges)
	k.mu.Unlock()
	for _, e := range entries {
		k.table.Put(e.Key, e.Value)
	}
}

// SplitUpper computes the upper half of this shard's owned slots — the
// ranges the controller reassigns to a new block when this one
// overflows. Returns false if the shard owns fewer than two slots.
func (k *KV) SplitUpper() ([]SlotRange, bool) {
	k.mu.RLock()
	defer k.mu.RUnlock()
	total := 0
	for _, r := range k.owned {
		total += r.Count()
	}
	if total < 2 {
		return nil, false
	}
	// Collect the top half of slots, preserving range structure.
	want := total / 2
	upper := make([]SlotRange, 0, len(k.owned))
	sorted := append([]SlotRange(nil), k.owned...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Lo > sorted[j].Lo })
	for _, r := range sorted {
		if want == 0 {
			break
		}
		take := r.Count()
		if take > want {
			take = want
		}
		upper = append(upper, SlotRange{Lo: r.Hi - take + 1, Hi: r.Hi})
		want -= take
	}
	return upper, true
}

// subtractRanges removes sub from owned (slot-accurate).
func subtractRanges(owned, sub []SlotRange) []SlotRange {
	out := append([]SlotRange(nil), owned...)
	for _, s := range sub {
		next := out[:0:0]
		for _, r := range out {
			if s.Hi < r.Lo || s.Lo > r.Hi {
				next = append(next, r)
				continue
			}
			if r.Lo < s.Lo {
				next = append(next, SlotRange{Lo: r.Lo, Hi: s.Lo - 1})
			}
			if r.Hi > s.Hi {
				next = append(next, SlotRange{Lo: s.Hi + 1, Hi: r.Hi})
			}
		}
		out = next
	}
	return out
}

// addRanges unions add into owned, coalescing adjacent ranges.
func addRanges(owned, add []SlotRange) []SlotRange {
	all := append(append([]SlotRange(nil), owned...), add...)
	if len(all) == 0 {
		return nil
	}
	sort.Slice(all, func(i, j int) bool { return all[i].Lo < all[j].Lo })
	out := []SlotRange{all[0]}
	for _, r := range all[1:] {
		last := &out[len(out)-1]
		if r.Lo <= last.Hi+1 {
			if r.Hi > last.Hi {
				last.Hi = r.Hi
			}
		} else {
			out = append(out, r)
		}
	}
	return out
}

// kvSnapshot is the serialized form of a KV shard.
type kvSnapshot struct {
	Entries  []KVEntry
	NumSlots int
	Cap      int
	Owned    []SlotRange
}

// Snapshot implements Partition.
func (k *KV) Snapshot() ([]byte, error) {
	var entries []KVEntry
	k.table.Range(func(key string, val []byte) bool {
		entries = append(entries, KVEntry{Key: key, Value: val})
		return true
	})
	return gobEncode(kvSnapshot{
		Entries:  entries,
		NumSlots: k.numSlots,
		Cap:      k.cap,
		Owned:    k.Owned(),
	})
}

// Restore implements Partition.
func (k *KV) Restore(snapshot []byte) error {
	var s kvSnapshot
	if err := gobDecode(snapshot, &s); err != nil {
		return err
	}
	k.mu.Lock()
	k.numSlots = s.NumSlots
	k.cap = s.Cap
	k.owned = s.Owned
	k.mu.Unlock()
	k.table.Clear()
	for _, e := range s.Entries {
		k.table.Put(e.Key, e.Value)
	}
	return nil
}
