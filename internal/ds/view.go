package ds

import (
	"encoding/binary"

	"jiffy/internal/core"
)

// Zero-copy read views.
//
// A View is a result vector whose value slices alias partition memory
// instead of freshly encoded copies. Aliasing is safe under one of two
// regimes, and every ViewReader implementation must satisfy one:
//
//   - Immutable values: the partition never mutates stored bytes in
//     place. KV shards copy values on Put/Update and queues copy items
//     on Enqueue, so a returned slice can outlive the partition lock —
//     repartitioning moves the slice headers, never the bytes, and
//     deletion merely drops references the response still holds.
//   - Leased views: the partition DOES mutate memory in place (a file
//     chunk's WriteAt), so ApplyView returns with a read lease held —
//     Release drops it. The rpc layer fires Release exactly once when
//     the response frame's bytes have been handed to the transport,
//     which bounds the lease to the in-flight response.
type View struct {
	// Vals is the result vector; slices may alias partition memory.
	Vals [][]byte
	// Release, if non-nil, ends the view's lease. Must be called
	// exactly once, after which Vals must not be touched.
	Release func()
}

// ViewReader is implemented by partitions that can serve non-mutating
// ops as zero-copy views into their memory.
type ViewReader interface {
	// ApplyView executes op if it has a zero-copy form. handled=false
	// means the caller must fall back to Apply; when an error is
	// returned no lease is held.
	ApplyView(op core.OpType, args [][]byte) (v View, handled bool, err error)
}

// ApplyView tries the zero-copy read path against a partition.
func ApplyView(p Partition, op core.OpType, args [][]byte) (View, bool, error) {
	if vr, ok := p.(ViewReader); ok {
		return vr.ApplyView(op, args)
	}
	return View{}, false, nil
}

// AppendValsVec encodes a result vector (same wire layout as
// EncodeVals) without copying the values: the count and every length
// prefix are written into buf up front, and the returned segments
// interleave subslices of buf with the value slices themselves.
// payload is the first segment (count + first prefix) — callers hand
// it to the rpc layer as the contiguous Response.Payload so the
// buffer is recycled after the write; vec carries the remainder.
// buf's contents are consumed; pass wire.GetBuf().
func AppendValsVec(buf []byte, vals [][]byte) (payload []byte, vec [][]byte) {
	need := 2 + 4*len(vals)
	if cap(buf) < need {
		buf = make([]byte, 0, need)
	}
	buf = buf[:need]
	binary.BigEndian.PutUint16(buf[0:2], uint16(len(vals)))
	for i, v := range vals {
		binary.BigEndian.PutUint32(buf[2+4*i:6+4*i], uint32(len(v)))
	}
	if len(vals) == 0 {
		return buf[:2], nil
	}
	vec = make([][]byte, 0, 2*len(vals)-1)
	vec = append(vec, vals[0])
	for i := 1; i < len(vals); i++ {
		vec = append(vec, buf[2+4*i:6+4*i], vals[i])
	}
	return buf[:6], vec
}

// AppendRequestVec encodes a data-plane request (same wire layout as
// AppendRequest) without copying the argument bodies: fixed fields and
// length prefixes go into head, and the returned segments interleave
// subslices of head with the args themselves — the client-side
// zero-copy form for large writes. buf is head's final backing buffer;
// release it (wire.PutBuf) once the segments have been written.
func AppendRequestVec(head []byte, op core.OpType, block core.BlockID, args [][]byte) (vec [][]byte, buf []byte) {
	need := 11 + 4*len(args)
	if cap(head) < need {
		head = make([]byte, 0, need)
	}
	head = head[:need]
	head[0] = byte(op)
	binary.BigEndian.PutUint64(head[1:9], uint64(block))
	binary.BigEndian.PutUint16(head[9:11], uint16(len(args)))
	for i, a := range args {
		binary.BigEndian.PutUint32(head[11+4*i:15+4*i], uint32(len(a)))
	}
	if len(args) == 0 {
		return [][]byte{head[:11]}, head
	}
	vec = make([][]byte, 0, 2*len(args))
	vec = append(vec, head[:15], args[0])
	for i := 1; i < len(args); i++ {
		vec = append(vec, head[11+4*i:15+4*i], args[i])
	}
	return vec, head
}
