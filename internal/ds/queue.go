package ds

import (
	"encoding/binary"
	"fmt"
	"sync"

	"jiffy/internal/core"
)

// Queue is the partition engine for one segment of a Jiffy FIFO queue
// (§5.2). A queue is a linked list of blocks: enqueues go to the tail
// segment, dequeues to the head segment. Each segment stores its items
// plus a pointer to the next segment; when a drained segment has a
// successor, dequeues are redirected there (and the controller reclaims
// the empty segment).
//
// Invariant: item bytes are immutable once stored — Enqueue copies the
// item in, and nothing ever writes through a stored slice. Dequeue and
// Peek may therefore return the stored slice itself (no copy): dequeue
// transfers ownership outright, and a peeked alias stays valid even if
// the item is dequeued, snapshotted or the segment reclaimed while the
// response is in flight, because those drop references rather than
// scribble bytes.
type Queue struct {
	mu    sync.RWMutex
	items [][]byte
	head  int // index of the next item to dequeue
	bytes int // payload bytes of pending items
	cap   int

	// next links to the successor segment; zero Info.Server means none.
	next core.BlockInfo
	// sealed marks the segment as no longer the tail: enqueues must go
	// to next.
	sealed bool
}

// NewQueue creates an empty queue segment of the given capacity.
func NewQueue(capacity int) *Queue {
	return &Queue{cap: capacity}
}

// Type implements Partition.
func (q *Queue) Type() core.DSType { return core.DSQueue }

// Capacity implements Partition.
func (q *Queue) Capacity() int {
	q.mu.RLock()
	defer q.mu.RUnlock()
	return q.cap
}

// Bytes implements Partition: payload bytes of items not yet dequeued.
func (q *Queue) Bytes() int {
	q.mu.RLock()
	defer q.mu.RUnlock()
	return q.bytes
}

// Len returns the number of pending items in this segment.
func (q *Queue) Len() int {
	q.mu.RLock()
	defer q.mu.RUnlock()
	return len(q.items) - q.head
}

// SetNext links the successor segment and seals this one. Called by the
// memory server when the controller extends the queue (Fig. 8 applied
// to queues: overload → allocate → link).
func (q *Queue) SetNext(next core.BlockInfo) {
	q.mu.Lock()
	q.next = next
	q.sealed = true
	q.mu.Unlock()
}

// Next returns the successor link.
func (q *Queue) Next() (core.BlockInfo, bool) {
	q.mu.RLock()
	defer q.mu.RUnlock()
	return q.next, q.next.Server != ""
}

// RedirectPayload encodes a block location in the redirect wire form:
// u64 block id + server string. Shared by ErrRedirect replies and the
// OpQueueSetNext argument.
func RedirectPayload(b core.BlockInfo) []byte {
	return redirectPayload(b)
}

// redirectPayload encodes the successor block for ErrRedirect replies:
// u64 block id + server string.
func redirectPayload(b core.BlockInfo) []byte {
	buf := make([]byte, 8+len(b.Server))
	binary.BigEndian.PutUint64(buf[:8], uint64(b.ID))
	copy(buf[8:], b.Server)
	return buf
}

// ParseRedirect decodes an ErrRedirect payload.
func ParseRedirect(data []byte) (core.BlockInfo, error) {
	if len(data) < 8 {
		return core.BlockInfo{}, fmt.Errorf("ds: short redirect payload")
	}
	return core.BlockInfo{
		ID:     core.BlockID(binary.BigEndian.Uint64(data[:8])),
		Server: string(data[8:]),
	}, nil
}

// Apply implements Partition.
//
//	OpEnqueue: args[0]=item → [] ; ErrBlockFull when the segment cannot
//	           hold the item, ErrRedirect(next) when sealed.
//	OpDequeue: → [item] ; ErrRedirect(next) when drained with successor,
//	           ErrEmpty when drained without one.
func (q *Queue) Apply(op core.OpType, args [][]byte) ([][]byte, error) {
	switch op {
	case core.OpEnqueue:
		if len(args) != 1 {
			return nil, fmt.Errorf("ds: enqueue wants 1 arg, got %d", len(args))
		}
		return nil, q.Enqueue(args[0])
	case core.OpDequeue:
		item, err := q.Dequeue()
		if err != nil {
			return nil, err
		}
		return [][]byte{item}, nil
	case core.OpQueuePeek:
		item, err := q.Peek()
		if err != nil {
			return nil, err
		}
		return [][]byte{item}, nil
	case core.OpQueueSetNext:
		if len(args) != 1 {
			return nil, fmt.Errorf("ds: setnext wants 1 arg, got %d", len(args))
		}
		next, err := ParseRedirect(args[0])
		if err != nil {
			return nil, err
		}
		q.SetNext(next)
		return nil, nil
	case core.OpUsage:
		return [][]byte{U64(uint64(q.Bytes()))}, nil
	default:
		return nil, fmt.Errorf("ds: queue: %w (%v)", core.ErrWrongType, op)
	}
}

// redirectError wraps ErrRedirect with the successor's location so the
// RPC layer can ship it to the client as the response payload.
type redirectError struct{ payload []byte }

func (e *redirectError) Error() string { return core.ErrRedirect.Error() }
func (e *redirectError) Unwrap() error { return core.ErrRedirect }

// RedirectPayloadOf extracts the payload from a redirect error produced
// by this package (nil if err is not one).
func RedirectPayloadOf(err error) []byte {
	if re, ok := err.(*redirectError); ok {
		return re.payload
	}
	return nil
}

// Enqueue appends an item to the segment.
func (q *Queue) Enqueue(item []byte) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.sealed {
		if q.next.Server != "" {
			return &redirectError{payload: redirectPayload(q.next)}
		}
		return core.ErrBlockFull
	}
	if len(item) > q.cap {
		return fmt.Errorf("ds: item of %d bytes exceeds segment capacity %d: %w",
			len(item), q.cap, core.ErrTooLarge)
	}
	if q.bytes+len(item) > q.cap {
		return core.ErrBlockFull
	}
	q.items = append(q.items, append([]byte(nil), item...))
	q.bytes += len(item)
	return nil
}

// Dequeue removes and returns the oldest pending item.
func (q *Queue) Dequeue() ([]byte, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.head >= len(q.items) {
		if q.next.Server != "" {
			return nil, &redirectError{payload: redirectPayload(q.next)}
		}
		return nil, core.ErrEmpty
	}
	item := q.items[q.head]
	q.items[q.head] = nil
	q.head++
	q.bytes -= len(item)
	// Compact once everything has been consumed.
	if q.head == len(q.items) {
		q.items = q.items[:0]
		q.head = 0
	}
	return item, nil
}

// Peek returns the oldest pending item without removing it; concurrent
// peeks share the read lock. The returned slice aliases the stored
// item (safe: see the immutability invariant on Queue).
func (q *Queue) Peek() ([]byte, error) {
	q.mu.RLock()
	defer q.mu.RUnlock()
	if q.head >= len(q.items) {
		if q.next.Server != "" {
			return nil, &redirectError{payload: redirectPayload(q.next)}
		}
		return nil, core.ErrEmpty
	}
	return q.items[q.head], nil
}

// ApplyView implements ViewReader for OpQueuePeek: the returned value
// aliases the stored item with no lease needed (immutability
// invariant).
func (q *Queue) ApplyView(op core.OpType, args [][]byte) (View, bool, error) {
	if op != core.OpQueuePeek {
		return View{}, false, nil
	}
	item, err := q.Peek()
	if err != nil {
		return View{}, true, err
	}
	return View{Vals: [][]byte{item}}, true, nil
}

// Drained reports whether the segment is sealed and fully consumed —
// the condition under which the controller reclaims it.
func (q *Queue) Drained() bool {
	q.mu.RLock()
	defer q.mu.RUnlock()
	return q.sealed && q.head >= len(q.items)
}

// queueSnapshot is the serialized form of a queue segment.
type queueSnapshot struct {
	Items  [][]byte
	Bytes  int
	Cap    int
	Next   core.BlockInfo
	Sealed bool
}

// Snapshot implements Partition.
func (q *Queue) Snapshot() ([]byte, error) {
	q.mu.RLock()
	defer q.mu.RUnlock()
	pending := make([][]byte, 0, len(q.items)-q.head)
	pending = append(pending, q.items[q.head:]...)
	return gobEncode(queueSnapshot{
		Items:  pending,
		Bytes:  q.bytes,
		Cap:    q.cap,
		Next:   q.next,
		Sealed: q.sealed,
	})
}

// Restore implements Partition.
func (q *Queue) Restore(snapshot []byte) error {
	var s queueSnapshot
	if err := gobDecode(snapshot, &s); err != nil {
		return err
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	q.items = s.Items
	q.head = 0
	q.bytes = s.Bytes
	q.cap = s.Cap
	q.next = s.Next
	q.sealed = s.Sealed
	return nil
}
