package cuckoo

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

func TestPutGet(t *testing.T) {
	tb := New(0)
	if _, existed := tb.Put("k1", []byte("v1")); existed {
		t.Error("fresh key reported as existing")
	}
	v, ok := tb.Get("k1")
	if !ok || string(v) != "v1" {
		t.Errorf("Get = %q, %v", v, ok)
	}
	if _, ok := tb.Get("missing"); ok {
		t.Error("missing key found")
	}
}

func TestOverwrite(t *testing.T) {
	tb := New(0)
	tb.Put("k", []byte("old"))
	prev, existed := tb.Put("k", []byte("new"))
	if !existed || string(prev) != "old" {
		t.Errorf("Put returned %q, %v", prev, existed)
	}
	v, _ := tb.Get("k")
	if string(v) != "new" {
		t.Errorf("value = %q", v)
	}
	if tb.Len() != 1 {
		t.Errorf("len = %d", tb.Len())
	}
}

func TestDelete(t *testing.T) {
	tb := New(0)
	tb.Put("k", []byte("v"))
	val, ok := tb.Delete("k")
	if !ok || string(val) != "v" {
		t.Errorf("Delete = %q, %v", val, ok)
	}
	if _, ok := tb.Get("k"); ok {
		t.Error("deleted key still present")
	}
	if _, ok := tb.Delete("k"); ok {
		t.Error("double delete reported success")
	}
	if tb.Len() != 0 {
		t.Errorf("len = %d", tb.Len())
	}
}

func TestGrowth(t *testing.T) {
	tb := New(4) // deliberately tiny; forces many growths
	const n = 10000
	for i := 0; i < n; i++ {
		tb.Put(fmt.Sprintf("key-%d", i), []byte(fmt.Sprintf("val-%d", i)))
	}
	if tb.Len() != n {
		t.Fatalf("len = %d, want %d", tb.Len(), n)
	}
	for i := 0; i < n; i++ {
		v, ok := tb.Get(fmt.Sprintf("key-%d", i))
		if !ok || string(v) != fmt.Sprintf("val-%d", i) {
			t.Fatalf("key-%d: %q, %v", i, v, ok)
		}
	}
	if lf := tb.LoadFactor(); lf <= 0 || lf > 1 {
		t.Errorf("load factor = %v", lf)
	}
}

func TestBytesAccounting(t *testing.T) {
	tb := New(0)
	tb.Put("abc", []byte("12345")) // 3+5
	if tb.Bytes() != 8 {
		t.Errorf("bytes = %d, want 8", tb.Bytes())
	}
	tb.Put("abc", []byte("1")) // 3+1
	if tb.Bytes() != 4 {
		t.Errorf("bytes after overwrite = %d, want 4", tb.Bytes())
	}
	tb.Delete("abc")
	if tb.Bytes() != 0 {
		t.Errorf("bytes after delete = %d, want 0", tb.Bytes())
	}
}

func TestRange(t *testing.T) {
	tb := New(0)
	want := map[string]string{}
	for i := 0; i < 100; i++ {
		k, v := fmt.Sprintf("k%d", i), fmt.Sprintf("v%d", i)
		want[k] = v
		tb.Put(k, []byte(v))
	}
	got := map[string]string{}
	tb.Range(func(k string, v []byte) bool {
		got[k] = string(v)
		return true
	})
	if len(got) != len(want) {
		t.Fatalf("ranged over %d entries, want %d", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("key %q = %q, want %q", k, got[k], v)
		}
	}
}

func TestRangeEarlyStop(t *testing.T) {
	tb := New(0)
	for i := 0; i < 50; i++ {
		tb.Put(fmt.Sprintf("k%d", i), nil)
	}
	seen := 0
	tb.Range(func(string, []byte) bool {
		seen++
		return seen < 10
	})
	if seen != 10 {
		t.Errorf("early stop visited %d entries", seen)
	}
}

func TestClear(t *testing.T) {
	tb := New(0)
	for i := 0; i < 100; i++ {
		tb.Put(fmt.Sprintf("k%d", i), []byte("v"))
	}
	tb.Clear()
	if tb.Len() != 0 || tb.Bytes() != 0 {
		t.Errorf("after clear: len=%d bytes=%d", tb.Len(), tb.Bytes())
	}
	if _, ok := tb.Get("k1"); ok {
		t.Error("cleared key still present")
	}
	// Table remains usable.
	tb.Put("x", []byte("y"))
	if tb.Len() != 1 {
		t.Errorf("len after reuse = %d", tb.Len())
	}
}

func TestEmptyKeyAndValue(t *testing.T) {
	tb := New(0)
	tb.Put("", []byte{})
	v, ok := tb.Get("")
	if !ok || len(v) != 0 {
		t.Errorf("empty key: %v, %v", v, ok)
	}
}

// TestModelEquivalence drives the table and a map with the same random
// operation sequence and checks they agree — the core property test.
func TestModelEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tb := New(0)
		model := map[string]string{}
		for op := 0; op < 2000; op++ {
			k := fmt.Sprintf("key-%d", rng.Intn(200))
			switch rng.Intn(4) {
			case 0, 1: // put
				v := fmt.Sprintf("val-%d", rng.Int())
				_, existedTable := tb.Put(k, []byte(v))
				_, existedModel := model[k]
				if existedTable != existedModel {
					return false
				}
				model[k] = v
			case 2: // get
				gv, gok := tb.Get(k)
				mv, mok := model[k]
				if gok != mok || (gok && string(gv) != mv) {
					return false
				}
			case 3: // delete
				_, dok := tb.Delete(k)
				_, mok := model[k]
				if dok != mok {
					return false
				}
				delete(model, k)
			}
			if tb.Len() != len(model) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestConcurrentMixed(t *testing.T) {
	tb := New(1024)
	var wg sync.WaitGroup
	const goroutines = 8
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				k := fmt.Sprintf("g%d-k%d", g, i%100)
				switch i % 3 {
				case 0:
					tb.Put(k, []byte("v"))
				case 1:
					tb.Get(k)
				case 2:
					tb.Delete(k)
				}
			}
		}(g)
	}
	wg.Wait()
	// Each goroutine's last op per key determines presence; just check
	// internal consistency (Len agrees with a full Range count).
	count := 0
	tb.Range(func(string, []byte) bool { count++; return true })
	if count != tb.Len() {
		t.Errorf("Range counted %d, Len() = %d", count, tb.Len())
	}
}

func BenchmarkPut(b *testing.B) {
	tb := New(b.N)
	keys := make([]string, b.N)
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%d", i)
	}
	val := []byte("0123456789abcdef")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tb.Put(keys[i], val)
	}
}

func BenchmarkGet(b *testing.B) {
	tb := New(100000)
	for i := 0; i < 100000; i++ {
		tb.Put(fmt.Sprintf("key-%d", i), []byte("value"))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tb.Get(fmt.Sprintf("key-%d", i%100000))
	}
}

func BenchmarkGetParallel(b *testing.B) {
	tb := New(100000)
	for i := 0; i < 100000; i++ {
		tb.Put(fmt.Sprintf("key-%d", i), []byte("value"))
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			tb.Get(fmt.Sprintf("key-%d", i%100000))
			i++
		}
	})
}
