// Package cuckoo implements the hash table used inside every KV-store
// block. The paper (§5.3) uses libcuckoo for highly concurrent KV
// operations; this is a Go implementation of the same design:
// two-choice bucketized cuckoo hashing with 4-way buckets,
// breadth-first-search relocation on insert, and automatic growth.
//
// A Table is safe for concurrent use. Reads take a shared lock; writes
// take an exclusive lock (relocation paths may touch many buckets, so
// per-bucket locking would need the full libcuckoo fine-grained
// protocol; the per-block tables here are small enough that a
// readers-writer lock at table granularity measures within noise of the
// striped design in our benchmarks).
package cuckoo

import (
	"fmt"
	"sync"
)

const (
	// slotsPerBucket matches libcuckoo's default associativity.
	slotsPerBucket = 4
	// maxBFSDepth bounds the relocation search; beyond this the table
	// grows instead.
	maxBFSDepth = 5
	// minBuckets is the smallest table (power of two).
	minBuckets = 4
)

type entry struct {
	hash uint64
	key  string
	val  []byte
}

type bucket struct {
	occupied [slotsPerBucket]bool
	entries  [slotsPerBucket]entry
}

// Table is a concurrent cuckoo hash table from string keys to byte
// values.
type Table struct {
	mu      sync.RWMutex
	buckets []bucket
	mask    uint64
	count   int
	bytes   int // sum of len(key)+len(val) for accounting
}

// New creates a table pre-sized for hint entries.
func New(hint int) *Table {
	n := minBuckets
	for n*slotsPerBucket < hint {
		n <<= 1
	}
	return &Table{buckets: make([]bucket, n), mask: uint64(n - 1)}
}

// fnv64a is the stable string hash used for both bucket choices. The
// two candidate buckets derive from disjoint halves of the 64-bit hash,
// mixed so they differ even for small tables.
func fnv64a(s string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return h
}

// i1 returns the primary bucket index for hash h.
func (t *Table) i1(h uint64) uint64 { return h & t.mask }

// i2 returns the alternate bucket index: the standard partial-key
// cuckoo trick — xor the bucket index with a hash of the tag, so the
// alternate of the alternate is the original.
func (t *Table) i2(i uint64, h uint64) uint64 {
	tag := (h >> 32) | 1 // never zero
	return (i ^ (tag * 0x5bd1e995)) & t.mask
}

// Get returns the value stored for key.
func (t *Table) Get(key string) ([]byte, bool) {
	h := fnv64a(key)
	t.mu.RLock()
	defer t.mu.RUnlock()
	i1 := t.i1(h)
	if v, ok := t.lookupIn(i1, h, key); ok {
		return v, true
	}
	return t.lookupIn(t.i2(i1, h), h, key)
}

func (t *Table) lookupIn(i uint64, h uint64, key string) ([]byte, bool) {
	b := &t.buckets[i]
	for s := 0; s < slotsPerBucket; s++ {
		if b.occupied[s] && b.entries[s].hash == h && b.entries[s].key == key {
			return b.entries[s].val, true
		}
	}
	return nil, false
}

// Put inserts or overwrites key. It returns the previous value (nil if
// none) and whether the key already existed.
func (t *Table) Put(key string, val []byte) (prev []byte, existed bool) {
	h := fnv64a(key)
	t.mu.Lock()
	defer t.mu.Unlock()

	// Overwrite in place if present.
	i1 := t.i1(h)
	i2 := t.i2(i1, h)
	for _, i := range [2]uint64{i1, i2} {
		b := &t.buckets[i]
		for s := 0; s < slotsPerBucket; s++ {
			if b.occupied[s] && b.entries[s].hash == h && b.entries[s].key == key {
				prev = b.entries[s].val
				t.bytes += len(val) - len(prev)
				b.entries[s].val = val
				return prev, true
			}
		}
	}

	for !t.insertFresh(h, key, val) {
		t.grow()
	}
	t.count++
	t.bytes += len(key) + len(val)
	return nil, false
}

// bfsNode is one step in the relocation search: an entry from slot
// `slot` of the parent node's bucket could be displaced into `bucket`.
type bfsNode struct {
	bucket uint64
	parent int // index into the BFS queue; -1 for the two root buckets
	slot   int
}

// insertFresh places a new entry, relocating existing entries via a
// breadth-first search (libcuckoo-style) if both candidate buckets are
// full. Returns false when no relocation path exists within the search
// bound — the caller grows the table.
func (t *Table) insertFresh(h uint64, key string, val []byte) bool {
	i1 := t.i1(h)
	i2 := t.i2(i1, h)
	// maxNodes bounds the BFS frontier to paths of ~maxBFSDepth kicks:
	// 2 roots, branching factor slotsPerBucket.
	maxNodes := 2
	for d := 0; d < maxBFSDepth; d++ {
		maxNodes *= slotsPerBucket
	}
	queue := []bfsNode{{bucket: i1, parent: -1}, {bucket: i2, parent: -1}}
	for qi := 0; qi < len(queue); qi++ {
		n := queue[qi]
		if s := t.freeSlot(n.bucket); s >= 0 {
			// Walk the displacement path backwards, moving each entry
			// one hop toward the free slot.
			cur, freeSlot := qi, s
			for queue[cur].parent >= 0 {
				p := queue[cur].parent
				ps := queue[cur].slot
				pb := &t.buckets[queue[p].bucket]
				t.place(queue[cur].bucket, freeSlot, pb.entries[ps])
				pb.occupied[ps] = false
				pb.entries[ps] = entry{}
				freeSlot = ps
				cur = p
			}
			t.place(queue[cur].bucket, freeSlot, entry{hash: h, key: key, val: val})
			return true
		}
		if len(queue) >= maxNodes {
			continue // stop expanding; drain remaining queued nodes
		}
		b := &t.buckets[n.bucket]
		for s := 0; s < slotsPerBucket; s++ {
			alt := t.i2(n.bucket, b.entries[s].hash)
			queue = append(queue, bfsNode{bucket: alt, parent: qi, slot: s})
		}
	}
	return false
}

func (t *Table) freeSlot(i uint64) int {
	b := &t.buckets[i]
	for s := 0; s < slotsPerBucket; s++ {
		if !b.occupied[s] {
			return s
		}
	}
	return -1
}

func (t *Table) place(i uint64, s int, e entry) {
	b := &t.buckets[i]
	b.occupied[s] = true
	b.entries[s] = e
}

// grow doubles the bucket array and rehashes every entry.
func (t *Table) grow() {
	old := t.buckets
	t.buckets = make([]bucket, len(old)*2)
	t.mask = uint64(len(t.buckets) - 1)
	for bi := range old {
		for s := 0; s < slotsPerBucket; s++ {
			if !old[bi].occupied[s] {
				continue
			}
			e := old[bi].entries[s]
			if !t.insertFresh(e.hash, e.key, e.val) {
				// With the table doubled and re-inserting a subset,
				// failure here would indicate a pathological hash;
				// grow again (terminates: load factor halves each time).
				t.grow()
				if !t.insertFresh(e.hash, e.key, e.val) {
					panic(fmt.Sprintf("cuckoo: cannot place key %q after growth", e.key))
				}
			}
		}
	}
}

// Delete removes key, returning the removed value and whether it was
// present.
func (t *Table) Delete(key string) ([]byte, bool) {
	h := fnv64a(key)
	t.mu.Lock()
	defer t.mu.Unlock()
	i1 := t.i1(h)
	for _, i := range [2]uint64{i1, t.i2(i1, h)} {
		b := &t.buckets[i]
		for s := 0; s < slotsPerBucket; s++ {
			if b.occupied[s] && b.entries[s].hash == h && b.entries[s].key == key {
				val := b.entries[s].val
				b.occupied[s] = false
				b.entries[s] = entry{}
				t.count--
				t.bytes -= len(key) + len(val)
				return val, true
			}
		}
	}
	return nil, false
}

// Len returns the number of entries.
func (t *Table) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.count
}

// Bytes returns the accounted payload size: sum of key and value
// lengths. Block usage tracking is built on this.
func (t *Table) Bytes() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.bytes
}

// Range calls fn for every entry until fn returns false. The table is
// read-locked for the duration; fn must not call mutating methods.
func (t *Table) Range(fn func(key string, val []byte) bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	for bi := range t.buckets {
		b := &t.buckets[bi]
		for s := 0; s < slotsPerBucket; s++ {
			if b.occupied[s] {
				if !fn(b.entries[s].key, b.entries[s].val) {
					return
				}
			}
		}
	}
}

// Clear removes all entries, keeping the bucket array.
func (t *Table) Clear() {
	t.mu.Lock()
	defer t.mu.Unlock()
	for i := range t.buckets {
		t.buckets[i] = bucket{}
	}
	t.count = 0
	t.bytes = 0
}

// LoadFactor reports occupied slots over total slots.
func (t *Table) LoadFactor() float64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return float64(t.count) / float64(len(t.buckets)*slotsPerBucket)
}
