// Package cuckoo implements the hash table used inside every KV-store
// block. The paper (§5.3) uses libcuckoo for highly concurrent KV
// operations; this is a Go implementation of the same design:
// two-choice bucketized cuckoo hashing with 4-way buckets,
// breadth-first-search relocation on insert, and automatic growth.
//
// A Table is safe for concurrent use, with libcuckoo-style fine-grained
// locking: each operation touches at most two candidate buckets, so the
// common paths (Get, overwrite Put, insert into a bucket with a free
// slot, Delete) lock only the one or two cache-line-padded stripes
// guarding those buckets, in ascending stripe order. A table-wide
// resize lock is held shared by those paths and exclusively by the slow
// paths whose footprint is unbounded — BFS relocation, growth, Range
// and Clear — so relocation never races a reader across buckets.
// Len and Bytes are lock-free atomic counters.
package cuckoo

import (
	"fmt"
	"sync"
	"sync/atomic"
)

const (
	// slotsPerBucket matches libcuckoo's default associativity.
	slotsPerBucket = 4
	// maxBFSDepth bounds the relocation search; beyond this the table
	// grows instead.
	maxBFSDepth = 5
	// minBuckets is the smallest table (power of two).
	minBuckets = 4
	// numStripes is the bucket-lock stripe count (power of two). Bucket
	// i is guarded by stripe i % numStripes; tables smaller than
	// numStripes buckets get one stripe per bucket.
	numStripes = 64
	stripeMask = numStripes - 1
)

type entry struct {
	hash uint64
	key  string
	val  []byte
}

type bucket struct {
	occupied [slotsPerBucket]bool
	entries  [slotsPerBucket]entry
}

// stripe is one bucket lock, padded out to its own cache line so
// contended neighbours don't false-share.
type stripe struct {
	mu sync.RWMutex
	_  [40]byte
}

// Table is a concurrent cuckoo hash table from string keys to byte
// values.
type Table struct {
	// resizeMu is held shared by every bucket-local operation and
	// exclusively by operations with unbounded bucket footprint (BFS
	// relocation, grow, Range, Clear). While it is held exclusively no
	// stripe locks are needed: every other path is blocked at the
	// shared acquisition.
	resizeMu sync.RWMutex
	stripes  [numStripes]stripe

	// buckets and mask are written only under resizeMu held
	// exclusively; bucket-local paths read them under the shared lock.
	buckets []bucket
	mask    uint64

	count atomic.Int64
	bytes atomic.Int64 // sum of len(key)+len(val) for accounting
}

// New creates a table pre-sized for hint entries.
func New(hint int) *Table {
	n := minBuckets
	for n*slotsPerBucket < hint {
		n <<= 1
	}
	t := &Table{buckets: make([]bucket, n)}
	t.mask = uint64(n - 1)
	return t
}

// fnv64a is the stable string hash used for both bucket choices. The
// two candidate buckets derive from disjoint halves of the 64-bit hash,
// mixed so they differ even for small tables.
func fnv64a(s string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return h
}

// i1 returns the primary bucket index for hash h.
func (t *Table) i1(h uint64) uint64 { return h & t.mask }

// i2 returns the alternate bucket index: the standard partial-key
// cuckoo trick — xor the bucket index with a hash of the tag, so the
// alternate of the alternate is the original.
func (t *Table) i2(i uint64, h uint64) uint64 {
	tag := (h >> 32) | 1 // never zero
	return (i ^ (tag * 0x5bd1e995)) & t.mask
}

// lockPair write-locks the stripes guarding buckets i and j in
// ascending stripe order (the deadlock-avoidance discipline); when both
// buckets share a stripe it locks once.
func (t *Table) lockPair(i, j uint64) {
	a, b := i&stripeMask, j&stripeMask
	if a == b {
		t.stripes[a].mu.Lock()
		return
	}
	if a > b {
		a, b = b, a
	}
	t.stripes[a].mu.Lock()
	t.stripes[b].mu.Lock()
}

func (t *Table) unlockPair(i, j uint64) {
	a, b := i&stripeMask, j&stripeMask
	t.stripes[a].mu.Unlock()
	if a != b {
		t.stripes[b].mu.Unlock()
	}
}

// rlockPair is lockPair for readers.
func (t *Table) rlockPair(i, j uint64) {
	a, b := i&stripeMask, j&stripeMask
	if a == b {
		t.stripes[a].mu.RLock()
		return
	}
	if a > b {
		a, b = b, a
	}
	t.stripes[a].mu.RLock()
	t.stripes[b].mu.RLock()
}

func (t *Table) runlockPair(i, j uint64) {
	a, b := i&stripeMask, j&stripeMask
	t.stripes[a].mu.RUnlock()
	if a != b {
		t.stripes[b].mu.RUnlock()
	}
}

// Get returns the value stored for key.
func (t *Table) Get(key string) ([]byte, bool) {
	h := fnv64a(key)
	t.resizeMu.RLock()
	defer t.resizeMu.RUnlock()
	i1 := t.i1(h)
	i2 := t.i2(i1, h)
	t.rlockPair(i1, i2)
	defer t.runlockPair(i1, i2)
	if v, ok := t.lookupIn(i1, h, key); ok {
		return v, true
	}
	return t.lookupIn(i2, h, key)
}

func (t *Table) lookupIn(i uint64, h uint64, key string) ([]byte, bool) {
	b := &t.buckets[i]
	for s := 0; s < slotsPerBucket; s++ {
		if b.occupied[s] && b.entries[s].hash == h && b.entries[s].key == key {
			return b.entries[s].val, true
		}
	}
	return nil, false
}

// Put inserts or overwrites key. It returns the previous value (nil if
// none) and whether the key already existed.
func (t *Table) Put(key string, val []byte) (prev []byte, existed bool) {
	h := fnv64a(key)

	// Fast path under the shared resize lock: overwrite in place or
	// take a free slot in a candidate bucket, holding only the two
	// stripes involved. Concurrent Puts of the same key hash to the
	// same stripes and serialize there.
	t.resizeMu.RLock()
	i1 := t.i1(h)
	i2 := t.i2(i1, h)
	t.lockPair(i1, i2)
	prev, existed, done := t.putLocal(i1, i2, h, key, val)
	t.unlockPair(i1, i2)
	t.resizeMu.RUnlock()
	if done {
		return prev, existed
	}

	// Both candidate buckets full: relocation (or growth) has an
	// unbounded bucket footprint, so take the table exclusively. No
	// stripe locks are needed past this point.
	t.resizeMu.Lock()
	defer t.resizeMu.Unlock()
	i1 = t.i1(h)
	i2 = t.i2(i1, h)
	// Re-check: between the fast path and the exclusive acquisition
	// another writer may have inserted the key or freed a slot.
	if prev, existed, done := t.putLocal(i1, i2, h, key, val); done {
		return prev, existed
	}
	for !t.insertFresh(h, key, val) {
		t.grow()
	}
	t.count.Add(1)
	t.bytes.Add(int64(len(key) + len(val)))
	return nil, false
}

// putLocal attempts the bucket-local insert: overwrite an existing
// entry or claim a free slot in either candidate bucket. done=false
// means both buckets are full and the caller must relocate. Caller
// holds the locks covering buckets i1 and i2.
func (t *Table) putLocal(i1, i2 uint64, h uint64, key string, val []byte) (prev []byte, existed, done bool) {
	for _, i := range [2]uint64{i1, i2} {
		b := &t.buckets[i]
		for s := 0; s < slotsPerBucket; s++ {
			if b.occupied[s] && b.entries[s].hash == h && b.entries[s].key == key {
				prev = b.entries[s].val
				t.bytes.Add(int64(len(val) - len(prev)))
				b.entries[s].val = val
				return prev, true, true
			}
		}
	}
	for _, i := range [2]uint64{i1, i2} {
		if s := t.freeSlot(i); s >= 0 {
			t.place(i, s, entry{hash: h, key: key, val: val})
			t.count.Add(1)
			t.bytes.Add(int64(len(key) + len(val)))
			return nil, false, true
		}
	}
	return nil, false, false
}

// bfsNode is one step in the relocation search: an entry from slot
// `slot` of the parent node's bucket could be displaced into `bucket`.
type bfsNode struct {
	bucket uint64
	parent int // index into the BFS queue; -1 for the two root buckets
	slot   int
}

// insertFresh places a new entry, relocating existing entries via a
// breadth-first search (libcuckoo-style) if both candidate buckets are
// full. Returns false when no relocation path exists within the search
// bound — the caller grows the table. Caller holds resizeMu
// exclusively: the search and the displacement walk touch arbitrary
// buckets.
func (t *Table) insertFresh(h uint64, key string, val []byte) bool {
	i1 := t.i1(h)
	i2 := t.i2(i1, h)
	// maxNodes bounds the BFS frontier to paths of ~maxBFSDepth kicks:
	// 2 roots, branching factor slotsPerBucket.
	maxNodes := 2
	for d := 0; d < maxBFSDepth; d++ {
		maxNodes *= slotsPerBucket
	}
	queue := []bfsNode{{bucket: i1, parent: -1}, {bucket: i2, parent: -1}}
	for qi := 0; qi < len(queue); qi++ {
		n := queue[qi]
		if s := t.freeSlot(n.bucket); s >= 0 {
			// Walk the displacement path backwards, moving each entry
			// one hop toward the free slot.
			cur, freeSlot := qi, s
			for queue[cur].parent >= 0 {
				p := queue[cur].parent
				ps := queue[cur].slot
				pb := &t.buckets[queue[p].bucket]
				t.place(queue[cur].bucket, freeSlot, pb.entries[ps])
				pb.occupied[ps] = false
				pb.entries[ps] = entry{}
				freeSlot = ps
				cur = p
			}
			t.place(queue[cur].bucket, freeSlot, entry{hash: h, key: key, val: val})
			return true
		}
		if len(queue) >= maxNodes {
			continue // stop expanding; drain remaining queued nodes
		}
		b := &t.buckets[n.bucket]
		for s := 0; s < slotsPerBucket; s++ {
			alt := t.i2(n.bucket, b.entries[s].hash)
			queue = append(queue, bfsNode{bucket: alt, parent: qi, slot: s})
		}
	}
	return false
}

func (t *Table) freeSlot(i uint64) int {
	b := &t.buckets[i]
	for s := 0; s < slotsPerBucket; s++ {
		if !b.occupied[s] {
			return s
		}
	}
	return -1
}

func (t *Table) place(i uint64, s int, e entry) {
	b := &t.buckets[i]
	b.occupied[s] = true
	b.entries[s] = e
}

// grow doubles the bucket array and rehashes every entry. Caller holds
// resizeMu exclusively.
func (t *Table) grow() {
	old := t.buckets
	t.buckets = make([]bucket, len(old)*2)
	t.mask = uint64(len(t.buckets) - 1)
	for bi := range old {
		for s := 0; s < slotsPerBucket; s++ {
			if !old[bi].occupied[s] {
				continue
			}
			e := old[bi].entries[s]
			if !t.insertFresh(e.hash, e.key, e.val) {
				// With the table doubled and re-inserting a subset,
				// failure here would indicate a pathological hash;
				// grow again (terminates: load factor halves each time).
				t.grow()
				if !t.insertFresh(e.hash, e.key, e.val) {
					panic(fmt.Sprintf("cuckoo: cannot place key %q after growth", e.key))
				}
			}
		}
	}
}

// Delete removes key, returning the removed value and whether it was
// present.
func (t *Table) Delete(key string) ([]byte, bool) {
	h := fnv64a(key)
	t.resizeMu.RLock()
	defer t.resizeMu.RUnlock()
	i1 := t.i1(h)
	i2 := t.i2(i1, h)
	t.lockPair(i1, i2)
	defer t.unlockPair(i1, i2)
	for _, i := range [2]uint64{i1, i2} {
		b := &t.buckets[i]
		for s := 0; s < slotsPerBucket; s++ {
			if b.occupied[s] && b.entries[s].hash == h && b.entries[s].key == key {
				val := b.entries[s].val
				b.occupied[s] = false
				b.entries[s] = entry{}
				t.count.Add(-1)
				t.bytes.Add(-int64(len(key) + len(val)))
				return val, true
			}
		}
	}
	return nil, false
}

// Len returns the number of entries. Lock-free.
func (t *Table) Len() int { return int(t.count.Load()) }

// Bytes returns the accounted payload size: sum of key and value
// lengths. Block usage tracking is built on this; it runs after every
// mutation, which is why it is a lock-free atomic load.
func (t *Table) Bytes() int { return int(t.bytes.Load()) }

// Range calls fn for every entry until fn returns false. The table is
// locked exclusively for the duration (Range visits every bucket, which
// the stripe discipline cannot cover); fn must not call table methods.
func (t *Table) Range(fn func(key string, val []byte) bool) {
	t.resizeMu.Lock()
	defer t.resizeMu.Unlock()
	for bi := range t.buckets {
		b := &t.buckets[bi]
		for s := 0; s < slotsPerBucket; s++ {
			if b.occupied[s] {
				if !fn(b.entries[s].key, b.entries[s].val) {
					return
				}
			}
		}
	}
}

// Clear removes all entries, keeping the bucket array.
func (t *Table) Clear() {
	t.resizeMu.Lock()
	defer t.resizeMu.Unlock()
	for i := range t.buckets {
		t.buckets[i] = bucket{}
	}
	t.count.Store(0)
	t.bytes.Store(0)
}

// LoadFactor reports occupied slots over total slots.
func (t *Table) LoadFactor() float64 {
	t.resizeMu.RLock()
	defer t.resizeMu.RUnlock()
	return float64(t.count.Load()) / float64(len(t.buckets)*slotsPerBucket)
}
