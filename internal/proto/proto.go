// Package proto defines the control-plane RPC surface shared by the
// controller, memory servers and clients: method identifiers and the
// gob-encoded request/response messages. Data-plane operations use the
// compact binary codec in internal/ds instead and are identified by
// MethodDataOp.
package proto

import (
	"time"

	"jiffy/internal/core"
	"jiffy/internal/ds"
)

// Controller methods.
const (
	// MethodRegisterJob registers a job and creates its hierarchy root.
	MethodRegisterJob uint16 = 0x0001
	// MethodDeregisterJob removes a job, releasing all its resources.
	MethodDeregisterJob uint16 = 0x0002
	// MethodCreatePrefix adds an address prefix (createAddrPrefix).
	MethodCreatePrefix uint16 = 0x0003
	// MethodCreateHierarchy builds the full hierarchy from a DAG
	// (createHierarchy).
	MethodCreateHierarchy uint16 = 0x0004
	// MethodRemovePrefix explicitly reclaims a prefix and its blocks.
	MethodRemovePrefix uint16 = 0x0005
	// MethodRenewLease renews leases for one or more prefixes.
	MethodRenewLease uint16 = 0x0006
	// MethodLeaseInfo queries a prefix's lease state (getLeaseDuration).
	MethodLeaseInfo uint16 = 0x0007
	// MethodOpen fetches a data structure's partition map and lease
	// duration (initDataStructure / handle acquisition).
	MethodOpen uint16 = 0x0008
	// MethodFlushPrefix persists a prefix's data to the external store.
	MethodFlushPrefix uint16 = 0x0009
	// MethodLoadPrefix loads a prefix's data back from the external
	// store.
	MethodLoadPrefix uint16 = 0x000a
	// MethodRegisterServer announces a memory server and its capacity.
	MethodRegisterServer uint16 = 0x000b
	// MethodScaleUp is the overload signal (Fig. 8 step 1); also used
	// by clients that hit ErrBlockFull before the proactive signal
	// lands.
	MethodScaleUp uint16 = 0x000c
	// MethodScaleDown is the underload signal; the controller merges
	// and reclaims the block.
	MethodScaleDown uint16 = 0x000d
	// MethodControllerStats reports controller-wide statistics.
	MethodControllerStats uint16 = 0x000e
	// MethodListPrefixes lists the address hierarchy of a job.
	MethodListPrefixes uint16 = 0x000f
	// MethodSaveState checkpoints controller metadata to the
	// persistent store (primary-backup building block).
	MethodSaveState uint16 = 0x0010
	// MethodHeartbeat is a memory server's periodic liveness beat; the
	// failure detector marks servers dead after a suspicion window
	// without one.
	MethodHeartbeat uint16 = 0x0011
	// MethodReportFailure reports write-path evidence of a dead peer (a
	// chain head that could not reach its successor) so repair triggers
	// without waiting out the suspicion window.
	MethodReportFailure uint16 = 0x0012
	// MethodDrainServer gracefully migrates every block off a server
	// before decommission, using the chain-repair machinery.
	MethodDrainServer uint16 = 0x0013
	// MethodSetQuota registers a resource quota on a prefix. Rate
	// dimensions on a job root fan out to every memory server for
	// hot-path admission; the memory dimension is enforced by the
	// controller at allocation time.
	MethodSetQuota uint16 = 0x0014
	// MethodReportTier records a block's tier transition (demotion to /
	// promotion from the persist tier) in the controller's metadata, so
	// a tiered block can be recovered if its chain later dies.
	MethodReportTier uint16 = 0x0015
	// MethodCtrlReplicate streams a batch of metadata op-log entries
	// from the active controller to a standby. Standbys apply entries
	// in sequence order; a gap triggers a fresh bootstrap.
	MethodCtrlReplicate uint16 = 0x0016
	// MethodCtrlBootstrap installs a full metadata snapshot on a
	// standby, resetting whatever state it held. The active controller
	// sends it when a standby joins or falls off the replay window.
	MethodCtrlBootstrap uint16 = 0x0017
	// MethodCtrlRole reports a controller's view of the replicated
	// group: whether it is the leader, who it believes leads, and the
	// leadership generation. Clients use it to seed their leader cache.
	MethodCtrlRole uint16 = 0x0018
	// MethodCtrlPromote forces a standby to assume leadership
	// immediately (operator/test override of the suspicion window).
	MethodCtrlPromote uint16 = 0x0019
)

// Memory-server methods.
const (
	// MethodDataOp executes a data-plane op (binary codec, not gob).
	MethodDataOp uint16 = 0x0101
	// MethodCreateBlock installs a partition in a block.
	MethodCreateBlock uint16 = 0x0102
	// MethodDeleteBlock frees a block's partition.
	MethodDeleteBlock uint16 = 0x0103
	// MethodSetNext links a queue segment to its successor and seals it.
	MethodSetNext uint16 = 0x0104
	// MethodMoveSlots makes the server export KV slots from a donor
	// block and push them to the target block (possibly remote).
	MethodMoveSlots uint16 = 0x0105
	// MethodImportEntries receives KV entries during a move
	// (server-to-server).
	MethodImportEntries uint16 = 0x0106
	// MethodFlushBlock snapshots a block into the persistent store.
	MethodFlushBlock uint16 = 0x0107
	// MethodLoadBlock restores a block from the persistent store.
	MethodLoadBlock uint16 = 0x0108
	// MethodSubscribe registers for notifications on a set of blocks.
	MethodSubscribe uint16 = 0x0109
	// MethodUnsubscribe removes a subscription.
	MethodUnsubscribe uint16 = 0x010a
	// MethodServerStats reports server statistics.
	MethodServerStats uint16 = 0x010b
	// MethodSetOwnedSlots overwrites a KV block's owned slot ranges
	// (merge commits).
	MethodSetOwnedSlots uint16 = 0x010c
	// MethodReplicate applies a replicated mutation at a chain
	// successor.
	MethodReplicate uint16 = 0x010d
	// MethodSnapshotBlock returns a block's serialized partition state
	// (chain resynchronization after slot moves).
	MethodSnapshotBlock uint16 = 0x010e
	// MethodRestoreBlock replaces a block's partition state from a
	// snapshot.
	MethodRestoreBlock uint16 = 0x010f
	// MethodDataOpBatch executes many data-plane ops from one request
	// frame, replying with per-op results in one response frame (binary
	// codec in internal/ds, see EncodeBatchRequest).
	MethodDataOpBatch uint16 = 0x0110
	// MethodUpdateChain replaces a block's replication chain in place
	// (chain repair: survivors must learn the spliced chain so writes
	// propagate to the replacement, not the dead member).
	MethodUpdateChain uint16 = 0x0111
	// MethodSetTenantQuota installs a tenant's rate quota on a memory
	// server's admission gate (controller-to-server push).
	MethodSetTenantQuota uint16 = 0x0112
	// MethodExportSlots removes and returns the pairs in the given slot
	// ranges from one KV replica, disowning the ranges locally. The
	// controller drives repartitioning with per-replica exports (tail
	// first) so a live chain never needs a snapshot restore — see
	// controller/scale.go.
	MethodExportSlots uint16 = 0x0113
)

// --- controller messages ----------------------------------------------------

// RegisterJobReq registers jobID; Prefix optionally names a pre-known
// execution DAG (see CreateHierarchyReq for the structure).
type RegisterJobReq struct {
	Job core.JobID
}

// RegisterJobResp acknowledges registration.
type RegisterJobResp struct{}

// DeregisterJobReq removes the job and all its prefixes.
type DeregisterJobReq struct {
	Job core.JobID
}

// DeregisterJobResp acknowledges removal.
type DeregisterJobResp struct{}

// CreatePrefixReq creates one address prefix (createAddrPrefix §4.1).
type CreatePrefixReq struct {
	// Path is the new prefix (its first component is the job).
	Path core.Path
	// Parents are additional parent prefixes beyond the path parent
	// (the DAG edges; e.g. T5 depends on both T1 and T2).
	Parents []core.Path
	// Type attaches a data structure; DSNone creates a bare interior
	// node.
	Type core.DSType
	// InitialBlocks pre-allocates capacity (optionalArgs in the paper).
	InitialBlocks int
	// MaxBlocks bounds the structure's size in blocks; the controller
	// refuses to scale beyond it and writers see ErrBlockFull — the
	// generalization of the paper's maxQueueLength bound (§5.2). Zero
	// means unbounded.
	MaxBlocks int
	// LeaseDuration overrides the system default when positive.
	LeaseDuration time.Duration
}

// CreatePrefixResp returns the initial partition map.
type CreatePrefixResp struct {
	Map           ds.PartitionMap
	LeaseDuration time.Duration
}

// DagNode is one task in an execution DAG.
type DagNode struct {
	Name    string
	Parents []string
	// Type and InitialBlocks configure the node's data structure.
	Type          core.DSType
	InitialBlocks int
	// MaxBlocks bounds the structure (0 = unbounded).
	MaxBlocks int
}

// CreateHierarchyReq builds a job's whole hierarchy from its execution
// plan (createHierarchy §4.1).
type CreateHierarchyReq struct {
	Job   core.JobID
	Nodes []DagNode
	// LeaseDuration applies to every node when positive.
	LeaseDuration time.Duration
}

// CreateHierarchyResp acknowledges hierarchy creation.
type CreateHierarchyResp struct{}

// RemovePrefixReq explicitly reclaims a prefix.
type RemovePrefixReq struct {
	Path core.Path
}

// RemovePrefixResp acknowledges removal.
type RemovePrefixResp struct{}

// RenewLeaseReq renews leases for the given prefixes; renewal
// propagates to ancestors and descendants (§3.2).
type RenewLeaseReq struct {
	Paths []core.Path
}

// RenewLeaseResp reports how many hierarchy nodes were touched.
type RenewLeaseResp struct {
	Renewed int
}

// LeaseInfoReq queries lease state.
type LeaseInfoReq struct {
	Path core.Path
}

// LeaseInfoResp carries the prefix's lease configuration and state.
type LeaseInfoResp struct {
	Duration    time.Duration
	LastRenewed time.Time
}

// OpenReq fetches the current partition map for a prefix.
type OpenReq struct {
	Path core.Path
}

// OpenResp returns the map and the prefix's lease duration.
type OpenResp struct {
	Map           ds.PartitionMap
	LeaseDuration time.Duration
	// Probation lists servers the controller currently holds in
	// gray-failure probation: alive but persistently slow. Clients use
	// it to skip them when ranking hedge targets.
	Probation []string
}

// FlushPrefixReq persists the prefix's blocks under ExternalPath.
type FlushPrefixReq struct {
	Path         core.Path
	ExternalPath string
}

// FlushPrefixResp reports the number of blocks flushed.
type FlushPrefixResp struct {
	Blocks int
}

// LoadPrefixReq restores the prefix's blocks from ExternalPath.
type LoadPrefixReq struct {
	Path         core.Path
	ExternalPath string
}

// LoadPrefixResp returns the refreshed partition map.
type LoadPrefixResp struct {
	Map ds.PartitionMap
}

// SaveStateReq checkpoints the controller's metadata under Key.
type SaveStateReq struct {
	Key string
}

// SaveStateResp acknowledges the checkpoint.
type SaveStateResp struct{}

// RegisterServerReq announces a memory server contributing NumBlocks
// blocks of the system block size.
type RegisterServerReq struct {
	Addr      string
	NumBlocks int
}

// RegisterServerResp returns the ID range assigned to the new blocks:
// [FirstID, FirstID+NumBlocks).
type RegisterServerResp struct {
	FirstID core.BlockID
}

// ScaleUpReq signals that a block crossed the high usage threshold
// (server-initiated, Fig. 8) or rejected a write with ErrBlockFull
// (client-initiated fallback).
type ScaleUpReq struct {
	Path  core.Path
	Block core.BlockID
}

// ScaleUpResp returns the refreshed partition map (epoch advanced if
// the controller scaled the structure; unchanged if the signal was
// stale).
type ScaleUpResp struct {
	Map ds.PartitionMap
}

// ScaleDownReq signals that a block dropped below the low usage
// threshold and is a merge/reclaim candidate.
type ScaleDownReq struct {
	Path  core.Path
	Block core.BlockID
}

// ScaleDownResp returns the refreshed partition map.
type ScaleDownResp struct {
	Map ds.PartitionMap
}

// ControllerStatsReq requests controller statistics.
type ControllerStatsReq struct{}

// ControllerStatsResp reports allocator and hierarchy statistics.
type ControllerStatsResp struct {
	TotalBlocks     int
	FreeBlocks      int
	AllocatedBlocks int
	Jobs            int
	Prefixes        int
	Servers         int
	// MetadataBytes approximates controller metadata footprint (the
	// §6.4 storage-overhead measurement).
	MetadataBytes int
	// DegradedServers lists members currently on gray-failure probation:
	// alive (still heartbeating, still serving their blocks) but excluded
	// from new allocation until probe-verified recovery.
	DegradedServers []string
}

// ListPrefixesReq lists a job's address hierarchy.
type ListPrefixesReq struct {
	Job core.JobID
}

// PrefixInfo describes one hierarchy node.
type PrefixInfo struct {
	Path        core.Path
	Type        core.DSType
	Blocks      int
	UsedBytes   int
	LastRenewed time.Time
}

// ListPrefixesResp returns the hierarchy nodes in depth-first order.
type ListPrefixesResp struct {
	Prefixes []PrefixInfo
}

// HeartbeatReq is a memory server's periodic liveness beat.
type HeartbeatReq struct {
	Addr string
}

// HeartbeatResp acknowledges the beat and tells the server the current
// cluster membership epoch (observability; bumped on every membership
// change).
type HeartbeatResp struct {
	Epoch uint64
}

// ReportFailureReq carries write-path evidence that Server is dead:
// Reporter could not reach it while forwarding on Block's chain.
type ReportFailureReq struct {
	Reporter string
	Server   string
	Block    core.BlockID
	// Degraded distinguishes fail-slow evidence from fail-stop: the
	// reported server is reachable but persistently slow (replication
	// forwards stalling past the configured threshold). The controller
	// probes it and, if it is alive, places it on probation instead of
	// declaring it dead.
	Degraded bool
}

// ReportFailureResp acknowledges the report. Repair runs
// asynchronously; the reporter just retries/fails its write as usual.
type ReportFailureResp struct{}

// ReportTierReq records a tier transition for one chain member of a
// block. Demoted=true: the member wrote its partition to the persist
// tier under Key with tiering generation Gen (the server blocks the
// transition on this report landing, so the controller's record is
// never behind reality when memory is released). Demoted=false: the
// member rehydrated; the controller clears its recorded key unless a
// newer generation has already superseded Gen.
type ReportTierReq struct {
	Server  string
	Block   core.BlockID
	Path    core.Path
	Key     string
	Gen     uint64
	Demoted bool
}

// ReportTierResp acknowledges the transition.
type ReportTierResp struct{}

// CtrlReplicateReq carries a contiguous batch of op-log entries from
// the active controller. Gen fences the stream: a standby that has
// observed a higher leadership generation rejects the batch with
// ErrNotLeader so a deposed leader demotes itself. FirstSeq is the
// sequence number of Ops[0]; entries are gob-encoded replOp values
// (see internal/controller). An empty Ops slice is a leadership
// heartbeat.
type CtrlReplicateReq struct {
	Gen      uint64
	Leader   string
	FirstSeq uint64
	Ops      [][]byte
}

// CtrlReplicateResp acknowledges application through AckedSeq.
type CtrlReplicateResp struct {
	AckedSeq uint64
}

// CtrlBootstrapReq installs a full metadata snapshot (gob-encoded
// group image, see internal/controller) on a standby. Gen fences it
// like CtrlReplicateReq.
type CtrlBootstrapReq struct {
	Gen    uint64
	Leader string
	Image  []byte
}

// CtrlBootstrapResp acknowledges snapshot installation.
type CtrlBootstrapResp struct{}

// CtrlRoleReq asks a controller for its view of the replicated group.
type CtrlRoleReq struct{}

// CtrlRoleResp reports the controller's role. Leader is the address
// this controller believes is active (its own when IsLeader); Gen the
// leadership generation it has observed.
type CtrlRoleResp struct {
	Leader   string
	Gen      uint64
	IsLeader bool
}

// CtrlPromoteReq forces the receiving standby to take over leadership
// now, without waiting out the suspicion window.
type CtrlPromoteReq struct{}

// CtrlPromoteResp reports the generation the controller leads with.
type CtrlPromoteResp struct {
	Gen uint64
}

// DrainServerReq migrates every block off Addr so it can be
// decommissioned without data loss.
type DrainServerReq struct {
	Addr string
}

// DrainServerResp reports how many blocks were migrated.
type DrainServerResp struct {
	Migrated int
}

// --- memory-server messages ---------------------------------------------------

// CreateBlockReq installs a partition in block ID.
type CreateBlockReq struct {
	Block    core.BlockID
	Path     core.Path
	Type     core.DSType
	Capacity int
	NumSlots int
	// Slots are the initially owned KV slot ranges.
	Slots []ds.SlotRange
	// Chunk is the file chunk index / queue segment sequence number.
	Chunk int
	// Chain is the replication chain this block belongs to; empty or
	// single-entry means unreplicated.
	Chain core.ReplicaChain
}

// CreateBlockResp acknowledges creation.
type CreateBlockResp struct{}

// DeleteBlockReq frees the block.
type DeleteBlockReq struct {
	Block core.BlockID
}

// DeleteBlockResp acknowledges deletion.
type DeleteBlockResp struct{}

// SetNextReq links a queue segment to its successor and seals it.
type SetNextReq struct {
	Block core.BlockID
	Next  core.BlockInfo
}

// SetNextResp acknowledges the link.
type SetNextResp struct{}

// MoveSlotsReq asks the donor server to move the given slot ranges
// from Block to Target (Fig. 8 step 4).
type MoveSlotsReq struct {
	Block  core.BlockID
	Ranges []ds.SlotRange
	Target core.BlockInfo
}

// MoveSlotsResp reports how many pairs moved.
type MoveSlotsResp struct {
	Moved int
}

// ExportSlotsReq removes the given slot ranges (pairs and ownership)
// from one replica of a KV block and returns the removed pairs.
type ExportSlotsReq struct {
	Block  core.BlockID
	Ranges []ds.SlotRange
}

// ExportSlotsResp carries the removed pairs.
type ExportSlotsResp struct {
	Entries []ds.KVEntry
}

// ImportEntriesReq delivers moved KV pairs to the recipient block.
type ImportEntriesReq struct {
	Block   core.BlockID
	Ranges  []ds.SlotRange
	Entries []ds.KVEntry
}

// ImportEntriesResp acknowledges the import.
type ImportEntriesResp struct{}

// SetOwnedSlotsReq overwrites the owned ranges of a KV block.
type SetOwnedSlotsReq struct {
	Block  core.BlockID
	Ranges []ds.SlotRange
}

// SetOwnedSlotsResp acknowledges the update.
type SetOwnedSlotsResp struct{}

// FlushBlockReq snapshots the block into the persistent store under
// Key. The block's data remains in memory (deletion is separate).
type FlushBlockReq struct {
	Block core.BlockID
	Key   string
}

// FlushBlockResp reports the snapshot size.
type FlushBlockResp struct {
	Bytes int
}

// LoadBlockReq restores the block's partition from the persistent
// store.
type LoadBlockReq struct {
	Block core.BlockID
	Key   string
}

// LoadBlockResp acknowledges the restore.
type LoadBlockResp struct{}

// SubscribeReq registers the calling connection for notifications on
// the given blocks and op types (ds.subscribe §4.1).
type SubscribeReq struct {
	Blocks []core.BlockID
	Ops    []core.OpType
}

// SubscribeResp returns the subscription ID carried by push frames.
type SubscribeResp struct {
	SubID uint64
}

// UnsubscribeReq removes a subscription.
type UnsubscribeReq struct {
	SubID uint64
}

// UnsubscribeResp acknowledges removal.
type UnsubscribeResp struct{}

// Notification is the push payload delivered to subscribers.
type Notification struct {
	Block core.BlockID
	Op    core.OpType
	// Data is the op's first argument (enqueued item, written key, ...).
	Data []byte
}

// ServerStatsReq requests server statistics.
type ServerStatsReq struct{}

// ServerStatsResp reports data-plane statistics.
type ServerStatsResp struct {
	Blocks    int
	UsedBytes int
	Capacity  int
	Ops       int64
}

// SnapshotBlockReq fetches a block's serialized partition state.
type SnapshotBlockReq struct {
	Block core.BlockID
}

// SnapshotBlockResp carries the snapshot.
type SnapshotBlockResp struct {
	Snapshot []byte
}

// RestoreBlockReq replaces a block's partition state.
type RestoreBlockReq struct {
	Block    core.BlockID
	Snapshot []byte
}

// RestoreBlockResp acknowledges the restore.
type RestoreBlockResp struct{}

// ReplicateReq applies a mutation at a replication-chain successor and
// forwards it down the chain.
type ReplicateReq struct {
	Block core.BlockID
	Op    core.OpType
	Args  [][]byte
	// Chain is the block's full replication chain.
	Chain core.ReplicaChain
	// Seq orders the chain's mutation stream; replicas apply strictly
	// in sequence order.
	Seq uint64
	// Gen is the chain generation Seq belongs to; a repair splice
	// starts a new generation, and replicas reject mutations stamped
	// with another generation (see blockstore.ApplyInOrder).
	Gen uint64
}

// ReplicateResp acknowledges chain application.
type ReplicateResp struct{}

// UpdateChainReq replaces Block's replication chain (repair splice).
// Gen is the new chain generation — the controller's membership epoch
// at repair time, so every member of the spliced chain agrees on it.
// Seal instead fences the block against all further writes (reads keep
// serving, Chain/Gen are ignored): the drain-time barrier taken before
// a migration snapshot, so no acknowledged write can postdate it.
type UpdateChainReq struct {
	Block core.BlockID
	Chain core.ReplicaChain
	Gen   uint64
	Seal  bool
}

// UpdateChainResp acknowledges the chain update.
type UpdateChainResp struct{}

// SetQuotaReq registers Quota on the prefix at Path (its first
// component is the job). A zero quota clears the registration.
type SetQuotaReq struct {
	Path  core.Path
	Quota core.Quota
}

// SetQuotaResp acknowledges quota registration.
type SetQuotaResp struct{}

// SetTenantQuotaReq installs Tenant's rate quota on a memory server's
// admission gate. A zero quota removes the tenant's rate limits.
type SetTenantQuotaReq struct {
	Tenant string
	Quota  core.Quota
}

// SetTenantQuotaResp acknowledges installation.
type SetTenantQuotaResp struct{}

// methodNames maps method identifiers to stable human-readable names
// for metrics labels and span events.
var methodNames = map[uint16]string{
	MethodRegisterJob:     "RegisterJob",
	MethodDeregisterJob:   "DeregisterJob",
	MethodCreatePrefix:    "CreatePrefix",
	MethodCreateHierarchy: "CreateHierarchy",
	MethodRemovePrefix:    "RemovePrefix",
	MethodRenewLease:      "RenewLease",
	MethodLeaseInfo:       "LeaseInfo",
	MethodOpen:            "Open",
	MethodFlushPrefix:     "FlushPrefix",
	MethodLoadPrefix:      "LoadPrefix",
	MethodRegisterServer:  "RegisterServer",
	MethodScaleUp:         "ScaleUp",
	MethodScaleDown:       "ScaleDown",
	MethodControllerStats: "ControllerStats",
	MethodListPrefixes:    "ListPrefixes",
	MethodSaveState:       "SaveState",
	MethodHeartbeat:       "Heartbeat",
	MethodReportFailure:   "ReportFailure",
	MethodDrainServer:     "DrainServer",
	MethodSetQuota:        "SetQuota",
	MethodDataOp:          "DataOp",
	MethodCreateBlock:     "CreateBlock",
	MethodDeleteBlock:     "DeleteBlock",
	MethodSetNext:         "SetNext",
	MethodMoveSlots:       "MoveSlots",
	MethodExportSlots:     "ExportSlots",
	MethodImportEntries:   "ImportEntries",
	MethodFlushBlock:      "FlushBlock",
	MethodLoadBlock:       "LoadBlock",
	MethodSubscribe:       "Subscribe",
	MethodUnsubscribe:     "Unsubscribe",
	MethodServerStats:     "ServerStats",
	MethodSetOwnedSlots:   "SetOwnedSlots",
	MethodReplicate:       "Replicate",
	MethodSnapshotBlock:   "SnapshotBlock",
	MethodRestoreBlock:    "RestoreBlock",
	MethodDataOpBatch:     "DataOpBatch",
	MethodUpdateChain:     "UpdateChain",
	MethodSetTenantQuota:  "SetTenantQuota",
	MethodReportTier:      "ReportTier",
	MethodCtrlReplicate:   "CtrlReplicate",
	MethodCtrlBootstrap:   "CtrlBootstrap",
	MethodCtrlRole:        "CtrlRole",
	MethodCtrlPromote:     "CtrlPromote",
}

// MethodName returns the human-readable name of a method identifier,
// or "" when unknown (callers fall back to the hex value).
func MethodName(method uint16) string { return methodNames[method] }
