package clock

import (
	"sync"
	"testing"
	"time"
)

func TestRealNow(t *testing.T) {
	var c Real
	before := time.Now()
	got := c.Now()
	after := time.Now()
	if got.Before(before) || got.After(after) {
		t.Errorf("Real.Now() = %v outside [%v, %v]", got, before, after)
	}
}

func TestVirtualAdvance(t *testing.T) {
	start := time.Unix(1000, 0)
	v := NewVirtual(start)
	if !v.Now().Equal(start) {
		t.Fatalf("Now() = %v, want %v", v.Now(), start)
	}
	v.Advance(5 * time.Second)
	if want := start.Add(5 * time.Second); !v.Now().Equal(want) {
		t.Errorf("Now() = %v, want %v", v.Now(), want)
	}
}

func TestVirtualAdvanceToBackwardsNoop(t *testing.T) {
	start := time.Unix(1000, 0)
	v := NewVirtual(start)
	v.AdvanceTo(start.Add(-time.Hour))
	if !v.Now().Equal(start) {
		t.Errorf("backwards AdvanceTo moved the clock to %v", v.Now())
	}
}

func TestVirtualAfterFiresInOrder(t *testing.T) {
	start := time.Unix(0, 0)
	v := NewVirtual(start)
	c3 := v.After(3 * time.Second)
	c1 := v.After(1 * time.Second)
	c2 := v.After(2 * time.Second)
	if v.PendingTimers() != 3 {
		t.Fatalf("pending = %d, want 3", v.PendingTimers())
	}
	v.Advance(10 * time.Second)
	t1, t2, t3 := <-c1, <-c2, <-c3
	if !t1.Equal(start.Add(1 * time.Second)) {
		t.Errorf("timer1 fired at %v", t1)
	}
	if !t2.Equal(start.Add(2 * time.Second)) {
		t.Errorf("timer2 fired at %v", t2)
	}
	if !t3.Equal(start.Add(3 * time.Second)) {
		t.Errorf("timer3 fired at %v", t3)
	}
	if v.PendingTimers() != 0 {
		t.Errorf("pending = %d after advance", v.PendingTimers())
	}
}

func TestVirtualAfterZeroFiresImmediately(t *testing.T) {
	v := NewVirtual(time.Unix(50, 0))
	select {
	case <-v.After(0):
	default:
		t.Error("After(0) should fire immediately")
	}
}

func TestVirtualPartialAdvance(t *testing.T) {
	v := NewVirtual(time.Unix(0, 0))
	far := v.After(10 * time.Second)
	v.Advance(5 * time.Second)
	select {
	case <-far:
		t.Fatal("timer fired early")
	default:
	}
	v.Advance(5 * time.Second)
	select {
	case <-far:
	default:
		t.Fatal("timer did not fire at its deadline")
	}
}

func TestVirtualSleepBlocksUntilAdvance(t *testing.T) {
	v := NewVirtual(time.Unix(0, 0))
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		v.Sleep(time.Second)
		close(done)
	}()
	// Give the sleeper a chance to register its timer.
	for v.PendingTimers() == 0 {
		time.Sleep(time.Millisecond)
	}
	select {
	case <-done:
		t.Fatal("Sleep returned before advance")
	default:
	}
	v.Advance(2 * time.Second)
	wg.Wait()
}

func TestVirtualNextDeadline(t *testing.T) {
	v := NewVirtual(time.Unix(0, 0))
	if _, ok := v.NextDeadline(); ok {
		t.Error("empty clock reported a deadline")
	}
	ch := v.After(7 * time.Second)
	dl, ok := v.NextDeadline()
	if !ok || !dl.Equal(time.Unix(7, 0)) {
		t.Errorf("NextDeadline = %v, %v", dl, ok)
	}
	v.Advance(8 * time.Second)
	<-ch
}

func TestVirtualConcurrentTimers(t *testing.T) {
	v := NewVirtual(time.Unix(0, 0))
	const n = 100
	var wg sync.WaitGroup
	fired := make(chan time.Time, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			fired <- <-v.After(time.Duration(i+1) * time.Millisecond)
		}(i)
	}
	for v.PendingTimers() < n {
		time.Sleep(time.Millisecond)
	}
	v.Advance(time.Second)
	wg.Wait()
	close(fired)
	count := 0
	for range fired {
		count++
	}
	if count != n {
		t.Errorf("fired %d timers, want %d", count, n)
	}
}
