// Package clock abstracts time so that the same Jiffy mechanisms (lease
// expiry, repartition pacing, latency models) run against either the
// wall clock (live deployments) or a virtual clock (the trace-replay
// simulator in internal/sim, which replays hours of the Snowflake-like
// workload in milliseconds, deterministically).
package clock

import (
	"container/heap"
	"sync"
	"time"
)

// Clock is the time source used by every time-dependent Jiffy component.
type Clock interface {
	// Now returns the current time.
	Now() time.Time
	// Sleep blocks the caller for d. On the virtual clock this blocks
	// until the simulation advances past the deadline.
	Sleep(d time.Duration)
	// After returns a channel that delivers the (then-current) time
	// once d has elapsed.
	After(d time.Duration) <-chan time.Time
}

// Real is the wall-clock implementation.
type Real struct{}

// Now implements Clock.
func (Real) Now() time.Time { return time.Now() }

// Sleep implements Clock.
func (Real) Sleep(d time.Duration) { time.Sleep(d) }

// After implements Clock.
func (Real) After(d time.Duration) <-chan time.Time { return time.After(d) }

// Virtual is a manually advanced clock. Time only moves when Advance or
// AdvanceTo is called; timers created via After/Sleep fire during the
// advance, in deadline order. Virtual is safe for concurrent use.
type Virtual struct {
	mu     sync.Mutex
	now    time.Time
	timers timerHeap
}

// NewVirtual returns a virtual clock positioned at start.
func NewVirtual(start time.Time) *Virtual {
	return &Virtual{now: start}
}

// Now implements Clock.
func (v *Virtual) Now() time.Time {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.now
}

// After implements Clock. The returned channel has capacity 1 so firing
// never blocks the advancing goroutine.
func (v *Virtual) After(d time.Duration) <-chan time.Time {
	ch := make(chan time.Time, 1)
	v.mu.Lock()
	defer v.mu.Unlock()
	if d <= 0 {
		ch <- v.now
		return ch
	}
	heap.Push(&v.timers, &timer{at: v.now.Add(d), ch: ch})
	return ch
}

// Sleep implements Clock. It blocks until another goroutine advances
// the clock past the deadline — callers must arrange for that advance.
func (v *Virtual) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	<-v.After(d)
}

// Advance moves the clock forward by d, firing timers in deadline order.
func (v *Virtual) Advance(d time.Duration) {
	v.mu.Lock()
	target := v.now.Add(d)
	v.mu.Unlock()
	v.AdvanceTo(target)
}

// AdvanceTo moves the clock to t (no-op if t is not after now), firing
// every timer whose deadline is <= t. Each timer fires with the clock
// positioned exactly at its deadline, so chains of timers see
// monotonically non-decreasing time.
func (v *Virtual) AdvanceTo(t time.Time) {
	for {
		v.mu.Lock()
		if len(v.timers) == 0 || v.timers[0].at.After(t) {
			if t.After(v.now) {
				v.now = t
			}
			v.mu.Unlock()
			return
		}
		tm := heap.Pop(&v.timers).(*timer)
		if tm.at.After(v.now) {
			v.now = tm.at
		}
		now := v.now
		v.mu.Unlock()
		tm.ch <- now
	}
}

// PendingTimers reports how many timers are waiting to fire; useful for
// simulator drain loops and tests.
func (v *Virtual) PendingTimers() int {
	v.mu.Lock()
	defer v.mu.Unlock()
	return len(v.timers)
}

// NextDeadline returns the earliest pending timer deadline and whether
// one exists.
func (v *Virtual) NextDeadline() (time.Time, bool) {
	v.mu.Lock()
	defer v.mu.Unlock()
	if len(v.timers) == 0 {
		return time.Time{}, false
	}
	return v.timers[0].at, true
}

type timer struct {
	at time.Time
	ch chan time.Time
}

type timerHeap []*timer

func (h timerHeap) Len() int            { return len(h) }
func (h timerHeap) Less(i, j int) bool  { return h[i].at.Before(h[j].at) }
func (h timerHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *timerHeap) Push(x interface{}) { *h = append(*h, x.(*timer)) }
func (h *timerHeap) Pop() interface{} {
	old := *h
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return t
}
