package client_test

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"jiffy"
	"jiffy/internal/client"
	"jiffy/internal/core"
)

func testCluster(t *testing.T) (*jiffy.Cluster, *client.Client) {
	t.Helper()
	cfg := core.TestConfig()
	cfg.LeaseDuration = time.Minute
	cluster, err := jiffy.StartCluster(jiffy.ClusterOptions{
		Config: cfg, Servers: 2, BlocksPerServer: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cluster.Close() })
	c, err := cluster.Connect(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return cluster, c
}

func TestOpenWrongType(t *testing.T) {
	_, c := testCluster(t)
	c.RegisterJob(context.Background(), "j")
	c.CreatePrefix(context.Background(), "j/kv", nil, core.DSKV, 1, 0)
	if _, err := c.OpenQueue(context.Background(), "j/kv"); !errors.Is(err, core.ErrWrongType) {
		t.Errorf("OpenQueue on KV = %v", err)
	}
	if _, err := c.OpenFile(context.Background(), "j/kv"); !errors.Is(err, core.ErrWrongType) {
		t.Errorf("OpenFile on KV = %v", err)
	}
	if _, err := c.OpenKV(context.Background(), "j/missing"); !errors.Is(err, core.ErrNotFound) {
		t.Errorf("OpenKV on missing = %v", err)
	}
}

func TestKVExistsSemantics(t *testing.T) {
	_, c := testCluster(t)
	c.RegisterJob(context.Background(), "j")
	c.CreatePrefix(context.Background(), "j/t", nil, core.DSKV, 1, 0)
	kv, _ := c.OpenKV(context.Background(), "j/t")
	ok, err := kv.Exists(context.Background(), "ghost")
	if err != nil || ok {
		t.Errorf("Exists(ghost) = %v, %v", ok, err)
	}
	kv.Put(context.Background(), "real", []byte("v"))
	ok, err = kv.Exists(context.Background(), "real")
	if err != nil || !ok {
		t.Errorf("Exists(real) = %v, %v", ok, err)
	}
}

// TestStaleHandleRecovers: a handle opened before splits keeps working
// after the store has scaled several times.
func TestStaleHandleRecovers(t *testing.T) {
	_, c := testCluster(t)
	c.RegisterJob(context.Background(), "j")
	c.CreatePrefix(context.Background(), "j/t", nil, core.DSKV, 1, 0)
	early, _ := c.OpenKV(context.Background(
	// Force splits with a second handle.
	), "j/t")

	writer, _ := c.OpenKV(context.Background(), "j/t")
	big := make([]byte, 1024)
	for i := 0; i < 400; i++ {
		if err := writer.Put(context.Background(), fmt.Sprintf("grow-%d", i), big); err != nil {
			t.Fatal(err)
		}
	}
	// The early handle's cached map is several epochs stale; its ops
	// must still succeed via refresh-and-retry.
	if err := early.Put(context.Background(), "after-splits", []byte("ok")); err != nil {
		t.Fatal(err)
	}
	v, err := early.Get(context.Background(), "grow-42")
	if err != nil || len(v) != 1024 {
		t.Errorf("stale-handle get = %d bytes, %v", len(v), err)
	}
}

func TestConcurrentHandleRefresh(t *testing.T) {
	_, c := testCluster(t)
	c.RegisterJob(context.Background(), "j")
	c.CreatePrefix(context.Background(), "j/t", nil, core.DSKV, 1, 0)
	kv, _ := c.OpenKV(context.Background(), "j/t")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				key := fmt.Sprintf("g%d-%d", g, i)
				if err := kv.Put(context.Background(), key, make([]byte, 512)); err != nil {
					t.Errorf("put: %v", err)
					return
				}
				if _, err := kv.Get(context.Background(), key); err != nil {
					t.Errorf("get: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestRenewerAddRemove(t *testing.T) {
	cfg := core.TestConfig() // 200ms leases
	cluster, err := jiffy.StartCluster(jiffy.ClusterOptions{
		Config: cfg, Servers: 1, BlocksPerServer: 32,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	c, _ := cluster.Connect(context.Background())
	defer c.Close()

	c.RegisterJob(context.Background(), "j")
	c.CreatePrefix(context.Background(), "j/keep", nil, core.DSKV, 1, 0)
	c.CreatePrefix(context.Background(), "j/drop", nil, core.DSKV, 1, 0)
	r := c.StartRenewer(50*time.Millisecond, "j/keep")
	r.Add("j/drop")
	time.Sleep(400 * time.Millisecond)
	if n := cluster.Controller.ExpiryCount(); n != 0 {
		t.Fatalf("%d prefixes expired while renewed", n)
	}
	// Stop renewing one prefix; it expires, the other survives.
	r.Remove("j/drop")
	deadline := time.Now().Add(5 * time.Second)
	for cluster.Controller.ExpiryCount() == 0 && time.Now().Before(deadline) {
		time.Sleep(20 * time.Millisecond)
	}
	if n := cluster.Controller.ExpiryCount(); n != 1 {
		t.Errorf("expiries = %d, want 1", n)
	}
	r.Stop()
	r.Stop() // idempotent
}

func TestListenerTryGet(t *testing.T) {
	_, c := testCluster(t)
	c.RegisterJob(context.Background(), "j")
	c.CreatePrefix(context.Background(), "j/q", nil, core.DSQueue, 1, 0)
	q, _ := c.OpenQueue(context.Background(), "j/q")
	l, err := q.Subscribe(context.Background(), core.OpEnqueue)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if _, ok := l.TryGet(); ok {
		t.Error("TryGet on idle listener returned a notification")
	}
	q.Enqueue(context.Background(), []byte("x"))
	deadline := time.Now().Add(2 * time.Second)
	for {
		if n, ok := l.TryGet(); ok {
			if string(n.Data) != "x" {
				t.Errorf("notification = %+v", n)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("notification never arrived")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestListenerTimeout(t *testing.T) {
	_, c := testCluster(t)
	c.RegisterJob(context.Background(), "j")
	c.CreatePrefix(context.Background(), "j/q", nil, core.DSQueue, 1, 0)
	q, _ := c.OpenQueue(context.Background(), "j/q")
	l, err := q.Subscribe(context.Background(), core.OpEnqueue)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	start := time.Now()
	_, err = l.Get(30 * time.Millisecond)
	if !errors.Is(err, core.ErrTimeout) {
		t.Errorf("err = %v", err)
	}
	if time.Since(start) < 25*time.Millisecond {
		t.Error("Get returned before the timeout")
	}
}

func TestClientCloseIdempotent(t *testing.T) {
	cluster, _ := testCluster(t)
	c, err := cluster.Connect(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Errorf("second close = %v", err)
	}
}

func TestFileReadAcrossUnwrittenChunk(t *testing.T) {
	_, c := testCluster(t)
	c.RegisterJob(context.Background(), "j")
	c.CreatePrefix(context.Background(), "j/f", nil, core.DSFile, 1, 0)
	f, _ := c.OpenFile(context.Background(), "j/f")
	f.WriteAt(context.Background(), 0, []byte("head"))
	// Reading far past EOF yields empty, not an error.
	data, err := f.ReadAt(context.Background(), 1<<20, 100)
	if err != nil || len(data) != 0 {
		t.Errorf("far read = %d bytes, %v", len(data), err)
	}
}

// TestListenerCoversScaledBlocks: a subscription created before the
// structure scales still delivers notifications for items landing in
// blocks added afterwards (the listener resyncs its coverage).
func TestListenerCoversScaledBlocks(t *testing.T) {
	_, c := testCluster(t)
	c.RegisterJob(context.Background(), "lsc")
	c.CreatePrefix(context.Background(), "lsc/q", nil, core.DSQueue, 1, 0)
	consumer, _ := c.OpenQueue(context.Background(), "lsc/q")
	l, err := consumer.Subscribe(context.Background(), core.OpEnqueue)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	// Fill well past one 64KB segment so the queue scales.
	producer, _ := c.OpenQueue(context.Background(), "lsc/q")
	item := make([]byte, 4*1024)
	for i := 0; i < 40; i++ {
		if err := producer.Enqueue(context.Background(), item); err != nil {
			t.Fatal(err)
		}
	}
	// Drain pending notifications, forcing at least one resync via the
	// Get timeout path, then enqueue once more: the new item lands in a
	// late block and must still notify.
	for {
		if _, err := l.Get(50 * time.Millisecond); err != nil {
			break
		}
	}
	if err := producer.Enqueue(context.Background(), []byte("late-item")); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		n, err := l.Get(100 * time.Millisecond)
		if err == nil && string(n.Data) == "late-item" {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("notification from scaled block never arrived")
		}
	}
}
