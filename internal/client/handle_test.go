package client

import (
	"errors"
	"fmt"
	"hash/fnv"
	"testing"
	"time"

	"jiffy/internal/core"
	"jiffy/internal/rpc"
)

// TestBackoffDelayBounded pins the retry backoff contract: linear
// growth from 200µs, capped at 5ms, never decreasing — so a full retry
// budget cannot stall a caller for more than retries × 5ms.
func TestBackoffDelayBounded(t *testing.T) {
	cases := []struct {
		attempt int
		want    time.Duration
	}{
		{0, 200 * time.Microsecond},
		{1, 400 * time.Microsecond},
		{4, time.Millisecond},
		{24, 5 * time.Millisecond},
		{25, 5 * time.Millisecond}, // capped
		{1000, 5 * time.Millisecond},
	}
	limit := DefaultRetryPolicy().MaxBackoff
	for _, c := range cases {
		if got := backoffDelay(c.attempt, limit); got != c.want {
			t.Errorf("backoffDelay(%d) = %v, want %v", c.attempt, got, c.want)
		}
	}
	prev := time.Duration(0)
	for i := 0; i < 64; i++ {
		d := backoffDelay(i, limit)
		if d < prev {
			t.Fatalf("backoffDelay not monotonic at attempt %d: %v < %v", i, d, prev)
		}
		if d > 5*time.Millisecond {
			t.Fatalf("backoffDelay(%d) = %v exceeds the 5ms cap", i, d)
		}
		prev = d
	}
	// A custom cap is honored, and a zero/negative cap falls back to the
	// default so a zero-valued RetryPolicy cannot produce unbounded waits.
	if got := backoffDelay(1000, time.Millisecond); got != time.Millisecond {
		t.Errorf("backoffDelay custom cap = %v, want 1ms", got)
	}
	if got := backoffDelay(1000, 0); got != 5*time.Millisecond {
		t.Errorf("backoffDelay zero cap = %v, want 5ms fallback", got)
	}
}

// TestErrRetriesExhaustedWrapsCause: after the retry budget is spent,
// the returned error still exposes the final cause through errors.Is,
// so callers can distinguish "gave up on a dead server" from "gave up
// on stale metadata".
func TestErrRetriesExhaustedWrapsCause(t *testing.T) {
	causes := []error{
		core.ErrTimeout,
		core.ErrStaleEpoch,
		&rpc.SessionError{Cause: errors.New("conn reset")},
		fmt.Errorf("wrapped: %w", core.ErrClosed),
	}
	for _, cause := range causes {
		err := errRetriesExhausted("kv get", cause)
		if !errors.Is(err, cause) {
			t.Errorf("errRetriesExhausted lost cause %v", cause)
		}
	}
	// The session-error cause also still unwraps to ErrClosed.
	err := errRetriesExhausted("enqueue", &rpc.SessionError{Cause: errors.New("x")})
	if !errors.Is(err, core.ErrClosed) {
		t.Error("session-error cause no longer unwraps to ErrClosed")
	}
}

// TestIsConnErr classifies which failures are worth a re-dial retry.
func TestIsConnErr(t *testing.T) {
	cases := []struct {
		err  error
		want bool
	}{
		{core.ErrClosed, true},
		{core.ErrTimeout, true},
		{&rpc.SessionError{Cause: errors.New("eof")}, true},
		{fmt.Errorf("call 3 timed out: %w", core.ErrTimeout), true},
		{core.ErrNotFound, false},
		{core.ErrStaleEpoch, false},
		{nil, false},
	}
	for _, c := range cases {
		if got := isConnErr(c.err); got != c.want {
			t.Errorf("isConnErr(%v) = %v, want %v", c.err, got, c.want)
		}
	}
}

// TestJobHashStability pins jobHash to FNV-32a: the client and the
// multi-controller deployment both derive job placement from this hash,
// so silently changing it would re-home every job's metadata. The
// stdlib implementation is the reference.
func TestJobHashStability(t *testing.T) {
	jobs := []core.JobID{"", "j", "job1", "sort-100g", "a/b/c", "Job1"}
	for _, j := range jobs {
		ref := fnv.New32a()
		ref.Write([]byte(j))
		if got, want := jobHash(j), ref.Sum32(); got != want {
			t.Errorf("jobHash(%q) = %d, want FNV-32a %d", j, got, want)
		}
	}
	// Absolute golden value so even a stdlib-tracking rewrite that
	// changed the algorithm would be caught.
	if got := jobHash(""); got != 2166136261 {
		t.Errorf("jobHash(\"\") = %d, want FNV-32a offset basis", got)
	}
}

// TestCtrlForMemoized verifies per-job controller routing: the mapping
// is jobHash % len(ctrls), it is stable across calls, and after the
// first lookup it is served from the memo rather than re-hashed.
func TestCtrlForMemoized(t *testing.T) {
	c := &Client{ctrls: []*rpc.Client{{}, {}, {}}}
	jobs := []core.JobID{"alpha", "beta", "gamma", "delta", "job-42"}
	for _, j := range jobs {
		want := c.ctrls[int(jobHash(j))%len(c.ctrls)]
		if got := c.ctrlFor(j); got != want {
			t.Errorf("ctrlFor(%q) routed to unexpected controller", j)
		}
		if got := c.ctrlFor(j); got != want {
			t.Errorf("ctrlFor(%q) unstable across calls", j)
		}
	}
	// Poison the memo: if ctrlFor really reads it, the poisoned index
	// wins; a re-hash would return the original controller.
	c.ctrlIdx.Store(core.JobID("alpha"), (int(jobHash("alpha"))+1)%len(c.ctrls))
	poisoned := c.ctrls[(int(jobHash("alpha"))+1)%len(c.ctrls)]
	if got := c.ctrlFor("alpha"); got != poisoned {
		t.Error("ctrlFor ignored the memoized index (not actually memoized)")
	}
	// Single-controller clients route everything to controller 0 without
	// touching the memo.
	single := &Client{ctrls: []*rpc.Client{{}}}
	if got := single.ctrlFor("anything"); got != single.ctrls[0] {
		t.Error("single-controller ctrlFor missed ctrls[0]")
	}
}
