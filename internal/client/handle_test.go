package client

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"jiffy/internal/core"
	"jiffy/internal/rpc"
)

// TestBackoffDelayBounded pins the retry backoff contract: linear
// growth from 200µs, capped at 5ms, never decreasing — so a full retry
// budget cannot stall a caller for more than retries × 5ms.
func TestBackoffDelayBounded(t *testing.T) {
	cases := []struct {
		attempt int
		want    time.Duration
	}{
		{0, 200 * time.Microsecond},
		{1, 400 * time.Microsecond},
		{4, time.Millisecond},
		{24, 5 * time.Millisecond},
		{25, 5 * time.Millisecond}, // capped
		{1000, 5 * time.Millisecond},
	}
	for _, c := range cases {
		if got := backoffDelay(c.attempt); got != c.want {
			t.Errorf("backoffDelay(%d) = %v, want %v", c.attempt, got, c.want)
		}
	}
	prev := time.Duration(0)
	for i := 0; i < 64; i++ {
		d := backoffDelay(i)
		if d < prev {
			t.Fatalf("backoffDelay not monotonic at attempt %d: %v < %v", i, d, prev)
		}
		if d > 5*time.Millisecond {
			t.Fatalf("backoffDelay(%d) = %v exceeds the 5ms cap", i, d)
		}
		prev = d
	}
}

// TestErrRetriesExhaustedWrapsCause: after the retry budget is spent,
// the returned error still exposes the final cause through errors.Is,
// so callers can distinguish "gave up on a dead server" from "gave up
// on stale metadata".
func TestErrRetriesExhaustedWrapsCause(t *testing.T) {
	causes := []error{
		core.ErrTimeout,
		core.ErrStaleEpoch,
		&rpc.SessionError{Cause: errors.New("conn reset")},
		fmt.Errorf("wrapped: %w", core.ErrClosed),
	}
	for _, cause := range causes {
		err := errRetriesExhausted("kv get", cause)
		if !errors.Is(err, cause) {
			t.Errorf("errRetriesExhausted lost cause %v", cause)
		}
	}
	// The session-error cause also still unwraps to ErrClosed.
	err := errRetriesExhausted("enqueue", &rpc.SessionError{Cause: errors.New("x")})
	if !errors.Is(err, core.ErrClosed) {
		t.Error("session-error cause no longer unwraps to ErrClosed")
	}
}

// TestIsConnErr classifies which failures are worth a re-dial retry.
func TestIsConnErr(t *testing.T) {
	cases := []struct {
		err  error
		want bool
	}{
		{core.ErrClosed, true},
		{core.ErrTimeout, true},
		{&rpc.SessionError{Cause: errors.New("eof")}, true},
		{fmt.Errorf("call 3 timed out: %w", core.ErrTimeout), true},
		{core.ErrNotFound, false},
		{core.ErrStaleEpoch, false},
		{nil, false},
	}
	for _, c := range cases {
		if got := isConnErr(c.err); got != c.want {
			t.Errorf("isConnErr(%v) = %v, want %v", c.err, got, c.want)
		}
	}
}
