package client

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"jiffy/internal/core"
	"jiffy/internal/rpc"
)

// TestBackoffDelayBounded pins the retry backoff contract: linear
// growth from 200µs, capped at 5ms, never decreasing — so a full retry
// budget cannot stall a caller for more than retries × 5ms.
func TestBackoffDelayBounded(t *testing.T) {
	cases := []struct {
		attempt int
		want    time.Duration
	}{
		{0, 200 * time.Microsecond},
		{1, 400 * time.Microsecond},
		{4, time.Millisecond},
		{24, 5 * time.Millisecond},
		{25, 5 * time.Millisecond}, // capped
		{1000, 5 * time.Millisecond},
	}
	limit := DefaultRetryPolicy().MaxBackoff
	for _, c := range cases {
		if got := backoffDelay(c.attempt, limit); got != c.want {
			t.Errorf("backoffDelay(%d) = %v, want %v", c.attempt, got, c.want)
		}
	}
	prev := time.Duration(0)
	for i := 0; i < 64; i++ {
		d := backoffDelay(i, limit)
		if d < prev {
			t.Fatalf("backoffDelay not monotonic at attempt %d: %v < %v", i, d, prev)
		}
		if d > 5*time.Millisecond {
			t.Fatalf("backoffDelay(%d) = %v exceeds the 5ms cap", i, d)
		}
		prev = d
	}
	// A custom cap is honored, and a zero/negative cap falls back to the
	// default so a zero-valued RetryPolicy cannot produce unbounded waits.
	if got := backoffDelay(1000, time.Millisecond); got != time.Millisecond {
		t.Errorf("backoffDelay custom cap = %v, want 1ms", got)
	}
	if got := backoffDelay(1000, 0); got != 5*time.Millisecond {
		t.Errorf("backoffDelay zero cap = %v, want 5ms fallback", got)
	}
}

// TestErrRetriesExhaustedWrapsCause: after the retry budget is spent,
// the returned error still exposes the final cause through errors.Is,
// so callers can distinguish "gave up on a dead server" from "gave up
// on stale metadata".
func TestErrRetriesExhaustedWrapsCause(t *testing.T) {
	causes := []error{
		core.ErrTimeout,
		core.ErrStaleEpoch,
		&rpc.SessionError{Cause: errors.New("conn reset")},
		fmt.Errorf("wrapped: %w", core.ErrClosed),
	}
	for _, cause := range causes {
		err := errRetriesExhausted("kv get", cause)
		if !errors.Is(err, cause) {
			t.Errorf("errRetriesExhausted lost cause %v", cause)
		}
	}
	// The session-error cause also still unwraps to ErrClosed.
	err := errRetriesExhausted("enqueue", &rpc.SessionError{Cause: errors.New("x")})
	if !errors.Is(err, core.ErrClosed) {
		t.Error("session-error cause no longer unwraps to ErrClosed")
	}
}

// TestIsConnErr classifies which failures are worth a re-dial retry.
func TestIsConnErr(t *testing.T) {
	cases := []struct {
		err  error
		want bool
	}{
		{core.ErrClosed, true},
		{core.ErrTimeout, true},
		{&rpc.SessionError{Cause: errors.New("eof")}, true},
		{fmt.Errorf("call 3 timed out: %w", core.ErrTimeout), true},
		{core.ErrNotFound, false},
		{core.ErrStaleEpoch, false},
		{nil, false},
	}
	for _, c := range cases {
		if got := isConnErr(c.err); got != c.want {
			t.Errorf("isConnErr(%v) = %v, want %v", c.err, got, c.want)
		}
	}
}

// TestCtrlIndexOf pins the leader-hint resolution: a redirect hint
// re-homes only onto a configured group member; unknown or empty
// addresses (a solo controller reports no leader address) resolve to
// -1 so callCtrl falls back to round-robin probing.
func TestCtrlIndexOf(t *testing.T) {
	c := &Client{ctrlAddrs: []string{"ctrl-0", "ctrl-1", "ctrl-2"}}
	for i, addr := range c.ctrlAddrs {
		if got := c.ctrlIndexOf(addr); got != i {
			t.Errorf("ctrlIndexOf(%q) = %d, want %d", addr, got, i)
		}
	}
	if got := c.ctrlIndexOf(""); got != -1 {
		t.Errorf("ctrlIndexOf(\"\") = %d, want -1", got)
	}
	if got := c.ctrlIndexOf("ctrl-9"); got != -1 {
		t.Errorf("ctrlIndexOf(unknown) = %d, want -1", got)
	}
}

// TestLeaderHintRoundTrip verifies the NotLeader redirect survives the
// wire format: the typed error's message re-parses into the same
// leader hint on the client side (core.ErrOf reconstructs it from the
// frame payload), and errors.Is sees the sentinel through the wrap.
func TestLeaderHintRoundTrip(t *testing.T) {
	nl := &core.NotLeaderError{Leader: "ctrl-2:9090", Gen: 7}
	if !errors.Is(nl, core.ErrNotLeader) {
		t.Fatal("NotLeaderError does not unwrap to ErrNotLeader")
	}
	rebuilt := core.ErrOf(core.CodeNotLeader, nl.Error())
	if !errors.Is(rebuilt, core.ErrNotLeader) {
		t.Fatal("reconstructed error lost the ErrNotLeader sentinel")
	}
	leader, gen := core.LeaderHintOf(rebuilt)
	if leader != "ctrl-2:9090" || gen != 7 {
		t.Fatalf("LeaderHintOf = (%q, %d), want (ctrl-2:9090, 7)", leader, gen)
	}
	// A bare sentinel (no hint payload) must not crash the parser.
	leader, gen = core.LeaderHintOf(core.ErrNotLeader)
	if leader != "" || gen != 0 {
		t.Fatalf("LeaderHintOf(bare) = (%q, %d), want empty", leader, gen)
	}
}
