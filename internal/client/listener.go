package client

import (
	"context"
	"fmt"
	"sync"
	"time"

	"jiffy/internal/core"
	"jiffy/internal/ds"
	"jiffy/internal/proto"
	"jiffy/internal/rpc"
)

// pushRouter dispatches push frames on one data-plane connection to
// the listeners that subscribed through it. conn records the session
// the router is installed on: the pool replaces dead sessions
// transparently, so dataConn must re-install routing whenever the
// session it gets back is not the one the router was bound to.
type pushRouter struct {
	conn  *rpc.Client
	mu    sync.Mutex
	chans map[uint64]chan proto.Notification
}

func (r *pushRouter) route(subID uint64, payload []byte) {
	var n proto.Notification
	if err := rpc.Unmarshal(payload, &n); err != nil {
		return
	}
	r.mu.Lock()
	ch := r.chans[subID]
	r.mu.Unlock()
	if ch != nil {
		select {
		case ch <- n:
		default: // listener buffer full; drop (best-effort semantics)
		}
	}
}

// dataConn returns the pooled connection to a memory server with its
// push router installed. A cached session that has died (server crash,
// forced disconnect) is evicted and re-dialed transparently.
func (c *Client) dataConn(addr string) (*rpc.Client, error) {
	conn, err := c.pool.Get(addr)
	if err != nil {
		return nil, err
	}
	if conn.IsClosed() {
		c.dropData(addr)
		conn, err = c.pool.Get(addr)
		if err != nil {
			return nil, err
		}
	}
	c.mu.Lock()
	if r, ok := c.routers[addr]; !ok || r.conn != conn {
		// First use of this address, or the pool evicted a dead session
		// and handed back a fresh one: (re)install push routing. Old
		// subscriptions died with the old session; Listener.Resync
		// re-registers them and repopulates the new router.
		router := &pushRouter{conn: conn, chans: make(map[uint64]chan proto.Notification)}
		c.routers[addr] = router
		conn.OnPush(router.route)
	}
	c.mu.Unlock()
	return conn, nil
}

// dropData evicts a dead data-plane session and its push router; the
// next dataConn re-dials and re-installs routing. Live subscriptions
// over the old session are gone server-side; Listener.Resync detects
// the dead session and re-subscribes.
func (c *Client) dropData(addr string) {
	c.pool.Drop(addr)
	c.mu.Lock()
	delete(c.routers, addr)
	c.mu.Unlock()
}

func (c *Client) router(addr string) *pushRouter {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.routers[addr]
}

// Listener receives notifications for one subscription
// (listener = ds.subscribe(op) in Table 1). When the underlying data
// structure scales, the listener transparently extends its
// subscriptions to the new blocks (see Resync).
type Listener struct {
	c   *Client
	h   *handle
	ops []core.OpType
	ch  chan proto.Notification

	mu sync.Mutex
	// subs records (server, subID) pairs for unsubscription.
	subs []serverSub
	// covered tracks the blocks already subscribed.
	covered map[core.BlockID]bool
}

type serverSub struct {
	addr  string
	subID uint64
	// blocks covered through this subscription; uncovered again if the
	// session dies so Resync re-subscribes them.
	blocks []core.BlockID
	// conn is the session the subscription was registered over.
	conn *rpc.Client
}

// subscribe registers op-type subscriptions on every server currently
// hosting blocks of the handle's data structure. ctx bounds the
// initial registration round trips; the listener itself outlives it.
func (c *Client) subscribe(ctx context.Context, h *handle, ops []core.OpType) (*Listener, error) {
	l := &Listener{
		c:       c,
		h:       h,
		ops:     ops,
		ch:      make(chan proto.Notification, 1024),
		covered: make(map[core.BlockID]bool),
	}
	if err := l.subscribeNew(ctx, h.snapshot()); err != nil {
		l.Close()
		return nil, err
	}
	return l, nil
}

// subscribeNew subscribes to any blocks of m not yet covered.
func (l *Listener) subscribeNew(ctx context.Context, m ds.PartitionMap) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	byServer := make(map[string][]core.BlockID)
	for _, e := range m.Blocks {
		if !l.covered[e.Info.ID] {
			byServer[e.Info.Server] = append(byServer[e.Info.Server], e.Info.ID)
		}
	}
	for addr, blocks := range byServer {
		conn, err := l.c.dataConn(addr)
		if err != nil {
			return err
		}
		var resp proto.SubscribeResp
		if err := conn.CallGobCtx(ctx, proto.MethodSubscribe,
			proto.SubscribeReq{Blocks: blocks, Ops: l.ops}, &resp); err != nil {
			return err
		}
		router := l.c.router(addr)
		router.mu.Lock()
		router.chans[resp.SubID] = l.ch
		router.mu.Unlock()
		l.subs = append(l.subs, serverSub{addr: addr, subID: resp.SubID, blocks: blocks, conn: conn})
		for _, b := range blocks {
			l.covered[b] = true
		}
	}
	return nil
}

// pruneDead drops subscriptions whose sessions have died (server crash
// or forced disconnect) and marks their blocks uncovered, so the next
// subscribeNew re-registers them over a fresh connection — the server
// side dropped them on disconnect.
func (l *Listener) pruneDead() {
	l.mu.Lock()
	defer l.mu.Unlock()
	kept := l.subs[:0]
	for _, s := range l.subs {
		if s.conn != nil && s.conn.IsClosed() {
			for _, b := range s.blocks {
				delete(l.covered, b)
			}
			continue
		}
		kept = append(kept, s)
	}
	l.subs = kept
}

// Resync refreshes the partition map and extends the subscription to
// any blocks added by elastic scaling since Subscribe; subscriptions
// lost to dead connections are re-established.
func (l *Listener) Resync() error {
	ctx := context.Background()
	l.pruneDead()
	if err := l.h.refresh(ctx); err != nil {
		return err
	}
	return l.subscribeNew(ctx, l.h.snapshot())
}

// Get waits up to timeout for the next notification
// (listener.get(timeout) in Table 1). On timeout, the listener resyncs
// its block coverage before reporting ErrTimeout, so a consumer polling
// Get in a loop keeps up with structures that scale under it.
func (l *Listener) Get(timeout time.Duration) (proto.Notification, error) {
	select {
	case n := <-l.ch:
		return n, nil
	case <-time.After(timeout):
		l.Resync()
		return proto.Notification{}, fmt.Errorf("client: notification: %w", core.ErrTimeout)
	}
}

// TryGet returns a pending notification without blocking.
func (l *Listener) TryGet() (proto.Notification, bool) {
	select {
	case n := <-l.ch:
		return n, true
	default:
		return proto.Notification{}, false
	}
}

// Close unsubscribes from every server.
func (l *Listener) Close() {
	l.mu.Lock()
	subs := l.subs
	l.subs = nil
	l.mu.Unlock()
	for _, s := range subs {
		if router := l.c.router(s.addr); router != nil {
			router.mu.Lock()
			delete(router.chans, s.subID)
			router.mu.Unlock()
		}
		if conn, err := l.c.pool.Get(s.addr); err == nil {
			var resp proto.UnsubscribeResp
			conn.CallGob(proto.MethodUnsubscribe, proto.UnsubscribeReq{SubID: s.subID}, &resp)
		}
	}
}
