package client

import (
	"context"
	"errors"
	"fmt"

	"jiffy/internal/core"
	"jiffy/internal/ds"
)

// KV is the client handle for a Jiffy KV store (§5.3). Operations hash
// the key to a slot, route to the block owning the slot via the cached
// partition map, and transparently recover from repartitioning:
// ErrStaleEpoch refreshes the map; ErrBlockFull triggers a split
// request and retries.
type KV struct {
	h *handle
}

// Path returns the handle's address prefix.
func (k *KV) Path() core.Path { return k.h.path }

// route picks the block for key from the cached map: mutations go to
// the chain head, reads to the tail (plain Info when unreplicated).
// Servers in avoid have failed at the connection level this operation;
// reads fall back to the closest upstream chain member still reachable
// — safe because chain propagation is synchronous, so every replica
// holds all acknowledged writes.
func (k *KV) route(key string, op core.OpType, avoid map[string]bool) (core.BlockInfo, bool, error) {
	m := k.h.snapshot()
	if m.NumSlots == 0 {
		return core.BlockInfo{}, false, nil
	}
	e, ok := m.BlockForSlot(ds.SlotOf(key, m.NumSlots))
	if !ok {
		return core.BlockInfo{}, false, nil
	}
	if e.Lost {
		return core.BlockInfo{}, false, lostErr(e)
	}
	if op.IsMutation() {
		return e.WriteTarget(), true, nil
	}
	rt := e.ReadTarget()
	if avoid[rt.Server] {
		for i := len(e.Chain) - 1; i >= 0; i-- {
			if !avoid[e.Chain[i].Server] {
				return e.Chain[i], true, nil
			}
		}
	}
	return rt, true, nil
}

// exec runs op with staleness/full/connection recovery. ctx bounds the
// whole retry loop: once it ends, the loop stops instead of burning
// the remaining budget against a caller that has gone away.
func (k *KV) exec(ctx context.Context, op core.OpType, key string, args [][]byte) ([][]byte, error) {
	var lastErr error
	var avoid map[string]bool
	throttles := 0
	for attempt := 0; attempt < k.h.retryLimit(); attempt++ {
		info, ok, err := k.route(key, op, avoid)
		if err != nil {
			return nil, err
		}
		if !ok {
			if err := k.h.refresh(ctx); err != nil {
				return nil, err
			}
			if err := k.h.backoff(ctx, attempt); err != nil {
				return nil, err
			}
			continue
		}
		var res [][]byte
		if op.IsMutation() {
			res, err = k.h.do(ctx, info, op, args)
		} else {
			// Idempotent reads may hedge against another chain member.
			res, err = k.h.doRead(ctx, info, op, args)
		}
		switch {
		case err == nil:
			return res, nil
		case ctxErr(err) != nil:
			return nil, err
		case errors.Is(err, core.ErrServerDegraded):
			// The server's breaker is open. Reads fall back along the
			// chain via avoid; once every candidate is degraded (or for a
			// mutation, whose head has no substitute), surface the typed
			// error with its retry-after hint instead of burning the
			// whole retry budget against open breakers.
			if avoid == nil {
				avoid = make(map[string]bool)
			}
			if avoid[info.Server] || op.IsMutation() {
				return nil, err
			}
			avoid[info.Server] = true
			if berr := k.h.backoff(ctx, attempt); berr != nil {
				return nil, berr
			}
		case errors.Is(err, core.ErrStaleEpoch):
			lastErr = err
			if rerr := k.h.refresh(ctx); rerr != nil {
				return nil, rerr
			}
			if berr := k.h.backoff(ctx, attempt); berr != nil {
				return nil, berr
			}
		case errors.Is(err, core.ErrBlockFull):
			lastErr = err
			if serr := k.h.requestScale(ctx, info.ID); serr != nil &&
				!errors.Is(serr, core.ErrNoCapacity) {
				return nil, serr
			}
			if berr := k.h.backoff(ctx, attempt); berr != nil {
				return nil, berr
			}
		case errors.Is(err, core.ErrQuotaExceeded):
			// Admission refusal: honor the retry-after hint a bounded
			// number of times, then surface the typed error as
			// backpressure — never silently swallow a throttle.
			throttles++
			if throttles > k.h.throttleLimit() {
				return nil, err
			}
			if werr := k.h.waitThrottle(ctx, attempt, err); werr != nil {
				return nil, werr
			}
		case isConnErr(err):
			// The session died or timed out: mark the server so reads
			// fall back along the chain, pick up a fresh map (the
			// controller may have repaired or moved blocks), re-dial on
			// the next attempt.
			lastErr = err
			if avoid == nil {
				avoid = make(map[string]bool)
			}
			avoid[info.Server] = true
			if rerr := k.h.refresh(ctx); rerr != nil && !isConnErr(rerr) {
				return nil, rerr
			}
			if berr := k.h.backoff(ctx, attempt); berr != nil {
				return nil, berr
			}
		default:
			return nil, err
		}
	}
	return nil, errRetriesExhausted(fmt.Sprintf("kv %v %q", op, key), lastErr)
}

// Put stores a key-value pair.
func (k *KV) Put(ctx context.Context, key string, value []byte) error {
	_, err := k.exec(ctx, core.OpPut, key, [][]byte{[]byte(key), value})
	return err
}

// Get fetches the value for key.
func (k *KV) Get(ctx context.Context, key string) ([]byte, error) {
	res, err := k.exec(ctx, core.OpGet, key, [][]byte{[]byte(key)})
	if err != nil {
		return nil, err
	}
	return res[0], nil
}

// Exists reports whether key is present.
func (k *KV) Exists(ctx context.Context, key string) (bool, error) {
	_, err := k.exec(ctx, core.OpExists, key, [][]byte{[]byte(key)})
	if errors.Is(err, core.ErrNotFound) {
		return false, nil
	}
	return err == nil, err
}

// Delete removes key and returns the previous value.
func (k *KV) Delete(ctx context.Context, key string) ([]byte, error) {
	res, err := k.exec(ctx, core.OpDelete, key, [][]byte{[]byte(key)})
	if err != nil {
		return nil, err
	}
	return res[0], nil
}

// Update overwrites an existing key and returns the previous value;
// fails with ErrNotFound if the key is absent.
func (k *KV) Update(ctx context.Context, key string, value []byte) ([]byte, error) {
	res, err := k.exec(ctx, core.OpUpdate, key, [][]byte{[]byte(key), value})
	if err != nil {
		return nil, err
	}
	return res[0], nil
}

// Subscribe registers for notifications on the given op types across
// all blocks of the KV store (ds.subscribe in Table 1).
func (k *KV) Subscribe(ctx context.Context, ops ...core.OpType) (*Listener, error) {
	return k.h.c.subscribe(ctx, k.h, ops)
}
