package client

import (
	"context"
	"errors"
	"fmt"

	"jiffy/internal/core"
)

// Custom is the raw handle for application-defined data structures
// (ds.Register): it exposes block-addressed operation execution with
// the same staleness recovery as the typed handles. Applications
// usually wrap it in their own typed API, the way §5's built-ins wrap
// the internal block interface.
type Custom struct {
	h *handle
}

// OpenCustom opens a handle to the custom structure at path,
// validating its registered type code.
func (c *Client) OpenCustom(ctx context.Context, path core.Path, t core.DSType) (*Custom, error) {
	h, err := c.newHandle(ctx, path, t)
	if err != nil {
		return nil, err
	}
	return &Custom{h: h}, nil
}

// Path returns the handle's address prefix.
func (cu *Custom) Path() core.Path { return cu.h.path }

// Blocks returns the structure's current chunk count (after a refresh).
func (cu *Custom) Blocks(ctx context.Context) (int, error) {
	if err := cu.h.refresh(ctx); err != nil {
		return 0, err
	}
	return len(cu.h.snapshot().Blocks), nil
}

// Exec runs one operation against chunk index ci, retrying through
// map refreshes. Reads route to the chunk's chain tail, mutations to
// its head.
func (cu *Custom) Exec(ctx context.Context, ci int, op core.OpType, args ...[]byte) ([][]byte, error) {
	var lastErr error
	for attempt := 0; attempt < cu.h.retryLimit(); attempt++ {
		m := cu.h.snapshot()
		e, ok := m.BlockForChunk(ci)
		if !ok {
			return nil, fmt.Errorf("client: custom chunk %d: %w", ci, core.ErrNotFound)
		}
		if e.Lost {
			return nil, lostErr(e)
		}
		target := e.ReadTarget()
		if op.IsMutation() {
			target = e.WriteTarget()
		}
		res, err := cu.h.do(ctx, target, op, args)
		switch {
		case err == nil:
			return res, nil
		case ctxErr(err) != nil:
			return nil, err
		case errors.Is(err, core.ErrStaleEpoch):
			lastErr = err
			if rerr := cu.h.refresh(ctx); rerr != nil {
				return nil, rerr
			}
			if berr := cu.h.backoff(ctx, attempt); berr != nil {
				return nil, berr
			}
		case isConnErr(err):
			lastErr = err
			if rerr := cu.h.refresh(ctx); rerr != nil && !isConnErr(rerr) {
				return nil, rerr
			}
			if berr := cu.h.backoff(ctx, attempt); berr != nil {
				return nil, berr
			}
		default:
			return nil, err
		}
	}
	return nil, errRetriesExhausted("custom exec", lastErr)
}

// Grow asks the controller to append one more block to the structure
// (custom structures scale like files: new chunks, no data movement).
func (cu *Custom) Grow(ctx context.Context) error {
	m := cu.h.snapshot()
	last, ok := m.Tail()
	if !ok {
		return core.ErrNotFound
	}
	if err := cu.h.requestScale(ctx, last.Info.ID); err != nil {
		return err
	}
	return cu.h.refresh(ctx)
}

// Subscribe registers for notifications on the structure's blocks.
func (cu *Custom) Subscribe(ctx context.Context, ops ...core.OpType) (*Listener, error) {
	return cu.h.c.subscribe(ctx, cu.h, ops)
}
