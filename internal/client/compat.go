package client

import (
	"context"
	"time"

	"jiffy/internal/core"
	"jiffy/internal/ds"
	"jiffy/internal/proto"
)

// Pre-context compatibility layer. The primary API is context-first
// (see client.go); these views keep the old signatures callable during
// incremental migration: `kv.Put(k, v)` becomes `kv.NoCtx().Put(k, v)`
// with identical behavior (context.Background() on every call), and is
// then migrated to `kv.Put(ctx, k, v)` at leisure.
//
// Everything in this file is deprecated and will be removed once the
// examples and external callers have migrated.

// ConnectNoCtx dials the controller without a context.
//
// Deprecated: use Connect with a context.
func ConnectNoCtx(controllerAddr string, opts ...Option) (*Client, error) {
	return Connect(context.Background(), controllerAddr, opts...)
}

// ConnectMultiNoCtx dials a controller group without a context.
//
// Deprecated: use ConnectMulti with a context.
func ConnectMultiNoCtx(controllerAddrs []string, opts ...Option) (*Client, error) {
	return ConnectMulti(context.Background(), controllerAddrs, opts...)
}

// ClientNoCtx is the pre-context view of Client's control-plane API.
//
// Deprecated: call the context-first methods on Client directly.
type ClientNoCtx struct{ c *Client }

// NoCtx returns the pre-context view of the client.
//
// Deprecated: call the context-first methods on Client directly.
func (c *Client) NoCtx() ClientNoCtx { return ClientNoCtx{c} }

func (v ClientNoCtx) RegisterJob(job core.JobID) error {
	return v.c.RegisterJob(context.Background(), job)
}

func (v ClientNoCtx) DeregisterJob(job core.JobID) error {
	return v.c.DeregisterJob(context.Background(), job)
}

func (v ClientNoCtx) CreatePrefix(path core.Path, parents []core.Path, t core.DSType,
	initialBlocks int, leaseDuration time.Duration) (ds.PartitionMap, time.Duration, error) {
	return v.c.CreatePrefix(context.Background(), path, parents, t, initialBlocks, leaseDuration)
}

func (v ClientNoCtx) CreateBoundedPrefix(path core.Path, parents []core.Path, t core.DSType,
	initialBlocks, maxBlocks int, leaseDuration time.Duration) (ds.PartitionMap, time.Duration, error) {
	return v.c.CreateBoundedPrefix(context.Background(), path, parents, t, initialBlocks, maxBlocks, leaseDuration)
}

func (v ClientNoCtx) CreateHierarchy(job core.JobID, nodes []proto.DagNode, leaseDuration time.Duration) error {
	return v.c.CreateHierarchy(context.Background(), job, nodes, leaseDuration)
}

func (v ClientNoCtx) RemovePrefix(path core.Path) error {
	return v.c.RemovePrefix(context.Background(), path)
}

func (v ClientNoCtx) RenewLease(paths ...core.Path) (int, error) {
	return v.c.RenewLease(context.Background(), paths...)
}

func (v ClientNoCtx) LeaseDuration(path core.Path) (time.Duration, error) {
	return v.c.LeaseDuration(context.Background(), path)
}

func (v ClientNoCtx) FlushPrefix(path core.Path, externalPath string) (int, error) {
	return v.c.FlushPrefix(context.Background(), path, externalPath)
}

func (v ClientNoCtx) LoadPrefix(path core.Path, externalPath string) error {
	return v.c.LoadPrefix(context.Background(), path, externalPath)
}

func (v ClientNoCtx) SaveControllerState(key string) error {
	return v.c.SaveControllerState(context.Background(), key)
}

func (v ClientNoCtx) ControllerStats() (proto.ControllerStatsResp, error) {
	return v.c.ControllerStats(context.Background())
}

func (v ClientNoCtx) ListPrefixes(job core.JobID) ([]proto.PrefixInfo, error) {
	return v.c.ListPrefixes(context.Background(), job)
}

func (v ClientNoCtx) OpenKV(path core.Path) (*KV, error) {
	return v.c.OpenKV(context.Background(), path)
}

func (v ClientNoCtx) OpenFile(path core.Path) (*File, error) {
	return v.c.OpenFile(context.Background(), path)
}

func (v ClientNoCtx) OpenQueue(path core.Path) (*Queue, error) {
	return v.c.OpenQueue(context.Background(), path)
}

func (v ClientNoCtx) OpenCustom(path core.Path, t core.DSType) (*Custom, error) {
	return v.c.OpenCustom(context.Background(), path, t)
}

// KVNoCtx is the pre-context view of a KV handle.
//
// Deprecated: call the context-first methods on KV directly.
type KVNoCtx struct{ kv *KV }

// NoCtx returns the pre-context view of the handle.
//
// Deprecated: call the context-first methods on KV directly.
func (k *KV) NoCtx() KVNoCtx { return KVNoCtx{k} }

func (v KVNoCtx) Put(key string, value []byte) error {
	return v.kv.Put(context.Background(), key, value)
}

func (v KVNoCtx) Get(key string) ([]byte, error) {
	return v.kv.Get(context.Background(), key)
}

func (v KVNoCtx) Exists(key string) (bool, error) {
	return v.kv.Exists(context.Background(), key)
}

func (v KVNoCtx) Delete(key string) ([]byte, error) {
	return v.kv.Delete(context.Background(), key)
}

func (v KVNoCtx) Update(key string, value []byte) ([]byte, error) {
	return v.kv.Update(context.Background(), key, value)
}

func (v KVNoCtx) MultiPut(pairs []KVPair) error {
	return v.kv.MultiPut(context.Background(), pairs)
}

func (v KVNoCtx) MultiGet(keys []string) ([][]byte, error) {
	return v.kv.MultiGet(context.Background(), keys)
}

func (v KVNoCtx) Subscribe(ops ...core.OpType) (*Listener, error) {
	return v.kv.Subscribe(context.Background(), ops...)
}

// FileNoCtx is the pre-context view of a File handle.
//
// Deprecated: call the context-first methods on File directly.
type FileNoCtx struct{ f *File }

// NoCtx returns the pre-context view of the handle.
//
// Deprecated: call the context-first methods on File directly.
func (f *File) NoCtx() FileNoCtx { return FileNoCtx{f} }

func (v FileNoCtx) WriteAt(off int, data []byte) error {
	return v.f.WriteAt(context.Background(), off, data)
}

func (v FileNoCtx) Append(data []byte) (int, error) {
	return v.f.Append(context.Background(), data)
}

func (v FileNoCtx) ReadAt(off, n int) ([]byte, error) {
	return v.f.ReadAt(context.Background(), off, n)
}

func (v FileNoCtx) Read(n int) ([]byte, error) {
	return v.f.Read(context.Background(), n)
}

func (v FileNoCtx) AppendRecord(data []byte) (int, error) {
	return v.f.AppendRecord(context.Background(), data)
}

func (v FileNoCtx) AppendBatch(records [][]byte) ([]int, error) {
	return v.f.AppendBatch(context.Background(), records)
}

func (v FileNoCtx) Chunks() (int, error) {
	return v.f.Chunks(context.Background())
}

func (v FileNoCtx) ReadChunk(ci int) ([]byte, error) {
	return v.f.ReadChunk(context.Background(), ci)
}

func (v FileNoCtx) Subscribe(ops ...core.OpType) (*Listener, error) {
	return v.f.Subscribe(context.Background(), ops...)
}

// QueueNoCtx is the pre-context view of a Queue handle.
//
// Deprecated: call the context-first methods on Queue directly.
type QueueNoCtx struct{ q *Queue }

// NoCtx returns the pre-context view of the handle.
//
// Deprecated: call the context-first methods on Queue directly.
func (q *Queue) NoCtx() QueueNoCtx { return QueueNoCtx{q} }

func (v QueueNoCtx) Enqueue(item []byte) error {
	return v.q.Enqueue(context.Background(), item)
}

func (v QueueNoCtx) Dequeue() ([]byte, error) {
	return v.q.Dequeue(context.Background())
}

func (v QueueNoCtx) EnqueueBatch(items [][]byte) error {
	return v.q.EnqueueBatch(context.Background(), items)
}

func (v QueueNoCtx) Subscribe(ops ...core.OpType) (*Listener, error) {
	return v.q.Subscribe(context.Background(), ops...)
}

// CustomNoCtx is the pre-context view of a Custom handle.
//
// Deprecated: call the context-first methods on Custom directly.
type CustomNoCtx struct{ cu *Custom }

// NoCtx returns the pre-context view of the handle.
//
// Deprecated: call the context-first methods on Custom directly.
func (cu *Custom) NoCtx() CustomNoCtx { return CustomNoCtx{cu} }

func (v CustomNoCtx) Blocks() (int, error) {
	return v.cu.Blocks(context.Background())
}

func (v CustomNoCtx) Exec(ci int, op core.OpType, args ...[]byte) ([][]byte, error) {
	return v.cu.Exec(context.Background(), ci, op, args...)
}

func (v CustomNoCtx) Grow() error {
	return v.cu.Grow(context.Background())
}

func (v CustomNoCtx) Subscribe(ops ...core.OpType) (*Listener, error) {
	return v.cu.Subscribe(context.Background(), ops...)
}
