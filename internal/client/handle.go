package client

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"jiffy/internal/core"
	"jiffy/internal/ds"
	"jiffy/internal/proto"
)

// handle is the shared machinery under every data-structure handle:
// the cached partition map, staleness-driven refresh, and data-plane
// dispatch.
type handle struct {
	c    *Client
	path core.Path

	mu   sync.RWMutex
	pmap ds.PartitionMap
}

// newHandle opens a prefix and validates its data-structure type.
func (c *Client) newHandle(path core.Path, want core.DSType) (*handle, error) {
	m, _, err := c.open(path)
	if err != nil {
		return nil, err
	}
	if m.Type != want {
		return nil, fmt.Errorf("client: prefix %q holds a %v, not a %v: %w",
			path, m.Type, want, core.ErrWrongType)
	}
	return &handle{c: c, path: path, pmap: m}, nil
}

// snapshot returns the cached partition map.
func (h *handle) snapshot() ds.PartitionMap {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return h.pmap
}

// refresh re-fetches the partition map from the controller. It only
// installs maps with a newer epoch, so concurrent refreshes can't
// regress the cache.
func (h *handle) refresh() error {
	m, _, err := h.c.open(h.path)
	if err != nil {
		return err
	}
	h.install(m)
	return nil
}

// install adopts a map if it is newer than the cached one.
func (h *handle) install(m ds.PartitionMap) {
	h.mu.Lock()
	if m.Epoch >= h.pmap.Epoch {
		h.pmap = m
	}
	h.mu.Unlock()
}

// requestScale asks the controller to grow the structure at block and
// installs the refreshed map from the response.
func (h *handle) requestScale(block core.BlockID) error {
	m, err := h.c.requestScale(h.path, block)
	if err != nil {
		return err
	}
	h.install(m)
	return nil
}

// do executes one data-plane op against a block.
func (h *handle) do(info core.BlockInfo, op core.OpType, args [][]byte) ([][]byte, error) {
	conn, err := h.c.dataConn(info.Server)
	if err != nil {
		return nil, err
	}
	payload, err := conn.Call(proto.MethodDataOp, ds.EncodeRequest(op, info.ID, args))
	if err != nil {
		if errors.Is(err, core.ErrRedirect) {
			// The payload names the block to retry against.
			next, perr := ds.ParseRedirect(payload)
			if perr != nil {
				return nil, perr
			}
			return nil, &redirect{next: next}
		}
		return nil, err
	}
	return ds.DecodeVals(payload)
}

// redirect is the client-side form of a queue head/tail redirection.
type redirect struct{ next core.BlockInfo }

func (r *redirect) Error() string { return core.ErrRedirect.Error() }
func (r *redirect) Unwrap() error { return core.ErrRedirect }

// backoff sleeps briefly between retries; attempt is zero-based.
func backoff(attempt int) {
	d := time.Duration(attempt+1) * 200 * time.Microsecond
	if d > 5*time.Millisecond {
		d = 5 * time.Millisecond
	}
	time.Sleep(d)
}

// retryLimit exposes the client's retry bound to the typed handles.
func (h *handle) retryLimit() int { return h.c.retry }

// errRetriesExhausted wraps the final error after the retry budget is
// spent.
func errRetriesExhausted(op string, err error) error {
	return fmt.Errorf("client: %s: retries exhausted: %w", op, err)
}
