package client

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"jiffy/internal/core"
	"jiffy/internal/ds"
	"jiffy/internal/obs"
	"jiffy/internal/proto"
	"jiffy/internal/wire"
)

// handle is the shared machinery under every data-structure handle:
// the cached partition map, staleness-driven refresh, and data-plane
// dispatch.
type handle struct {
	c    *Client
	path core.Path

	mu   sync.RWMutex
	pmap ds.PartitionMap
}

// newHandle opens a prefix and validates its data-structure type.
func (c *Client) newHandle(ctx context.Context, path core.Path, want core.DSType) (*handle, error) {
	m, _, err := c.open(ctx, path)
	if err != nil {
		return nil, err
	}
	if m.Type != want {
		return nil, fmt.Errorf("client: prefix %q holds a %v, not a %v: %w",
			path, m.Type, want, core.ErrWrongType)
	}
	return &handle{c: c, path: path, pmap: m}, nil
}

// snapshot returns the cached partition map.
func (h *handle) snapshot() ds.PartitionMap {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return h.pmap
}

// refresh re-fetches the partition map from the controller. It only
// installs maps with a newer epoch, so concurrent refreshes can't
// regress the cache.
func (h *handle) refresh(ctx context.Context) error {
	if obs.On() {
		h.c.mapRefreshes.Inc()
	}
	m, _, err := h.c.open(ctx, h.path)
	if err != nil {
		return err
	}
	h.install(m)
	return nil
}

// install adopts a map if it is newer than the cached one.
func (h *handle) install(m ds.PartitionMap) {
	h.mu.Lock()
	if m.Epoch >= h.pmap.Epoch {
		h.pmap = m
	}
	h.mu.Unlock()
}

// requestScale asks the controller to grow the structure at block and
// installs the refreshed map from the response.
func (h *handle) requestScale(ctx context.Context, block core.BlockID) error {
	m, err := h.c.requestScale(ctx, h.path, block)
	if err != nil {
		return err
	}
	h.install(m)
	return nil
}

// do executes one data-plane op against a block. Connection-level
// failures evict the pooled session so the next attempt re-dials.
// Every call feeds the per-server health tracker (latency EWMA +
// windowed quantile — allocation-free, so the PR 9 small-op hot path
// keeps its ceilings), and when a breaker policy is installed an open
// breaker fails the call fast with a typed degraded error instead of
// queueing behind a gray-failed server.
func (h *handle) do(ctx context.Context, info core.BlockInfo, op core.OpType, args [][]byte) ([][]byte, error) {
	if h.c.breakerOn {
		if retryAfter, ok := h.c.health.allow(info.Server); !ok {
			return nil, degradedErr(info.Server, retryAfter)
		}
	}
	conn, err := h.c.dataConn(info.Server)
	if err != nil {
		// An unreachable server is a connection failure like any other:
		// classify it so retries avoid the server and reads fall back
		// along the replica chain. It also strikes the server's breaker.
		h.c.health.record(info.Server, 0, true)
		return nil, fmt.Errorf("client: dial %s: %v: %w", info.Server, err, core.ErrClosed)
	}
	// Encode into a pooled buffer: Call stages the frame into the
	// session's write buffer before returning, so the request bytes can
	// be recycled immediately after. Requests carrying large bodies
	// (writes, puts) skip the encode copy entirely: the header and
	// length prefixes go into the pooled buffer and the caller's arg
	// slices ride to the socket as scatter-gather segments.
	var payload []byte
	var pooled bool
	start := time.Now()
	if argsBytes(args) >= vecRequestThreshold {
		vec, buf := ds.AppendRequestVec(wire.GetBuf(), op, info.ID, args)
		payload, err = conn.CallVecContext(ctx, proto.MethodDataOp, vec)
		wire.PutBuf(buf)
	} else {
		// Small ops borrow the response: the session hands back a pooled
		// buffer instead of a per-call heap copy, and do() returns it to
		// the pool once the values are decoded (and copied) out.
		req := ds.AppendRequest(wire.GetBuf(), op, info.ID, args)
		payload, pooled, err = conn.CallBorrowedContext(ctx, proto.MethodDataOp, req)
		wire.PutBuf(req)
	}
	// Session failures strike the server's health; anything the server
	// actually answered (including op-level errors) is a latency sample.
	// Caller-context expiry is neither: it says nothing about the server.
	if cerr := ctxErr(err); cerr == nil {
		h.c.health.record(info.Server, time.Since(start), err != nil && isConnErr(err))
	}
	if err != nil {
		if isConnErr(err) {
			h.c.dropData(info.Server)
			return nil, err
		}
		if errors.Is(err, core.ErrRedirect) {
			if obs.On() {
				h.c.rpcm.Redirects.Inc()
			}
			// The payload names the block to retry against. ParseRedirect
			// copies both fields out, so the borrowed buffer can be
			// recycled right after.
			next, perr := ds.ParseRedirect(payload)
			if pooled {
				wire.PutBuf(payload)
			}
			if perr != nil {
				return nil, perr
			}
			return nil, &redirect{next: next}
		}
		if pooled {
			wire.PutBuf(payload)
		}
		return nil, err
	}
	vals, derr := ds.DecodeVals(payload)
	if pooled {
		// Vals alias the borrowed buffer: copy them out (exact-size
		// allocations) before recycling it.
		for i, v := range vals {
			vals[i] = append([]byte(nil), v...)
		}
		wire.PutBuf(payload)
	}
	return vals, derr
}

// vecRequestThreshold is the total argument size above which do()
// switches to the scatter-gather request encoding. Below it, one
// contiguous copy into a pooled buffer is cheaper than the extra
// segment bookkeeping.
const vecRequestThreshold = 4 * core.KB

// argsBytes sums the argument payload sizes of one op.
func argsBytes(args [][]byte) int {
	n := 0
	for _, a := range args {
		n += len(a)
	}
	return n
}

// doBatch ships a group of ops bound for one server as a single
// MethodDataOpBatch frame and returns the per-op results. A returned
// error means the whole call failed (encode, connection, or decode);
// op-level failures live inside the results. Connection-level failures
// evict the pooled session like the single-op path.
func (h *handle) doBatch(ctx context.Context, server string, ops []ds.BatchOp) ([]ds.BatchResult, error) {
	if obs.On() {
		h.c.batchSizes.Observe(int64(len(ops)))
	}
	if h.c.breakerOn {
		if retryAfter, ok := h.c.health.allow(server); !ok {
			return nil, degradedErr(server, retryAfter)
		}
	}
	conn, err := h.c.dataConn(server)
	if err != nil {
		h.c.health.record(server, 0, true)
		return nil, fmt.Errorf("client: dial %s: %v: %w", server, err, core.ErrClosed)
	}
	req := ds.AppendBatchRequest(wire.GetBuf(), ops)
	start := time.Now()
	payload, err := conn.CallContext(ctx, proto.MethodDataOpBatch, req)
	wire.PutBuf(req)
	if cerr := ctxErr(err); cerr == nil {
		h.c.health.record(server, time.Since(start), err != nil && isConnErr(err))
	}
	if err != nil {
		if isConnErr(err) {
			h.c.dropData(server)
		}
		return nil, err
	}
	return ds.DecodeBatchResults(payload)
}

// redirect is the client-side form of a queue head/tail redirection.
type redirect struct{ next core.BlockInfo }

func (r *redirect) Error() string { return core.ErrRedirect.Error() }
func (r *redirect) Unwrap() error { return core.ErrRedirect }

// isConnErr reports whether err means the session (not the operation)
// failed: the connection died mid-call or the call timed out. Both are
// retryable after the pooled session is evicted and re-dialed — unless
// the caller's context is what expired, which ctxErr distinguishes.
func isConnErr(err error) bool {
	return errors.Is(err, core.ErrClosed) || errors.Is(err, core.ErrTimeout)
}

// ctxErr extracts the caller's context error from err, if any. A call
// that failed because the caller's deadline expired or the caller
// canceled must not be retried: the rpc layer wraps those failures so
// both the typed sentinel and the context error are visible.
func ctxErr(err error) error {
	if errors.Is(err, context.Canceled) {
		return context.Canceled
	}
	if errors.Is(err, context.DeadlineExceeded) {
		return context.DeadlineExceeded
	}
	return nil
}

// backoffDelay computes the retry delay for a zero-based attempt:
// linear growth capped at limit, so a full retry budget stays bounded.
func backoffDelay(attempt int, limit time.Duration) time.Duration {
	d := time.Duration(attempt+1) * 200 * time.Microsecond
	if limit <= 0 {
		limit = 5 * time.Millisecond
	}
	if d > limit {
		d = limit
	}
	return d
}

// backoff sleeps briefly between retries (attempt is zero-based),
// counts the retry, and aborts early when ctx ends — the loop must
// stop retrying the moment the caller's deadline expires.
func (h *handle) backoff(ctx context.Context, attempt int) error {
	if obs.On() {
		h.c.rpcm.Retries.Inc()
	}
	t := time.NewTimer(backoffDelay(attempt, h.c.policy.MaxBackoff))
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// backoff is the context-free variant used by code without a retry
// context of its own.
func backoff(attempt int) {
	time.Sleep(backoffDelay(attempt, 0))
}

// retryLimit exposes the client's retry bound to the typed handles.
func (h *handle) retryLimit() int { return h.c.policy.Limit }

// throttleLimit exposes the quota-refusal retry bound.
func (h *handle) throttleLimit() int { return h.c.policy.ThrottleLimit }

// waitThrottle honors a quota refusal's backpressure: sleep the
// server's retry-after hint — capped by MaxThrottleWait, falling back
// to the normal backoff step when the refusal carries no hint — and
// abort early when ctx ends.
func (h *handle) waitThrottle(ctx context.Context, attempt int, err error) error {
	if obs.On() {
		h.c.throttleWaits.Inc()
	}
	d := core.RetryAfterOf(err)
	if d <= 0 {
		d = backoffDelay(attempt, h.c.policy.MaxBackoff)
	}
	if lim := h.c.policy.MaxThrottleWait; lim > 0 && d > lim {
		d = lim
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// errRetriesExhausted wraps the final error after the retry budget is
// spent.
func errRetriesExhausted(op string, err error) error {
	return fmt.Errorf("client: %s: retries exhausted: %w", op, err)
}

// lostErr is the fail-fast error for a partition entry the controller
// marked Lost: every replica died with no flushed copy, so no amount
// of retrying will bring the data back.
func lostErr(e ds.PartitionEntry) error {
	return fmt.Errorf("client: block %d: %w", e.Info.ID, core.ErrBlockLost)
}
