package client

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"jiffy/internal/core"
	"jiffy/internal/ds"
	"jiffy/internal/proto"
	"jiffy/internal/wire"
)

// handle is the shared machinery under every data-structure handle:
// the cached partition map, staleness-driven refresh, and data-plane
// dispatch.
type handle struct {
	c    *Client
	path core.Path

	mu   sync.RWMutex
	pmap ds.PartitionMap
}

// newHandle opens a prefix and validates its data-structure type.
func (c *Client) newHandle(path core.Path, want core.DSType) (*handle, error) {
	m, _, err := c.open(path)
	if err != nil {
		return nil, err
	}
	if m.Type != want {
		return nil, fmt.Errorf("client: prefix %q holds a %v, not a %v: %w",
			path, m.Type, want, core.ErrWrongType)
	}
	return &handle{c: c, path: path, pmap: m}, nil
}

// snapshot returns the cached partition map.
func (h *handle) snapshot() ds.PartitionMap {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return h.pmap
}

// refresh re-fetches the partition map from the controller. It only
// installs maps with a newer epoch, so concurrent refreshes can't
// regress the cache.
func (h *handle) refresh() error {
	m, _, err := h.c.open(h.path)
	if err != nil {
		return err
	}
	h.install(m)
	return nil
}

// install adopts a map if it is newer than the cached one.
func (h *handle) install(m ds.PartitionMap) {
	h.mu.Lock()
	if m.Epoch >= h.pmap.Epoch {
		h.pmap = m
	}
	h.mu.Unlock()
}

// requestScale asks the controller to grow the structure at block and
// installs the refreshed map from the response.
func (h *handle) requestScale(block core.BlockID) error {
	m, err := h.c.requestScale(h.path, block)
	if err != nil {
		return err
	}
	h.install(m)
	return nil
}

// do executes one data-plane op against a block. Connection-level
// failures evict the pooled session so the next attempt re-dials.
func (h *handle) do(info core.BlockInfo, op core.OpType, args [][]byte) ([][]byte, error) {
	conn, err := h.c.dataConn(info.Server)
	if err != nil {
		// An unreachable server is a connection failure like any other:
		// classify it so retries avoid the server and reads fall back
		// along the replica chain.
		return nil, fmt.Errorf("client: dial %s: %v: %w", info.Server, err, core.ErrClosed)
	}
	// Encode into a pooled buffer: Call stages the frame into the
	// session's write buffer before returning, so the request bytes can
	// be recycled immediately after.
	req := ds.AppendRequest(wire.GetBuf(), op, info.ID, args)
	payload, err := conn.Call(proto.MethodDataOp, req)
	wire.PutBuf(req)
	if err != nil {
		if isConnErr(err) {
			h.c.dropData(info.Server)
			return nil, err
		}
		if errors.Is(err, core.ErrRedirect) {
			// The payload names the block to retry against.
			next, perr := ds.ParseRedirect(payload)
			if perr != nil {
				return nil, perr
			}
			return nil, &redirect{next: next}
		}
		return nil, err
	}
	return ds.DecodeVals(payload)
}

// doBatch ships a group of ops bound for one server as a single
// MethodDataOpBatch frame and returns the per-op results. A returned
// error means the whole call failed (encode, connection, or decode);
// op-level failures live inside the results. Connection-level failures
// evict the pooled session like the single-op path.
func (h *handle) doBatch(server string, ops []ds.BatchOp) ([]ds.BatchResult, error) {
	conn, err := h.c.dataConn(server)
	if err != nil {
		return nil, fmt.Errorf("client: dial %s: %v: %w", server, err, core.ErrClosed)
	}
	req := ds.AppendBatchRequest(wire.GetBuf(), ops)
	payload, err := conn.Call(proto.MethodDataOpBatch, req)
	wire.PutBuf(req)
	if err != nil {
		if isConnErr(err) {
			h.c.dropData(server)
		}
		return nil, err
	}
	return ds.DecodeBatchResults(payload)
}

// redirect is the client-side form of a queue head/tail redirection.
type redirect struct{ next core.BlockInfo }

func (r *redirect) Error() string { return core.ErrRedirect.Error() }
func (r *redirect) Unwrap() error { return core.ErrRedirect }

// isConnErr reports whether err means the session (not the operation)
// failed: the connection died mid-call or the call timed out. Both are
// retryable after the pooled session is evicted and re-dialed.
func isConnErr(err error) bool {
	return errors.Is(err, core.ErrClosed) || errors.Is(err, core.ErrTimeout)
}

// backoffDelay computes the retry delay for a zero-based attempt:
// linear growth capped at 5ms, so a full retry budget stays bounded.
func backoffDelay(attempt int) time.Duration {
	d := time.Duration(attempt+1) * 200 * time.Microsecond
	if d > 5*time.Millisecond {
		d = 5 * time.Millisecond
	}
	return d
}

// backoff sleeps briefly between retries; attempt is zero-based.
func backoff(attempt int) {
	time.Sleep(backoffDelay(attempt))
}

// retryLimit exposes the client's retry bound to the typed handles.
func (h *handle) retryLimit() int { return h.c.retry }

// errRetriesExhausted wraps the final error after the retry budget is
// spent.
func errRetriesExhausted(op string, err error) error {
	return fmt.Errorf("client: %s: retries exhausted: %w", op, err)
}
