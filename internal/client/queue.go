package client

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"jiffy/internal/core"
)

// Queue is the client handle for a Jiffy FIFO queue (§5.2). The client
// caches the head and tail segments ("the controller only stores the
// head and the tail blocks ... which the client caches and updates");
// redirects from drained/sealed segments walk the cache forward without
// a controller round trip.
type Queue struct {
	h *handle

	mu   sync.Mutex
	head core.BlockInfo
	tail core.BlockInfo
}

// Path returns the handle's address prefix.
func (q *Queue) Path() core.Path { return q.h.path }

// ends returns the cached head/tail, seeding them from the map.
func (q *Queue) ends() (core.BlockInfo, core.BlockInfo, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.head.Server == "" || q.tail.Server == "" {
		m := q.h.snapshot()
		h, ok1 := m.Head()
		t, ok2 := m.Tail()
		if !ok1 || !ok2 {
			return core.BlockInfo{}, core.BlockInfo{}, core.ErrNotFound
		}
		if h.Lost {
			return core.BlockInfo{}, core.BlockInfo{}, lostErr(h)
		}
		if t.Lost {
			return core.BlockInfo{}, core.BlockInfo{}, lostErr(t)
		}
		q.head, q.tail = h.Info, t.Info
	}
	return q.head, q.tail, nil
}

// reseed drops the cached ends and refreshes the map.
func (q *Queue) reseed(ctx context.Context) error {
	if err := q.h.refresh(ctx); err != nil {
		return err
	}
	m := q.h.snapshot()
	h, ok1 := m.Head()
	t, ok2 := m.Tail()
	if !ok1 || !ok2 {
		return core.ErrNotFound
	}
	q.mu.Lock()
	q.head, q.tail = h.Info, t.Info
	q.mu.Unlock()
	return nil
}

// Enqueue appends an item to the queue tail.
func (q *Queue) Enqueue(ctx context.Context, item []byte) error {
	var lastErr error
	throttles, degraded := 0, 0
	for attempt := 0; attempt < q.h.retryLimit(); attempt++ {
		_, tail, err := q.ends()
		if err != nil {
			return err
		}
		_, err = q.h.do(ctx, tail, core.OpEnqueue, [][]byte{item})
		switch {
		case err == nil:
			return nil
		case ctxErr(err) != nil:
			return err
		case errors.Is(err, core.ErrServerDegraded):
			degraded++
			if degraded > 1 {
				return err
			}
			lastErr = err
			if rerr := q.reseed(ctx); rerr != nil && !isConnErr(rerr) {
				return rerr
			}
			if berr := q.h.backoff(ctx, attempt); berr != nil {
				return berr
			}
		case errors.Is(err, core.ErrRedirect):
			// The tail moved; follow the link.
			var r *redirect
			if errors.As(err, &r) {
				q.mu.Lock()
				q.tail = r.next
				q.mu.Unlock()
			} else if rerr := q.reseed(ctx); rerr != nil {
				return rerr
			}
		case errors.Is(err, core.ErrBlockFull):
			lastErr = err
			if serr := q.h.requestScale(ctx, tail.ID); serr != nil &&
				!errors.Is(serr, core.ErrNoCapacity) {
				return serr
			}
			if rerr := q.reseed(ctx); rerr != nil {
				return rerr
			}
			// A bounded queue at its block limit cannot grow: report
			// backpressure to the producer instead of spinning.
			if m := q.h.snapshot(); m.AtMaxBlocks() {
				if t, ok := m.Tail(); ok && t.Info.ID == tail.ID {
					return fmt.Errorf("client: bounded queue full: %w", core.ErrBlockFull)
				}
			}
			if berr := q.h.backoff(ctx, attempt); berr != nil {
				return berr
			}
		case errors.Is(err, core.ErrStaleEpoch):
			lastErr = err
			if rerr := q.reseed(ctx); rerr != nil {
				return rerr
			}
			if berr := q.h.backoff(ctx, attempt); berr != nil {
				return berr
			}
		case errors.Is(err, core.ErrQuotaExceeded):
			throttles++
			if throttles > q.h.throttleLimit() {
				return err
			}
			if werr := q.h.waitThrottle(ctx, attempt, err); werr != nil {
				return werr
			}
		case isConnErr(err):
			// Session died or timed out: re-dial and re-learn the ends
			// on the next attempt.
			lastErr = err
			if rerr := q.reseed(ctx); rerr != nil && !isConnErr(rerr) {
				return rerr
			}
			if berr := q.h.backoff(ctx, attempt); berr != nil {
				return berr
			}
		default:
			return err
		}
	}
	return errRetriesExhausted("enqueue", lastErr)
}

// Dequeue removes and returns the oldest item; returns ErrEmpty when
// the queue has no pending items.
func (q *Queue) Dequeue(ctx context.Context) ([]byte, error) {
	var lastErr error
	throttles, degraded := 0, 0
	for attempt := 0; attempt < q.h.retryLimit(); attempt++ {
		head, _, err := q.ends()
		if err != nil {
			return nil, err
		}
		res, err := q.h.do(ctx, head, core.OpDequeue, nil)
		switch {
		case err == nil:
			return res[0], nil
		case ctxErr(err) != nil:
			return nil, err
		case errors.Is(err, core.ErrServerDegraded):
			degraded++
			if degraded > 1 {
				return nil, err
			}
			lastErr = err
			if rerr := q.reseed(ctx); rerr != nil && !isConnErr(rerr) {
				return nil, rerr
			}
			if berr := q.h.backoff(ctx, attempt); berr != nil {
				return nil, berr
			}
		case errors.Is(err, core.ErrRedirect):
			// The head segment drained; advance to its successor.
			var r *redirect
			if errors.As(err, &r) {
				q.mu.Lock()
				q.head = r.next
				q.mu.Unlock()
			} else if rerr := q.reseed(ctx); rerr != nil {
				return nil, rerr
			}
		case errors.Is(err, core.ErrEmpty):
			return nil, err
		case errors.Is(err, core.ErrStaleEpoch):
			lastErr = err
			if rerr := q.reseed(ctx); rerr != nil {
				return nil, rerr
			}
			if berr := q.h.backoff(ctx, attempt); berr != nil {
				return nil, berr
			}
		case errors.Is(err, core.ErrQuotaExceeded):
			throttles++
			if throttles > q.h.throttleLimit() {
				return nil, err
			}
			if werr := q.h.waitThrottle(ctx, attempt, err); werr != nil {
				return nil, werr
			}
		case isConnErr(err):
			lastErr = err
			if rerr := q.reseed(ctx); rerr != nil && !isConnErr(rerr) {
				return nil, rerr
			}
			if berr := q.h.backoff(ctx, attempt); berr != nil {
				return nil, berr
			}
		default:
			return nil, err
		}
	}
	return nil, errRetriesExhausted("dequeue", lastErr)
}

// Peek returns the oldest pending item without consuming it; returns
// ErrEmpty when the queue has no pending items. Peeks follow the same
// redirect chain as dequeues, and on the server they share the
// segment's read lock, so concurrent peeks never serialize against
// each other.
func (q *Queue) Peek(ctx context.Context) ([]byte, error) {
	var lastErr error
	throttles, degraded := 0, 0
	for attempt := 0; attempt < q.h.retryLimit(); attempt++ {
		head, _, err := q.ends()
		if err != nil {
			return nil, err
		}
		// Peeks are idempotent reads: they may hedge against another
		// member of the head segment's chain.
		res, err := q.h.doRead(ctx, head, core.OpQueuePeek, nil)
		switch {
		case err == nil:
			return res[0], nil
		case ctxErr(err) != nil:
			return nil, err
		case errors.Is(err, core.ErrServerDegraded):
			degraded++
			if degraded > 1 {
				return nil, err
			}
			lastErr = err
			if rerr := q.reseed(ctx); rerr != nil && !isConnErr(rerr) {
				return nil, rerr
			}
			if berr := q.h.backoff(ctx, attempt); berr != nil {
				return nil, berr
			}
		case errors.Is(err, core.ErrRedirect):
			// The head segment drained; advance to its successor.
			var r *redirect
			if errors.As(err, &r) {
				q.mu.Lock()
				q.head = r.next
				q.mu.Unlock()
			} else if rerr := q.reseed(ctx); rerr != nil {
				return nil, rerr
			}
		case errors.Is(err, core.ErrEmpty):
			return nil, err
		case errors.Is(err, core.ErrStaleEpoch):
			lastErr = err
			if rerr := q.reseed(ctx); rerr != nil {
				return nil, rerr
			}
			if berr := q.h.backoff(ctx, attempt); berr != nil {
				return nil, berr
			}
		case errors.Is(err, core.ErrQuotaExceeded):
			throttles++
			if throttles > q.h.throttleLimit() {
				return nil, err
			}
			if werr := q.h.waitThrottle(ctx, attempt, err); werr != nil {
				return nil, werr
			}
		case isConnErr(err):
			lastErr = err
			if rerr := q.reseed(ctx); rerr != nil && !isConnErr(rerr) {
				return nil, rerr
			}
			if berr := q.h.backoff(ctx, attempt); berr != nil {
				return nil, berr
			}
		default:
			return nil, err
		}
	}
	return nil, errRetriesExhausted("peek", lastErr)
}

// Subscribe registers for notifications on the queue's blocks —
// dataflow consumers subscribe to enqueue to learn when channel data is
// available (§5.2).
func (q *Queue) Subscribe(ctx context.Context, ops ...core.OpType) (*Listener, error) {
	return q.h.c.subscribe(ctx, q.h, ops)
}
