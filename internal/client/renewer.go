package client

import (
	"context"
	"sync"
	"time"

	"jiffy/internal/core"
)

// Renewer periodically renews leases for a set of prefixes — the
// client-side renewal loop a job's master process runs for its active
// tasks (§3.2, §5.1 "The master process handles explicit lease
// renewals"). Thanks to hierarchical propagation, renewing one prefix
// per running task suffices to keep all dependent data alive.
type Renewer struct {
	c        *Client
	interval time.Duration

	mu    sync.Mutex
	paths map[core.Path]struct{}

	stop chan struct{}
	done chan struct{}
	once sync.Once
}

// StartRenewer launches a renewal loop at the given interval (a
// fraction of the lease duration; the paper renews 1s leases a few
// times per second). The renewer is attached to the client and stopped
// by Client.Close.
func (c *Client) StartRenewer(interval time.Duration, paths ...core.Path) *Renewer {
	r := &Renewer{
		c:        c,
		interval: interval,
		paths:    make(map[core.Path]struct{}),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	for _, p := range paths {
		r.paths[p] = struct{}{}
	}
	c.mu.Lock()
	c.renewers = append(c.renewers, r)
	c.mu.Unlock()
	go r.loop()
	return r
}

// Add registers more prefixes to renew.
func (r *Renewer) Add(paths ...core.Path) {
	r.mu.Lock()
	for _, p := range paths {
		r.paths[p] = struct{}{}
	}
	r.mu.Unlock()
}

// Remove stops renewing the given prefixes (a finished task releases
// its claim; the lease lapses and Jiffy reclaims the memory).
func (r *Renewer) Remove(paths ...core.Path) {
	r.mu.Lock()
	for _, p := range paths {
		delete(r.paths, p)
	}
	r.mu.Unlock()
}

// Stop halts the loop. Idempotent.
func (r *Renewer) Stop() {
	r.once.Do(func() { close(r.stop) })
	<-r.done
}

func (r *Renewer) loop() {
	defer close(r.done)
	ticker := time.NewTicker(r.interval)
	defer ticker.Stop()
	for {
		select {
		case <-r.stop:
			return
		case <-ticker.C:
			r.renewOnce()
		}
	}
}

func (r *Renewer) renewOnce() {
	r.mu.Lock()
	paths := make([]core.Path, 0, len(r.paths))
	for p := range r.paths {
		paths = append(paths, p)
	}
	r.mu.Unlock()
	if len(paths) == 0 {
		return
	}
	// Renewal failures are retried on the next tick; the flush-on-
	// expiry guarantee means a transient failure cannot lose data.
	// The session RPC timeout bounds the sweep; no per-tick deadline,
	// since a late renewal is still better than a dropped one.
	r.c.RenewLease(context.Background(), paths...)
}
