// Package client implements the Jiffy client library: the user-facing
// API of Table 1 in the paper. A Client connects to the controller for
// control operations (jobs, prefixes, leases, flush/load) and opens
// direct data-plane sessions to the memory servers hosting its blocks
// ("access data directly from the memory servers", §2). Data-structure
// handles cache partition maps and refresh them when the data plane
// reports staleness — the client-side half of seamless repartitioning.
//
// The API is context-first: every control- and data-path call takes a
// context.Context whose deadline bounds the call (taking precedence
// over the session-level RPC timeout) and whose cancellation fails
// pending calls with context.Canceled wrapped in the typed errors.
// Pre-context signatures survive as deprecated NoCtx views (compat.go).
package client

import (
	"context"
	"fmt"
	"sync"
	"time"

	"jiffy/internal/core"
	"jiffy/internal/ds"
	"jiffy/internal/obs"
	"jiffy/internal/proto"
	"jiffy/internal/rpc"
)

// RetryPolicy bounds the data-plane recovery loops.
type RetryPolicy struct {
	// Limit bounds retries after map refreshes (default 32).
	Limit int
	// MaxBackoff caps the linearly growing between-retry delay
	// (default 5ms), keeping a full retry budget bounded.
	MaxBackoff time.Duration
	// ThrottleLimit bounds retries after admission-control refusals
	// (default 4); past it the typed ErrQuotaExceeded surfaces to the
	// caller, retry-after hint intact. Throttles are counted separately
	// from Limit: quota pressure is persistent in a way staleness is
	// not, so a throttled tenant should surface backpressure quickly
	// rather than burn the full recovery budget.
	ThrottleLimit int
	// MaxThrottleWait caps the server-suggested retry-after honored
	// between throttled attempts (default 50ms), so a deeply
	// over-quota tenant cannot be parked for seconds inside one call.
	MaxThrottleWait time.Duration
}

// DefaultRetryPolicy returns the retry bounds used when no
// WithRetryPolicy option is given.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{
		Limit:           32,
		MaxBackoff:      5 * time.Millisecond,
		ThrottleLimit:   4,
		MaxThrottleWait: 50 * time.Millisecond,
	}
}

// config collects the dialing/retry/telemetry knobs behind the
// functional options.
type config struct {
	dial     func(addr string) (*rpc.Client, error)
	policy   RetryPolicy
	timeout  time.Duration
	exporter obs.SpanExporter
}

// Option configures Connect/ConnectMulti.
type Option func(*config)

// WithDial customizes outbound connections (tests inject mem://
// transports and fault injectors).
func WithDial(dial func(addr string) (*rpc.Client, error)) Option {
	return func(c *config) { c.dial = dial }
}

// WithRPCTimeout bounds every control- and data-plane call so a dead
// peer fails the call instead of hanging it. Zero means
// core.DefaultRPCTimeout; negative disables the bound. A context
// deadline on an individual call always takes precedence.
func WithRPCTimeout(d time.Duration) Option {
	return func(c *config) { c.timeout = d }
}

// WithRetryPolicy overrides the data-plane retry bounds. Zero fields
// keep their defaults.
func WithRetryPolicy(p RetryPolicy) Option {
	return func(c *config) {
		if p.Limit > 0 {
			c.policy.Limit = p.Limit
		}
		if p.MaxBackoff > 0 {
			c.policy.MaxBackoff = p.MaxBackoff
		}
		if p.ThrottleLimit > 0 {
			c.policy.ThrottleLimit = p.ThrottleLimit
		}
		if p.MaxThrottleWait > 0 {
			c.policy.MaxThrottleWait = p.MaxThrottleWait
		}
	}
}

// WithTracing installs a span exporter: every RPC issued by the client
// records a span, and the trace/span IDs ride the wire to the servers
// so server-side spans nest under client calls.
func WithTracing(exp obs.SpanExporter) Option {
	return func(c *config) { c.exporter = exp }
}

// Client is one application's connection to a Jiffy cluster. It may
// span several controller servers: the paper's multi-controller
// scaling hash-partitions jobs across controllers (§4.2.1), and the
// client mirrors that hash to route each job's control operations to
// its owning controller.
type Client struct {
	ctrlAddrs []string
	ctrls     []*rpc.Client
	pool      *rpc.Pool
	policy    RetryPolicy

	// ctrlIdx memoizes jobHash(job) % len(ctrls) so hot control paths
	// (lease renewal ticks, per-op scale requests) skip the hash.
	ctrlIdx sync.Map // core.JobID -> int

	// Telemetry: per-method RPC metrics (role "client"), client-loop
	// counters, and the optional tracer, all served via Obs().
	reg           *obs.Registry
	rpcm          *obs.RPCMetrics
	tracer        *obs.Tracer
	batchSizes    *obs.Histogram
	mapRefreshes  *obs.Counter
	staleRegroups *obs.Counter
	throttleWaits *obs.Counter

	mu sync.Mutex
	// routers dispatches push notifications per data-plane connection.
	routers map[string]*pushRouter

	renewers []*Renewer
	closed   bool
}

// Connect dials the controller (connect(jiffyAddress) in Table 1). ctx
// bounds the dial and initial handshake only; per-call contexts bound
// the individual operations that follow.
func Connect(ctx context.Context, controllerAddr string, opts ...Option) (*Client, error) {
	return ConnectMulti(ctx, []string{controllerAddr}, opts...)
}

// ConnectMulti dials a hash-partitioned controller group. The address
// order must match across every client and every memory-server
// assignment (each controller owns the jobs that hash to its index).
func ConnectMulti(ctx context.Context, controllerAddrs []string, opts ...Option) (*Client, error) {
	if len(controllerAddrs) == 0 {
		return nil, fmt.Errorf("client: no controller addresses")
	}
	cfg := config{policy: DefaultRetryPolicy(), timeout: core.DefaultRPCTimeout}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.timeout < 0 {
		cfg.timeout = 0 // explicit opt-out: unbounded calls
	}

	c := &Client{
		ctrlAddrs: controllerAddrs,
		policy:    cfg.policy,
		routers:   make(map[string]*pushRouter),
		reg:       obs.NewRegistry(),
		rpcm:      obs.NewRPCMetrics("client"),
	}
	if cfg.exporter != nil {
		c.tracer = obs.NewTracer(cfg.exporter, nil)
	}
	c.rpcm.Register(c.reg, proto.MethodName)
	c.batchSizes = c.reg.Histogram("jiffy_client_batch_ops",
		"Operations per batched data-plane call")
	c.mapRefreshes = c.reg.Counter("jiffy_client_map_refreshes_total",
		"Partition-map refreshes triggered by staleness or failures")
	c.staleRegroups = c.reg.Counter("jiffy_client_stale_regroups_total",
		"Batched calls regrouped after a stale partition map")
	c.throttleWaits = c.reg.Counter("jiffy_client_throttle_waits_total",
		"Retry-after waits honored following admission-control refusals")

	dial := rpc.WithTimeout(cfg.dial, cfg.timeout)
	dial = rpc.WithInstrumentation(dial, c.rpcm, c.tracer)
	c.pool = rpc.NewPool(dial)

	for _, addr := range controllerAddrs {
		if err := ctx.Err(); err != nil {
			for _, done := range c.ctrls {
				done.Close()
			}
			return nil, fmt.Errorf("client: connect: %w", err)
		}
		ctrl, err := dial(addr)
		if err != nil {
			for _, done := range c.ctrls {
				done.Close()
			}
			return nil, fmt.Errorf("client: connect controller %s: %w", addr, err)
		}
		c.ctrls = append(c.ctrls, ctrl)
	}
	return c, nil
}

// Obs exposes the client-side metric registry (per-method RPC stats,
// batch sizes, map refreshes) for embedding into an application's
// admin endpoint.
func (c *Client) Obs() *obs.Registry { return c.reg }

// ctrlFor routes a job to its owning controller, mirroring the
// controller-side hash partitioning. The hash→index mapping is
// memoized per job: clients touch the same few jobs on every lease
// tick and scale request, so the FNV walk is paid once per job.
func (c *Client) ctrlFor(job core.JobID) *rpc.Client {
	if len(c.ctrls) == 1 {
		return c.ctrls[0]
	}
	if idx, ok := c.ctrlIdx.Load(job); ok {
		return c.ctrls[idx.(int)]
	}
	idx := int(jobHash(job)) % len(c.ctrls)
	c.ctrlIdx.Store(job, idx)
	return c.ctrls[idx]
}

// jobHash is the FNV-32a hash both sides use to place jobs.
func jobHash(job core.JobID) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(job); i++ {
		h ^= uint32(job[i])
		h *= 16777619
	}
	return h
}

// ctrl preserves the single-controller call sites: operations that are
// not job-scoped go to the first controller.
func (c *Client) anyCtrl() *rpc.Client { return c.ctrls[0] }

// Close stops renewal agents and tears down every connection.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	renewers := c.renewers
	c.mu.Unlock()
	for _, r := range renewers {
		r.Stop()
	}
	for _, ctrl := range c.ctrls {
		ctrl.Close()
	}
	c.pool.Close()
	return nil
}

// --- control-plane operations (Table 1) -------------------------------------

// RegisterJob registers a job with the control plane.
func (c *Client) RegisterJob(ctx context.Context, job core.JobID) error {
	var resp proto.RegisterJobResp
	return c.ctrlFor(job).CallGobCtx(ctx, proto.MethodRegisterJob, proto.RegisterJobReq{Job: job}, &resp)
}

// DeregisterJob releases all of a job's resources.
func (c *Client) DeregisterJob(ctx context.Context, job core.JobID) error {
	var resp proto.DeregisterJobResp
	return c.ctrlFor(job).CallGobCtx(ctx, proto.MethodDeregisterJob, proto.DeregisterJobReq{Job: job}, &resp)
}

// CreatePrefix implements createAddrPrefix: adds an address prefix with
// optional extra DAG parents and an attached data structure.
func (c *Client) CreatePrefix(ctx context.Context, path core.Path, parents []core.Path, t core.DSType,
	initialBlocks int, leaseDuration time.Duration) (ds.PartitionMap, time.Duration, error) {
	var resp proto.CreatePrefixResp
	err := c.ctrlFor(path.Job()).CallGobCtx(ctx, proto.MethodCreatePrefix, proto.CreatePrefixReq{
		Path:          path,
		Parents:       parents,
		Type:          t,
		InitialBlocks: initialBlocks,
		LeaseDuration: leaseDuration,
	}, &resp)
	return resp.Map, resp.LeaseDuration, err
}

// CreateBoundedPrefix is CreatePrefix with a size bound: the structure
// never grows beyond maxBlocks blocks, and writers see ErrBlockFull
// when it is full — the generalization of the paper's maxQueueLength
// (§5.2). Consumers freeing space (dequeues, deletes) make writes
// succeed again.
func (c *Client) CreateBoundedPrefix(ctx context.Context, path core.Path, parents []core.Path, t core.DSType,
	initialBlocks, maxBlocks int, leaseDuration time.Duration) (ds.PartitionMap, time.Duration, error) {
	var resp proto.CreatePrefixResp
	err := c.ctrlFor(path.Job()).CallGobCtx(ctx, proto.MethodCreatePrefix, proto.CreatePrefixReq{
		Path:          path,
		Parents:       parents,
		Type:          t,
		InitialBlocks: initialBlocks,
		MaxBlocks:     maxBlocks,
		LeaseDuration: leaseDuration,
	}, &resp)
	return resp.Map, resp.LeaseDuration, err
}

// CreateHierarchy implements createHierarchy: builds the job's address
// hierarchy from an execution DAG.
func (c *Client) CreateHierarchy(ctx context.Context, job core.JobID, nodes []proto.DagNode,
	leaseDuration time.Duration) error {
	var resp proto.CreateHierarchyResp
	return c.ctrlFor(job).CallGobCtx(ctx, proto.MethodCreateHierarchy, proto.CreateHierarchyReq{
		Job: job, Nodes: nodes, LeaseDuration: leaseDuration,
	}, &resp)
}

// RemovePrefix explicitly reclaims a prefix.
func (c *Client) RemovePrefix(ctx context.Context, path core.Path) error {
	var resp proto.RemovePrefixResp
	return c.ctrlFor(path.Job()).CallGobCtx(ctx, proto.MethodRemovePrefix, proto.RemovePrefixReq{Path: path}, &resp)
}

// RenewLease implements renewLease for one or more prefixes; paths
// spanning several jobs are grouped and routed to each job's owning
// controller.
func (c *Client) RenewLease(ctx context.Context, paths ...core.Path) (int, error) {
	if len(c.ctrls) == 1 {
		var resp proto.RenewLeaseResp
		err := c.anyCtrl().CallGobCtx(ctx, proto.MethodRenewLease, proto.RenewLeaseReq{Paths: paths}, &resp)
		return resp.Renewed, err
	}
	byCtrl := make(map[*rpc.Client][]core.Path)
	for _, p := range paths {
		ctrl := c.ctrlFor(p.Job())
		byCtrl[ctrl] = append(byCtrl[ctrl], p)
	}
	total := 0
	for ctrl, group := range byCtrl {
		var resp proto.RenewLeaseResp
		if err := ctrl.CallGobCtx(ctx, proto.MethodRenewLease, proto.RenewLeaseReq{Paths: group}, &resp); err != nil {
			return total, err
		}
		total += resp.Renewed
	}
	return total, nil
}

// LeaseDuration implements getLeaseDuration.
func (c *Client) LeaseDuration(ctx context.Context, path core.Path) (time.Duration, error) {
	var resp proto.LeaseInfoResp
	err := c.ctrlFor(path.Job()).CallGobCtx(ctx, proto.MethodLeaseInfo, proto.LeaseInfoReq{Path: path}, &resp)
	return resp.Duration, err
}

// FlushPrefix implements flushAddrPrefix: checkpoint the prefix to the
// external store.
func (c *Client) FlushPrefix(ctx context.Context, path core.Path, externalPath string) (int, error) {
	var resp proto.FlushPrefixResp
	err := c.ctrlFor(path.Job()).CallGobCtx(ctx, proto.MethodFlushPrefix, proto.FlushPrefixReq{
		Path: path, ExternalPath: externalPath,
	}, &resp)
	return resp.Blocks, err
}

// LoadPrefix implements loadAddrPrefix: restore the prefix from the
// external store.
func (c *Client) LoadPrefix(ctx context.Context, path core.Path, externalPath string) error {
	var resp proto.LoadPrefixResp
	return c.ctrlFor(path.Job()).CallGobCtx(ctx, proto.MethodLoadPrefix, proto.LoadPrefixReq{
		Path: path, ExternalPath: externalPath,
	}, &resp)
}

// SaveControllerState checkpoints every controller's metadata to its
// persistent store (operators run this periodically; a replacement
// controller restores it with the -restore flag of jiffy-controller).
// With a controller group, controller i saves under "<key>-<i>".
func (c *Client) SaveControllerState(ctx context.Context, key string) error {
	if len(c.ctrls) == 1 {
		var resp proto.SaveStateResp
		return c.anyCtrl().CallGobCtx(ctx, proto.MethodSaveState, proto.SaveStateReq{Key: key}, &resp)
	}
	for i, ctrl := range c.ctrls {
		var resp proto.SaveStateResp
		if err := ctrl.CallGobCtx(ctx, proto.MethodSaveState,
			proto.SaveStateReq{Key: fmt.Sprintf("%s-%d", key, i)}, &resp); err != nil {
			return err
		}
	}
	return nil
}

// ControllerStats fetches controller statistics, aggregated across the
// controller group.
func (c *Client) ControllerStats(ctx context.Context) (proto.ControllerStatsResp, error) {
	var agg proto.ControllerStatsResp
	for _, ctrl := range c.ctrls {
		var resp proto.ControllerStatsResp
		if err := ctrl.CallGobCtx(ctx, proto.MethodControllerStats, proto.ControllerStatsReq{}, &resp); err != nil {
			return agg, err
		}
		agg.TotalBlocks += resp.TotalBlocks
		agg.FreeBlocks += resp.FreeBlocks
		agg.AllocatedBlocks += resp.AllocatedBlocks
		agg.Jobs += resp.Jobs
		agg.Prefixes += resp.Prefixes
		agg.Servers += resp.Servers
		agg.MetadataBytes += resp.MetadataBytes
	}
	return agg, nil
}

// DrainServer migrates every block off a memory server (graceful
// decommission). The server is removed from the membership first, so
// nothing new lands on it mid-drain; once the call returns it hosts no
// data and can be shut down. Not job-scoped: the drain is sent to
// every controller in the group.
func (c *Client) DrainServer(ctx context.Context, addr string) (int, error) {
	total := 0
	for _, ctrl := range c.ctrls {
		var resp proto.DrainServerResp
		if err := ctrl.CallGobCtx(ctx, proto.MethodDrainServer, proto.DrainServerReq{Addr: addr}, &resp); err != nil {
			return total, err
		}
		total += resp.Migrated
	}
	return total, nil
}

// SetQuota registers a resource quota on a prefix. The memory
// dimension bounds the prefix subtree's physical block footprint at
// allocation time; rate dimensions set on a job root are enforced by
// every memory server's admission gate, refusing over-quota traffic
// with ErrQuotaExceeded. A zero quota clears the registration.
func (c *Client) SetQuota(ctx context.Context, path core.Path, quota core.Quota) error {
	var resp proto.SetQuotaResp
	return c.ctrlFor(path.Job()).CallGobCtx(ctx, proto.MethodSetQuota, proto.SetQuotaReq{
		Path: path, Quota: quota,
	}, &resp)
}

// ListPrefixes lists a job's address hierarchy.
func (c *Client) ListPrefixes(ctx context.Context, job core.JobID) ([]proto.PrefixInfo, error) {
	var resp proto.ListPrefixesResp
	err := c.ctrlFor(job).CallGobCtx(ctx, proto.MethodListPrefixes, proto.ListPrefixesReq{Job: job}, &resp)
	return resp.Prefixes, err
}

// open fetches the current partition map for a prefix.
func (c *Client) open(ctx context.Context, path core.Path) (ds.PartitionMap, time.Duration, error) {
	var resp proto.OpenResp
	err := c.ctrlFor(path.Job()).CallGobCtx(ctx, proto.MethodOpen, proto.OpenReq{Path: path}, &resp)
	return resp.Map, resp.LeaseDuration, err
}

// requestScale is the client-triggered fallback of the Fig. 8 protocol:
// when a write bounces off a full block before the server's proactive
// signal has landed, the client asks the controller to scale directly
// and receives the refreshed map in the response.
func (c *Client) requestScale(ctx context.Context, path core.Path, block core.BlockID) (ds.PartitionMap, error) {
	var resp proto.ScaleUpResp
	err := c.ctrlFor(path.Job()).CallGobCtx(ctx, proto.MethodScaleUp, proto.ScaleUpReq{Path: path, Block: block}, &resp)
	return resp.Map, err
}

// OpenKV opens a handle to the KV store at path (initDataStructure).
func (c *Client) OpenKV(ctx context.Context, path core.Path) (*KV, error) {
	h, err := c.newHandle(ctx, path, core.DSKV)
	if err != nil {
		return nil, err
	}
	return &KV{h: h}, nil
}

// OpenFile opens a handle to the file at path.
func (c *Client) OpenFile(ctx context.Context, path core.Path) (*File, error) {
	h, err := c.newHandle(ctx, path, core.DSFile)
	if err != nil {
		return nil, err
	}
	return &File{h: h}, nil
}

// OpenQueue opens a handle to the FIFO queue at path.
func (c *Client) OpenQueue(ctx context.Context, path core.Path) (*Queue, error) {
	h, err := c.newHandle(ctx, path, core.DSQueue)
	if err != nil {
		return nil, err
	}
	return &Queue{h: h}, nil
}
