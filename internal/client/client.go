// Package client implements the Jiffy client library: the user-facing
// API of Table 1 in the paper. A Client connects to the controller for
// control operations (jobs, prefixes, leases, flush/load) and opens
// direct data-plane sessions to the memory servers hosting its blocks
// ("access data directly from the memory servers", §2). Data-structure
// handles cache partition maps and refresh them when the data plane
// reports staleness — the client-side half of seamless repartitioning.
//
// The control plane may be a replicated controller group (§4.2.1
// primary-backup fault tolerance): one leader serves every control
// operation while standbys mirror its metadata and answer with a
// NotLeader redirect. The client tracks the leader and re-homes
// automatically — a standby's redirect hint, or a dead leader's
// connection failure, moves the next attempt to another member within
// the normal retry budget, so a controller failover is invisible to
// callers beyond added latency.
//
// The API is context-first: every control- and data-path call takes a
// context.Context whose deadline bounds the call (taking precedence
// over the session-level RPC timeout) and whose cancellation fails
// pending calls with context.Canceled wrapped in the typed errors.
// Pre-context signatures survive as deprecated NoCtx views (compat.go).
package client

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"jiffy/internal/core"
	"jiffy/internal/ds"
	"jiffy/internal/obs"
	"jiffy/internal/proto"
	"jiffy/internal/rpc"
)

// RetryPolicy bounds the data-plane recovery loops.
type RetryPolicy struct {
	// Limit bounds retries after map refreshes (default 32); controller
	// re-homing after a leadership change spends the same budget.
	Limit int
	// MaxBackoff caps the linearly growing between-retry delay
	// (default 5ms), keeping a full retry budget bounded.
	MaxBackoff time.Duration
	// ThrottleLimit bounds retries after admission-control refusals
	// (default 4); past it the typed ErrQuotaExceeded surfaces to the
	// caller, retry-after hint intact. Throttles are counted separately
	// from Limit: quota pressure is persistent in a way staleness is
	// not, so a throttled tenant should surface backpressure quickly
	// rather than burn the full recovery budget.
	ThrottleLimit int
	// MaxThrottleWait caps the server-suggested retry-after honored
	// between throttled attempts (default 50ms), so a deeply
	// over-quota tenant cannot be parked for seconds inside one call.
	MaxThrottleWait time.Duration
}

// DefaultRetryPolicy returns the retry bounds used when no
// WithRetryPolicy option is given.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{
		Limit:           32,
		MaxBackoff:      5 * time.Millisecond,
		ThrottleLimit:   4,
		MaxThrottleWait: 50 * time.Millisecond,
	}
}

// config collects the dialing/retry/telemetry knobs behind the
// functional options.
type config struct {
	controllers []string
	dial        func(addr string) (*rpc.Client, error)
	policy      RetryPolicy
	timeout     time.Duration
	exporter    obs.SpanExporter
	shards      int
	busyPoll    bool
	breaker     BreakerPolicy
	breakerOn   bool
	hedge       HedgePolicy
	hedgeOn     bool
}

// Option configures Dial.
type Option func(*config)

// WithControllers names the controller group members. Order must match
// the -peers list the controllers themselves were started with; any
// member can be listed first — the client discovers the leader at dial
// time and re-homes on every leadership change.
func WithControllers(addrs ...string) Option {
	return func(c *config) { c.controllers = append(c.controllers, addrs...) }
}

// WithDial customizes outbound connections (tests inject mem://
// transports and fault injectors).
func WithDial(dial func(addr string) (*rpc.Client, error)) Option {
	return func(c *config) { c.dial = dial }
}

// WithRPCTimeout bounds every control- and data-plane call so a dead
// peer fails the call instead of hanging it. Zero means
// core.DefaultRPCTimeout; negative disables the bound. A context
// deadline on an individual call always takes precedence.
func WithRPCTimeout(d time.Duration) Option {
	return func(c *config) { c.timeout = d }
}

// WithRetryPolicy overrides the data-plane retry bounds. Zero fields
// keep their defaults.
func WithRetryPolicy(p RetryPolicy) Option {
	return func(c *config) {
		if p.Limit > 0 {
			c.policy.Limit = p.Limit
		}
		if p.MaxBackoff > 0 {
			c.policy.MaxBackoff = p.MaxBackoff
		}
		if p.ThrottleLimit > 0 {
			c.policy.ThrottleLimit = p.ThrottleLimit
		}
		if p.MaxThrottleWait > 0 {
			c.policy.MaxThrottleWait = p.MaxThrottleWait
		}
	}
}

// WithTracing installs a span exporter: every RPC issued by the client
// records a span, and the trace/span IDs ride the wire to the servers
// so server-side spans nest under client calls.
func WithTracing(exp obs.SpanExporter) Option {
	return func(c *config) { c.exporter = exp }
}

// WithSessionShards makes every data-plane session own n connections
// instead of one, partitioning the sequence space across them so many
// goroutines hammering one server stop serializing on a single write
// lock and read pump. Single-goroutine workloads gain nothing; n is
// worth raising only under heavy concurrent single-op load. Calls stay
// synchronous request/response, so each goroutine's operations keep
// their program order on every data type regardless of which
// connection carries them; operations from different goroutines have
// no mutual order with or without sharding (see DESIGN.md §15).
// Applies to the built-in transport only: WithDial supplies whole
// sessions and takes precedence.
func WithSessionShards(n int) Option {
	return func(c *config) { c.shards = n }
}

// WithBreaker installs a per-server circuit breaker (see BreakerPolicy;
// zero fields take defaults). Servers that repeatedly fail or — with a
// latency ceiling set — answer too slowly are failed fast with a typed
// *core.DegradedError instead of queueing more traffic behind them;
// after the cooldown a single probe decides recovery. Health tracking
// itself (EWMA, windowed p95) is always on; the breaker only adds the
// fail-fast gate.
func WithBreaker(p BreakerPolicy) Option {
	return func(c *config) { c.breaker, c.breakerOn = p, true }
}

// WithHedgedReads enables hedged reads (see HedgePolicy; zero fields
// take defaults): idempotent chain reads that linger past the primary
// server's observed p95 race a backup request against another chain
// member, first response wins. Mutations are never hedged. Costs a few
// allocations per hedged call; leave off for allocation-sensitive
// workloads.
func WithHedgedReads(p HedgePolicy) Option {
	return func(c *config) { c.hedge, c.hedgeOn = p, true }
}

// WithBusyPoll puts data-plane sessions in busy-poll mode: callers
// spin briefly before parking while waiting for a response, shaving
// scheduler wakeup latency off small-op round trips at the price of
// CPU burned spinning. Best for latency-critical workloads with cores
// to spare; leave off when oversubscribed.
func WithBusyPoll() Option {
	return func(c *config) { c.busyPoll = true }
}

// Client is one application's connection to a Jiffy cluster: a
// replicated controller group for control operations and direct
// sessions to the memory servers for data.
type Client struct {
	ctrlAddrs []string
	ctrlPool  *rpc.Pool
	pool      *rpc.Pool
	policy    RetryPolicy

	// Gray-failure defenses: always-on per-server health tracking, the
	// opt-in circuit breaker gate, and opt-in read hedging.
	health     *healthTracker
	hedge      HedgePolicy
	hedgeOn    bool
	breakerOn  bool
	rpcTimeout time.Duration

	// leader is the index into ctrlAddrs of the member last observed to
	// lead. Control calls start there; a NotLeader redirect or a dead
	// connection moves it.
	leader atomic.Int32

	// Telemetry: per-method RPC metrics (role "client"), client-loop
	// counters, and the optional tracer, all served via Obs().
	reg            *obs.Registry
	rpcm           *obs.RPCMetrics
	tracer         *obs.Tracer
	batchSizes     *obs.Histogram
	mapRefreshes   *obs.Counter
	staleRegroups  *obs.Counter
	throttleWaits  *obs.Counter
	rehomes        *obs.Counter
	hedgesFired    *obs.Counter
	hedgesWon      *obs.Counter
	hedgesCanceled *obs.Counter

	mu sync.Mutex
	// routers dispatches push notifications per data-plane connection.
	routers map[string]*pushRouter

	renewers []*Renewer
	closed   bool
}

// Dial connects to a Jiffy cluster. WithControllers names the
// controller group; at least one member must be reachable. ctx bounds
// the dial and leader discovery only; per-call contexts bound the
// individual operations that follow.
func Dial(ctx context.Context, opts ...Option) (*Client, error) {
	cfg := config{policy: DefaultRetryPolicy(), timeout: core.DefaultRPCTimeout}
	for _, o := range opts {
		o(&cfg)
	}
	if len(cfg.controllers) == 0 {
		return nil, fmt.Errorf("client: no controller addresses (use WithControllers)")
	}
	if cfg.timeout < 0 {
		cfg.timeout = 0 // explicit opt-out: unbounded calls
	}

	c := &Client{
		ctrlAddrs: cfg.controllers,
		policy:    cfg.policy,
		routers:   make(map[string]*pushRouter),
		reg:       obs.NewRegistry(),
		rpcm:      obs.NewRPCMetrics("client"),
	}
	if cfg.exporter != nil {
		c.tracer = obs.NewTracer(cfg.exporter, nil)
	}
	c.rpcm.Register(c.reg, proto.MethodName)
	c.batchSizes = c.reg.Histogram("jiffy_client_batch_ops",
		"Operations per batched data-plane call")
	c.mapRefreshes = c.reg.Counter("jiffy_client_map_refreshes_total",
		"Partition-map refreshes triggered by staleness or failures")
	c.staleRegroups = c.reg.Counter("jiffy_client_stale_regroups_total",
		"Batched calls regrouped after a stale partition map")
	c.throttleWaits = c.reg.Counter("jiffy_client_throttle_waits_total",
		"Retry-after waits honored following admission-control refusals")
	c.rehomes = c.reg.Counter("jiffy_client_rehomes_total",
		"Controller re-homes after NotLeader redirects or dead leaders")
	c.hedgesFired = c.reg.Counter("jiffy_client_hedges_fired_total",
		"Backup read requests launched past the primary's hedge deadline")
	c.hedgesWon = c.reg.Counter("jiffy_client_hedges_won_total",
		"Hedged reads won by the backup request")
	c.hedgesCanceled = c.reg.Counter("jiffy_client_hedges_canceled_total",
		"Hedged-read losers canceled after the other arm won")
	c.health = newHealthTracker(cfg.breaker, cfg.breakerOn)
	c.hedge = cfg.hedge.withDefaults()
	c.hedgeOn = cfg.hedgeOn
	c.breakerOn = cfg.breakerOn
	c.rpcTimeout = cfg.timeout
	c.reg.RegisterCollector(c.writeBreakerStates)

	// Control and data planes get separate dial chains: session
	// sharding and busy-poll are data-path latency tools, pointless for
	// the occasional control call.
	dataDial := cfg.dial
	if dataDial == nil && cfg.shards > 1 {
		n := cfg.shards
		dataDial = func(addr string) (*rpc.Client, error) { return rpc.DialShards(addr, n) }
	}
	if cfg.busyPoll {
		dataDial = rpc.WithBusyPoll(dataDial)
	}
	dataDial = rpc.WithTimeout(dataDial, cfg.timeout)
	dataDial = rpc.WithInstrumentation(dataDial, c.rpcm, c.tracer)
	ctrlDial := rpc.WithTimeout(cfg.dial, cfg.timeout)
	ctrlDial = rpc.WithInstrumentation(ctrlDial, c.rpcm, c.tracer)
	c.pool = rpc.NewPool(dataDial)
	c.ctrlPool = rpc.NewPool(ctrlDial)

	// Leader discovery: the first reachable member names the leader.
	// Every member knows it (standbys track the op-log's source), so one
	// answer suffices; an unknown or empty answer leaves the reachable
	// member as the starting point and the first control call re-homes.
	var lastErr error
	connected := false
	for i, addr := range c.ctrlAddrs {
		if err := ctx.Err(); err != nil {
			c.ctrlPool.Close()
			c.pool.Close()
			return nil, fmt.Errorf("client: connect: %w", err)
		}
		conn, err := c.ctrlPool.Get(addr)
		if err != nil {
			lastErr = err
			continue
		}
		connected = true
		c.leader.Store(int32(i))
		var role proto.CtrlRoleResp
		if err := conn.CallGobCtx(ctx, proto.MethodCtrlRole, proto.CtrlRoleReq{}, &role); err == nil {
			if j := c.ctrlIndexOf(role.Leader); j >= 0 {
				c.leader.Store(int32(j))
			}
		}
		break
	}
	if !connected {
		c.ctrlPool.Close()
		c.pool.Close()
		return nil, fmt.Errorf("client: connect: no controller reachable: %w", lastErr)
	}
	return c, nil
}

// Connect dials a single-controller cluster (connect(jiffyAddress) in
// Table 1).
//
// Deprecated: use Dial with WithControllers, which also accepts a
// replicated controller group.
func Connect(ctx context.Context, controllerAddr string, opts ...Option) (*Client, error) {
	return Dial(ctx, append(opts, WithControllers(controllerAddr))...)
}

// ConnectMulti dials a controller group.
//
// Deprecated: use Dial with WithControllers.
func ConnectMulti(ctx context.Context, controllerAddrs []string, opts ...Option) (*Client, error) {
	return Dial(ctx, append(opts, WithControllers(controllerAddrs...))...)
}

// Obs exposes the client-side metric registry (per-method RPC stats,
// batch sizes, map refreshes) for embedding into an application's
// admin endpoint.
func (c *Client) Obs() *obs.Registry { return c.reg }

// writeBreakerStates emits the per-server breaker state gauge
// (0 closed, 1 open, 2 half-open) at scrape time.
func (c *Client) writeBreakerStates(w io.Writer) {
	snap := c.health.snapshot()
	if len(snap) == 0 {
		return
	}
	obs.WriteHeader(w, "jiffy_client_breaker_state",
		"Per-server circuit breaker state (0 closed, 1 open, 2 half-open)", "gauge")
	for _, s := range snap {
		var v int64
		switch s.State {
		case "open":
			v = 1
		case "half-open":
			v = 2
		}
		obs.WriteSample(w, "jiffy_client_breaker_state",
			fmt.Sprintf(`{server=%q}`, s.Server), v)
	}
}

// ServerHealth reports the per-server health state this client has
// observed: breaker state, strike count, latency EWMA and windowed p95,
// and controller-reported probation. Sorted by server address.
func (c *Client) ServerHealth() []ServerHealthInfo { return c.health.snapshot() }

// ctrlIndexOf maps a controller address to its group index, -1 when
// unknown.
func (c *Client) ctrlIndexOf(addr string) int {
	if addr == "" {
		return -1
	}
	for i, a := range c.ctrlAddrs {
		if a == addr {
			return i
		}
	}
	return -1
}

// callCtrl issues one control RPC against the current leader,
// re-homing on NotLeader redirects and dead connections within the
// retry budget. The stale leader's pooled session is dropped on every
// re-home so it fails fast instead of lingering.
func (c *Client) callCtrl(ctx context.Context, method uint16, req, resp any) error {
	n := len(c.ctrlAddrs)
	idx := int(c.leader.Load()) % n
	var lastErr error
	timeouts := 0
	for attempt := 0; attempt <= c.policy.Limit; attempt++ {
		addr := c.ctrlAddrs[idx]
		conn, err := c.ctrlPool.Get(addr)
		if err == nil {
			err = conn.CallGobCtx(ctx, method, req, resp)
		}
		if err == nil {
			c.leader.Store(int32(idx))
			return nil
		}
		if cerr := ctxErr(err); cerr != nil {
			return err
		}
		lastErr = err
		followedHint := false
		switch {
		case errors.Is(err, core.ErrNotLeader):
			if obs.On() {
				c.rehomes.Inc()
			}
			c.ctrlPool.Drop(addr)
			if hint, _ := core.LeaderHintOf(err); hint != addr {
				if j := c.ctrlIndexOf(hint); j >= 0 {
					idx = j
					followedHint = true
				}
			}
			if !followedHint {
				idx = (idx + 1) % n
			}
		case isConnErr(err):
			if obs.On() {
				c.rehomes.Inc()
			}
			c.ctrlPool.Drop(addr)
			// A timeout burns a full RPCTimeout per attempt (a refused
			// or reset connection fails in microseconds), so re-homing
			// on timeouts gets exactly one pass over the group: the
			// member may be partitioned from us, but once every member
			// has eaten a timeout the caller gets the answer within a
			// bounded multiple of its configured deadline.
			if errors.Is(err, core.ErrTimeout) {
				timeouts++
				if timeouts >= n {
					return err
				}
			}
			idx = (idx + 1) % n
		default:
			// An operation-level answer from the leader: surface it.
			return err
		}
		// A fresh redirect hint is followed immediately; everything else
		// (dead member, hint pointing back at a not-yet-promoted standby)
		// backs off so an in-flight failover can finish.
		if !followedHint {
			if err := sleepCtx(ctx, backoffDelay(attempt, c.policy.MaxBackoff)); err != nil {
				return fmt.Errorf("client: control call: %w", err)
			}
		}
	}
	return errRetriesExhausted("control call", lastErr)
}

// sleepCtx sleeps d or until ctx ends.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// ControllerRole reports the controller group's current leadership
// (leader address, generation) as seen by the first reachable member.
func (c *Client) ControllerRole(ctx context.Context) (proto.CtrlRoleResp, error) {
	var lastErr error
	idx := int(c.leader.Load()) % len(c.ctrlAddrs)
	for i := 0; i < len(c.ctrlAddrs); i++ {
		addr := c.ctrlAddrs[(idx+i)%len(c.ctrlAddrs)]
		conn, err := c.ctrlPool.Get(addr)
		if err != nil {
			lastErr = err
			continue
		}
		var resp proto.CtrlRoleResp
		if err := conn.CallGobCtx(ctx, proto.MethodCtrlRole, proto.CtrlRoleReq{}, &resp); err != nil {
			lastErr = err
			c.ctrlPool.Drop(addr)
			continue
		}
		return resp, nil
	}
	return proto.CtrlRoleResp{}, fmt.Errorf("client: role: no controller reachable: %w", lastErr)
}

// PromoteController forces the member at addr to take leadership
// (operator tooling; normal failover is automatic). Returns the new
// generation.
func (c *Client) PromoteController(ctx context.Context, addr string) (uint64, error) {
	conn, err := c.ctrlPool.Get(addr)
	if err != nil {
		return 0, fmt.Errorf("client: promote %s: %w", addr, err)
	}
	var resp proto.CtrlPromoteResp
	if err := conn.CallGobCtx(ctx, proto.MethodCtrlPromote, proto.CtrlPromoteReq{}, &resp); err != nil {
		c.ctrlPool.Drop(addr)
		return 0, err
	}
	if j := c.ctrlIndexOf(addr); j >= 0 {
		old := c.ctrlAddrs[int(c.leader.Load())%len(c.ctrlAddrs)]
		if old != addr {
			c.ctrlPool.Drop(old)
		}
		c.leader.Store(int32(j))
	}
	return resp.Gen, nil
}

// Close stops renewal agents and tears down every connection.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	renewers := c.renewers
	c.mu.Unlock()
	for _, r := range renewers {
		r.Stop()
	}
	c.ctrlPool.Close()
	c.pool.Close()
	return nil
}

// --- control-plane operations (Table 1) -------------------------------------

// RegisterJob registers a job with the control plane.
func (c *Client) RegisterJob(ctx context.Context, job core.JobID) error {
	var resp proto.RegisterJobResp
	return c.callCtrl(ctx, proto.MethodRegisterJob, proto.RegisterJobReq{Job: job}, &resp)
}

// DeregisterJob releases all of a job's resources.
func (c *Client) DeregisterJob(ctx context.Context, job core.JobID) error {
	var resp proto.DeregisterJobResp
	return c.callCtrl(ctx, proto.MethodDeregisterJob, proto.DeregisterJobReq{Job: job}, &resp)
}

// CreatePrefix implements createAddrPrefix: adds an address prefix with
// optional extra DAG parents and an attached data structure.
func (c *Client) CreatePrefix(ctx context.Context, path core.Path, parents []core.Path, t core.DSType,
	initialBlocks int, leaseDuration time.Duration) (ds.PartitionMap, time.Duration, error) {
	var resp proto.CreatePrefixResp
	err := c.callCtrl(ctx, proto.MethodCreatePrefix, proto.CreatePrefixReq{
		Path:          path,
		Parents:       parents,
		Type:          t,
		InitialBlocks: initialBlocks,
		LeaseDuration: leaseDuration,
	}, &resp)
	return resp.Map, resp.LeaseDuration, err
}

// CreateBoundedPrefix is CreatePrefix with a size bound: the structure
// never grows beyond maxBlocks blocks, and writers see ErrBlockFull
// when it is full — the generalization of the paper's maxQueueLength
// (§5.2). Consumers freeing space (dequeues, deletes) make writes
// succeed again.
func (c *Client) CreateBoundedPrefix(ctx context.Context, path core.Path, parents []core.Path, t core.DSType,
	initialBlocks, maxBlocks int, leaseDuration time.Duration) (ds.PartitionMap, time.Duration, error) {
	var resp proto.CreatePrefixResp
	err := c.callCtrl(ctx, proto.MethodCreatePrefix, proto.CreatePrefixReq{
		Path:          path,
		Parents:       parents,
		Type:          t,
		InitialBlocks: initialBlocks,
		MaxBlocks:     maxBlocks,
		LeaseDuration: leaseDuration,
	}, &resp)
	return resp.Map, resp.LeaseDuration, err
}

// CreateHierarchy implements createHierarchy: builds the job's address
// hierarchy from an execution DAG.
func (c *Client) CreateHierarchy(ctx context.Context, job core.JobID, nodes []proto.DagNode,
	leaseDuration time.Duration) error {
	var resp proto.CreateHierarchyResp
	return c.callCtrl(ctx, proto.MethodCreateHierarchy, proto.CreateHierarchyReq{
		Job: job, Nodes: nodes, LeaseDuration: leaseDuration,
	}, &resp)
}

// RemovePrefix explicitly reclaims a prefix.
func (c *Client) RemovePrefix(ctx context.Context, path core.Path) error {
	var resp proto.RemovePrefixResp
	return c.callCtrl(ctx, proto.MethodRemovePrefix, proto.RemovePrefixReq{Path: path}, &resp)
}

// RenewLease implements renewLease for one or more prefixes.
func (c *Client) RenewLease(ctx context.Context, paths ...core.Path) (int, error) {
	var resp proto.RenewLeaseResp
	err := c.callCtrl(ctx, proto.MethodRenewLease, proto.RenewLeaseReq{Paths: paths}, &resp)
	return resp.Renewed, err
}

// LeaseDuration implements getLeaseDuration.
func (c *Client) LeaseDuration(ctx context.Context, path core.Path) (time.Duration, error) {
	var resp proto.LeaseInfoResp
	err := c.callCtrl(ctx, proto.MethodLeaseInfo, proto.LeaseInfoReq{Path: path}, &resp)
	return resp.Duration, err
}

// FlushPrefix implements flushAddrPrefix: checkpoint the prefix to the
// external store.
func (c *Client) FlushPrefix(ctx context.Context, path core.Path, externalPath string) (int, error) {
	var resp proto.FlushPrefixResp
	err := c.callCtrl(ctx, proto.MethodFlushPrefix, proto.FlushPrefixReq{
		Path: path, ExternalPath: externalPath,
	}, &resp)
	return resp.Blocks, err
}

// LoadPrefix implements loadAddrPrefix: restore the prefix from the
// external store.
func (c *Client) LoadPrefix(ctx context.Context, path core.Path, externalPath string) error {
	var resp proto.LoadPrefixResp
	return c.callCtrl(ctx, proto.MethodLoadPrefix, proto.LoadPrefixReq{
		Path: path, ExternalPath: externalPath,
	}, &resp)
}

// SaveControllerState checkpoints the leader's metadata to its
// persistent store (operators run this periodically; a replacement
// controller restores it with the -restore flag of jiffy-controller).
// Standbys carry the same metadata via replication, so one checkpoint
// covers the group.
func (c *Client) SaveControllerState(ctx context.Context, key string) error {
	var resp proto.SaveStateResp
	return c.callCtrl(ctx, proto.MethodSaveState, proto.SaveStateReq{Key: key}, &resp)
}

// ControllerStats fetches controller statistics from the leader.
func (c *Client) ControllerStats(ctx context.Context) (proto.ControllerStatsResp, error) {
	var resp proto.ControllerStatsResp
	err := c.callCtrl(ctx, proto.MethodControllerStats, proto.ControllerStatsReq{}, &resp)
	return resp, err
}

// DrainServer migrates every block off a memory server (graceful
// decommission). The server is removed from the membership first, so
// nothing new lands on it mid-drain; once the call returns it hosts no
// data and can be shut down.
func (c *Client) DrainServer(ctx context.Context, addr string) (int, error) {
	var resp proto.DrainServerResp
	err := c.callCtrl(ctx, proto.MethodDrainServer, proto.DrainServerReq{Addr: addr}, &resp)
	return resp.Migrated, err
}

// SetQuota registers a resource quota on a prefix. The memory
// dimension bounds the prefix subtree's physical block footprint at
// allocation time; rate dimensions set on a job root are enforced by
// every memory server's admission gate, refusing over-quota traffic
// with ErrQuotaExceeded. A zero quota clears the registration.
func (c *Client) SetQuota(ctx context.Context, path core.Path, quota core.Quota) error {
	var resp proto.SetQuotaResp
	return c.callCtrl(ctx, proto.MethodSetQuota, proto.SetQuotaReq{
		Path: path, Quota: quota,
	}, &resp)
}

// ListPrefixes lists a job's address hierarchy.
func (c *Client) ListPrefixes(ctx context.Context, job core.JobID) ([]proto.PrefixInfo, error) {
	var resp proto.ListPrefixesResp
	err := c.callCtrl(ctx, proto.MethodListPrefixes, proto.ListPrefixesReq{Job: job}, &resp)
	return resp.Prefixes, err
}

// open fetches the current partition map for a prefix. The response
// piggybacks the controller's probation set, keeping the client's
// hedge-target ranking aligned with the control plane's gray-failure
// judgment without extra round trips.
func (c *Client) open(ctx context.Context, path core.Path) (ds.PartitionMap, time.Duration, error) {
	var resp proto.OpenResp
	err := c.callCtrl(ctx, proto.MethodOpen, proto.OpenReq{Path: path}, &resp)
	if err == nil {
		c.health.setProbation(resp.Probation)
	}
	return resp.Map, resp.LeaseDuration, err
}

// requestScale is the client-triggered fallback of the Fig. 8 protocol:
// when a write bounces off a full block before the server's proactive
// signal has landed, the client asks the controller to scale directly
// and receives the refreshed map in the response.
func (c *Client) requestScale(ctx context.Context, path core.Path, block core.BlockID) (ds.PartitionMap, error) {
	var resp proto.ScaleUpResp
	err := c.callCtrl(ctx, proto.MethodScaleUp, proto.ScaleUpReq{Path: path, Block: block}, &resp)
	return resp.Map, err
}

// OpenKV opens a handle to the KV store at path (initDataStructure).
func (c *Client) OpenKV(ctx context.Context, path core.Path) (*KV, error) {
	h, err := c.newHandle(ctx, path, core.DSKV)
	if err != nil {
		return nil, err
	}
	return &KV{h: h}, nil
}

// OpenFile opens a handle to the file at path.
func (c *Client) OpenFile(ctx context.Context, path core.Path) (*File, error) {
	h, err := c.newHandle(ctx, path, core.DSFile)
	if err != nil {
		return nil, err
	}
	return &File{h: h}, nil
}

// OpenQueue opens a handle to the FIFO queue at path.
func (c *Client) OpenQueue(ctx context.Context, path core.Path) (*Queue, error) {
	h, err := c.newHandle(ctx, path, core.DSQueue)
	if err != nil {
		return nil, err
	}
	return &Queue{h: h}, nil
}
