package client

import (
	"math"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"jiffy/internal/core"
)

// Per-server health tracking: every data-plane call feeds an EWMA and a
// windowed latency quantile for the server it hit, and (when a breaker
// policy is installed) a three-state circuit breaker. The record path
// runs on the small-op hot path, so it is allocation-free and lock-free
// past the first call per server: all mutable state lives in atomics,
// and the tracker map is read under an RWMutex read lock.

// healthWindow is the per-server latency sample ring size; the windowed
// p95 is computed over it.
const healthWindow = 128

// p95Every is how many samples pass between quantile recomputations;
// between recomputes the cached value serves hedging decisions.
const p95Every = 16

// Breaker states.
const (
	breakerClosed   int32 = iota // healthy: all traffic flows
	breakerOpen                  // tripped: fail fast until the cooldown expires
	breakerHalfOpen              // cooldown over: one probe in flight decides
)

// BreakerPolicy configures the per-server circuit breaker installed
// with WithBreaker. The breaker trips open after Failures consecutive
// connection-level failures (or successes over LatencyCeiling), fails
// calls fast with a typed *core.DegradedError while open, and after
// Cooldown admits a single half-open probe whose outcome closes or
// re-opens it.
type BreakerPolicy struct {
	// Failures is the consecutive-strike count that opens the breaker
	// (default 5). A strike is a connection-level failure (died or timed
	// out) or, when LatencyCeiling is set, a success slower than it.
	Failures int
	// LatencyCeiling, when positive, makes any call slower than it count
	// as a strike even if it succeeds — the fail-slow trigger. Zero
	// means only connection failures strike.
	LatencyCeiling time.Duration
	// Cooldown is how long an open breaker fails fast before admitting a
	// half-open probe (default 200ms). It doubles as the RetryAfter hint
	// on the typed error.
	Cooldown time.Duration
}

func (p BreakerPolicy) withDefaults() BreakerPolicy {
	if p.Failures <= 0 {
		p.Failures = 5
	}
	if p.Cooldown <= 0 {
		p.Cooldown = 200 * time.Millisecond
	}
	return p
}

// HedgePolicy configures hedged reads installed with WithHedgedReads.
// Idempotent chain reads (KV gets, file reads, queue peeks) launch a
// backup request against another chain member when the primary has not
// answered within the hedge delay; the first response wins and the
// loser is canceled. Mutations are never hedged.
type HedgePolicy struct {
	// Multiplier scales the primary server's windowed p95 into the hedge
	// delay (default 2): the backup fires only when the primary is
	// already slower than Multiplier× its own tail.
	Multiplier float64
	// MinDelay floors the hedge delay (default 200µs), so a very fast
	// server's noise cannot fire hedges on every call.
	MinDelay time.Duration
	// MinSamples is how many latency samples a server needs before its
	// quantile is trusted for hedging (default 16).
	MinSamples int
}

func (p HedgePolicy) withDefaults() HedgePolicy {
	if p.Multiplier <= 0 {
		p.Multiplier = 2
	}
	if p.MinDelay <= 0 {
		p.MinDelay = 200 * time.Microsecond
	}
	if p.MinSamples <= 0 {
		p.MinSamples = 16
	}
	return p
}

// serverHealth is one server's tracked state. All fields are atomics:
// the record path takes no locks and allocates nothing.
type serverHealth struct {
	// ewma holds the exponentially weighted moving average of observed
	// call latency, in float64 bits (nanoseconds), alpha 1/8.
	ewma atomic.Uint64
	// samples is the latency ring (nanoseconds) behind the windowed
	// quantile; count is the total samples ever recorded.
	samples [healthWindow]atomic.Int64
	count   atomic.Uint64
	// p95 caches the windowed 95th percentile (nanoseconds), recomputed
	// every p95Every samples.
	p95 atomic.Int64
	// Breaker state machine.
	state    atomic.Int32
	strikes  atomic.Int32
	openedAt atomic.Int64 // wall ns when the breaker last opened
	probe    atomic.Int32 // 1 while a half-open probe is in flight
	// probation mirrors the controller's judgment (via OpenResp): the
	// server is alive but degraded, so hedge-target ranking skips it.
	probation atomic.Bool
}

// healthTracker owns per-server health state for one Client.
type healthTracker struct {
	policy  BreakerPolicy
	breakOn bool

	mu sync.RWMutex
	m  map[string]*serverHealth
}

func newHealthTracker(policy BreakerPolicy, breakOn bool) *healthTracker {
	return &healthTracker{
		policy:  policy.withDefaults(),
		breakOn: breakOn,
		m:       make(map[string]*serverHealth),
	}
}

// get returns addr's state, creating it on first contact. The fast path
// is one map read under an RLock.
func (t *healthTracker) get(addr string) *serverHealth {
	t.mu.RLock()
	sh := t.m[addr]
	t.mu.RUnlock()
	if sh != nil {
		return sh
	}
	t.mu.Lock()
	sh = t.m[addr]
	if sh == nil {
		sh = &serverHealth{}
		t.m[addr] = sh
	}
	t.mu.Unlock()
	return sh
}

// peek returns addr's state without creating it.
func (t *healthTracker) peek(addr string) *serverHealth {
	t.mu.RLock()
	sh := t.m[addr]
	t.mu.RUnlock()
	return sh
}

// record feeds one call's outcome into addr's health. failure means the
// session died or the call timed out (caller-context expiry excluded);
// operation-level errors are successes here — the server answered.
func (t *healthTracker) record(addr string, d time.Duration, failure bool) {
	sh := t.get(addr)
	if failure {
		t.strike(sh)
		return
	}
	n := sh.count.Add(1)
	sh.samples[(n-1)%healthWindow].Store(int64(d))
	for {
		old := sh.ewma.Load()
		var next float64
		if n == 1 {
			next = float64(d)
		} else {
			prev := math.Float64frombits(old)
			next = prev + (float64(d)-prev)/8
		}
		if sh.ewma.CompareAndSwap(old, math.Float64bits(next)) {
			break
		}
	}
	if n%p95Every == 0 {
		sh.recomputeP95(n)
	}
	if !t.breakOn {
		return
	}
	if c := t.policy.LatencyCeiling; c > 0 && d > c {
		// A slow success is gray-failure evidence: strike.
		t.strike(sh)
		return
	}
	sh.strikes.Store(0)
	if sh.state.Load() == breakerHalfOpen {
		// The probe came back healthy: close.
		sh.state.Store(breakerClosed)
		sh.probe.Store(0)
	}
}

// recomputeP95 refreshes the cached windowed quantile. Runs once per
// p95Every samples; the sort works on a stack copy of the ring.
func (sh *serverHealth) recomputeP95(n uint64) {
	var buf [healthWindow]int64
	m := int(min(n, healthWindow))
	for i := 0; i < m; i++ {
		buf[i] = sh.samples[i].Load()
	}
	slices.Sort(buf[:m])
	sh.p95.Store(buf[m*95/100])
}

// strike records one failure (or over-ceiling success) toward opening
// addr's breaker. In half-open, any strike re-opens immediately.
func (t *healthTracker) strike(sh *serverHealth) {
	if !t.breakOn {
		return
	}
	if sh.state.Load() == breakerHalfOpen {
		sh.openedAt.Store(time.Now().UnixNano())
		sh.state.Store(breakerOpen)
		sh.probe.Store(0)
		return
	}
	if sh.strikes.Add(1) >= int32(t.policy.Failures) &&
		sh.state.CompareAndSwap(breakerClosed, breakerOpen) {
		sh.openedAt.Store(time.Now().UnixNano())
	}
}

// allow gates one call toward addr through its breaker. Not-ok means
// the breaker is open: the caller should fail fast with a typed
// degraded error carrying the returned retry-after hint. In half-open,
// exactly one caller is admitted as the probe; the rest fail fast.
func (t *healthTracker) allow(addr string) (time.Duration, bool) {
	if !t.breakOn {
		return 0, true
	}
	sh := t.get(addr)
	for {
		switch sh.state.Load() {
		case breakerClosed:
			return 0, true
		case breakerOpen:
			remain := sh.openedAt.Load() + int64(t.policy.Cooldown) - time.Now().UnixNano()
			if remain > 0 {
				return time.Duration(remain), false
			}
			if sh.state.CompareAndSwap(breakerOpen, breakerHalfOpen) {
				sh.probe.Store(1)
				return 0, true // this caller is the probe
			}
			// Lost the transition race: re-evaluate the new state.
		case breakerHalfOpen:
			if sh.probe.CompareAndSwap(0, 1) {
				return 0, true
			}
			return t.policy.Cooldown, false
		}
	}
}

// setProbation replaces the probation set with the controller's latest
// judgment (shipped on partition-map opens/refreshes).
func (t *healthTracker) setProbation(addrs []string) {
	t.mu.Lock()
	for addr, sh := range t.m {
		sh.probation.Store(slices.Contains(addrs, addr))
	}
	for _, addr := range addrs {
		if _, ok := t.m[addr]; !ok {
			sh := &serverHealth{}
			sh.probation.Store(true)
			t.m[addr] = sh
		}
	}
	t.mu.Unlock()
}

// usable reports whether addr is a sensible hedge target: known or
// unknown is fine, but not probated and not behind an open breaker.
func (t *healthTracker) usable(addr string) bool {
	sh := t.peek(addr)
	if sh == nil {
		return true
	}
	if sh.probation.Load() {
		return false
	}
	return !t.breakOn || sh.state.Load() == breakerClosed
}

// ewmaOf returns addr's smoothed latency for ranking, +Inf when the
// server is unknown (prefer servers with evidence).
func (t *healthTracker) ewmaOf(addr string) float64 {
	sh := t.peek(addr)
	if sh == nil || sh.count.Load() == 0 {
		return math.Inf(1)
	}
	return math.Float64frombits(sh.ewma.Load())
}

// hedgeDelay returns when a backup read against another chain member
// should fire for a primary at addr, false while the primary lacks the
// samples to trust its quantile.
func (t *healthTracker) hedgeDelay(addr string, p HedgePolicy) (time.Duration, bool) {
	sh := t.peek(addr)
	if sh == nil || sh.count.Load() < uint64(p.MinSamples) {
		return 0, false
	}
	p95 := sh.p95.Load()
	if p95 <= 0 {
		return 0, false
	}
	d := time.Duration(float64(p95) * p.Multiplier)
	if d < p.MinDelay {
		d = p.MinDelay
	}
	return d, true
}

// adaptiveTimeout derives a per-server attempt bound from observed
// latency: generous enough (16× p95, floored at 2ms) that organic
// variance never trips it, tight enough that a gray-failed server
// fails the attempt long before the session-wide RPC timeout. Returns
// false when the server lacks samples; cap bounds the result when
// positive.
func (t *healthTracker) adaptiveTimeout(addr string, minSamples int, cap time.Duration) (time.Duration, bool) {
	sh := t.peek(addr)
	if sh == nil || sh.count.Load() < uint64(minSamples) {
		return 0, false
	}
	p95 := sh.p95.Load()
	if p95 <= 0 {
		return 0, false
	}
	d := 16 * time.Duration(p95)
	if d < 2*time.Millisecond {
		d = 2 * time.Millisecond
	}
	if cap > 0 && d > cap {
		d = cap
	}
	return d, true
}

// ServerHealthInfo is one server's health snapshot, exposed for
// operator tooling and tests.
type ServerHealthInfo struct {
	Server    string
	State     string // "closed", "open", "half-open"
	Strikes   int
	Samples   uint64
	EWMA      time.Duration
	P95       time.Duration
	Probation bool
}

// breakerStateName renders a breaker state for humans and metrics
// labels.
func breakerStateName(s int32) string {
	switch s {
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// snapshot returns the tracked servers' health, sorted by address.
func (t *healthTracker) snapshot() []ServerHealthInfo {
	t.mu.RLock()
	out := make([]ServerHealthInfo, 0, len(t.m))
	for addr, sh := range t.m {
		out = append(out, ServerHealthInfo{
			Server:    addr,
			State:     breakerStateName(sh.state.Load()),
			Strikes:   int(sh.strikes.Load()),
			Samples:   sh.count.Load(),
			EWMA:      time.Duration(math.Float64frombits(sh.ewma.Load())),
			P95:       time.Duration(sh.p95.Load()),
			Probation: sh.probation.Load(),
		})
	}
	t.mu.RUnlock()
	slices.SortFunc(out, func(a, b ServerHealthInfo) int {
		return cmpStr(a.Server, b.Server)
	})
	return out
}

func cmpStr(a, b string) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

// degradedErr mints the typed fail-fast error for a breaker refusal.
func degradedErr(server string, retryAfter time.Duration) error {
	return &core.DegradedError{Server: server, RetryAfter: retryAfter}
}
