package client

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"jiffy/internal/core"
	"jiffy/internal/ds"
)

// File is the client handle for a Jiffy file (§5.1): a sequence of
// fixed-size chunks, each stored in one block. Writes at arbitrary
// offsets are split at chunk boundaries; writing past the last chunk
// grows the file by requesting new blocks from the controller. Each
// handle tracks an append cursor for Append/Read streaming.
type File struct {
	h *handle

	mu     sync.Mutex
	wcur   int // append cursor
	rcur   int // sequential-read cursor
	maxEnd int // highest offset this handle has written
}

// Path returns the handle's address prefix.
func (f *File) Path() core.Path { return f.h.path }

// chunkSize reads the immutable chunk size from the map.
func (f *File) chunkSize() int {
	return f.h.snapshot().ChunkSize
}

// blockFor resolves the block holding chunk index ci, growing the file
// if the chunk does not exist yet (for writes). Writes target the
// chain head, reads the tail.
func (f *File) blockFor(ctx context.Context, ci int, grow bool) (core.BlockInfo, error) {
	for attempt := 0; attempt < f.h.retryLimit(); attempt++ {
		m := f.h.snapshot()
		if e, ok := m.BlockForChunk(ci); ok {
			if e.Lost {
				return core.BlockInfo{}, lostErr(e)
			}
			if grow {
				return e.WriteTarget(), nil
			}
			return e.ReadTarget(), nil
		}
		if !grow {
			return core.BlockInfo{}, fmt.Errorf("client: file chunk %d: %w", ci, core.ErrNotFound)
		}
		// Ask the controller to extend the file by one chunk (the
		// proactive server-side signal usually beats us here).
		last, ok := m.Tail()
		if !ok {
			if err := f.h.refresh(ctx); err != nil {
				return core.BlockInfo{}, err
			}
			continue
		}
		if err := f.h.requestScale(ctx, last.Info.ID); err != nil &&
			!errors.Is(err, core.ErrNoCapacity) {
			return core.BlockInfo{}, err
		}
		if err := f.h.backoff(ctx, attempt); err != nil {
			return core.BlockInfo{}, err
		}
	}
	return core.BlockInfo{}, errRetriesExhausted(fmt.Sprintf("file grow to chunk %d", ci), core.ErrBlockFull)
}

// WriteAt writes data at an absolute file offset, spanning chunks as
// needed.
func (f *File) WriteAt(ctx context.Context, off int, data []byte) error {
	cs := f.chunkSize()
	if cs <= 0 {
		return fmt.Errorf("client: file has no chunk size")
	}
	for len(data) > 0 {
		ci := off / cs
		in := off % cs
		n := cs - in
		if n > len(data) {
			n = len(data)
		}
		if err := f.writeChunk(ctx, ci, in, data[:n]); err != nil {
			return err
		}
		off += n
		data = data[n:]
	}
	f.mu.Lock()
	if off > f.maxEnd {
		f.maxEnd = off
	}
	f.mu.Unlock()
	return nil
}

// writeChunk writes within one chunk with staleness recovery.
func (f *File) writeChunk(ctx context.Context, ci, in int, data []byte) error {
	var lastErr error
	throttles, degraded := 0, 0
	for attempt := 0; attempt < f.h.retryLimit(); attempt++ {
		info, err := f.blockFor(ctx, ci, true)
		if err != nil {
			return err
		}
		_, err = f.h.do(ctx, info, core.OpFileWrite, [][]byte{ds.U64(uint64(in)), data})
		switch {
		case err == nil:
			return nil
		case ctxErr(err) != nil:
			return err
		case errors.Is(err, core.ErrServerDegraded):
			degraded++
			if degraded > 1 {
				return err
			}
			lastErr = err
			if rerr := f.h.refresh(ctx); rerr != nil && !isConnErr(rerr) {
				return rerr
			}
			if berr := f.h.backoff(ctx, attempt); berr != nil {
				return berr
			}
		case errors.Is(err, core.ErrStaleEpoch):
			lastErr = err
			if rerr := f.h.refresh(ctx); rerr != nil {
				return rerr
			}
			if berr := f.h.backoff(ctx, attempt); berr != nil {
				return berr
			}
		case errors.Is(err, core.ErrQuotaExceeded):
			throttles++
			if throttles > f.h.throttleLimit() {
				return err
			}
			if werr := f.h.waitThrottle(ctx, attempt, err); werr != nil {
				return werr
			}
		case isConnErr(err):
			lastErr = err
			if rerr := f.h.refresh(ctx); rerr != nil && !isConnErr(rerr) {
				return rerr
			}
			if berr := f.h.backoff(ctx, attempt); berr != nil {
				return berr
			}
		default:
			return err
		}
	}
	return errRetriesExhausted("file write", lastErr)
}

// Append writes data at this handle's append cursor and advances it.
func (f *File) Append(ctx context.Context, data []byte) (int, error) {
	f.mu.Lock()
	off := f.wcur
	f.wcur += len(data)
	f.mu.Unlock()
	if err := f.WriteAt(ctx, off, data); err != nil {
		return off, err
	}
	return off, nil
}

// ReadAt reads up to n bytes at an absolute offset; a short result
// means end of written data.
func (f *File) ReadAt(ctx context.Context, off, n int) ([]byte, error) {
	cs := f.chunkSize()
	if cs <= 0 {
		return nil, fmt.Errorf("client: file has no chunk size")
	}
	// Fast path: a read confined to one chunk returns the decoded
	// response slice directly instead of accumulating into a fresh
	// buffer — with the server's zero-copy view path this makes a
	// single-chunk read one copy end to end (socket → response buffer).
	if n > 0 && off/cs == (off+n-1)/cs {
		part, err := f.readChunk(ctx, off/cs, off%cs, n)
		if err != nil {
			if errors.Is(err, core.ErrNotFound) {
				return nil, nil // past the last chunk
			}
			return nil, err
		}
		return part, nil
	}
	out := make([]byte, 0, n)
	for n > 0 {
		ci := off / cs
		in := off % cs
		want := cs - in
		if want > n {
			want = n
		}
		part, err := f.readChunk(ctx, ci, in, want)
		if err != nil {
			if errors.Is(err, core.ErrNotFound) {
				break // past the last chunk
			}
			return out, err
		}
		out = append(out, part...)
		off += len(part)
		n -= len(part)
		if len(part) < want {
			break // hit this chunk's high-water mark
		}
	}
	return out, nil
}

// readChunk reads within one chunk with staleness recovery.
func (f *File) readChunk(ctx context.Context, ci, in, n int) ([]byte, error) {
	var lastErr error
	throttles, degraded := 0, 0
	for attempt := 0; attempt < f.h.retryLimit(); attempt++ {
		info, err := f.blockFor(ctx, ci, false)
		if err != nil {
			return nil, err
		}
		// File reads are idempotent: they may hedge against another
		// chain member when the tail is slow.
		res, err := f.h.doRead(ctx, info, core.OpFileRead, [][]byte{ds.U64(uint64(in)), ds.U64(uint64(n))})
		switch {
		case err == nil:
			return res[0], nil
		case ctxErr(err) != nil:
			return nil, err
		case errors.Is(err, core.ErrServerDegraded):
			// Open breaker: refresh once (the controller may have
			// re-chained the block), then surface the typed error.
			degraded++
			if degraded > 1 {
				return nil, err
			}
			lastErr = err
			if rerr := f.h.refresh(ctx); rerr != nil && !isConnErr(rerr) {
				return nil, rerr
			}
			if berr := f.h.backoff(ctx, attempt); berr != nil {
				return nil, berr
			}
		case errors.Is(err, core.ErrStaleEpoch):
			lastErr = err
			if rerr := f.h.refresh(ctx); rerr != nil {
				return nil, rerr
			}
			if berr := f.h.backoff(ctx, attempt); berr != nil {
				return nil, berr
			}
		case errors.Is(err, core.ErrQuotaExceeded):
			throttles++
			if throttles > f.h.throttleLimit() {
				return nil, err
			}
			if werr := f.h.waitThrottle(ctx, attempt, err); werr != nil {
				return nil, werr
			}
		case isConnErr(err):
			lastErr = err
			if rerr := f.h.refresh(ctx); rerr != nil && !isConnErr(rerr) {
				return nil, rerr
			}
			if berr := f.h.backoff(ctx, attempt); berr != nil {
				return nil, berr
			}
		default:
			return nil, err
		}
	}
	return nil, errRetriesExhausted("file read", lastErr)
}

// Seek positions the sequential-read cursor (seek in §5.1).
func (f *File) Seek(off int) {
	f.mu.Lock()
	f.rcur = off
	f.mu.Unlock()
}

// Read reads up to n bytes at the read cursor and advances it.
func (f *File) Read(ctx context.Context, n int) ([]byte, error) {
	f.mu.Lock()
	off := f.rcur
	f.mu.Unlock()
	data, err := f.ReadAt(ctx, off, n)
	f.mu.Lock()
	f.rcur = off + len(data)
	f.mu.Unlock()
	return data, err
}

// AppendRecord atomically appends data to the file's tail chunk on the
// server side and returns the absolute offset it landed at. Unlike the
// cursor-based Append, AppendRecord is safe for many concurrent
// writers (MapReduce shuffle files, §5.1): the server serializes
// appends within a chunk, and records never straddle chunks — a record
// that does not fit moves whole to the next chunk.
func (f *File) AppendRecord(ctx context.Context, data []byte) (int, error) {
	cs := f.chunkSize()
	if cs <= 0 {
		return 0, fmt.Errorf("client: file has no chunk size")
	}
	var lastErr error
	throttles, degraded := 0, 0
	for attempt := 0; attempt < f.h.retryLimit(); attempt++ {
		m := f.h.snapshot()
		tail, ok := m.Tail()
		if !ok {
			return 0, fmt.Errorf("client: file has no chunks: %w", core.ErrNotFound)
		}
		res, err := f.h.do(ctx, tail.Info, core.OpFileAppend, [][]byte{data})
		switch {
		case errors.Is(err, core.ErrServerDegraded):
			degraded++
			if degraded > 1 {
				return 0, err
			}
			lastErr = err
			if rerr := f.h.refresh(ctx); rerr != nil && !isConnErr(rerr) {
				return 0, rerr
			}
			if berr := f.h.backoff(ctx, attempt); berr != nil {
				return 0, berr
			}
		case err == nil:
			off, perr := ds.ParseU64(res[0])
			if perr != nil {
				return 0, perr
			}
			return tail.Chunk*cs + int(off), nil
		case ctxErr(err) != nil:
			return 0, err
		case errors.Is(err, core.ErrBlockFull):
			lastErr = err
			if serr := f.h.requestScale(ctx, tail.Info.ID); serr != nil &&
				!errors.Is(serr, core.ErrNoCapacity) {
				return 0, serr
			}
			if berr := f.h.backoff(ctx, attempt); berr != nil {
				return 0, berr
			}
		case errors.Is(err, core.ErrStaleEpoch):
			lastErr = err
			if rerr := f.h.refresh(ctx); rerr != nil {
				return 0, rerr
			}
			if berr := f.h.backoff(ctx, attempt); berr != nil {
				return 0, berr
			}
		case errors.Is(err, core.ErrQuotaExceeded):
			throttles++
			if throttles > f.h.throttleLimit() {
				return 0, err
			}
			if werr := f.h.waitThrottle(ctx, attempt, err); werr != nil {
				return 0, werr
			}
		case isConnErr(err):
			lastErr = err
			if rerr := f.h.refresh(ctx); rerr != nil && !isConnErr(rerr) {
				return 0, rerr
			}
			if berr := f.h.backoff(ctx, attempt); berr != nil {
				return 0, berr
			}
		default:
			return 0, err
		}
	}
	return 0, errRetriesExhausted("file append record", lastErr)
}

// Chunks returns the current number of chunks (after a refresh), so
// readers can scan chunk by chunk.
func (f *File) Chunks(ctx context.Context) (int, error) {
	if err := f.h.refresh(ctx); err != nil {
		return 0, err
	}
	m := f.h.snapshot()
	max := -1
	for _, e := range m.Blocks {
		if e.Chunk > max {
			max = e.Chunk
		}
	}
	return max + 1, nil
}

// ReadChunk reads one whole chunk's written bytes.
func (f *File) ReadChunk(ctx context.Context, ci int) ([]byte, error) {
	cs := f.chunkSize()
	if cs <= 0 {
		return nil, fmt.Errorf("client: file has no chunk size")
	}
	return f.readChunk(ctx, ci, 0, cs)
}

// Subscribe registers for notifications on the file's blocks.
func (f *File) Subscribe(ctx context.Context, ops ...core.OpType) (*Listener, error) {
	return f.h.c.subscribe(ctx, f.h, ops)
}
