package client

import (
	"context"
	"errors"
	"fmt"

	"jiffy/internal/core"
	"jiffy/internal/ds"
	"jiffy/internal/obs"
)

// Batched multi-op API. Each call groups operations by destination
// block/server, ships each group as one MethodDataOpBatch frame, and
// drives the whole set to completion with the same recovery rules as
// the single-op path: stale epochs refresh the partition map and
// regroup (so a batch spanning a repartition-in-flight block is split
// and retried against the new map), full blocks request a scale-up,
// dead sessions are evicted and avoided. Failures are attributed per
// op via MultiError — a batch never reports silent partial success.

// MultiError carries the per-op outcomes of a batched call: Errs[i] is
// nil when op i succeeded. It unwraps to the underlying sentinel
// errors, so errors.Is(err, core.ErrNotFound) works on the aggregate.
type MultiError struct {
	Errs []error
}

// Error summarizes the failure count and the first failing op.
func (e *MultiError) Error() string {
	failed, total := 0, len(e.Errs)
	var first error
	firstIdx := -1
	for i, err := range e.Errs {
		if err != nil {
			failed++
			if first == nil {
				first, firstIdx = err, i
			}
		}
	}
	return fmt.Sprintf("client: %d/%d batched ops failed (op %d: %v)",
		failed, total, firstIdx, first)
}

// Unwrap exposes the non-nil per-op errors to errors.Is/As.
func (e *MultiError) Unwrap() []error {
	out := make([]error, 0, len(e.Errs))
	for _, err := range e.Errs {
		if err != nil {
			out = append(out, err)
		}
	}
	return out
}

// multiErr folds a per-op error vector into nil (all succeeded) or a
// *MultiError.
func multiErr(errs []error) error {
	for _, e := range errs {
		if e != nil {
			return &MultiError{Errs: errs}
		}
	}
	return nil
}

// KVPair is one key-value pair in a MultiPut.
type KVPair struct {
	Key   string
	Value []byte
}

// MultiPut stores many pairs in one round trip per destination server.
// On partial failure it returns a *MultiError indexed like pairs.
func (k *KV) MultiPut(ctx context.Context, pairs []KVPair) error {
	keys := make([]string, len(pairs))
	args := make([][][]byte, len(pairs))
	for i, p := range pairs {
		keys[i] = p.Key
		args[i] = [][]byte{[]byte(p.Key), p.Value}
	}
	_, err := k.execBatch(ctx, core.OpPut, keys, args)
	return err
}

// MultiGet fetches many keys in one round trip per destination server.
// The returned values align with keys; a key whose lookup failed (e.g.
// ErrNotFound) has a nil value and its error recorded in the returned
// *MultiError.
func (k *KV) MultiGet(ctx context.Context, keys []string) ([][]byte, error) {
	args := make([][][]byte, len(keys))
	for i, key := range keys {
		args[i] = [][]byte{[]byte(key)}
	}
	res, err := k.execBatch(ctx, core.OpGet, keys, args)
	vals := make([][]byte, len(keys))
	for i, r := range res {
		if len(r) > 0 {
			vals[i] = r[0]
		}
	}
	return vals, err
}

// execBatch drives a set of same-op keyed operations to completion.
// Results align with keys; the error is nil or a *MultiError.
func (k *KV) execBatch(ctx context.Context, op core.OpType, keys []string, args [][][]byte) ([][][]byte, error) {
	n := len(keys)
	results := make([][][]byte, n)
	errs := make([]error, n)
	if n == 0 {
		return results, nil
	}
	pending := make([]int, n)
	for i := range pending {
		pending[i] = i
	}
	var avoid map[string]bool

	for attempt := 0; attempt < k.h.retryLimit() && len(pending) > 0; attempt++ {
		// Group the pending ops by destination server under the current
		// map. Ops whose slot has no owner yet force a refresh.
		type group struct {
			idxs []int
			ops  []ds.BatchOp
		}
		groups := make(map[string]*group)
		var next []int
		needRefresh := false
		for _, i := range pending {
			info, ok, rerr := k.route(keys[i], op, avoid)
			if rerr != nil {
				// Lost block: fail this op permanently, no retry.
				errs[i] = rerr
				continue
			}
			if !ok {
				errs[i] = core.ErrStaleEpoch
				next = append(next, i)
				needRefresh = true
				continue
			}
			g := groups[info.Server]
			if g == nil {
				g = &group{}
				groups[info.Server] = g
			}
			g.idxs = append(g.idxs, i)
			g.ops = append(g.ops, ds.BatchOp{Op: op, Block: info.ID, Args: args[i]})
		}

		for server, g := range groups {
			rs, cerr := k.h.doBatch(ctx, server, g.ops)
			if cerr != nil {
				// The whole group's call failed: attribute the error to
				// every op in it and retry them all — none of them got a
				// definitive answer. A caller-context failure is final.
				for _, i := range g.idxs {
					errs[i] = cerr
				}
				if ctxErr(cerr) != nil {
					return results, multiErr(errs)
				}
				next = append(next, g.idxs...)
				if isConnErr(cerr) {
					if avoid == nil {
						avoid = make(map[string]bool)
					}
					avoid[server] = true
				}
				needRefresh = true
				continue
			}
			if len(rs) != len(g.idxs) {
				return results, fmt.Errorf("client: batch: %d results for %d ops", len(rs), len(g.idxs))
			}
			for j, r := range rs {
				i := g.idxs[j]
				oerr := r.Err()
				switch {
				case oerr == nil:
					vals, derr := r.Vals()
					if derr != nil {
						errs[i] = derr
						continue
					}
					results[i] = vals
					errs[i] = nil
				case errors.Is(oerr, core.ErrStaleEpoch):
					// This op's block moved (repartition in flight): the
					// refresh below regroups it against the new map.
					errs[i] = oerr
					next = append(next, i)
					needRefresh = true
				case errors.Is(oerr, core.ErrBlockFull):
					errs[i] = oerr
					if serr := k.h.requestScale(ctx, g.ops[j].Block); serr != nil &&
						!errors.Is(serr, core.ErrNoCapacity) {
						errs[i] = serr
						continue
					}
					next = append(next, i)
				default:
					// Terminal per-op outcome (ErrNotFound, ErrTooLarge, ...).
					errs[i] = oerr
				}
			}
		}

		pending = next
		if len(pending) == 0 {
			break
		}
		if needRefresh {
			if obs.On() {
				k.h.c.staleRegroups.Inc()
			}
			if rerr := k.h.refresh(ctx); rerr != nil && !isConnErr(rerr) {
				for _, i := range pending {
					errs[i] = rerr
				}
				return results, multiErr(errs)
			}
		}
		if berr := k.h.backoff(ctx, attempt); berr != nil {
			for _, i := range pending {
				errs[i] = berr
			}
			return results, multiErr(errs)
		}
	}

	for _, i := range pending {
		errs[i] = errRetriesExhausted(fmt.Sprintf("kv batch %v %q", op, keys[i]), errs[i])
	}
	return results, multiErr(errs)
}

// AppendBatch appends many records to the file's tail chunk in one
// round trip, returning the absolute offset each record landed at
// (aligned with records). Like AppendRecord, records never straddle
// chunks. When the tail fills mid-batch the unplaced suffix requests a
// scale-up and retries against the new tail; on partial failure the
// error is a *MultiError indexed like records.
func (f *File) AppendBatch(ctx context.Context, records [][]byte) ([]int, error) {
	cs := f.chunkSize()
	if cs <= 0 {
		return nil, fmt.Errorf("client: file has no chunk size")
	}
	n := len(records)
	offs := make([]int, n)
	errs := make([]error, n)
	if n == 0 {
		return offs, nil
	}
	pending := make([]int, n)
	for i := range pending {
		pending[i] = i
	}

	for attempt := 0; attempt < f.h.retryLimit() && len(pending) > 0; attempt++ {
		m := f.h.snapshot()
		tail, ok := m.Tail()
		if !ok {
			err := fmt.Errorf("client: file has no chunks: %w", core.ErrNotFound)
			for _, i := range pending {
				errs[i] = err
			}
			return offs, multiErr(errs)
		}
		ops := make([]ds.BatchOp, len(pending))
		for j, i := range pending {
			ops[j] = ds.BatchOp{Op: core.OpFileAppend, Block: tail.Info.ID, Args: [][]byte{records[i]}}
		}
		rs, cerr := f.h.doBatch(ctx, tail.Info.Server, ops)
		if cerr != nil {
			for _, i := range pending {
				errs[i] = cerr
			}
			if ctxErr(cerr) != nil {
				return offs, multiErr(errs)
			}
			if !isConnErr(cerr) && !errors.Is(cerr, core.ErrStaleEpoch) {
				return offs, multiErr(errs)
			}
			if rerr := f.h.refresh(ctx); rerr != nil && !isConnErr(rerr) {
				return offs, multiErr(errs)
			}
			if berr := f.h.backoff(ctx, attempt); berr != nil {
				return offs, multiErr(errs)
			}
			continue
		}
		var next []int
		needScale := false
		needRefresh := false
		for j, r := range rs {
			i := pending[j]
			oerr := r.Err()
			switch {
			case oerr == nil:
				vals, derr := r.Vals()
				if derr != nil {
					errs[i] = derr
					continue
				}
				off, perr := ds.ParseU64(vals[0])
				if perr != nil {
					errs[i] = perr
					continue
				}
				offs[i] = tail.Chunk*cs + int(off)
				errs[i] = nil
			case errors.Is(oerr, core.ErrBlockFull):
				errs[i] = oerr
				next = append(next, i)
				needScale = true
			case errors.Is(oerr, core.ErrStaleEpoch):
				errs[i] = oerr
				next = append(next, i)
				needRefresh = true
			default:
				errs[i] = oerr
			}
		}
		if needScale {
			if serr := f.h.requestScale(ctx, tail.Info.ID); serr != nil &&
				!errors.Is(serr, core.ErrNoCapacity) {
				for _, i := range next {
					errs[i] = serr
				}
				return offs, multiErr(errs)
			}
		} else if needRefresh {
			if obs.On() {
				f.h.c.staleRegroups.Inc()
			}
			if rerr := f.h.refresh(ctx); rerr != nil && !isConnErr(rerr) {
				for _, i := range next {
					errs[i] = rerr
				}
				return offs, multiErr(errs)
			}
		}
		pending = next
		if len(pending) > 0 {
			if berr := f.h.backoff(ctx, attempt); berr != nil {
				for _, i := range pending {
					errs[i] = berr
				}
				return offs, multiErr(errs)
			}
		}
	}

	for _, i := range pending {
		errs[i] = errRetriesExhausted("file append batch", errs[i])
	}
	return offs, multiErr(errs)
}

// EnqueueBatch appends many items to the queue tail in one round trip.
// Sealed-segment redirects advance the cached tail and retry the
// unplaced suffix, mirroring Enqueue; on partial failure the error is
// a *MultiError indexed like items.
func (q *Queue) EnqueueBatch(ctx context.Context, items [][]byte) error {
	n := len(items)
	errs := make([]error, n)
	if n == 0 {
		return nil
	}
	pending := make([]int, n)
	for i := range pending {
		pending[i] = i
	}

	for attempt := 0; attempt < q.h.retryLimit() && len(pending) > 0; attempt++ {
		_, tail, err := q.ends()
		if err != nil {
			for _, i := range pending {
				errs[i] = err
			}
			return multiErr(errs)
		}
		ops := make([]ds.BatchOp, len(pending))
		for j, i := range pending {
			ops[j] = ds.BatchOp{Op: core.OpEnqueue, Block: tail.ID, Args: [][]byte{items[i]}}
		}
		rs, cerr := q.h.doBatch(ctx, tail.Server, ops)
		if cerr != nil {
			for _, i := range pending {
				errs[i] = cerr
			}
			if ctxErr(cerr) != nil {
				return multiErr(errs)
			}
			if !isConnErr(cerr) && !errors.Is(cerr, core.ErrStaleEpoch) {
				return multiErr(errs)
			}
			if rerr := q.reseed(ctx); rerr != nil && !isConnErr(rerr) {
				return multiErr(errs)
			}
			if berr := q.h.backoff(ctx, attempt); berr != nil {
				return multiErr(errs)
			}
			continue
		}
		var next []int
		needScale := false
		needReseed := false
		for j, r := range rs {
			i := pending[j]
			oerr := r.Err()
			switch {
			case oerr == nil:
				errs[i] = nil
			case errors.Is(oerr, core.ErrRedirect):
				// The tail sealed mid-batch; follow the link for the
				// unplaced suffix.
				errs[i] = oerr
				next = append(next, i)
				if nextTail, perr := ds.ParseRedirect(r.Blob); perr == nil {
					q.mu.Lock()
					q.tail = nextTail
					q.mu.Unlock()
				} else {
					needReseed = true
				}
			case errors.Is(oerr, core.ErrBlockFull):
				errs[i] = oerr
				next = append(next, i)
				needScale = true
			case errors.Is(oerr, core.ErrStaleEpoch):
				errs[i] = oerr
				next = append(next, i)
				needReseed = true
			default:
				errs[i] = oerr
			}
		}
		if needScale {
			if serr := q.h.requestScale(ctx, tail.ID); serr != nil &&
				!errors.Is(serr, core.ErrNoCapacity) {
				for _, i := range next {
					errs[i] = serr
				}
				return multiErr(errs)
			}
			if rerr := q.reseed(ctx); rerr != nil {
				for _, i := range next {
					errs[i] = rerr
				}
				return multiErr(errs)
			}
			// Bounded queue at its limit: report backpressure instead of
			// spinning (same rule as Enqueue).
			if m := q.h.snapshot(); m.AtMaxBlocks() {
				if t, ok := m.Tail(); ok && t.Info.ID == tail.ID {
					full := fmt.Errorf("client: bounded queue full: %w", core.ErrBlockFull)
					for _, i := range next {
						errs[i] = full
					}
					return multiErr(errs)
				}
			}
		} else if needReseed {
			if obs.On() {
				q.h.c.staleRegroups.Inc()
			}
			if rerr := q.reseed(ctx); rerr != nil && !isConnErr(rerr) {
				for _, i := range next {
					errs[i] = rerr
				}
				return multiErr(errs)
			}
		}
		pending = next
		if len(pending) > 0 {
			if berr := q.h.backoff(ctx, attempt); berr != nil {
				for _, i := range pending {
					errs[i] = berr
				}
				return multiErr(errs)
			}
		}
	}

	for _, i := range pending {
		errs[i] = errRetriesExhausted("enqueue batch", errs[i])
	}
	return multiErr(errs)
}
