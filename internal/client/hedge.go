package client

import (
	"context"
	"fmt"
	"time"

	"jiffy/internal/core"
	"jiffy/internal/obs"
)

// Hedged reads: when WithHedgedReads is set, idempotent chain reads (KV
// gets, file reads, queue peeks) that linger past the primary server's
// p95 launch a backup request against another member of the block's
// replica chain; the first response wins and the loser is canceled.
// Chain propagation is synchronous — every replica holds all
// acknowledged writes — so any chain member answers reads correctly.
// Mutations are never hedged: a duplicated mutation is a correctness
// bug, not a latency optimization.

// doRead dispatches one idempotent read, hedging it when the client is
// configured for it and the chain offers an alternate. Everything the
// hedge path allocates (contexts, goroutines, channel) is confined to
// this function, so clients without WithHedgedReads keep the
// allocation-free hot path through do().
func (h *handle) doRead(ctx context.Context, info core.BlockInfo, op core.OpType, args [][]byte) ([][]byte, error) {
	if !h.c.hedgeOn {
		return h.do(ctx, info, op, args)
	}
	delay, ok := h.c.health.hedgeDelay(info.Server, h.c.hedge)
	if !ok {
		return h.do(ctx, info, op, args)
	}
	alt, ok := h.altFor(info)
	if !ok {
		return h.do(ctx, info, op, args)
	}
	return h.doHedged(ctx, info, alt, delay, op, args)
}

// altFor finds another member of info's replica chain to hedge against:
// not the primary, not probated, not behind an open breaker; ties go to
// the lowest observed EWMA latency.
func (h *handle) altFor(info core.BlockInfo) (core.BlockInfo, bool) {
	m := h.snapshot()
	for bi := range m.Blocks {
		e := &m.Blocks[bi]
		// info is whatever replica the read targeted — usually the chain
		// tail, which is a different physical block than e.Info (the
		// head). Match the entry by chain membership, not head identity.
		member := e.Info == info
		for _, b := range e.Chain {
			if b == info {
				member = true
				break
			}
		}
		if !member {
			continue
		}
		var best core.BlockInfo
		bestEwma := 0.0
		found := false
		for _, member := range e.Chain {
			if member.Server == info.Server || !h.c.health.usable(member.Server) {
				continue
			}
			ew := h.c.health.ewmaOf(member.Server)
			if !found || ew < bestEwma {
				best, bestEwma, found = member, ew, true
			}
		}
		return best, found
	}
	return core.BlockInfo{}, false
}

// hedgeResult carries one arm's outcome.
type hedgeResult struct {
	vals   [][]byte
	err    error
	backup bool
}

// hedgeErr strips attempt-context expiry out of a hedge arm's error:
// the adaptive per-attempt deadline is not the caller's deadline, so
// its expiry must classify as a retryable timeout (the retry loops
// abort outright on caller-context errors).
func hedgeErr(ctx context.Context, err error) error {
	if err == nil || ctx.Err() != nil || ctxErr(err) == nil {
		return err
	}
	return fmt.Errorf("client: hedged read attempt: %w", core.ErrTimeout)
}

// doHedged races the primary against a delayed backup. Both arms run
// h.do under cancellable child contexts — the per-server adaptive
// timeout bounds each arm when the tracker has evidence — and the
// results channel is buffered for both, so a canceled loser never
// blocks: its goroutine finishes its (already-canceled) call, deposits
// the result, and exits. Values returned by do() are heap copies (the
// pooled response buffers are recycled inside do), so abandoning the
// loser's result leaks nothing.
func (h *handle) doHedged(ctx context.Context, primary, alt core.BlockInfo, delay time.Duration,
	op core.OpType, args [][]byte) ([][]byte, error) {
	attemptCtx := func(server string) (context.Context, context.CancelFunc) {
		if d, ok := h.c.health.adaptiveTimeout(server, h.c.hedge.MinSamples, h.c.rpcTimeout); ok {
			return context.WithTimeout(ctx, d)
		}
		return context.WithCancel(ctx)
	}
	pctx, pcancel := attemptCtx(primary.Server)
	defer pcancel()
	bctx, bcancel := attemptCtx(alt.Server)
	defer bcancel()

	results := make(chan hedgeResult, 2)
	go func() {
		vals, err := h.do(pctx, primary, op, args)
		results <- hedgeResult{vals, err, false}
	}()

	timer := time.NewTimer(delay)
	defer timer.Stop()
	timerC := timer.C
	outstanding := 1
	fired := false
	var firstErr error
	for {
		select {
		case <-timerC:
			timerC = nil
			fired = true
			outstanding++
			if obs.On() {
				h.c.hedgesFired.Inc()
			}
			go func() {
				vals, err := h.do(bctx, alt, op, args)
				results <- hedgeResult{vals, err, true}
			}()
		case r := <-results:
			outstanding--
			if r.err == nil {
				if fired && outstanding > 0 {
					// Cancel the loser; its deposit into the buffered
					// channel is dropped on the floor.
					if r.backup {
						pcancel()
						if obs.On() {
							h.c.hedgesWon.Inc()
						}
					} else {
						bcancel()
					}
					if obs.On() {
						h.c.hedgesCanceled.Inc()
					}
				} else if fired && r.backup && obs.On() {
					h.c.hedgesWon.Inc()
				}
				return r.vals, nil
			}
			if firstErr == nil {
				firstErr = r.err
			}
			if !fired {
				// The primary failed before the hedge deadline: no backup
				// was launched, so surface the failure to the retry loop
				// (which will fall back along the chain itself).
				return nil, hedgeErr(ctx, r.err)
			}
			if outstanding == 0 {
				return nil, hedgeErr(ctx, firstErr)
			}
		}
	}
}
