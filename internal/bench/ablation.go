package bench

import (
	"context"
	"fmt"
	"io"
	"sync"
	"time"

	"jiffy"
	"jiffy/internal/controller"
	"jiffy/internal/core"
	"jiffy/internal/cuckoo"
	"jiffy/internal/metrics"
	"jiffy/internal/persist"
	"jiffy/internal/proto"
)

// Ablations isolate the contribution of individual Jiffy design
// choices, complementing the paper's §6.3 ("Understanding Jiffy
// Benefits"):
//
//   - lease propagation through the hierarchy (Fig. 5) vs. renewing
//     every prefix individually — control-plane traffic;
//   - proactive server-side overload signals (Fig. 8) vs. purely
//     client-triggered scaling — write latency tails;
//   - cuckoo hashing in KV shards (§5.3) vs. a mutex-protected map —
//     concurrent read throughput (one of the two §6.2 performance
//     attributions).
//
// The fourth headline choice — hash-partitioned controller shards —
// is measured by Fig. 12(b).

// AblationLeases compares lease-renewal traffic with and without the
// Fig. 5 propagation rule, on a pipeline DAG of S stages × W tasks.
// With propagation, the master renews only the running stage's task
// prefixes (their direct parents and all descendants renew for free);
// without it, every prefix whose data must stay alive needs its own
// renewal.
func AblationLeases(w io.Writer, opts Options) error {
	stages, width := 8, 16
	if opts.Quick {
		stages, width = 4, 8
	}
	cfg := core.TestConfig()
	cfg.LeaseDuration = time.Hour
	ctrl, err := controller.New(controller.Options{
		Config: cfg, Persist: persist.NewMemStore(), DisableExpiry: true,
	})
	if err != nil {
		return err
	}
	defer ctrl.Close()

	if err := ctrl.RegisterJob("abl"); err != nil {
		return err
	}
	// Pipeline DAG: stage s task i depends on stage s-1 task i.
	var nodes []proto.DagNode
	for s := 0; s < stages; s++ {
		for i := 0; i < width; i++ {
			n := proto.DagNode{Name: fmt.Sprintf("s%dt%d", s, i)}
			if s > 0 {
				n.Parents = []string{fmt.Sprintf("s%dt%d", s-1, i)}
			}
			nodes = append(nodes, n)
		}
	}
	if err := ctrl.CreateHierarchy(proto.CreateHierarchyReq{Job: "abl", Nodes: nodes}); err != nil {
		return err
	}

	// Scenario: stage `running` is executing; its own data plus every
	// upstream input and downstream placeholder must stay alive.
	running := stages / 2

	// With propagation: renew the running stage's prefixes only.
	withMsgs := width
	withTouched := 0
	for i := 0; i < width; i++ {
		path := pipelinePath("abl", running, i)
		n, err := ctrl.RenewLease([]core.Path{path})
		if err != nil {
			return err
		}
		withTouched += n
	}

	// Without propagation: each prefix that must stay alive is renewed
	// individually — the running stage, its direct inputs, and all
	// downstream stages (what propagation covered above).
	withoutMsgs := width /* running */ + width /* inputs */ + (stages-running-1)*width
	tbl := metrics.NewTable("Ablation: hierarchical lease propagation (Fig. 5 rule)",
		"scheme", "renewal messages/round", "nodes kept alive")
	tbl.AddRow("with propagation", withMsgs, withTouched)
	tbl.AddRow("without (per-prefix renewals)", withoutMsgs, withTouched)
	fprintln(w, "%s", tbl.String())
	fprintln(w, "propagation cuts control-plane renewal traffic %.1fx on an %d-stage x %d-task pipeline.",
		float64(withoutMsgs)/float64(withMsgs), stages, width)
	return nil
}

func pipelinePath(job string, stage, task int) core.Path {
	p := core.Path(job)
	for s := 0; s <= stage; s++ {
		p = p.MustChild(fmt.Sprintf("s%dt%d", s, task))
	}
	return p
}

// AblationProactive compares enqueue latency tails with the proactive
// Fig. 8 overload signal enabled (servers pre-extend the queue as the
// tail passes the high threshold) versus disabled (clients discover
// full tails and request scaling reactively).
func AblationProactive(w io.Writer, opts Options) error {
	items := 3000
	if opts.Quick {
		items = 800
	}
	run := func(proactive bool) (*metrics.Histogram, error) {
		cfg := core.TestConfig()
		cfg.LeaseDuration = time.Minute
		if !proactive {
			// Threshold 100% disables the early server signal; clients
			// hit ErrBlockFull and scale reactively.
			cfg.HighThreshold = 1.0
		}
		cluster, err := jiffy.StartCluster(jiffy.ClusterOptions{
			Config: cfg, Servers: 2, BlocksPerServer: 256,
		})
		if err != nil {
			return nil, err
		}
		defer cluster.Close()
		c, err := cluster.Connect(context.Background())
		if err != nil {
			return nil, err
		}
		defer c.Close()
		c.RegisterJob(context.Background(), "abl")
		if _, _, err := c.CreatePrefix(context.Background(), "abl/q", nil, core.DSQueue, 1, 0); err != nil {
			return nil, err
		}
		q, err := c.OpenQueue(context.Background(), "abl/q")
		if err != nil {
			return nil, err
		}
		item := make([]byte, core.KB)
		h := metrics.NewHistogram()
		for i := 0; i < items; i++ {
			start := time.Now()
			if err := q.Enqueue(context.Background(), item); err != nil {
				return nil, err
			}
			h.Record(time.Since(start))
		}
		return h, nil
	}
	pro, err := run(true)
	if err != nil {
		return err
	}
	reactive, err := run(false)
	if err != nil {
		return err
	}
	tbl := metrics.NewTable("Ablation: proactive overload signals (Fig. 8) vs reactive-only scaling",
		"scheme", "p50", "p99", "max")
	tbl.AddRow("proactive signal", pro.Percentile(50), pro.Percentile(99), pro.Max())
	tbl.AddRow("reactive only", reactive.Percentile(50), reactive.Percentile(99), reactive.Max())
	fprintln(w, "%s", tbl.String())
	fprintln(w, "reactive-only writers absorb the full allocate+link round trip in their tail;")
	fprintln(w, "the proactive signal hides it behind foreground writes (p99 ratio %.1fx).",
		float64(reactive.Percentile(99))/float64(pro.Percentile(99)))
	return nil
}

// AblationCuckoo compares the KV shard's cuckoo hash table against a
// mutex-protected Go map under concurrent reads — the §6.2 attribution
// of Jiffy's KV performance to "its use of cuckoo hashing".
func AblationCuckoo(w io.Writer, opts Options) error {
	const entries = 50_000
	duration := 400 * time.Millisecond
	readers := 8
	if opts.Quick {
		duration = 150 * time.Millisecond
		readers = 4
	}
	keys := make([]string, entries)
	val := []byte("0123456789abcdef")
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%d", i)
	}

	// Cuckoo table.
	ct := cuckoo.New(entries)
	for _, k := range keys {
		ct.Put(k, val)
	}
	cuckooOps := parallelReads(readers, duration, func(i int) {
		ct.Get(keys[i%entries])
	})

	// Mutex map.
	var mu sync.RWMutex
	mp := make(map[string][]byte, entries)
	for _, k := range keys {
		mp[k] = val
	}
	mapOps := parallelReads(readers, duration, func(i int) {
		mu.RLock()
		_ = mp[keys[i%entries]]
		mu.RUnlock()
	})

	tbl := metrics.NewTable("Ablation: cuckoo hashing vs RWMutex map (concurrent gets)",
		"engine", "reads/sec (millions)")
	tbl.AddRow("cuckoo (per-shard engine)", float64(cuckooOps)/duration.Seconds()/1e6)
	tbl.AddRow("RWMutex + map", float64(mapOps)/duration.Seconds()/1e6)
	fprintln(w, "%s", tbl.String())
	fprintln(w, "(single-core hosts show parity; the gap appears with true parallel readers.)")
	return nil
}

func parallelReads(readers int, d time.Duration, read func(i int)) int64 {
	var total int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			n := 0
			for i := r; ; i += readers {
				select {
				case <-stop:
					mu.Lock()
					total += int64(n)
					mu.Unlock()
					return
				default:
					read(i)
					n++
				}
			}
		}(r)
	}
	time.Sleep(d)
	close(stop)
	wg.Wait()
	return total
}
