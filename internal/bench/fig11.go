package bench

import (
	"context"
	"fmt"
	"io"
	"sync"
	"time"

	"jiffy"
	"jiffy/internal/core"
	"jiffy/internal/metrics"
	"jiffy/internal/proto"
	"jiffy/internal/trace"
)

// Fig11a reproduces the paper's Fig. 11(a): allocated vs. used memory
// over time for each built-in data structure (FIFO queue, file,
// KV-store) under a bursty write/consume workload with short leases —
// demonstrating lease-based reclamation tracking the data's useful
// life. The KV-store is driven with Zipf-distributed keys, which
// (as in the paper) causes skewed splits and transient
// over-allocation.
func Fig11a(w io.Writer, opts Options) error {
	window := 6 * time.Second
	if opts.Quick {
		window = 2 * time.Second
	}
	for _, structure := range []core.DSType{core.DSQueue, core.DSFile, core.DSKV} {
		used, allocated, err := runLifetimeTrace(structure, window, opts)
		if err != nil {
			return fmt.Errorf("fig11a %v: %w", structure, err)
		}
		fprintln(w, "== Fig. 11(a) %s: normalized storage over time ==", structure)
		peak := allocated.Max()
		printSeries(w, "allocated", allocated.Normalize(peak), 20)
		printSeries(w, "used (intermediate data)", used.Normalize(peak), 20)
		eff := 0.0
		if allocated.Integral() > 0 {
			eff = used.Integral() / allocated.Integral() * 100
		}
		fprintln(w, "%s: time-averaged used/allocated = %.1f%%", structure, eff)
		fprintln(w, "")
	}
	return nil
}

// runLifetimeTrace drives one data structure through write → consume →
// idle phases and samples used/allocated bytes.
func runLifetimeTrace(structure core.DSType, window time.Duration, opts Options) (used, allocated *metrics.Series, err error) {
	cfg := core.TestConfig()
	cfg.LeaseDuration = 400 * time.Millisecond
	cfg.LeaseScanPeriod = 50 * time.Millisecond
	cluster, err := jiffy.StartCluster(jiffy.ClusterOptions{
		Config: cfg, Servers: 2, BlocksPerServer: 128,
	})
	if err != nil {
		return nil, nil, err
	}
	defer cluster.Close()
	c, err := cluster.Connect(context.Background())
	if err != nil {
		return nil, nil, err
	}
	defer c.Close()
	if err := c.RegisterJob(context.Background(), "fig11a"); err != nil {
		return nil, nil, err
	}
	path := core.MustPath("fig11a", "ds")
	if _, _, err := c.CreatePrefix(context.Background(), path, nil, structure, 1, 0); err != nil {
		return nil, nil, err
	}
	renewer := c.StartRenewer(100*time.Millisecond, path)

	used = &metrics.Series{Name: "used"}
	allocated = &metrics.Series{Name: "allocated"}
	var mu sync.Mutex
	stop := make(chan struct{})
	var samplerWG sync.WaitGroup
	samplerWG.Add(1)
	go func() {
		defer samplerWG.Done()
		ticker := time.NewTicker(50 * time.Millisecond)
		defer ticker.Stop()
		for {
			select {
			case <-stop:
				return
			case <-ticker.C:
				var u int
				for _, s := range cluster.Servers {
					_, ub, _ := s.Store().Stats()
					u += ub
				}
				stats, err := c.ControllerStats(context.Background())
				if err != nil {
					continue
				}
				mu.Lock()
				now := time.Now()
				used.Add(now, float64(u))
				allocated.Add(now, float64(stats.AllocatedBlocks*cfg.BlockSize))
				mu.Unlock()
			}
		}
	}()

	// Phase 1 (first third): write a paced burst of data, sized well
	// inside the pool (2 servers × 128 × 64KB = 16MB) so scaling is
	// driven by the structure filling blocks, not pool exhaustion.
	phase := window / 3
	item := make([]byte, 2*core.KB)
	const totalWrites = 1500 // ~3MB
	pace := phase / totalWrites
	zipf := trace.ZipfKeys(opts.seed(), 1.2, 4096)
	q, f, kv, err := openHandles(c, path, structure)
	if err != nil {
		return nil, nil, err
	}
	writeUntil := time.Now().Add(phase)
	for writes := 0; writes < totalWrites && time.Now().Before(writeUntil); writes++ {
		switch structure {
		case core.DSQueue:
			err = q.Enqueue(context.Background(), item)
		case core.DSFile:
			_, err = f.AppendRecord(context.Background(), item)
		case core.DSKV:
			err = kv.Put(context.Background(), zipf(), item)
		}
		if err != nil {
			return nil, nil, err
		}
		if writes%8 == 0 {
			time.Sleep(8 * pace)
		}
	}
	// Phase 2 (second third): consume.
	consumeUntil := time.Now().Add(window / 3)
	for time.Now().Before(consumeUntil) {
		switch structure {
		case core.DSQueue:
			if _, err := q.Dequeue(context.Background()); err != nil {
				time.Sleep(5 * time.Millisecond)
			}
		case core.DSFile:
			f.ReadAt(context.Background(), 0, 64*core.KB)
			time.Sleep(time.Millisecond)
		case core.DSKV:
			kv.Get(context.Background(), zipf())
			time.Sleep(time.Millisecond)
		}
	}
	// Phase 3: stop renewing; the lease lapses and Jiffy reclaims.
	renewer.Stop()
	time.Sleep(window / 3)

	close(stop)
	samplerWG.Wait()
	mu.Lock()
	defer mu.Unlock()
	return used, allocated, nil
}

func openHandles(c *jiffy.Client, path core.Path, structure core.DSType) (*jiffy.Queue, *jiffy.File, *jiffy.KV, error) {
	switch structure {
	case core.DSQueue:
		q, err := c.OpenQueue(context.Background(), path)
		return q, nil, nil, err
	case core.DSFile:
		f, err := c.OpenFile(context.Background(), path)
		return nil, f, nil, err
	case core.DSKV:
		kv, err := c.OpenKV(context.Background(), path)
		return nil, nil, kv, err
	}
	return nil, nil, nil, fmt.Errorf("bench: unsupported structure %v", structure)
}

// Fig11b reproduces the paper's Fig. 11(b): the CDF of per-block data
// repartitioning latency for the three data structures (left), and the
// latency of KV gets before vs. during repartitioning (right),
// demonstrating that repartitioning barely perturbs foreground
// operations.
func Fig11b(w io.Writer, opts Options) error {
	splits := 30
	if opts.Quick {
		splits = 8
	}
	cfg := core.TestConfig()
	cfg.BlockSize = 256 * core.KB
	cfg.LeaseDuration = time.Minute
	cluster, err := jiffy.StartCluster(jiffy.ClusterOptions{
		Config: cfg, Servers: 2, BlocksPerServer: 256,
	})
	if err != nil {
		return err
	}
	defer cluster.Close()
	c, err := cluster.Connect(context.Background())
	if err != nil {
		return err
	}
	defer c.Close()
	if err := c.RegisterJob(context.Background(), "fig11b"); err != nil {
		return err
	}

	// --- repartition latency per structure -----------------------------
	for _, structure := range []core.DSType{core.DSQueue, core.DSFile, core.DSKV} {
		h := metrics.NewHistogram()
		for i := 0; i < splits; i++ {
			d, err := measureScaleUp(c, cluster, structure, i)
			if err != nil {
				return fmt.Errorf("fig11b %v: %w", structure, err)
			}
			h.Record(d)
		}
		fprintln(w, "== Fig. 11(b) left: %s repartition latency ==", structure)
		for _, p := range h.CDF(11) {
			fprintln(w, "%.2f  %v", p.Fraction, p.Value)
		}
		fprintln(w, "summary: %s", h.Summary())
		fprintln(w, "")
	}

	// --- op latency before vs during KV repartitioning -----------------
	path := core.MustPath("fig11b", "live")
	if _, _, err := c.CreatePrefix(context.Background(), path, nil, core.DSKV, 1, 0); err != nil {
		return err
	}
	kv, err := c.OpenKV(context.Background(), path)
	if err != nil {
		return err
	}
	val := make([]byte, 8*core.KB)
	// Preload some keys to read.
	for i := 0; i < 16; i++ {
		if err := kv.Put(context.Background(), fmt.Sprintf("read-%d", i), val); err != nil {
			return err
		}
	}
	before := metrics.NewHistogram()
	for i := 0; i < 300; i++ {
		start := time.Now()
		if _, err := kv.Get(context.Background(), fmt.Sprintf("read-%d", i%16)); err != nil {
			return err
		}
		before.Record(time.Since(start))
	}
	// Background writer forces continuous splits while we read.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		writer, err := c.OpenKV(context.Background(), path)
		if err != nil {
			return
		}
		i := 0
		for {
			select {
			case <-stop:
				return
			default:
				writer.Put(context.Background(), fmt.Sprintf("fill-%d", i), val)
				i++
			}
		}
	}()
	during := metrics.NewHistogram()
	for i := 0; i < 300; i++ {
		start := time.Now()
		if _, err := kv.Get(context.Background(), fmt.Sprintf("read-%d", i%16)); err != nil {
			return err
		}
		during.Record(time.Since(start))
	}
	close(stop)
	wg.Wait()

	fprintln(w, "== Fig. 11(b) right: get latency before vs during repartitioning ==")
	fprintln(w, "before:  %s", before.Summary())
	fprintln(w, "during:  %s", during.Summary())
	fprintln(w, "p50 ratio during/before = %.2fx (paper: nearly identical CDFs)",
		float64(during.Percentile(50))/float64(before.Percentile(50)))
	return nil
}

// measureScaleUp creates a structure, fills its first block to the
// brink, and times one controller-orchestrated scale-up — for KV this
// includes moving half the pairs to the new block (Fig. 8 end-to-end).
func measureScaleUp(c *jiffy.Client, cluster *jiffy.Cluster,
	structure core.DSType, i int) (time.Duration, error) {

	path := core.MustPath("fig11b", fmt.Sprintf("%s-%d", structure, i))
	m, _, err := c.CreatePrefix(context.Background(), path, nil, structure, 1, 0)
	if err != nil {
		return 0, err
	}
	blockSize := cluster.Controller.Config().BlockSize
	// Fill to ~90% so the split moves a realistic amount of data but
	// the proactive signal has not fired yet (threshold 95%).
	payload := make([]byte, core.KB)
	target := int(0.9 * float64(blockSize))
	switch structure {
	case core.DSQueue:
		q, err := c.OpenQueue(context.Background(), path)
		if err != nil {
			return 0, err
		}
		for written := 0; written < target; written += len(payload) {
			if err := q.Enqueue(context.Background(), payload); err != nil {
				return 0, err
			}
		}
	case core.DSFile:
		f, err := c.OpenFile(context.Background(), path)
		if err != nil {
			return 0, err
		}
		if err := f.WriteAt(context.Background(), 0, make([]byte, target)); err != nil {
			return 0, err
		}
	case core.DSKV:
		kv, err := c.OpenKV(context.Background(), path)
		if err != nil {
			return 0, err
		}
		for written, k := 0, 0; written < target; written, k = written+len(payload), k+1 {
			if err := kv.Put(context.Background(), fmt.Sprintf("fill-%d-%d", i, k), payload); err != nil {
				return 0, err
			}
		}
	}
	start := time.Now()
	if _, err := cluster.Controller.ScaleUp(proto.ScaleUpReq{
		Path: path, Block: m.Blocks[0].Info.ID,
	}); err != nil {
		return 0, err
	}
	d := time.Since(start)
	// Clean up so each measurement starts fresh.
	if err := c.RemovePrefix(context.Background(), path); err != nil {
		return 0, err
	}
	return d, nil
}
