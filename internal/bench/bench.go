// Package bench regenerates every table and figure of the paper's
// evaluation (§6). Each FigNN function runs the corresponding
// experiment — live Jiffy clusters for the systems measurements,
// trace-driven simulation for the capacity studies — and prints the
// same rows/series the paper plots. cmd/jiffy-bench exposes them as
// subcommands; the repo-root benchmarks wrap them with testing.B.
//
// Absolute numbers will differ from the paper (laptop vs. EC2 + AWS
// Lambda); the reproduction target is the shape: orderings, ratios and
// crossover points. EXPERIMENTS.md records paper-vs-measured values.
package bench

import (
	"fmt"
	"io"
	"time"

	"jiffy/internal/core"
	"jiffy/internal/metrics"
)

// Options tunes experiment scale; zero values mean laptop defaults.
type Options struct {
	// Quick shrinks workloads for smoke-testing the harness.
	Quick bool
	// Seed fixes workload generation.
	Seed int64
}

func (o Options) seed() int64 {
	if o.Seed == 0 {
		return 42
	}
	return o.Seed
}

// fprintln writes a line, ignoring errors (best-effort reporting).
func fprintln(w io.Writer, format string, args ...interface{}) {
	fmt.Fprintf(w, format+"\n", args...)
}

// printSeries renders a time series as "t  value" rows.
func printSeries(w io.Writer, title string, s *metrics.Series, maxRows int) {
	fprintln(w, "# %s", title)
	ds := s.Downsample(maxRows)
	for _, p := range ds.Points {
		fprintln(w, "%8.1f  %.4f", p.T.Sub(time.Unix(0, 0)).Seconds(), p.V)
	}
}

// sizeLabel formats object sizes like the paper's x axis.
func sizeLabel(n int) string {
	switch {
	case n >= core.MB:
		return fmt.Sprintf("%dMB", n/core.MB)
	case n >= core.KB:
		return fmt.Sprintf("%dKB", n/core.KB)
	default:
		return fmt.Sprintf("%dB", n)
	}
}
