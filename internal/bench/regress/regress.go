// Package regress is a small benchmark-regression harness: it runs
// named benchmark functions through testing.Benchmark, emits the
// results as machine-readable JSON (BENCH_hotpath.json is the first
// consumer), and compares a fresh report against a checked-in baseline.
//
// Comparison is hardware-neutral by default. Raw ops/sec differs
// wildly across laptops and CI runners, so instead of absolute
// throughput the default mode checks the metrics that survive a
// machine change: the batch-vs-single speedup ratio per benchmark
// family (a collapsing speedup is exactly the regression the batched
// hot path must guard against) and allocs/op (deterministic for a
// given code version). Same-machine workflows can opt into absolute
// throughput comparison with Options.Absolute.
package regress

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strings"
	"testing"
	"time"
)

// Schema identifies the report format version.
const Schema = "jiffy-bench/1"

// Result is one benchmark's measurement.
type Result struct {
	Name        string  `json:"name"`
	Ops         int     `json:"ops"` // iterations measured (b.N)
	NsPerOp     float64 `json:"ns_per_op"`
	OpsPerSec   float64 `json:"ops_per_sec"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
}

// Report is a full benchmark run.
type Report struct {
	Schema    string    `json:"schema"`
	CreatedAt time.Time `json:"created_at"`
	GoVersion string    `json:"go_version"`
	GOOS      string    `json:"goos"`
	GOARCH    string    `json:"goarch"`
	NumCPU    int       `json:"num_cpu"`
	Quick     bool      `json:"quick,omitempty"`
	// Parallel, when > 1, records that the single-op benchmarks ran in
	// contended mode: that many goroutines issuing ops over one shared
	// session. Reports from different parallelism levels are not
	// comparable, so the field travels with the numbers.
	Parallel int      `json:"parallel,omitempty"`
	Results  []Result `json:"results"`
}

// Bench is one runnable benchmark.
type Bench struct {
	Name string
	F    func(b *testing.B)
}

// Run executes every benchmark through testing.Benchmark and collects
// a report. log, when non-nil, receives one progress line per bench.
//
// rounds > 1 measures each benchmark that many times and keeps the
// best throughput (same technique as the telemetry-overhead A/B
// harness): scheduler and GC interference only ever slows a round
// down, so the fastest round is the closest estimate of the code's
// actual cost, and ratio checks built on best-of-N stop flapping on
// busy single-core runners. Alloc metrics are deterministic per code
// version, so the round choice doesn't affect them.
func Run(benches []Bench, quick bool, rounds int, log func(format string, args ...interface{})) Report {
	if rounds < 1 {
		rounds = 1
	}
	rep := Report{
		Schema:    Schema,
		CreatedAt: time.Now().UTC(),
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
		Quick:     quick,
	}
	for _, bench := range benches {
		res := FromBenchmarkResult(bench.Name, testing.Benchmark(bench.F))
		for round := 1; round < rounds; round++ {
			if r := FromBenchmarkResult(bench.Name, testing.Benchmark(bench.F)); r.OpsPerSec > res.OpsPerSec {
				res = r
			}
		}
		rep.Results = append(rep.Results, res)
		if log != nil {
			log("%-24s %10d ops  %12.0f ops/sec  %8.1f allocs/op\n",
				res.Name, res.Ops, res.OpsPerSec, res.AllocsPerOp)
		}
	}
	return rep
}

// FromBenchmarkResult converts a testing.BenchmarkResult.
func FromBenchmarkResult(name string, r testing.BenchmarkResult) Result {
	ns := float64(r.NsPerOp())
	ops := 0.0
	if r.T > 0 {
		ops = float64(r.N) / r.T.Seconds()
	}
	return Result{
		Name:        name,
		Ops:         r.N,
		NsPerOp:     ns,
		OpsPerSec:   ops,
		AllocsPerOp: float64(r.AllocsPerOp()),
		BytesPerOp:  float64(r.AllocedBytesPerOp()),
	}
}

// Find returns the named result.
func (rep *Report) Find(name string) (Result, bool) {
	for _, r := range rep.Results {
		if r.Name == name {
			return r, true
		}
	}
	return Result{}, false
}

// WriteFile marshals the report to path.
func (rep *Report) WriteFile(path string) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadFile loads a report from path.
func ReadFile(path string) (Report, error) {
	var rep Report
	data, err := os.ReadFile(path)
	if err != nil {
		return rep, err
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		return rep, fmt.Errorf("regress: parse %s: %w", path, err)
	}
	if rep.Schema != Schema {
		return rep, fmt.Errorf("regress: %s has schema %q, want %q", path, rep.Schema, Schema)
	}
	return rep, nil
}

// Options configures Compare.
type Options struct {
	// Tolerance is the allowed fractional slack (0.25 = a 25% drop
	// fails).
	Tolerance float64
	// Absolute additionally compares raw ops/sec per benchmark — only
	// meaningful when baseline and current ran on the same machine.
	Absolute bool
	// Improvements are claimed wins that Compare enforces as floors:
	// an optimization lands together with the ratio it promises, and
	// the gate fails if the promise erodes.
	Improvements []Improvement
}

// Improvement pins a performance win against the committed baseline: a
// benchmark must now beat its baseline by at least MinOpsRatio in
// ops/sec and stay under MaxBytesRatio in allocated bytes/op. Like the
// batch-speedup check, ratios against the same-file baseline survive a
// machine change better than absolute numbers.
type Improvement struct {
	// Name is the benchmark the claim is about.
	Name string
	// MinOpsRatio is the required current/baseline ops-per-sec floor
	// (1.5 = at least 1.5x the baseline throughput). Zero skips the
	// throughput check.
	MinOpsRatio float64
	// MaxBytesRatio is the allowed current/baseline allocated-bytes
	// ceiling (0.5 = at most half the baseline bytes/op). Zero skips
	// the bytes check.
	MaxBytesRatio float64
}

// Speedups extracts the batch-vs-single ops/sec ratio for every
// benchmark family present as both <family>Single and <family>Batch.
func (rep *Report) Speedups() map[string]float64 {
	out := make(map[string]float64)
	for _, r := range rep.Results {
		fam, ok := strings.CutSuffix(r.Name, "Single")
		if !ok {
			continue
		}
		if batch, found := rep.Find(fam + "Batch"); found && r.OpsPerSec > 0 {
			out[fam] = batch.OpsPerSec / r.OpsPerSec
		}
	}
	return out
}

// Compare reports regressions of current against baseline; an empty
// slice means the run is clean. Checks, in order: every baseline
// benchmark still present; per-family batch speedup not collapsed by
// more than Tolerance; allocs/op not grown by more than Tolerance
// (plus one alloc of absolute slack); and, with Absolute, raw ops/sec
// not dropped by more than Tolerance.
func Compare(baseline, current Report, opts Options) []string {
	tol := opts.Tolerance
	var regs []string

	for _, b := range baseline.Results {
		c, ok := current.Find(b.Name)
		if !ok {
			regs = append(regs, fmt.Sprintf("%s: missing from current run", b.Name))
			continue
		}
		if allowed := b.AllocsPerOp*(1+tol) + 1; c.AllocsPerOp > allowed {
			regs = append(regs, fmt.Sprintf("%s: allocs/op %.1f exceeds baseline %.1f (+%d%% tolerance)",
				b.Name, c.AllocsPerOp, b.AllocsPerOp, int(tol*100)))
		}
		if opts.Absolute && c.OpsPerSec < b.OpsPerSec*(1-tol) {
			regs = append(regs, fmt.Sprintf("%s: ops/sec %.0f below baseline %.0f (-%d%% tolerance)",
				b.Name, c.OpsPerSec, b.OpsPerSec, int(tol*100)))
		}
	}

	// A family whose Single member carries a throughput-improvement
	// claim is exempt from the speedup floor: the claim's denominator is
	// the very single-op cost the speedup ratio divides by, so making
	// singles faster legitimately shrinks the family's batch speedup.
	// The improvement floor below guards the single side; the batch
	// side stays guarded by its own presence/allocs checks (and by
	// Absolute mode where enabled).
	improved := make(map[string]bool)
	for _, imp := range opts.Improvements {
		if imp.MinOpsRatio >= 1 {
			improved[imp.Name] = true
		}
	}

	baseSpeedups := baseline.Speedups()
	curSpeedups := current.Speedups()
	fams := make([]string, 0, len(baseSpeedups))
	for fam := range baseSpeedups {
		fams = append(fams, fam)
	}
	sort.Strings(fams)
	for _, fam := range fams {
		base := baseSpeedups[fam]
		cur, ok := curSpeedups[fam]
		if !ok {
			regs = append(regs, fmt.Sprintf("%s: speedup pair missing from current run", fam))
			continue
		}
		if improved[fam+"Single"] {
			continue
		}
		if cur < base*(1-tol) {
			regs = append(regs, fmt.Sprintf("%s: batch speedup %.2fx below baseline %.2fx (-%d%% tolerance)",
				fam, cur, base, int(tol*100)))
		}
	}

	for _, imp := range opts.Improvements {
		b, ok := baseline.Find(imp.Name)
		if !ok {
			regs = append(regs, fmt.Sprintf("%s: improvement claimed but benchmark missing from baseline", imp.Name))
			continue
		}
		c, ok := current.Find(imp.Name)
		if !ok {
			// Already reported as missing above; don't double-count.
			continue
		}
		if imp.MinOpsRatio > 0 && b.OpsPerSec > 0 {
			if ratio := c.OpsPerSec / b.OpsPerSec; ratio < imp.MinOpsRatio {
				regs = append(regs, fmt.Sprintf("%s: ops/sec only %.2fx baseline, improvement requires >= %.2fx",
					imp.Name, ratio, imp.MinOpsRatio))
			}
		}
		if imp.MaxBytesRatio > 0 && b.BytesPerOp > 0 {
			if ratio := c.BytesPerOp / b.BytesPerOp; ratio > imp.MaxBytesRatio {
				regs = append(regs, fmt.Sprintf("%s: bytes/op at %.2fx baseline, improvement requires <= %.2fx",
					imp.Name, ratio, imp.MaxBytesRatio))
			}
		}
	}
	return regs
}
