package bench

import (
	"io"
	"time"

	"jiffy/internal/metrics"
	"jiffy/internal/trace"
)

// Fig1 reproduces the paper's Fig. 1: analysis of a Snowflake-like
// workload for four tenants over a one-hour window.
//
//	(a) per-tenant intermediate data over time, normalized by each
//	    tenant's mean usage — the ratio swings over orders of magnitude;
//	(b) cumulative intermediate data normalized by the aggregate peak,
//	    showing the waste of provisioning for peak (average utilization
//	    well below 100%).
func Fig1(w io.Writer, opts Options) error {
	cfg := trace.DefaultConfig()
	if opts.Quick {
		cfg.Window = 10 * time.Minute
		cfg.JobsPerTenant = 30
	}
	tr := trace.Generate(cfg, opts.seed())
	step := cfg.Window / 120

	fprintln(w, "== Fig. 1(a): per-tenant intermediate data (normalized by mean) ==")
	for tenant := 0; tenant < tr.Tenants; tenant++ {
		s := tr.Series(tenant, step)
		norm := s.Normalize(s.Mean())
		printSeries(w, metricName("tenant", tenant), norm, 24)
		fprintln(w, "tenant %d: peak/avg = %.1fx", tenant, tr.PeakToAverage(tenant, step))
	}

	fprintln(w, "")
	fprintln(w, "== Fig. 1(b): cumulative intermediate data (normalized by peak) ==")
	total := tr.TotalSeries(step)
	peak := total.Max()
	printSeries(w, "all tenants", total.Normalize(peak), 24)

	util := 0.0
	if peak > 0 {
		util = total.Mean() / peak * 100
	}
	fprintln(w, "average utilization at peak provisioning: %.1f%% (paper: <10%% per tenant, 19%% overall)", util)

	tbl := metrics.NewTable("Fig. 1 summary", "tenant", "peak/avg", "mean(bytes)", "peak(bytes)")
	for tenant := 0; tenant < tr.Tenants; tenant++ {
		s := tr.Series(tenant, step)
		tbl.AddRow(tenant, tr.PeakToAverage(tenant, step), s.Mean(), s.Max())
	}
	fprintln(w, "%s", tbl.String())
	return nil
}

func metricName(prefix string, i int) string {
	return prefix + "#" + string(rune('0'+i%10))
}
