package ctrlscale

import (
	"testing"
	"time"
)

// TestMeasureSmoke runs the shard-scaling harness at toy scale: both
// shard configurations must complete without a worker dying and report
// nonzero throughput. The 2x ratio itself is gated in CI hardware via
// jiffy-regress -ctrl-scale, not here — a unit test box may have one
// core.
func TestMeasureSmoke(t *testing.T) {
	p := Params{Blocks: 2048, Jobs: 16, Workers: 4, Duration: 50 * time.Millisecond}
	for _, shards := range []int{1, 4} {
		res, err := Measure(shards, p)
		if err != nil {
			t.Fatalf("Measure(%d shards): %v", shards, err)
		}
		if res.KOps <= 0 {
			t.Fatalf("Measure(%d shards) reported zero throughput", shards)
		}
		if res.Shards != shards || res.Blocks != p.Blocks {
			t.Fatalf("result %+v does not echo params", res)
		}
	}
	if s := ScaledShards(); s < 2 || s > 8 {
		t.Fatalf("ScaledShards() = %d, want within [2, 8]", s)
	}
}
