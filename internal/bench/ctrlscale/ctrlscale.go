// Package ctrlscale measures the controller metadata plane's shard
// scaling (the paper's Fig. 12(b) claim): create/lookup/renew
// throughput against a metadata set sized in blocks, driven directly
// in-process so shard-lock contention — not the RPC stack — is the
// measured variable. The regress gate compares N shard workers against
// the single-lock baseline and fails when the speedup falls below the
// claimed floor.
package ctrlscale

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"jiffy/internal/controller"
	"jiffy/internal/core"
	"jiffy/internal/proto"
)

// Params sizes the measured metadata plane.
type Params struct {
	// Blocks is the allocator population (the paper's 10^6-block
	// scale point; quick mode drops an order of magnitude).
	Blocks int
	// Jobs is the number of independent hierarchies, hashed across
	// shards.
	Jobs int
	// Workers is the closed-loop load generator count.
	Workers int
	// Duration is the measurement window per shard configuration.
	Duration time.Duration
}

// DefaultParams returns the full-scale (10^6 blocks) or quick (10^5)
// profile.
func DefaultParams(quick bool) Params {
	p := Params{
		Blocks:   1_000_000,
		Jobs:     512,
		Workers:  2 * runtime.GOMAXPROCS(0),
		Duration: time.Second,
	}
	if quick {
		p.Blocks = 100_000
		p.Jobs = 128
		p.Duration = 300 * time.Millisecond
	}
	return p
}

// Result is one shard-count measurement.
type Result struct {
	Shards  int
	Workers int
	Jobs    int
	Blocks  int
	KOps    float64
}

// Measure runs the closed-loop metadata workload against a controller
// with the given shard count: the allocator is populated to
// Params.Blocks via virtual server registrations, Params.Jobs
// hierarchies are spread across the shards, and every worker loop
// issues the §4.1 control ops — a lease lookup, a lease renewal, and
// periodically a create/remove pair of a transient hierarchy node.
// No data plane is attached: the ops touch only shard-scoped metadata,
// so the single-lock vs sharded comparison isolates the lock domain.
func Measure(shards int, p Params) (Result, error) {
	cfg := core.TestConfig()
	cfg.LeaseDuration = time.Hour // nothing expires mid-benchmark
	ctrl, err := controller.New(controller.Options{
		Config: cfg, Shards: shards, DisableExpiry: true,
	})
	if err != nil {
		return Result{}, err
	}
	defer ctrl.Close()

	// Virtual fleet: registration populates the allocator without
	// probing the servers, so the block count scales freely.
	const vServers = 64
	per := p.Blocks / vServers
	if per < 1 {
		per = 1
	}
	for i := 0; i < vServers; i++ {
		if _, err := ctrl.RegisterServer(fmt.Sprintf("mem://ctrlscale-srv-%d", i), per); err != nil {
			return Result{}, err
		}
	}
	paths := make([]core.Path, p.Jobs)
	for j := range paths {
		job := core.JobID(fmt.Sprintf("sj%d", j))
		if err := ctrl.RegisterJob(job); err != nil {
			return Result{}, err
		}
		if err := ctrl.CreateHierarchy(proto.CreateHierarchyReq{
			Job:   job,
			Nodes: []proto.DagNode{{Name: "stage", Type: core.DSNone}},
		}); err != nil {
			return Result{}, err
		}
		paths[j] = core.Path(fmt.Sprintf("sj%d/stage", j))
	}

	var ops atomic.Int64
	var failed atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < p.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; ; i += p.Workers {
				select {
				case <-stop:
					return
				default:
				}
				path := paths[i%len(paths)]
				if _, err := ctrl.LeaseInfo(path); err != nil {
					failed.Add(1)
					return
				}
				if _, err := ctrl.RenewLease([]core.Path{path}); err != nil {
					failed.Add(1)
					return
				}
				n := int64(2)
				if i%8 == 0 {
					job := path.Job()
					name := fmt.Sprintf("t%d", w)
					if err := ctrl.CreateHierarchy(proto.CreateHierarchyReq{
						Job:   job,
						Nodes: []proto.DagNode{{Name: name, Type: core.DSNone}},
					}); err != nil {
						failed.Add(1)
						return
					}
					if err := ctrl.RemovePrefix(core.Path(string(job)).MustChild(name)); err != nil {
						failed.Add(1)
						return
					}
					n += 2
				}
				ops.Add(n)
			}
		}(w)
	}
	time.Sleep(p.Duration)
	close(stop)
	wg.Wait()
	if failed.Load() > 0 {
		return Result{}, fmt.Errorf("ctrlscale: %d worker(s) died mid-measurement", failed.Load())
	}
	return Result{
		Shards:  shards,
		Workers: p.Workers,
		Jobs:    p.Jobs,
		Blocks:  p.Blocks,
		KOps:    float64(ops.Load()) / p.Duration.Seconds() / 1000,
	}, nil
}

// ScaledShards is the shard count the gate compares against the
// single-lock baseline — the paper's 8-core point, never below two.
func ScaledShards() int {
	s := runtime.GOMAXPROCS(0)
	if s > 8 {
		s = 8
	}
	if s < 2 {
		s = 2
	}
	return s
}

// Gate measures the single-lock baseline and the sharded configuration
// best-of-rounds and returns both plus the speedup. Best-of-N per side:
// scheduler interference only ever slows a round down, so the fastest
// round of each side is the closest estimate of its actual capacity
// and the ratio stops flapping on busy runners.
func Gate(quick bool, rounds int, log func(format string, args ...interface{})) (base, scaled Result, ratio float64, err error) {
	if rounds < 1 {
		rounds = 1
	}
	p := DefaultParams(quick)
	shards := ScaledShards()
	for round := 0; round < rounds; round++ {
		b, err := Measure(1, p)
		if err != nil {
			return base, scaled, 0, err
		}
		if b.KOps > base.KOps {
			base = b
		}
		s, err := Measure(shards, p)
		if err != nil {
			return base, scaled, 0, err
		}
		if s.KOps > scaled.KOps {
			scaled = s
		}
		if log != nil {
			log("ctrl-scale round %d: 1 shard %.1f KOps, %d shards %.1f KOps\n",
				round+1, b.KOps, shards, s.KOps)
		}
	}
	if base.KOps <= 0 {
		return base, scaled, 0, fmt.Errorf("ctrlscale: baseline measured zero throughput")
	}
	return base, scaled, scaled.KOps / base.KOps, nil
}
