package bench

import (
	"bytes"
	"io"
	"strings"
	"testing"
)

// quick runs a figure generator in Quick mode and returns its output.
func quick(t *testing.T, fn func(io.Writer, Options) error) string {
	t.Helper()
	var buf bytes.Buffer
	if err := fn(&buf, Options{Quick: true}); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func TestFig1(t *testing.T) {
	out := quick(t, Fig1)
	for _, want := range []string{"Fig. 1(a)", "Fig. 1(b)", "peak/avg", "average utilization"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in output", want)
		}
	}
}

func TestFig9(t *testing.T) {
	out := quick(t, Fig9)
	for _, want := range []string{"Fig. 9(a)", "Fig. 9(b)", "ElastiCache", "Pocket", "Jiffy", "100"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in output", want)
		}
	}
}

func TestFig10(t *testing.T) {
	out := quick(t, Fig10)
	for _, want := range []string{"write latency", "read latency", "MB/s", "Jiffy", "DynamoDB"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in output", want)
		}
	}
	// DynamoDB must reject the 512KB object.
	if !strings.Contains(out, "n/s") {
		t.Error("DynamoDB 128KB cap not exercised")
	}
}

func TestFig11a(t *testing.T) {
	out := quick(t, Fig11a)
	for _, want := range []string{"queue", "file", "kv", "allocated", "used"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in output", want)
		}
	}
}

func TestFig11b(t *testing.T) {
	out := quick(t, Fig11b)
	for _, want := range []string{"repartition latency", "before", "during"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in output", want)
		}
	}
}

func TestFig12a(t *testing.T) {
	out := quick(t, Fig12a)
	if !strings.Contains(out, "throughput(KOps)") {
		t.Errorf("output:\n%s", out)
	}
}

func TestFig12b(t *testing.T) {
	out := quick(t, Fig12b)
	if !strings.Contains(out, "speedup") {
		t.Errorf("output:\n%s", out)
	}
}

func TestFig13a(t *testing.T) {
	out := quick(t, Fig13a)
	for _, want := range []string{"latency CDF", "ElastiCache", "Jiffy", "medians"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in output", want)
		}
	}
}

func TestFig13b(t *testing.T) {
	out := quick(t, Fig13b)
	for _, want := range []string{"ExCamera", "rendezvous", "jiffy", "total wait"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in output", want)
		}
	}
}

func TestFig14(t *testing.T) {
	for name, fn := range map[string]func(io.Writer, Options) error{
		"a": Fig14a, "b": Fig14b, "c": Fig14c,
	} {
		out := quick(t, fn)
		if !strings.Contains(out, "sensitivity") {
			t.Errorf("fig14%s output:\n%s", name, out)
		}
	}
}

func TestOverhead(t *testing.T) {
	out := quick(t, Overhead)
	if !strings.Contains(out, "metadata") {
		t.Errorf("output:\n%s", out)
	}
}

func TestAblationLeases(t *testing.T) {
	out := quick(t, AblationLeases)
	if !strings.Contains(out, "propagation cuts") {
		t.Errorf("output:\n%s", out)
	}
}

func TestAblationProactive(t *testing.T) {
	out := quick(t, AblationProactive)
	if !strings.Contains(out, "proactive signal") {
		t.Errorf("output:\n%s", out)
	}
}

func TestAblationCuckoo(t *testing.T) {
	out := quick(t, AblationCuckoo)
	if !strings.Contains(out, "cuckoo") {
		t.Errorf("output:\n%s", out)
	}
}
