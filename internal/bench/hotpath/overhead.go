package hotpath

import (
	"testing"

	"jiffy/internal/bench/regress"
	"jiffy/internal/obs"
)

// OverheadResult compares one benchmark run with telemetry enabled
// against the same benchmark with telemetry globally disabled
// (obs.SetEnabled). Ops/sec are best-of-N per mode.
type OverheadResult struct {
	Name         string
	OnOpsPerSec  float64
	OffOpsPerSec float64
}

// Overhead is the fractional throughput cost of telemetry:
// (off-on)/off. Negative values mean run-to-run noise exceeded the
// overhead — i.e. the cost is unmeasurably small.
func (r OverheadResult) Overhead() float64 {
	if r.OffOpsPerSec <= 0 {
		return 0
	}
	return 1 - r.OnOpsPerSec/r.OffOpsPerSec
}

// MeasureOverhead A/B-tests the batched hot path (the batch=64 regime
// the DESIGN overhead claim is stated for) with telemetry on vs off.
// Modes are interleaved round-robin and the best ops/sec per mode is
// kept, so transient scheduler noise shrinks with more rounds instead
// of accumulating into either side. Telemetry is left enabled on
// return regardless of the toggling.
func MeasureOverhead(quick bool, rounds int, log func(format string, args ...interface{})) []OverheadResult {
	if rounds < 1 {
		rounds = 1
	}
	defer obs.SetEnabled(true)
	p := params{servers: 2, blocksPerServer: 128, keys: 4096}
	if quick {
		p = params{servers: 1, blocksPerServer: 64, keys: 512}
	}
	benches := []regress.Bench{
		{Name: "KVPutBatch", F: p.kvPutBatch},
		{Name: "KVGetBatch", F: p.kvGetBatch},
	}
	var out []OverheadResult
	for _, bench := range benches {
		var on, off float64
		for round := 0; round < rounds; round++ {
			for _, enabled := range []bool{true, false} {
				obs.SetEnabled(enabled)
				res := regress.FromBenchmarkResult(bench.Name, testing.Benchmark(bench.F))
				if enabled {
					if res.OpsPerSec > on {
						on = res.OpsPerSec
					}
				} else if res.OpsPerSec > off {
					off = res.OpsPerSec
				}
			}
		}
		obs.SetEnabled(true)
		r := OverheadResult{Name: bench.Name, OnOpsPerSec: on, OffOpsPerSec: off}
		out = append(out, r)
		if log != nil {
			log("%-24s on %12.0f ops/sec  off %12.0f ops/sec  overhead %+.2f%%\n",
				r.Name, r.OnOpsPerSec, r.OffOpsPerSec, 100*r.Overhead())
		}
	}
	return out
}
