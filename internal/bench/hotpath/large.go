package hotpath

import (
	"context"
	"testing"

	"jiffy"
	"jiffy/internal/core"
)

// Large-value profiles: 64 KiB and 1 MiB File reads/writes and 64 KiB
// KV gets. Shuffle-style transfers of large intermediate objects are
// where payload copies (not per-request overhead) dominate, so these
// profiles are the ones the zero-copy data plane is gated on.

// largeBlockSize is the chunk size for the large-value profiles: big
// enough that a 1 MiB record is a fraction of a chunk, so reads stay
// within one chunk and appends don't roll a block per record.
const largeBlockSize = 4 * core.MB

// largeWriteBudget replaces rolloverBudget for the append profiles;
// 1 MiB records would roll every 8 appends under the small budget.
const largeWriteBudget = 32 * core.MB

func largeParams(quick bool) params {
	p := params{servers: 2, blocksPerServer: 24, keys: 16, blockSize: largeBlockSize}
	if quick {
		p = params{servers: 1, blocksPerServer: 16, keys: 8, blockSize: largeBlockSize}
	}
	return p
}

// fileReadLarge preloads one full chunk and reads aligned size-byte
// spans from it, so every read is served by a single data op against a
// single block.
func (p params) fileReadLarge(size int) func(*testing.B) {
	return func(b *testing.B) {
		c := p.client(b)
		c.RegisterJob(context.Background(), "bench")
		if _, _, err := c.CreatePrefix(context.Background(), "bench/lfile", nil, jiffy.DSFile, 1, 0); err != nil {
			b.Fatal(err)
		}
		f, err := c.OpenFile(context.Background(), "bench/lfile")
		if err != nil {
			b.Fatal(err)
		}
		data := make([]byte, p.blockSize)
		for i := range data {
			data[i] = byte(i)
		}
		if err := f.WriteAt(context.Background(), 0, data); err != nil {
			b.Fatal(err)
		}
		spans := p.blockSize / size
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			got, err := f.ReadAt(context.Background(), (i%spans)*size, size)
			if err != nil {
				b.Fatal(err)
			}
			if len(got) != size {
				b.Fatalf("read %d bytes, want %d", len(got), size)
			}
		}
	}
}

func (p params) fileWriteLarge(size int) func(*testing.B) {
	return func(b *testing.B) {
		s := p.session(b, jiffy.DSFile)
		s.budget = largeWriteBudget
		rec := make([]byte, size)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.charge(size)
			if _, err := s.file.AppendRecord(context.Background(), rec); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func (p params) kvGetLarge(size int) func(*testing.B) {
	return func(b *testing.B) {
		kv := p.kv(b)
		keys := keyPool(p.keys)
		val := make([]byte, size)
		for _, k := range keys {
			if err := kv.Put(context.Background(), k, val); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			got, err := kv.Get(context.Background(), keys[i%len(keys)])
			if err != nil {
				b.Fatal(err)
			}
			if len(got) != size {
				b.Fatalf("got %d bytes, want %d", len(got), size)
			}
		}
	}
}
