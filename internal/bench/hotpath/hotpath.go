// Package hotpath holds the data-path micro-benchmarks behind
// BENCH_hotpath.json: single-op vs batched KV puts/gets, file record
// appends and queue enqueues over the mem:// transport. The bodies
// live here (not in a _test.go file) so both the repo-root benchmark
// wrappers and the cmd/jiffy-regress runner can execute them.
package hotpath

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"jiffy"
	"jiffy/internal/bench/regress"
	"jiffy/internal/core"
)

// BatchSize is the multi-op batch width measured against single ops.
const BatchSize = 64

// valSize is the payload size per op — small objects, the regime where
// per-request overhead dominates (§6.2).
const valSize = 128

// Benches returns the hot-path benchmark set. quick shrinks the
// cluster and working set for CI smoke runs; the measured ratios are
// the same, each benchmark just spends less time in setup.
func Benches(quick bool) []regress.Bench {
	p := params{servers: 2, blocksPerServer: 128, keys: 4096}
	if quick {
		p = params{servers: 1, blocksPerServer: 64, keys: 512}
	}
	lp := largeParams(quick)
	return []regress.Bench{
		{Name: "KVPutSingle", F: p.kvPutSingle},
		{Name: "KVPutBatch", F: p.kvPutBatch},
		{Name: "KVGetSingle", F: p.kvGetSingle},
		{Name: "KVGetBatch", F: p.kvGetBatch},
		{Name: "FileAppendSingle", F: p.fileAppendSingle},
		{Name: "FileAppendBatch", F: p.fileAppendBatch},
		{Name: "QueueEnqueueSingle", F: p.queueEnqueueSingle},
		{Name: "QueueEnqueueBatch", F: p.queueEnqueueBatch},
		{Name: "FileRead64K", F: lp.fileReadLarge(64 * core.KB)},
		{Name: "FileRead1M", F: lp.fileReadLarge(core.MB)},
		{Name: "FileWrite64K", F: lp.fileWriteLarge(64 * core.KB)},
		{Name: "FileWrite1M", F: lp.fileWriteLarge(core.MB)},
		{Name: "KVGet64K", F: lp.kvGetLarge(64 * core.KB)},
	}
}

// ParallelBenches returns contended variants of the single-op
// benchmarks: workers goroutines issue ops concurrently over one
// shared client session, measuring the hot path under session
// contention rather than in isolation. shards > 1 additionally dials
// the session with WithSessionShards, so the two knobs together show
// how much of the contention cost sharding recovers. The names match
// the sequential singles on purpose — Report.Parallel records the
// mode, and the runner refuses to compare reports across modes.
func ParallelBenches(quick bool, workers, shards int) []regress.Bench {
	p := params{servers: 2, blocksPerServer: 128, keys: 4096, shards: shards}
	if quick {
		p = params{servers: 1, blocksPerServer: 64, keys: 512, shards: shards}
	}
	return []regress.Bench{
		{Name: "KVPutSingle", F: p.kvPutContended(workers)},
		{Name: "KVGetSingle", F: p.kvGetContended(workers)},
		{Name: "FileAppendSingle", F: p.fileAppendContended(workers)},
		{Name: "QueueEnqueueSingle", F: p.queueEnqueueContended(workers)},
	}
}

type params struct {
	servers         int
	blocksPerServer int
	keys            int
	blockSize       int // 0 means core.MB
	// shards > 1 dials the benchmark client with WithSessionShards so
	// contended runs can measure the sharded-session data path.
	shards int
}

func (p params) client(b *testing.B) *jiffy.Client {
	b.Helper()
	cfg := core.TestConfig()
	cfg.BlockSize = core.MB
	if p.blockSize != 0 {
		cfg.BlockSize = p.blockSize
	}
	cfg.LeaseDuration = time.Hour
	cluster, err := jiffy.StartCluster(jiffy.ClusterOptions{
		Config: cfg, Servers: p.servers, BlocksPerServer: p.blocksPerServer,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { cluster.Close() })
	var opts []jiffy.Option
	if p.shards > 1 {
		opts = append(opts, jiffy.WithSessionShards(p.shards))
	}
	c, err := cluster.Connect(context.Background(), opts...)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { c.Close() })
	return c
}

func (p params) kv(b *testing.B) *jiffy.KV {
	b.Helper()
	c := p.client(b)
	c.RegisterJob(context.Background(), "bench")
	if _, _, err := c.CreatePrefix(context.Background(), "bench/kv", nil, jiffy.DSKV, 4, 0); err != nil {
		b.Fatal(err)
	}
	kv, err := c.OpenKV(context.Background(), "bench/kv")
	if err != nil {
		b.Fatal(err)
	}
	return kv
}

func keyPool(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%06d", i)
	}
	return keys
}

func (p params) kvPutSingle(b *testing.B) {
	kv := p.kv(b)
	keys := keyPool(p.keys)
	val := make([]byte, valSize)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := kv.Put(context.Background(), keys[i%len(keys)], val); err != nil {
			b.Fatal(err)
		}
	}
}

func (p params) kvPutBatch(b *testing.B) {
	kv := p.kv(b)
	keys := keyPool(p.keys)
	val := make([]byte, valSize)
	pairs := make([]jiffy.KVPair, BatchSize)
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n += BatchSize {
		m := BatchSize
		if n+m > b.N {
			m = b.N - n
		}
		for j := 0; j < m; j++ {
			pairs[j] = jiffy.KVPair{Key: keys[(n+j)%len(keys)], Value: val}
		}
		if err := kv.MultiPut(context.Background(), pairs[:m]); err != nil {
			b.Fatal(err)
		}
	}
}

func (p params) kvPreloaded(b *testing.B) (*jiffy.KV, []string) {
	b.Helper()
	kv := p.kv(b)
	keys := keyPool(p.keys)
	val := make([]byte, valSize)
	pairs := make([]jiffy.KVPair, 0, BatchSize)
	for i := 0; i < len(keys); i += BatchSize {
		pairs = pairs[:0]
		for j := i; j < i+BatchSize && j < len(keys); j++ {
			pairs = append(pairs, jiffy.KVPair{Key: keys[j], Value: val})
		}
		if err := kv.MultiPut(context.Background(), pairs); err != nil {
			b.Fatal(err)
		}
	}
	return kv, keys
}

func (p params) kvGetSingle(b *testing.B) {
	kv, keys := p.kvPreloaded(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := kv.Get(context.Background(), keys[i%len(keys)]); err != nil {
			b.Fatal(err)
		}
	}
}

func (p params) kvGetBatch(b *testing.B) {
	kv, keys := p.kvPreloaded(b)
	batch := make([]string, BatchSize)
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n += BatchSize {
		m := BatchSize
		if n+m > b.N {
			m = b.N - n
		}
		for j := 0; j < m; j++ {
			batch[j] = keys[(n+j)%len(keys)]
		}
		if _, err := kv.MultiGet(context.Background(), batch[:m]); err != nil {
			b.Fatal(err)
		}
	}
}

// rolloverBudget bounds how much append-only data accumulates in one
// prefix before the bench rolls to a fresh one. Files and queues never
// reclaim appended bytes, and b.N is unbounded, so without rollover a
// long run exhausts the cluster's block pool. Rollover happens with
// the timer stopped, so it never pollutes the measurement.
const rolloverBudget = 8 * core.MB

// session hands out a data-structure handle and recreates it (removing
// the previous prefix, reclaiming its blocks) every rolloverBudget
// appended bytes.
type session struct {
	b       *testing.B
	c       *jiffy.Client
	kind    core.DSType
	gen     int
	file    *jiffy.File
	queue   *jiffy.Queue
	written int
	budget  int
}

func (p params) session(b *testing.B, kind core.DSType) *session {
	b.Helper()
	c := p.client(b)
	c.RegisterJob(context.Background(), "bench")
	s := &session{b: b, c: c, kind: kind, gen: -1, budget: rolloverBudget}
	s.roll()
	return s
}

func (s *session) path(gen int) core.Path {
	return core.Path(fmt.Sprintf("bench/s%d", gen))
}

func (s *session) roll() {
	if s.gen >= 0 {
		if err := s.c.RemovePrefix(context.Background(), s.path(s.gen)); err != nil {
			s.b.Fatal(err)
		}
	}
	s.gen++
	if _, _, err := s.c.CreatePrefix(context.Background(), s.path(s.gen), nil, s.kind, 1, 0); err != nil {
		s.b.Fatal(err)
	}
	var err error
	switch s.kind {
	case jiffy.DSFile:
		s.file, err = s.c.OpenFile(context.Background(), s.path(s.gen))
	case jiffy.DSQueue:
		s.queue, err = s.c.OpenQueue(context.Background(), s.path(s.gen))
	}
	if err != nil {
		s.b.Fatal(err)
	}
	s.written = 0
}

// charge accounts n bytes about to be appended, rolling to a fresh
// prefix outside the timer when the budget is spent.
func (s *session) charge(n int) {
	if s.written+n > s.budget {
		s.b.StopTimer()
		s.roll()
		s.b.StartTimer()
	}
	s.written += n
}

func (p params) fileAppendSingle(b *testing.B) {
	s := p.session(b, jiffy.DSFile)
	rec := make([]byte, valSize)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.charge(valSize)
		if _, err := s.file.AppendRecord(context.Background(), rec); err != nil {
			b.Fatal(err)
		}
	}
}

func (p params) fileAppendBatch(b *testing.B) {
	s := p.session(b, jiffy.DSFile)
	rec := make([]byte, valSize)
	recs := make([][]byte, BatchSize)
	for i := range recs {
		recs[i] = rec
	}
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n += BatchSize {
		m := BatchSize
		if n+m > b.N {
			m = b.N - n
		}
		s.charge(m * valSize)
		if _, err := s.file.AppendBatch(context.Background(), recs[:m]); err != nil {
			b.Fatal(err)
		}
	}
}

func (p params) queueEnqueueSingle(b *testing.B) {
	s := p.session(b, jiffy.DSQueue)
	item := make([]byte, valSize)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.charge(valSize)
		if err := s.queue.Enqueue(context.Background(), item); err != nil {
			b.Fatal(err)
		}
	}
}

// contend splits b.N iterations across workers goroutines, failing the
// benchmark on the first error. Workers stride the index space so key
// selection stays uniform regardless of scheduling.
func contend(b *testing.B, workers int, fn func(i int) error) {
	var wg sync.WaitGroup
	var failed atomic.Bool
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < b.N; i += workers {
				if failed.Load() {
					return
				}
				if err := fn(i); err != nil {
					failed.Store(true)
					b.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

func (p params) kvPutContended(workers int) func(*testing.B) {
	return func(b *testing.B) {
		kv := p.kv(b)
		keys := keyPool(p.keys)
		val := make([]byte, valSize)
		b.ReportAllocs()
		b.ResetTimer()
		contend(b, workers, func(i int) error {
			return kv.Put(context.Background(), keys[i%len(keys)], val)
		})
	}
}

func (p params) kvGetContended(workers int) func(*testing.B) {
	return func(b *testing.B) {
		kv, keys := p.kvPreloaded(b)
		b.ReportAllocs()
		b.ResetTimer()
		contend(b, workers, func(i int) error {
			_, err := kv.Get(context.Background(), keys[i%len(keys)])
			return err
		})
	}
}

// contendedAppend drives an append-style op from workers goroutines
// with budget-based prefix rollover. Appends hold a read lock so the
// roll (which removes the old prefix) never races an op in flight;
// the timer keeps running across rolls — contended mode measures
// sustained behavior, and the roll cost amortizes over 64K ops.
func contendedAppend(b *testing.B, s *session, workers int, do func() error) {
	var mu sync.RWMutex
	var written atomic.Int64
	b.ResetTimer()
	contend(b, workers, func(i int) error {
		if written.Add(valSize) > int64(s.budget) {
			mu.Lock()
			if written.Load() > int64(s.budget) {
				s.roll()
				written.Store(0)
			}
			mu.Unlock()
		}
		mu.RLock()
		err := do()
		mu.RUnlock()
		return err
	})
}

func (p params) fileAppendContended(workers int) func(*testing.B) {
	return func(b *testing.B) {
		s := p.session(b, jiffy.DSFile)
		rec := make([]byte, valSize)
		b.ReportAllocs()
		contendedAppend(b, s, workers, func() error {
			_, err := s.file.AppendRecord(context.Background(), rec)
			return err
		})
	}
}

func (p params) queueEnqueueContended(workers int) func(*testing.B) {
	return func(b *testing.B) {
		s := p.session(b, jiffy.DSQueue)
		item := make([]byte, valSize)
		b.ReportAllocs()
		contendedAppend(b, s, workers, func() error {
			return s.queue.Enqueue(context.Background(), item)
		})
	}
}

func (p params) queueEnqueueBatch(b *testing.B) {
	s := p.session(b, jiffy.DSQueue)
	item := make([]byte, valSize)
	items := make([][]byte, BatchSize)
	for i := range items {
		items[i] = item
	}
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n += BatchSize {
		m := BatchSize
		if n+m > b.N {
			m = b.N - n
		}
		s.charge(m * valSize)
		if err := s.queue.EnqueueBatch(context.Background(), items[:m]); err != nil {
			b.Fatal(err)
		}
	}
}
