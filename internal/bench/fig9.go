package bench

import (
	"io"
	"time"

	"jiffy/internal/baseline"
	"jiffy/internal/core"
	"jiffy/internal/metrics"
	"jiffy/internal/sim"
	"jiffy/internal/trace"
)

// Fig9 reproduces the paper's Fig. 9: job performance (a) and resource
// utilization (b) for ElastiCache, Pocket and Jiffy as the
// intermediate-store capacity shrinks from 100% to 20% of the
// workload's peak usage.
//
// The paper replays ~50,000 Snowflake jobs on EC2; here the same three
// allocation policies — static provisioning with S3 overflow
// (ElastiCache), job-lifetime peak reservations with SSD overflow
// (Pocket), and block-granular leased allocation (Jiffy) — run against
// a Snowflake-like synthetic trace in virtual time.
func Fig9(w io.Writer, opts Options) error {
	cfg := sim.Fig9TraceConfig()
	if opts.Quick {
		cfg.Tenants = 20
		cfg.JobsPerTenant = 10
	}
	tr := trace.Generate(cfg, opts.seed())
	peak := sim.PeakCapacity(tr, time.Second)
	blockSize := int64(128 * core.MB)

	fprintln(w, "workload: %d tenants, %d jobs, peak alive intermediate data = %.1f GB",
		cfg.Tenants, len(tr.Jobs), float64(peak)/float64(core.GB))

	slow := metrics.NewTable("Fig. 9(a): average job slowdown vs capacity",
		"capacity(%)", "ElastiCache", "Pocket", "Jiffy", "Pocket/Jiffy")
	util := metrics.NewTable("Fig. 9(b): average resource utilization (%) vs capacity",
		"capacity(%)", "ElastiCache", "Pocket", "Jiffy")
	spill := metrics.NewTable("spill fractions (bytes not in DRAM)",
		"capacity(%)", "EC→S3", "Pocket→SSD", "Jiffy→SSD")

	for _, frac := range []float64{1.0, 0.8, 0.6, 0.4, 0.2} {
		capacity := int64(float64(peak) * frac)
		ec := sim.Run(tr, baseline.NewElastiCachePolicy(capacity, cfg.Tenants), capacity, time.Second)
		pk := sim.Run(tr, baseline.NewPocketPolicy(capacity), capacity, time.Second)
		jf := sim.Run(tr, baseline.NewJiffyPolicy(capacity, blockSize,
			core.DefaultHighThreshold, core.DefaultLeaseDuration), capacity, time.Second)

		ratio := 0.0
		if jf.AvgSlowdown > 0 {
			ratio = pk.AvgSlowdown / jf.AvgSlowdown
		}
		slow.AddRow(int(frac*100), ec.AvgSlowdown, pk.AvgSlowdown, jf.AvgSlowdown, ratio)
		util.AddRow(int(frac*100), ec.AvgUtilization, pk.AvgUtilization, jf.AvgUtilization)
		spill.AddRow(int(frac*100), ec.SpillFracS3, pk.SpillFracSSD, jf.SpillFracSSD)
	}
	fprintln(w, "%s", slow.String())
	fprintln(w, "%s", util.String())
	fprintln(w, "%s", spill.String())
	fprintln(w, "paper shape: EC ≫ Pocket > Jiffy slowdown at every capacity;")
	fprintln(w, "Jiffy utilization rises under constraint while Pocket's stays ~10-20%%.")
	return nil
}
