package bench

import (
	"context"
	"fmt"
	"io"
	"time"

	"jiffy"
	"jiffy/internal/baseline"
	"jiffy/internal/core"
	"jiffy/internal/metrics"
)

// Fig10 reproduces the paper's Fig. 10: read/write latency (a) and
// throughput in MB/s (b) versus object size across six systems — S3,
// DynamoDB, Apache Crail, ElastiCache, Pocket and Jiffy — measured
// with a single-threaded synchronous client, pipelining disabled.
//
// Jiffy runs live (real cluster, real RPC, KV data structure); the
// other five are service-time models following the figure's published
// measurements (see internal/baseline). The axes of interest — the
// 100× in-memory/persistent gap, DynamoDB's 128KB cap, size-linear
// large-object costs, and Jiffy matching the in-memory group — are all
// reproduced.
func Fig10(w io.Writer, opts Options) error {
	sizes := []int{8, 128, 2 * core.KB, 32 * core.KB, 512 * core.KB, 8 * core.MB}
	reps := 8
	if opts.Quick {
		sizes = []int{8, 2 * core.KB, 512 * core.KB}
		reps = 3
	}

	// Live Jiffy cluster sized so the largest object fits in one block.
	cfg := core.DefaultConfig()
	cfg.BlockSize = 32 * core.MB
	cfg.LeaseDuration = time.Minute
	cfg.NumHashSlots = 64
	cluster, err := jiffy.StartCluster(jiffy.ClusterOptions{
		Config: cfg, Servers: 1, BlocksPerServer: 16,
	})
	if err != nil {
		return err
	}
	defer cluster.Close()
	c, err := cluster.Connect(context.Background())
	if err != nil {
		return err
	}
	defer c.Close()
	if err := c.RegisterJob(context.Background(), "fig10"); err != nil {
		return err
	}
	if _, _, err := c.CreatePrefix(context.Background(), "fig10/kv", nil, core.DSKV, 4, 0); err != nil {
		return err
	}
	kv, err := c.OpenKV(context.Background(), "fig10/kv")
	if err != nil {
		return err
	}

	systems := []baseline.ObjectStore{
		baseline.NewS3(),
		baseline.NewDynamoDB(),
		baseline.NewCrail(),
		baseline.NewElastiCache(),
		baseline.NewPocket(),
		&baseline.FuncStore{
			StoreName: "Jiffy",
			PutFunc: func(key string, val []byte) error {
				return kv.Put(context.Background(), key, val)
			},
			GetFunc: func(key string) ([]byte, error) {
				return kv.Get(context.Background(), key)
			},
		},
	}

	writeLat := metrics.NewTable("Fig. 10(a): write latency", header(systems)...)
	readLat := metrics.NewTable("Fig. 10(a): read latency", header(systems)...)
	writeBW := metrics.NewTable("Fig. 10(b): write MB/s", header(systems)...)
	readBW := metrics.NewTable("Fig. 10(b): read MB/s", header(systems)...)

	for _, size := range sizes {
		val := make([]byte, size)
		for i := range val {
			val[i] = byte(i)
		}
		wRow := []interface{}{sizeLabel(size)}
		rRow := []interface{}{sizeLabel(size)}
		wbRow := []interface{}{sizeLabel(size)}
		rbRow := []interface{}{sizeLabel(size)}
		for _, sys := range systems {
			wh, rh := metrics.NewHistogram(), metrics.NewHistogram()
			supported := true
			for rep := 0; rep < reps; rep++ {
				key := fmt.Sprintf("obj-%d-%d", size, rep)
				start := time.Now()
				if err := sys.Put(key, val); err != nil {
					supported = false // DynamoDB's 128KB cap
					break
				}
				wh.Record(time.Since(start))
				start = time.Now()
				if _, err := sys.Get(key); err != nil {
					supported = false
					break
				}
				rh.Record(time.Since(start))
			}
			if !supported {
				wRow = append(wRow, "n/s")
				rRow = append(rRow, "n/s")
				wbRow = append(wbRow, "n/s")
				rbRow = append(rbRow, "n/s")
				continue
			}
			wRow = append(wRow, wh.Mean())
			rRow = append(rRow, rh.Mean())
			wbRow = append(wbRow, mbps(size, wh.Mean()))
			rbRow = append(rbRow, mbps(size, rh.Mean()))
		}
		writeLat.AddRow(wRow...)
		readLat.AddRow(rRow...)
		writeBW.AddRow(wbRow...)
		readBW.AddRow(rbRow...)
	}
	fprintln(w, "%s", writeLat.String())
	fprintln(w, "%s", readLat.String())
	fprintln(w, "%s", writeBW.String())
	fprintln(w, "%s", readBW.String())
	fprintln(w, "notes: Jiffy is measured live (in-process cluster, framed RPC);")
	fprintln(w, "S3/DynamoDB/Crail/ElastiCache/Pocket are service-time models from the paper's figure.")
	fprintln(w, "'n/s' = not supported (DynamoDB objects are capped at 128KB).")
	return nil
}

func header(systems []baseline.ObjectStore) []string {
	h := []string{"size"}
	for _, s := range systems {
		h = append(h, s.Name())
	}
	return h
}

func mbps(size int, d time.Duration) float64 {
	if d <= 0 {
		return 0
	}
	return float64(size) / d.Seconds() / float64(core.MB)
}
