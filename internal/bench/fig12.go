package bench

import (
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"jiffy/internal/controller"
	"jiffy/internal/core"
	"jiffy/internal/metrics"
	"jiffy/internal/proto"
	"jiffy/internal/rpc"
)

// Fig12a reproduces the paper's Fig. 12(a): controller throughput vs.
// latency on a single shard (the paper's single CPU core), driving the
// live RPC stack with closed-loop clients issuing lease renewals — the
// dominant control-plane operation. The curve rises to the saturation
// throughput (paper: ~42 KOps at ~370µs).
func Fig12a(w io.Writer, opts Options) error {
	concurrencies := []int{1, 2, 4, 8, 16, 32, 64}
	duration := 600 * time.Millisecond
	if opts.Quick {
		concurrencies = []int{1, 4, 16}
		duration = 200 * time.Millisecond
	}
	tbl := metrics.NewTable("Fig. 12(a): controller throughput vs latency (1 shard)",
		"clients", "throughput(KOps)", "mean latency", "p99 latency")
	for _, conc := range concurrencies {
		kops, mean, p99, err := controllerLoad(1, conc, duration)
		if err != nil {
			return err
		}
		tbl.AddRow(conc, kops, mean, p99)
	}
	fprintln(w, "%s", tbl.String())
	return nil
}

// Fig12b reproduces the paper's Fig. 12(b): controller throughput as
// shards (cores) are added. Jobs hash-partition across shards with
// independent locks, so throughput scales with shard count until the
// machine's cores are saturated (the paper scales to 64 cores;
// laptop-scale runs flatten at NumCPU).
func Fig12b(w io.Writer, opts Options) error {
	shardCounts := []int{1, 2, 4, 8}
	duration := 600 * time.Millisecond
	if opts.Quick {
		shardCounts = []int{1, 4}
		duration = 200 * time.Millisecond
	}
	tbl := metrics.NewTable(
		fmt.Sprintf("Fig. 12(b): controller throughput scaling (GOMAXPROCS=%d)", runtime.GOMAXPROCS(0)),
		"shards", "throughput(KOps)", "speedup")
	base := 0.0
	for _, shards := range shardCounts {
		kops, _, _, err := controllerLoad(shards, 4*shards, duration)
		if err != nil {
			return err
		}
		if base == 0 {
			base = kops
		}
		tbl.AddRow(shards, kops, kops/base)
	}
	fprintln(w, "%s", tbl.String())
	return nil
}

var fig12Seq atomic.Int64

// controllerLoad drives a live controller over the framed RPC stack
// with closed-loop renewal clients and reports throughput and latency.
func controllerLoad(shards, clients int, duration time.Duration) (kops float64, mean, p99 time.Duration, err error) {
	cfg := core.TestConfig()
	cfg.LeaseDuration = time.Hour // nothing expires mid-benchmark
	ctrl, err := controller.New(controller.Options{
		Config: cfg, Shards: shards, DisableExpiry: true,
	})
	if err != nil {
		return 0, 0, 0, err
	}
	defer ctrl.Close()
	addr, err := ctrl.Listen(fmt.Sprintf("mem://fig12-%d", fig12Seq.Add(1)))
	if err != nil {
		return 0, 0, 0, err
	}

	// One job (and hierarchy) per client, spread across shards.
	paths := make([]core.Path, clients)
	for i := range paths {
		job := core.JobID(fmt.Sprintf("loadjob%d", i))
		if err := ctrl.RegisterJob(job); err != nil {
			return 0, 0, 0, err
		}
		paths[i] = core.Path(string(job))
	}

	var ops atomic.Int64
	hist := metrics.NewHistogram()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		cl, err := rpc.Dial(addr)
		if err != nil {
			return 0, 0, 0, err
		}
		wg.Add(1)
		go func(cl *rpc.Client, path core.Path) {
			defer wg.Done()
			defer cl.Close()
			for {
				select {
				case <-stop:
					return
				default:
				}
				start := time.Now()
				var resp proto.RenewLeaseResp
				if err := cl.CallGob(proto.MethodRenewLease,
					proto.RenewLeaseReq{Paths: []core.Path{path}}, &resp); err != nil {
					return
				}
				hist.Record(time.Since(start))
				ops.Add(1)
			}
		}(cl, paths[i])
	}
	time.Sleep(duration)
	close(stop)
	wg.Wait()
	total := ops.Load()
	return float64(total) / duration.Seconds() / 1000, hist.Mean(), hist.Percentile(99), nil
}
