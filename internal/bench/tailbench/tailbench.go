// Package tailbench measures the gray-failure tail-latency claim the
// hedged-read path makes: with one chain member alive but persistently
// slow, a hedged client's read p99 stays within a small multiple of the
// healthy baseline while an unhedged client eats the full injected
// delay. The regress gate (jiffy-regress -tail) fails when the hedged
// tail exceeds the allowed multiple — a regression in the hedge
// trigger, the backup-target ranking, or cancellation would all surface
// here as a blown p99.
package tailbench

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"time"

	"jiffy"
	"jiffy/internal/client"
	"jiffy/internal/core"
	"jiffy/internal/faultinject"
	"jiffy/internal/obs"
)

// injectedDelay is the one-way latency laid on every byte toward the
// slow chain tail: far above a healthy in-process round trip, far below
// the RPC timeout — gray, not dead.
const injectedDelay = 25 * time.Millisecond

// baselineFloor keeps the gate meaningful on very fast machines: a
// sub-millisecond healthy p99 would make "3x baseline" tighter than
// scheduler jitter.
const baselineFloor = 2 * time.Millisecond

// Params sizes one measurement.
type Params struct {
	Keys     int // working set
	Warmup   int // healthy reads per client before measuring
	Healthy  int // healthy-baseline samples
	Unhedged int // gray-phase samples on the plain client (each pays ~injectedDelay)
	Hedged   int // gray-phase samples on the hedged client
}

// DefaultParams returns the full or quick (CI smoke) profile.
func DefaultParams(quick bool) Params {
	p := Params{Keys: 48, Warmup: 96, Healthy: 400, Unhedged: 80, Hedged: 400}
	if quick {
		p.Healthy = 200
		p.Unhedged = 40
		p.Hedged = 200
	}
	return p
}

// Result is one -tail measurement, written as the report artifact.
type Result struct {
	Quick         bool          `json:"quick"`
	InjectedDelay time.Duration `json:"injected_delay_ns"`
	HealthyP99    time.Duration `json:"healthy_p99_ns"`
	GateBaseline  time.Duration `json:"gate_baseline_ns"`
	UnhedgedP99   time.Duration `json:"unhedged_p99_ns"`
	HedgedP99     time.Duration `json:"hedged_p99_ns"`
	HedgedRatio   float64       `json:"hedged_over_baseline"`
	HedgesFired   float64       `json:"hedges_fired"`
	HedgesWon     float64       `json:"hedges_won"`
}

// WriteFile writes the report as indented JSON.
func (r Result) WriteFile(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Measure boots a 3-server cluster with 3-way chains behind the fault
// injector, records the healthy read baseline, turns the chain tail
// gray, and measures the unhedged vs hedged read p99.
func Measure(quick bool, logf func(format string, args ...interface{})) (Result, error) {
	if logf == nil {
		logf = func(string, ...interface{}) {}
	}
	p := DefaultParams(quick)
	res := Result{Quick: quick, InjectedDelay: injectedDelay}

	inj := faultinject.New(1305, nil)
	cfg := core.TestConfig()
	cfg.LeaseDuration = time.Minute
	cfg.ChainLength = 3
	cfg.RPCTimeout = 2 * time.Second
	cluster, err := jiffy.StartCluster(jiffy.ClusterOptions{
		Config: cfg, Servers: 3, BlocksPerServer: 16, Dial: inj.Dial,
	})
	if err != nil {
		return res, err
	}
	defer cluster.Close()
	ctx := context.Background()

	plain, err := cluster.Connect(ctx)
	if err != nil {
		return res, err
	}
	defer plain.Close()
	hedged, err := cluster.Connect(ctx, client.WithHedgedReads(client.HedgePolicy{
		Multiplier: 3, MinDelay: 500 * time.Microsecond, MinSamples: 8,
	}))
	if err != nil {
		return res, err
	}
	defer hedged.Close()

	if err := plain.RegisterJob(ctx, "tailbench"); err != nil {
		return res, err
	}
	if _, _, err := plain.CreatePrefix(ctx, "tailbench/kv", nil, jiffy.DSKV, 1, 0); err != nil {
		return res, err
	}
	kvPlain, err := plain.OpenKV(ctx, "tailbench/kv")
	if err != nil {
		return res, err
	}
	kvHedged, err := hedged.OpenKV(ctx, "tailbench/kv")
	if err != nil {
		return res, err
	}
	open, err := cluster.Controller.Open("tailbench/kv")
	if err != nil {
		return res, err
	}
	chain := open.Map.Blocks[0].Chain
	tail := chain[len(chain)-1].Server

	key := func(i int) string { return fmt.Sprintf("k%03d", i%p.Keys) }
	for i := 0; i < p.Keys; i++ {
		if err := kvPlain.Put(ctx, key(i), []byte(fmt.Sprintf("v%03d", i))); err != nil {
			return res, err
		}
	}
	// Warm both clients: the hedged one needs latency samples before its
	// p95 trigger arms.
	for i := 0; i < p.Warmup; i++ {
		if _, err := kvPlain.Get(ctx, key(i)); err != nil {
			return res, err
		}
		if _, err := kvHedged.Get(ctx, key(i)); err != nil {
			return res, err
		}
	}

	healthy, err := sample(ctx, kvPlain, key, p.Healthy)
	if err != nil {
		return res, err
	}
	res.HealthyP99 = p99(healthy)
	res.GateBaseline = max(res.HealthyP99, baselineFloor)
	logf("tail: healthy p99 %v over %d reads (gate baseline %v)\n",
		res.HealthyP99, p.Healthy, res.GateBaseline)

	inj.AddRule(faultinject.Rule{Name: "slow-tail", Match: "send:" + tail, Latency: injectedDelay})
	logf("tail: chain tail %s turned gray (+%v per send)\n", tail, injectedDelay)

	unhedged, err := sample(ctx, kvPlain, key, p.Unhedged)
	if err != nil {
		return res, err
	}
	res.UnhedgedP99 = p99(unhedged)
	hedgedLat, err := sample(ctx, kvHedged, key, p.Hedged)
	if err != nil {
		return res, err
	}
	res.HedgedP99 = p99(hedgedLat)
	res.HedgedRatio = float64(res.HedgedP99) / float64(res.GateBaseline)

	var buf bytes.Buffer
	hedged.Obs().WritePrometheus(&buf)
	vals := obs.ParsePrometheus(buf.Bytes())
	res.HedgesFired = vals["jiffy_client_hedges_fired_total"]
	res.HedgesWon = vals["jiffy_client_hedges_won_total"]
	logf("tail: unhedged p99 %v, hedged p99 %v (%.2fx baseline), hedges fired %.0f won %.0f\n",
		res.UnhedgedP99, res.HedgedP99, res.HedgedRatio, res.HedgesFired, res.HedgesWon)
	return res, nil
}

// sample times n sequential gets.
func sample(ctx context.Context, kv *client.KV, key func(int) string, n int) ([]time.Duration, error) {
	out := make([]time.Duration, 0, n)
	for i := 0; i < n; i++ {
		start := time.Now()
		if _, err := kv.Get(ctx, key(i)); err != nil {
			return nil, fmt.Errorf("tailbench: get %d: %w", i, err)
		}
		out = append(out, time.Since(start))
	}
	return out, nil
}

func p99(ds []time.Duration) time.Duration {
	s := append([]time.Duration(nil), ds...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return s[int(float64(len(s)-1)*0.99)]
}
