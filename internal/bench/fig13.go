package bench

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"strings"
	"sync"
	"time"

	"jiffy"
	"jiffy/internal/core"
	"jiffy/internal/metrics"
)

// Fig13a reproduces the paper's Fig. 13(a): streaming word-count — 50
// partition tasks splitting sentences and routing words by hash, 50
// count tasks maintaining counts in a KV store — comparing Jiffy
// queues+KV against an over-provisioned ElastiCache-model deployment.
// The metric is the CDF of end-to-end latency per 64-sentence batch.
// The paper's result: Jiffy matches the over-provisioned cache despite
// allocating memory on demand.
func Fig13a(w io.Writer, opts Options) error {
	batches := 30
	tasks := 50
	if opts.Quick {
		batches = 8
		tasks = 8
	}
	corpus := syntheticSentences(2048, opts.seed())

	jiffyCDF, err := streamingWordCountJiffy(corpus, batches, tasks)
	if err != nil {
		return err
	}
	ecCDF := streamingWordCountEC(corpus, batches, tasks)

	fprintln(w, "== Fig. 13(a): per-batch end-to-end latency CDF (64-sentence batches) ==")
	fprintln(w, "%-6s  %-14s  %-14s", "frac", "ElastiCache", "Jiffy")
	ec := ecCDF.CDF(11)
	jf := jiffyCDF.CDF(11)
	for i := range ec {
		fprintln(w, "%.2f    %-14v  %-14v", ec[i].Fraction, ec[i].Value, jf[i].Value)
	}
	fprintln(w, "medians: EC=%v Jiffy=%v (paper: comparable despite Jiffy's on-demand allocation)",
		ecCDF.Percentile(50), jiffyCDF.Percentile(50))
	return nil
}

// syntheticSentences builds a Zipf-worded corpus standing in for the
// Wikipedia dataset (see DESIGN.md substitutions).
func syntheticSentences(n int, seed int64) []string {
	rng := rand.New(rand.NewSource(seed))
	zipf := rand.NewZipf(rng, 1.3, 1, 4096)
	out := make([]string, n)
	for i := range out {
		words := make([]string, 8+rng.Intn(8))
		for j := range words {
			words[j] = fmt.Sprintf("w%04d", zipf.Uint64())
		}
		out[i] = strings.Join(words, " ")
	}
	return out
}

// streamingWordCountJiffy runs the pipeline on a live Jiffy cluster.
func streamingWordCountJiffy(corpus []string, batches, tasks int) (*metrics.Histogram, error) {
	cfg := core.TestConfig()
	cfg.BlockSize = 256 * core.KB
	cfg.LeaseDuration = time.Minute
	cluster, err := jiffy.StartCluster(jiffy.ClusterOptions{
		Config: cfg, Servers: 2, BlocksPerServer: 256,
	})
	if err != nil {
		return nil, err
	}
	defer cluster.Close()
	c, err := cluster.Connect(context.Background())
	if err != nil {
		return nil, err
	}
	defer c.Close()
	if err := c.RegisterJob(context.Background(), "wcstream"); err != nil {
		return nil, err
	}
	// One queue per count task (partitioned channels) + a shared KV.
	queues := make([]*jiffy.Queue, tasks)
	for i := 0; i < tasks; i++ {
		p := core.MustPath("wcstream", fmt.Sprintf("ch%d", i))
		if _, _, err := c.CreatePrefix(context.Background(), p, nil, core.DSQueue, 1, 0); err != nil {
			return nil, err
		}
		q, err := c.OpenQueue(context.Background(), p)
		if err != nil {
			return nil, err
		}
		queues[i] = q
	}
	kvPath := core.MustPath("wcstream", "counts")
	if _, _, err := c.CreatePrefix(context.Background(), kvPath, nil, core.DSKV, 1, 0); err != nil {
		return nil, err
	}
	renewer := c.StartRenewer(200*time.Millisecond, core.Path("wcstream"))
	defer renewer.Stop()

	// Count tasks: drain their queue into local counts, flushing to the
	// KV store, and acknowledge each word.
	var acked sync.WaitGroup
	stop := make(chan struct{})
	var workers sync.WaitGroup
	for i := 0; i < tasks; i++ {
		workers.Add(1)
		go func(i int) {
			defer workers.Done()
			kv, err := c.OpenKV(context.Background(), kvPath)
			if err != nil {
				return
			}
			counts := map[string]int{}
			for {
				item, err := queues[i].Dequeue(context.Background())
				if err != nil {
					select {
					case <-stop:
						return
					default:
						time.Sleep(200 * time.Microsecond)
						continue
					}
				}
				word := string(item)
				counts[word]++
				kv.Put(context.Background(), fmt.Sprintf("%d/%s", i, word), []byte(fmt.Sprintf("%d", counts[word])))
				acked.Done()
			}
		}(i)
	}

	hist := metrics.NewHistogram()
	rng := rand.New(rand.NewSource(7))
	for b := 0; b < batches; b++ {
		batch := make([]string, 64)
		for i := range batch {
			batch[i] = corpus[rng.Intn(len(corpus))]
		}
		start := time.Now()
		// Partition tasks split sentences and route words by hash.
		var parts sync.WaitGroup
		for p := 0; p < tasks; p++ {
			parts.Add(1)
			go func(p int) {
				defer parts.Done()
				for s := p; s < len(batch); s += tasks {
					for _, wd := range strings.Fields(batch[s]) {
						acked.Add(1)
						q := queues[int(fnvHash(wd))%tasks]
						if err := q.Enqueue(context.Background(), []byte(wd)); err != nil {
							acked.Done()
						}
					}
				}
			}(p)
		}
		parts.Wait()
		acked.Wait() // all words counted
		hist.Record(time.Since(start))
	}
	close(stop)
	workers.Wait()
	return hist, nil
}

// streamingWordCountEC runs the identical pipeline against
// ElastiCache-model queues and KV: in-memory structures with the
// cache's per-op service time, provisioned with unlimited capacity
// (the paper's over-provisioned comparison cluster).
func streamingWordCountEC(corpus []string, batches, tasks int) *metrics.Histogram {
	const opLatency = 400 * time.Microsecond
	queues := make([]*ecQueue, tasks)
	for i := range queues {
		queues[i] = newECQueue(opLatency)
	}
	var kvMu sync.Mutex
	kv := map[string]int{}
	ecPut := func(k string) {
		time.Sleep(opLatency)
		kvMu.Lock()
		kv[k]++
		kvMu.Unlock()
	}

	var acked sync.WaitGroup
	stop := make(chan struct{})
	var workers sync.WaitGroup
	for i := 0; i < tasks; i++ {
		workers.Add(1)
		go func(i int) {
			defer workers.Done()
			for {
				item, ok := queues[i].dequeue()
				if !ok {
					select {
					case <-stop:
						return
					default:
						time.Sleep(200 * time.Microsecond)
						continue
					}
				}
				ecPut(fmt.Sprintf("%d/%s", i, item))
				acked.Done()
			}
		}(i)
	}

	hist := metrics.NewHistogram()
	rng := rand.New(rand.NewSource(7))
	for b := 0; b < batches; b++ {
		batch := make([]string, 64)
		for i := range batch {
			batch[i] = corpus[rng.Intn(len(corpus))]
		}
		start := time.Now()
		var parts sync.WaitGroup
		for p := 0; p < tasks; p++ {
			parts.Add(1)
			go func(p int) {
				defer parts.Done()
				for s := p; s < len(batch); s += tasks {
					for _, wd := range strings.Fields(batch[s]) {
						acked.Add(1)
						queues[int(fnvHash(wd))%tasks].enqueue(wd)
					}
				}
			}(p)
		}
		parts.Wait()
		acked.Wait()
		hist.Record(time.Since(start))
	}
	close(stop)
	workers.Wait()
	return hist
}

// ecQueue is an in-memory queue with modeled ElastiCache op latency.
type ecQueue struct {
	mu      sync.Mutex
	items   []string
	latency time.Duration
}

func newECQueue(latency time.Duration) *ecQueue { return &ecQueue{latency: latency} }

func (q *ecQueue) enqueue(s string) {
	time.Sleep(q.latency)
	q.mu.Lock()
	q.items = append(q.items, s)
	q.mu.Unlock()
}

func (q *ecQueue) dequeue() (string, bool) {
	time.Sleep(q.latency)
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.items) == 0 {
		return "", false
	}
	s := q.items[0]
	q.items = q.items[1:]
	return s, true
}

func fnvHash(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}

// Fig13b reproduces the paper's Fig. 13(b): ExCamera-style video
// encoding, where serverless encode tasks form a serial state-passing
// chain. The baseline exchanges state through a rendezvous server that
// tasks poll; Jiffy exchanges state through queues whose notifications
// wake the consumer immediately. The paper reports Jiffy cutting task
// wait times by 10–20%.
func Fig13b(w io.Writer, opts Options) error {
	tasks := 14
	encodeTime := 60 * time.Millisecond
	pollInterval := 10 * time.Millisecond
	if opts.Quick {
		tasks = 6
		encodeTime = 20 * time.Millisecond
	}

	// --- rendezvous-server baseline: poll for the predecessor's state.
	rendezvous := make([]chan []byte, tasks+1)
	for i := range rendezvous {
		rendezvous[i] = make(chan []byte, 1)
	}
	baselineLat, baselineWait := runExCamera(tasks, encodeTime,
		func(i int, state []byte) { rendezvous[i+1] <- state },
		func(i int) []byte {
			// Poll the rendezvous server at a fixed interval, like
			// ExCamera's lambdas polling for messages.
			for {
				select {
				case s := <-rendezvous[i]:
					return s
				default:
					time.Sleep(pollInterval)
				}
			}
		})

	// --- Jiffy: per-edge queues with notification-driven waits.
	cfg := core.TestConfig()
	cfg.LeaseDuration = time.Minute
	cluster, err := jiffy.StartCluster(jiffy.ClusterOptions{
		Config: cfg, Servers: 1, BlocksPerServer: 64,
	})
	if err != nil {
		return err
	}
	defer cluster.Close()
	c, err := cluster.Connect(context.Background())
	if err != nil {
		return err
	}
	defer c.Close()
	if err := c.RegisterJob(context.Background(), "excamera"); err != nil {
		return err
	}
	queues := make([]*jiffy.Queue, tasks+1)
	listeners := make([]*jiffy.Listener, tasks+1)
	for i := 0; i <= tasks; i++ {
		p := core.MustPath("excamera", fmt.Sprintf("edge%d", i))
		if _, _, err := c.CreatePrefix(context.Background(), p, nil, core.DSQueue, 1, 0); err != nil {
			return err
		}
		q, err := c.OpenQueue(context.Background(), p)
		if err != nil {
			return err
		}
		queues[i] = q
		l, err := q.Subscribe(context.Background(), core.OpEnqueue)
		if err != nil {
			return err
		}
		listeners[i] = l
		defer l.Close()
	}
	jiffyLat, jiffyWait := runExCamera(tasks, encodeTime,
		func(i int, state []byte) { queues[i+1].Enqueue(context.Background(), state) },
		func(i int) []byte {
			for {
				if item, err := queues[i].Dequeue(context.Background()); err == nil {
					return item
				}
				// Block on the enqueue notification instead of polling.
				listeners[i].Get(50 * time.Millisecond)
			}
		})

	tbl := metrics.NewTable("Fig. 13(b): ExCamera task latency (compute + state-exchange wait)",
		"task", "rendezvous total", "rendezvous wait", "jiffy total", "jiffy wait")
	for i := 0; i < tasks; i++ {
		tbl.AddRow(i, baselineLat[i], baselineWait[i], jiffyLat[i], jiffyWait[i])
	}
	fprintln(w, "%s", tbl.String())
	var bSum, jSum time.Duration
	for i := 0; i < tasks; i++ {
		bSum += baselineWait[i]
		jSum += jiffyWait[i]
	}
	reduction := 0.0
	if bSum > 0 {
		reduction = (1 - float64(jSum)/float64(bSum)) * 100
	}
	fprintln(w, "total wait: rendezvous=%v jiffy=%v (reduction %.0f%%; paper: 10-20%% lower task latency)",
		bSum, jSum, reduction)
	return nil
}

// runExCamera executes the serial state-passing chain, returning per-
// task total latency and wait time.
func runExCamera(tasks int, encodeTime time.Duration,
	send func(i int, state []byte), recv func(i int) []byte) ([]time.Duration, []time.Duration) {

	lat := make([]time.Duration, tasks)
	wait := make([]time.Duration, tasks)
	var wg sync.WaitGroup
	for i := 0; i < tasks; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			start := time.Now()
			// Encode this task's chunk (synthetic frame work).
			time.Sleep(encodeTime)
			// Wait for the predecessor's encoder state.
			var state []byte
			if i == 0 {
				state = []byte("seed")
			} else {
				ws := time.Now()
				state = recv(i)
				wait[i] = time.Since(ws)
			}
			// Re-encode against the received state (second pass).
			time.Sleep(encodeTime / 4)
			send(i, append(state, byte(i)))
			lat[i] = time.Since(start)
		}(i)
	}
	wg.Wait()
	return lat, wait
}
