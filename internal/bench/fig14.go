package bench

import (
	"io"
	"time"

	"jiffy/internal/baseline"
	"jiffy/internal/core"
	"jiffy/internal/metrics"
	"jiffy/internal/sim"
	"jiffy/internal/trace"
)

// fig14Workload is the file-structure trace replay shared by the three
// sensitivity sweeps (§6.6 replays the Snowflake workload against the
// file data structure). Per-stage files are sized near the block-size
// regime (tens to hundreds of MB) so that block granularity, lease
// tails and premature allocation are visible against the data itself.
func fig14Workload(opts Options) *trace.Trace {
	cfg := sim.Fig9TraceConfig()
	cfg.Tenants = 20
	cfg.JobsPerTenant = 10
	cfg.MeanStageBytes = 96 * float64(core.MB)
	cfg.MaxStageBytes = 2 << 30
	cfg.MeanStageDuration = 4 * time.Second
	if opts.Quick {
		cfg.Tenants = 8
		cfg.JobsPerTenant = 5
	}
	return trace.Generate(cfg, opts.seed())
}

// Fig14a reproduces the paper's Fig. 14(a): sensitivity to block size.
// Larger blocks mean coarser allocation granularity, so the gap between
// allocated and used storage grows and utilization drops (32MB → 512MB
// in the paper).
func Fig14a(w io.Writer, opts Options) error {
	tr := fig14Workload(opts)
	peak := sim.PeakCapacity(tr, time.Second)
	tbl := metrics.NewTable("Fig. 14(a): block-size sensitivity (95% threshold, 1s lease)",
		"block size", "avg allocated/used", "avg utilization(%)")
	for _, bs := range []int64{32 << 20, 64 << 20, 128 << 20, 256 << 20, 512 << 20} {
		st := sim.Run(tr, baseline.NewJiffyPolicy(8*peak, bs,
			core.DefaultHighThreshold, core.DefaultLeaseDuration), 8*peak, time.Second)
		tbl.AddRow(sizeLabel(int(bs)), overhead(st), efficiency(st))
	}
	fprintln(w, "%s", tbl.String())
	fprintln(w, "paper shape: bigger blocks widen the allocated-used gap.")
	return nil
}

// Fig14b reproduces the paper's Fig. 14(b): sensitivity to lease
// duration. Longer leases delay reclamation of consumed data, so
// allocated storage trails usage by ever-longer tails and utilization
// drops (0.25s → 64s in the paper).
func Fig14b(w io.Writer, opts Options) error {
	tr := fig14Workload(opts)
	peak := sim.PeakCapacity(tr, time.Second)
	tbl := metrics.NewTable("Fig. 14(b): lease-duration sensitivity (128MB blocks, 95% threshold)",
		"lease", "avg allocated/used", "avg utilization(%)")
	for _, lease := range []time.Duration{
		250 * time.Millisecond, time.Second, 4 * time.Second,
		16 * time.Second, 64 * time.Second,
	} {
		st := sim.Run(tr, baseline.NewJiffyPolicy(8*peak, 128<<20,
			core.DefaultHighThreshold, lease), 8*peak, time.Second)
		tbl.AddRow(lease, overhead(st), efficiency(st))
	}
	fprintln(w, "%s", tbl.String())
	fprintln(w, "paper shape: longer leases hold reclaimed-able memory longer; 1s is the sweet spot.")
	return nil
}

// Fig14c reproduces the paper's Fig. 14(c): sensitivity to the high
// repartition threshold. Lower thresholds trigger premature block
// allocation (a new block arrives when the current one is only X%
// full), inflating allocated storage (99% → 60% in the paper).
func Fig14c(w io.Writer, opts Options) error {
	tr := fig14Workload(opts)
	peak := sim.PeakCapacity(tr, time.Second)
	tbl := metrics.NewTable("Fig. 14(c): repartition-threshold sensitivity (128MB blocks, 1s lease)",
		"threshold(%)", "avg allocated/used", "avg utilization(%)")
	for _, th := range []float64{0.99, 0.95, 0.90, 0.80, 0.60} {
		st := sim.Run(tr, baseline.NewJiffyPolicy(8*peak, 128<<20, th,
			core.DefaultLeaseDuration), 8*peak, time.Second)
		tbl.AddRow(int(th*100), overhead(st), efficiency(st))
	}
	fprintln(w, "%s", tbl.String())
	fprintln(w, "paper shape: lower thresholds allocate prematurely; the effect is mild because")
	fprintln(w, "blocks are much smaller than per-file data (as the paper notes).")
	return nil
}

// overhead reports time-averaged allocated/used.
func overhead(st sim.Stats) float64 {
	u := st.UsedSeries.Integral()
	a := st.OccupiedSeries.Integral()
	if u == 0 {
		return 0
	}
	return a / u
}

// efficiency reports time-averaged used/allocated in percent.
func efficiency(st sim.Stats) float64 {
	a := st.OccupiedSeries.Integral()
	u := st.UsedSeries.Integral()
	if a == 0 {
		return 0
	}
	return u / a * 100
}

// Overhead reproduces the §6.4 storage-overheads measurement: the
// controller keeps ~64 bytes of metadata per task plus 8 bytes per
// block — a vanishing fraction of the stored data.
func Overhead(w io.Writer, opts Options) error {
	// Accounted directly from the controller's structures via Stats;
	// exercised with a live cluster in the repo's integration tests.
	tbl := metrics.NewTable("§6.4 controller metadata overhead (model)",
		"tasks", "blocks", "metadata bytes", "data bytes (128MB blocks)", "overhead")
	for _, scale := range []struct{ tasks, blocks int }{
		{10, 20}, {100, 400}, {1000, 8000},
	} {
		meta := 64*scale.tasks + 8*scale.blocks
		data := scale.blocks * 128 * core.MB
		tbl.AddRow(scale.tasks, scale.blocks, meta, data,
			float64(meta)/float64(data))
	}
	fprintln(w, "%s", tbl.String())
	fprintln(w, "paper: 64B fixed per task + 8B per block ⇒ <0.0001%% of stored data.")
	return nil
}
