// Package wire implements Jiffy's framed binary message protocol and
// its transports. The paper's implementation uses Apache Thrift with
// asynchronous framed IO (§4.2.2); this package plays the same role
// using only the standard library: fixed-header frames multiplexing
// many in-flight requests over one connection, plus server-push frames
// for the notification interface.
//
// Frame layout on the wire (big endian):
//
//	u32  length of the remainder (header after length + payload)
//	u8   kind        (request / response / push)
//	u64  seq         (request sequence number, or subscription id for push)
//	u16  method      (method identifier; 0 for responses and pushes)
//	u8   code        (error code; meaningful on responses)
//	...  payload
//
// The write path is batching-aware: WriteFrames coalesces many frames
// into a single buffered flush, and WriteFrame group-commits — when
// several goroutines write concurrently over one session, only the
// last writer in the convoy flushes, so N concurrent single-frame
// writes cost far fewer than N flushes (see DESIGN.md, "Batched hot
// path").
package wire

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"

	"jiffy/internal/core"
)

// Kind discriminates frame roles.
type Kind uint8

// Frame kinds.
const (
	// KindRequest carries a client→server call.
	KindRequest Kind = iota + 1
	// KindResponse carries the server's reply, matched by seq.
	KindResponse
	// KindPush carries an unsolicited server→client notification; seq
	// holds the subscription identifier.
	KindPush
	// KindTraceExt is the optional frame-header extension carrying span
	// propagation state for the request with the same seq, written
	// immediately before it in the same flush. Wire-compatible: peers
	// that predate it ignore non-request/response/push frames, so a
	// traced client can talk to an untraced server and vice versa.
	KindTraceExt
)

// headerLen is the fixed header size after the length prefix.
const headerLen = 1 + 8 + 2 + 1

// MaxFrameSize bounds a single frame (header + payload). Large objects
// (up to the 128MB block size) must fit; we allow 256MB.
const MaxFrameSize = 256 * core.MB

// InlineFrameThreshold is the payload size at or below which the
// small-frame fast path applies: senders encode header+payload into one
// pooled contiguous buffer and issue a single buffered write
// (AppendFrame + WriteBytes), and ReadFrameReused decodes arriving
// frames into connection-owned storage instead of allocating a Frame
// and payload per message. The threshold covers every single-op
// data-plane request/response (key + small value + codec framing) while
// keeping the per-connection scratch buffer small; bulk transfers fall
// through to the general vectored/chunked paths. The encoding is
// identical on the wire — old peers cannot tell which path produced a
// frame.
const InlineFrameThreshold = 4 * core.KB

// readAllocChunk bounds the upfront allocation for an incoming frame.
// Frames claiming more are read in chunks, so a garbage length prefix
// cannot force a huge allocation before the stream proves it actually
// has the bytes. The bound sits above the largest hot-path frame — a
// 1MiB file read plus vector prefixes — because a frame a few bytes
// over the chunk size would otherwise pay a full extra allocation and
// copy when the chunked growth rounds up to the true length.
const readAllocChunk = core.MB + 64*core.KB

// Frame is one protocol message.
type Frame struct {
	Kind    Kind
	Seq     uint64
	Method  uint16
	Code    core.ErrorCode
	Payload []byte

	// PayloadVec carries additional payload segments written after
	// Payload by scatter-gather IO — the zero-copy path for bodies that
	// alias long-lived block memory. It is a write-side construct only:
	// frames always arrive from ReadFrame with a single contiguous
	// Payload.
	PayloadVec [][]byte

	// Release, when non-nil, is invoked exactly once when the
	// connection is done with the frame's payload memory — after the
	// bytes have been staged into the write buffer or handed to the
	// socket, on success and error paths alike. Handlers use it to
	// unpin block memory aliased by Payload/PayloadVec.
	Release func()
}

// PayloadLen is the total payload size across Payload and PayloadVec.
func (f *Frame) PayloadLen() int {
	n := len(f.Payload)
	for _, p := range f.PayloadVec {
		n += len(p)
	}
	return n
}

// release fires the Release hook at most once.
func (f *Frame) release() {
	if f.Release != nil {
		r := f.Release
		f.Release = nil
		r()
	}
}

// Conn wraps a net.Conn with buffered framed IO. Reads must come from a
// single goroutine; writes are serialized internally and may come from
// many goroutines.
type Conn struct {
	nc net.Conn
	r  *bufio.Reader

	// Read-side scratch, owned by the single reader goroutine: the
	// length prefix, plus the Frame and payload storage that
	// ReadFrameReused recycles across small frames.
	rlen   [4]byte
	rframe Frame
	rbuf   []byte

	// writers counts goroutines inside WriteFrame(s) — holding or
	// queued for wmu. A writer that sees other writers pending skips
	// its flush: the last member of the convoy flushes for everyone
	// (group commit).
	writers atomic.Int32

	wmu sync.Mutex
	w   *bufio.Writer
	hdr [4 + headerLen]byte

	closeOnce sync.Once
	closeErr  error
}

// NewConn wraps nc.
func NewConn(nc net.Conn) *Conn {
	return &Conn{
		nc: nc,
		r:  bufio.NewReaderSize(nc, 64*core.KB),
		w:  bufio.NewWriterSize(nc, 64*core.KB),
	}
}

// RemoteAddr exposes the peer address for logging.
func (c *Conn) RemoteAddr() net.Addr { return c.nc.RemoteAddr() }

// WriteFrame sends one frame. Safe for concurrent use. The flush is
// opportunistically coalesced: if other writers are already queued on
// this connection, the buffer is left for the last of them to flush,
// so concurrent single-op callers sharing a session amortize flushes.
// f.Payload and f.PayloadVec are fully consumed before return and may
// be reused; f.Release (if set) has fired by then.
func (c *Conn) WriteFrame(f *Frame) error {
	c.writers.Add(1)
	c.wmu.Lock()
	err := c.writeFrameLocked(f)
	if err == nil {
		err = c.maybeFlushLocked()
	} else {
		c.writers.Add(-1)
	}
	c.wmu.Unlock()
	return err
}

// WriteFrames sends many frames under one lock acquisition and at most
// one flush — the wire-level frame coalescer used by batched calls.
func (c *Conn) WriteFrames(frames ...*Frame) error {
	if len(frames) == 0 {
		return nil
	}
	c.writers.Add(1)
	c.wmu.Lock()
	var err error
	for i, f := range frames {
		if err = c.writeFrameLocked(f); err != nil {
			// The failing frame released itself; frames never staged must
			// still release so their payload memory is unpinned.
			for _, g := range frames[i+1:] {
				g.release()
			}
			break
		}
	}
	if err == nil {
		err = c.maybeFlushLocked()
	} else {
		c.writers.Add(-1)
	}
	c.wmu.Unlock()
	return err
}

// directWriteThreshold is the PayloadVec size above which the write
// path bypasses the bufio copy and hands the segments to the kernel as
// one vectored write. Below it, staging through the 64KB write buffer
// is cheaper than a syscall per frame.
const directWriteThreshold = 32 * core.KB

// writeFrameLocked stages one frame into the write buffer, or — for
// frames carrying a large PayloadVec — flushes staged bytes and writes
// the segments with scatter-gather IO (writev on TCP), so big bodies
// aliasing block memory reach the socket without an intermediate copy.
// The frame's Release hook fires before return on every path. Caller
// holds wmu.
func (c *Conn) writeFrameLocked(f *Frame) error {
	defer f.release()
	vecLen := 0
	for _, p := range f.PayloadVec {
		vecLen += len(p)
	}
	n := headerLen + len(f.Payload) + vecLen
	if n > MaxFrameSize {
		return fmt.Errorf("wire: frame of %d bytes exceeds limit %d", n, MaxFrameSize)
	}
	binary.BigEndian.PutUint32(c.hdr[0:4], uint32(n))
	c.hdr[4] = byte(f.Kind)
	binary.BigEndian.PutUint64(c.hdr[5:13], f.Seq)
	binary.BigEndian.PutUint16(c.hdr[13:15], f.Method)
	c.hdr[15] = byte(f.Code)
	if _, err := c.w.Write(c.hdr[:]); err != nil {
		return err
	}
	if _, err := c.w.Write(f.Payload); err != nil {
		return err
	}
	if vecLen == 0 {
		return nil
	}
	if c.nc != nil && vecLen >= directWriteThreshold {
		if err := c.w.Flush(); err != nil {
			return err
		}
		// net.Buffers.WriteTo consumes its slice, so hand it a copy.
		bufs := make(net.Buffers, len(f.PayloadVec))
		copy(bufs, f.PayloadVec)
		_, err := bufs.WriteTo(c.nc)
		return err
	}
	for _, p := range f.PayloadVec {
		if _, err := c.w.Write(p); err != nil {
			return err
		}
	}
	return nil
}

// maybeFlushLocked releases this goroutine's writer slot and flushes
// unless another writer is already committed to acquiring wmu — that
// writer will stage its own frame and flush both. The convoy's last
// writer always observes zero pending writers and flushes, so every
// staged frame reaches the wire. Caller holds wmu.
func (c *Conn) maybeFlushLocked() error {
	if c.writers.Add(-1) > 0 {
		return nil
	}
	return c.w.Flush()
}

// AppendFrame appends f's wire encoding (length prefix, header,
// payload) to dst. The inline small-frame fast path encodes into a
// pooled buffer with it and sends the result through WriteBytes as one
// contiguous write; it also serves tests and fuzzers. f is not
// retained, so callers may pass a stack-allocated frame.
func AppendFrame(dst []byte, f *Frame) []byte {
	var hdr [4 + headerLen]byte
	n := headerLen + f.PayloadLen()
	binary.BigEndian.PutUint32(hdr[0:4], uint32(n))
	hdr[4] = byte(f.Kind)
	binary.BigEndian.PutUint64(hdr[5:13], f.Seq)
	binary.BigEndian.PutUint16(hdr[13:15], f.Method)
	hdr[15] = byte(f.Code)
	dst = append(dst, hdr[:]...)
	dst = append(dst, f.Payload...)
	for _, p := range f.PayloadVec {
		dst = append(dst, p...)
	}
	return dst
}

// WriteBytes stages pre-encoded frame bytes (one or more AppendFrame
// encodings) and participates in the same group-commit flush as
// WriteFrame, so fast-path and general writers coalesce into one convoy.
// Safe for concurrent use. The caller owns b again on return.
func (c *Conn) WriteBytes(b []byte) error {
	c.writers.Add(1)
	c.wmu.Lock()
	_, err := c.w.Write(b)
	if err == nil {
		err = c.maybeFlushLocked()
	} else {
		c.writers.Add(-1)
	}
	c.wmu.Unlock()
	return err
}

// parseFrameInto decodes the post-length-prefix portion of a frame into
// f without allocating. buf must be at least headerLen bytes (the
// caller validated the length prefix); f's payload aliases buf.
func parseFrameInto(f *Frame, buf []byte) error {
	if len(buf) < headerLen {
		return fmt.Errorf("wire: frame shorter than header (%d bytes)", len(buf))
	}
	f.Kind = Kind(buf[0])
	f.Seq = binary.BigEndian.Uint64(buf[1:9])
	f.Method = binary.BigEndian.Uint16(buf[9:11])
	f.Code = core.ErrorCode(buf[11])
	f.Payload = nil
	f.PayloadVec = nil
	f.Release = nil
	if len(buf) > headerLen {
		f.Payload = buf[headerLen:]
	}
	switch f.Kind {
	case KindRequest, KindResponse, KindPush, KindTraceExt:
	default:
		return fmt.Errorf("wire: invalid frame kind %d", f.Kind)
	}
	return nil
}

// parseFrame decodes the post-length-prefix portion of a frame. buf
// must be at least headerLen bytes (the caller validated the length
// prefix); the returned frame's payload aliases buf.
func parseFrame(buf []byte) (*Frame, error) {
	f := new(Frame)
	if err := parseFrameInto(f, buf); err != nil {
		return nil, err
	}
	return f, nil
}

// Trace-extension payload layout: u8 version, u64 trace ID, u64 span
// ID. Decoders ignore trailing bytes so future versions can append
// fields without breaking old peers.
const (
	traceExtVersion = 1
	traceExtLen     = 1 + 8 + 8
)

// EncodeTraceExt builds the payload of a KindTraceExt frame.
func EncodeTraceExt(trace, span uint64) []byte {
	buf := make([]byte, traceExtLen)
	buf[0] = traceExtVersion
	binary.BigEndian.PutUint64(buf[1:9], trace)
	binary.BigEndian.PutUint64(buf[9:17], span)
	return buf
}

// DecodeTraceExt parses a KindTraceExt payload. ok is false for
// unknown versions or truncated payloads (the extension is optional:
// an undecodable one is dropped, never an error).
func DecodeTraceExt(p []byte) (trace, span uint64, ok bool) {
	if len(p) < traceExtLen || p[0] != traceExtVersion {
		return 0, 0, false
	}
	return binary.BigEndian.Uint64(p[1:9]), binary.BigEndian.Uint64(p[9:17]), true
}

// readLen reads and validates the 4-byte length prefix using the
// connection's scratch (a stack [4]byte escapes through io.ReadFull and
// costs an allocation per frame).
func (c *Conn) readLen() (int, error) {
	if _, err := io.ReadFull(c.r, c.rlen[:]); err != nil {
		return 0, err
	}
	n := int(binary.BigEndian.Uint32(c.rlen[:]))
	if n < headerLen || n > MaxFrameSize {
		return 0, fmt.Errorf("wire: invalid frame length %d", n)
	}
	return n, nil
}

// ReadFrame reads the next frame. Must be called from one goroutine.
// The returned frame is freshly allocated and owned by the caller.
func (c *Conn) ReadFrame() (*Frame, error) {
	n, err := c.readLen()
	if err != nil {
		return nil, err
	}
	buf, err := c.readBody(n)
	if err != nil {
		return nil, err
	}
	return parseFrame(buf)
}

// ReadFrameReused reads the next frame like ReadFrame, but decodes
// small frames (payload at most InlineFrameThreshold) into
// connection-owned storage: when reused is true, the returned Frame and
// its Payload are invalidated by the next Read*Frame call, so the
// caller must finish with them — or copy what it keeps — before reading
// again. Larger frames come back freshly allocated (reused false),
// exactly as from ReadFrame. This is the receive-side half of the
// inline small-frame fast path: the steady-state cost of a small frame
// is one buffered read, zero allocations.
func (c *Conn) ReadFrameReused() (f *Frame, reused bool, err error) {
	n, err := c.readLen()
	if err != nil {
		return nil, false, err
	}
	if n <= InlineFrameThreshold+headerLen {
		if cap(c.rbuf) < n {
			c.rbuf = make([]byte, InlineFrameThreshold+headerLen)
		}
		buf := c.rbuf[:n]
		if _, err := io.ReadFull(c.r, buf); err != nil {
			return nil, false, err
		}
		if err := parseFrameInto(&c.rframe, buf); err != nil {
			return nil, false, err
		}
		return &c.rframe, true, nil
	}
	buf, err := c.readBody(n)
	if err != nil {
		return nil, false, err
	}
	f, err = parseFrame(buf)
	return f, false, err
}

// readBody reads the n-byte remainder of a frame into a fresh buffer.
func (c *Conn) readBody(n int) ([]byte, error) {
	var buf []byte
	if n <= readAllocChunk {
		buf = make([]byte, n)
		if _, err := io.ReadFull(c.r, buf); err != nil {
			return nil, err
		}
	} else {
		// Chunked read: the allocation grows only as the bytes actually
		// arrive, so a forged length cannot balloon memory. Growth
		// doubles but is capped at exactly n — append's overshoot would
		// cost a 1 MiB frame an extra 2 MiB allocation.
		buf = make([]byte, 0, readAllocChunk)
		for len(buf) < n {
			if len(buf) == cap(buf) {
				grown := cap(buf) * 2
				if grown > n {
					grown = n
				}
				next := make([]byte, len(buf), grown)
				copy(next, buf)
				buf = next
			}
			chunk := cap(buf) - len(buf)
			if rem := n - len(buf); chunk > rem {
				chunk = rem
			}
			start := len(buf)
			buf = buf[:start+chunk]
			if _, err := io.ReadFull(c.r, buf[start:]); err != nil {
				return nil, err
			}
		}
	}
	return buf, nil
}

// Close tears down the underlying connection. Idempotent.
func (c *Conn) Close() error {
	c.closeOnce.Do(func() { c.closeErr = c.nc.Close() })
	return c.closeErr
}
