// Package wire implements Jiffy's framed binary message protocol and
// its transports. The paper's implementation uses Apache Thrift with
// asynchronous framed IO (§4.2.2); this package plays the same role
// using only the standard library: fixed-header frames multiplexing
// many in-flight requests over one connection, plus server-push frames
// for the notification interface.
//
// Frame layout on the wire (big endian):
//
//	u32  length of the remainder (header after length + payload)
//	u8   kind        (request / response / push)
//	u64  seq         (request sequence number, or subscription id for push)
//	u16  method      (method identifier; 0 for responses and pushes)
//	u8   code        (error code; meaningful on responses)
//	...  payload
package wire

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"

	"jiffy/internal/core"
)

// Kind discriminates frame roles.
type Kind uint8

// Frame kinds.
const (
	// KindRequest carries a client→server call.
	KindRequest Kind = iota + 1
	// KindResponse carries the server's reply, matched by seq.
	KindResponse
	// KindPush carries an unsolicited server→client notification; seq
	// holds the subscription identifier.
	KindPush
)

// headerLen is the fixed header size after the length prefix.
const headerLen = 1 + 8 + 2 + 1

// MaxFrameSize bounds a single frame (header + payload). Large objects
// (up to the 128MB block size) must fit; we allow 256MB.
const MaxFrameSize = 256 * core.MB

// Frame is one protocol message.
type Frame struct {
	Kind    Kind
	Seq     uint64
	Method  uint16
	Code    core.ErrorCode
	Payload []byte
}

// Conn wraps a net.Conn with buffered framed IO. Reads must come from a
// single goroutine; writes are serialized internally and may come from
// many goroutines.
type Conn struct {
	nc net.Conn
	r  *bufio.Reader

	wmu sync.Mutex
	w   *bufio.Writer
	hdr [4 + headerLen]byte

	closeOnce sync.Once
	closeErr  error
}

// NewConn wraps nc.
func NewConn(nc net.Conn) *Conn {
	return &Conn{
		nc: nc,
		r:  bufio.NewReaderSize(nc, 64*core.KB),
		w:  bufio.NewWriterSize(nc, 64*core.KB),
	}
}

// RemoteAddr exposes the peer address for logging.
func (c *Conn) RemoteAddr() net.Addr { return c.nc.RemoteAddr() }

// WriteFrame sends one frame, flushing the buffer. Safe for concurrent
// use.
func (c *Conn) WriteFrame(f *Frame) error {
	n := headerLen + len(f.Payload)
	if n > MaxFrameSize {
		return fmt.Errorf("wire: frame of %d bytes exceeds limit %d", n, MaxFrameSize)
	}
	c.wmu.Lock()
	defer c.wmu.Unlock()
	binary.BigEndian.PutUint32(c.hdr[0:4], uint32(n))
	c.hdr[4] = byte(f.Kind)
	binary.BigEndian.PutUint64(c.hdr[5:13], f.Seq)
	binary.BigEndian.PutUint16(c.hdr[13:15], f.Method)
	c.hdr[15] = byte(f.Code)
	if _, err := c.w.Write(c.hdr[:]); err != nil {
		return err
	}
	if _, err := c.w.Write(f.Payload); err != nil {
		return err
	}
	return c.w.Flush()
}

// ReadFrame reads the next frame. Must be called from one goroutine.
func (c *Conn) ReadFrame() (*Frame, error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(c.r, lenBuf[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(lenBuf[:])
	if n < headerLen || n > MaxFrameSize {
		return nil, fmt.Errorf("wire: invalid frame length %d", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(c.r, buf); err != nil {
		return nil, err
	}
	f := &Frame{
		Kind:   Kind(buf[0]),
		Seq:    binary.BigEndian.Uint64(buf[1:9]),
		Method: binary.BigEndian.Uint16(buf[9:11]),
		Code:   core.ErrorCode(buf[11]),
	}
	if n > headerLen {
		f.Payload = buf[headerLen:]
	}
	switch f.Kind {
	case KindRequest, KindResponse, KindPush:
	default:
		return nil, fmt.Errorf("wire: invalid frame kind %d", f.Kind)
	}
	return f, nil
}

// Close tears down the underlying connection. Idempotent.
func (c *Conn) Close() error {
	c.closeOnce.Do(func() { c.closeErr = c.nc.Close() })
	return c.closeErr
}
