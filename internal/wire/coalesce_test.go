package wire

import (
	"fmt"
	"sync"
	"testing"
)

// TestWriteFramesRoundTrip sends many frames through one WriteFrames
// call — one lock acquisition, at most one flush — and checks every
// frame arrives intact and in order.
func TestWriteFramesRoundTrip(t *testing.T) {
	ca, cb := framePair(t)
	const n = 100
	frames := make([]*Frame, n)
	for i := range frames {
		frames[i] = &Frame{
			Kind:    KindRequest,
			Seq:     uint64(i),
			Method:  uint16(i % 7),
			Payload: []byte(fmt.Sprintf("payload-%03d", i)),
		}
	}
	errc := make(chan error, 1)
	go func() { errc <- ca.WriteFrames(frames...) }()
	for i := 0; i < n; i++ {
		got, err := cb.ReadFrame()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if got.Seq != uint64(i) || string(got.Payload) != fmt.Sprintf("payload-%03d", i) {
			t.Fatalf("frame %d: got seq=%d payload=%q", i, got.Seq, got.Payload)
		}
	}
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
}

// TestCoalescedFlushDelivery hammers one conn from many goroutines so
// writers convoy on the write lock and the trailing-writer flush rule
// kicks in. Every frame must still be delivered: a skipped flush is
// only legal when a queued writer is guaranteed to flush later.
func TestCoalescedFlushDelivery(t *testing.T) {
	ca, cb := framePair(t)
	const writers, perWriter = 16, 64
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				f := &Frame{Kind: KindRequest, Seq: uint64(w)<<32 | uint64(i)}
				if err := ca.WriteFrame(f); err != nil {
					t.Errorf("write: %v", err)
					return
				}
			}
		}(w)
	}
	seen := make(map[uint64]bool, writers*perWriter)
	for i := 0; i < writers*perWriter; i++ {
		f, err := cb.ReadFrame()
		if err != nil {
			t.Fatalf("after %d frames: %v", i, err)
		}
		if seen[f.Seq] {
			t.Fatalf("duplicate seq %#x", f.Seq)
		}
		seen[f.Seq] = true
	}
	wg.Wait()
}

// TestPayloadPoolBounds checks the pool contract: GetBuf returns an
// empty reusable slice, and PutBuf drops zero-cap and oversized
// buffers instead of caching them.
func TestPayloadPoolBounds(t *testing.T) {
	b := GetBuf()
	if len(b) != 0 {
		t.Fatalf("GetBuf returned len %d, want 0", len(b))
	}
	b = append(b, "some bytes"...)
	PutBuf(b)

	PutBuf(nil)                             // zero cap: must not panic or pool
	PutBuf(make([]byte, 0, maxPooledBuf*2)) // oversized: must be dropped
	if got := GetBuf(); cap(got) > maxPooledBuf {
		t.Fatalf("pool returned oversized buffer cap=%d", cap(got))
	}
}
