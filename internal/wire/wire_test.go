package wire

import (
	"bytes"
	"errors"
	"net"
	"sync"
	"testing"
	"testing/quick"

	"jiffy/internal/core"
)

func framePair(t *testing.T) (*Conn, *Conn) {
	t.Helper()
	a, b := net.Pipe()
	ca, cb := NewConn(a), NewConn(b)
	t.Cleanup(func() { ca.Close(); cb.Close() })
	return ca, cb
}

func TestFrameRoundTrip(t *testing.T) {
	ca, cb := framePair(t)
	want := &Frame{
		Kind:    KindRequest,
		Seq:     42,
		Method:  7,
		Code:    core.CodeOK,
		Payload: []byte("hello jiffy"),
	}
	errc := make(chan error, 1)
	go func() { errc <- ca.WriteFrame(want) }()
	got, err := cb.ReadFrame()
	if err != nil {
		t.Fatal(err)
	}
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
	if got.Kind != want.Kind || got.Seq != want.Seq || got.Method != want.Method ||
		got.Code != want.Code || !bytes.Equal(got.Payload, want.Payload) {
		t.Errorf("got %+v, want %+v", got, want)
	}
}

func TestFrameEmptyPayload(t *testing.T) {
	ca, cb := framePair(t)
	go ca.WriteFrame(&Frame{Kind: KindResponse, Seq: 1})
	got, err := cb.ReadFrame()
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Payload) != 0 {
		t.Errorf("payload = %v, want empty", got.Payload)
	}
}

func TestFramePropertyRoundTrip(t *testing.T) {
	f := func(seq uint64, method uint16, code uint8, payload []byte) bool {
		a, b := net.Pipe()
		defer a.Close()
		defer b.Close()
		ca, cb := NewConn(a), NewConn(b)
		in := &Frame{
			Kind: KindPush, Seq: seq, Method: method,
			Code: core.ErrorCode(code), Payload: payload,
		}
		go ca.WriteFrame(in)
		out, err := cb.ReadFrame()
		if err != nil {
			return false
		}
		return out.Seq == seq && out.Method == method &&
			out.Code == core.ErrorCode(code) && bytes.Equal(out.Payload, payload)
	}
	cfg := &quick.Config{MaxCount: 50}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestFrameInvalidKind(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	go func() {
		// Hand-craft a frame with kind 99.
		buf := []byte{0, 0, 0, 12, 99, 0, 0, 0, 0, 0, 0, 0, 1, 0, 0, 0}
		a.Write(buf)
	}()
	if _, err := NewConn(b).ReadFrame(); err == nil {
		t.Error("invalid kind should fail")
	}
}

func TestFrameInvalidLength(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	go a.Write([]byte{0, 0, 0, 1, 0, 0, 0, 0}) // length 1 < headerLen
	if _, err := NewConn(b).ReadFrame(); err == nil {
		t.Error("short frame length should fail")
	}
}

func TestConcurrentWrites(t *testing.T) {
	ca, cb := framePair(t)
	const writers, perWriter = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				f := &Frame{Kind: KindRequest, Seq: uint64(w*1000 + i), Payload: []byte{byte(w)}}
				if err := ca.WriteFrame(f); err != nil {
					t.Errorf("write: %v", err)
					return
				}
			}
		}(w)
	}
	seen := make(map[uint64]bool)
	for i := 0; i < writers*perWriter; i++ {
		f, err := cb.ReadFrame()
		if err != nil {
			t.Fatal(err)
		}
		if seen[f.Seq] {
			t.Fatalf("duplicate seq %d", f.Seq)
		}
		seen[f.Seq] = true
	}
	wg.Wait()
}

func TestMemTransport(t *testing.T) {
	l, err := Listen("mem://test-ep")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if l.Addr().String() != "mem://test-ep" {
		t.Errorf("addr = %q", l.Addr())
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		conn, err := l.Accept()
		if err != nil {
			t.Errorf("accept: %v", err)
			return
		}
		defer conn.Close()
		c := NewConn(conn)
		f, err := c.ReadFrame()
		if err != nil {
			t.Errorf("read: %v", err)
			return
		}
		f.Kind = KindResponse
		c.WriteFrame(f)
	}()
	conn, err := Dial("mem://test-ep")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	c := NewConn(conn)
	if err := c.WriteFrame(&Frame{Kind: KindRequest, Seq: 5, Payload: []byte("x")}); err != nil {
		t.Fatal(err)
	}
	resp, err := c.ReadFrame()
	if err != nil {
		t.Fatal(err)
	}
	if resp.Kind != KindResponse || resp.Seq != 5 {
		t.Errorf("resp = %+v", resp)
	}
	<-done
}

func TestMemTransportDuplicateName(t *testing.T) {
	l, err := Listen("mem://dup")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if _, err := Listen("mem://dup"); err == nil {
		t.Error("duplicate endpoint should fail")
	}
}

func TestMemTransportDialUnknown(t *testing.T) {
	if _, err := Dial("mem://nope"); err == nil {
		t.Error("dialing unknown endpoint should fail")
	}
}

func TestMemTransportClosedListener(t *testing.T) {
	l, err := Listen("mem://closing")
	if err != nil {
		t.Fatal(err)
	}
	l.Close()
	if _, err := Dial("mem://closing"); err == nil {
		t.Error("dialing closed endpoint should fail")
	}
	if _, err := l.Accept(); err == nil {
		t.Error("accept on closed listener should fail")
	}
	// Name is free for reuse after close.
	l2, err := Listen("mem://closing")
	if err != nil {
		t.Fatalf("reuse after close: %v", err)
	}
	l2.Close()
}

func TestTCPTransport(t *testing.T) {
	l, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Skipf("TCP unavailable: %v", err)
	}
	defer l.Close()
	go func() {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		c := NewConn(conn)
		if f, err := c.ReadFrame(); err == nil {
			c.WriteFrame(&Frame{Kind: KindResponse, Seq: f.Seq})
		}
	}()
	conn, err := Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	c := NewConn(conn)
	if err := c.WriteFrame(&Frame{Kind: KindRequest, Seq: 9}); err != nil {
		t.Fatal(err)
	}
	resp, err := c.ReadFrame()
	if err != nil {
		t.Fatal(err)
	}
	if resp.Seq != 9 {
		t.Errorf("seq = %d", resp.Seq)
	}
}

func TestOversizedFrameRejected(t *testing.T) {
	a, _ := net.Pipe()
	defer a.Close()
	c := NewConn(a)
	f := &Frame{Kind: KindRequest, Payload: make([]byte, MaxFrameSize)}
	if err := c.WriteFrame(f); err == nil {
		t.Error("oversized frame should be rejected")
	}
}

func TestConnCloseIdempotent(t *testing.T) {
	a, b := net.Pipe()
	defer b.Close()
	c := NewConn(a)
	err1 := c.Close()
	err2 := c.Close()
	if !errors.Is(err2, err1) && err1 != err2 {
		t.Errorf("close errors differ: %v vs %v", err1, err2)
	}
}

// TestReadFrameRobustAgainstGarbage feeds random byte streams into the
// frame reader: it must either parse frames or fail cleanly — never
// panic, never over-allocate (length fields are bounded), never hang.
func TestReadFrameRobustAgainstGarbage(t *testing.T) {
	f := func(garbage []byte) bool {
		a, b := net.Pipe()
		defer a.Close()
		defer b.Close()
		go func() {
			a.Write(garbage)
			a.Close()
		}()
		c := NewConn(b)
		for i := 0; i < 100; i++ { // bounded frames per input
			if _, err := c.ReadFrame(); err != nil {
				return true // clean termination
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestReadFrameHugeLengthRejected: a length prefix above MaxFrameSize
// must be rejected before any allocation attempt.
func TestReadFrameHugeLengthRejected(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	go a.Write([]byte{0xff, 0xff, 0xff, 0xff})
	if _, err := NewConn(b).ReadFrame(); err == nil {
		t.Error("4GB frame length accepted")
	}
}

// TestTraceExtRoundTrip covers the trace-extension payload codec and
// its forward/backward compatibility contract.
func TestTraceExtRoundTrip(t *testing.T) {
	p := EncodeTraceExt(0x1122334455667788, 0x99aabbccddeeff00)
	tr, sp, ok := DecodeTraceExt(p)
	if !ok || tr != 0x1122334455667788 || sp != 0x99aabbccddeeff00 {
		t.Fatalf("round trip: %x %x %v", tr, sp, ok)
	}
	// Trailing bytes are ignored (future versions may append fields).
	if tr, sp, ok = DecodeTraceExt(append(p, 1, 2, 3)); !ok || tr != 0x1122334455667788 || sp != 0x99aabbccddeeff00 {
		t.Fatal("trailing bytes must be ignored")
	}
	// Truncated or version-skewed payloads are rejected cleanly.
	if _, _, ok = DecodeTraceExt(p[:10]); ok {
		t.Fatal("truncated payload accepted")
	}
	bad := append([]byte(nil), p...)
	bad[0] = 2
	if _, _, ok = DecodeTraceExt(bad); ok {
		t.Fatal("unknown version accepted")
	}
	// A trace-ext frame survives the frame codec.
	f := &Frame{Kind: KindTraceExt, Seq: 7, Payload: p}
	c := fuzzConn(AppendFrame(nil, f))
	out, err := c.ReadFrame()
	if err != nil || out.Kind != KindTraceExt || out.Seq != 7 {
		t.Fatalf("trace-ext frame: %+v, %v", out, err)
	}
}
