//go:build jiffydebug

package wire

import (
	"sync"
	"unsafe"
)

// Debug-build buffer-ownership assertions (-tags jiffydebug). The
// release-hook payload contract makes ownership bugs easy to write, so
// under this tag the pool becomes an oracle for the two classic ones:
//
//   - double put: PutBuf records each pooled buffer by backing-array
//     address; a second PutBuf before GetBuf hands it out again panics.
//   - use after put: PutBuf poisons the buffer's full capacity; GetBuf
//     verifies the poison is intact, so a holder that kept writing
//     through a released slice panics at the buffer's next reuse.
//
// PutBuf is documented as safe on arbitrary slices, so buffers that
// never came from the pool are tracked from their first Put onward —
// only genuinely double-released pool-eligible buffers trip the panic.

const poisonByte = 0xDB

// pooledBufs maps backing-array pointer → struct{} for buffers
// currently inside the pool. Entries for buffers the GC collects out of
// the pool leak; acceptable for a debug build.
var pooledBufs sync.Map

func bufKey(b []byte) unsafe.Pointer {
	return unsafe.Pointer(unsafe.SliceData(b))
}

func debugTrackGet(b []byte) {
	if cap(b) == 0 {
		return
	}
	if _, wasPooled := pooledBufs.LoadAndDelete(bufKey(b)); wasPooled {
		verifyPoison(b)
	}
}

func debugTrackPut(b []byte) {
	if _, loaded := pooledBufs.LoadOrStore(bufKey(b), struct{}{}); loaded {
		panic("wire: double PutBuf of the same buffer")
	}
	poison(b)
}

func poison(b []byte) {
	b = b[:cap(b)]
	for i := range b {
		b[i] = poisonByte
	}
}

func verifyPoison(b []byte) {
	b = b[:cap(b)]
	for i := range b {
		if b[i] != poisonByte {
			panic("wire: buffer written after PutBuf (use after put)")
		}
	}
}
