package wire

import (
	"sync"

	"jiffy/internal/core"
)

// maxPooledBuf caps the size of buffers kept in the pool so one giant
// frame cannot pin megabytes of idle memory for the session's lifetime.
const maxPooledBuf = core.MB

// payloadPool recycles frame/payload staging buffers on the data-plane
// hot path: request encoding on the client, response encoding on the
// server. Both sides encode into a pooled buffer, hand it to the frame
// writer (which copies it into the connection's write buffer
// synchronously), and return it — cutting the dominant per-op
// allocation on each end.
var payloadPool = sync.Pool{
	New: func() interface{} {
		b := make([]byte, 0, 4096)
		return &b
	},
}

// hdrPool recycles the *[]byte boxes that carry slices through
// payloadPool. Without it every PutBuf allocates a fresh box to satisfy
// sync.Pool's interface{} contract (`&b` escapes), which put two heap
// allocations back on a hot path that exists to avoid them.
var hdrPool = sync.Pool{
	New: func() interface{} { return new([]byte) },
}

// GetBuf returns an empty buffer from the pool. Append into it, use the
// result, then release it with PutBuf.
func GetBuf() []byte {
	p := payloadPool.Get().(*[]byte)
	b := (*p)[:0]
	*p = nil
	hdrPool.Put(p)
	debugTrackGet(b)
	return b
}

// PutBuf returns a buffer to the pool. The caller must not touch b
// afterwards. Buffers that grew beyond maxPooledBuf are dropped so the
// pool holds only hot-path-sized memory; nil and zero-capacity slices
// are ignored, so PutBuf is safe to call on any response/request slice
// whose ownership has ended.
func PutBuf(b []byte) {
	if cap(b) == 0 || cap(b) > maxPooledBuf {
		return
	}
	debugTrackPut(b)
	p := hdrPool.Get().(*[]byte)
	*p = b[:0]
	payloadPool.Put(p)
}
