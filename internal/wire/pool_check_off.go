//go:build !jiffydebug

package wire

// Release builds compile the pool ownership hooks away entirely; the
// assertions live in pool_check_on.go behind -tags jiffydebug.

func debugTrackGet([]byte) {}

func debugTrackPut([]byte) {}
