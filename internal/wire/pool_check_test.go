//go:build jiffydebug

package wire

import "testing"

func mustPanic(t *testing.T, want string, fn func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("expected panic %q, got none", want)
		}
		if s, ok := r.(string); !ok || s != want {
			t.Fatalf("panic = %v, want %q", r, want)
		}
	}()
	fn()
}

func TestPoolDoublePutPanics(t *testing.T) {
	b := GetBuf()
	b = append(b, 1, 2, 3)
	PutBuf(b)
	mustPanic(t, "wire: double PutBuf of the same buffer", func() { PutBuf(b) })
	// Drain the poisoned entry so it doesn't leak into other tests.
	GetBuf()
}

func TestPoolPutPoisons(t *testing.T) {
	b := GetBuf()
	b = append(b, 1, 2, 3)
	PutBuf(b)
	for i, c := range b[:3] {
		if c != poisonByte {
			t.Fatalf("byte %d = %#x after PutBuf, want poison %#x", i, c, poisonByte)
		}
	}
	GetBuf()
}

func TestPoolUseAfterPutPanics(t *testing.T) {
	b := GetBuf()
	b = append(b, 1, 2, 3)
	PutBuf(b)
	b[0] = 42 // the bug: writing through a released slice
	mustPanic(t, "wire: buffer written after PutBuf (use after put)", func() { verifyPoison(b) })
	b[0] = poisonByte
	GetBuf()
}

// TestPoolUntrackedPutAllowed pins the documented PutBuf contract:
// slices that never came from the pool may be released exactly once
// without tripping the double-put oracle.
func TestPoolUntrackedPutAllowed(t *testing.T) {
	PutBuf(make([]byte, 16))
	GetBuf()
}
