package wire

import (
	"bufio"
	"bytes"
	"io"
	"testing"

	"jiffy/internal/core"
)

// fuzzConn wraps a byte stream in a read-only frame decoder.
func fuzzConn(data []byte) *Conn {
	return &Conn{r: bufio.NewReader(bytes.NewReader(data))}
}

// FuzzFrameRoundTrip encodes an arbitrary frame and decodes it back:
// every field must survive, the stream must be consumed exactly, and
// nothing may panic — batched requests stack many frames back to back,
// so a single mis-sized frame would desynchronize the whole session.
func FuzzFrameRoundTrip(f *testing.F) {
	f.Add(byte(1), uint64(0), uint16(0), byte(0), []byte(nil))
	f.Add(byte(2), uint64(42), uint16(7), byte(3), []byte("hello jiffy"))
	f.Add(byte(3), uint64(1)<<60, uint16(0x0110), byte(255), bytes.Repeat([]byte{0xab}, 4096))
	// Trace-extension frame with a well-formed extension payload.
	f.Add(byte(4), uint64(77), uint16(0), byte(0), EncodeTraceExt(0xdeadbeef, 0xfeedface))
	f.Fuzz(func(t *testing.T, kind byte, seq uint64, method uint16, code byte, payload []byte) {
		in := &Frame{
			Kind:    Kind(kind%4 + 1), // wire kinds are 1..4; decode rejects the rest
			Seq:     seq,
			Method:  method,
			Code:    core.ErrorCode(code),
			Payload: payload,
		}
		// Two frames back to back: the decoder must consume exactly one
		// frame per call, or batched writes would desynchronize.
		buf := appendFrame(appendFrame(nil, in), in)
		c := fuzzConn(buf)
		for i := 0; i < 2; i++ {
			out, err := c.ReadFrame()
			if err != nil {
				t.Fatalf("frame %d: decode: %v", i, err)
			}
			if out.Kind != in.Kind || out.Seq != in.Seq ||
				out.Method != in.Method || out.Code != in.Code ||
				!bytes.Equal(out.Payload, in.Payload) {
				t.Fatalf("frame %d: got %+v, want %+v", i, out, in)
			}
		}
		if _, err := c.ReadFrame(); err != io.EOF {
			t.Fatalf("trailing read = %v, want io.EOF", err)
		}
	})
}

// FuzzFrameDecode feeds arbitrary bytes into the frame reader: it must
// parse frames or fail cleanly — never panic, never hang, never let an
// invalid kind escape, and never hold a payload beyond the frame
// bound, no matter what a malicious or corrupted peer sends.
func FuzzFrameDecode(f *testing.F) {
	// A valid 1-byte-payload request frame.
	f.Add(appendFrame(nil, &Frame{Kind: KindRequest, Seq: 42, Method: 7, Payload: []byte("A")}))
	// Truncated: claims 16 bytes, delivers 2.
	f.Add([]byte("\x00\x00\x00\x10\x02\x01"))
	// Length prefix far above MaxFrameSize.
	f.Add([]byte("\xff\xff\xff\xff\x00\x00\x00\x00"))
	// Claims a 16MB frame (chunked-allocation path), delivers 4 bytes.
	f.Add([]byte("\x01\x00\x00\x00ABCD"))
	// Below-header length.
	f.Add([]byte("\x00\x00\x00\x01\x00\x00\x00\x00"))
	// Garbage.
	f.Add([]byte("not a frame at all"))
	// A trace-extension frame followed by the request it annotates —
	// the exact byte sequence a tracing client emits.
	f.Add(appendFrame(
		appendFrame(nil, &Frame{Kind: KindTraceExt, Seq: 9, Payload: EncodeTraceExt(1, 2)}),
		&Frame{Kind: KindRequest, Seq: 9, Method: 0x0101, Payload: []byte("op")}))
	// Truncated / version-skewed trace extensions: must decode as frames
	// but fail DecodeTraceExt cleanly.
	f.Add(appendFrame(nil, &Frame{Kind: KindTraceExt, Seq: 9, Payload: []byte{1, 2, 3}}))
	f.Add(appendFrame(nil, &Frame{Kind: KindTraceExt, Seq: 9, Payload: append([]byte{99}, EncodeTraceExt(1, 2)...)}))
	f.Fuzz(func(t *testing.T, data []byte) {
		c := fuzzConn(data)
		for i := 0; i < 64; i++ {
			fr, err := c.ReadFrame()
			if err != nil {
				return // clean rejection
			}
			switch fr.Kind {
			case KindRequest, KindResponse, KindPush:
			case KindTraceExt:
				// The extension decoder must reject or accept without
				// panicking, whatever the payload.
				DecodeTraceExt(fr.Payload)
			default:
				t.Fatalf("invalid kind %d escaped the decoder", fr.Kind)
			}
			if len(fr.Payload) > MaxFrameSize {
				t.Fatalf("payload of %d bytes exceeds MaxFrameSize", len(fr.Payload))
			}
		}
	})
}

// FuzzFrameVecRoundTrip covers the scatter-gather write path: a frame
// whose body is split across Payload and PayloadVec segments must
// produce the same byte stream from the test encoder and the live
// staged write path, decode back as one contiguous payload, and fire
// its Release hook exactly once.
func FuzzFrameVecRoundTrip(f *testing.F) {
	f.Add(byte(1), uint64(0), uint16(0), byte(0), []byte(nil), []byte(nil), []byte(nil))
	f.Add(byte(2), uint64(42), uint16(7), byte(0), []byte("head"), []byte("vec-a"), []byte("vec-b"))
	f.Add(byte(2), uint64(9), uint16(0x0101), byte(0), []byte{0, 6}, bytes.Repeat([]byte{0xcd}, 1024), []byte(nil))
	f.Add(byte(3), uint64(1)<<40, uint16(0x0110), byte(5), []byte(nil), []byte("only-vec"), bytes.Repeat([]byte{0x11}, 100))
	f.Fuzz(func(t *testing.T, kind byte, seq uint64, method uint16, code byte, payload, vecA, vecB []byte) {
		in := &Frame{
			Kind:       Kind(kind%4 + 1),
			Seq:        seq,
			Method:     method,
			Code:       core.ErrorCode(code),
			Payload:    payload,
			PayloadVec: [][]byte{vecA, vecB},
		}
		want := append(append(append([]byte(nil), payload...), vecA...), vecB...)

		encoded := appendFrame(nil, in)

		// The live write path must emit identical bytes and fire the
		// release hook exactly once, staged or vectored alike.
		released := 0
		var stream bytes.Buffer
		wc := &Conn{w: bufio.NewWriterSize(&stream, 64*core.KB)}
		live := *in
		live.Release = func() { released++ }
		if err := wc.WriteFrame(&live); err != nil {
			t.Fatalf("WriteFrame: %v", err)
		}
		if released != 1 {
			t.Fatalf("release fired %d times, want 1", released)
		}
		if !bytes.Equal(stream.Bytes(), encoded) {
			t.Fatalf("write path emitted %d bytes != appendFrame's %d", stream.Len(), len(encoded))
		}

		out, err := fuzzConn(encoded).ReadFrame()
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if out.Kind != in.Kind || out.Seq != in.Seq || out.Method != in.Method || out.Code != in.Code {
			t.Fatalf("header: got %+v, want %+v", out, in)
		}
		if !bytes.Equal(out.Payload, want) {
			t.Fatalf("payload: got %d bytes, want %d", len(out.Payload), len(want))
		}
		if len(out.PayloadVec) != 0 {
			t.Fatalf("decoded frame has PayloadVec (%d segments); reads are contiguous", len(out.PayloadVec))
		}
	})
}
