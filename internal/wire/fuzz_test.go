package wire

import (
	"bufio"
	"bytes"
	"io"
	"testing"

	"jiffy/internal/core"
)

// fuzzConn wraps a byte stream in a read-only frame decoder.
func fuzzConn(data []byte) *Conn {
	return &Conn{r: bufio.NewReader(bytes.NewReader(data))}
}

// FuzzFrameRoundTrip encodes an arbitrary frame and decodes it back:
// every field must survive, the stream must be consumed exactly, and
// nothing may panic — batched requests stack many frames back to back,
// so a single mis-sized frame would desynchronize the whole session.
func FuzzFrameRoundTrip(f *testing.F) {
	f.Add(byte(1), uint64(0), uint16(0), byte(0), []byte(nil))
	f.Add(byte(2), uint64(42), uint16(7), byte(3), []byte("hello jiffy"))
	f.Add(byte(3), uint64(1)<<60, uint16(0x0110), byte(255), bytes.Repeat([]byte{0xab}, 4096))
	// Trace-extension frame with a well-formed extension payload.
	f.Add(byte(4), uint64(77), uint16(0), byte(0), EncodeTraceExt(0xdeadbeef, 0xfeedface))
	f.Fuzz(func(t *testing.T, kind byte, seq uint64, method uint16, code byte, payload []byte) {
		in := &Frame{
			Kind:    Kind(kind%4 + 1), // wire kinds are 1..4; decode rejects the rest
			Seq:     seq,
			Method:  method,
			Code:    core.ErrorCode(code),
			Payload: payload,
		}
		// Two frames back to back: the decoder must consume exactly one
		// frame per call, or batched writes would desynchronize.
		buf := AppendFrame(AppendFrame(nil, in), in)
		c := fuzzConn(buf)
		for i := 0; i < 2; i++ {
			out, err := c.ReadFrame()
			if err != nil {
				t.Fatalf("frame %d: decode: %v", i, err)
			}
			if out.Kind != in.Kind || out.Seq != in.Seq ||
				out.Method != in.Method || out.Code != in.Code ||
				!bytes.Equal(out.Payload, in.Payload) {
				t.Fatalf("frame %d: got %+v, want %+v", i, out, in)
			}
		}
		if _, err := c.ReadFrame(); err != io.EOF {
			t.Fatalf("trailing read = %v, want io.EOF", err)
		}
	})
}

// FuzzFrameDecode feeds arbitrary bytes into the frame reader: it must
// parse frames or fail cleanly — never panic, never hang, never let an
// invalid kind escape, and never hold a payload beyond the frame
// bound, no matter what a malicious or corrupted peer sends.
func FuzzFrameDecode(f *testing.F) {
	// A valid 1-byte-payload request frame.
	f.Add(AppendFrame(nil, &Frame{Kind: KindRequest, Seq: 42, Method: 7, Payload: []byte("A")}))
	// Truncated: claims 16 bytes, delivers 2.
	f.Add([]byte("\x00\x00\x00\x10\x02\x01"))
	// Length prefix far above MaxFrameSize.
	f.Add([]byte("\xff\xff\xff\xff\x00\x00\x00\x00"))
	// Claims a 16MB frame (chunked-allocation path), delivers 4 bytes.
	f.Add([]byte("\x01\x00\x00\x00ABCD"))
	// Below-header length.
	f.Add([]byte("\x00\x00\x00\x01\x00\x00\x00\x00"))
	// Garbage.
	f.Add([]byte("not a frame at all"))
	// A trace-extension frame followed by the request it annotates —
	// the exact byte sequence a tracing client emits.
	f.Add(AppendFrame(
		AppendFrame(nil, &Frame{Kind: KindTraceExt, Seq: 9, Payload: EncodeTraceExt(1, 2)}),
		&Frame{Kind: KindRequest, Seq: 9, Method: 0x0101, Payload: []byte("op")}))
	// Truncated / version-skewed trace extensions: must decode as frames
	// but fail DecodeTraceExt cleanly.
	f.Add(AppendFrame(nil, &Frame{Kind: KindTraceExt, Seq: 9, Payload: []byte{1, 2, 3}}))
	f.Add(AppendFrame(nil, &Frame{Kind: KindTraceExt, Seq: 9, Payload: append([]byte{99}, EncodeTraceExt(1, 2)...)}))
	f.Fuzz(func(t *testing.T, data []byte) {
		c := fuzzConn(data)
		for i := 0; i < 64; i++ {
			fr, err := c.ReadFrame()
			if err != nil {
				return // clean rejection
			}
			switch fr.Kind {
			case KindRequest, KindResponse, KindPush:
			case KindTraceExt:
				// The extension decoder must reject or accept without
				// panicking, whatever the payload.
				DecodeTraceExt(fr.Payload)
			default:
				t.Fatalf("invalid kind %d escaped the decoder", fr.Kind)
			}
			if len(fr.Payload) > MaxFrameSize {
				t.Fatalf("payload of %d bytes exceeds MaxFrameSize", len(fr.Payload))
			}
		}
	})
}

// FuzzInlineFrameRoundTrip covers the inline small-frame fast path:
// frames encoded contiguously (AppendFrame + WriteBytes, optionally
// preceded by a paired trace-extension frame under the same seq) must
// decode identically through ReadFrameReused, reporting reused=true
// exactly when the frame fits the inline threshold, and must stay
// byte-compatible with the plain ReadFrame path — the fast path is an
// optimization, not a dialect.
func FuzzInlineFrameRoundTrip(f *testing.F) {
	f.Add(byte(1), uint64(0), uint16(0), byte(0), []byte(nil), false, uint64(0), uint64(0))
	f.Add(byte(2), uint64(42), uint16(0x0101), byte(0), []byte("small payload"), false, uint64(0), uint64(0))
	// Trace-ext pairing: extension then request, same seq, one buffer.
	f.Add(byte(1), uint64(7), uint16(0x0101), byte(0), []byte("traced op"), true, uint64(0xdeadbeef), uint64(0xfeedface))
	// Threshold boundary: the largest frame the reused path takes, one
	// below it, and the first frame that must fall back to the
	// allocating path.
	f.Add(byte(1), uint64(9), uint16(7), byte(0), bytes.Repeat([]byte{0x5a}, InlineFrameThreshold-1), false, uint64(0), uint64(0))
	f.Add(byte(2), uint64(10), uint16(7), byte(3), bytes.Repeat([]byte{0x5b}, InlineFrameThreshold), true, uint64(1), uint64(2))
	f.Add(byte(1), uint64(11), uint16(7), byte(0), bytes.Repeat([]byte{0x5c}, InlineFrameThreshold+1), false, uint64(0), uint64(0))
	f.Fuzz(func(t *testing.T, kind byte, seq uint64, method uint16, code byte,
		payload []byte, pair bool, traceID, spanID uint64) {
		in := &Frame{
			Kind:    Kind(kind%4 + 1),
			Seq:     seq,
			Method:  method,
			Code:    core.ErrorCode(code),
			Payload: payload,
		}
		var frames []*Frame
		if pair {
			frames = append(frames, &Frame{Kind: KindTraceExt, Seq: seq,
				Payload: EncodeTraceExt(traceID, spanID)})
		}
		// Two copies of the request so the second read exercises reuse
		// of the connection-owned frame and buffer.
		frames = append(frames, in, in)

		// Encode the convoy the way the client fast path does — one
		// contiguous buffer, one WriteBytes — and check the emitted
		// stream matches the canonical encoder byte for byte.
		var contiguous []byte
		for _, fr := range frames {
			contiguous = AppendFrame(contiguous, fr)
		}
		var stream bytes.Buffer
		wc := &Conn{w: bufio.NewWriterSize(&stream, 64*core.KB)}
		if err := wc.WriteBytes(contiguous); err != nil {
			t.Fatalf("WriteBytes: %v", err)
		}
		if !bytes.Equal(stream.Bytes(), contiguous) {
			t.Fatalf("WriteBytes emitted %d bytes, want %d", stream.Len(), len(contiguous))
		}

		check := func(got *Frame, want *Frame, i int) {
			t.Helper()
			if got.Kind != want.Kind || got.Seq != want.Seq ||
				got.Method != want.Method || got.Code != want.Code ||
				!bytes.Equal(got.Payload, want.Payload) {
				t.Fatalf("frame %d: got kind=%d seq=%d method=%d code=%d |p|=%d, want kind=%d seq=%d method=%d code=%d |p|=%d",
					i, got.Kind, got.Seq, got.Method, got.Code, len(got.Payload),
					want.Kind, want.Seq, want.Method, want.Code, len(want.Payload))
			}
		}

		// Reused-path decode: fields must match and the reused flag must
		// track the threshold exactly. The contract says a reused frame
		// is valid only until the next read, so each frame is checked
		// before the next ReadFrameReused call.
		rc := fuzzConn(contiguous)
		for i, want := range frames {
			got, reused, err := rc.ReadFrameReused()
			if err != nil {
				t.Fatalf("frame %d: ReadFrameReused: %v", i, err)
			}
			wantReused := len(want.Payload)+len(want.PayloadVec) <= InlineFrameThreshold
			if reused != wantReused {
				t.Fatalf("frame %d: reused=%v for %d-byte payload (threshold %d)",
					i, reused, len(want.Payload), InlineFrameThreshold)
			}
			check(got, want, i)
		}
		if _, _, err := rc.ReadFrameReused(); err != io.EOF {
			t.Fatalf("trailing reused read = %v, want io.EOF", err)
		}

		// Wire compatibility: the plain allocating reader must decode
		// the same stream identically (old peer reading a new writer).
		pc := fuzzConn(contiguous)
		for i, want := range frames {
			got, err := pc.ReadFrame()
			if err != nil {
				t.Fatalf("frame %d: ReadFrame: %v", i, err)
			}
			check(got, want, i)
		}
		if _, err := pc.ReadFrame(); err != io.EOF {
			t.Fatalf("trailing plain read = %v, want io.EOF", err)
		}
	})
}

// FuzzFrameVecRoundTrip covers the scatter-gather write path: a frame
// whose body is split across Payload and PayloadVec segments must
// produce the same byte stream from the test encoder and the live
// staged write path, decode back as one contiguous payload, and fire
// its Release hook exactly once.
func FuzzFrameVecRoundTrip(f *testing.F) {
	f.Add(byte(1), uint64(0), uint16(0), byte(0), []byte(nil), []byte(nil), []byte(nil))
	f.Add(byte(2), uint64(42), uint16(7), byte(0), []byte("head"), []byte("vec-a"), []byte("vec-b"))
	f.Add(byte(2), uint64(9), uint16(0x0101), byte(0), []byte{0, 6}, bytes.Repeat([]byte{0xcd}, 1024), []byte(nil))
	f.Add(byte(3), uint64(1)<<40, uint16(0x0110), byte(5), []byte(nil), []byte("only-vec"), bytes.Repeat([]byte{0x11}, 100))
	f.Fuzz(func(t *testing.T, kind byte, seq uint64, method uint16, code byte, payload, vecA, vecB []byte) {
		in := &Frame{
			Kind:       Kind(kind%4 + 1),
			Seq:        seq,
			Method:     method,
			Code:       core.ErrorCode(code),
			Payload:    payload,
			PayloadVec: [][]byte{vecA, vecB},
		}
		want := append(append(append([]byte(nil), payload...), vecA...), vecB...)

		encoded := AppendFrame(nil, in)

		// The live write path must emit identical bytes and fire the
		// release hook exactly once, staged or vectored alike.
		released := 0
		var stream bytes.Buffer
		wc := &Conn{w: bufio.NewWriterSize(&stream, 64*core.KB)}
		live := *in
		live.Release = func() { released++ }
		if err := wc.WriteFrame(&live); err != nil {
			t.Fatalf("WriteFrame: %v", err)
		}
		if released != 1 {
			t.Fatalf("release fired %d times, want 1", released)
		}
		if !bytes.Equal(stream.Bytes(), encoded) {
			t.Fatalf("write path emitted %d bytes != AppendFrame's %d", stream.Len(), len(encoded))
		}

		out, err := fuzzConn(encoded).ReadFrame()
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if out.Kind != in.Kind || out.Seq != in.Seq || out.Method != in.Method || out.Code != in.Code {
			t.Fatalf("header: got %+v, want %+v", out, in)
		}
		if !bytes.Equal(out.Payload, want) {
			t.Fatalf("payload: got %d bytes, want %d", len(out.Payload), len(want))
		}
		if len(out.PayloadVec) != 0 {
			t.Fatalf("decoded frame has PayloadVec (%d segments); reads are contiguous", len(out.PayloadVec))
		}
	})
}
