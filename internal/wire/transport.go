package wire

import (
	"fmt"
	"net"
	"strings"
	"sync"
)

// Addresses starting with this prefix route through the in-process
// transport instead of TCP; the remainder is a registry name. The
// in-process transport exists so that tests, examples and the
// experiment harness can run a whole cluster inside one process with
// no network configuration, exercising the same framed protocol.
const MemPrefix = "mem://"

// Listen opens a listener for addr: "mem://name" registers an
// in-process endpoint; anything else is a TCP address.
func Listen(addr string) (net.Listener, error) {
	if name, ok := strings.CutPrefix(addr, MemPrefix); ok {
		return listenMem(name)
	}
	return net.Listen("tcp", addr)
}

// Dial connects to addr using the matching transport.
func Dial(addr string) (net.Conn, error) {
	if name, ok := strings.CutPrefix(addr, MemPrefix); ok {
		return dialMem(name)
	}
	return net.Dial("tcp", addr)
}

// memRegistry maps endpoint names to their listeners.
var memRegistry = struct {
	sync.Mutex
	m map[string]*memListener
}{m: make(map[string]*memListener)}

type memListener struct {
	name   string
	accept chan net.Conn
	done   chan struct{}
	once   sync.Once
}

func listenMem(name string) (net.Listener, error) {
	memRegistry.Lock()
	defer memRegistry.Unlock()
	if _, exists := memRegistry.m[name]; exists {
		return nil, fmt.Errorf("wire: mem endpoint %q already in use", name)
	}
	l := &memListener{
		name:   name,
		accept: make(chan net.Conn, 16),
		done:   make(chan struct{}),
	}
	memRegistry.m[name] = l
	return l, nil
}

func dialMem(name string) (net.Conn, error) {
	memRegistry.Lock()
	l, ok := memRegistry.m[name]
	memRegistry.Unlock()
	if !ok {
		return nil, fmt.Errorf("wire: no mem endpoint %q", name)
	}
	client, server := net.Pipe()
	select {
	case l.accept <- server:
		return client, nil
	case <-l.done:
		return nil, fmt.Errorf("wire: mem endpoint %q closed", name)
	}
}

// Accept implements net.Listener.
func (l *memListener) Accept() (net.Conn, error) {
	select {
	case c := <-l.accept:
		return c, nil
	case <-l.done:
		return nil, fmt.Errorf("wire: mem listener %q closed", l.name)
	}
}

// Close implements net.Listener and removes the endpoint from the
// registry.
func (l *memListener) Close() error {
	l.once.Do(func() {
		close(l.done)
		memRegistry.Lock()
		delete(memRegistry.m, l.name)
		memRegistry.Unlock()
		// Reset dialed-but-not-yet-accepted connections, like a kernel
		// dropping the TCP accept backlog: their peers must observe the
		// close rather than hang on a pipe nobody will ever serve.
		for {
			select {
			case c := <-l.accept:
				c.Close()
			default:
				return
			}
		}
	})
	return nil
}

// Addr implements net.Listener.
func (l *memListener) Addr() net.Addr { return memAddr(l.name) }

type memAddr string

func (a memAddr) Network() string { return "mem" }
func (a memAddr) String() string  { return MemPrefix + string(a) }
