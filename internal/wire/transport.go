package wire

import (
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"time"
)

// Addresses starting with this prefix route through the in-process
// transport instead of TCP; the remainder is a registry name. The
// in-process transport exists so that tests, examples and the
// experiment harness can run a whole cluster inside one process with
// no network configuration, exercising the same framed protocol.
const MemPrefix = "mem://"

// Listen opens a listener for addr: "mem://name" registers an
// in-process endpoint; anything else is a TCP address.
func Listen(addr string) (net.Listener, error) {
	if name, ok := strings.CutPrefix(addr, MemPrefix); ok {
		return listenMem(name)
	}
	return net.Listen("tcp", addr)
}

// Dial connects to addr using the matching transport.
func Dial(addr string) (net.Conn, error) {
	if name, ok := strings.CutPrefix(addr, MemPrefix); ok {
		return dialMem(name)
	}
	return net.Dial("tcp", addr)
}

// memRegistry maps endpoint names to their listeners.
var memRegistry = struct {
	sync.Mutex
	m map[string]*memListener
}{m: make(map[string]*memListener)}

type memListener struct {
	name   string
	accept chan net.Conn
	done   chan struct{}
	once   sync.Once
}

func listenMem(name string) (net.Listener, error) {
	memRegistry.Lock()
	defer memRegistry.Unlock()
	if _, exists := memRegistry.m[name]; exists {
		return nil, fmt.Errorf("wire: mem endpoint %q already in use", name)
	}
	l := &memListener{
		name:   name,
		accept: make(chan net.Conn, 16),
		done:   make(chan struct{}),
	}
	memRegistry.m[name] = l
	return l, nil
}

func dialMem(name string) (net.Conn, error) {
	memRegistry.Lock()
	l, ok := memRegistry.m[name]
	memRegistry.Unlock()
	if !ok {
		return nil, fmt.Errorf("wire: no mem endpoint %q", name)
	}
	client, server := memPipe(memAddr("dial:"+name), memAddr(MemPrefix+name))
	select {
	case l.accept <- server:
		return client, nil
	case <-l.done:
		return nil, fmt.Errorf("wire: mem endpoint %q closed", name)
	}
}

// Accept implements net.Listener.
func (l *memListener) Accept() (net.Conn, error) {
	select {
	case c := <-l.accept:
		return c, nil
	case <-l.done:
		return nil, fmt.Errorf("wire: mem listener %q closed", l.name)
	}
}

// Close implements net.Listener and removes the endpoint from the
// registry.
func (l *memListener) Close() error {
	l.once.Do(func() {
		close(l.done)
		memRegistry.Lock()
		delete(memRegistry.m, l.name)
		memRegistry.Unlock()
		// Reset dialed-but-not-yet-accepted connections, like a kernel
		// dropping the TCP accept backlog: their peers must observe the
		// close rather than hang on a pipe nobody will ever serve.
		for {
			select {
			case c := <-l.accept:
				c.Close()
			default:
				return
			}
		}
	})
	return nil
}

// Addr implements net.Listener.
func (l *memListener) Addr() net.Addr { return memAddr(l.name) }

type memAddr string

func (a memAddr) Network() string { return "mem" }
func (a memAddr) String() string  { return MemPrefix + string(a) }

// memBufSize bounds one direction of an in-process connection. Large
// enough that a convoy of small frames never stalls the writer; small
// enough that a stuck reader exerts backpressure like a full TCP
// window.
const memBufSize = 256 * 1024

// memBuf is one direction of an in-process connection: a bounded ring
// buffer guarded by a mutex with separate reader and writer conditions.
// Unlike net.Pipe's unbuffered rendezvous (two scheduler handoffs per
// Write), a small write completes as soon as the bytes are copied in —
// the same decoupling a kernel socket buffer provides — which is what
// makes single-op round trips over mem:// cheap.
type memBuf struct {
	mu    sync.Mutex
	rwait sync.Cond
	wwait sync.Cond
	buf   []byte
	r     int // next read offset
	n     int // bytes buffered
	// closed means no more writes are accepted; readers drain what is
	// buffered, then see io.EOF — TCP-style graceful shutdown.
	closed bool
}

func newMemBuf() *memBuf {
	b := &memBuf{buf: make([]byte, memBufSize)}
	b.rwait.L = &b.mu
	b.wwait.L = &b.mu
	return b
}

func (b *memBuf) write(p []byte) (int, error) {
	total := 0
	b.mu.Lock()
	defer b.mu.Unlock()
	for len(p) > 0 {
		for b.n == len(b.buf) && !b.closed {
			b.wwait.Wait()
		}
		if b.closed {
			return total, io.ErrClosedPipe
		}
		w := (b.r + b.n) % len(b.buf)
		chunk := min(len(b.buf)-b.n, len(p))
		n1 := copy(b.buf[w:], p[:min(chunk, len(b.buf)-w)])
		n2 := 0
		if n1 < chunk {
			n2 = copy(b.buf, p[n1:chunk])
		}
		b.n += n1 + n2
		total += n1 + n2
		p = p[n1+n2:]
		b.rwait.Signal()
	}
	return total, nil
}

func (b *memBuf) read(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for b.n == 0 && !b.closed {
		b.rwait.Wait()
	}
	if b.n == 0 {
		return 0, io.EOF
	}
	chunk := min(b.n, len(p))
	n1 := copy(p[:chunk], b.buf[b.r:min(len(b.buf), b.r+chunk)])
	n2 := 0
	if n1 < chunk {
		n2 = copy(p[n1:chunk], b.buf)
	}
	b.r = (b.r + n1 + n2) % len(b.buf)
	b.n -= n1 + n2
	b.wwait.Signal()
	return n1 + n2, nil
}

func (b *memBuf) close() {
	b.mu.Lock()
	b.closed = true
	b.rwait.Broadcast()
	b.wwait.Broadcast()
	b.mu.Unlock()
}

// memConn is one endpoint of an in-process duplex connection.
// Deadlines are accepted and ignored (nothing in the codebase sets
// them on data connections; timeouts live at the RPC layer).
type memConn struct {
	rd, wr        *memBuf
	local, remote memAddr
}

// memPipe builds both endpoints of an in-process connection.
func memPipe(dialer, listener memAddr) (client, server *memConn) {
	c2s, s2c := newMemBuf(), newMemBuf()
	client = &memConn{rd: s2c, wr: c2s, local: dialer, remote: listener}
	server = &memConn{rd: c2s, wr: s2c, local: listener, remote: dialer}
	return client, server
}

func (c *memConn) Read(p []byte) (int, error)  { return c.rd.read(p) }
func (c *memConn) Write(p []byte) (int, error) { return c.wr.write(p) }

// Close shuts down both directions: the peer drains buffered data and
// then reads io.EOF; its writes (and any further local I/O) fail.
func (c *memConn) Close() error {
	c.rd.close()
	c.wr.close()
	return nil
}

func (c *memConn) LocalAddr() net.Addr                { return c.local }
func (c *memConn) RemoteAddr() net.Addr               { return c.remote }
func (c *memConn) SetDeadline(t time.Time) error      { return nil }
func (c *memConn) SetReadDeadline(t time.Time) error  { return nil }
func (c *memConn) SetWriteDeadline(t time.Time) error { return nil }
