package hierarchy

import (
	"testing"
	"time"

	"jiffy/internal/core"
	"jiffy/internal/ds"
)

// TestEffectiveQuotaInheritance: table-driven check that quota
// resolution walks the DAG to the nearest quota-bearing ancestor, with
// the paper DAG's multi-parent joins exercised explicitly.
func TestEffectiveQuotaInheritance(t *testing.T) {
	rootQ := core.Quota{OpsPerSec: 1000, MemoryBytes: 1 << 30}
	t5Q := core.Quota{OpsPerSec: 50}
	t3Q := core.Quota{BytesPerSec: 1 << 20}

	cases := []struct {
		name   string
		quotas map[string]core.Quota // task name → quota to install
		node   string
		want   core.Quota
	}{
		{
			name:   "no quota anywhere resolves to zero",
			quotas: nil,
			node:   "T8",
			want:   core.Quota{},
		},
		{
			name:   "own quota wins over ancestors",
			quotas: map[string]core.Quota{"job": rootQ, "T5": t5Q},
			node:   "T5",
			want:   t5Q,
		},
		{
			name:   "leaf inherits from job root through the chain",
			quotas: map[string]core.Quota{"job": rootQ},
			node:   "T8",
			want:   rootQ,
		},
		{
			name:   "nearest ancestor shadows the root",
			quotas: map[string]core.Quota{"job": rootQ, "T5": t5Q},
			node:   "T8", // T8 ← T7 ← T5 (first parent edge)
			want:   t5Q,
		},
		{
			// T7's parents are T5, T3, T6 (in creation order). With a
			// quota only on T3, the BFS one level up finds it even though
			// T3 is not the first parent edge.
			name:   "multi-parent join sees any one-hop ancestor quota",
			quotas: map[string]core.Quota{"T3": t3Q},
			node:   "T7",
			want:   t3Q,
		},
		{
			// Quotas at equal distance on two parents: the first parent
			// edge (creation order) breaks the tie deterministically.
			name:   "equal-distance tie resolves to first parent edge",
			quotas: map[string]core.Quota{"T5": t5Q, "T3": t3Q},
			node:   "T7",
			want:   t5Q,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			h := buildPaperDAG(t)
			for name, q := range tc.quotas {
				n, ok := h.Lookup(name)
				if !ok {
					t.Fatalf("node %q missing", name)
				}
				n.Quota = q
			}
			n, ok := h.Lookup(tc.node)
			if !ok {
				t.Fatalf("node %q missing", tc.node)
			}
			if got := n.EffectiveQuota(); got != tc.want {
				t.Errorf("EffectiveQuota(%s) = %+v, want %+v", tc.node, got, tc.want)
			}
		})
	}
}

func TestQuotaOwners(t *testing.T) {
	h := buildPaperDAG(t)
	set := func(name string, q core.Quota) {
		n, ok := h.Lookup(name)
		if !ok {
			t.Fatalf("node %q missing", name)
		}
		n.Quota = q
	}
	// Memory budgets on the root and on T5; a rate-only quota on T3
	// must NOT appear as a memory owner.
	set("job", core.Quota{MemoryBytes: 1 << 30})
	set("T5", core.Quota{MemoryBytes: 1 << 20})
	set("T3", core.Quota{OpsPerSec: 10})

	n, _ := h.Lookup("T8")
	owners := n.QuotaOwners()
	names := map[string]bool{}
	for _, o := range owners {
		names[o.Name] = true
	}
	if len(owners) != 2 || !names["job"] || !names["T5"] {
		t.Fatalf("QuotaOwners(T8) = %v, want {job, T5}", names)
	}

	// A node with its own memory quota is its own first constraint.
	n5, _ := h.Lookup("T5")
	owners = n5.QuotaOwners()
	if len(owners) != 2 || owners[0].Name != "T5" {
		t.Fatalf("QuotaOwners(T5) = %v, want [T5, job]", owners)
	}
}

func TestSubtreePhysicalBlocks(t *testing.T) {
	h := buildPaperDAG(t)
	entry := func(id core.BlockID, replicas int) ds.PartitionEntry {
		e := ds.PartitionEntry{Info: core.BlockInfo{ID: id, Server: "s0"}}
		if replicas > 1 {
			for r := 0; r < replicas; r++ {
				e.Chain = append(e.Chain, core.BlockInfo{ID: id, Server: "s0"})
			}
		}
		return e
	}
	give := func(name string, blocks ...ds.PartitionEntry) {
		n, ok := h.Lookup(name)
		if !ok {
			t.Fatalf("node %q missing", name)
		}
		n.Map.Blocks = blocks
	}
	give("T5", entry(1, 1), entry(2, 2)) // 1 + 2 replicas
	give("T7", entry(3, 3))              // 3 replicas, under both T5 and T3
	give("T8", entry(4, 1))              // leaf under T7

	cases := []struct {
		node string
		want int
	}{
		{"T8", 1},
		{"T7", 4}, // its own 3 + T8's 1
		{"T5", 7}, // 3 local + T7 subtree 4
		{"T3", 4}, // T7 subtree reached through the extra-parent edge
		{"job", 7},
	}
	for _, tc := range cases {
		n, _ := h.Lookup(tc.node)
		if got := n.SubtreePhysicalBlocks(); got != tc.want {
			t.Errorf("SubtreePhysicalBlocks(%s) = %d, want %d", tc.node, got, tc.want)
		}
	}
}

// TestQuotaSurvivesRenew pins that lease renewal does not disturb a
// node's quota — quotas are released only on reclaim.
func TestQuotaSurvivesRenew(t *testing.T) {
	h := buildPaperDAG(t)
	n, _ := h.Lookup("T5")
	n.Quota = core.Quota{OpsPerSec: 5}
	if _, err := h.Renew("job/T1/T5", t0.Add(time.Second)); err != nil {
		t.Fatal(err)
	}
	if n.Quota.IsZero() {
		t.Fatal("renew cleared the quota")
	}
}
