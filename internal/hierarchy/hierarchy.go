// Package hierarchy implements Jiffy's hierarchical addressing (§3.1):
// a per-job "virtual" address tree that mirrors the job's execution
// DAG. Interior nodes correspond to tasks; each node carries the
// metadata for its address prefix — lease timestamps, the attached data
// structure's partition map, and access metadata. Because the hierarchy
// is a DAG (a task may depend on several upstream tasks), a node can be
// reached through multiple address paths, exactly like an inode linked
// from several directories.
//
// The package also implements the lease-propagation rule of §3.2:
// renewing a prefix renews the node, all its ancestors, and all its
// descendants, so one renewal message per running task keeps every
// dependency's data alive.
//
// A Hierarchy is not safe for concurrent use; the controller serializes
// access per shard (jobs are hash-partitioned across shards, §4.2.1).
package hierarchy

import (
	"fmt"
	"sort"
	"time"

	"jiffy/internal/core"
	"jiffy/internal/ds"
)

// Node is one address prefix: a vertex of the job's hierarchy DAG.
type Node struct {
	// Name is the node's task name, unique within the job.
	Name string
	// Job owns the hierarchy this node belongs to.
	Job core.JobID

	parents  []*Node
	children map[string]*Node

	// LastRenewed is the lease timestamp (§3.2).
	LastRenewed time.Time
	// LeaseDuration is this prefix's lease period.
	LeaseDuration time.Duration

	// Type is the attached data structure (DSNone for bare interior
	// nodes).
	Type core.DSType
	// Map is the data structure's partition metadata (the
	// metadata-manager state of §4.2.1).
	Map ds.PartitionMap

	// Flushed marks prefixes whose data was written to the persistent
	// tier on lease expiry (§3.2: flush before reclaim, so late
	// consumers can load it back).
	Flushed bool
	// FlushKey is where the flushed data lives in the external store.
	FlushKey string

	// Quota is the resource envelope registered on this prefix (zero =
	// none). Rate dimensions set on a job root are pushed to the memory
	// servers for hot-path admission; the memory dimension bounds the
	// physical blocks of this node's subtree and is enforced by the
	// controller at allocation time. Descendants without a quota of
	// their own inherit the nearest ancestor's (see EffectiveQuota).
	Quota core.Quota
}

// Parents returns the node's parent set (copy).
func (n *Node) Parents() []*Node { return append([]*Node(nil), n.parents...) }

// Children returns the node's children sorted by name.
func (n *Node) Children() []*Node {
	out := make([]*Node, 0, len(n.children))
	for _, c := range n.children {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// CanonicalPath returns one valid path for the node: job root through
// first parents.
func (n *Node) CanonicalPath() core.Path {
	if len(n.parents) == 0 {
		return core.Path(n.Name)
	}
	return n.parents[0].CanonicalPath().MustChild(n.Name)
}

// Expired reports whether the node's lease has lapsed at time now.
func (n *Node) Expired(now time.Time) bool {
	return now.Sub(n.LastRenewed) > n.LeaseDuration
}

// Hierarchy is one job's address DAG.
type Hierarchy struct {
	root *Node
	// byName indexes nodes by task name; names are unique per job,
	// which is what makes multi-path addressing unambiguous.
	byName map[string]*Node
}

// New creates a hierarchy for job with the given root lease settings.
func New(job core.JobID, leaseDuration time.Duration, now time.Time) *Hierarchy {
	root := &Node{
		Name:          string(job),
		Job:           job,
		children:      make(map[string]*Node),
		LastRenewed:   now,
		LeaseDuration: leaseDuration,
	}
	return &Hierarchy{root: root, byName: map[string]*Node{string(job): root}}
}

// Root returns the job's root node.
func (h *Hierarchy) Root() *Node { return h.root }

// Len returns the number of nodes including the root.
func (h *Hierarchy) Len() int { return len(h.byName) }

// Resolve walks the path through the DAG, validating every edge, and
// returns the final node. Any of a node's multiple addresses resolves
// to the same node.
func (h *Hierarchy) Resolve(path core.Path) (*Node, error) {
	comps := path.Components()
	if len(comps) == 0 {
		return nil, fmt.Errorf("hierarchy: empty path: %w", core.ErrNotFound)
	}
	if comps[0] != h.root.Name {
		return nil, fmt.Errorf("hierarchy: path %q is not rooted at job %q: %w",
			path, h.root.Name, core.ErrNotFound)
	}
	cur := h.root
	for _, c := range comps[1:] {
		next, ok := cur.children[c]
		if !ok {
			return nil, fmt.Errorf("hierarchy: %q has no child %q: %w",
				cur.Name, c, core.ErrNotFound)
		}
		cur = next
	}
	return cur, nil
}

// Lookup finds a node by task name regardless of path.
func (h *Hierarchy) Lookup(name string) (*Node, bool) {
	n, ok := h.byName[name]
	return n, ok
}

// Create adds a node under the parent named by path's last-but-one
// component, plus any extraParents (the additional DAG edges). The new
// node inherits the renewal time now.
func (h *Hierarchy) Create(path core.Path, extraParents []core.Path,
	dsType core.DSType, leaseDuration time.Duration, now time.Time) (*Node, error) {

	if !path.Valid() {
		return nil, fmt.Errorf("hierarchy: invalid path %q", path)
	}
	name := path.Base()
	if _, exists := h.byName[name]; exists {
		return nil, fmt.Errorf("hierarchy: node %q: %w", name, core.ErrExists)
	}
	parent, err := h.Resolve(path.Parent())
	if err != nil {
		return nil, err
	}
	parents := []*Node{parent}
	for _, pp := range extraParents {
		p, err := h.Resolve(pp)
		if err != nil {
			return nil, err
		}
		if p != parent {
			parents = append(parents, p)
		}
	}
	n := &Node{
		Name:          name,
		Job:           h.root.Job,
		parents:       parents,
		children:      make(map[string]*Node),
		LastRenewed:   now,
		LeaseDuration: leaseDuration,
		Type:          dsType,
		Map:           ds.PartitionMap{Type: dsType},
	}
	for _, p := range parents {
		p.children[name] = n
	}
	h.byName[name] = n
	return n, nil
}

// AddEdge adds an extra parent edge to an existing node (dynamic query
// plans discover dependencies on the fly, §3.1). Rejects edges that
// would create a cycle.
func (h *Hierarchy) AddEdge(parentName, childName string) error {
	parent, ok := h.byName[parentName]
	if !ok {
		return fmt.Errorf("hierarchy: parent %q: %w", parentName, core.ErrNotFound)
	}
	child, ok := h.byName[childName]
	if !ok {
		return fmt.Errorf("hierarchy: child %q: %w", childName, core.ErrNotFound)
	}
	if parent == child || h.reachable(child, parent) {
		return fmt.Errorf("hierarchy: edge %s→%s would create a cycle", parentName, childName)
	}
	if _, dup := parent.children[childName]; dup {
		return nil // edge already present
	}
	parent.children[childName] = child
	child.parents = append(child.parents, parent)
	return nil
}

// reachable reports whether `to` is reachable from `from` downwards.
func (h *Hierarchy) reachable(from, to *Node) bool {
	if from == to {
		return true
	}
	for _, c := range from.children {
		if h.reachable(c, to) {
			return true
		}
	}
	return false
}

// Renew implements the §3.2 propagation rule, exactly as the paper's
// Fig. 5 example specifies: refresh the lease timestamp of the
// addressed node, its direct parents (the tasks whose intermediate
// data it consumes), and all of its descendants (the tasks that will
// consume its data). Grandparents are deliberately not renewed — their
// data has already been consumed by the renewing task's inputs (in
// Fig. 5, renewing T7 renews T3/T5/T6 and T8/T9 but not T1/T2/T4).
// Returns the number of nodes touched.
func (h *Hierarchy) Renew(path core.Path, now time.Time) (int, error) {
	n, err := h.Resolve(path)
	if err != nil {
		return 0, err
	}
	touched := make(map[*Node]struct{})
	touched[n] = struct{}{}
	for _, p := range n.parents {
		touched[p] = struct{}{}
	}
	markDown(n, touched)
	for t := range touched {
		if now.After(t.LastRenewed) {
			t.LastRenewed = now
		}
	}
	return len(touched), nil
}

func markDown(n *Node, set map[*Node]struct{}) {
	set[n] = struct{}{}
	for _, c := range n.children {
		if _, seen := set[c]; !seen {
			markDown(c, set)
		}
	}
}

// Expired returns the nodes (excluding the root) whose leases have
// lapsed at now, in an order safe for bottom-up removal (descendants
// before ancestors).
func (h *Hierarchy) Expired(now time.Time) []*Node {
	var out []*Node
	seen := make(map[*Node]struct{})
	var visit func(n *Node)
	visit = func(n *Node) {
		if _, dup := seen[n]; dup {
			return
		}
		seen[n] = struct{}{}
		for _, c := range n.children {
			visit(c)
		}
		if n != h.root && n.Expired(now) {
			out = append(out, n)
		}
	}
	visit(h.root)
	return out
}

// Remove detaches a node from the hierarchy. Nodes with live children
// are refused (reclaim bottom-up).
func (h *Hierarchy) Remove(name string) error {
	n, ok := h.byName[name]
	if !ok {
		return fmt.Errorf("hierarchy: node %q: %w", name, core.ErrNotFound)
	}
	if n == h.root {
		return fmt.Errorf("hierarchy: cannot remove root")
	}
	if len(n.children) > 0 {
		return fmt.Errorf("hierarchy: node %q still has %d children", name, len(n.children))
	}
	for _, p := range n.parents {
		delete(p.children, name)
	}
	delete(h.byName, name)
	return nil
}

// Walk visits every node exactly once in depth-first order from the
// root, stopping early if fn returns false.
func (h *Hierarchy) Walk(fn func(n *Node) bool) {
	seen := make(map[*Node]struct{})
	var visit func(n *Node) bool
	visit = func(n *Node) bool {
		if _, dup := seen[n]; dup {
			return true
		}
		seen[n] = struct{}{}
		if !fn(n) {
			return false
		}
		for _, c := range n.Children() {
			if !visit(c) {
				return false
			}
		}
		return true
	}
	visit(h.root)
}

// EffectiveQuota resolves the quota governing n: its own if set,
// otherwise the nearest ancestor's (breadth-first up the parent edges,
// so in a DAG the closest quota-bearing ancestor wins; ties resolve to
// the first parent edge, which is the creation-order parent). Returns
// the zero quota when no ancestor carries one.
func (n *Node) EffectiveQuota() core.Quota {
	level := []*Node{n}
	seen := map[*Node]struct{}{n: {}}
	for len(level) > 0 {
		var next []*Node
		for _, cur := range level {
			if !cur.Quota.IsZero() {
				return cur.Quota
			}
			for _, p := range cur.parents {
				if _, dup := seen[p]; !dup {
					seen[p] = struct{}{}
					next = append(next, p)
				}
			}
		}
		level = next
	}
	return core.Quota{}
}

// QuotaOwners returns every node whose memory quota constrains n: n
// itself and all its ancestors that carry MemoryBytes > 0. An
// allocation under n must fit within each owner's subtree budget.
func (n *Node) QuotaOwners() []*Node {
	var owners []*Node
	seen := map[*Node]struct{}{}
	var up func(cur *Node)
	up = func(cur *Node) {
		if _, dup := seen[cur]; dup {
			return
		}
		seen[cur] = struct{}{}
		if cur.Quota.MemoryBytes > 0 {
			owners = append(owners, cur)
		}
		for _, p := range cur.parents {
			up(p)
		}
	}
	up(n)
	return owners
}

// SubtreePhysicalBlocks counts the physical blocks (every chain
// replica) allocated in n's subtree — the unit the memory quota is
// charged in.
func (n *Node) SubtreePhysicalBlocks() int {
	total := 0
	seen := map[*Node]struct{}{}
	var down func(cur *Node)
	down = func(cur *Node) {
		if _, dup := seen[cur]; dup {
			return
		}
		seen[cur] = struct{}{}
		for _, e := range cur.Map.Blocks {
			total += len(e.Replicas())
		}
		for _, c := range cur.children {
			down(c)
		}
	}
	down(n)
	return total
}

// MetadataBytes estimates the controller metadata footprint of this
// hierarchy, following the §6.4 accounting: a fixed per-task cost plus
// a per-block cost.
func (h *Hierarchy) MetadataBytes() int {
	const perTask = 64
	const perBlock = 8
	total := 0
	h.Walk(func(n *Node) bool {
		total += perTask + perBlock*len(n.Map.Blocks)
		return true
	})
	return total
}
